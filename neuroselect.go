// Package neuroselect is the public facade of the NeuroSelect
// reproduction: a CDCL SAT solver with pluggable clause-deletion policies,
// the paper's propagation-frequency deletion criterion, and a graph-
// transformer selector that picks the best policy per instance.
//
// Quick start:
//
//	f, _ := neuroselect.ParseDIMACS(strings.NewReader("p cnf 2 2\n1 2 0\n-1 0\n"))
//	res, _ := neuroselect.Solve(f, neuroselect.SolveConfig{})
//	fmt.Println(res.Status) // SAT
//
// Training and adaptive solving:
//
//	model, _ := neuroselect.TrainSelector(neuroselect.TrainerConfig{})
//	res, _ := neuroselect.SolveAdaptive(f, model, neuroselect.SolveConfig{})
//
// # Where to go next
//
// This package re-exports the small surface most callers need; the
// machinery lives in focused internal packages:
//
//   - internal/solver is the CDCL engine (arena-backed clause storage,
//     deadline-aware SolveContext, panic containment). Solve, SolveContext
//     and SolveAssuming here wrap it.
//   - internal/portfolio is the paper's NeuroSelect-Kissat flow: one model
//     inference selects the deletion policy, with degrade-to-default
//     fallbacks. SolveAdaptive wraps it.
//   - internal/server turns the solver into an HTTP service — admission
//     control, a canonical-hash result cache, async jobs, graceful drain —
//     run via cmd/neuroselect-serve. The wire contract is API.md.
//   - internal/obs is the observability layer behind SolveConfig.Tracer
//     and every -metrics-addr flag: the JSONL trace schema and the
//     Prometheus registry, both documented in API.md.
//   - internal/experiments regenerates the paper's tables and figures
//     (cmd/experiments); internal/dataset, internal/core, internal/nn and
//     internal/baselines are its training substrate.
//
// DESIGN.md holds the architecture inventory; README.md the command-line
// tools and flags.
package neuroselect

import (
	"context"
	"errors"
	"io"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/drat"
	"neuroselect/internal/experiments"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/simp"
	"neuroselect/internal/solver"
)

// Re-exported basic types.
type (
	// Formula is a CNF formula (see internal/cnf).
	Formula = cnf.Formula
	// Lit is a DIMACS-style literal.
	Lit = cnf.Lit
	// Clause is a disjunction of literals.
	Clause = cnf.Clause
	// Assignment maps variables to truth values.
	Assignment = cnf.Assignment
	// Status is a solve outcome (SAT / UNSAT / UNKNOWN).
	Status = solver.Status
	// Result bundles a solve outcome with its statistics.
	Result = solver.Result
	// Model is a trained NeuroSelect policy-selection model.
	Model = core.Model
	// Tracer receives structured search events from the solver's cold
	// paths (restarts, reductions, conflict-window rollups); see
	// SolveConfig.Tracer. internal/obs ships JSONL and metrics-registry
	// implementations.
	Tracer = obs.Tracer
	// TraceEvent is one structured search event; its JSON tags define the
	// JSONL trace schema.
	TraceEvent = obs.Event
)

// Solve outcomes.
const (
	Unknown = solver.Unknown
	Sat     = solver.Sat
	Unsat   = solver.Unsat
)

// Stop causes for Unknown results (Result.Stop); all wrap ErrBudget.
var (
	// ErrBudget is the umbrella cause: some resource budget expired.
	ErrBudget = solver.ErrBudget
	// ErrDeadline: the wall-clock deadline (SolveConfig.Timeout or the
	// context deadline) passed.
	ErrDeadline = solver.ErrDeadline
	// ErrCanceled: the SolveContext context was canceled.
	ErrCanceled = solver.ErrCanceled
	// ErrConflictBudget: SolveConfig.MaxConflicts expired.
	ErrConflictBudget = solver.ErrConflictBudget
	// ErrSolvePanic: a panic during the search was contained and reported
	// as an error-carrying Unknown result.
	ErrSolvePanic = solver.ErrSolvePanic
)

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula { return cnf.New(n) }

// ParseDIMACS reads a DIMACS CNF.
func ParseDIMACS(r io.Reader) (*Formula, error) { return cnf.ParseDIMACS(r) }

// WriteDIMACS writes a formula in DIMACS format.
func WriteDIMACS(w io.Writer, f *Formula) error { return cnf.WriteDIMACS(w, f) }

// SolveConfig configures a solve call.
type SolveConfig struct {
	// Policy names the clause-deletion policy: "default" (Kissat's
	// glue/size ranking), "frequency" (the paper's new policy),
	// "activity", or "size". Empty means "default".
	Policy string
	// MaxConflicts bounds the search (0 = unlimited).
	MaxConflicts int64
	// Preprocess runs SatELite-style simplification (unit propagation,
	// pure literals, subsumption, strengthening) before the CDCL search;
	// SAT models are extended back to the original variables.
	Preprocess bool
	// Proof, when non-nil, receives a DRAT proof stream certifying UNSAT
	// answers (written via drat.NewWriter). Incompatible with Preprocess,
	// whose eliminations are not proof-logged.
	Proof *drat.Writer
	// Timeout bounds wall-clock solve time; expiry returns Unknown with
	// Result.Stop = ErrDeadline (0 = unbounded). The analogue of the
	// paper's 5,000-second cutoff.
	Timeout time.Duration
	// Tracer, when non-nil, streams structured search events (solve
	// start/end, restarts, reductions, per-conflict-window rollups) to
	// the given sink. Nil is zero-cost: the search runs bit-identically.
	Tracer Tracer
}

// Solve decides the formula under a fixed deletion policy.
func Solve(f *Formula, cfg SolveConfig) (Result, error) {
	return SolveContext(context.Background(), f, cfg)
}

// SolveContext is Solve under a context: cancellation and deadlines (the
// context's, or now+cfg.Timeout, whichever is earlier) abort the search
// with Unknown within a bounded number of propagations, and Result.Stop
// identifies the cause (ErrDeadline, ErrCanceled, ErrConflictBudget, ...).
func SolveContext(ctx context.Context, f *Formula, cfg SolveConfig) (Result, error) {
	name := cfg.Policy
	if name == "" {
		name = "default"
	}
	pol, err := deletion.ByName(name)
	if err != nil {
		return Result{}, err
	}
	opts := dataset.SolveOptions(pol, cfg.MaxConflicts)
	opts.Tracer = cfg.Tracer
	if cfg.Timeout > 0 {
		opts.Deadline = time.Now().Add(cfg.Timeout)
	}
	if cfg.Proof != nil {
		if cfg.Preprocess {
			return Result{}, errors.New("neuroselect: Proof and Preprocess cannot be combined")
		}
		opts.Proof = cfg.Proof
	}
	if !cfg.Preprocess {
		return solver.SolveContext(ctx, f, opts)
	}
	pre := simp.Simplify(f, simp.Options{})
	if pre.ProvenUnsat {
		return Result{Status: Unsat}, nil
	}
	res, err := solver.SolveContext(ctx, pre.F, opts)
	if err != nil {
		return res, err
	}
	if res.Status == Sat {
		res.Model = simp.ExtendModel(res.Model, pre.Units)
		if !res.Model.Satisfies(f) {
			return res, errors.New("neuroselect: internal error: extended model does not satisfy original formula")
		}
	}
	return res, nil
}

// Preprocess exposes the simplifier directly: it returns an
// equisatisfiable formula, the fixed top-level literals (for
// simp.ExtendModel), and whether preprocessing alone refuted the input.
func Preprocess(f *Formula) (*Formula, []Lit, bool) {
	res := simp.Simplify(f, simp.Options{})
	return res.F, res.Units, res.ProvenUnsat
}

// CheckProof validates a DRAT proof (as produced via SolveConfig.Proof)
// against the original formula.
func CheckProof(f *Formula, proof io.Reader) error {
	steps, err := drat.Parse(proof)
	if err != nil {
		return err
	}
	return drat.Check(f, steps)
}

// NewProofWriter wraps w as a DRAT proof sink for SolveConfig.Proof. Call
// Flush after solving.
func NewProofWriter(w io.Writer) *drat.Writer { return drat.NewWriter(w) }

// SolveAssuming decides the formula under assumption literals.
func SolveAssuming(f *Formula, assumptions []Lit, cfg SolveConfig) (Result, error) {
	name := cfg.Policy
	if name == "" {
		name = "default"
	}
	pol, err := deletion.ByName(name)
	if err != nil {
		return Result{}, err
	}
	return solver.SolveAssuming(f, assumptions, dataset.SolveOptions(pol, cfg.MaxConflicts))
}

// SolveAdaptive runs the NeuroSelect-Kissat flow: a one-time model
// inference picks the deletion policy, then the solver runs under it.
func SolveAdaptive(f *Formula, m *Model, cfg SolveConfig) (Result, error) {
	sel := portfolio.NewSelector(m)
	rep, err := sel.Solve(f, cfg.MaxConflicts)
	if err != nil {
		return Result{}, err
	}
	return rep.Result, nil
}

// TrainerConfig sizes selector training. The zero value uses the quick
// preset (seconds); Paper-shaped runs should raise the sizes via Scale.
type TrainerConfig struct {
	// Scale selects an experiment preset: "quick" (default) or "default".
	Scale string
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// TrainSelector builds a labeled corpus, trains a NeuroSelect model on it,
// and returns the model.
func TrainSelector(cfg TrainerConfig) (*Model, error) {
	scale := experiments.QuickScale()
	if cfg.Scale == "default" {
		scale = experiments.DefaultScale()
	}
	r := experiments.NewRunner(scale)
	r.Log = cfg.Log
	return r.TrainedModel()
}

// SaveModel writes a self-describing model file (architecture + weights).
func SaveModel(w io.Writer, m *Model) error { return m.SaveFile(w) }

// LoadModel restores a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModelFile(r) }

// PredictPolicy returns the model's probability that the frequency-guided
// deletion policy beats the default on the formula, and the policy name it
// would select at the 0.5 threshold.
func PredictPolicy(f *Formula, m *Model) (prob float64, policy string) {
	prob = m.Predict(f)
	if prob >= 0.5 {
		return prob, "frequency"
	}
	return prob, "default"
}
