package gen

import (
	"fmt"
	"math"
	"math/rand"

	"neuroselect/internal/cnf"
)

// Tseitin generates a Tseitin formula over a random degree-regular
// multigraph: one variable per edge and one XOR ("charge") constraint per
// vertex. With sat=true the charges are derived from a hidden edge
// assignment, so the instance is satisfiable; with sat=false the total
// charge is made odd, which makes the instance unsatisfiable (some connected
// component must carry odd charge). Tseitin formulas over (near-)expander
// graphs are the classic resolution-hard UNSAT family.
func Tseitin(vertices, degree int, sat bool, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	if vertices*degree%2 != 0 {
		vertices++ // stub pairing needs an even stub count
	}
	// Random degree-regular multigraph by stub pairing, avoiding self-loops
	// by local swaps.
	stubs := make([]int, 0, vertices*degree)
	for v := 0; v < vertices; v++ {
		for d := 0; d < degree; d++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type edge struct{ a, b int }
	edges := make([]edge, 0, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			// Swap with a later stub belonging to a different vertex.
			for j := i + 2; j < len(stubs); j++ {
				if stubs[j] != a {
					stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
					b = stubs[i+1]
					break
				}
			}
		}
		edges = append(edges, edge{a, b})
	}

	incident := make([][]int, vertices) // vertex -> edge variables (1-based)
	for i, e := range edges {
		if e.a == e.b {
			// A residual self-loop would contribute its variable once to a
			// vertex constraint and break the parity-sum argument that
			// makes the odd-charge instance unsatisfiable; in XOR algebra a
			// self-loop contributes twice and cancels, so it is dropped.
			continue
		}
		incident[e.a] = append(incident[e.a], i+1)
		incident[e.b] = append(incident[e.b], i+1)
	}

	charges := make([]bool, vertices)
	if sat {
		hidden := make([]bool, len(edges)+1)
		for i := 1; i <= len(edges); i++ {
			hidden[i] = rng.Intn(2) == 0
		}
		for v := 0; v < vertices; v++ {
			c := false
			for _, ev := range incident[v] {
				c = c != hidden[ev]
			}
			charges[v] = c
		}
	} else {
		total := false
		for v := 0; v < vertices; v++ {
			charges[v] = rng.Intn(2) == 0
			total = total != charges[v]
		}
		if !total {
			charges[0] = !charges[0] // force odd total charge
		}
	}

	f := cnf.New(len(edges))
	for v := 0; v < vertices; v++ {
		if len(incident[v]) == 0 {
			continue
		}
		addXOR(f, incident[v], charges[v])
	}
	exp, tag := ExpectUnsat, "unsat"
	if sat {
		exp, tag = ExpectSat, "sat"
	}
	return Instance{
		Name:   fmt.Sprintf("tseitin-%s-v%d-d%d-s%d", tag, vertices, degree, seed),
		Family: "tseitin", Seed: seed, Expected: exp, F: f,
	}
}

// GraphColoring encodes k-coloring of a random graph with the given number
// of vertices and edges. Variables x[v][c] mean "vertex v has color c".
// Satisfiability is not determined by construction.
func GraphColoring(vertices, edges, colors int, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.New(vertices * colors)
	x := func(v, c int) cnf.Lit { return cnf.Lit(v*colors + c + 1) }
	for v := 0; v < vertices; v++ {
		row := make([]cnf.Lit, colors)
		for c := 0; c < colors; c++ {
			row[c] = x(v, c)
		}
		f.MustAddClause(row...)
		for c1 := 0; c1 < colors; c1++ {
			for c2 := c1 + 1; c2 < colors; c2++ {
				f.MustAddClause(-x(v, c1), -x(v, c2))
			}
		}
	}
	if max := vertices * (vertices - 1) / 2; edges > max {
		edges = max // cannot exceed the complete graph
	}
	seen := map[[2]int]bool{}
	added := 0
	for added < edges {
		a, b := rng.Intn(vertices), rng.Intn(vertices)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		added++
		for c := 0; c < colors; c++ {
			f.MustAddClause(-x(a, c), -x(b, c))
		}
	}
	return Instance{
		Name:   fmt.Sprintf("color-v%d-e%d-k%d-s%d", vertices, edges, colors, seed),
		Family: "coloring", Seed: seed, Expected: ExpectUnknown, F: f,
	}
}

// NQueens encodes the n-queens problem (satisfiable for n != 2, 3).
func NQueens(n int) Instance {
	f := cnf.New(n * n)
	q := func(r, c int) cnf.Lit { return cnf.Lit(r*n + c + 1) }
	for r := 0; r < n; r++ {
		row := make([]cnf.Lit, n)
		for c := 0; c < n; c++ {
			row[c] = q(r, c)
		}
		f.MustAddClause(row...)
	}
	// At most one queen per row, column, and diagonal.
	for r1 := 0; r1 < n; r1++ {
		for c1 := 0; c1 < n; c1++ {
			for r2 := r1; r2 < n; r2++ {
				for c2 := 0; c2 < n; c2++ {
					if r2 == r1 && c2 <= c1 {
						continue
					}
					sameRow := r1 == r2
					sameCol := c1 == c2
					sameDiag := r2-r1 == c2-c1 || r2-r1 == c1-c2
					if sameRow || sameCol || sameDiag {
						f.MustAddClause(-q(r1, c1), -q(r2, c2))
					}
				}
			}
		}
	}
	exp := ExpectSat
	if n == 2 || n == 3 {
		exp = ExpectUnsat
	}
	return Instance{
		Name:   fmt.Sprintf("queens-%d", n),
		Family: "queens", Expected: exp, F: f,
	}
}

// CommunityKSAT generates a random k-SAT formula with community structure:
// variables are partitioned into communities and each clause draws its
// variables from a single community with probability locality, otherwise
// uniformly. Community structure is characteristic of industrial instances.
func CommunityKSAT(n, m, k, communities int, locality float64, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	if communities < 1 {
		communities = 1
	}
	size := (n + communities - 1) / communities
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		var lits []cnf.Lit
		if rng.Float64() < locality {
			com := rng.Intn(communities)
			lo := com * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			if hi-lo < k {
				lo = n - k
				if lo < 0 {
					lo = 0
				}
				hi = n
			}
			lits = randClauseRange(rng, lo+1, hi, k)
		} else {
			lits = randClause(rng, n, k)
		}
		f.MustAddClause(lits...)
	}
	return Instance{
		Name:   fmt.Sprintf("community-n%d-m%d-k%d-c%d-s%d", n, m, k, communities, seed),
		Family: "community", Seed: seed, Expected: ExpectUnknown, F: f,
	}
}

// randClauseRange draws k distinct variables within [lo, hi] (1-based,
// inclusive) with random polarities.
func randClauseRange(rng *rand.Rand, lo, hi, k int) []cnf.Lit {
	span := hi - lo + 1
	if k > span {
		k = span
	}
	seen := make(map[int]bool, k)
	lits := make([]cnf.Lit, 0, k)
	for len(lits) < k {
		v := lo + rng.Intn(span)
		if seen[v] {
			continue
		}
		seen[v] = true
		l := cnf.Lit(v)
		if rng.Intn(2) == 0 {
			l = -l
		}
		lits = append(lits, l)
	}
	return lits
}

// PowerLawKSAT generates random k-SAT whose variable occurrences follow a
// power-law distribution (variable v is drawn with probability ∝ v^−beta),
// the degree profile characteristic of industrial instances (scale-free
// SAT). beta around 0.8–1.1 gives realistic skew.
func PowerLawKSAT(n, m, k int, beta float64, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	// Precompute the cumulative distribution once.
	cdf := make([]float64, n+1)
	total := 0.0
	for v := 1; v <= n; v++ {
		total += 1 / math.Pow(float64(v), beta)
		cdf[v] = total
	}
	draw := func() int {
		x := rng.Float64() * total
		lo, hi := 1, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		seen := map[int]bool{}
		lits := make([]cnf.Lit, 0, k)
		for len(lits) < k {
			v := draw()
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			lits = append(lits, l)
		}
		f.MustAddClause(lits...)
	}
	return Instance{
		Name:   fmt.Sprintf("powerlaw-n%d-m%d-b%.1f-s%d", n, m, beta, seed),
		Family: "powerlaw", Seed: seed, Expected: ExpectUnknown, F: f,
	}
}

// SubsetSum encodes a bounded subset-sum instance: choose a subset of the
// given positive values summing exactly to target, via a binary adder
// chain over Tseitin variables. Weights and target are derived from the
// seed; with forceSat the target is the sum of a random subset.
func SubsetSum(nValues, maxValue int, forceSat bool, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	values := make([]int, nValues)
	total := 0
	for i := range values {
		values[i] = 1 + rng.Intn(maxValue)
		total += values[i]
	}
	target := 0
	if forceSat {
		for i := range values {
			if rng.Intn(2) == 0 {
				target += values[i]
			}
		}
	} else {
		// A target above the total is trivially UNSAT; pick one just above
		// to keep the adder chain honest.
		target = total + 1 + rng.Intn(maxValue)
	}
	// Accumulate sum bits with ripple-carry adders over the binary
	// representations of the values gated by the pick variables.
	f := subsetSumEncode(values, target, total, maxValue)
	exp, tag := ExpectSat, "sat"
	if !forceSat {
		exp, tag = ExpectUnsat, "unsat"
	}
	return Instance{
		Name:   fmt.Sprintf("subsetsum-%s-n%d-s%d", tag, nValues, seed),
		Family: "subsetsum", Seed: seed, Expected: exp, F: f,
	}
}
