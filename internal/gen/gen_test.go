package gen

import (
	"testing"
	"testing/quick"

	"neuroselect/internal/cnf"
)

// bruteForceSat exhaustively checks satisfiability (formulas up to 22
// variables).
func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars
	if n > 22 {
		panic("too large for brute force")
	}
	a := cnf.NewAssignment(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			return true
		}
	}
	return false
}

func TestRandomKSATShape(t *testing.T) {
	in := RandomKSAT(20, 85, 3, 7)
	if in.F.NumVars != 20 || len(in.F.Clauses) != 85 {
		t.Fatalf("shape %d/%d", in.F.NumVars, len(in.F.Clauses))
	}
	for _, c := range in.F.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause size %d", len(c))
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatalf("repeated variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
	if err := in.F.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := RandomKSAT(30, 120, 3, 42)
	b := RandomKSAT(30, 120, 3, 42)
	if cnf.DIMACSString(a.F) != cnf.DIMACSString(b.F) {
		t.Fatal("same seed must generate identical formulas")
	}
	c := RandomKSAT(30, 120, 3, 43)
	if cnf.DIMACSString(a.F) == cnf.DIMACSString(c.F) {
		t.Fatal("different seeds should differ")
	}
}

func TestPigeonholeStructure(t *testing.T) {
	in := Pigeonhole(3)
	// 4 pigeons x 3 holes: 4 long clauses + 3*C(4,2)=18 binary clauses.
	if in.F.NumVars != 12 || len(in.F.Clauses) != 4+18 {
		t.Fatalf("shape %d vars %d clauses", in.F.NumVars, len(in.F.Clauses))
	}
	if bruteForceSat(in.F) {
		t.Fatal("PHP(4,3) must be UNSAT")
	}
	if in.Expected != ExpectUnsat {
		t.Fatal("wrong expectation")
	}
}

func TestXORBlockSemantics(t *testing.T) {
	// addXOR on 3 variables must admit exactly the assignments with the
	// requested parity.
	for _, rhs := range []bool{false, true} {
		f := cnf.New(3)
		addXOR(f, []int{1, 2, 3}, rhs)
		count := 0
		a := cnf.NewAssignment(3)
		for mask := 0; mask < 8; mask++ {
			par := false
			for v := 1; v <= 3; v++ {
				a[v] = mask&(1<<uint(v-1)) != 0
				if a[v] {
					par = !par
				}
			}
			if a.Satisfies(f) {
				count++
				if par != rhs {
					t.Fatalf("rhs=%v admits assignment with parity %v", rhs, par)
				}
			}
		}
		if count != 4 {
			t.Fatalf("rhs=%v admits %d assignments, want 4", rhs, count)
		}
	}
}

func TestParityChainPolarity(t *testing.T) {
	sat := ParityChain(12, 8, 3, true, 5)
	if !bruteForceSat(sat.F) {
		t.Fatal("consistent parity chain must be SAT")
	}
	unsat := ParityChain(12, 8, 3, false, 5)
	if bruteForceSat(unsat.F) {
		t.Fatal("inconsistent parity chain must be UNSAT")
	}
}

func TestTseitinPolarityBrute(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sat := Tseitin(8, 3, true, seed)
		if sat.F.NumVars > 22 {
			t.Fatalf("unexpectedly large: %d vars", sat.F.NumVars)
		}
		if !bruteForceSat(sat.F) {
			t.Fatalf("seed %d: satisfiable Tseitin is UNSAT", seed)
		}
		unsat := Tseitin(8, 3, false, seed)
		if bruteForceSat(unsat.F) {
			t.Fatalf("seed %d: odd-charge Tseitin is SAT", seed)
		}
	}
}

func TestTseitinOddVertexCount(t *testing.T) {
	// Odd vertices × odd degree needs rounding; must not panic and still
	// honor the polarity contract.
	in := Tseitin(7, 3, false, 1)
	if in.F.NumVars == 0 {
		t.Fatal("no edges generated")
	}
	if bruteForceSat(in.F) {
		t.Fatal("odd-charge Tseitin must be UNSAT")
	}
}

func TestGraphColoringEncoding(t *testing.T) {
	in := GraphColoring(5, 4, 3, 3)
	if in.F.NumVars != 15 {
		t.Fatalf("vars = %d", in.F.NumVars)
	}
	// A triangle needs 3 colors: 3-coloring SAT; 2-coloring UNSAT.
	tri := GraphColoring(3, 3, 2, 1)
	if bruteForceSat(tri.F) {
		t.Fatal("triangle is not 2-colorable")
	}
	tri3 := GraphColoring(3, 3, 3, 1)
	if !bruteForceSat(tri3.F) {
		t.Fatal("triangle is 3-colorable")
	}
}

func TestNQueensSmall(t *testing.T) {
	if !bruteForceSat(NQueens(4).F) {
		t.Fatal("4-queens is SAT")
	}
	if bruteForceSat(NQueens(3).F) {
		t.Fatal("3-queens is UNSAT")
	}
	if NQueens(2).Expected != ExpectUnsat || NQueens(5).Expected != ExpectSat {
		t.Fatal("wrong expectations")
	}
}

func TestCommunityKSATLocality(t *testing.T) {
	in := CommunityKSAT(100, 400, 3, 5, 1.0, 9)
	// With locality 1.0 every clause stays within one 20-variable
	// community.
	for _, c := range in.F.Clauses {
		com := (c[0].Var() - 1) / 20
		for _, l := range c {
			if (l.Var()-1)/20 != com {
				t.Fatalf("clause %v crosses communities", c)
			}
		}
	}
}

func TestMiterEquivalentIsUnsatBrute(t *testing.T) {
	// Tiny miters are brute-forceable through their input space... but the
	// CNF has auxiliary gate variables, so check with the full formula via
	// brute force over ALL variables only when small enough; otherwise rely
	// on the solver tests. Here: construct tiny case.
	in := Miter(3, 6, false, 2)
	if in.F.NumVars <= 22 {
		if bruteForceSat(in.F) {
			t.Fatal("identical-copy miter must be UNSAT")
		}
	}
}

func TestBMCCounterContract(t *testing.T) {
	f := func(steps uint8, delta uint8) bool {
		s := int(steps%10) + 2
		// Targets inside [s, 2s] are SAT, outside UNSAT.
		inside := uint64(s + int(delta)%(s+1))
		in := BMCCounter(4, s, inside)
		if in.Expected != ExpectSat {
			return false
		}
		outside := uint64(2*s + 1 + int(delta)%5)
		out := BMCCounter(4, s, outside)
		return out.Expected == ExpectUnsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBMCCounterBruteSmall(t *testing.T) {
	// The adder chain introduces many auxiliary variables, so restrict
	// brute force to the smallest configurations that fit.
	sat := BMCCounter(3, 1, 2)
	if sat.F.NumVars <= 22 && !bruteForceSat(sat.F) {
		t.Fatal("bmc target 2 in [1,2] must be SAT")
	}
	unsat := BMCCounter(3, 1, 3)
	if unsat.F.NumVars <= 22 && bruteForceSat(unsat.F) {
		t.Fatal("bmc target 3 > 2 must be UNSAT")
	}
}

func TestSubsetSumSatPolarity(t *testing.T) {
	in := SubsetSum(5, 6, true, 3)
	if in.F.NumVars > 22 {
		t.Skipf("too large for brute force: %d vars", in.F.NumVars)
	}
	if !bruteForceSat(in.F) {
		t.Fatal("forced-SAT subset sum is UNSAT")
	}
}

func TestExpectationString(t *testing.T) {
	if ExpectSat.String() != "SAT" || ExpectUnsat.String() != "UNSAT" || ExpectUnknown.String() != "UNKNOWN" {
		t.Fatal("Expectation strings")
	}
}

func TestAllFamiliesValidate(t *testing.T) {
	insts := []Instance{
		RandomKSAT(20, 80, 3, 1),
		CommunityKSAT(40, 160, 3, 4, 0.8, 1),
		Pigeonhole(4),
		Tseitin(10, 3, true, 1),
		ParityChain(12, 8, 4, true, 1),
		GraphColoring(8, 12, 3, 1),
		NQueens(5),
		Miter(4, 10, true, 1),
		BMCCounter(4, 5, 7),
		SubsetSum(6, 10, false, 1),
	}
	for _, in := range insts {
		if err := in.F.Validate(); err != nil {
			t.Errorf("%s: %v", in.Name, err)
		}
		if in.Name == "" || in.Family == "" {
			t.Errorf("missing metadata: %+v", in)
		}
	}
}

func TestPowerLawKSAT(t *testing.T) {
	in := PowerLawKSAT(100, 420, 3, 1.0, 7)
	if in.F.NumVars != 100 || len(in.F.Clauses) != 420 {
		t.Fatalf("shape %d/%d", in.F.NumVars, len(in.F.Clauses))
	}
	if err := in.F.Validate(); err != nil {
		t.Fatal(err)
	}
	// Occurrence skew: the most frequent decile of variables must occur
	// substantially more often than the least frequent decile.
	st := cnfStatsFor(in)
	lo, hi := 0, 0
	for v := 1; v <= 10; v++ {
		hi += st[v]
	}
	for v := 91; v <= 100; v++ {
		lo += st[v]
	}
	if hi <= 2*lo {
		t.Fatalf("power-law skew missing: first decile %d vs last decile %d", hi, lo)
	}
	// Determinism.
	again := PowerLawKSAT(100, 420, 3, 1.0, 7)
	if cnf.DIMACSString(in.F) != cnf.DIMACSString(again.F) {
		t.Fatal("not deterministic")
	}
}

func cnfStatsFor(in Instance) []int {
	occ := make([]int, in.F.NumVars+1)
	for _, c := range in.F.Clauses {
		for _, l := range c {
			occ[l.Var()]++
		}
	}
	return occ
}
