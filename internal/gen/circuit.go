package gen

import (
	"fmt"
	"math/rand"

	"neuroselect/internal/circuit"
	"neuroselect/internal/cnf"
)

// gateSpec describes one random gate: a function of two earlier wires.
type gateSpec struct {
	op   byte // 'A' and, 'O' or, 'X' xor
	in1  int  // index into the wire list
	in2  int
	neg1 bool
	neg2 bool
}

// randomCircuitSpec draws a layered random circuit over the given number of
// inputs and gates.
func randomCircuitSpec(rng *rand.Rand, inputs, gates int) []gateSpec {
	specs := make([]gateSpec, gates)
	ops := []byte{'A', 'O', 'X'}
	for g := 0; g < gates; g++ {
		avail := inputs + g
		specs[g] = gateSpec{
			op:   ops[rng.Intn(len(ops))],
			in1:  rng.Intn(avail),
			in2:  rng.Intn(avail),
			neg1: rng.Intn(2) == 0,
			neg2: rng.Intn(2) == 0,
		}
	}
	return specs
}

// buildCircuit instantiates a circuit spec over the given input wires and
// returns the final wire (the last gate's output).
func buildCircuit(b *circuit.Builder, spec []gateSpec, inputWires []circuit.Wire) circuit.Wire {
	wires := append([]circuit.Wire{}, inputWires...)
	for _, g := range spec {
		x, y := wires[g.in1], wires[g.in2]
		if g.neg1 {
			x = b.Not(x)
		}
		if g.neg2 {
			y = b.Not(y)
		}
		var o circuit.Wire
		switch g.op {
		case 'A':
			o = b.And(x, y)
		case 'O':
			o = b.Or(x, y)
		default:
			o = b.Xor(x, y)
		}
		wires = append(wires, o)
	}
	return wires[len(wires)-1]
}

// Miter generates a combinational equivalence-checking instance: two copies
// of a random circuit over shared inputs with their outputs XORed and the
// XOR asserted true. With faulty=false the copies are identical, so the
// miter is unsatisfiable (the classic CEC certificate); with faulty=true one
// gate of the second copy is perturbed, which usually (not always) creates
// a functional difference, so satisfiability is left undetermined.
func Miter(inputs, gates int, faulty bool, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	spec := randomCircuitSpec(rng, inputs, gates)
	spec2 := make([]gateSpec, len(spec))
	copy(spec2, spec)
	if faulty {
		g := rng.Intn(len(spec2))
		switch rng.Intn(3) {
		case 0:
			spec2[g].neg1 = !spec2[g].neg1
		case 1:
			ops := []byte{'A', 'O', 'X'}
			spec2[g].op = ops[(indexOf(ops, spec2[g].op)+1)%len(ops)]
		default:
			spec2[g].in1 = rng.Intn(inputs + g)
		}
	}
	b := circuit.New()
	in := b.Inputs(inputs)
	// Separate structural-hash namespaces for the two copies so the
	// comparison exercises real duplicated logic, as a CEC miter does.
	out1 := buildCircuit(b, spec, in)
	b.ClearCache()
	out2 := buildCircuit(b, spec2, in)
	b.Assert(b.Xor(out1, out2))
	exp, tag := ExpectUnsat, "equiv"
	if faulty {
		exp, tag = ExpectUnknown, "faulty"
	}
	return Instance{
		Name:   fmt.Sprintf("miter-%s-i%d-g%d-s%d", tag, inputs, gates, seed),
		Family: "miter", Seed: seed, Expected: exp, F: b.Formula(),
	}
}

func indexOf(s []byte, b byte) int {
	for i, x := range s {
		if x == b {
			return i
		}
	}
	return 0
}

// BMCCounter generates a bounded-model-checking style instance: a width-bit
// register starts at zero and on each of steps transitions adds 1 plus a
// free input bit (so each step adds 1 or 2); the property asserts the final
// value equals target. Reachable finals are exactly steps..2*steps, so the
// instance is satisfiable iff steps <= target <= 2*steps (width is grown to
// rule out wraparound), letting callers generate both polarities
// deterministically while keeping a genuine search over the input bits.
func BMCCounter(width, steps int, target uint64) Instance {
	for uint64(1)<<uint(width) <= uint64(2*steps) || uint64(1)<<uint(width) <= target {
		width++
	}
	b := circuit.New()
	state := b.Const(0, width)
	for s := 0; s < steps; s++ {
		inc := b.Input() // free input: add 1 or 2 this step
		// addend = inc ? 2 : 1, i.e. bit0 = ¬inc, bit1 = inc.
		addend := b.Const(0, width)
		addend[0] = b.Not(inc)
		if width > 1 {
			addend[1] = inc
		}
		state = b.Add(state, addend)
	}
	b.AssertEqualConst(state, target)
	exp, tag := ExpectUnsat, "unsat"
	if target >= uint64(steps) && target <= uint64(2*steps) {
		exp, tag = ExpectSat, "sat"
	}
	return Instance{
		Name:   fmt.Sprintf("bmc-%s-w%d-t%d-g%d", tag, width, steps, target),
		Family: "bmc", Expected: exp, F: b.Formula(),
	}
}

// subsetSumBuilder exposes the adder-chain encoding for SubsetSum in
// families.go using the shared circuit builder.
func subsetSumEncode(values []int, target, total, maxValue int) *cnf.Formula {
	b := circuit.New()
	picks := b.Inputs(len(values))
	width := 1
	for 1<<width <= total+maxValue {
		width++
	}
	acc := b.Const(0, width)
	for i, val := range values {
		addend := b.Const(0, width)
		for bit := 0; bit < width; bit++ {
			if val&(1<<bit) != 0 {
				addend[bit] = picks[i] // bit present iff value picked
			}
		}
		acc = b.Add(acc, addend)
	}
	b.AssertEqualConst(acc, uint64(target))
	return b.Formula()
}
