// Package gen produces deterministic synthetic SAT instances. It stands in
// for the SAT Competition 2016–2022 benchmarks used by the paper, providing
// a heterogeneous population of instance families — UNSAT-proof-heavy,
// SAT-search-heavy, and structured/industrial-like — on which different
// clause-deletion policies win on different instances (the Figure 4
// phenomenon the selector learns to exploit).
//
// All generators are pure functions of their parameters and seed.
package gen

import (
	"fmt"
	"math/rand"

	"neuroselect/internal/cnf"
)

// Expectation records the known satisfiability of a generated instance when
// the construction guarantees it.
type Expectation int8

const (
	// ExpectUnknown means satisfiability is not determined by construction.
	ExpectUnknown Expectation = iota
	// ExpectSat means the instance is satisfiable by construction.
	ExpectSat
	// ExpectUnsat means the instance is unsatisfiable by construction.
	ExpectUnsat
)

// String implements fmt.Stringer.
func (e Expectation) String() string {
	switch e {
	case ExpectSat:
		return "SAT"
	case ExpectUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Instance is a generated formula plus provenance metadata.
type Instance struct {
	Name     string
	Family   string
	Seed     int64
	Expected Expectation
	F        *cnf.Formula
}

// RandomKSAT generates a uniform random k-SAT formula with n variables and
// m clauses. Clauses have k distinct variables with random polarities. At
// the phase-transition ratio (m/n ≈ 4.27 for k=3) instances are hardest.
func RandomKSAT(n, m, k int, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.New(n)
	for i := 0; i < m; i++ {
		f.MustAddClause(randClause(rng, n, k)...)
	}
	return Instance{
		Name:   fmt.Sprintf("rand%dsat-n%d-m%d-s%d", k, n, m, seed),
		Family: "random", Seed: seed, Expected: ExpectUnknown, F: f,
	}
}

// randClause draws k distinct variables with random polarities.
func randClause(rng *rand.Rand, n, k int) []cnf.Lit {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	lits := make([]cnf.Lit, 0, k)
	for len(lits) < k {
		v := rng.Intn(n) + 1
		if seen[v] {
			continue
		}
		seen[v] = true
		l := cnf.Lit(v)
		if rng.Intn(2) == 0 {
			l = -l
		}
		lits = append(lits, l)
	}
	return lits
}

// Pigeonhole generates the PHP(holes+1, holes) principle: holes+1 pigeons
// into holes holes, each pigeon in some hole, no two pigeons share a hole.
// Unsatisfiable, with resolution proofs of exponential size — a proof-heavy
// stress for clause learning.
func Pigeonhole(holes int) Instance {
	pigeons := holes + 1
	f := cnf.New(pigeons * holes)
	v := func(p, h int) cnf.Lit { return cnf.Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		row := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			row[h] = v(p, h)
		}
		f.MustAddClause(row...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.MustAddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return Instance{
		Name:   fmt.Sprintf("php-%d", holes),
		Family: "pigeonhole", Expected: ExpectUnsat, F: f,
	}
}

// ParityChain encodes a random system of XOR constraints over n variables
// as CNF. Each constraint XORs width variables. With consistent=false a
// random constraint is flipped to make the system (almost surely)
// inconsistent; with consistent=true the right-hand sides are derived from
// a hidden assignment, guaranteeing satisfiability.
func ParityChain(n, constraints, width int, consistent bool, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		hidden[i] = rng.Intn(2) == 0
	}
	f := cnf.New(n)
	var vars0 []int
	rhs0 := false
	for i := 0; i < constraints; i++ {
		vars := pickDistinct(rng, n, width)
		rhs := false
		for _, v := range vars {
			rhs = rhs != hidden[v]
		}
		if i == 0 {
			vars0, rhs0 = vars, rhs
			if !consistent {
				rhs = !rhs
			}
		}
		addXOR(f, vars, rhs)
	}
	exp := ExpectSat
	tag := "sat"
	if !consistent {
		// The flipped first constraint contradicts its unflipped twin,
		// guaranteeing unsatisfiability regardless of the rest.
		addXOR(f, vars0, rhs0)
		exp = ExpectUnsat
		tag = "unsat"
	}
	return Instance{
		Name:   fmt.Sprintf("parity-%s-n%d-c%d-w%d-s%d", tag, n, constraints, width, seed),
		Family: "parity", Seed: seed, Expected: exp, F: f,
	}
}

// addXOR appends the CNF expansion of x1 ⊕ … ⊕ xk = rhs: all clauses with
// an even (rhs=true: odd) number of negations... concretely every polarity
// combination whose parity of positive literals disagrees with rhs is
// excluded.
func addXOR(f *cnf.Formula, vars []int, rhs bool) {
	k := len(vars)
	for mask := 0; mask < 1<<k; mask++ {
		// Count negated positions; the clause forbids the assignment whose
		// XOR is ¬rhs.
		neg := 0
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				neg++
			}
		}
		parity := neg%2 == 1
		// Assignment excluded by this clause: literal l_i false for all i.
		// XOR of the excluded assignment = parity of positives among
		// "false" pattern. A clause with negs negations excludes the
		// assignment where negated vars are true. That assignment's XOR is
		// (neg mod 2).
		if parity == rhs {
			continue // excluded assignment would have XOR == rhs: keep it
		}
		lits := make([]cnf.Lit, k)
		for b := 0; b < k; b++ {
			l := cnf.Lit(vars[b])
			if mask&(1<<b) != 0 {
				l = -l
			}
			lits[b] = l
		}
		f.MustAddClause(lits...)
	}
}

func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n) + 1
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
