package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	r := buildTestRegistry()
	RegisterProcessMetrics(r, time.Now())
	ts := httptest.NewServer(NewHandler(r))
	defer ts.Close()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	types, samples := parsePrometheus(t, body)
	if types["zoo_events_total"] != "counter" || len(samples) == 0 {
		t.Errorf("/metrics missing expected families; got types %v", types)
	}
	if types["process_uptime_seconds"] != "gauge" {
		t.Error("/metrics missing process gauges")
	}

	body, resp = get("/metrics.json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json does not decode: %v", err)
	}
	if len(snap.Counters) == 0 || len(snap.Gauges) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("/metrics.json snapshot incomplete: %+v", snap)
	}

	body, _ = get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q, want \"ok\\n\"", body)
	}

	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServeLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "", nil).Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("listener still reachable after Close")
	}
}
