package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// NewHandler builds the telemetry mux for a registry:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot (same series, machine-friendly)
//	/healthz        liveness: 200 "ok"
//	/debug/pprof/*  net/http/pprof profiles
func NewHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is abort the response.
			return
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves the registry's
// telemetry endpoints in a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandler(r)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// RegisterProcessMetrics adds process-level gauges — uptime, goroutines,
// heap — evaluated live at scrape time. start anchors the uptime gauge
// (typically the process start).
func RegisterProcessMetrics(r *Registry, start time.Time) {
	r.GaugeFunc("process_uptime_seconds", "Seconds since the process registered its telemetry.", nil,
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
