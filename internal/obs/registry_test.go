package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter", nil)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	if again := r.Counter("test_total", "a counter", nil); again != c {
		t.Fatal("re-registering the same series must return the same instrument")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge", nil)
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("Value() = %v, want 1", got)
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_fn", "a live gauge", nil, func() float64 { return 1 })
	r.GaugeFunc("test_fn", "a live gauge", nil, func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 2 {
		t.Fatalf("gauges = %+v, want one sample with value 2 (latest fn wins)", snap.Gauges)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// le semantics: 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4; 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("Sum() = %v, want 106", h.Sum())
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets must panic")
		}
	}()
	NewRegistry().Histogram("bad_seconds", "", []float64{1, 1}, nil)
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("clash", "", nil)
}

func TestLabelSignatureOrderIndependent(t *testing.T) {
	a := labelSignature(Labels{"a": "1", "b": "2"})
	b := labelSignature(Labels{"b": "2", "a": "1"})
	if a != b {
		t.Fatalf("signature depends on map order: %q vs %q", a, b)
	}
	if labelSignature(Labels{"a": "1\x1fb", "c": "2"}) == labelSignature(Labels{"a": "1", "bc": "2"}) {
		t.Fatal("distinct label sets collide")
	}
}

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// seriesKey identifies a histogram series ignoring the le label.
func (s promSample) seriesKey() string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		b.WriteString("\x00" + k + "\x01" + s.labels[k])
	}
	return b.String()
}

// parsePrometheus is a strict mini-parser for the text exposition format
// (version 0.0.4): it fails the test on any malformed line, returning the
// TYPE declarations and the samples.
func parsePrometheus(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		n := ln + 1
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			if i := strings.IndexByte(rest, ' '); i <= 0 {
				t.Fatalf("line %d: HELP without text: %q", n, line)
			}
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", n, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", n, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment: %q", n, line)
		}
		samples = append(samples, parsePromSample(t, n, line))
	}
	return types, samples
}

func parsePromSample(t *testing.T, n int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		t.Fatalf("line %d: no name: %q", n, line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				t.Fatalf("line %d: unterminated label block: %q", n, line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			if rest[0] == ',' {
				rest = rest[1:]
			}
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label: %q", n, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value: %q", n, line)
				}
				c := rest[0]
				switch c {
				case '"':
					rest = rest[1:]
				case '\\':
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape: %q", n, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c", n, rest[1])
					}
					rest = rest[2:]
					continue
				default:
					val.WriteByte(c)
					rest = rest[1:]
					continue
				}
				break
			}
			s.labels[key] = val.String()
		}
	}
	if rest == "" || rest[0] != ' ' {
		t.Fatalf("line %d: missing value: %q", n, line)
	}
	switch v := rest[1:]; v {
	case "+Inf":
		s.value = math.Inf(1)
	case "-Inf":
		s.value = math.Inf(-1)
	default:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", n, v, err)
		}
		s.value = f
	}
	return s
}

// buildTestRegistry assembles a registry exercising every instrument kind
// plus label values that need every escape sequence.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("zoo_events_total", "Events seen.\nMultiline help \\ with backslash.",
		Labels{"kind": `quote " backslash \ newline` + "\n" + `end`}).Add(7)
	r.Counter("zoo_events_total", "Events seen.", Labels{"kind": "plain"}).Add(3)
	r.Counter("alpha_total", "First family by name.", nil).Inc()
	r.Gauge("zoo_depth", "Current depth.", nil).Set(2.5)
	r.GaugeFunc("zoo_live", "Computed at scrape time.", nil, func() float64 { return 9 })
	h := r.Histogram("zoo_seconds", "Latency.", []float64{0.1, 0.5, 2}, Labels{"op": "solve"})
	for _, v := range []float64{0.05, 0.3, 0.3, 1, 5} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusParsesCleanly(t *testing.T) {
	r := buildTestRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePrometheus(t, buf.String())

	// Every sample belongs to a declared family; suffixed histogram series
	// resolve to their base name.
	for _, s := range samples {
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(s.name, suf); b != s.name && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("sample %q has no TYPE declaration", s.name)
		}
	}

	// Label escaping round-trips: the parsed value is the original string.
	nasty := `quote " backslash \ newline` + "\n" + `end`
	found := false
	for _, s := range samples {
		if s.name == "zoo_events_total" && s.labels["kind"] == nasty {
			found = true
			if s.value != 7 {
				t.Errorf("escaped-label counter = %v, want 7", s.value)
			}
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip; output:\n%s", buf.String())
	}

	// Families appear in sorted order.
	var familyOrder []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			familyOrder = append(familyOrder, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(familyOrder) {
		t.Errorf("families not sorted: %v", familyOrder)
	}

	checkHistogramSeries(t, samples)
}

// checkHistogramSeries validates, for every histogram series, that bucket
// counts are cumulative (monotone nondecreasing in le order), that the +Inf
// bucket is present, and that it equals the _count sample.
func checkHistogramSeries(t *testing.T, samples []promSample) {
	t.Helper()
	type bucket struct {
		le    float64
		count float64
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_bucket") {
			le, ok := s.labels["le"]
			if !ok {
				t.Errorf("bucket sample without le label: %+v", s)
				continue
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("unparsable le %q", le)
					continue
				}
			}
			key := promSample{name: strings.TrimSuffix(s.name, "_bucket"), labels: s.labels}.seriesKey()
			buckets[key] = append(buckets[key], bucket{bound, s.value})
		}
		if strings.HasSuffix(s.name, "_count") {
			key := promSample{name: strings.TrimSuffix(s.name, "_count"), labels: s.labels}.seriesKey()
			counts[key] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Error("no histogram series found")
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s: no +Inf bucket", key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].count < bs[i-1].count {
				t.Errorf("%s: bucket counts not cumulative: le=%v count=%v < previous %v",
					key, bs[i].le, bs[i].count, bs[i-1].count)
			}
		}
		total, ok := counts[key]
		if !ok {
			t.Errorf("%s: no _count sample", key)
		} else if last.count != total {
			t.Errorf("%s: +Inf bucket %v != _count %v", key, last.count, total)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	snap := r.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot does not round-trip through JSON:\n got %+v\nwant %+v", back, snap)
	}
	// Histogram sample carries non-cumulative per-bucket counts with the
	// +Inf bucket flagged, summing to Count.
	for _, h := range snap.Histograms {
		var sum int64
		for _, b := range h.Buckets {
			sum += b.Count
		}
		if sum != h.Count {
			t.Errorf("%s: bucket counts sum to %d, Count = %d", h.Name, sum, h.Count)
		}
		if last := h.Buckets[len(h.Buckets)-1]; !last.Inf {
			t.Errorf("%s: final bucket not marked Inf", h.Name)
		}
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := buildTestRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("consecutive WritePrometheus outputs differ")
	}
	if !reflect.DeepEqual(r.Snapshot(), r.Snapshot()) {
		t.Error("consecutive snapshots differ")
	}
}
