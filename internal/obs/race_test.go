// Race test (package obs_test so it can import sweep, which itself imports
// obs): Prometheus and JSON scrapes must be safe while a sweep hammers the
// registry — worker counters updating, new labeled series registering
// mid-scrape, and SweepCounters.Reset swapping the worker slice between
// runs. Run with -race; see scripts/check.sh.
package obs_test

import (
	"context"
	"io"
	"strconv"
	"sync"
	"testing"
	"time"

	"neuroselect/internal/metrics"
	"neuroselect/internal/obs"
	"neuroselect/internal/sweep"
)

func TestScrapeDuringSweep(t *testing.T) {
	reg := obs.NewRegistry()
	var counters metrics.SweepCounters
	obs.RegisterSweepCounters(reg, &counters)
	obs.RegisterProcessMetrics(reg, time.Now())

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				if err := reg.WriteJSON(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Several sweep runs so Reset races with live scrapes; each cell also
	// registers a labeled series, racing family creation against exposition.
	opts := sweep.Options{Workers: 4, Counters: &counters, Registry: reg}
	for run := 0; run < 4; run++ {
		_, errs := sweep.Map(context.Background(), opts, 64, func(ctx context.Context, i int) (int, error) {
			reg.Counter("race_cells_total", "Cells by shard.",
				obs.Labels{"shard": strconv.Itoa(i % 7)}).Inc()
			reg.Gauge("race_last_cell", "Last cell index.", nil).Set(float64(i))
			return i, nil
		})
		if err := sweep.FirstError(errs); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	scrapers.Wait()

	if got := reg.Counter("race_cells_total", "", obs.Labels{"shard": "0"}).Value(); got == 0 {
		t.Error("labeled counter never incremented")
	}
	snap := reg.Snapshot()
	var cells int64
	for _, c := range snap.Counters {
		if c.Name == "race_cells_total" {
			cells += c.Value
		}
	}
	if want := int64(4 * 64); cells != want {
		t.Errorf("race_cells_total sums to %d, want %d", cells, want)
	}
	if counters.Started() != 64 {
		t.Errorf("Started() = %d after final sweep, want 64", counters.Started())
	}
}
