// Package obs is the solver-wide observability layer: a structured search
// tracer threaded through the solver's cold-path boundaries, a process-wide
// metrics registry with Prometheus text and JSON exposition, and an optional
// HTTP listener serving live telemetry (/metrics, /healthz, net/http/pprof).
//
// The tracer contract is zero-cost-when-nil: every instrumented component
// guards its event construction behind a nil check on a cold path (restart,
// reduce, conflict-window boundary), so a solver built without a tracer runs
// bit-identically to one that predates the layer — the golden-trajectory and
// steady-state-allocation tests pin this.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event types. Every trace record carries exactly one of these in its Type
// field; the remaining fields are a union keyed by it (unused fields are
// omitted from the JSONL encoding).
const (
	// EventSolveStart opens a solve: instance shape and policy.
	EventSolveStart = "solve_start"
	// EventWindow is the per-conflict-window rollup: cumulative counters
	// plus window-local props/sec, mean glue, and trail depth.
	EventWindow = "window"
	// EventRestart marks a Luby restart.
	EventRestart = "restart"
	// EventReduce marks a clause-database reduction and the arena GC that
	// ran with it.
	EventReduce = "reduce"
	// EventSolveEnd closes a solve with its status and final counters.
	EventSolveEnd = "solve_end"
	// EventPolicy records one portfolio policy-selection decision.
	EventPolicy = "policy"
	// EventExchange records one portfolio worker's cumulative clause-
	// exchange totals at an exchange-round boundary (deterministic mode:
	// once per worker per round; free-running mode: once per worker when
	// the portfolio drains).
	EventExchange = "exchange"
)

// Event is one trace record. The struct is the JSONL schema: field tags are
// stable, additions are append-only, and consumers must tolerate unknown
// fields (the external contract is documented in API.md §2). TimeNS is
// nanoseconds since the enclosing solve started.
type Event struct {
	Type   string `json:"type"`
	TimeNS int64  `json:"t_ns"`

	// Instance shape (solve_start) and deletion policy (solve_start,
	// policy).
	Vars    int    `json:"vars,omitempty"`
	Clauses int    `json:"clauses,omitempty"`
	Policy  string `json:"policy,omitempty"`

	// Cumulative search counters (window, restart, reduce, solve_end).
	Conflicts    int64 `json:"conflicts,omitempty"`
	Decisions    int64 `json:"decisions,omitempty"`
	Propagations int64 `json:"propagations,omitempty"`
	Restarts     int64 `json:"restarts,omitempty"`
	Reductions   int64 `json:"reductions,omitempty"`
	Learned      int64 `json:"learned,omitempty"`
	Deleted      int64 `json:"deleted,omitempty"`
	LiveLearned  int   `json:"live_learned,omitempty"`
	ArenaWords   int   `json:"arena_words,omitempty"`

	// Window-local rollups (window).
	WindowConflicts int64   `json:"window_conflicts,omitempty"`
	PropsPerSec     float64 `json:"props_per_sec,omitempty"`
	MeanGlue        float64 `json:"mean_glue,omitempty"`
	TrailDepth      int     `json:"trail_depth,omitempty"`
	MaxTrail        int     `json:"max_trail,omitempty"`

	// Reduction detail (reduce).
	Candidates      int   `json:"candidates,omitempty"`
	ReduceDeleted   int   `json:"reduce_deleted,omitempty"`
	GCCompactions   int64 `json:"gc_compactions,omitempty"`
	GCLitsReclaimed int64 `json:"gc_lits_reclaimed,omitempty"`
	GCBytesMoved    int64 `json:"gc_bytes_moved,omitempty"`

	// Outcome (solve_end).
	Status string `json:"status,omitempty"`

	// Policy selection (policy).
	Prob        float64 `json:"prob,omitempty"`
	Fallback    string  `json:"fallback,omitempty"`
	InferenceNS int64   `json:"inference_ns,omitempty"`

	// Clause-exchange totals (exchange): cumulative per portfolio worker.
	Round    int   `json:"round,omitempty"`
	Worker   int   `json:"worker,omitempty"`
	Exported int64 `json:"exported,omitempty"`
	Imported int64 `json:"imported,omitempty"`
	Filtered int64 `json:"filtered,omitempty"`
	Dropped  int64 `json:"dropped,omitempty"`

	// Request correlation (streamed events only): the X-Request-ID of the
	// HTTP request that started the solve, stamped by the serving layer's
	// Broadcaster. Absent in offline JSONL traces.
	ReqID string `json:"req_id,omitempty"`
}

// Tracer receives structured search events. Implementations may retain the
// event — emitters allocate a fresh Event per call (all call sites are cold
// paths). Implementations must be safe for use from the single goroutine
// driving one solve; concurrent solves need separate tracers or an
// internally synchronized one (JSONLTracer is synchronized).
type Tracer interface {
	Trace(ev *Event)
}

// Multi fans one event stream out to several tracers. Nil entries are
// dropped; Multi() and Multi(nil) return nil, preserving the
// zero-cost-when-nil contract for callers that assemble tracers
// conditionally.
func Multi(ts ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiTracer(kept)
}

type multiTracer []Tracer

func (m multiTracer) Trace(ev *Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// JSONLTracer streams events as JSON Lines: one object per event, schema
// defined by the Event struct tags. It is safe for concurrent use; the
// first write error is sticky and surfaces from Flush. Events arriving
// after the stream has gone bad are counted as dropped — never silently
// discarded — readable via Dropped and exportable as the
// neuroselect_obs_dropped_events_total{sink="jsonl"} self-metric.
type JSONLTracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	err     error
	dropped int64
	drops   *Counter // nil until CountDropsIn
}

// NewJSONLTracer wraps w in a buffered JSONL event sink. Call Flush before
// closing the underlying writer.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: bufio.NewWriter(w)}
}

// CountDropsIn registers the tracer's drop count as the obs self-metric
// neuroselect_obs_dropped_events_total{sink="jsonl"} in reg. Returns t for
// chaining at construction.
func (t *JSONLTracer) CountDropsIn(reg *Registry) *JSONLTracer {
	c := reg.Counter(DroppedEventsMetric, droppedEventsHelp, Labels{"sink": "jsonl"})
	t.mu.Lock()
	t.drops = c
	t.mu.Unlock()
	return t
}

// Trace encodes one event as a JSON line. An event lost to a marshal
// failure or a (possibly sticky) write error counts as dropped.
func (t *JSONLTracer) Trace(ev *Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		t.dropLocked()
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		t.dropLocked()
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		t.dropLocked()
		return
	}
	if t.err = t.w.WriteByte('\n'); t.err != nil {
		t.dropLocked()
	}
}

func (t *JSONLTracer) dropLocked() {
	t.dropped++
	if t.drops != nil {
		t.drops.Inc()
	}
}

// Dropped returns how many events were lost to encode/write errors.
func (t *JSONLTracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Flush drains the buffer and returns the first error seen on the stream.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}
