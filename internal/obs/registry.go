package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to an instrument. Instruments with the same
// name and different label sets are children of one metric family and must
// agree on type.
type Labels map[string]string

// Registry is a process-wide metrics registry: counters, gauges, gauge
// functions, and histograms, each addressed by (name, labels). All
// instrument operations are safe for concurrent use; exposition
// (WritePrometheus, Snapshot) is deterministic — families sort by name,
// children by label signature.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Instrument types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one metric name: its help text, type, and labeled children.
type family struct {
	name, help, typ string
	children        map[string]*child // keyed by label signature
	order           []string          // signatures, sorted on demand
	sorted          bool
}

// child is one (name, labels) series. The instrument fields are written
// once, under the registry lock, when the child is created; gaugeFn is
// atomic because GaugeFunc re-registration replaces it while scrapes may
// be reading it.
type child struct {
	labels  Labels // nil for the unlabeled child
	counter *Counter
	gauge   *Gauge
	gaugeFn atomic.Pointer[func() float64]
	hist    *Histogram
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d atomically.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative-bucket latency/size distribution.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    Gauge          // atomic float accumulator
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets are the default latency buckets (seconds), spanning sub-
// millisecond solver cells to multi-second solves.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// Counter returns (registering on first use) the counter name{labels}.
// Registering a name that already exists with a different type panics: the
// registry is program-assembled, so a type clash is a bug, not input.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.child(name, help, typeCounter, labels, nil).counter
}

// Gauge returns (registering on first use) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.child(name, help, typeGauge, labels, nil).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — the bridge for live counters owned elsewhere (e.g. a sweep's
// worker counters). Re-registering the same (name, labels) replaces fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.child(name, help, typeGauge, labels, nil).gaugeFn.Store(&fn)
}

// Histogram returns (registering on first use) the histogram name{labels}
// with the given ascending bucket upper bounds (nil = DefBuckets). A +Inf
// bucket is implicit. Bucket bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	return r.child(name, help, typeHistogram, labels, buckets).hist
}

// child resolves (name, labels) to its series, creating the family, the
// child, and its instrument as needed — all under the registry lock, so
// concurrent first registrations of the same series return one instrument.
func (r *Registry) child(name, help, typ string, labels Labels, buckets []float64) *child {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	c := f.children[sig]
	if c == nil {
		var copied Labels
		if len(labels) > 0 {
			copied = make(Labels, len(labels))
			for k, v := range labels {
				copied[k] = v
			}
		}
		c = &child{labels: copied}
		switch typ {
		case typeCounter:
			c.counter = &Counter{}
		case typeGauge:
			c.gauge = &Gauge{}
		case typeHistogram:
			if buckets == nil {
				buckets = DefBuckets
			}
			bounds := append([]float64(nil), buckets...)
			for i := 1; i < len(bounds); i++ {
				if bounds[i] <= bounds[i-1] {
					panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
				}
			}
			c.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		}
		f.children[sig] = c
		f.order = append(f.order, sig)
		f.sorted = false
	}
	return c
}

// labelSignature canonicalizes a label set: keys sorted, joined with
// non-printable separators so distinct sets cannot collide.
func labelSignature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0x1f)
		b.WriteString(labels[k])
		b.WriteByte(0x1e)
	}
	return b.String()
}

// familyView is an exposition-time snapshot of one family: name/help/type
// plus the children in label-signature order. The child pointers are stable
// and their instruments atomic, so readers need no further locking.
type familyView struct {
	name, help, typ string
	children        []*child
}

// snapshotFamilies returns the families sorted by name with each family's
// children sorted by label signature, for deterministic exposition. The
// child lists are copied under the registry lock so concurrent registration
// cannot race with an in-flight scrape.
func (r *Registry) snapshotFamilies() []familyView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		if !f.sorted {
			sort.Strings(f.order)
			f.sorted = true
		}
		children := make([]*child, len(f.order))
		for i, sig := range f.order {
			children[i] = f.children[sig]
		}
		out = append(out, familyView{name: f.name, help: f.help, typ: f.typ, children: children})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
