package obs

import (
	"neuroselect/internal/metrics"
)

// MetricsTracer bridges the solver's trace stream into a Registry: the
// cumulative counters carried by window/restart/reduce/solve_end events are
// differenced into monotonic registry counters, and the window-local
// rollups (props/sec, mean glue, trail depth) land in gauges. One
// MetricsTracer instruments one solver at a time — the delta state assumes
// a single monotonically counting source.
type MetricsTracer struct {
	last Event // previous cumulative snapshot

	conflicts, decisions, propagations *Counter
	restarts, reductions               *Counter
	learned, deleted                   *Counter
	gcCompactions, gcLits, gcBytes     *Counter
	solves                             func(status string) *Counter
	pps, meanGlue, trailDepth          *Gauge
	liveLearned, arenaWords            *Gauge
	vars, clauses                      *Gauge
	windowConflicts                    *Gauge
}

// NewMetricsTracer returns a Tracer that records solver search progress
// into r under the neuroselect_solver_* namespace.
func NewMetricsTracer(r *Registry) *MetricsTracer {
	c := func(name, help string) *Counter { return r.Counter(name, help, nil) }
	g := func(name, help string) *Gauge { return r.Gauge(name, help, nil) }
	return &MetricsTracer{
		conflicts:     c("neuroselect_solver_conflicts_total", "Conflicts found by the CDCL search."),
		decisions:     c("neuroselect_solver_decisions_total", "Decisions made by the CDCL search."),
		propagations:  c("neuroselect_solver_propagations_total", "BCP assignments made by the CDCL search."),
		restarts:      c("neuroselect_solver_restarts_total", "Luby restarts."),
		reductions:    c("neuroselect_solver_reductions_total", "Learned-clause database reductions."),
		learned:       c("neuroselect_solver_learned_total", "Learned clauses added."),
		deleted:       c("neuroselect_solver_deleted_total", "Learned clauses deleted by reduction."),
		gcCompactions: c("neuroselect_solver_gc_compactions_total", "Arena GC compaction passes."),
		gcLits:        c("neuroselect_solver_gc_literals_reclaimed_total", "Literal words reclaimed by arena GC."),
		gcBytes:       c("neuroselect_solver_gc_bytes_moved_total", "Bytes slid during arena GC compaction."),
		solves: func(status string) *Counter {
			return r.Counter("neuroselect_solver_solves_total", "Completed solve calls by status.", Labels{"status": status})
		},
		pps:             g("neuroselect_solver_props_per_sec", "Propagation rate over the last conflict window."),
		meanGlue:        g("neuroselect_solver_mean_glue", "Mean glue (LBD) of clauses learned in the last conflict window."),
		trailDepth:      g("neuroselect_solver_trail_depth", "Trail depth at the last conflict-window boundary."),
		liveLearned:     g("neuroselect_solver_live_learned", "Live learned clauses."),
		arenaWords:      g("neuroselect_solver_arena_words", "Clause arena size in 32-bit words."),
		vars:            g("neuroselect_solver_variables", "Variables of the instance being solved."),
		clauses:         g("neuroselect_solver_clauses", "Problem clauses of the instance being solved."),
		windowConflicts: g("neuroselect_solver_window_conflicts", "Conflicts in the last rollup window."),
	}
}

// Trace implements Tracer.
func (t *MetricsTracer) Trace(ev *Event) {
	switch ev.Type {
	case EventSolveStart:
		t.vars.Set(float64(ev.Vars))
		t.clauses.Set(float64(ev.Clauses))
		t.last = Event{}
		return
	case EventPolicy:
		return
	}
	// window / restart / reduce / solve_end all carry the cumulative
	// counter snapshot; difference against the previous one.
	t.conflicts.Add(ev.Conflicts - t.last.Conflicts)
	t.decisions.Add(ev.Decisions - t.last.Decisions)
	t.propagations.Add(ev.Propagations - t.last.Propagations)
	t.restarts.Add(ev.Restarts - t.last.Restarts)
	t.reductions.Add(ev.Reductions - t.last.Reductions)
	t.learned.Add(ev.Learned - t.last.Learned)
	t.deleted.Add(ev.Deleted - t.last.Deleted)
	t.gcCompactions.Add(ev.GCCompactions - t.last.GCCompactions)
	t.gcLits.Add(ev.GCLitsReclaimed - t.last.GCLitsReclaimed)
	t.gcBytes.Add(ev.GCBytesMoved - t.last.GCBytesMoved)
	t.last = *ev
	t.liveLearned.Set(float64(ev.LiveLearned))
	t.arenaWords.Set(float64(ev.ArenaWords))
	switch ev.Type {
	case EventWindow:
		t.pps.Set(ev.PropsPerSec)
		t.meanGlue.Set(ev.MeanGlue)
		t.trailDepth.Set(float64(ev.TrailDepth))
		t.windowConflicts.Set(float64(ev.WindowConflicts))
	case EventSolveEnd:
		t.solves(ev.Status).Inc()
	}
}

// RegisterSweepCounters exposes a sweep's live worker counters as gauge
// functions under the neuroselect_sweep_* namespace. The counters object is
// read at scrape time, so a dashboard polling /metrics during a sweep sees
// queue depth and per-worker progress move; SweepCounters reads are safe
// against a concurrent Reset (the next sweep) by design.
func RegisterSweepCounters(r *Registry, c *metrics.SweepCounters) {
	g := func(name, help string, fn func() float64) { r.GaugeFunc(name, help, nil, fn) }
	g("neuroselect_sweep_cells", "Cells in the current/last sweep.",
		func() float64 { return float64(c.Cells()) })
	g("neuroselect_sweep_queue_depth", "Cells not yet pulled by any worker.",
		func() float64 { return float64(c.QueueDepth()) })
	g("neuroselect_sweep_started", "Cells pulled off the queue.",
		func() float64 { return float64(c.Started()) })
	g("neuroselect_sweep_finished", "Cells finished without error.",
		func() float64 { return float64(c.Finished()) })
	g("neuroselect_sweep_failed", "Cells that returned an error.",
		func() float64 { return float64(c.Failed()) })
	g("neuroselect_sweep_workers", "Worker goroutines of the current/last sweep.",
		func() float64 { return float64(c.NumWorkers()) })
	g("neuroselect_sweep_busy_seconds", "Summed per-worker cell execution time.",
		func() float64 { return c.Busy().Seconds() })
	g("neuroselect_sweep_wall_seconds", "Wall time of the last completed sweep.",
		func() float64 { return c.Wall().Seconds() })
}
