package obs

import (
	"encoding/json"
	"io"
)

// Snapshot is a point-in-time JSON-encodable view of a registry. The field
// tags are the JSON schema; CounterSample/GaugeSample/HistogramSample
// round-trip losslessly through encoding/json (bucket bounds are finite, so
// no ±Inf leaks into the encoding).
type Snapshot struct {
	Counters   []CounterSample   `json:"counters"`
	Gauges     []GaugeSample     `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
}

// CounterSample is one counter series.
type CounterSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSample is one gauge series (direct or function-backed).
type GaugeSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSample is one histogram series with per-bucket (non-cumulative)
// counts; the +Inf bucket is the final entry with no upper bound set.
type HistogramSample struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Buckets []BucketCount     `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   int64             `json:"count"`
}

// BucketCount is one histogram bucket. Inf marks the overflow bucket, whose
// UpperBound is meaningless.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Inf        bool    `json:"inf,omitempty"`
	Count      int64   `json:"count"`
}

// Snapshot captures every series in the registry, deterministically ordered
// (families by name, children by label signature).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []CounterSample{},
		Gauges:     []GaugeSample{},
		Histograms: []HistogramSample{},
	}
	for _, f := range r.snapshotFamilies() {
		for _, c := range f.children {
			switch f.typ {
			case typeCounter:
				snap.Counters = append(snap.Counters, CounterSample{
					Name: f.name, Labels: c.labels, Value: c.counter.Value(),
				})
			case typeGauge:
				v := c.gauge.Value()
				if fn := c.gaugeFn.Load(); fn != nil {
					v = (*fn)()
				}
				snap.Gauges = append(snap.Gauges, GaugeSample{
					Name: f.name, Labels: c.labels, Value: v,
				})
			case typeHistogram:
				h := c.hist
				hs := HistogramSample{
					Name: f.name, Labels: c.labels,
					Buckets: make([]BucketCount, 0, len(h.bounds)+1),
					Sum:     h.Sum(), Count: h.Count(),
				}
				for i, bound := range h.bounds {
					hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: bound, Count: h.counts[i].Load()})
				}
				hs.Buckets = append(hs.Buckets, BucketCount{Inf: true, Count: h.counts[len(h.bounds)].Load()})
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}

// WriteJSON writes the snapshot as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
