package obs

import (
	"fmt"
	"sync"
	"testing"
)

// drainSub collects everything currently queued (and any replay) until the
// channel would block or closes.
func drainSub(sub *Subscription) []StampedEvent {
	var out []StampedEvent
	for {
		select {
		case se, ok := <-sub.C():
			if !ok {
				return out
			}
			out = append(out, se)
		default:
			return out
		}
	}
}

func TestBroadcasterFanOutOrderAndSeq(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 16})
	s1, gap1 := b.Subscribe(0, 8)
	s2, gap2 := b.Subscribe(0, 8)
	if gap1 || gap2 {
		t.Fatalf("fresh subscriptions reported a gap")
	}
	for i := 0; i < 5; i++ {
		b.Trace(&Event{Type: EventWindow, Conflicts: int64(i)})
	}
	for name, sub := range map[string]*Subscription{"s1": s1, "s2": s2} {
		got := drainSub(sub)
		if len(got) != 5 {
			t.Fatalf("%s: got %d events, want 5", name, len(got))
		}
		for i, se := range got {
			if se.Seq != int64(i+1) {
				t.Fatalf("%s: event %d has seq %d, want %d", name, i, se.Seq, i+1)
			}
			if se.Event.Conflicts != int64(i) {
				t.Fatalf("%s: event %d carries conflicts %d, want %d", name, i, se.Event.Conflicts, i)
			}
		}
	}
	if got := b.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
}

func TestBroadcasterLateSubscriberReplays(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 16})
	for i := 0; i < 6; i++ {
		b.Trace(&Event{Type: EventWindow, Conflicts: int64(i)})
	}
	sub, gap := b.Subscribe(0, 4)
	if gap {
		t.Fatalf("replay within ring capacity reported a gap")
	}
	got := drainSub(sub)
	if len(got) != 6 {
		t.Fatalf("replayed %d events, want 6", len(got))
	}
	for i, se := range got {
		if se.Seq != int64(i+1) {
			t.Fatalf("replay out of order: event %d has seq %d", i, se.Seq)
		}
	}
}

func TestBroadcasterResumeAfterSeq(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 16})
	for i := 0; i < 8; i++ {
		b.Trace(&Event{Type: EventWindow})
	}
	sub, gap := b.Subscribe(5, 4)
	if gap {
		t.Fatalf("resume from retained seq reported a gap")
	}
	got := drainSub(sub)
	if len(got) != 3 || got[0].Seq != 6 || got[2].Seq != 8 {
		t.Fatalf("resume after seq 5: got %+v seqs, want 6..8", got)
	}
	// Resuming from the head replays nothing and live events still arrive.
	sub2, _ := b.Subscribe(8, 4)
	if pre := drainSub(sub2); len(pre) != 0 {
		t.Fatalf("resume from head replayed %d events, want 0", len(pre))
	}
	b.Trace(&Event{Type: EventRestart})
	live := <-sub2.C()
	if live.Seq != 9 || live.Event.Type != EventRestart {
		t.Fatalf("live event after resume = %+v, want seq 9 restart", live)
	}
}

func TestBroadcasterRingEvictionGap(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 4})
	for i := 0; i < 10; i++ {
		b.Trace(&Event{Type: EventWindow, Conflicts: int64(i)})
	}
	// Ring holds seqs 7..10; subscribing from 0 must flag the hole.
	sub, gap := b.Subscribe(0, 4)
	if !gap {
		t.Fatalf("evicted history did not report a gap")
	}
	got := drainSub(sub)
	if len(got) != 4 || got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("ring replay seqs = %v, want 7..10", got)
	}
	// Resuming from inside the evicted range also flags the gap.
	if _, gap := b.Subscribe(3, 4); !gap {
		t.Fatalf("resume from evicted seq did not report a gap")
	}
	// Resuming from a retained seq does not.
	if _, gap := b.Subscribe(7, 4); gap {
		t.Fatalf("resume from retained seq reported a gap")
	}
}

func TestBroadcasterOverflowDropsAndCounts(t *testing.T) {
	var notified int64
	reg := NewRegistry()
	b := NewBroadcaster(BroadcastOpts{
		Ring:     64,
		OnDrop:   func(n int64) { notified += n },
		Registry: reg,
	})
	sub, _ := b.Subscribe(0, 2) // deliberately tiny queue, never read
	for i := 0; i < 10; i++ {
		b.Trace(&Event{Type: EventWindow})
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscription dropped %d, want 8", got)
	}
	if got := b.Dropped(); got != 8 {
		t.Fatalf("broadcaster dropped %d, want 8", got)
	}
	if notified != 8 {
		t.Fatalf("OnDrop saw %d, want 8", notified)
	}
	c := reg.Counter(DroppedEventsMetric, droppedEventsHelp, Labels{"sink": "broadcast"})
	if got := c.Value(); got != 8 {
		t.Fatalf("self-metric = %d, want 8", got)
	}
	// The queued events are still intact and in order.
	got := drainSub(sub)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("surviving queue = %+v, want seqs 1,2", got)
	}
	// And the full history is replayable from the ring despite the drops.
	replay, gap := b.Subscribe(0, 16)
	if gap {
		t.Fatalf("ring lost events it should retain")
	}
	if all := drainSub(replay); len(all) != 10 {
		t.Fatalf("ring replay has %d events, want 10", len(all))
	}
}

func TestBroadcasterCloseSemantics(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 8})
	sub, _ := b.Subscribe(0, 4)
	b.Trace(&Event{Type: EventWindow})
	b.Close()
	b.Close() // idempotent
	if !b.Closed() {
		t.Fatalf("Closed() = false after Close")
	}
	// Pending events drain, then the channel closes.
	if se, ok := <-sub.C(); !ok || se.Seq != 1 {
		t.Fatalf("pending event lost on close: %+v ok=%v", se, ok)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatalf("channel still open after close")
	}
	// Tracing into a closed broadcaster is a no-op.
	b.Trace(&Event{Type: EventRestart})
	if got := b.LastSeq(); got != 1 {
		t.Fatalf("closed broadcaster advanced seq to %d", got)
	}
	// Late subscribers get the replay and an immediately closed channel.
	late, gap := b.Subscribe(0, 4)
	if gap {
		t.Fatalf("late subscribe reported gap")
	}
	if se, ok := <-late.C(); !ok || se.Seq != 1 {
		t.Fatalf("late replay = %+v ok=%v, want seq 1", se, ok)
	}
	if _, ok := <-late.C(); ok {
		t.Fatalf("late channel did not close after replay")
	}
	late.Cancel() // no-op after broadcaster close
}

func TestBroadcasterCancel(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 8})
	sub, _ := b.Subscribe(0, 4)
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Fatalf("canceled channel still open")
	}
	// A canceled subscription no longer receives or drops.
	b.Trace(&Event{Type: EventWindow})
	if got := sub.Dropped(); got != 0 {
		t.Fatalf("canceled subscription counted %d drops", got)
	}
	if got := b.Dropped(); got != 0 {
		t.Fatalf("broadcaster counted %d drops after cancel", got)
	}
}

func TestBroadcasterStampsReqID(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 8, ReqID: "req-42"})
	sub, _ := b.Subscribe(0, 4)
	b.Trace(&Event{Type: EventWindow})
	b.Trace(&Event{Type: EventPolicy, ReqID: "already-set"})
	got := drainSub(sub)
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if got[0].Event.ReqID != "req-42" {
		t.Fatalf("event req_id = %q, want req-42", got[0].Event.ReqID)
	}
	if got[1].Event.ReqID != "already-set" {
		t.Fatalf("pre-set req_id overwritten: %q", got[1].Event.ReqID)
	}
}

func TestBroadcasterConcurrent(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{Ring: 32})
	const emitters, events = 4, 200
	var wg sync.WaitGroup
	subs := make([]*Subscription, 6)
	for i := range subs {
		subs[i], _ = b.Subscribe(0, 16)
	}
	// Readers drain concurrently; two subscriptions cancel mid-stream.
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			n := 0
			for range sub.C() {
				n++
				if i < 2 && n > 20 {
					sub.Cancel()
					// Drain whatever raced in before the close.
					for range sub.C() {
					}
					return
				}
			}
		}(i, sub)
	}
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.Trace(&Event{Type: EventWindow, Worker: e})
			}
		}(e)
	}
	// A late subscriber races Close.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub, _ := b.Subscribe(0, 8)
		for range sub.C() {
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Close()
	}()
	wg.Wait()
	if got := b.LastSeq(); got > emitters*events {
		t.Fatalf("seq overran: %d > %d", got, emitters*events)
	}
}

func TestBroadcasterDefaultRing(t *testing.T) {
	b := NewBroadcaster(BroadcastOpts{})
	for i := 0; i < 300; i++ {
		b.Trace(&Event{Type: EventWindow})
	}
	sub, gap := b.Subscribe(0, 300)
	if !gap {
		t.Fatalf("default ring of 256 should have evicted 44 events")
	}
	if got := len(drainSub(sub)); got != 256 {
		t.Fatalf("default ring retained %d, want 256", got)
	}
}

func ExampleBroadcaster() {
	b := NewBroadcaster(BroadcastOpts{Ring: 8, ReqID: "abc123"})
	sub, _ := b.Subscribe(0, 4)
	b.Trace(&Event{Type: EventWindow, Conflicts: 256})
	b.Close()
	for se := range sub.C() {
		fmt.Printf("seq=%d type=%s req=%s\n", se.Seq, se.Event.Type, se.Event.ReqID)
	}
	// Output: seq=1 type=window req=abc123
}
