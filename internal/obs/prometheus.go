package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one # HELP / # TYPE pair
// per family, children sorted by label signature, histograms expanded into
// cumulative _bucket/_sum/_count series with a trailing +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, c := range f.children {
			switch f.typ {
			case typeCounter:
				writeSample(bw, f.name, c.labels, "", "", formatInt(c.counter.Value()))
			case typeGauge:
				v := c.gauge.Value()
				if fn := c.gaugeFn.Load(); fn != nil {
					v = (*fn)()
				}
				writeSample(bw, f.name, c.labels, "", "", formatFloat(v))
			case typeHistogram:
				h := c.hist
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(bw, f.name+"_bucket", c.labels, "le", formatFloat(bound), formatInt(cum))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(bw, f.name+"_bucket", c.labels, "le", "+Inf", formatInt(cum))
				writeSample(bw, f.name+"_sum", c.labels, "", "", formatFloat(h.Sum()))
				writeSample(bw, f.name+"_count", c.labels, "", "", formatInt(h.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one series line: name{labels,extraKey="extraVal"} value.
func writeSample(bw *bufio.Writer, name string, labels Labels, extraKey, extraVal, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		bw.WriteByte('{')
		first := true
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(k)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labels[k]))
			bw.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraKey)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraVal))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// escapeHelp escapes backslash and newline in help text, per the exposition
// format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote, and newline in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
