package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

type captureTracer struct{ events []Event }

func (c *captureTracer) Trace(ev *Event) { c.events = append(c.events, *ev) }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() must be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) must be nil")
	}
	single := &captureTracer{}
	if got := Multi(nil, single); got != Tracer(single) {
		t.Error("Multi with one live tracer must return it unwrapped")
	}
	a, b := &captureTracer{}, &captureTracer{}
	m := Multi(a, nil, b)
	m.Trace(&Event{Type: EventRestart})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Errorf("fan-out delivered %d/%d events, want 1/1", len(a.events), len(b.events))
	}
}

func TestJSONLTracerRoundTrip(t *testing.T) {
	events := []Event{
		{Type: EventSolveStart, Vars: 56, Clauses: 204, Policy: "frequency"},
		{Type: EventWindow, TimeNS: 12345, Conflicts: 256, Decisions: 300,
			Propagations: 9000, Learned: 255, LiveLearned: 200, ArenaWords: 4096,
			WindowConflicts: 256, PropsPerSec: 1.5e6, MeanGlue: 4.25,
			TrailDepth: 17, MaxTrail: 42},
		{Type: EventReduce, TimeNS: 23456, Conflicts: 600, Reductions: 1,
			Deleted: 120, Candidates: 240, ReduceDeleted: 120,
			GCCompactions: 1, GCLitsReclaimed: 700, GCBytesMoved: 5000},
		{Type: EventPolicy, Policy: "activity", Prob: 0.75, Fallback: "default", InferenceNS: 900},
		{Type: EventSolveEnd, TimeNS: 99999, Conflicts: 700, Status: "UNSAT"},
	}
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	for i := range events {
		tr.Trace(&events[i])
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d JSONL lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		var back Event
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, line)
		}
		if !reflect.DeepEqual(back, events[i]) {
			t.Errorf("line %d round-trip mismatch:\n got %+v\nwant %+v", i+1, back, events[i])
		}
		// Schema stability: the discriminator and timestamp keys are always
		// present under their documented names.
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatal(err)
		}
		if _, ok := raw["type"]; !ok {
			t.Errorf("line %d missing \"type\"", i+1)
		}
		if _, ok := raw["t_ns"]; !ok {
			t.Errorf("line %d missing \"t_ns\"", i+1)
		}
	}
}

type failWriter struct{ err error }

func (w failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestJSONLTracerStickyError(t *testing.T) {
	boom := errors.New("disk full")
	reg := NewRegistry()
	tr := NewJSONLTracer(failWriter{boom}).CountDropsIn(reg)
	// Overflow the bufio buffer so the write error surfaces.
	big := Event{Type: EventWindow, Policy: strings.Repeat("x", 1<<16)}
	tr.Trace(&big)
	tr.Trace(&big)
	tr.Trace(&big)
	if err := tr.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush() = %v, want sticky %v", err, boom)
	}
	if err := tr.Flush(); !errors.Is(err, boom) {
		t.Fatalf("second Flush() = %v, want sticky %v", err, boom)
	}
	// Every event lost to the bad stream is counted, not swallowed: the
	// first Trace hits the write error itself, the rest hit the sticky err.
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	c := reg.Counter(DroppedEventsMetric, droppedEventsHelp, Labels{"sink": "jsonl"})
	if got := c.Value(); got != 3 {
		t.Fatalf("self-metric = %d, want 3", got)
	}
}

func TestJSONLTracerNoDropsOnHealthyStream(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Trace(&Event{Type: EventWindow})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("healthy stream dropped %d events", got)
	}
}

func TestMetricsTracerDeltas(t *testing.T) {
	r := NewRegistry()
	mt := NewMetricsTracer(r)
	mt.Trace(&Event{Type: EventSolveStart, Vars: 50, Clauses: 200, Policy: "default"})
	mt.Trace(&Event{Type: EventWindow, Conflicts: 100, Decisions: 150, Propagations: 4000,
		Learned: 99, LiveLearned: 90, ArenaWords: 1024,
		WindowConflicts: 100, PropsPerSec: 2e6, MeanGlue: 3.5, TrailDepth: 12})
	mt.Trace(&Event{Type: EventRestart, Conflicts: 130, Decisions: 180, Propagations: 5000,
		Restarts: 1, Learned: 129, LiveLearned: 120, ArenaWords: 1024})
	mt.Trace(&Event{Type: EventReduce, Conflicts: 150, Decisions: 200, Propagations: 6000,
		Restarts: 1, Reductions: 1, Learned: 149, Deleted: 60,
		GCCompactions: 1, GCLitsReclaimed: 300, GCBytesMoved: 2048,
		LiveLearned: 89, ArenaWords: 900})
	mt.Trace(&Event{Type: EventSolveEnd, Conflicts: 160, Decisions: 210, Propagations: 6400,
		Restarts: 1, Reductions: 1, Learned: 158, Deleted: 60,
		GCCompactions: 1, GCLitsReclaimed: 300, GCBytesMoved: 2048,
		LiveLearned: 98, ArenaWords: 950, Status: "SAT"})

	// Counters hold the final cumulative values: the deltas telescope.
	wantCounters := map[string]int64{
		"neuroselect_solver_conflicts_total":             160,
		"neuroselect_solver_decisions_total":             210,
		"neuroselect_solver_propagations_total":          6400,
		"neuroselect_solver_restarts_total":              1,
		"neuroselect_solver_reductions_total":            1,
		"neuroselect_solver_learned_total":               158,
		"neuroselect_solver_deleted_total":               60,
		"neuroselect_solver_gc_compactions_total":        1,
		"neuroselect_solver_gc_literals_reclaimed_total": 300,
		"neuroselect_solver_gc_bytes_moved_total":        2048,
	}
	snap := r.Snapshot()
	got := map[string]int64{}
	for _, c := range snap.Counters {
		if c.Labels == nil {
			got[c.Name] = c.Value
		}
	}
	for name, want := range wantCounters {
		if got[name] != want {
			t.Errorf("%s = %d, want %d", name, got[name], want)
		}
	}
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	for name, want := range map[string]float64{
		"neuroselect_solver_variables":        50,
		"neuroselect_solver_clauses":          200,
		"neuroselect_solver_props_per_sec":    2e6,
		"neuroselect_solver_mean_glue":        3.5,
		"neuroselect_solver_trail_depth":      12,
		"neuroselect_solver_window_conflicts": 100,
		"neuroselect_solver_live_learned":     98,
		"neuroselect_solver_arena_words":      950,
	} {
		if gauges[name] != want {
			t.Errorf("gauge %s = %v, want %v", name, gauges[name], want)
		}
	}
	var solves int64 = -1
	for _, c := range snap.Counters {
		if c.Name == "neuroselect_solver_solves_total" && c.Labels["status"] == "SAT" {
			solves = c.Value
		}
	}
	if solves != 1 {
		t.Errorf("solves_total{status=SAT} = %d, want 1", solves)
	}

	// A second solve through the same tracer resets the delta base at
	// solve_start, so cumulative counters keep accumulating instead of
	// jumping backwards.
	mt.Trace(&Event{Type: EventSolveStart, Vars: 10, Clauses: 30})
	mt.Trace(&Event{Type: EventSolveEnd, Conflicts: 40, Status: "UNSAT"})
	if v := r.Counter("neuroselect_solver_conflicts_total", "", nil).Value(); v != 200 {
		t.Errorf("conflicts after second solve = %d, want 200", v)
	}
}
