package obs

import (
	"sync"
	"sync/atomic"
)

// Broadcaster fans one solve's trace-event stream out to N subscribers.
// It implements Tracer, so it drops into any tracer chain (obs.Multi)
// the solver or server already assembles.
//
// Delivery contract — the solver hot path is sacred:
//
//   - Trace never blocks. Each subscriber owns a bounded queue; an event
//     that finds the queue full is dropped for that subscriber and
//     counted (per-subscription and broadcaster-wide), never waited on.
//     A stalled consumer therefore costs the producing solve nothing —
//     the tracer-neutrality tests pin the search trajectory bit-identical
//     with a deliberately unread subscription attached.
//   - Every event gets a monotonically increasing sequence number,
//     stamped once by the broadcaster. A bounded ring buffer keeps the
//     most recent events so late subscribers (or an SSE client resuming
//     with Last-Event-ID) replay recent history before going live.
//   - Close terminates the stream: subscriber channels close after the
//     pending queue drains, and later subscribers still replay the ring
//     into an already-closed channel, so "subscribe after the solve
//     finished" degrades to a pure replay.
type Broadcaster struct {
	opts  BroadcastOpts
	drops *Counter // obs self-metric; nil without a Registry

	mu      sync.Mutex
	ring    []StampedEvent // circular once len == opts.Ring; grown lazily
	next    int            // ring insert position once the ring is full
	seq     int64          // last assigned sequence number (first event = 1)
	subs    map[*Subscription]struct{}
	closed  bool
	dropped atomic.Int64 // events dropped across all subscribers
}

// StampedEvent is one broadcast event with its stream sequence number —
// the SSE `id:` field, and the cursor Subscribe resumes from.
type StampedEvent struct {
	Seq   int64
	Event Event
}

// BroadcastOpts configures a Broadcaster. The zero value is usable.
type BroadcastOpts struct {
	// Ring bounds the replay history in events (<=0 → 256). The ring is
	// grown lazily, so an idle broadcaster costs a few words, not Ring
	// events.
	Ring int
	// ReqID, when non-empty, is stamped into every event's req_id field
	// (unless the emitter already set one), correlating the stream with
	// the HTTP request that started the solve.
	ReqID string
	// OnDrop, when non-nil, is called with the number of events dropped
	// by one Trace call (outside the broadcaster lock). The server maps
	// this onto event_stream_events_total{outcome="dropped"}.
	OnDrop func(n int64)
	// Registry, when non-nil, receives the obs self-metric
	// neuroselect_obs_dropped_events_total{sink="broadcast"}.
	Registry *Registry
}

// DroppedEventsMetric is the obs-layer self-metric: trace events a sink
// lost instead of delivering (labeled by sink: "broadcast" for overflowed
// subscriber queues, "jsonl" for writes discarded after a sticky error).
const DroppedEventsMetric = "neuroselect_obs_dropped_events_total"

const droppedEventsHelp = "Trace events lost by an obs sink instead of delivered, by sink (broadcast: subscriber queue overflow; jsonl: sticky write error)."

// NewBroadcaster builds an open broadcaster.
func NewBroadcaster(opts BroadcastOpts) *Broadcaster {
	if opts.Ring <= 0 {
		opts.Ring = 256
	}
	b := &Broadcaster{opts: opts, subs: make(map[*Subscription]struct{})}
	if opts.Registry != nil {
		b.drops = opts.Registry.Counter(DroppedEventsMetric, droppedEventsHelp,
			Labels{"sink": "broadcast"})
	}
	return b
}

// Trace implements Tracer: stamp, remember, fan out. Never blocks — a
// full subscriber queue drops the event for that subscriber and counts
// it. Safe for concurrent emitters (portfolio workers share one stream).
func (b *Broadcaster) Trace(ev *Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	se := StampedEvent{Seq: b.seq, Event: *ev}
	if se.Event.ReqID == "" {
		se.Event.ReqID = b.opts.ReqID
	}
	if len(b.ring) < b.opts.Ring {
		b.ring = append(b.ring, se)
	} else {
		b.ring[b.next] = se
		b.next = (b.next + 1) % len(b.ring)
	}
	var droppedNow int64
	for sub := range b.subs {
		select {
		case sub.ch <- se:
		default:
			sub.dropped.Add(1)
			droppedNow++
		}
	}
	b.mu.Unlock()
	if droppedNow > 0 {
		b.dropped.Add(droppedNow)
		if b.drops != nil {
			b.drops.Add(droppedNow)
		}
		if b.opts.OnDrop != nil {
			b.opts.OnDrop(droppedNow)
		}
	}
}

// Subscribe attaches a consumer. Ring events with Seq > afterSeq are
// replayed first (afterSeq 0 = everything retained), then live events
// flow through a queue of queueCap entries (<=0 → 64); replay always
// fits regardless of queueCap. gap reports that events between afterSeq
// and the replay were already evicted from the ring — the consumer sees
// a hole it may want to surface. Subscribing to a closed broadcaster
// returns the replay followed immediately by channel close.
func (b *Broadcaster) Subscribe(afterSeq int64, queueCap int) (sub *Subscription, gap bool) {
	if queueCap <= 0 {
		queueCap = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := b.replayLocked(afterSeq)
	if len(replay) > 0 {
		gap = replay[0].Seq > afterSeq+1
	} else {
		gap = b.seq > afterSeq
	}
	ch := make(chan StampedEvent, queueCap+len(replay))
	for _, se := range replay {
		ch <- se
	}
	sub = &Subscription{ch: ch, b: b}
	if b.closed {
		close(ch)
	} else {
		b.subs[sub] = struct{}{}
	}
	return sub, gap
}

// replayLocked returns the retained events with Seq > afterSeq in order.
func (b *Broadcaster) replayLocked(afterSeq int64) []StampedEvent {
	var out []StampedEvent
	appendAfter := func(evs []StampedEvent) {
		for _, se := range evs {
			if se.Seq > afterSeq {
				out = append(out, se)
			}
		}
	}
	if len(b.ring) < b.opts.Ring {
		appendAfter(b.ring)
	} else {
		appendAfter(b.ring[b.next:])
		appendAfter(b.ring[:b.next])
	}
	return out
}

// Close ends the stream: every subscriber's channel closes once its
// queued events drain, and future Trace calls are no-ops. The ring stays
// readable — late subscribers still get the replay. Idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		close(sub.ch)
	}
	b.subs = nil
}

// Closed reports whether Close has run.
func (b *Broadcaster) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// LastSeq returns the sequence number of the most recent event (0 before
// the first).
func (b *Broadcaster) LastSeq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Dropped returns the total events dropped across all subscribers.
func (b *Broadcaster) Dropped() int64 { return b.dropped.Load() }

// Subscription is one consumer's view of the stream: a receive channel
// plus its drop ledger. Cancel when done — an abandoned subscription
// never blocks the broadcaster, but it keeps accumulating drop counts.
type Subscription struct {
	ch      chan StampedEvent
	b       *Broadcaster
	dropped atomic.Int64
}

// C is the event channel. It closes when the broadcaster closes (after
// the pending queue drains) or the subscription is canceled.
func (s *Subscription) C() <-chan StampedEvent { return s.ch }

// Dropped returns how many events this subscription missed to queue
// overflow.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Cancel detaches the subscription and closes its channel. Idempotent,
// and a no-op after the broadcaster itself closed.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if _, ok := s.b.subs[s]; ok {
		delete(s.b.subs, s)
		close(s.ch)
	}
}
