// Package deletion implements clause-deletion policies for the CDCL solver.
//
// During a reduce step the solver ranks reducible learned clauses by a
// 64-bit packed score and deletes the lowest-scoring fraction. The paper's
// Figure 5 defines two layouts:
//
//	Default (Kissat): bits 63..32 = ~glue, bits 31..0 = ~size
//	New:              bits 63..45 = ~glue, bits 44..24 = ~size, bits 23..0 = frequency
//
// where ~x denotes elementwise negation (smaller glue/size yields a higher
// score) and frequency is the Eq. 2 propagation-frequency criterion:
//
//	c.frequency = Σ_{v∈c} [ f_v > α · f_max ]
//
// with f_v the number of times variable v triggered Boolean constraint
// propagation since the last clause deletion.
package deletion

import "fmt"

// ClauseInfo carries the per-clause features a policy may consult. The
// solver fills it at reduce time.
type ClauseInfo struct {
	Glue      int     // LBD: number of distinct decision levels at learning time
	Size      int     // number of literals
	Activity  float64 // bump-decay conflict-analysis activity
	Frequency int     // Eq. 2 count of high-propagation-frequency variables in the clause
}

// Policy ranks learned clauses; clauses with lower scores are deleted first.
type Policy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Score maps clause features to a 64-bit rank; higher means more
	// valuable (kept longer).
	Score(ci ClauseInfo) uint64
	// NeedsFrequency reports whether the solver must compute the Eq. 2
	// frequency feature before scoring (it costs a pass over the clause's
	// literals).
	NeedsFrequency() bool
}

// Field widths of the Figure 5 layouts.
const (
	defaultGlueBits = 32
	defaultSizeBits = 32

	newGlueBits = 19
	newSizeBits = 21
	newFreqBits = 24
)

// clamp limits v to the maximum representable value in bits.
func clamp(v int, bits uint) uint64 {
	if v < 0 {
		v = 0
	}
	maxVal := uint64(1)<<bits - 1
	u := uint64(v)
	if u > maxVal {
		u = maxVal
	}
	return u
}

// negate performs the "~" of Figure 5: elementwise negation within the
// field's width so that smaller inputs produce larger field values.
func negate(v int, bits uint) uint64 {
	maxVal := uint64(1)<<bits - 1
	return maxVal - clamp(v, bits)
}

// DefaultPolicy reproduces Kissat's default ranking: glue primary (lower is
// better), size secondary (lower is better).
type DefaultPolicy struct{}

// Name implements Policy.
func (DefaultPolicy) Name() string { return "default" }

// NeedsFrequency implements Policy.
func (DefaultPolicy) NeedsFrequency() bool { return false }

// Score implements Policy using the Figure 5 default layout.
func (DefaultPolicy) Score(ci ClauseInfo) uint64 {
	return negate(ci.Glue, defaultGlueBits)<<defaultSizeBits |
		negate(ci.Size, defaultSizeBits)
}

// FrequencyPolicy is the paper's new deletion policy: glue primary, size
// secondary, propagation frequency tertiary (higher frequency is better).
type FrequencyPolicy struct{}

// Name implements Policy.
func (FrequencyPolicy) Name() string { return "frequency" }

// NeedsFrequency implements Policy.
func (FrequencyPolicy) NeedsFrequency() bool { return true }

// Score implements Policy using the Figure 5 new layout.
func (FrequencyPolicy) Score(ci ClauseInfo) uint64 {
	return negate(ci.Glue, newGlueBits)<<(newSizeBits+newFreqBits) |
		negate(ci.Size, newSizeBits)<<newFreqBits |
		clamp(ci.Frequency, newFreqBits)
}

// ActivityPolicy ranks purely by conflict-analysis activity (MiniSat-style);
// included to diversify the policy pool for ablation studies.
type ActivityPolicy struct{}

// Name implements Policy.
func (ActivityPolicy) Name() string { return "activity" }

// NeedsFrequency implements Policy.
func (ActivityPolicy) NeedsFrequency() bool { return false }

// Score implements Policy. Activities are non-negative and rescaled below
// 1e100 by the solver; the monotone bit pattern of the float64 preserves
// ordering.
func (ActivityPolicy) Score(ci ClauseInfo) uint64 {
	a := ci.Activity
	if a < 0 {
		a = 0
	}
	// For non-negative IEEE-754 doubles the bit pattern is monotone in the
	// value, so it serves directly as an ordering key.
	return floatBits(a)
}

// SizePolicy ranks purely by clause size (shorter kept); another
// diversification policy.
type SizePolicy struct{}

// Name implements Policy.
func (SizePolicy) Name() string { return "size" }

// NeedsFrequency implements Policy.
func (SizePolicy) NeedsFrequency() bool { return false }

// Score implements Policy.
func (SizePolicy) Score(ci ClauseInfo) uint64 { return negate(ci.Size, 63) }

// GlueThresholdPolicy keeps clauses with glue at or below Threshold and
// ranks the rest by the default layout. It mirrors the LBD-threshold policy
// of Vaezipoor et al. discussed in the paper's introduction.
type GlueThresholdPolicy struct {
	Threshold int
}

// Name implements Policy.
func (p GlueThresholdPolicy) Name() string { return fmt.Sprintf("glue<=%d", p.Threshold) }

// NeedsFrequency implements Policy.
func (GlueThresholdPolicy) NeedsFrequency() bool { return false }

// Score implements Policy.
func (p GlueThresholdPolicy) Score(ci ClauseInfo) uint64 {
	s := DefaultPolicy{}.Score(ci) >> 1 // make room for the threshold bit
	if ci.Glue <= p.Threshold {
		s |= 1 << 63
	}
	return s
}

// ByName returns the policy registered under name, or an error listing the
// valid names.
func ByName(name string) (Policy, error) {
	switch name {
	case "default":
		return DefaultPolicy{}, nil
	case "frequency":
		return FrequencyPolicy{}, nil
	case "activity":
		return ActivityPolicy{}, nil
	case "size":
		return SizePolicy{}, nil
	default:
		return nil, fmt.Errorf("deletion: unknown policy %q (valid: default, frequency, activity, size)", name)
	}
}

// All returns the two policies the NeuroSelect selector chooses between,
// default first. Index order matches the classifier's label convention:
// label 0 selects All()[0], label 1 selects All()[1].
func All() []Policy {
	return []Policy{DefaultPolicy{}, FrequencyPolicy{}}
}
