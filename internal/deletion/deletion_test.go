package deletion

import (
	"math"
	"testing"
	"testing/quick"
)

// orderDefault is the reference comparison the Figure 5 default layout must
// realize: lower glue wins, then lower size.
func orderDefault(a, b ClauseInfo) int {
	switch {
	case a.Glue != b.Glue:
		if a.Glue < b.Glue {
			return 1
		}
		return -1
	case a.Size != b.Size:
		if a.Size < b.Size {
			return 1
		}
		return -1
	}
	return 0
}

// orderFrequency adds the frequency tie-break: higher frequency wins.
func orderFrequency(a, b ClauseInfo) int {
	if c := orderDefault(a, b); c != 0 {
		return c
	}
	switch {
	case a.Frequency > b.Frequency:
		return 1
	case a.Frequency < b.Frequency:
		return -1
	}
	return 0
}

func clampInfo(ci ClauseInfo, glueMax, sizeMax, freqMax int) ClauseInfo {
	c := func(v, m int) int {
		if v < 0 {
			v = -v
		}
		return v % m
	}
	return ClauseInfo{
		Glue:      c(ci.Glue, glueMax),
		Size:      c(ci.Size, sizeMax),
		Frequency: c(ci.Frequency, freqMax),
	}
}

func TestDefaultPolicyOrderProperty(t *testing.T) {
	p := DefaultPolicy{}
	f := func(a, b ClauseInfo) bool {
		a = clampInfo(a, 1000, 100000, 1)
		b = clampInfo(b, 1000, 100000, 1)
		sa, sb := p.Score(a), p.Score(b)
		switch orderDefault(a, b) {
		case 1:
			return sa > sb
		case -1:
			return sa < sb
		default:
			return sa == sb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyPolicyOrderProperty(t *testing.T) {
	p := FrequencyPolicy{}
	f := func(a, b ClauseInfo) bool {
		// Stay within the Figure 5 field widths so the reference order is
		// exactly realizable.
		a = clampInfo(a, 1<<19, 1<<21, 1<<24)
		b = clampInfo(b, 1<<19, 1<<21, 1<<24)
		sa, sb := p.Score(a), p.Score(b)
		switch orderFrequency(a, b) {
		case 1:
			return sa > sb
		case -1:
			return sa < sb
		default:
			return sa == sb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyIsTieBreakOnly(t *testing.T) {
	// Per Figure 5, frequency must never override glue or size.
	p := FrequencyPolicy{}
	lowGlue := ClauseInfo{Glue: 3, Size: 10, Frequency: 0}
	highGlue := ClauseInfo{Glue: 4, Size: 3, Frequency: 1 << 23}
	if p.Score(lowGlue) <= p.Score(highGlue) {
		t.Fatal("frequency overrode glue ordering")
	}
	smaller := ClauseInfo{Glue: 3, Size: 5, Frequency: 0}
	larger := ClauseInfo{Glue: 3, Size: 6, Frequency: 1 << 23}
	if p.Score(smaller) <= p.Score(larger) {
		t.Fatal("frequency overrode size ordering")
	}
}

func TestScoreClamping(t *testing.T) {
	// Out-of-range features must clamp, not wrap.
	d := DefaultPolicy{}
	if d.Score(ClauseInfo{Glue: -5, Size: 1}) != d.Score(ClauseInfo{Glue: 0, Size: 1}) {
		t.Fatal("negative glue should clamp to 0")
	}
	huge := ClauseInfo{Glue: math.MaxInt64 / 2, Size: 3}
	big := ClauseInfo{Glue: int(^uint32(0)), Size: 3}
	if d.Score(huge) != d.Score(big) {
		t.Fatal("oversized glue should clamp to field max")
	}
	f := FrequencyPolicy{}
	if f.Score(ClauseInfo{Glue: 1, Size: 1, Frequency: 1 << 30}) !=
		f.Score(ClauseInfo{Glue: 1, Size: 1, Frequency: (1 << 24) - 1}) {
		t.Fatal("oversized frequency should clamp to field max")
	}
}

func TestActivityPolicyOrdering(t *testing.T) {
	p := ActivityPolicy{}
	if p.Score(ClauseInfo{Activity: 2}) <= p.Score(ClauseInfo{Activity: 1}) {
		t.Fatal("higher activity must score higher")
	}
	if p.Score(ClauseInfo{Activity: -1}) != p.Score(ClauseInfo{Activity: 0}) {
		t.Fatal("negative activity should clamp to 0")
	}
	if p.Score(ClauseInfo{Activity: math.NaN()}) != 0 {
		t.Fatal("NaN activity should rank lowest")
	}
}

func TestSizePolicyOrdering(t *testing.T) {
	p := SizePolicy{}
	if p.Score(ClauseInfo{Size: 2}) <= p.Score(ClauseInfo{Size: 10}) {
		t.Fatal("shorter clause must score higher")
	}
}

func TestGlueThresholdPolicy(t *testing.T) {
	p := GlueThresholdPolicy{Threshold: 5}
	kept := ClauseInfo{Glue: 5, Size: 100}
	dropped := ClauseInfo{Glue: 6, Size: 2}
	if p.Score(kept) <= p.Score(dropped) {
		t.Fatal("clauses at or under the threshold must outrank all others")
	}
	if p.Name() != "glue<=5" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"default", "frequency", "activity", "size"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestAllReturnsSelectorPair(t *testing.T) {
	all := All()
	if len(all) != 2 {
		t.Fatalf("All() returned %d policies", len(all))
	}
	if all[0].Name() != "default" || all[1].Name() != "frequency" {
		t.Fatalf("All() order = %s, %s", all[0].Name(), all[1].Name())
	}
}

func TestFrequencyEq2(t *testing.T) {
	freq := []uint64{0, 10, 8, 3, 0, 10} // vars 1..5
	fmax := uint64(10)
	// α = 4/5 → threshold 8; strictly greater counts.
	got := Frequency([]int{1, 2, 3, 5}, freq, fmax, DefaultAlpha)
	if got != 2 { // vars 1 and 5 have f=10 > 8; var 2 has f=8 which is not > 8
		t.Fatalf("frequency = %d, want 2", got)
	}
	if Frequency([]int{1, 2}, freq, 0, DefaultAlpha) != 0 {
		t.Fatal("fmax=0 must yield 0")
	}
	// Out-of-range variables are ignored, not a panic.
	if Frequency([]int{0, 99}, freq, fmax, DefaultAlpha) != 0 {
		t.Fatal("out-of-range vars should contribute 0")
	}
}

func TestNeedsFrequencyFlags(t *testing.T) {
	if (DefaultPolicy{}).NeedsFrequency() || (ActivityPolicy{}).NeedsFrequency() || (SizePolicy{}).NeedsFrequency() {
		t.Fatal("only FrequencyPolicy needs frequency")
	}
	if !(FrequencyPolicy{}).NeedsFrequency() {
		t.Fatal("FrequencyPolicy must request frequency computation")
	}
}
