package deletion

import "math"

// floatBits returns the IEEE-754 bit pattern of a non-negative float64,
// which orders identically to the value itself. NaN maps to zero so that
// corrupt activities sort as least valuable.
func floatBits(f float64) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	return math.Float64bits(f)
}

// Frequency computes the Eq. 2 criterion for a clause given the per-variable
// propagation counts freq (indexed by 1-based variable), the maximum count
// fmax, and the threshold factor alpha (the paper sets alpha = 4/5):
//
//	c.frequency = Σ_{v∈c} [ f_v > α·f_max ]
//
// vars lists the 1-based variables of the clause.
func Frequency(vars []int, freq []uint64, fmax uint64, alpha float64) int {
	if fmax == 0 {
		return 0
	}
	threshold := alpha * float64(fmax)
	n := 0
	for _, v := range vars {
		if v <= 0 || v >= len(freq) {
			continue
		}
		if float64(freq[v]) > threshold {
			n++
		}
	}
	return n
}

// DefaultAlpha is the paper's empirically chosen threshold factor in Eq. 2.
const DefaultAlpha = 4.0 / 5.0
