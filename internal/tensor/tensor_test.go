package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 7 {
		t.Fatal("Row view")
	}
	m.Row(0)[0] = 5
	if m.At(0, 0) != 5 {
		t.Fatal("Row must share storage")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone must copy storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	ab := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if ab.Data[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, ab.Data[i], w)
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 3, 5)
	b := randMat(rng, 5, 4)
	// MatMulT(a, bᵀ) == a×b and TMatMul(aᵀ, b)… construct accordingly.
	bt := Transpose(b)
	if d := MaxAbsDiff(MatMul(a, b), MatMulT(a, bt)); d > 1e-12 {
		t.Fatalf("MatMulT disagrees: %g", d)
	}
	at := Transpose(a)
	if d := MaxAbsDiff(MatMul(a, b), TMatMul(at, b)); d > 1e-12 {
		t.Fatalf("TMatMul disagrees: %g", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { MatMulT(New(2, 3), New(2, 4)) },
		func() { TMatMul(New(2, 3), New(3, 2)) },
		func() { Add(New(2, 3), New(3, 2)) },
		func() { Hadamard(New(1, 1), New(1, 2)) },
		func() { AddRowBroadcast(New(2, 3), New(2, 3)) },
		func() { FromSlice(2, 2, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected shape panic")
				}
			}()
			fn()
		}()
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, -2, 3})
	b := FromSlice(1, 3, []float64{4, 5, -6})
	if got := Add(a, b).Data; got[0] != 5 || got[1] != 3 || got[2] != -3 {
		t.Fatalf("add = %v", got)
	}
	if got := Sub(a, b).Data; got[0] != -3 || got[1] != -7 || got[2] != 9 {
		t.Fatalf("sub = %v", got)
	}
	if got := Hadamard(a, b).Data; got[0] != 4 || got[1] != -10 || got[2] != -18 {
		t.Fatalf("hadamard = %v", got)
	}
	if got := Scale(a, -2).Data; got[0] != -2 || got[1] != 4 || got[2] != -6 {
		t.Fatalf("scale = %v", got)
	}
	if got := Apply(a, math.Abs).Data; got[1] != 2 {
		t.Fatalf("apply = %v", got)
	}
	// Originals untouched.
	if a.Data[0] != 1 || b.Data[0] != 4 {
		t.Fatal("ops must not mutate inputs")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	cs := ColSums(a)
	if cs.Rows != 1 || cs.Data[0] != 5 || cs.Data[1] != 7 || cs.Data[2] != 9 {
		t.Fatalf("colsums = %v", cs.Data)
	}
	rm := RowMean(a)
	if rm.Data[0] != 2.5 || rm.Data[1] != 3.5 || rm.Data[2] != 4.5 {
		t.Fatalf("rowmean = %v", rm.Data)
	}
	if f := Frobenius(FromSlice(1, 2, []float64{3, 4})); f != 5 {
		t.Fatalf("frobenius = %v", f)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := FromSlice(1, 2, []float64{10, 20})
	out := AddRowBroadcast(a, r)
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("broadcast[%d] = %v", i, out.Data[i])
		}
	}
}

func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		return MaxAbsDiff(Transpose(Transpose(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributiveProperty(t *testing.T) {
	// a×(b+c) == a×b + a×c
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, k := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := randMat(rng, n, m)
		b := randMat(rng, m, k)
		c := randMat(rng, m, k)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(10, 20)
	m.Xavier(rng)
	limit := math.Sqrt(6.0 / 30.0)
	nonzero := 0
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("xavier value %v out of ±%v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatal("xavier left too many zeros")
	}
}

func TestZero(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	m.Zero()
	if m.Data[0] != 0 || m.Data[1] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestSparseSpMM(t *testing.T) {
	s := NewSparse(2, 3)
	s.Add(0, 0, 2)
	s.Add(0, 2, -1)
	s.Add(1, 1, 0.5)
	d := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	out := SpMM(s, d)
	// row0 = 2*(1,2) - (5,6) = (-3, -2); row1 = 0.5*(3,4) = (1.5, 2)
	want := []float64{-3, -2, 1.5, 2}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("spmm[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	if s.NNZ() != 3 {
		t.Fatalf("nnz = %d", s.NNZ())
	}
}

func TestSpMMTMatchesDenseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSparse(4, 5)
	for i := 0; i < 8; i++ {
		s.Add(rng.Intn(4), rng.Intn(5), rng.NormFloat64())
	}
	dense := New(4, 5)
	for i, row := range s.Entries {
		for _, e := range row {
			dense.Data[i*5+e.Col] += e.W
		}
	}
	d := randMat(rng, 4, 3)
	if diff := MaxAbsDiff(SpMMT(s, d), MatMul(Transpose(dense), d)); diff > 1e-12 {
		t.Fatalf("SpMMT mismatch: %g", diff)
	}
	d2 := randMat(rng, 5, 3)
	if diff := MaxAbsDiff(SpMM(s, d2), MatMul(dense, d2)); diff > 1e-12 {
		t.Fatalf("SpMM mismatch: %g", diff)
	}
}

func TestSparseBounds(t *testing.T) {
	s := NewSparse(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-range panic")
		}
	}()
	s.Add(2, 0, 1)
}

func TestSparseDuplicateEntriesAccumulate(t *testing.T) {
	s := NewSparse(1, 1)
	s.Add(0, 0, 1)
	s.Add(0, 0, 2)
	d := FromSlice(1, 1, []float64{10})
	if out := SpMM(s, d); out.Data[0] != 30 {
		t.Fatalf("duplicates should accumulate: %v", out.Data[0])
	}
}

func TestTransposeMatMulIdentity(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		b := randMat(rng, a.Cols, 1+rng.Intn(5))
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrobeniusScaling(t *testing.T) {
	// ‖c·A‖ == |c|·‖A‖
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 4, 5)
	if math.Abs(Frobenius(Scale(a, -3))-3*Frobenius(a)) > 1e-9 {
		t.Fatal("Frobenius homogeneity")
	}
}
