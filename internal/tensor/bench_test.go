package tensor

import (
	"math/rand"
	"testing"
)

func benchMat(r, c int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMatMul64(b *testing.B) {
	x := benchMat(64, 64)
	y := benchMat(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	x := benchMat(2000, 16) // node-features × weight shape used by the models
	y := benchMat(16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSpMMGraphShaped(b *testing.B) {
	// A sparse operator shaped like a VCG adjacency: 2000 nodes, ~6 nnz per
	// row.
	rng := rand.New(rand.NewSource(2))
	s := NewSparse(2000, 2000)
	for i := 0; i < 2000; i++ {
		for k := 0; k < 6; k++ {
			s.Add(i, rng.Intn(2000), 1)
		}
	}
	d := benchMat(2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMM(s, d)
	}
}

func BenchmarkFrobenius(b *testing.B) {
	m := benchMat(512, 32)
	for i := 0; i < b.N; i++ {
		Frobenius(m)
	}
}
