package tensor

import "fmt"

// Sparse is a read-only sparse matrix in coordinate-per-row form, used for
// graph adjacency operators. It participates in products with dense
// matrices but carries no gradient itself.
type Sparse struct {
	Rows, Cols int
	// Entries[i] lists the nonzeros of row i.
	Entries [][]SparseEntry
}

// SparseEntry is one nonzero (column, weight) pair.
type SparseEntry struct {
	Col int
	W   float64
}

// NewSparse allocates an empty rows×cols sparse matrix.
func NewSparse(rows, cols int) *Sparse {
	return &Sparse{Rows: rows, Cols: cols, Entries: make([][]SparseEntry, rows)}
}

// Add appends a nonzero entry; duplicate (i, j) entries accumulate in
// products.
func (s *Sparse) Add(i, j int, w float64) {
	if i < 0 || i >= s.Rows || j < 0 || j >= s.Cols {
		panic(fmt.Sprintf("tensor: sparse index (%d,%d) out of %dx%d", i, j, s.Rows, s.Cols))
	}
	s.Entries[i] = append(s.Entries[i], SparseEntry{Col: j, W: w})
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int {
	n := 0
	for _, row := range s.Entries {
		n += len(row)
	}
	return n
}

// SpMM returns s × d for dense d.
func SpMM(s *Sparse, d *Matrix) *Matrix {
	if s.Cols != d.Rows {
		panic(fmt.Sprintf("tensor: spmm inner mismatch %dx%d × %dx%d", s.Rows, s.Cols, d.Rows, d.Cols))
	}
	out := New(s.Rows, d.Cols)
	for i, row := range s.Entries {
		orow := out.Row(i)
		for _, e := range row {
			drow := d.Row(e.Col)
			for j, v := range drow {
				orow[j] += e.W * v
			}
		}
	}
	return out
}

// SpMMT returns sᵀ × d for dense d: the backward operator of SpMM.
func SpMMT(s *Sparse, d *Matrix) *Matrix {
	if s.Rows != d.Rows {
		panic(fmt.Sprintf("tensor: spmmT inner mismatch (%dx%d)ᵀ × %dx%d", s.Rows, s.Cols, d.Rows, d.Cols))
	}
	out := New(s.Cols, d.Cols)
	for i, row := range s.Entries {
		drow := d.Row(i)
		for _, e := range row {
			orow := out.Row(e.Col)
			for j, v := range drow {
				orow[j] += e.W * v
			}
		}
	}
	return out
}
