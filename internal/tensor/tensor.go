// Package tensor provides dense row-major float64 matrices and a read-only
// sparse matrix, with the operations needed by the NeuroSelect models:
// matrix products, elementwise arithmetic, reductions, and Frobenius norms.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps existing data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d×%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// sameShape panics unless a and b have identical dimensions.
func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a × b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul inner mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT returns a × bᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT inner mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// TMatMul returns aᵀ × b.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: tmatmul inner mismatch (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	sameShape("add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	sameShape("add", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	sameShape("sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s·a.
func Scale(a *Matrix, s float64) *Matrix {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Hadamard returns the elementwise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	sameShape("hadamard", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// AddRowBroadcast returns a with the 1×Cols row vector r added to each row.
func AddRowBroadcast(a, r *Matrix) *Matrix {
	if r.Rows != 1 || r.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: broadcast shape %dx%d onto %dx%d", r.Rows, r.Cols, a.Rows, a.Cols))
	}
	out := a.Clone()
	for i := 0; i < a.Rows; i++ {
		row := out.Row(i)
		for j, v := range r.Data {
			row[j] += v
		}
	}
	return out
}

// ColSums returns the 1×Cols vector of column sums.
func ColSums(a *Matrix) *Matrix {
	out := New(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// RowMean returns the 1×Cols mean of the rows.
func RowMean(a *Matrix) *Matrix {
	out := ColSums(a)
	if a.Rows > 0 {
		inv := 1.0 / float64(a.Rows)
		for j := range out.Data {
			out.Data[j] *= inv
		}
	}
	return out
}

// Frobenius returns the Frobenius norm ‖a‖_F.
func Frobenius(a *Matrix) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns f applied elementwise.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := a.Clone()
	for i, v := range out.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Xavier fills the matrix with Glorot-uniform values drawn from rng.
func (m *Matrix) Xavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MaxAbsDiff returns max |a−b| elementwise; useful in tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	sameShape("maxabsdiff", a, b)
	d := 0.0
	for i := range a.Data {
		if x := math.Abs(a.Data[i] - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}
