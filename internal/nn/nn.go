// Package nn provides neural-network building blocks over the autodiff
// tape: parameter registries, linear layers, MLPs, an LSTM cell, the Adam
// optimizer, and parameter (de)serialization.
package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/tensor"
)

// Param is a named trainable matrix with Adam moment state.
type Param struct {
	Name string
	M    *tensor.Matrix

	m, v *tensor.Matrix // Adam first/second moments
}

// Params is a registry of trainable parameters. During a forward pass the
// registry is bound to a tape, producing one leaf Value per parameter;
// gradients accumulate on those leaves and are consumed by the optimizer.
type Params struct {
	list  []*Param
	byN   map[string]*Param
	bound map[*Param]*autodiff.Value
}

// NewParams returns an empty registry.
func NewParams() *Params {
	return &Params{byN: map[string]*Param{}}
}

// New registers a rows×cols parameter initialized by init ("xavier" or
// "zero").
func (p *Params) New(name string, rows, cols int, init string, rng *rand.Rand) *Param {
	if _, dup := p.byN[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	m := tensor.New(rows, cols)
	switch init {
	case "xavier":
		m.Xavier(rng)
	case "zero":
	default:
		panic(fmt.Sprintf("nn: unknown init %q", init))
	}
	par := &Param{Name: name, M: m, m: tensor.New(rows, cols), v: tensor.New(rows, cols)}
	p.list = append(p.list, par)
	p.byN[name] = par
	return par
}

// Bind attaches every parameter to the tape as a leaf, resetting gradient
// accumulation for the new forward pass.
func (p *Params) Bind(t *autodiff.Tape) {
	p.bound = make(map[*Param]*autodiff.Value, len(p.list))
	for _, par := range p.list {
		p.bound[par] = t.Leaf(par.M)
	}
}

// V returns the tape leaf bound to the parameter; Bind must have been
// called for the current tape.
func (p *Params) V(par *Param) *autodiff.Value {
	v, ok := p.bound[par]
	if !ok {
		panic(fmt.Sprintf("nn: parameter %q not bound; call Params.Bind first", par.Name))
	}
	return v
}

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, par := range p.list {
		n += len(par.M.Data)
	}
	return n
}

// GradNorm returns the L2 norm of all bound gradients; useful for
// monitoring training.
func (p *Params) GradNorm() float64 {
	s := 0.0
	for _, par := range p.list {
		if g := p.bound[par].Grad(); g != nil {
			for _, v := range g.Data {
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// Linear is a dense layer y = xW + b.
type Linear struct {
	W, B *Param
}

// NewLinear registers a Linear layer's parameters under the given name
// prefix.
func NewLinear(p *Params, name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: p.New(name+".W", in, out, "xavier", rng),
		B: p.New(name+".B", 1, out, "zero", rng),
	}
}

// Apply computes xW + b on the tape.
func (l *Linear) Apply(p *Params, t *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	return t.AddRowBroadcast(t.MatMul(x, p.V(l.W)), p.V(l.B))
}

// MLP is a stack of Linear layers with ReLU between them (none after the
// final layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP registers an MLP with the given layer dimensions, e.g.
// dims = [32, 32, 1] produces Linear(32→32), ReLU, Linear(32→1).
func NewMLP(p *Params, name string, dims []int, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least two dimensions")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(p, fmt.Sprintf("%s.%d", name, i), dims[i], dims[i+1], rng))
	}
	return m
}

// Apply runs the MLP on the tape.
func (m *MLP) Apply(p *Params, t *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	for i, l := range m.Layers {
		x = l.Apply(p, t, x)
		if i+1 < len(m.Layers) {
			x = t.ReLU(x)
		}
	}
	return x
}

// LSTMCell is a standard LSTM cell over row-vector states. The input and
// hidden state are concatenated and passed through four gate layers.
type LSTMCell struct {
	Wi, Wf, Wo, Wg *Linear
	Hidden         int
}

// NewLSTMCell registers an LSTM cell with the given input and hidden sizes.
func NewLSTMCell(p *Params, name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	return &LSTMCell{
		Wi:     NewLinear(p, name+".i", in+hidden, hidden, rng),
		Wf:     NewLinear(p, name+".f", in+hidden, hidden, rng),
		Wo:     NewLinear(p, name+".o", in+hidden, hidden, rng),
		Wg:     NewLinear(p, name+".g", in+hidden, hidden, rng),
		Hidden: hidden,
	}
}

// Apply advances the cell one step for a batch of rows: x is N×in, h and c
// are N×hidden. It returns the new hidden and cell states.
func (l *LSTMCell) Apply(p *Params, t *autodiff.Tape, x, h, c *autodiff.Value) (hNew, cNew *autodiff.Value) {
	xh := t.ConcatCols(x, h)
	i := t.Sigmoid(l.Wi.Apply(p, t, xh))
	f := t.Sigmoid(l.Wf.Apply(p, t, xh))
	o := t.Sigmoid(l.Wo.Apply(p, t, xh))
	g := t.Tanh(l.Wg.Apply(p, t, xh))
	cNew = t.Add(t.Hadamard(f, c), t.Hadamard(i, g))
	hNew = t.Hadamard(o, t.Tanh(cNew))
	return hNew, cNew
}

// GRUCell is a gated recurrent unit over row-vector states: a lighter
// alternative to the LSTM with a single hidden state.
type GRUCell struct {
	Wr, Wz, Wh *Linear
	Hidden     int
}

// NewGRUCell registers a GRU cell with the given input and hidden sizes.
func NewGRUCell(p *Params, name string, in, hidden int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		Wr:     NewLinear(p, name+".r", in+hidden, hidden, rng),
		Wz:     NewLinear(p, name+".z", in+hidden, hidden, rng),
		Wh:     NewLinear(p, name+".h", in+hidden, hidden, rng),
		Hidden: hidden,
	}
}

// Apply advances the cell one step for a batch of rows: x is N×in, h is
// N×hidden; it returns the new hidden state
//
//	r = σ([x|h]·Wr)   z = σ([x|h]·Wz)
//	h̃ = tanh([x | r⊙h]·Wh)
//	h' = (1−z)⊙h + z⊙h̃
func (g *GRUCell) Apply(p *Params, t *autodiff.Tape, x, h *autodiff.Value) *autodiff.Value {
	xh := t.ConcatCols(x, h)
	r := t.Sigmoid(g.Wr.Apply(p, t, xh))
	z := t.Sigmoid(g.Wz.Apply(p, t, xh))
	xrh := t.ConcatCols(x, t.Hadamard(r, h))
	hTilde := t.Tanh(g.Wh.Apply(p, t, xrh))
	keep := t.AddScalar(t.Scale(z, -1), 1) // 1 − z
	return t.Add(t.Hadamard(keep, h), t.Hadamard(z, hTilde))
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	ClipMax float64 // global gradient-norm clip; 0 disables
	step    int
}

// NewAdam returns an Adam optimizer with the standard defaults and the
// given learning rate (the paper uses 1e-4).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipMax: 5}
}

// Step applies one Adam update using the gradients bound on the current
// tape, then leaves the parameters ready for the next Bind.
func (a *Adam) Step(p *Params) {
	a.step++
	scale := 1.0
	if a.ClipMax > 0 {
		if n := p.GradNorm(); n > a.ClipMax {
			scale = a.ClipMax / n
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, par := range p.list {
		g := p.bound[par].Grad()
		if g == nil {
			continue
		}
		for i := range par.M.Data {
			gi := g.Data[i] * scale
			par.m.Data[i] = a.Beta1*par.m.Data[i] + (1-a.Beta1)*gi
			par.v.Data[i] = a.Beta2*par.v.Data[i] + (1-a.Beta2)*gi*gi
			mhat := par.m.Data[i] / bc1
			vhat := par.v.Data[i] / bc2
			par.M.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// savedParam is the JSON wire form of one parameter.
type savedParam struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// Save serializes all parameters as JSON.
func (p *Params) Save(w io.Writer) error {
	out := make([]savedParam, 0, len(p.list))
	for _, par := range p.list {
		out = append(out, savedParam{Name: par.Name, Rows: par.M.Rows, Cols: par.M.Cols, Data: par.M.Data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load restores parameter values saved by Save. Every stored parameter must
// exist in the registry with matching shape; parameters absent from the
// stream keep their current values.
func (p *Params) Load(r io.Reader) error {
	var in []savedParam
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	for _, sp := range in {
		par, ok := p.byN[sp.Name]
		if !ok {
			return fmt.Errorf("nn: load: unknown parameter %q", sp.Name)
		}
		if par.M.Rows != sp.Rows || par.M.Cols != sp.Cols {
			return fmt.Errorf("nn: load: shape mismatch for %q: have %dx%d, stored %dx%d",
				sp.Name, par.M.Rows, par.M.Cols, sp.Rows, sp.Cols)
		}
		copy(par.M.Data, sp.Data)
	}
	return nil
}
