package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/tensor"
)

func TestParamRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParams()
	a := p.New("a", 2, 3, "xavier", rng)
	b := p.New("b", 1, 3, "zero", rng)
	if p.Count() != 9 {
		t.Fatalf("count = %d", p.Count())
	}
	for _, v := range b.M.Data {
		if v != 0 {
			t.Fatal("zero init")
		}
	}
	nz := 0
	for _, v := range a.M.Data {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("xavier init left all zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name must panic")
		}
	}()
	p.New("a", 1, 1, "zero", rng)
}

func TestBindRequired(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParams()
	par := p.New("w", 1, 1, "xavier", rng)
	defer func() {
		if recover() == nil {
			t.Fatal("V before Bind must panic")
		}
	}()
	p.V(par)
}

func TestLinearForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewParams()
	l := NewLinear(p, "lin", 2, 3, rng)
	// Set known weights.
	copy(l.W.M.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(l.B.M.Data, []float64{0.5, -0.5, 1})
	tp := autodiff.NewTape()
	p.Bind(tp)
	x := tp.Leaf(tensor.FromSlice(1, 2, []float64{1, 1}))
	out := l.Apply(p, tp, x)
	want := []float64{1 + 4 + 0.5, 2 + 5 - 0.5, 3 + 6 + 1}
	for i, w := range want {
		if math.Abs(out.M.Data[i]-w) > 1e-12 {
			t.Fatalf("linear[%d] = %v, want %v", i, out.M.Data[i], w)
		}
	}
}

func TestMLPShapesAndReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParams()
	m := NewMLP(p, "mlp", []int{4, 8, 1}, rng)
	if len(m.Layers) != 2 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	tp := autodiff.NewTape()
	p.Bind(tp)
	x := tp.Leaf(tensor.New(5, 4))
	out := m.Apply(p, tp, x)
	if out.M.Rows != 5 || out.M.Cols != 1 {
		t.Fatalf("mlp out %dx%d", out.M.Rows, out.M.Cols)
	}
}

func TestMLPNeedsTwoDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-dim MLP")
		}
	}()
	NewMLP(NewParams(), "m", []int{3}, rand.New(rand.NewSource(1)))
}

// TestAdamConvergesOnQuadratic trains a single parameter to minimize
// (w−3)², checking the optimizer plumbing end to end.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewParams()
	w := p.New("w", 1, 1, "xavier", rng)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		tp := autodiff.NewTape()
		p.Bind(tp)
		wv := p.V(w)
		diff := tp.AddScalar(wv, -3)
		loss := tp.MeanScalar(tp.Hadamard(diff, diff))
		tp.Backward(loss)
		opt.Step(p)
	}
	if math.Abs(w.M.Data[0]-3) > 1e-2 {
		t.Fatalf("w = %v, want ≈3", w.M.Data[0])
	}
}

// TestLSTMLearnsToSum trains an LSTM cell to output the mean of a short
// sequence, exercising the recurrent gradient path.
func TestLSTMLearnsToSum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewParams()
	cell := NewLSTMCell(p, "lstm", 1, 4, rng)
	head := NewLinear(p, "head", 4, 1, rng)
	opt := NewAdam(0.02)

	seqs := make([][]float64, 40)
	targets := make([]float64, 40)
	for i := range seqs {
		seqs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		targets[i] = (seqs[i][0] + seqs[i][1] + seqs[i][2]) / 3
	}
	var lastLoss float64
	for epoch := 0; epoch < 60; epoch++ {
		total := 0.0
		for i, seq := range seqs {
			tp := autodiff.NewTape()
			p.Bind(tp)
			h := tp.Leaf(tensor.New(1, 4))
			c := tp.Leaf(tensor.New(1, 4))
			for _, x := range seq {
				xv := tp.Leaf(tensor.FromSlice(1, 1, []float64{x}))
				h, c = cell.Apply(p, tp, xv, h, c)
			}
			out := head.Apply(p, tp, h)
			diff := tp.AddScalar(out, -targets[i])
			loss := tp.MeanScalar(tp.Hadamard(diff, diff))
			tp.Backward(loss)
			opt.Step(p)
			total += loss.M.Data[0]
		}
		lastLoss = total / float64(len(seqs))
	}
	if lastLoss > 0.01 {
		t.Fatalf("LSTM failed to fit mean task: loss %v", lastLoss)
	}
}

func TestGradientClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewParams()
	w := p.New("w", 1, 1, "xavier", rng)
	w.M.Data[0] = 0
	opt := NewAdam(1)
	opt.ClipMax = 1
	tp := autodiff.NewTape()
	p.Bind(tp)
	// loss = 1000·w → gradient 1000, clipped to 1.
	loss := tp.MeanScalar(tp.Scale(p.V(w), 1000))
	tp.Backward(loss)
	if n := p.GradNorm(); math.Abs(n-1000) > 1e-9 {
		t.Fatalf("grad norm = %v", n)
	}
	opt.Step(p)
	// Adam normalizes step size to ≈ lr regardless; the key check is no
	// NaN/Inf and a finite move.
	if math.IsNaN(w.M.Data[0]) || math.IsInf(w.M.Data[0], 0) {
		t.Fatal("step produced non-finite weight")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewParams()
	p.New("a", 2, 2, "xavier", rng)
	p.New("b", 1, 3, "xavier", rng)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := NewParams()
	qa := q.New("a", 2, 2, "zero", rng)
	qb := q.New("b", 1, 3, "zero", rng)
	if err := q.Load(&buf); err != nil {
		t.Fatal(err)
	}
	pa := p.byN["a"]
	pb := p.byN["b"]
	if tensor.MaxAbsDiff(qa.M, pa.M) != 0 || tensor.MaxAbsDiff(qb.M, pb.M) != 0 {
		t.Fatal("load did not restore values")
	}
}

func TestLoadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewParams()
	p.New("a", 2, 2, "xavier", rng)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Unknown parameter.
	q := NewParams()
	q.New("other", 2, 2, "zero", rng)
	if err := q.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
	// Shape mismatch.
	r := NewParams()
	r.New("a", 1, 2, "zero", rng)
	if err := r.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected shape error")
	}
	// Corrupt stream.
	s := NewParams()
	if err := s.Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSharedParamAccumulatesGrad(t *testing.T) {
	// A parameter used twice in one forward must receive both gradient
	// contributions.
	rng := rand.New(rand.NewSource(9))
	p := NewParams()
	w := p.New("w", 1, 1, "xavier", rng)
	w.M.Data[0] = 2
	tp := autodiff.NewTape()
	p.Bind(tp)
	wv := p.V(w)
	// loss = w + w = 2w → dloss/dw = 2.
	loss := tp.MeanScalar(tp.Add(wv, wv))
	tp.Backward(loss)
	if g := wv.Grad().Data[0]; math.Abs(g-2) > 1e-12 {
		t.Fatalf("shared-use grad = %v, want 2", g)
	}
}

// TestGRULearnsLastElement trains a GRU to output the final element of a
// short sequence, exercising its gating path.
func TestGRULearnsLastElement(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := NewParams()
	cell := NewGRUCell(p, "gru", 1, 6, rng)
	head := NewLinear(p, "head", 6, 1, rng)
	opt := NewAdam(0.02)

	seqs := make([][]float64, 40)
	targets := make([]float64, 40)
	for i := range seqs {
		seqs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		targets[i] = seqs[i][2]
	}
	var lastLoss float64
	for epoch := 0; epoch < 80; epoch++ {
		total := 0.0
		for i, seq := range seqs {
			tp := autodiff.NewTape()
			p.Bind(tp)
			h := tp.Leaf(tensor.New(1, 6))
			for _, x := range seq {
				xv := tp.Leaf(tensor.FromSlice(1, 1, []float64{x}))
				h = cell.Apply(p, tp, xv, h)
			}
			out := head.Apply(p, tp, h)
			diff := tp.AddScalar(out, -targets[i])
			loss := tp.MeanScalar(tp.Hadamard(diff, diff))
			tp.Backward(loss)
			opt.Step(p)
			total += loss.M.Data[0]
		}
		lastLoss = total / float64(len(seqs))
	}
	if lastLoss > 0.01 {
		t.Fatalf("GRU failed to fit last-element task: loss %v", lastLoss)
	}
}

func TestGRUShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	p := NewParams()
	cell := NewGRUCell(p, "gru", 3, 5, rng)
	tp := autodiff.NewTape()
	p.Bind(tp)
	x := tp.Leaf(tensor.New(7, 3))
	h := tp.Leaf(tensor.New(7, 5))
	out := cell.Apply(p, tp, x, h)
	if out.M.Rows != 7 || out.M.Cols != 5 {
		t.Fatalf("gru out %dx%d", out.M.Rows, out.M.Cols)
	}
	// Zero input and zero state give zero update gates ≈ 0.5 each; the
	// output must stay finite and bounded by tanh range.
	for _, v := range out.M.Data {
		if v < -1 || v > 1 || math.IsNaN(v) {
			t.Fatalf("gru output out of range: %v", v)
		}
	}
}
