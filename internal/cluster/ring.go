package cluster

// Consistent-hash ring over a static backend set. Each backend owns
// ~Vnodes points on a 64-bit circle (FNV-1a over "name#i"), and a key
// routes to the first point clockwise of its own hash. Properties the
// coordinator (and the rebalance tests) depend on:
//
//   - Determinism: the point set is a pure function of the backend names,
//     independent of the order they were configured in and of any process
//     state — every coordinator restart, and every coordinator replica,
//     computes the same assignment.
//   - Minimal movement: a dead backend is skipped at lookup time, not
//     removed from the ring, so only the keys it owned remap (to their
//     clockwise successors, ~1/N of the keyspace for N backends); keys on
//     surviving backends never move.
//   - Exact readmission: because the points never change, a backend that
//     comes back receives exactly the keys it owned before.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is how many ring points each backend owns. 128 keeps the
// per-backend keyspace share within a few percent of 1/N while the whole
// ring stays a small sorted slice (binary search per lookup).
const defaultVnodes = 128

type ringPoint struct {
	hash    uint64
	backend string
}

// Ring is an immutable consistent-hash ring. Build with NewRing; lookups
// are safe for concurrent use.
type Ring struct {
	points   []ringPoint // sorted by hash
	backends []string    // distinct names, sorted
}

// NewRing builds the ring from the backend names (duplicates collapse)
// with vnodes points per backend (<=0 → defaultVnodes).
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	seen := make(map[string]bool, len(backends))
	var names []string
	for _, b := range backends {
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		names = append(names, b)
	}
	sort.Strings(names)
	r := &Ring{backends: names, points: make([]ringPoint, 0, len(names)*vnodes)}
	for _, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, i)), backend: name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so the ring stays a
		// pure function of the backend set.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends returns the distinct backend names on the ring, sorted.
func (r *Ring) Backends() []string { return r.backends }

// Order returns every backend in the key's clockwise preference order:
// the owner first, then each distinct successor. Callers walk it skipping
// dead backends — the first live entry is the route, the rest are the
// failover order.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.backends))
	seen := make(map[string]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// Pick returns the first backend in the key's preference order that
// alive accepts (nil alive accepts everything). ok is false only when
// the ring is empty or alive rejected every backend.
func (r *Ring) Pick(key string, alive func(string) bool) (string, bool) {
	for _, b := range r.Order(key) {
		if alive == nil || alive(b) {
			return b, true
		}
	}
	return "", false
}

// hashKey is FNV-1a 64 — not cryptographic, but the routing key is
// already a SHA-256 canonical-formula hash; this only spreads it (and the
// vnode labels) over the circle.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
