package cluster

import (
	"fmt"
	"testing"
)

// testKeys fabricates a deterministic keyspace shaped like the real
// routing keys (hex digests).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func assign(r *Ring, keys []string, alive func(string) bool) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		b, ok := r.Pick(k, alive)
		if !ok {
			b = ""
		}
		out[k] = b
	}
	return out
}

// TestRingDeterministic proves the assignment is a pure function of the
// backend set: rebuilding the ring — in this process or after a restart,
// and regardless of configuration order — yields the identical mapping.
func TestRingDeterministic(t *testing.T) {
	keys := testKeys(2000)
	cases := [][]string{
		{"a:1", "b:1", "c:1"},
		{"c:1", "a:1", "b:1"},        // shuffled configuration order
		{"b:1", "c:1", "a:1", "a:1"}, // duplicates collapse
	}
	base := assign(NewRing(cases[0], 0), keys, nil)
	for _, names := range cases[1:] {
		got := assign(NewRing(names, 0), keys, nil)
		for k, want := range base {
			if got[k] != want {
				t.Fatalf("ring built from %v: key %s → %s, want %s", names, k[:12], got[k], want)
			}
		}
	}
}

// TestRingRebalance is the failover contract, table-driven over cluster
// sizes: ejecting one of N backends remaps only that backend's keys
// (~1/N of the keyspace, within loose statistical bounds), never touches
// a surviving backend's keys, and readmission restores the original
// assignment exactly.
func TestRingRebalance(t *testing.T) {
	keys := testKeys(10000)
	for _, n := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var names []string
			for i := 0; i < n; i++ {
				names = append(names, fmt.Sprintf("replica-%d:8080", i))
			}
			r := NewRing(names, 0)
			before := assign(r, keys, nil)

			dead := names[n/2]
			aliveFn := func(b string) bool { return b != dead }
			after := assign(r, keys, aliveFn)

			moved := 0
			for _, k := range keys {
				switch {
				case before[k] == dead:
					moved++
					if after[k] == dead || after[k] == "" {
						t.Fatalf("key %s still assigned to dead backend %q", k[:12], dead)
					}
				case after[k] != before[k]:
					t.Fatalf("key %s moved %s → %s although its backend survived",
						k[:12], before[k], after[k])
				}
			}
			frac := float64(moved) / float64(len(keys))
			want := 1.0 / float64(n)
			if frac < want*0.5 || frac > want*1.8 {
				t.Fatalf("ejecting 1 of %d remapped %.1f%% of keys, want ~%.1f%%",
					n, 100*frac, 100*want)
			}

			restored := assign(r, keys, nil)
			for _, k := range keys {
				if restored[k] != before[k] {
					t.Fatalf("after readmission key %s → %s, want original %s",
						k[:12], restored[k], before[k])
				}
			}
		})
	}
}

// TestRingOrder checks the failover preference order: it starts with the
// owner, covers every backend exactly once, and is itself stable.
func TestRingOrder(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(names, 0)
	for _, k := range testKeys(100) {
		order := r.Order(k)
		if len(order) != len(names) {
			t.Fatalf("Order(%s) covered %d backends, want %d", k[:12], len(order), len(names))
		}
		seen := map[string]bool{}
		for _, b := range order {
			if seen[b] {
				t.Fatalf("Order(%s) repeats backend %s", k[:12], b)
			}
			seen[b] = true
		}
		owner, _ := r.Pick(k, nil)
		if order[0] != owner {
			t.Fatalf("Order(%s)[0] = %s, want owner %s", k[:12], order[0], owner)
		}
		// With the owner dead, Pick must return the second preference.
		next, ok := r.Pick(k, func(b string) bool { return b != owner })
		if !ok || next != order[1] {
			t.Fatalf("Pick with dead owner = %s, want Order[1] = %s", next, order[1])
		}
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Pick("k", nil); ok {
		t.Fatal("empty ring produced an assignment")
	}
	r = NewRing([]string{"only:1"}, 0)
	if b, ok := r.Pick("k", nil); !ok || b != "only:1" {
		t.Fatalf("single-backend ring → %q, %v", b, ok)
	}
	if _, ok := r.Pick("k", func(string) bool { return false }); ok {
		t.Fatal("all-dead ring produced an assignment")
	}
}
