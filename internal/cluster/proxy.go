package cluster

// The proxy paths. Three shapes:
//
//   - hash-routed POSTs (/v1/solve, /v1/jobs, /v1/sessions): the body is
//     buffered (it must be re-sendable for failover), the routing key is
//     the canonical formula hash — the same key the replica's result
//     cache uses, which is the whole point: the coordinator's routing
//     function and the replica's cache key agree, so a repeat upload
//     lands on the replica that already holds the answer.
//   - id-routed requests (/v1/jobs/{id}, /v1/sessions/{id}…): follow the
//     id → backend affinity map, falling back to a scatter probe of the
//     live backends when the map has no answer (coordinator restart, LRU
//     eviction). Job reads may fail over; session writes never do — the
//     warm solver exists on exactly one replica.
//   - the SSE stream (/v1/jobs/{id}/events): resolved like a job read,
//     then streamed flush-per-chunk so event frames and heartbeat
//     comments reach the client in real time instead of sitting in a
//     proxy buffer.

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"neuroselect/internal/cnf"
	"neuroselect/internal/server"
)

// errorBody mirrors the replicas' JSON error schema so clients see one
// vocabulary regardless of which tier refused them.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// refuseIfDraining sheds new work once Drain flipped the coordinator.
func (c *Coordinator) refuseIfDraining(w http.ResponseWriter) bool {
	if !c.Draining() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
	return true
}

// routeKey derives the consistent-hash key for an upload: the canonical
// formula hash when the body parses as DIMACS (possibly gzip-wrapped —
// decompressed for hashing only, forwarded as the original bytes), else
// a digest of the raw bytes so even malformed uploads route
// deterministically (their 400s come from one replica, not all of them).
// Decompression is capped at maxBytes, the same expansion guard the
// replicas apply: a gzip bomb falls through to the raw-bytes digest
// instead of expanding in coordinator memory.
func routeKey(body []byte, contentEncoding string, maxBytes int64) string {
	plain := body
	if strings.EqualFold(contentEncoding, "gzip") {
		gz, err := gzip.NewReader(bytes.NewReader(body))
		if err == nil {
			p, rerr := io.ReadAll(io.LimitReader(gz, maxBytes+1))
			gz.Close()
			if rerr == nil && int64(len(p)) <= maxBytes {
				plain = p
			}
		}
	}
	if f, err := cnf.ParseDIMACS(bytes.NewReader(plain)); err == nil {
		return server.CanonicalHash(f)
	}
	sum := sha256.Sum256(body)
	return "raw:" + hex.EncodeToString(sum[:])
}

// handleHashRouted proxies one body-carrying POST to the routing key's
// backend, failing over along the key's ring order when a backend dies
// mid-request (transport error before any response bytes — the request
// was not processed, so re-sending is safe; an HTTP error status is a
// processed answer and is returned as-is).
func (c *Coordinator) handleHashRouted(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.refuseIfDraining(w) {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", c.cfg.MaxBodyBytes))
				return
			}
			writeError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		key := routeKey(body, r.Header.Get("Content-Encoding"), c.cfg.MaxBodyBytes)
		first := true
		for _, name := range c.ring.Order(key) {
			b := c.backends[name]
			if b == nil || !b.up.Load() {
				continue
			}
			if !first {
				c.m.retries.Inc()
			}
			first = false
			resp, err := c.forward(r, b, r.Method, r.URL.Path, body)
			if err != nil {
				if clientGone(r, err) {
					// The client hung up, not the backend: nobody is
					// listening for a response, and retrying with a
					// canceled context would fail on every backend.
					return
				}
				// No response bytes: the backend never processed the
				// request. Mark it down and try the key's next preference.
				c.noteTransportFailure(b)
				continue
			}
			c.m.routed(b.name, endpoint).Inc()
			c.recordRoute(endpoint, b, c.copyResponse(w, resp, b))
			return
		}
		writeError(w, http.StatusBadGateway, "no live backend for this request")
	}
}

// recordRoute files the id → backend affinity a creating endpoint's
// response establishes (202/200 job submits, 201/200 session creates).
func (c *Coordinator) recordRoute(endpoint string, b *backend, respBody []byte) {
	if len(respBody) == 0 {
		return
	}
	var v struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(respBody, &v) != nil || v.ID == "" {
		return
	}
	switch endpoint {
	case "jobs":
		c.jobRoute.Put(v.ID, b.name)
	case "session-create":
		c.sessRoute.Put(v.ID, b.name)
	}
}

// handleJobGet proxies GET /v1/jobs/{id}: the mapped backend first, then
// a scatter probe of the remaining live backends (a 404 from one replica
// only means "not mine" — the id may live elsewhere after a coordinator
// restart). Reads are idempotent, so transport failures fail over.
func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if c.refuseIfDraining(w) {
		return
	}
	id := r.PathValue("id")
	resp, b, ok := c.fetchByID(r, c.jobRoute, id, "/v1/jobs/"+id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	c.m.routed(b.name, "poll").Inc()
	c.jobRoute.Put(id, b.name)
	c.copyResponse(w, resp, b)
}

// fetchByID resolves an id-addressed lookup: the affinity-mapped
// backend first (if live), then every other live backend in ring order.
// Probes are always sent as GETs — the original request may be a POST or
// DELETE, and a probe must only ask "is this id yours?", never execute
// the operation on a guessed owner. Only a 2xx answer counts as
// ownership evidence (a 405 or 500 is not "found", and recording it
// would poison the affinity map); nothing but misses reports not-found.
func (c *Coordinator) fetchByID(r *http.Request, m *routeMap, id, path string) (*http.Response, *backend, bool) {
	var cands []*backend
	if name, ok := m.Get(id); ok {
		if b := c.backends[name]; b != nil && b.up.Load() {
			cands = append(cands, b)
		}
	}
	for _, b := range c.liveBackends() {
		if len(cands) > 0 && b == cands[0] {
			continue
		}
		cands = append(cands, b)
	}
	first := true
	for _, b := range cands {
		if !first {
			c.m.retries.Inc()
		}
		first = false
		resp, err := c.forward(r, b, http.MethodGet, path, nil)
		if err != nil {
			if clientGone(r, err) {
				return nil, nil, false
			}
			c.noteTransportFailure(b)
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			continue
		}
		return resp, b, true
	}
	return nil, nil, false
}

// handleJobEvents proxies the SSE stream. The job's owner is resolved
// like a poll (affinity map, then scatter via GET /v1/jobs/{id}), then
// the stream is copied chunk-by-chunk with an explicit flush after every
// read so frames and `: hb` heartbeats pass through unbuffered. A
// mid-stream backend death ends the stream — the client resumes with
// Last-Event-ID exactly as it would against the replica directly.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if c.refuseIfDraining(w) {
		return
	}
	id := r.PathValue("id")
	owner, ok := c.resolveOwner(r, c.jobRoute, id, "/v1/jobs/"+id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	resp, err := c.forward(r, owner, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		if !clientGone(r, err) {
			c.noteTransportFailure(owner)
		}
		writeError(w, http.StatusBadGateway, "backend unreachable")
		return
	}
	defer resp.Body.Close()
	c.m.routed(owner.name, "events").Inc()
	copyHeaders(w, resp, owner)
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// resolveOwner finds which live backend holds an id, consulting the
// affinity map first and scatter-probing with a GET otherwise.
func (c *Coordinator) resolveOwner(r *http.Request, m *routeMap, id, probePath string) (*backend, bool) {
	if name, ok := m.Get(id); ok {
		if b := c.backends[name]; b != nil && b.up.Load() {
			return b, true
		}
	}
	resp, b, ok := c.fetchByID(r, m, id, probePath)
	if !ok {
		return nil, false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	m.Put(id, b.name)
	return b, true
}

// handleSessionOp proxies one session-addressed operation with strict
// affinity: the session's warm solver state exists on exactly one
// replica, so there is no failover — if that replica is down, the
// operation fails and the client recreates the session (the same
// contract a single replica's restart gives them).
func (c *Coordinator) handleSessionOp(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.refuseIfDraining(w) {
			return
		}
		id := r.PathValue("id")
		owner, ok := c.resolveOwner(r, c.sessRoute, id, "/v1/sessions/"+id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown session id")
			return
		}
		var body []byte
		if r.Body != nil && r.ContentLength != 0 {
			var err error
			body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
			if err != nil {
				writeError(w, http.StatusBadRequest, "read body: "+err.Error())
				return
			}
		}
		resp, err := c.forward(r, owner, r.Method, r.URL.Path, body)
		if err != nil {
			if !clientGone(r, err) {
				c.noteTransportFailure(owner)
			}
			writeError(w, http.StatusBadGateway, "session backend unreachable; recreate the session")
			return
		}
		c.m.routed(owner.name, endpoint).Inc()
		ok2xx := resp.StatusCode >= 200 && resp.StatusCode < 300
		c.copyResponse(w, resp, owner)
		if endpoint == "session-delete" && ok2xx {
			c.sessRoute.Delete(id)
		}
	}
}

// clientGone reports whether a forward error is the client's doing —
// the inbound request context was canceled (disconnect mid-request) —
// rather than a backend transport failure. Such errors must not eject
// the backend or trigger failover: the backend is healthy, and a retry
// with a canceled context would fail on every ring member in turn,
// cascade-ejecting the whole cluster over one abandoned request.
func clientGone(r *http.Request, err error) bool {
	return r.Context().Err() != nil || errors.Is(err, context.Canceled)
}

// forward sends one proxied request to a backend: the given method (the
// inbound method for real proxying, an explicit GET for ownership
// probes), path and query, a re-sendable buffered body, and the headers
// that matter — content negotiation, SSE resume position, and the
// correlation id the coordinator's middleware established.
func (c *Coordinator) forward(r *http.Request, b *backend, method, path string, body []byte) (*http.Response, error) {
	u := *b.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = r.URL.RawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Content-Encoding", "Accept", "Accept-Encoding", "Last-Event-ID"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	if id := server.RequestIDFrom(r.Context()); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	return c.client.Do(req)
}

// copyResponse relays a buffered (non-streaming) backend response:
// headers, status, body. A response beyond MaxBodyBytes is refused with
// a 502 — relaying a truncated body under the backend's Content-Length
// would leave the client hanging mid-read. Returns the body bytes so
// creating endpoints can mine the resource id for the affinity maps.
func (c *Coordinator) copyResponse(w http.ResponseWriter, resp *http.Response, b *backend) []byte {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadGateway, "read backend response: "+err.Error())
		return nil
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("backend response exceeds %d bytes", c.cfg.MaxBodyBytes))
		return nil
	}
	copyHeaders(w, resp, b)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
	return body
}

// hopByHop are the headers a proxy must not relay (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Connection": true,
	"Transfer-Encoding": true, "Upgrade": true, "Te": true, "Trailer": true,
}

// copyHeaders relays the backend's response headers (minus hop-by-hop)
// and guarantees X-Backend is present: replicas in backend mode set it
// themselves; for a plain replica the coordinator fills in the ring name
// so routing is always observable.
func copyHeaders(w http.ResponseWriter, resp *http.Response, b *backend) {
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		h[http.CanonicalHeaderKey(k)] = vs
	}
	if h.Get("X-Backend") == "" {
		h.Set("X-Backend", b.name)
	}
}
