package cluster

// End-to-end coordinator tests against real internal/server replicas:
// two backend-mode servers behind one coordinator, all over httptest
// listeners. These exercise the full proxy surface — hash-routed solves
// with cache stickiness, failover after a backend death, job submit /
// poll / SSE routing, session affinity, and request-id threading.

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neuroselect/internal/server"
)

const (
	// testCNFSat and testCNFUnsat are two tiny instances whose canonical
	// hashes (in practice) land on different replicas often enough that
	// the tests can always find one formula owned by each backend.
	testCNFSat   = "p cnf 3 2\n1 -3 0\n2 3 -1 0\n"
	testCNFUnsat = "p cnf 1 2\n1 0\n-1 0\n"
)

// testCluster is two live replicas and a coordinator in front of them.
type testCluster struct {
	t        *testing.T
	svcs     []*server.Server
	backends []*httptest.Server
	coord    *Coordinator
	front    *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	var urls []string
	for i := 0; i < n; i++ {
		svc, err := server.New(server.Config{
			Workers:     2,
			BackendName: fmt.Sprintf("r%d", i+1),
			MaxTimeout:  10 * time.Second,
		})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		ts := httptest.NewServer(svc.Handler())
		tc.svcs = append(tc.svcs, svc)
		tc.backends = append(tc.backends, ts)
		urls = append(urls, ts.URL)
	}
	coord, err := New(Config{
		Replicas:      urls,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	tc.coord = coord
	tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		coord.Close()
		for i, ts := range tc.backends {
			ts.Close()
			tc.svcs[i].Close()
		}
	})
	return tc
}

func (tc *testCluster) solve(cnfBody string) *http.Response {
	tc.t.Helper()
	resp, err := http.Post(tc.front.URL+"/v1/solve", "text/plain", strings.NewReader(cnfBody))
	if err != nil {
		tc.t.Fatalf("POST /v1/solve: %v", err)
	}
	return resp
}

func drainBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

// TestCoordinatorStickiness: the same formula twice routes to the same
// backend and the second answer is that backend's cache hit; a solve is
// correct end to end through the proxy.
func TestCoordinatorStickiness(t *testing.T) {
	tc := newTestCluster(t, 2)

	r1 := tc.solve(testCNFSat)
	b1 := drainBody(t, r1)
	if r1.StatusCode != 200 {
		t.Fatalf("first solve: %d %s", r1.StatusCode, b1)
	}
	var res struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(b1, &res); err != nil || res.Status != "SAT" {
		t.Fatalf("first solve status %q (err %v), want SAT", res.Status, err)
	}
	be1 := r1.Header.Get("X-Backend")
	if be1 == "" {
		t.Fatal("first solve carried no X-Backend")
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first solve X-Cache %q, want miss", got)
	}

	r2 := tc.solve(testCNFSat)
	drainBody(t, r2)
	if got := r2.Header.Get("X-Backend"); got != be1 {
		t.Fatalf("second solve routed to %q, want sticky %q", got, be1)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second solve X-Cache %q, want hit", got)
	}
}

// TestCoordinatorFailover: killing a formula's owner reroutes the next
// identical request to the survivor (one retry, fresh solve).
func TestCoordinatorFailover(t *testing.T) {
	tc := newTestCluster(t, 2)

	r1 := tc.solve(testCNFUnsat)
	drainBody(t, r1)
	owner := r1.Header.Get("X-Backend")

	// Kill the owner's listener abruptly (no drain — a crash).
	killed := false
	for i, ts := range tc.backends {
		if owner == fmt.Sprintf("r%d", i+1) {
			ts.CloseClientConnections()
			ts.Close()
			killed = true
		}
	}
	if !killed {
		t.Fatalf("could not match owner %q to a test backend", owner)
	}

	r2 := tc.solve(testCNFUnsat)
	b2 := drainBody(t, r2)
	if r2.StatusCode != 200 {
		t.Fatalf("failover solve: %d %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Backend"); got == owner || got == "" {
		t.Fatalf("failover solve routed to %q, want the survivor (owner %q is dead)", got, owner)
	}
	if got := r2.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("failover solve X-Cache %q, want miss (survivor solved fresh)", got)
	}
}

// TestCoordinatorJobs: submit through the coordinator, poll through the
// coordinator — the poll reaches the submitting backend even though job
// ids are per-replica. Unknown ids 404.
func TestCoordinatorJobs(t *testing.T) {
	tc := newTestCluster(t, 2)

	resp, err := http.Post(tc.front.URL+"/v1/jobs", "text/plain", strings.NewReader(testCNFSat))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	body := drainBody(t, resp)
	if resp.StatusCode != 200 && resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	submitBackend := resp.Header.Get("X-Backend")
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: no id (err %v)", body, err)
	}
	if !strings.HasPrefix(sub.ID, submitBackend+"-") {
		t.Fatalf("job id %q does not carry backend prefix %q-", sub.ID, submitBackend)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		pr, err := http.Get(tc.front.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		pb := drainBody(t, pr)
		if pr.StatusCode != 200 {
			t.Fatalf("poll: %d %s", pr.StatusCode, pb)
		}
		if got := pr.Header.Get("X-Backend"); got != submitBackend {
			t.Fatalf("poll routed to %q, want %q", got, submitBackend)
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(pb, &v); err != nil {
			t.Fatalf("poll body %s: %v", pb, err)
		}
		if v.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", pb)
		}
		time.Sleep(10 * time.Millisecond)
	}

	nf, err := http.Get(tc.front.URL + "/v1/jobs/r1-j99999999")
	if err != nil {
		t.Fatalf("poll unknown: %v", err)
	}
	drainBody(t, nf)
	if nf.StatusCode != 404 {
		t.Fatalf("unknown job id: %d, want 404", nf.StatusCode)
	}
}

// TestCoordinatorJobEvents: the SSE stream proxies through to the
// owning backend and terminates with the standard done event.
func TestCoordinatorJobEvents(t *testing.T) {
	tc := newTestCluster(t, 2)

	resp, err := http.Post(tc.front.URL+"/v1/jobs", "text/plain", strings.NewReader(testCNFUnsat))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	body := drainBody(t, resp)
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s (err %v)", body, err)
	}

	es, err := http.Get(tc.front.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer es.Body.Close()
	if es.StatusCode != 200 {
		t.Fatalf("events: %d", es.StatusCode)
	}
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	sawDone := false
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
}

// TestCoordinatorSessions: create/step/info/delete all land on the
// session's owning backend; the id carries its prefix; a deleted or
// unknown session 404s.
func TestCoordinatorSessions(t *testing.T) {
	tc := newTestCluster(t, 2)

	resp, err := http.Post(tc.front.URL+"/v1/sessions", "text/plain", strings.NewReader(testCNFSat))
	if err != nil {
		t.Fatalf("POST /v1/sessions: %v", err)
	}
	body := drainBody(t, resp)
	if resp.StatusCode != 200 && resp.StatusCode != 201 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	owner := resp.Header.Get("X-Backend")
	var sess struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sess); err != nil || sess.ID == "" {
		t.Fatalf("create body %s (err %v)", body, err)
	}
	if !strings.HasPrefix(sess.ID, owner+"-") {
		t.Fatalf("session id %q does not carry owner prefix %q-", sess.ID, owner)
	}

	step, err := http.Post(tc.front.URL+"/v1/sessions/"+sess.ID+"/solve",
		"application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	sb := drainBody(t, step)
	if step.StatusCode != 200 {
		t.Fatalf("step: %d %s", step.StatusCode, sb)
	}
	if got := step.Header.Get("X-Backend"); got != owner {
		t.Fatalf("step routed to %q, want owner %q", got, owner)
	}

	info, err := http.Get(tc.front.URL + "/v1/sessions/" + sess.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	drainBody(t, info)
	if info.StatusCode != 200 || info.Header.Get("X-Backend") != owner {
		t.Fatalf("info: %d via %q, want 200 via %q", info.StatusCode, info.Header.Get("X-Backend"), owner)
	}

	req, _ := http.NewRequest(http.MethodDelete, tc.front.URL+"/v1/sessions/"+sess.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	drainBody(t, del)
	if del.StatusCode != 200 && del.StatusCode != 204 {
		t.Fatalf("delete: %d", del.StatusCode)
	}

	gone, err := http.Get(tc.front.URL + "/v1/sessions/" + sess.ID)
	if err != nil {
		t.Fatalf("info after delete: %v", err)
	}
	drainBody(t, gone)
	if gone.StatusCode != 404 {
		t.Fatalf("info after delete: %d, want 404", gone.StatusCode)
	}
}

// TestCoordinatorSessionAffinityMiss: after the coordinator loses its
// session-id → backend mapping (restart, LRU eviction), a session step
// and a session delete still reach the true owner. The scatter probe
// must be a side-effect-free GET accepted only on 2xx — forwarding the
// original POST/DELETE would draw a 405 from non-owners (poisoning the
// map with the first replica in ring order) or execute the delete
// during the probe and then report 404 for the re-sent operation.
func TestCoordinatorSessionAffinityMiss(t *testing.T) {
	tc := newTestCluster(t, 2)

	// Find a session owned by a backend that is NOT first in scatter
	// order, so a method-forwarding probe would hit a non-owner first.
	scatterFirst := tc.coord.liveBackends()[0].name
	var sessID, owner string
	for k := 1; k <= 64 && sessID == ""; k++ {
		body := fmt.Sprintf("p cnf %d 1\n%d 0\n", k, k)
		resp, err := http.Post(tc.front.URL+"/v1/sessions", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		b := drainBody(t, resp)
		if resp.StatusCode != 200 && resp.StatusCode != 201 {
			t.Fatalf("create: %d %s", resp.StatusCode, b)
		}
		var sess struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(b, &sess); err != nil || sess.ID == "" {
			t.Fatalf("create body %s (err %v)", b, err)
		}
		if be := resp.Header.Get("X-Backend"); be != scatterFirst {
			sessID, owner = sess.ID, be
		}
	}
	if sessID == "" {
		t.Fatalf("no session landed off the scatter-first backend %q", scatterFirst)
	}

	// Simulate a coordinator restart: forget the session's owner.
	tc.coord.sessRoute.Delete(sessID)
	step, err := http.Post(tc.front.URL+"/v1/sessions/"+sessID+"/solve",
		"application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	sb := drainBody(t, step)
	if step.StatusCode != 200 {
		t.Fatalf("step after affinity miss: %d %s", step.StatusCode, sb)
	}
	if got := step.Header.Get("X-Backend"); got != owner {
		t.Fatalf("step after affinity miss routed to %q, want owner %q", got, owner)
	}

	// Forget again, then delete: the probe must not consume the delete.
	tc.coord.sessRoute.Delete(sessID)
	req, _ := http.NewRequest(http.MethodDelete, tc.front.URL+"/v1/sessions/"+sessID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	drainBody(t, del)
	if del.StatusCode != 200 && del.StatusCode != 204 {
		t.Fatalf("delete after affinity miss: %d", del.StatusCode)
	}
	gone, err := http.Get(tc.front.URL + "/v1/sessions/" + sessID)
	if err != nil {
		t.Fatalf("info after delete: %v", err)
	}
	drainBody(t, gone)
	if gone.StatusCode != 404 {
		t.Fatalf("info after delete: %d, want 404", gone.StatusCode)
	}
}

// TestCoordinatorClientCancelKeepsBackendsUp: a client disconnecting
// mid-request (canceled inbound context) must not eject backends —
// before the clientGone guard, one abandoned request could cascade the
// canceled context across every ring member and mark the whole cluster
// down.
func TestCoordinatorClientCancelKeepsBackendsUp(t *testing.T) {
	tc := newTestCluster(t, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		tc.front.URL+"/v1/solve", strings.NewReader(testCNFSat))
	rec := httptest.NewRecorder()
	tc.coord.Handler().ServeHTTP(rec, req)

	for name, b := range tc.coord.backends {
		if !b.up.Load() {
			t.Fatalf("backend %s ejected by a client-canceled request", name)
		}
	}
}

// TestRouteKeyGzipBounded: routeKey's decompression is capped, so a
// gzip bomb routes by its raw digest instead of expanding in
// coordinator memory, while a legitimately gzipped formula still hashes
// to the same key as its plain upload.
func TestRouteKeyGzipBounded(t *testing.T) {
	gzipped := func(s string) []byte {
		var buf strings.Builder
		gw := gzip.NewWriter(&buf)
		if _, err := io.WriteString(gw, s); err != nil {
			t.Fatal(err)
		}
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		return []byte(buf.String())
	}

	plainKey := routeKey([]byte(testCNFSat), "", 1<<20)
	if gzKey := routeKey(gzipped(testCNFSat), "gzip", 1<<20); gzKey != plainKey {
		t.Fatalf("gzip key %q != plain key %q", gzKey, plainKey)
	}

	bomb := gzipped(strings.Repeat("a", 1<<20)) // ~1 KiB compressed, 1 MiB expanded
	if key := routeKey(bomb, "gzip", 4096); !strings.HasPrefix(key, "raw:") {
		t.Fatalf("over-limit gzip body routed by %q, want a raw: digest", key)
	}
}

// TestCoordinatorHealthDegraded: with every backend ejected the
// coordinator's own /healthz flips to 503 degraded, so an upstream load
// balancer stops sending traffic to a coordinator that can only 502.
func TestCoordinatorHealthDegraded(t *testing.T) {
	tc := newTestCluster(t, 2)
	for _, ts := range tc.backends {
		ts.CloseClientConnections()
		ts.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		hz, err := http.Get(tc.front.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		body := string(drainBody(t, hz))
		if hz.StatusCode == 503 && strings.HasPrefix(body, "degraded\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never degraded: %d %q", hz.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCoordinatorRequestID: a client-supplied X-Request-ID is echoed by
// the coordinator and forwarded to the replica (whose response headers
// pass back through the proxy).
func TestCoordinatorRequestID(t *testing.T) {
	tc := newTestCluster(t, 2)
	req, _ := http.NewRequest(http.MethodPost, tc.front.URL+"/v1/solve", strings.NewReader(testCNFSat))
	req.Header.Set("X-Request-ID", "cluster-e2e-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	drainBody(t, resp)
	if got := resp.Header.Get("X-Request-ID"); got != "cluster-e2e-42" {
		t.Fatalf("X-Request-ID %q, want the client's id", got)
	}
}

// TestCoordinatorHealth: the coordinator's healthz lists every backend,
// flips to 503 on Drain, and reflects a dead backend once the prober
// notices.
func TestCoordinatorHealth(t *testing.T) {
	tc := newTestCluster(t, 2)

	hz, err := http.Get(tc.front.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body := string(drainBody(t, hz))
	if hz.StatusCode != 200 || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("healthz: %d %q", hz.StatusCode, body)
	}
	if strings.Count(body, "backend ") != 2 || !strings.Contains(body, " up\n") {
		t.Fatalf("healthz body missing backend lines: %q", body)
	}

	// Kill backend 0 and wait for the prober to eject it.
	tc.backends[0].CloseClientConnections()
	tc.backends[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hz, err := http.Get(tc.front.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		body = string(drainBody(t, hz))
		if strings.Contains(body, " down\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never ejected the dead backend: %q", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	tc.coord.Drain()
	hz, err = http.Get(tc.front.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body = string(drainBody(t, hz))
	if hz.StatusCode != 503 || !strings.HasPrefix(body, "draining\n") {
		t.Fatalf("draining healthz: %d %q", hz.StatusCode, body)
	}
	// Data plane refuses during drain.
	sr := tc.solve(testCNFSat)
	drainBody(t, sr)
	if sr.StatusCode != 503 {
		t.Fatalf("solve while draining: %d, want 503", sr.StatusCode)
	}
}
