// Package cluster is the distribution layer over internal/server: a
// stateless coordinator that consistent-hashes the canonical formula
// hash across a static set of solver replicas, so identical formulas
// always land on the same replica and that replica's LRU result cache,
// singleflight table, and warm-session pool become cluster-wide
// properties for free.
//
// The coordinator proxies the full /v1 surface:
//
//   - POST /v1/solve and POST /v1/jobs route by CanonicalHash of the
//     uploaded formula (the same key the replica's cache uses), with
//     transparent failover to the key's ring successor when the owner is
//     down — a transport-level failure before any response bytes marks
//     the backend down and retries once on the next live backend.
//   - GET /v1/jobs/{id} and GET /v1/jobs/{id}/events route by a bounded
//     job-id → backend map filled from proxied submissions; an unknown id
//     (coordinator restart, map eviction) falls back to scatter-probing
//     the live backends. Event streams are proxied flush-per-event so SSE
//     frames and heartbeat comments pass through in real time.
//   - /v1/sessions/* has strict session affinity: creation routes by
//     formula hash, every later step follows the session-id → backend
//     map. Session steps are never retried elsewhere — the warm solver
//     state exists on exactly one replica.
//
// Health is tracked per backend by an active /healthz prober (ejection
// after FailThreshold consecutive failures, readmission on the first
// success) plus passive markdown on proxy transport errors. The ring
// itself is immutable — dead backends are skipped at lookup, so only the
// dead backend's keys remap (~1/N) and readmission restores the exact
// original assignment (see ring.go, ring_test.go).
//
// X-Request-ID threads end to end: the coordinator runs the same
// correlation middleware as the replicas and forwards the id, so one id
// names a request in the coordinator's metrics, the replica's access
// log, its journal records, and its trace events. Every proxied response
// carries X-Backend naming the replica that produced it.
package cluster

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neuroselect/internal/obs"
	"neuroselect/internal/server"
)

// Config sizes a Coordinator. Replicas is required; everything else has
// serviceable defaults.
type Config struct {
	// Replicas are the backend base URLs (e.g. http://10.0.0.1:8080).
	// The set is static for the coordinator's lifetime; health probing
	// ejects and readmits members, it never adds new ones.
	Replicas []string
	// ProbeInterval is the per-backend /healthz cadence (<=0 → 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health check (<=0 → min(ProbeInterval, 1s)).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures eject a
	// backend from routing (<=0 → 2). One probe success readmits.
	FailThreshold int
	// Vnodes is the ring points per backend (<=0 → 128).
	Vnodes int
	// MaxBodyBytes caps a buffered upload body, matching the replicas'
	// own cap so the coordinator rejects oversize bodies before
	// forwarding them (<=0 → 64 MiB).
	MaxBodyBytes int64
	// RouteCap bounds the job-id and session-id affinity maps, LRU each
	// (<=0 → 4096). An evicted job id degrades to a scatter probe; an
	// evicted session id degrades the same way (the session still lives
	// on its replica).
	RouteCap int
	// Registry receives the neuroselect_cluster_* metrics; nil uses a
	// private registry.
	Registry *obs.Registry
	// Transport overrides the proxy transport (tests); nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
}

// Coordinator is a running routing tier. Create with New, mount Handler
// on an http.Server, stop with Close (Drain first for graceful LB
// handoff).
type Coordinator struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backend // ring name → state
	client   *http.Client

	jobRoute  *routeMap // job id → backend name
	sessRoute *routeMap // session id → backend name

	draining atomic.Bool
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	m clusterMetrics
}

type clusterMetrics struct {
	routed  func(backend, endpoint string) *obs.Counter
	retries *obs.Counter
	probes  func(backend, outcome string) *obs.Counter
}

func newClusterMetrics(reg *obs.Registry, c *Coordinator) clusterMetrics {
	m := clusterMetrics{}
	m.routed = func(backend, endpoint string) *obs.Counter {
		return reg.Counter("neuroselect_cluster_routed_total",
			"Requests proxied, by backend and endpoint.",
			obs.Labels{"backend": backend, "endpoint": endpoint})
	}
	m.retries = reg.Counter("neuroselect_cluster_retries_total",
		"Proxied requests retried on a fallback backend after a transport failure.", nil)
	m.probes = func(backend, outcome string) *obs.Counter {
		return reg.Counter("neuroselect_cluster_probes_total",
			"Active health probes by backend and outcome (ok, fail).",
			obs.Labels{"backend": backend, "outcome": outcome})
	}
	for name, b := range c.backends {
		b := b
		reg.GaugeFunc("neuroselect_cluster_backend_state",
			"Backend routing state (1 = up, 0 = ejected).",
			obs.Labels{"backend": name},
			func() float64 {
				if b.up.Load() {
					return 1
				}
				return 0
			})
	}
	return m
}

// New builds the coordinator, marks every configured backend up, and
// starts the health probers. It does not wait for a probe round: a
// backend that is down at startup costs one failed proxy (passive
// markdown plus failover) before routing stops considering it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
		if cfg.ProbeTimeout > cfg.ProbeInterval {
			cfg.ProbeTimeout = cfg.ProbeInterval
		}
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.RouteCap <= 0 {
		cfg.RouteCap = 4096
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	c := &Coordinator{
		cfg:      cfg,
		backends: make(map[string]*backend, len(cfg.Replicas)),
		// No client-level timeout: solves legitimately block for the
		// request's ?timeout= and SSE streams are open-ended. Per-probe
		// deadlines come from probeOnce's context.
		client:    &http.Client{Transport: transport},
		jobRoute:  newRouteMap(cfg.RouteCap),
		sessRoute: newRouteMap(cfg.RouteCap),
	}
	var names []string
	for _, raw := range cfg.Replicas {
		u, err := url.Parse(strings.TrimSuffix(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad replica URL %q (want scheme://host:port)", raw)
		}
		name := u.Host
		if _, dup := c.backends[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica %q", name)
		}
		b := &backend{name: name, base: u}
		b.up.Store(true)
		c.backends[name] = b
		names = append(names, name)
	}
	c.ring = NewRing(names, cfg.Vnodes)
	c.m = newClusterMetrics(cfg.Registry, c)

	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	for _, b := range c.backends {
		c.wg.Add(1)
		go c.probeLoop(ctx, b)
	}
	return c, nil
}

// Registry returns the registry carrying the coordinator metrics.
func (c *Coordinator) Registry() *obs.Registry { return c.cfg.Registry }

// Draining reports whether the coordinator has stopped admitting work.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Drain flips the coordinator to draining: /healthz answers 503 (load
// balancers stop routing here) and new data-plane requests are refused.
// In-flight proxied requests are the http.Server's to finish — call
// http.Server.Shutdown after Drain, then Close.
func (c *Coordinator) Drain() { c.draining.Store(true) }

// Close stops the health probers. Idempotent.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

// alive reports whether a backend is currently routable.
func (c *Coordinator) alive(name string) bool {
	b, ok := c.backends[name]
	return ok && b.up.Load()
}

// liveBackends returns the routable backends in ring order (stable, so
// scatter probes are deterministic).
func (c *Coordinator) liveBackends() []*backend {
	var out []*backend
	for _, name := range c.ring.Backends() {
		if b := c.backends[name]; b != nil && b.up.Load() {
			out = append(out, b)
		}
	}
	return out
}

// Handler returns the coordinator mux: the replica surface, proxied,
// plus the coordinator's own /healthz. Every request runs through the
// same X-Request-ID middleware the replicas use.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", c.handleHashRouted("solve"))
	mux.HandleFunc("POST /v1/jobs", c.handleHashRouted("jobs"))
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJobEvents)
	mux.HandleFunc("POST /v1/sessions", c.handleHashRouted("session-create"))
	mux.HandleFunc("POST /v1/sessions/{id}/solve", c.handleSessionOp("session-solve"))
	mux.HandleFunc("GET /v1/sessions/{id}", c.handleSessionOp("session-info"))
	mux.HandleFunc("DELETE /v1/sessions/{id}", c.handleSessionOp("session-delete"))
	mux.HandleFunc("GET /healthz", c.handleHealth)
	return server.WithRequestID(mux)
}

// handleHealth is the coordinator's own liveness: 200 "ok" while
// routing, 503 "draining" during shutdown, 503 "degraded" when every
// backend is ejected (an upstream load balancer should prefer a
// coordinator that can actually route), plus one line per backend so an
// operator's curl shows the ring state at a glance.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	code, state := http.StatusOK, "ok"
	if c.Draining() {
		code, state = http.StatusServiceUnavailable, "draining"
	} else if len(c.liveBackends()) == 0 {
		code, state = http.StatusServiceUnavailable, "degraded"
	}
	w.WriteHeader(code)
	fmt.Fprintln(w, state)
	for _, name := range c.ring.Backends() {
		st := "down"
		if c.alive(name) {
			st = "up"
		}
		fmt.Fprintf(w, "backend %s %s\n", name, st)
	}
}

// routeMap is a bounded LRU map of resource id → backend name, filling
// from proxied responses. Eviction only costs a scatter probe later, so
// the bound is a memory cap, not a correctness edge.
type routeMap struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*list.Element
	ll   *list.List // front = most recently used
}

type routeEntry struct {
	id      string
	backend string
}

func newRouteMap(capacity int) *routeMap {
	return &routeMap{cap: capacity, byID: make(map[string]*list.Element), ll: list.New()}
}

// Put records (or refreshes) an id's backend.
func (m *routeMap) Put(id, backend string) {
	if id == "" || backend == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byID[id]; ok {
		el.Value.(*routeEntry).backend = backend
		m.ll.MoveToFront(el)
		return
	}
	m.byID[id] = m.ll.PushFront(&routeEntry{id: id, backend: backend})
	for m.ll.Len() > m.cap {
		back := m.ll.Back()
		m.ll.Remove(back)
		delete(m.byID, back.Value.(*routeEntry).id)
	}
}

// Get looks an id's backend up, refreshing its recency.
func (m *routeMap) Get(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byID[id]
	if !ok {
		return "", false
	}
	m.ll.MoveToFront(el)
	return el.Value.(*routeEntry).backend, true
}

// Delete forgets an id (session closed).
func (m *routeMap) Delete(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byID[id]; ok {
		m.ll.Remove(el)
		delete(m.byID, id)
	}
}
