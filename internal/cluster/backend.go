package cluster

// Backend health tracking: one record per configured replica, marked up
// or down by an active prober (periodic GET /healthz) and passively by
// proxy-time transport failures. State changes move routing instantly —
// the ring itself never changes, lookups just skip dead backends — so
// ejection and readmission are O(1) flag flips with the minimal-movement
// and exact-restore properties proven in ring_test.go.

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"
)

// backendState is one replica's live routing state. The name (host:port
// of its base URL) is its ring identity and its metric label.
type backend struct {
	name string
	base *url.URL

	up    atomic.Bool
	fails atomic.Int32 // consecutive probe failures (prober + passive markdowns)
}

// markDown ejects the backend from routing (idempotent).
func (b *backend) markDown() { b.up.Store(false) }

// markUp readmits the backend and clears the failure streak.
func (b *backend) markUp() {
	b.fails.Store(0)
	b.up.Store(true)
}

// probeLoop drives one backend's active health checking until ctx ends.
// A 200 /healthz readmits the backend immediately; FailThreshold
// consecutive failures (non-200, transport error, or timeout) eject it.
// A draining replica answers 503, so a cluster-wide drain naturally
// removes replicas from routing before their listeners close.
func (c *Coordinator) probeLoop(ctx context.Context, b *backend) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if c.probeOnce(ctx, b) {
			c.m.probes(b.name, "ok").Inc()
			if !b.up.Load() {
				b.markUp()
			} else {
				b.fails.Store(0)
			}
		} else {
			c.m.probes(b.name, "fail").Inc()
			if b.fails.Add(1) >= int32(c.cfg.FailThreshold) {
				b.markDown()
			}
		}
	}
}

// probeOnce is one health check: GET {base}/healthz under ProbeTimeout.
func (c *Coordinator) probeOnce(ctx context.Context, b *backend) bool {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base.JoinPath("/healthz").String(), nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// noteTransportFailure is the passive markdown path: the proxy reached
// for the backend and the transport failed (no response bytes), so the
// backend is ejected immediately — the prober readmits it on its next
// successful /healthz.
func (c *Coordinator) noteTransportFailure(b *backend) {
	b.fails.Store(int32(c.cfg.FailThreshold))
	b.markDown()
}
