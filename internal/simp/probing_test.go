package simp

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func TestFailedLiteralBasic(t *testing.T) {
	// (¬x1∨x2) ∧ (¬x1∨¬x2): assuming x1 propagates both x2 and ¬x2 →
	// conflict → unit ¬x1.
	f := cnf.New(2)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-1, -2)
	units, unsat := FailedLiteralProbe(f, 0)
	if unsat {
		t.Fatal("formula is satisfiable")
	}
	found := false
	for _, u := range units {
		if u == -1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("units %v must contain -1", units)
	}
}

func TestFailedLiteralRefutes(t *testing.T) {
	// Both polarities of x1 fail: UNSAT detected by probing alone.
	f := cnf.New(2)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-1, -2)
	f.MustAddClause(1, 2)
	f.MustAddClause(1, -2)
	_, unsat := FailedLiteralProbe(f, 0)
	if !unsat {
		t.Fatal("probing should refute this formula")
	}
}

func TestFailedLiteralFixpoint(t *testing.T) {
	// Learning ¬x1 enables a second-round failure of x2:
	// x1 fails as above; with ¬x1 fixed, (x1∨¬x2∨x3) ∧ (x1∨¬x2∨¬x3) makes
	// x2 fail too.
	f := cnf.New(3)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-1, -2)
	f.MustAddClause(1, -2, 3)
	f.MustAddClause(1, -2, -3)
	units, unsat := FailedLiteralProbe(f, 0)
	if unsat {
		t.Fatal("satisfiable")
	}
	want := map[cnf.Lit]bool{}
	for _, u := range units {
		want[u] = true
	}
	if !want[-1] || !want[-2] {
		t.Fatalf("units %v must contain -1 and -2", units)
	}
}

// TestProbingSoundness: units discovered by probing must be implied — the
// formula conjoined with the negation of any discovered unit is UNSAT, and
// conjoined with all units it is equisatisfiable.
func TestProbingSoundness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		inst := gen.RandomKSAT(20, 85, 3, seed)
		units, unsat := FailedLiteralProbe(inst.F, 0)
		direct, err := solver.Solve(inst.F, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if unsat {
			if direct.Status != solver.Unsat {
				t.Fatalf("%s: probing refuted a %v formula", inst.Name, direct.Status)
			}
			continue
		}
		for _, u := range units {
			res, err := solver.SolveAssuming(inst.F, []cnf.Lit{-u}, solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != solver.Unsat {
				t.Fatalf("%s: probed unit %v is not implied", inst.Name, u)
			}
		}
		if len(units) > 0 {
			res, err := solver.SolveAssuming(inst.F, units, solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if (res.Status == solver.Sat) != (direct.Status == solver.Sat) {
				t.Fatalf("%s: adding probed units changed satisfiability", inst.Name)
			}
		}
	}
}

func TestProbingBudget(t *testing.T) {
	inst := gen.RandomKSAT(50, 210, 3, 1)
	// A budget of 1 must not loop forever and returns promptly.
	units, unsat := FailedLiteralProbe(inst.F, 1)
	if unsat {
		t.Fatal("cannot refute within one probe on this instance")
	}
	_ = units
}
