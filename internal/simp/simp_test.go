package simp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars
	if n > 20 {
		panic("too large")
	}
	a := cnf.NewAssignment(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			return true
		}
	}
	return false
}

func TestUnitPropagationChain(t *testing.T) {
	f := cnf.New(4)
	f.MustAddClause(1)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-2, 3)
	f.MustAddClause(-3, 4)
	res := Simplify(f, Options{})
	if res.ProvenUnsat {
		t.Fatal("chain is SAT")
	}
	if len(res.F.Clauses) != 0 {
		t.Fatalf("chain should fully propagate, %d clauses left", len(res.F.Clauses))
	}
	if len(res.Units) != 4 {
		t.Fatalf("units = %v", res.Units)
	}
	model := ExtendModel(cnf.NewAssignment(4), res.Units)
	if !model.Satisfies(f) {
		t.Fatal("extended model must satisfy original")
	}
}

func TestTopLevelConflict(t *testing.T) {
	f := cnf.New(1)
	f.MustAddClause(1)
	f.MustAddClause(-1)
	res := Simplify(f, Options{})
	if !res.ProvenUnsat {
		t.Fatal("contradictory units must refute")
	}
}

func TestPureLiteralElimination(t *testing.T) {
	// x1 appears only positively: pure.
	f := cnf.New(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(1, -3)
	f.MustAddClause(2, 3)
	res := Simplify(f, Options{})
	if res.Stats.PureLiterals == 0 {
		t.Fatal("expected pure-literal elimination")
	}
	model := ExtendModel(res.anyModel(t, f.NumVars), res.Units)
	if !model.Satisfies(f) {
		t.Fatal("model extension after pure elimination")
	}
}

// anyModel solves the simplified residue by brute force for testing.
func (r Result) anyModel(t *testing.T, numVars int) cnf.Assignment {
	t.Helper()
	a := cnf.NewAssignment(numVars)
	if len(r.F.Clauses) == 0 {
		return a
	}
	for mask := 0; mask < 1<<uint(numVars); mask++ {
		for v := 1; v <= numVars; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(r.F) {
			return a
		}
	}
	t.Fatal("residue unsatisfiable")
	return nil
}

func TestSubsumption(t *testing.T) {
	f := cnf.New(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(1, 2, 3) // subsumed
	res := Simplify(f, Options{DisablePureLiterals: true})
	if res.Stats.Subsumed != 1 {
		t.Fatalf("subsumed = %d", res.Stats.Subsumed)
	}
	if len(res.F.Clauses) != 1 {
		t.Fatalf("clauses = %d", len(res.F.Clauses))
	}
}

func TestSelfSubsumingResolution(t *testing.T) {
	// (x1∨x2) and (¬x1∨x2∨x3): resolving on x1 gives (x2∨x3) ⊂ the second
	// clause → strengthen it to (x2∨x3).
	f := cnf.New(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 2, 3)
	res := Simplify(f, Options{DisablePureLiterals: true})
	if res.Stats.Strengthened == 0 {
		t.Fatal("expected strengthening")
	}
	for _, c := range res.F.Clauses {
		if len(c) > 2 {
			t.Fatalf("clause %v not strengthened", c)
		}
	}
}

func TestTautologyAndDuplicateRemoval(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1, -1)
	f.MustAddClause(1, 2)
	f.MustAddClause(2, 1)
	res := Simplify(f, Options{DisablePureLiterals: true, DisableSubsumption: true})
	if res.Stats.TautologiesGone != 1 || res.Stats.DuplicatesGone != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

// TestEquisatisfiabilityProperty is the core invariant: simplification
// never changes satisfiability, and SAT models extend to the original.
func TestEquisatisfiabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(5*n)
		inst := gen.RandomKSAT(n, m, 2+rng.Intn(2), int64(trial))
		want := bruteForceSat(inst.F)
		res := Simplify(inst.F, Options{})
		if res.ProvenUnsat {
			if want {
				t.Fatalf("%s: simplifier refuted a SAT formula", inst.Name)
			}
			continue
		}
		got := bruteForceSat(res.F)
		if got != want {
			t.Fatalf("%s: satisfiability changed: %v -> %v", inst.Name, want, got)
		}
		if got {
			inner := res.anyModel(t, inst.F.NumVars)
			model := ExtendModel(inner, res.Units)
			if !model.Satisfies(inst.F) {
				t.Fatalf("%s: extended model does not satisfy original", inst.Name)
			}
		}
	}
}

// TestSimplifyThenSolveAgrees cross-checks preprocessing + CDCL against
// plain CDCL on larger instances.
func TestSimplifyThenSolveAgrees(t *testing.T) {
	insts := []gen.Instance{
		gen.RandomKSAT(50, 210, 3, 1),
		gen.Pigeonhole(5),
		gen.Tseitin(12, 3, false, 2),
		gen.Miter(6, 30, false, 3),
		gen.NQueens(6),
	}
	for _, in := range insts {
		direct, err := solver.Solve(in.F, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := Simplify(in.F, Options{})
		if res.ProvenUnsat {
			if direct.Status != solver.Unsat {
				t.Fatalf("%s: preprocessing refuted but solver says %v", in.Name, direct.Status)
			}
			continue
		}
		after, err := solver.Solve(res.F, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if after.Status != direct.Status {
			t.Fatalf("%s: %v after simplify vs %v direct", in.Name, after.Status, direct.Status)
		}
		if after.Status == solver.Sat {
			model := ExtendModel(after.Model, res.Units)
			if !model.Satisfies(in.F) {
				t.Fatalf("%s: extended model fails", in.Name)
			}
		}
	}
}

func TestQuickCheckStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		inst := gen.RandomKSAT(8, 25, 3, seed)
		res := Simplify(inst.F, Options{})
		s := res.Stats
		return s.ClausesAfter <= s.ClausesBefore && s.Rounds >= 1 &&
			(res.ProvenUnsat || res.F.Validate() == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFormula(t *testing.T) {
	res := Simplify(cnf.New(0), Options{})
	if res.ProvenUnsat || len(res.F.Clauses) != 0 {
		t.Fatal("empty formula")
	}
}

func TestSimplifyWithProbing(t *testing.T) {
	// The probing fixpoint example from probing_test: Simplify with
	// probing enabled must discover and apply those units.
	f := cnf.New(3)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-1, -2)
	f.MustAddClause(1, -2, 3)
	f.MustAddClause(1, -2, -3)
	// Subsumption alone would already strengthen this example to units, so
	// disable it to isolate the probing path.
	res := Simplify(f, Options{EnableProbing: true, DisableSubsumption: true})
	if res.ProvenUnsat {
		t.Fatal("satisfiable")
	}
	if res.Stats.ProbedUnits == 0 {
		t.Fatal("probing found nothing")
	}
	fixed := map[cnf.Lit]bool{}
	for _, u := range res.Units {
		fixed[u] = true
	}
	if !fixed[-1] || !fixed[-2] {
		t.Fatalf("units %v must fix ¬x1 and ¬x2", res.Units)
	}
	// Equisatisfiability still holds.
	for seed := int64(0); seed < 20; seed++ {
		inst := gen.RandomKSAT(10, 35, 3, seed)
		want := bruteForceSat(inst.F)
		pres := Simplify(inst.F, Options{EnableProbing: true})
		if pres.ProvenUnsat {
			if want {
				t.Fatalf("%s: probing refuted SAT formula", inst.Name)
			}
			continue
		}
		if got := bruteForceSat(pres.F); got != want {
			t.Fatalf("%s: satisfiability changed", inst.Name)
		}
		if want {
			inner := pres.anyModel(t, inst.F.NumVars)
			if !ExtendModel(inner, pres.Units).Satisfies(inst.F) {
				t.Fatalf("%s: model extension with probing", inst.Name)
			}
		}
	}
}

func TestProbingRefutesViaSimplify(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-1, -2)
	f.MustAddClause(1, 2)
	f.MustAddClause(1, -2)
	res := Simplify(f, Options{EnableProbing: true})
	if !res.ProvenUnsat {
		t.Fatal("probing-backed simplify should refute")
	}
}
