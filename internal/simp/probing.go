package simp

import "neuroselect/internal/cnf"

// FailedLiteralProbe performs failed-literal probing on the formula: for
// every literal l of every unassigned variable, it assumes l, runs unit
// propagation, and if a conflict arises learns the unit ¬l. Probing runs to
// a fixpoint (a learned unit can fail further literals) and returns the
// discovered units plus whether the formula was refuted outright (both
// polarities of some variable failed).
//
// Probing is quadratic in the worst case, so MaxProbes bounds the number of
// propagation runs (0 means the default of 4·NumVars).
func FailedLiteralProbe(f *cnf.Formula, maxProbes int) (units []cnf.Lit, unsat bool) {
	if maxProbes == 0 {
		maxProbes = 4 * f.NumVars
	}
	// Occurrence lists for unit propagation.
	occ := make([][]int, 2*f.NumVars)
	idx := func(l cnf.Lit) int {
		i := 2 * (l.Var() - 1)
		if l < 0 {
			i++
		}
		return i
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			occ[idx(l)] = append(occ[idx(l)], ci)
		}
	}

	fixed := make([]int8, f.NumVars+1) // top-level assignment

	// propagate assumes the literals in seed on top of fixed and reports
	// conflict; assign is scratch space reused across probes.
	assign := make([]int8, f.NumVars+1)
	propagate := func(seed []cnf.Lit) bool {
		copy(assign, fixed)
		var queue []cnf.Lit
		enqueue := func(l cnf.Lit) bool {
			v := l.Var()
			want := int8(1)
			if l < 0 {
				want = -1
			}
			switch assign[v] {
			case 0:
				assign[v] = want
				queue = append(queue, l)
				return true
			case want:
				return true
			default:
				return false
			}
		}
		for _, l := range seed {
			if !enqueue(l) {
				return true
			}
		}
		value := func(l cnf.Lit) int8 {
			a := assign[l.Var()]
			if l < 0 {
				return -a
			}
			return a
		}
		// Initial pass for pre-existing units under `fixed`.
		for _, c := range f.Clauses {
			sat, unset, unit := false, 0, cnf.Lit(0)
			for _, l := range c {
				switch value(l) {
				case 1:
					sat = true
				case 0:
					unset++
					unit = l
				}
				if sat || unset > 1 {
					break
				}
			}
			if sat || unset > 1 {
				continue
			}
			if unset == 0 {
				return true
			}
			if !enqueue(unit) {
				return true
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			p := queue[qi]
			for _, ci := range occ[idx(-p)] {
				c := f.Clauses[ci]
				sat, unset, unit := false, 0, cnf.Lit(0)
				for _, l := range c {
					switch value(l) {
					case 1:
						sat = true
					case 0:
						unset++
						unit = l
					}
					if sat || unset > 1 {
						break
					}
				}
				if sat || unset > 1 {
					continue
				}
				if unset == 0 {
					return true
				}
				if !enqueue(unit) {
					return true
				}
			}
		}
		return false
	}

	// First make sure the fixed set includes the formula's own units.
	if propagate(nil) {
		return nil, true
	}

	probes := 0
	changed := true
	for changed && probes < maxProbes {
		changed = false
		for v := 1; v <= f.NumVars && probes < maxProbes; v++ {
			if fixed[v] != 0 {
				continue
			}
			l := cnf.Lit(v)
			failPos := propagate([]cnf.Lit{l})
			probes++
			failNeg := false
			if probes < maxProbes {
				failNeg = propagate([]cnf.Lit{-l})
				probes++
			}
			switch {
			case failPos && failNeg:
				return units, true
			case failPos:
				fixed[v] = -1
				units = append(units, -l)
				changed = true
			case failNeg:
				fixed[v] = 1
				units = append(units, l)
				changed = true
			}
			if changed && propagate(nil) {
				return units, true
			}
		}
	}
	return units, false
}
