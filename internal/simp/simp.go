// Package simp implements CNF preprocessing in the style of SatELite /
// Kissat's inprocessing front end: top-level unit propagation, pure-literal
// elimination, tautology and duplicate removal, clause subsumption, and
// self-subsuming resolution (clause strengthening). Preprocessing preserves
// satisfiability and, via the recorded trace, models can be extended back
// to the original variables.
package simp

import (
	"sort"

	"neuroselect/internal/cnf"
)

// Result carries the simplified formula plus the bookkeeping needed to
// reconstruct models of the original formula.
type Result struct {
	F *cnf.Formula
	// Units are literals fixed at the top level (by unit propagation or
	// pure-literal elimination); any model of F extended with these
	// satisfies the original formula.
	Units []cnf.Lit
	// ProvenUnsat is set when preprocessing alone refutes the formula.
	ProvenUnsat bool
	Stats       Stats
}

// Stats counts the effect of each technique.
type Stats struct {
	UnitsPropagated int
	PureLiterals    int
	TautologiesGone int
	DuplicatesGone  int
	Subsumed        int
	Strengthened    int
	ProbedUnits     int
	Rounds          int
	ClausesBefore   int
	ClausesAfter    int
	LiteralsRemoved int
}

// Options bounds the (potentially quadratic) subsumption work.
type Options struct {
	// MaxRounds bounds the simplification fixpoint loop (default 10).
	MaxRounds int
	// SubsumptionLimit skips subsumption when the clause count exceeds it
	// (default 50000).
	SubsumptionLimit int
	// DisableSubsumption turns off subsumption and strengthening.
	DisableSubsumption bool
	// DisablePureLiterals turns off pure-literal elimination.
	DisablePureLiterals bool
	// EnableProbing adds a failed-literal probing pass after the main
	// fixpoint; probed units join Result.Units (off by default — probing
	// is the most expensive technique).
	EnableProbing bool
	// MaxProbes bounds probing when enabled (0 = probing's own default).
	MaxProbes int
}

func (o *Options) fillDefaults() {
	if o.MaxRounds == 0 {
		o.MaxRounds = 10
	}
	if o.SubsumptionLimit == 0 {
		o.SubsumptionLimit = 50000
	}
}

// Simplify preprocesses the formula (the input is not modified).
func Simplify(f *cnf.Formula, opts Options) Result {
	opts.fillDefaults()
	res := Result{Stats: Stats{ClausesBefore: len(f.Clauses)}}

	// Working set: normalized clauses with tautologies dropped.
	var clauses []cnf.Clause
	seen := map[string]bool{}
	for _, c := range f.Clauses {
		nc, taut := c.Clone().Normalize()
		if taut {
			res.Stats.TautologiesGone++
			continue
		}
		k := clauseKey(nc)
		if seen[k] {
			res.Stats.DuplicatesGone++
			continue
		}
		seen[k] = true
		clauses = append(clauses, nc)
	}

	assign := make([]int8, f.NumVars+1) // 0 unset, +1 true, −1 false
	setLit := func(l cnf.Lit) bool {    // false on conflict
		v := l.Var()
		want := int8(1)
		if l < 0 {
			want = -1
		}
		if assign[v] == 0 {
			assign[v] = want
			res.Units = append(res.Units, l)
			return true
		}
		return assign[v] == want
	}

	for round := 0; round < opts.MaxRounds; round++ {
		res.Stats.Rounds = round + 1
		changed := false

		// Unit propagation at the top level.
		for {
			progress := false
			kept := clauses[:0]
			for _, c := range clauses {
				nc, state := applyAssignment(c, assign)
				switch state {
				case clauseSat:
					changed, progress = true, true
					continue
				case clauseEmpty:
					res.ProvenUnsat = true
					res.F = cnf.New(f.NumVars)
					res.Stats.ClausesAfter = 0
					return res
				case clauseUnit:
					if !setLit(nc[0]) {
						res.ProvenUnsat = true
						res.F = cnf.New(f.NumVars)
						res.Stats.ClausesAfter = 0
						return res
					}
					res.Stats.UnitsPropagated++
					changed, progress = true, true
					continue
				}
				if len(nc) < len(c) {
					res.Stats.LiteralsRemoved += len(c) - len(nc)
					changed, progress = true, true
				}
				kept = append(kept, nc)
			}
			clauses = kept
			if !progress {
				break
			}
		}

		// Pure-literal elimination.
		if !opts.DisablePureLiterals {
			polarity := make([]int8, f.NumVars+1) // bitmask: 1 pos, 2 neg
			for _, c := range clauses {
				for _, l := range c {
					if l > 0 {
						polarity[l.Var()] |= 1
					} else {
						polarity[l.Var()] |= 2
					}
				}
			}
			for v := 1; v <= f.NumVars; v++ {
				if assign[v] != 0 {
					continue
				}
				switch polarity[v] {
				case 1:
					if setLit(cnf.Lit(v)) {
						res.Stats.PureLiterals++
						changed = true
					}
				case 2:
					if setLit(-cnf.Lit(v)) {
						res.Stats.PureLiterals++
						changed = true
					}
				}
			}
		}

		// Subsumption and self-subsuming resolution.
		if !opts.DisableSubsumption && len(clauses) <= opts.SubsumptionLimit {
			var sub, str int
			clauses, sub, str = subsumePass(clauses)
			res.Stats.Subsumed += sub
			res.Stats.Strengthened += str
			if sub > 0 || str > 0 {
				changed = true
			}
		}

		if !changed {
			break
		}
	}

	out := cnf.New(f.NumVars)
	for _, c := range clauses {
		// Apply the final assignment once more (pure literals may have
		// satisfied clauses).
		nc, state := applyAssignment(c, assign)
		if state == clauseSat {
			continue
		}
		out.Clauses = append(out.Clauses, nc)
	}
	res.F = out
	res.Stats.ClausesAfter = len(out.Clauses)

	if opts.EnableProbing && !res.ProvenUnsat {
		probed, unsat := FailedLiteralProbe(out, opts.MaxProbes)
		if unsat {
			res.ProvenUnsat = true
			res.F = cnf.New(f.NumVars)
			res.Stats.ClausesAfter = 0
			return res
		}
		if len(probed) > 0 {
			// Fold the probed units in with one more simplification round
			// (without recursive probing).
			for _, u := range probed {
				out.Clauses = append(out.Clauses, cnf.Clause{u})
			}
			inner := Simplify(out, Options{
				MaxRounds:           opts.MaxRounds,
				SubsumptionLimit:    opts.SubsumptionLimit,
				DisableSubsumption:  opts.DisableSubsumption,
				DisablePureLiterals: opts.DisablePureLiterals,
			})
			res.F = inner.F
			res.Units = append(res.Units, inner.Units...)
			res.ProvenUnsat = inner.ProvenUnsat
			res.Stats.ClausesAfter = inner.Stats.ClausesAfter
			res.Stats.ProbedUnits = len(probed)
		}
	}
	return res
}

type clauseState int

const (
	clauseOpen clauseState = iota
	clauseSat
	clauseUnit
	clauseEmpty
)

// applyAssignment removes falsified literals and classifies the clause
// under the partial assignment.
func applyAssignment(c cnf.Clause, assign []int8) (cnf.Clause, clauseState) {
	out := make(cnf.Clause, 0, len(c))
	for _, l := range c {
		a := assign[l.Var()]
		if a == 0 {
			out = append(out, l)
			continue
		}
		if (a == 1) == (l > 0) {
			return nil, clauseSat
		}
		// falsified literal dropped
	}
	switch len(out) {
	case 0:
		return nil, clauseEmpty
	case 1:
		return out, clauseUnit
	default:
		return out, clauseOpen
	}
}

func clauseKey(c cnf.Clause) string {
	b := make([]byte, 0, len(c)*4)
	for _, l := range c {
		b = appendInt(b, int32(l))
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int32) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	start := len(b)
	for {
		b = append(b, byte('0'+v%10))
		v /= 10
		if v == 0 {
			break
		}
	}
	// reverse digits
	for i, j := start, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return b
}

// subsumePass removes subsumed clauses and strengthens clauses by
// self-subsuming resolution: if C ∪ {l} ⊇ D ∪ {¬l} resolves, the literal l
// can be removed from the superset clause.
func subsumePass(clauses []cnf.Clause) (out []cnf.Clause, subsumed, strengthened int) {
	// Sort by length so potential subsumers come first.
	sort.SliceStable(clauses, func(i, j int) bool { return len(clauses[i]) < len(clauses[j]) })
	// Occurrence index over the shortest literal of each clause would be
	// the production approach; at this scale a signature-filtered pairwise
	// pass is sufficient and simpler.
	sigs := make([]uint64, len(clauses))
	dead := make([]bool, len(clauses))
	for i, c := range clauses {
		sigs[i] = signature(c)
	}
	for i := 0; i < len(clauses); i++ {
		if dead[i] {
			continue
		}
		for j := i + 1; j < len(clauses); j++ {
			if dead[j] || len(clauses[i]) > len(clauses[j]) {
				continue
			}
			if sigs[i]&^sigs[j] != 0 {
				continue // signature filter: i has a literal j lacks
			}
			switch relation(clauses[i], clauses[j]) {
			case relSubsumes:
				dead[j] = true
				subsumed++
			case relStrengthens:
				// clauses[j] loses the literal whose negation is in i.
				clauses[j] = strengthen(clauses[i], clauses[j])
				sigs[j] = signature(clauses[j])
				strengthened++
			}
		}
	}
	for i, c := range clauses {
		if !dead[i] {
			out = append(out, c)
		}
	}
	return out, subsumed, strengthened
}

// signature is a 64-bit Bloom-style summary over the clause's VARIABLES
// (not literals): both subsumption and self-subsuming resolution require
// the smaller clause's variable set to be contained in the larger one's,
// so a variable-based filter is sound for both relations.
func signature(c cnf.Clause) uint64 {
	var s uint64
	for _, l := range c {
		h := uint64(l.Var()) * 2654435761 % 64
		s |= 1 << h
	}
	return s
}

type rel int

const (
	relNone rel = iota
	relSubsumes
	relStrengthens
)

// relation classifies small-vs-large clause pairs: relSubsumes when small ⊆
// large; relStrengthens when small ⊆ large after flipping exactly one
// literal of small.
func relation(small, large cnf.Clause) rel {
	inLarge := make(map[cnf.Lit]bool, len(large))
	for _, l := range large {
		inLarge[l] = true
	}
	flips := 0
	for _, l := range small {
		switch {
		case inLarge[l]:
		case inLarge[-l]:
			flips++
			if flips > 1 {
				return relNone
			}
		default:
			return relNone
		}
	}
	if flips == 0 {
		return relSubsumes
	}
	return relStrengthens
}

// strengthen removes from large the negation of the single flipped literal
// of small.
func strengthen(small, large cnf.Clause) cnf.Clause {
	inLarge := make(map[cnf.Lit]bool, len(large))
	for _, l := range large {
		inLarge[l] = true
	}
	var flipped cnf.Lit
	for _, l := range small {
		if inLarge[-l] {
			flipped = -l
			break
		}
	}
	out := large[:0]
	for _, l := range large {
		if l != flipped {
			out = append(out, l)
		}
	}
	return out
}

// ExtendModel lifts a model of the simplified formula to the original
// variable set by applying the recorded top-level units. Unconstrained
// variables keep their value from the inner model.
func ExtendModel(model cnf.Assignment, units []cnf.Lit) cnf.Assignment {
	out := append(cnf.Assignment(nil), model...)
	for _, l := range units {
		out[l.Var()] = l > 0
	}
	return out
}
