package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"neuroselect/internal/tensor"
)

// gradCheck compares the analytic gradient of loss(x) with central finite
// differences at every coordinate of x. build must construct the scalar
// loss from a fresh tape and the leaf for x.
func gradCheck(t *testing.T, name string, x *tensor.Matrix, build func(tp *Tape, xv *Value) *Value) {
	t.Helper()
	tp := NewTape()
	xv := tp.Leaf(x)
	loss := build(tp, xv)
	tp.Backward(loss)
	analytic := xv.Grad()
	if analytic == nil {
		t.Fatalf("%s: no gradient reached the leaf", name)
	}

	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := evalLoss(x, build)
		x.Data[i] = orig - h
		lm := evalLoss(x, build)
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		got := analytic.Data[i]
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
		if math.Abs(numeric-got)/scale > 1e-4 {
			t.Fatalf("%s: grad[%d] analytic %.8f vs numeric %.8f", name, i, got, numeric)
		}
	}
}

func evalLoss(x *tensor.Matrix, build func(tp *Tape, xv *Value) *Value) float64 {
	tp := NewTape()
	xv := tp.Leaf(x)
	return build(tp, xv).M.Data[0]
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := randMat(rng, 4, 3)
	gradCheck(t, "matmul-left", randMat(rng, 2, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.MatMul(xv, tp.Leaf(b)))
	})
	a := randMat(rng, 2, 4)
	gradCheck(t, "matmul-right", randMat(rng, 4, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.MatMul(tp.Leaf(a), xv))
	})
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gradCheck(t, "relu", randMat(rng, 3, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.ReLU(xv))
	})
	gradCheck(t, "sigmoid", randMat(rng, 3, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(xv))
	})
	gradCheck(t, "tanh", randMat(rng, 3, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Tanh(xv))
	})
	gradCheck(t, "scale+addscalar", randMat(rng, 2, 5), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.AddScalar(tp.Scale(xv, -1.7), 0.3))
	})
}

func TestGradHadamardAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := randMat(rng, 3, 4)
	gradCheck(t, "hadamard", randMat(rng, 3, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Hadamard(xv, tp.Leaf(b)))
	})
	gradCheck(t, "add", randMat(rng, 3, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Add(xv, tp.Leaf(b)))
	})
	gradCheck(t, "sub", randMat(rng, 3, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sub(tp.Leaf(b), xv))
	})
	// Value used twice: gradient must accumulate from both paths.
	gradCheck(t, "shared-use", randMat(rng, 3, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Add(tp.Hadamard(xv, xv), xv))
	})
}

func TestGradReductionsAndBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gradCheck(t, "rowmean", randMat(rng, 5, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(tp.RowMean(xv)))
	})
	gradCheck(t, "colsums", randMat(rng, 5, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Tanh(tp.ColSums(xv)))
	})
	a := randMat(rng, 4, 3)
	gradCheck(t, "broadcast-row", randMat(rng, 1, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(tp.AddRowBroadcast(tp.Leaf(a), xv)))
	})
	gradCheck(t, "broadcast-base", randMat(rng, 4, 3), func(tp *Tape, xv *Value) *Value {
		r := randMat(rand.New(rand.NewSource(9)), 1, 3)
		return tp.MeanScalar(tp.Sigmoid(tp.AddRowBroadcast(xv, tp.Leaf(r))))
	})
}

func TestGradRowScaleReciprocal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := tensor.New(4, 1)
	for i := range d.Data {
		d.Data[i] = 1.5 + rng.Float64() // keep away from zero
	}
	gradCheck(t, "rowscale-a", randMat(rng, 4, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.RowScale(xv, tp.Leaf(d)))
	})
	a := randMat(rng, 4, 3)
	gradCheck(t, "rowscale-d", d.Clone(), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.RowScale(tp.Leaf(a), xv))
	})
	gradCheck(t, "reciprocal", d.Clone(), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Reciprocal(xv))
	})
}

func TestGradFrobNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gradCheck(t, "frobnorm", randMat(rng, 3, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(tp.FrobNormalize(xv)))
	})
}

func TestGradTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := randMat(rng, 2, 4)
	gradCheck(t, "transpose", randMat(rng, 4, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.MatMul(tp.Leaf(b), tp.Transpose(tp.Transpose(xv))))
	})
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := tensor.NewSparse(4, 5)
	s.Add(0, 1, 1.0)
	s.Add(0, 3, -1.0)
	s.Add(1, 0, 0.5)
	s.Add(2, 2, 2.0)
	s.Add(3, 4, -0.25)
	s.Add(3, 1, 1.0)
	gradCheck(t, "spmm", randMat(rng, 5, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Tanh(tp.SpMM(s, xv)))
	})
}

func TestGradConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := randMat(rng, 3, 2)
	gradCheck(t, "concat-cols", randMat(rng, 3, 4), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(tp.ConcatCols(xv, tp.Leaf(b))))
	})
	gradCheck(t, "slice-rows", randMat(rng, 6, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Tanh(tp.SliceRows(xv, 1, 4)))
	})
	c := randMat(rng, 2, 3)
	gradCheck(t, "concat-rows", randMat(rng, 3, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(tp.ConcatRows(xv, tp.Leaf(c))))
	})
}

func TestGradBCEWithLogits(t *testing.T) {
	for _, y := range []float64{0, 1, 0.3} {
		x := tensor.FromSlice(1, 1, []float64{0.7})
		gradCheck(t, "bce", x, func(tp *Tape, xv *Value) *Value {
			return tp.BCEWithLogits(xv, y)
		})
	}
	// Extreme logits must stay finite.
	tp := NewTape()
	z := tp.Leaf(tensor.FromSlice(1, 1, []float64{1000}))
	l := tp.BCEWithLogits(z, 0)
	if math.IsInf(l.M.Data[0], 0) || math.IsNaN(l.M.Data[0]) {
		t.Fatalf("BCE not stable at large logits: %v", l.M.Data[0])
	}
	tp.Backward(l)
	if g := z.Grad().Data[0]; math.Abs(g-1) > 1e-9 {
		t.Fatalf("BCE grad at huge logit, y=0: got %v, want 1", g)
	}
}

func TestGradLinearAttentionComposite(t *testing.T) {
	// End-to-end check of the Eq. 8–9 composite used by the model.
	rng := rand.New(rand.NewSource(10))
	wq := randMat(rng, 3, 3)
	wk := randMat(rng, 3, 3)
	wv := randMat(rng, 3, 3)
	attention := func(tp *Tape, z *Value) *Value {
		n := float64(z.M.Rows)
		q := tp.FrobNormalize(tp.MatMul(z, tp.Leaf(wq)))
		k := tp.FrobNormalize(tp.MatMul(z, tp.Leaf(wk)))
		v := tp.MatMul(z, tp.Leaf(wv))
		ks := tp.Transpose(tp.ColSums(k))
		d := tp.AddScalar(tp.Scale(tp.MatMul(q, ks), 1/n), 1)
		kv := tp.MatMul(tp.Transpose(k), v)
		numer := tp.Add(v, tp.Scale(tp.MatMul(q, kv), 1/n))
		return tp.MeanScalar(tp.RowScale(numer, tp.Reciprocal(d)))
	}
	gradCheck(t, "linear-attention", randMat(rng, 5, 3), attention)
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tp := NewTape()
	x := tp.Leaf(tensor.New(2, 2))
	tp.Backward(x)
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	x := tp.Leaf(tensor.FromSlice(1, 1, []float64{2}))
	loss := tp.MeanScalar(tp.Hadamard(x, x))
	tp.Backward(loss)
	if g := x.Grad().Data[0]; math.Abs(g-4) > 1e-12 {
		t.Fatalf("grad %v, want 4", g)
	}
	tp.Reset()
	// A fresh forward on the reset tape accumulates independently.
	y := tp.Leaf(tensor.FromSlice(1, 1, []float64{3}))
	loss2 := tp.MeanScalar(y)
	tp.Backward(loss2)
	if g := y.Grad().Data[0]; math.Abs(g-1) > 1e-12 {
		t.Fatalf("grad after reset %v, want 1", g)
	}
}

func TestGradPermuteRows(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	perm := []int{2, 0, 3, 1}
	gradCheck(t, "permute-rows", randMat(rng, 4, 3), func(tp *Tape, xv *Value) *Value {
		return tp.MeanScalar(tp.Sigmoid(tp.PermuteRows(xv, perm)))
	})
}

func TestDeepChainGradient(t *testing.T) {
	// A 40-layer chain must backpropagate stably (no vanishing to exact 0,
	// no NaN).
	rng := rand.New(rand.NewSource(21))
	x := randMat(rng, 2, 2)
	tp := NewTape()
	v := tp.Leaf(x)
	for i := 0; i < 40; i++ {
		v = tp.Tanh(v)
	}
	loss := tp.MeanScalar(v)
	tp.Backward(loss)
	g := tp.nodes[0].Grad()
	for _, gv := range g.Data {
		if math.IsNaN(gv) || math.IsInf(gv, 0) {
			t.Fatalf("unstable deep gradient: %v", gv)
		}
	}
}

func TestGradAccumulationAcrossBranches(t *testing.T) {
	// y = x·a + x·b shares x: grad must be a+b columns-wise.
	rng := rand.New(rand.NewSource(22))
	a := randMat(rng, 3, 2)
	b := randMat(rng, 3, 2)
	gradCheck(t, "branch-accumulation", randMat(rng, 2, 3), func(tp *Tape, xv *Value) *Value {
		left := tp.MatMul(xv, tp.Leaf(a))
		right := tp.MatMul(xv, tp.Leaf(b))
		return tp.MeanScalar(tp.Add(left, right))
	})
}
