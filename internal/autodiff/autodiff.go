// Package autodiff implements tape-based reverse-mode automatic
// differentiation over dense matrices. A Tape records operations in
// execution order; Backward walks the tape in reverse, accumulating
// gradients. The operator set covers what the NeuroSelect models need:
// linear algebra, elementwise nonlinearities, graph aggregation (sparse
// matrix products), Frobenius normalization for the paper's linear
// attention, and a numerically stable binary cross-entropy.
package autodiff

import (
	"fmt"
	"math"

	"neuroselect/internal/tensor"
)

// Value is a node in the computation graph holding a matrix and, after
// Backward, its gradient.
type Value struct {
	M    *tensor.Matrix
	grad *tensor.Matrix
	back func()
}

// Grad returns the gradient accumulated for this value (nil before
// Backward).
func (v *Value) Grad() *tensor.Matrix { return v.grad }

// ensureGrad lazily allocates the gradient buffer.
func (v *Value) ensureGrad() *tensor.Matrix {
	if v.grad == nil {
		v.grad = tensor.New(v.M.Rows, v.M.Cols)
	}
	return v.grad
}

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*Value
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset clears the tape for reuse.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// node registers a new value with its backward closure.
func (t *Tape) node(m *tensor.Matrix, back func()) *Value {
	v := &Value{M: m, back: back}
	t.nodes = append(t.nodes, v)
	return v
}

// Leaf registers a matrix as a differentiable input (parameter or input
// features) so its gradient is collected.
func (t *Tape) Leaf(m *tensor.Matrix) *Value {
	return t.node(m, nil)
}

// Backward seeds the gradient of loss (which must be 1×1) with 1 and
// back-propagates through the tape.
func (t *Tape) Backward(loss *Value) {
	if loss.M.Rows != 1 || loss.M.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward needs a scalar loss, got %dx%d", loss.M.Rows, loss.M.Cols))
	}
	loss.ensureGrad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.grad != nil {
			n.back()
		}
	}
}

// MatMul returns a×b.
func (t *Tape) MatMul(a, b *Value) *Value {
	out := t.node(tensor.MatMul(a.M, b.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), tensor.MatMulT(out.grad, b.M))
		tensor.AddInPlace(b.ensureGrad(), tensor.TMatMul(a.M, out.grad))
	}
	return out
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Value) *Value {
	out := t.node(tensor.Transpose(a.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), tensor.Transpose(out.grad))
	}
	return out
}

// Add returns a+b.
func (t *Tape) Add(a, b *Value) *Value {
	out := t.node(tensor.Add(a.M, b.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), out.grad)
		tensor.AddInPlace(b.ensureGrad(), out.grad)
	}
	return out
}

// Sub returns a−b.
func (t *Tape) Sub(a, b *Value) *Value {
	out := t.node(tensor.Sub(a.M, b.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), out.grad)
		tensor.AddInPlace(b.ensureGrad(), tensor.Scale(out.grad, -1))
	}
	return out
}

// Scale returns s·a for scalar constant s.
func (t *Tape) Scale(a *Value, s float64) *Value {
	out := t.node(tensor.Scale(a.M, s), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), tensor.Scale(out.grad, s))
	}
	return out
}

// AddScalar returns a + c elementwise for scalar constant c.
func (t *Tape) AddScalar(a *Value, c float64) *Value {
	out := t.node(tensor.Apply(a.M, func(x float64) float64 { return x + c }), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), out.grad)
	}
	return out
}

// Hadamard returns a⊙b.
func (t *Tape) Hadamard(a, b *Value) *Value {
	out := t.node(tensor.Hadamard(a.M, b.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), tensor.Hadamard(out.grad, b.M))
		tensor.AddInPlace(b.ensureGrad(), tensor.Hadamard(out.grad, a.M))
	}
	return out
}

// ReLU returns max(a, 0) elementwise.
func (t *Tape) ReLU(a *Value) *Value {
	out := t.node(tensor.Apply(a.M, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}), nil)
	out.back = func() {
		g := a.ensureGrad()
		for i, x := range a.M.Data {
			if x > 0 {
				g.Data[i] += out.grad.Data[i]
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+e^−a) elementwise.
func (t *Tape) Sigmoid(a *Value) *Value {
	out := t.node(tensor.Apply(a.M, sigmoid), nil)
	out.back = func() {
		g := a.ensureGrad()
		for i, y := range out.M.Data {
			g.Data[i] += out.grad.Data[i] * y * (1 - y)
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Value) *Value {
	out := t.node(tensor.Apply(a.M, math.Tanh), nil)
	out.back = func() {
		g := a.ensureGrad()
		for i, y := range out.M.Data {
			g.Data[i] += out.grad.Data[i] * (1 - y*y)
		}
	}
	return out
}

// RowMean returns the 1×C mean of the rows of a.
func (t *Tape) RowMean(a *Value) *Value {
	out := t.node(tensor.RowMean(a.M), nil)
	out.back = func() {
		g := a.ensureGrad()
		inv := 1.0 / float64(a.M.Rows)
		for i := 0; i < a.M.Rows; i++ {
			row := g.Row(i)
			for j, v := range out.grad.Data {
				row[j] += v * inv
			}
		}
	}
	return out
}

// ColSums returns the 1×C column sums of a.
func (t *Tape) ColSums(a *Value) *Value {
	out := t.node(tensor.ColSums(a.M), nil)
	out.back = func() {
		g := a.ensureGrad()
		for i := 0; i < a.M.Rows; i++ {
			row := g.Row(i)
			for j, v := range out.grad.Data {
				row[j] += v
			}
		}
	}
	return out
}

// AddRowBroadcast returns a with row vector r (1×C) added to every row.
func (t *Tape) AddRowBroadcast(a, r *Value) *Value {
	out := t.node(tensor.AddRowBroadcast(a.M, r.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), out.grad)
		tensor.AddInPlace(r.ensureGrad(), tensor.ColSums(out.grad))
	}
	return out
}

// RowScale scales row i of a by d[i] where d is N×1.
func (t *Tape) RowScale(a, d *Value) *Value {
	if d.M.Cols != 1 || d.M.Rows != a.M.Rows {
		panic(fmt.Sprintf("autodiff: RowScale needs N×1 scale, got %dx%d for a %dx%d",
			d.M.Rows, d.M.Cols, a.M.Rows, a.M.Cols))
	}
	out := tensor.New(a.M.Rows, a.M.Cols)
	for i := 0; i < a.M.Rows; i++ {
		s := d.M.Data[i]
		arow := a.M.Row(i)
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = v * s
		}
	}
	node := t.node(out, nil)
	node.back = func() {
		ga := a.ensureGrad()
		gd := d.ensureGrad()
		for i := 0; i < a.M.Rows; i++ {
			s := d.M.Data[i]
			arow := a.M.Row(i)
			grow := node.grad.Row(i)
			garow := ga.Row(i)
			acc := 0.0
			for j, gv := range grow {
				garow[j] += gv * s
				acc += gv * arow[j]
			}
			gd.Data[i] += acc
		}
	}
	return node
}

// Reciprocal returns 1/a elementwise.
func (t *Tape) Reciprocal(a *Value) *Value {
	out := t.node(tensor.Apply(a.M, func(x float64) float64 { return 1 / x }), nil)
	out.back = func() {
		g := a.ensureGrad()
		for i, x := range a.M.Data {
			g.Data[i] -= out.grad.Data[i] / (x * x)
		}
	}
	return out
}

// FrobNormalize returns a/‖a‖_F (the paper's Q̃, K̃ in Eq. 8). For a zero
// matrix the output is zero and the gradient vanishes.
func (t *Tape) FrobNormalize(a *Value) *Value {
	f := tensor.Frobenius(a.M)
	if f == 0 {
		out := t.node(a.M.Clone(), nil)
		out.back = func() {}
		return out
	}
	out := t.node(tensor.Scale(a.M, 1/f), nil)
	out.back = func() {
		// d(a/f)/da: g/f − a · (Σ g⊙a)/f³
		dot := 0.0
		for i := range a.M.Data {
			dot += out.grad.Data[i] * a.M.Data[i]
		}
		g := a.ensureGrad()
		c := dot / (f * f * f)
		for i := range a.M.Data {
			g.Data[i] += out.grad.Data[i]/f - a.M.Data[i]*c
		}
	}
	return out
}

// SpMM returns s×a for a constant sparse operator s (no gradient flows to
// s). This is the graph-aggregation primitive of the MPNN.
func (t *Tape) SpMM(s *tensor.Sparse, a *Value) *Value {
	out := t.node(tensor.SpMM(s, a.M), nil)
	out.back = func() {
		tensor.AddInPlace(a.ensureGrad(), tensor.SpMMT(s, out.grad))
	}
	return out
}

// ConcatCols returns [a | b] with identical row counts.
func (t *Tape) ConcatCols(a, b *Value) *Value {
	if a.M.Rows != b.M.Rows {
		panic(fmt.Sprintf("autodiff: concat rows %d vs %d", a.M.Rows, b.M.Rows))
	}
	out := tensor.New(a.M.Rows, a.M.Cols+b.M.Cols)
	for i := 0; i < a.M.Rows; i++ {
		copy(out.Row(i)[:a.M.Cols], a.M.Row(i))
		copy(out.Row(i)[a.M.Cols:], b.M.Row(i))
	}
	node := t.node(out, nil)
	node.back = func() {
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i := 0; i < a.M.Rows; i++ {
			grow := node.grad.Row(i)
			garow := ga.Row(i)
			gbrow := gb.Row(i)
			for j := range garow {
				garow[j] += grow[j]
			}
			for j := range gbrow {
				gbrow[j] += grow[a.M.Cols+j]
			}
		}
	}
	return node
}

// SliceRows returns rows [lo, hi) of a as a view-copy.
func (t *Tape) SliceRows(a *Value, lo, hi int) *Value {
	if lo < 0 || hi > a.M.Rows || lo > hi {
		panic(fmt.Sprintf("autodiff: slice [%d,%d) of %d rows", lo, hi, a.M.Rows))
	}
	out := tensor.New(hi-lo, a.M.Cols)
	for i := lo; i < hi; i++ {
		copy(out.Row(i-lo), a.M.Row(i))
	}
	node := t.node(out, nil)
	node.back = func() {
		g := a.ensureGrad()
		for i := lo; i < hi; i++ {
			grow := node.grad.Row(i - lo)
			garow := g.Row(i)
			for j, v := range grow {
				garow[j] += v
			}
		}
	}
	return node
}

// ConcatRows returns a stacked on top of b (equal column counts).
func (t *Tape) ConcatRows(a, b *Value) *Value {
	if a.M.Cols != b.M.Cols {
		panic(fmt.Sprintf("autodiff: concatRows cols %d vs %d", a.M.Cols, b.M.Cols))
	}
	out := tensor.New(a.M.Rows+b.M.Rows, a.M.Cols)
	copy(out.Data[:len(a.M.Data)], a.M.Data)
	copy(out.Data[len(a.M.Data):], b.M.Data)
	node := t.node(out, nil)
	node.back = func() {
		ga, gb := a.ensureGrad(), b.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += node.grad.Data[i]
		}
		for i := range gb.Data {
			gb.Data[i] += node.grad.Data[len(ga.Data)+i]
		}
	}
	return node
}

// PermuteRows returns the matrix whose row i is a's row perm[i]. perm must
// be a permutation of the row indices; used for NeuroSAT's literal flip.
func (t *Tape) PermuteRows(a *Value, perm []int) *Value {
	if len(perm) != a.M.Rows {
		panic(fmt.Sprintf("autodiff: permutation length %d for %d rows", len(perm), a.M.Rows))
	}
	out := tensor.New(a.M.Rows, a.M.Cols)
	for i, p := range perm {
		copy(out.Row(i), a.M.Row(p))
	}
	node := t.node(out, nil)
	node.back = func() {
		g := a.ensureGrad()
		for i, p := range perm {
			grow := node.grad.Row(i)
			garow := g.Row(p)
			for j, v := range grow {
				garow[j] += v
			}
		}
	}
	return node
}

// BCEWithLogits returns the numerically stable binary cross-entropy between
// a 1×1 logit z and target y ∈ [0,1]:
//
//	loss = max(z,0) − z·y + log(1+e^(−|z|))
//
// The gradient with respect to z is σ(z) − y.
func (t *Tape) BCEWithLogits(z *Value, y float64) *Value {
	if z.M.Rows != 1 || z.M.Cols != 1 {
		panic("autodiff: BCEWithLogits expects a 1×1 logit")
	}
	zz := z.M.Data[0]
	loss := math.Max(zz, 0) - zz*y + math.Log1p(math.Exp(-math.Abs(zz)))
	out := t.node(tensor.FromSlice(1, 1, []float64{loss}), nil)
	out.back = func() {
		z.ensureGrad().Data[0] += out.grad.Data[0] * (sigmoid(zz) - y)
	}
	return out
}

// MeanScalar reduces an arbitrary matrix to the 1×1 mean of its entries.
func (t *Tape) MeanScalar(a *Value) *Value {
	s := 0.0
	for _, v := range a.M.Data {
		s += v
	}
	n := float64(len(a.M.Data))
	out := t.node(tensor.FromSlice(1, 1, []float64{s / n}), nil)
	out.back = func() {
		g := a.ensureGrad()
		gv := out.grad.Data[0] / n
		for i := range g.Data {
			g.Data[i] += gv
		}
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
