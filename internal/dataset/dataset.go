// Package dataset builds the labeled corpora used to train and evaluate the
// NeuroSelect classifier. Following §5.1 of the paper, every instance is
// solved twice — once under the default clause-deletion policy and once
// under the propagation-frequency–guided policy — and labeled 1 when the
// new policy reduces the (deterministic) propagation count by at least 2%.
//
// The paper draws training strata from SAT Competition years 2016–2021 and
// tests on 2022; this reproduction substitutes seven seeded generator
// strata with matching roles (six train, one test).
package dataset

import (
	"context"
	"fmt"
	"math/rand"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// Labeled is one dataset entry: an instance, the dual-solve measurements,
// and the resulting policy label.
type Labeled struct {
	Inst gen.Instance
	// PropsDefault and PropsFrequency are the propagation counts needed to
	// solve under each policy.
	PropsDefault   int64
	PropsFrequency int64
	// SolvedBoth reports that both runs finished within budget; labels of
	// unsolved instances compare equal-budget progress instead.
	SolvedBoth bool
	// Label is 1 when the frequency policy reduced propagations by ≥2%.
	Label int
	Stats cnf.Stats
}

// Stratum is a named group of labeled instances (the analogue of one
// competition year).
type Stratum struct {
	Name  string
	Items []Labeled
}

// Corpus is the full dataset: several training strata plus one test
// stratum.
type Corpus struct {
	Train []Stratum
	Test  Stratum
}

// Config sizes the corpus. The zero value is filled with defaults that
// label in seconds on a laptop.
type Config struct {
	// TrainStrata is the number of training strata (paper: 6 years).
	TrainStrata int
	// PerStratum is the number of instances per training stratum.
	PerStratum int
	// TestSize is the number of test instances.
	TestSize int
	// Scale multiplies instance sizes (1.0 = laptop defaults).
	Scale float64
	// MaxConflicts bounds each labeling solve.
	MaxConflicts int64
	// Seed drives all generation.
	Seed int64
	// Workers bounds the parallel labeling pool (0 → runtime.NumCPU()).
	// Generation and labeling are pure functions of the per-instance seed
	// and results are collected in index order, so the corpus is identical
	// for every worker count.
	Workers int
}

func (c *Config) fillDefaults() {
	if c.TrainStrata == 0 {
		c.TrainStrata = 6
	}
	if c.PerStratum == 0 {
		c.PerStratum = 12
	}
	if c.TestSize == 0 {
		c.TestSize = 18
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.MaxConflicts == 0 {
		c.MaxConflicts = 20000
	}
}

// SolveOptions returns the solver configuration used throughout the
// experiments: an aggressive reduce schedule so clause deletion is
// exercised even on laptop-scale instances, and the requested policy.
func SolveOptions(p deletion.Policy, maxConflicts int64) solver.Options {
	return solver.Options{
		Policy:       p,
		MaxConflicts: maxConflicts,
		ReduceFirst:  100,
		ReduceInc:    50,
	}
}

// Label measures the formula under both deletion policies and applies the
// §5.1 2%-reduction rule.
func Label(inst gen.Instance, maxConflicts int64) (Labeled, error) {
	return LabelContext(context.Background(), inst, maxConflicts)
}

// LabelContext is Label under a context: cancellation aborts the underlying
// solves (see solver.SolveContext).
func LabelContext(ctx context.Context, inst gen.Instance, maxConflicts int64) (Labeled, error) {
	resDefault, err := solver.SolveContext(ctx, inst.F, SolveOptions(deletion.DefaultPolicy{}, maxConflicts))
	if err != nil {
		return Labeled{}, fmt.Errorf("dataset: labeling %s (default): %w", inst.Name, err)
	}
	resFreq, err := solver.SolveContext(ctx, inst.F, SolveOptions(deletion.FrequencyPolicy{}, maxConflicts))
	if err != nil {
		return Labeled{}, fmt.Errorf("dataset: labeling %s (frequency): %w", inst.Name, err)
	}
	l := Labeled{
		Inst:           inst,
		PropsDefault:   resDefault.Stats.Propagations,
		PropsFrequency: resFreq.Stats.Propagations,
		SolvedBoth:     resDefault.Status != solver.Unknown && resFreq.Status != solver.Unknown,
		Stats:          cnf.ComputeStats(inst.F),
	}
	if float64(l.PropsFrequency) <= 0.98*float64(l.PropsDefault) {
		l.Label = 1
	}
	return l, nil
}

// Build generates and labels a full corpus.
func Build(cfg Config) (*Corpus, error) {
	return BuildContext(context.Background(), cfg)
}

// BuildContext is Build under a context. Labeling — two solves per instance,
// the dominant cost — is sharded across a bounded worker pool
// (cfg.Workers); per-instance seeding and index-ordered collection keep the
// corpus byte-identical for every worker count. Cancellation drains the
// pool and returns the context error.
func BuildContext(ctx context.Context, cfg Config) (*Corpus, error) {
	cfg.fillDefaults()
	corpus := &Corpus{}
	for s := 0; s < cfg.TrainStrata; s++ {
		name := fmt.Sprintf("train-%d", 2016+s)
		st, err := buildStratum(ctx, cfg, name, cfg.PerStratum, cfg.Seed+int64(s)*1000)
		if err != nil {
			return nil, err
		}
		corpus.Train = append(corpus.Train, st)
	}
	test, err := buildStratum(ctx, cfg, "test-2022", cfg.TestSize, cfg.Seed+7777)
	if err != nil {
		return nil, err
	}
	corpus.Test = test
	return corpus, nil
}

// buildStratum generates count instances across the generator families and
// labels each cell of the stratum in parallel.
func buildStratum(ctx context.Context, cfg Config, name string, count int, seed int64) (Stratum, error) {
	items, errs := sweep.Map(ctx, sweep.Options{Workers: cfg.Workers}, count,
		func(ctx context.Context, i int) (Labeled, error) {
			inst := Generate(seed+int64(i)*13, cfg.Scale)
			return LabelContext(ctx, inst, cfg.MaxConflicts)
		})
	if err := sweep.FirstError(errs); err != nil {
		return Stratum{}, err
	}
	if err := ctx.Err(); err != nil {
		return Stratum{}, err
	}
	return Stratum{Name: name, Items: items}, nil
}

// Generate draws one instance from the family mixture, deterministically in
// the seed. Scale stretches the size parameters.
func Generate(seed int64, scale float64) gen.Instance {
	rng := rand.New(rand.NewSource(seed))
	sc := func(base int) int {
		v := int(float64(base) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	// The mixture is biased toward families where the two deletion policies
	// measurably diverge (random/community k-SAT at the phase transition,
	// pigeonhole, Tseitin, subset-sum, long BMC), with a minority of easier
	// structured instances on which clause deletion is irrelevant — as in
	// real competition pools.
	switch rng.Intn(12) {
	case 0, 1, 2:
		n := sc(100 + rng.Intn(100))
		m := int(4.26 * float64(n))
		return gen.RandomKSAT(n, m, 3, seed)
	case 3:
		n := sc(180 + rng.Intn(80))
		m := int(4.2 * float64(n))
		return gen.CommunityKSAT(n, m, 3, 4+rng.Intn(4), 0.85, seed)
	case 4:
		return gen.Tseitin(sc(32+rng.Intn(12)), 3, false, seed)
	case 5:
		return gen.Pigeonhole(6 + rng.Intn(2))
	case 6:
		return gen.SubsetSum(sc(20+rng.Intn(10)), 50, rng.Intn(2) == 0, seed)
	case 7:
		steps := sc(30 + rng.Intn(30))
		var target uint64
		if rng.Intn(2) == 0 {
			target = uint64(steps + rng.Intn(steps+1)) // SAT
		} else {
			target = uint64(2*steps + 1 + rng.Intn(16)) // UNSAT
		}
		return gen.BMCCounter(6, steps, target)
	case 8:
		return gen.Miter(12+rng.Intn(5), sc(200+rng.Intn(200)), rng.Intn(2) == 0, seed)
	case 9:
		v := sc(25 + rng.Intn(10))
		return gen.GraphColoring(v, int(4.6*float64(v)), 4, seed)
	case 10:
		return gen.ParityChain(sc(36+rng.Intn(10)), sc(28+rng.Intn(8)), 5, true, seed)
	default:
		if rng.Intn(2) == 0 {
			return gen.NQueens(7 + rng.Intn(3))
		}
		n := sc(120 + rng.Intn(80))
		return gen.PowerLawKSAT(n, int(4.4*float64(n)), 3, 0.9, seed)
	}
}

// All returns every labeled item of the training strata.
func (c *Corpus) All() []Labeled {
	var out []Labeled
	for _, st := range c.Train {
		out = append(out, st.Items...)
	}
	return out
}

// PositiveRate returns the fraction of label-1 items in the slice.
func PositiveRate(items []Labeled) float64 {
	if len(items) == 0 {
		return 0
	}
	n := 0
	for _, it := range items {
		n += it.Label
	}
	return float64(n) / float64(len(items))
}

// StratumStats is one row of the Table 1 dataset-statistics report.
type StratumStats struct {
	Name        string
	NumCNFs     int
	MeanVars    float64
	MeanClauses float64
	PosRate     float64
}

// Table1 computes the dataset-statistics rows for all strata (train rows
// followed by the test row), mirroring the layout of the paper's Table 1.
func (c *Corpus) Table1() []StratumStats {
	rows := make([]StratumStats, 0, len(c.Train)+1)
	for _, st := range c.Train {
		rows = append(rows, stratumStats(st))
	}
	rows = append(rows, stratumStats(c.Test))
	return rows
}

func stratumStats(st Stratum) StratumStats {
	s := StratumStats{Name: st.Name, NumCNFs: len(st.Items), PosRate: PositiveRate(st.Items)}
	for _, it := range st.Items {
		s.MeanVars += float64(it.Stats.NumVars)
		s.MeanClauses += float64(it.Stats.NumClauses)
	}
	if len(st.Items) > 0 {
		s.MeanVars /= float64(len(st.Items))
		s.MeanClauses /= float64(len(st.Items))
	}
	return s
}
