package dataset

import (
	"testing"

	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func TestLabelRule(t *testing.T) {
	// A trivially easy instance must label 0 (identical runs, no 2% gain).
	inst := gen.NQueens(5)
	lab, err := Label(inst, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !lab.SolvedBoth {
		t.Fatal("queens-5 must solve under both policies")
	}
	if lab.PropsDefault != lab.PropsFrequency {
		t.Fatalf("no reductions should mean identical runs: %d vs %d",
			lab.PropsDefault, lab.PropsFrequency)
	}
	if lab.Label != 0 {
		t.Fatal("identical runs must label 0")
	}
	if lab.Stats.NumVars != inst.F.NumVars {
		t.Fatal("stats must describe the instance")
	}
}

func TestLabelTwoPercentBoundary(t *testing.T) {
	// Synthetic check of the §5.1 rule arithmetic via the exported fields:
	// exactly 2% reduction labels 1, less does not.
	l := Labeled{PropsDefault: 100, PropsFrequency: 98}
	if !(float64(l.PropsFrequency) <= 0.98*float64(l.PropsDefault)) {
		t.Fatal("98 of 100 is exactly the 2% boundary and must qualify")
	}
	l2 := Labeled{PropsDefault: 100, PropsFrequency: 99}
	if float64(l2.PropsFrequency) <= 0.98*float64(l2.PropsDefault) {
		t.Fatal("1% reduction must not qualify")
	}
}

func TestBuildCorpusShape(t *testing.T) {
	c, err := Build(Config{TrainStrata: 2, PerStratum: 4, TestSize: 5, Seed: 3, MaxConflicts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train) != 2 || len(c.Test.Items) != 5 {
		t.Fatalf("corpus shape: %d strata, %d test", len(c.Train), len(c.Test.Items))
	}
	for _, st := range c.Train {
		if len(st.Items) != 4 {
			t.Fatalf("stratum %s has %d items", st.Name, len(st.Items))
		}
	}
	if len(c.All()) != 8 {
		t.Fatalf("All() = %d items", len(c.All()))
	}
	rows := c.Table1()
	if len(rows) != 3 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	if rows[2].Name != "test-2022" {
		t.Fatalf("last row must be the test stratum: %s", rows[2].Name)
	}
	for _, r := range rows {
		if r.MeanVars <= 0 || r.MeanClauses <= 0 {
			t.Fatalf("degenerate stats row: %+v", r)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	cfg := Config{TrainStrata: 1, PerStratum: 3, TestSize: 2, Seed: 9, MaxConflicts: 5000}
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train[0].Items {
		x, y := a.Train[0].Items[i], b.Train[0].Items[i]
		if x.Inst.Name != y.Inst.Name || x.Label != y.Label ||
			x.PropsDefault != y.PropsDefault || x.PropsFrequency != y.PropsFrequency {
			t.Fatalf("corpus not deterministic at item %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestGenerateCoversFamilies(t *testing.T) {
	fams := map[string]bool{}
	for s := int64(0); s < 200; s++ {
		in := Generate(s, 0.3)
		fams[in.Family] = true
		if err := in.F.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
	}
	if len(fams) < 8 {
		t.Fatalf("mixture too narrow: %v", fams)
	}
}

func TestPositiveRate(t *testing.T) {
	items := []Labeled{{Label: 1}, {Label: 0}, {Label: 1}, {Label: 0}}
	if PositiveRate(items) != 0.5 {
		t.Fatalf("rate = %v", PositiveRate(items))
	}
	if PositiveRate(nil) != 0 {
		t.Fatal("empty rate")
	}
}

func TestSolveOptionsPolicyPlumbs(t *testing.T) {
	opts := SolveOptions(nil, 123)
	if opts.MaxConflicts != 123 {
		t.Fatal("budget not plumbed")
	}
	if opts.ReduceFirst != 100 || opts.ReduceInc != 50 {
		t.Fatalf("reduce schedule changed: %+v", opts)
	}
	// Options must be usable directly.
	inst := gen.RandomKSAT(20, 80, 3, 1)
	res, err := solver.Solve(inst.F, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == solver.Unknown {
		t.Fatal("tiny instance should solve")
	}
}
