package satgraph

import (
	"math"
	"testing"
	"testing/quick"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/tensor"
)

func smallFormula() *cnf.Formula {
	// c1 = ¬x1 ∨ x2, c2 = ¬x2 ∨ x3 (the Figure 6 example).
	f := cnf.New(3)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-2, 3)
	return f
}

func TestBuildVCGStructure(t *testing.T) {
	g := BuildVCG(smallFormula())
	if g.NumVars != 3 || g.NumClauses != 2 || g.NumNodes() != 5 {
		t.Fatalf("shape: %+v", g)
	}
	// Degrees: x1:1, x2:2, x3:1, c1:2, c2:2.
	want := []int{1, 2, 1, 2, 2}
	for i, w := range want {
		if g.Degree[i] != w {
			t.Fatalf("degree[%d] = %d, want %d", i, g.Degree[i], w)
		}
	}
	if g.Adj.NNZ() != 8 { // 4 edges × 2 directions
		t.Fatalf("adj nnz = %d", g.Adj.NNZ())
	}
}

func TestVCGEdgeWeightsAndNormalization(t *testing.T) {
	g := BuildVCG(smallFormula())
	// Row of x2 (node 1): neighbors c1 (+1) and c2 (−1), each /2.
	row := g.Adj.Entries[1]
	if len(row) != 2 {
		t.Fatalf("x2 row has %d entries", len(row))
	}
	weights := map[int]float64{}
	for _, e := range row {
		weights[e.Col] = e.W
	}
	if weights[3] != 0.5 || weights[4] != -0.5 {
		t.Fatalf("x2 weights = %v", weights)
	}
	// Raw adjacency keeps ±1.
	rawRow := g.AdjRaw.Entries[1]
	rawWeights := map[int]float64{}
	for _, e := range rawRow {
		rawWeights[e.Col] = e.W
	}
	if rawWeights[3] != 1 || rawWeights[4] != -1 {
		t.Fatalf("raw x2 weights = %v", rawWeights)
	}
}

func TestVCGMeanAggregation(t *testing.T) {
	// Multiplying the normalized adjacency by all-ones variable features
	// must give each clause its mean edge weight.
	g := BuildVCG(smallFormula())
	x := g.InitialFeatures(1)
	out := tensor.SpMM(g.Adj, x)
	// c1 mean = (−1·1 + 1·1)/2 = 0 using variable features 1 (x-part only;
	// clause features are 0 and do not contribute to clause rows).
	if math.Abs(out.At(3, 0)-0) > 1e-12 {
		t.Fatalf("c1 aggregate = %v", out.At(3, 0))
	}
	// x1's only neighbor is c1 whose feature is 0 → 0.
	if out.At(0, 0) != 0 {
		t.Fatalf("x1 aggregate = %v", out.At(0, 0))
	}
}

func TestInitialFeatures(t *testing.T) {
	g := BuildVCG(smallFormula())
	x := g.InitialFeatures(4)
	if x.Rows != 5 || x.Cols != 4 {
		t.Fatalf("features %dx%d", x.Rows, x.Cols)
	}
	for v := 0; v < 3; v++ {
		for j := 0; j < 4; j++ {
			if x.At(v, j) != 1 {
				t.Fatal("§4.2: variable features must initialize to 1")
			}
		}
	}
	for c := 3; c < 5; c++ {
		for j := 0; j < 4; j++ {
			if x.At(c, j) != 0 {
				t.Fatal("§4.2: clause features must initialize to 0")
			}
		}
	}
}

func TestLitIndexAndFlip(t *testing.T) {
	if LitIndex(cnf.Lit(1)) != 0 || LitIndex(cnf.Lit(-1)) != 1 {
		t.Fatal("LitIndex variable 1")
	}
	if LitIndex(cnf.Lit(3)) != 4 || LitIndex(cnf.Lit(-3)) != 5 {
		t.Fatal("LitIndex variable 3")
	}
	f := func(i uint16) bool {
		n := int(i)
		return FlipIndex(FlipIndex(n)) == n && FlipIndex(n) != n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildLCGStructure(t *testing.T) {
	g := BuildLCG(smallFormula())
	if g.NumVars != 3 || g.NumClauses != 2 {
		t.Fatalf("shape %+v", g)
	}
	// LitToClause row 0 (= c1) has sum-aggregation entries for ¬x1 (idx 1)
	// and x2 (idx 2).
	row := g.LitToClause.Entries[0]
	if len(row) != 2 {
		t.Fatalf("c1 row: %v", row)
	}
	for _, e := range row {
		if e.W != 1 {
			t.Fatalf("c1 weight: %v (NeuroSAT uses sum aggregation)", e.W)
		}
		if e.Col != 1 && e.Col != 2 {
			t.Fatalf("c1 neighbor: %d", e.Col)
		}
	}
	// ClauseToLit row of x2 (idx 2): only c1, weight 1.
	row2 := g.ClauseToLit.Entries[2]
	if len(row2) != 1 || row2[0].Col != 0 || row2[0].W != 1 {
		t.Fatalf("x2 row: %v", row2)
	}
}

func TestGraphsOnGeneratedInstances(t *testing.T) {
	insts := []gen.Instance{
		gen.RandomKSAT(30, 120, 3, 1),
		gen.Pigeonhole(4),
		gen.Miter(4, 12, false, 1),
	}
	for _, in := range insts {
		v := BuildVCG(in.F)
		if v.NumNodes() != in.F.NumVars+len(in.F.Clauses) {
			t.Errorf("%s: node count", in.Name)
		}
		if v.Adj.NNZ() != 2*in.F.NumLiterals() {
			t.Errorf("%s: VCG nnz %d != 2×%d", in.Name, v.Adj.NNZ(), in.F.NumLiterals())
		}
		l := BuildLCG(in.F)
		if l.LitToClause.NNZ() != in.F.NumLiterals() {
			t.Errorf("%s: LCG nnz", in.Name)
		}
	}
}

func TestEmptyFormulaGraphs(t *testing.T) {
	f := cnf.New(0)
	v := BuildVCG(f)
	if v.NumNodes() != 0 {
		t.Fatal("empty VCG")
	}
	l := BuildLCG(f)
	if l.NumVars != 0 || l.NumClauses != 0 {
		t.Fatal("empty LCG")
	}
}
