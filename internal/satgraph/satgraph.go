// Package satgraph converts CNF formulas into the graph representations
// consumed by the classifiers: the NeuroComb-style weighted bipartite
// variable–clause graph used by NeuroSelect (§4.2 of the paper) and the
// literal–clause graph used by the NeuroSAT baseline.
package satgraph

import (
	"neuroselect/internal/cnf"
	"neuroselect/internal/tensor"
)

// VCG is the undirected bipartite variable–clause graph G = (V1 ∪ V2, E, W)
// of §4.2: V1 holds one node per variable, V2 one node per clause, and the
// edge weight between variable x_i and clause c_j is +1 when x_i ∈ c_j and
// −1 when ¬x_i ∈ c_j. Node indices place variables first (0..NumVars-1)
// followed by clauses.
type VCG struct {
	NumVars    int
	NumClauses int
	// Adj is the mean-normalized message operator over the full node set:
	// Adj[v][u] = w_uv / |N(v)| for each neighbor u of v (Eq. 6).
	Adj *tensor.Sparse
	// AdjRaw is the unnormalized signed adjacency, used by sum-aggregating
	// baselines such as GIN.
	AdjRaw *tensor.Sparse
	// Degree[v] is |N(v)| for each node.
	Degree []int
}

// NumNodes returns |V1| + |V2|, the quantity the paper caps at 400,000.
func (g *VCG) NumNodes() int { return g.NumVars + g.NumClauses }

// BuildVCG constructs the bipartite graph of a formula. A variable occurring
// in both polarities in one clause contributes two edges whose weights
// cancel in aggregation, mirroring the tautological structure.
func BuildVCG(f *cnf.Formula) *VCG {
	n, m := f.NumVars, len(f.Clauses)
	g := &VCG{
		NumVars:    n,
		NumClauses: m,
		Degree:     make([]int, n+m),
	}
	type edge struct {
		v, c int
		w    float64
	}
	edges := make([]edge, 0, f.NumLiterals())
	for j, cl := range f.Clauses {
		for _, l := range cl {
			w := 1.0
			if !l.Positive() {
				w = -1.0
			}
			edges = append(edges, edge{v: l.Var() - 1, c: n + j, w: w})
			g.Degree[l.Var()-1]++
			g.Degree[n+j]++
		}
	}
	g.Adj = tensor.NewSparse(n+m, n+m)
	g.AdjRaw = tensor.NewSparse(n+m, n+m)
	for _, e := range edges {
		g.Adj.Add(e.v, e.c, e.w/float64(g.Degree[e.v]))
		g.Adj.Add(e.c, e.v, e.w/float64(g.Degree[e.c]))
		g.AdjRaw.Add(e.v, e.c, e.w)
		g.AdjRaw.Add(e.c, e.v, e.w)
	}
	return g
}

// InitialFeatures returns the §4.2 initial node embedding: dimension d with
// every variable-node feature set to 1 and every clause-node feature set
// to 0.
func (g *VCG) InitialFeatures(d int) *tensor.Matrix {
	x := tensor.New(g.NumNodes(), d)
	for v := 0; v < g.NumVars; v++ {
		row := x.Row(v)
		for j := range row {
			row[j] = 1
		}
	}
	return x
}

// LCG is the literal–clause graph of NeuroSAT: one node per literal (2n,
// positive literal of variable v at index 2(v−1), negative at 2(v−1)+1) and
// one node per clause. Message operators use sum aggregation as in the
// original NeuroSAT — with identical initial embeddings, sums expose clause
// sizes and literal degrees, whereas mean-normalized (row-stochastic)
// operators would make the forward pass provably input-independent.
type LCG struct {
	NumVars    int
	NumClauses int
	// LitToClause aggregates (sums) literal features into clauses (m × 2n).
	LitToClause *tensor.Sparse
	// ClauseToLit aggregates (sums) clause features into literals (2n × m).
	ClauseToLit *tensor.Sparse
}

// LitIndex returns the LCG node index of a DIMACS literal.
func LitIndex(l cnf.Lit) int {
	i := 2 * (l.Var() - 1)
	if !l.Positive() {
		i++
	}
	return i
}

// FlipIndex returns the node index of the complementary literal for node i.
func FlipIndex(i int) int { return i ^ 1 }

// BuildLCG constructs the literal–clause graph of a formula.
func BuildLCG(f *cnf.Formula) *LCG {
	n, m := f.NumVars, len(f.Clauses)
	g := &LCG{NumVars: n, NumClauses: m}
	g.LitToClause = tensor.NewSparse(m, 2*n)
	g.ClauseToLit = tensor.NewSparse(2*n, m)
	for j, cl := range f.Clauses {
		for _, l := range cl {
			li := LitIndex(l)
			g.LitToClause.Add(j, li, 1)
			g.ClauseToLit.Add(li, j, 1)
		}
	}
	return g
}
