package cnf

import (
	"errors"
	"testing"

	"neuroselect/internal/faultpoint"
)

func TestParseDIMACSFaultPoint(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	boom := errors.New("disk read failed")
	faultpoint.Arm(faultpoint.DimacsParse, faultpoint.Fault{Err: boom, Times: 1})
	if _, err := ParseDIMACSString("p cnf 1 1\n1 0\n"); !errors.Is(err, boom) {
		t.Fatalf("armed parse must fail with the injected error, got %v", err)
	}
	// The fault fired its one time; parsing works again.
	f, err := ParseDIMACSString("p cnf 2 2\n1 2 0\n-1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 2 {
		t.Fatalf("parse after fault: vars=%d clauses=%d", f.NumVars, len(f.Clauses))
	}
}
