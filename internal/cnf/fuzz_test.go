package cnf

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS checks that the parser never panics and that accepted
// inputs round-trip through WriteDIMACS.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("c comment\np cnf 1 1\n1 0")
	f.Add("1 2 0\n-1 0\n")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf 5 1\n1 2 3 4 5 0\n%\n0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseDIMACSString(input)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed formula invalid: %v", err)
		}
		text := DIMACSString(g)
		h, err := ParseDIMACSString(text)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v", err)
		}
		if h.NumVars != g.NumVars || len(h.Clauses) != len(g.Clauses) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				g.NumVars, len(g.Clauses), h.NumVars, len(h.Clauses))
		}
	})
}

// FuzzNormalize checks Normalize against a straightforward specification.
func FuzzNormalize(f *testing.F) {
	f.Add([]byte{1, 2, 255})
	f.Add([]byte{5, 5, 251})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var c Clause
		for _, b := range raw {
			l := Lit(int8(b))
			if l == 0 {
				continue
			}
			c = append(c, l)
		}
		if len(c) == 0 {
			return
		}
		orig := c.Clone()
		n, taut := c.Normalize()
		// Spec: tautology iff both polarities present in the original.
		set := map[Lit]bool{}
		wantTaut := false
		for _, l := range orig {
			if set[-l] {
				wantTaut = true
			}
			set[l] = true
		}
		if taut != wantTaut {
			t.Fatalf("tautology flag %v, want %v for %v", taut, wantTaut, orig)
		}
		// No duplicates, all literals from the original.
		seen := map[Lit]bool{}
		for _, l := range n {
			if seen[l] {
				t.Fatalf("duplicate %v in normalized %v", l, n)
			}
			seen[l] = true
			if !set[l] {
				t.Fatalf("literal %v invented by Normalize", l)
			}
		}
		if !strings.Contains(DIMACSString(&Formula{NumVars: n.MaxVar(), Clauses: []Clause{n}}), "0") {
			t.Fatal("unterminated clause in output")
		}
	})
}
