package cnf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	cases := []struct {
		l        Lit
		variable int
		positive bool
	}{
		{1, 1, true},
		{-1, 1, false},
		{42, 42, true},
		{-42, 42, false},
	}
	for _, c := range cases {
		if c.l.Var() != c.variable {
			t.Errorf("Var(%d) = %d, want %d", c.l, c.l.Var(), c.variable)
		}
		if c.l.Positive() != c.positive {
			t.Errorf("Positive(%d) = %v, want %v", c.l, c.l.Positive(), c.positive)
		}
		if c.l.Neg().Neg() != c.l {
			t.Errorf("double negation of %d", c.l)
		}
		if c.l.Neg().Var() != c.variable {
			t.Errorf("negation changes variable of %d", c.l)
		}
	}
}

func TestNormalize(t *testing.T) {
	c := Clause{3, -1, 3, 2, -1}
	n, taut := c.Normalize()
	if taut {
		t.Fatal("not a tautology")
	}
	if !reflect.DeepEqual(n, Clause{-1, 2, 3}) {
		t.Fatalf("normalized = %v", n)
	}
	c2 := Clause{1, 2, -1}
	_, taut2 := c2.Normalize()
	if !taut2 {
		t.Fatal("expected tautology")
	}
}

func TestNormalizeProperty(t *testing.T) {
	// Normalization never changes the set of satisfying assignments.
	f := func(raw []int8, assignBits uint8) bool {
		var c Clause
		for _, r := range raw {
			v := int(r)%4 + 1
			if v <= 0 {
				v = 1 - v
			}
			l := Lit(v)
			if r < 0 {
				l = -l
			}
			c = append(c, l)
		}
		if len(c) == 0 {
			return true
		}
		a := NewAssignment(8)
		for v := 1; v <= 8; v++ {
			a[v] = assignBits&(1<<uint(v-1)) != 0
		}
		before := a.SatisfiesClause(c)
		n, taut := c.Clone().Normalize()
		after := taut || a.SatisfiesClause(n)
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddClauseGrowsVars(t *testing.T) {
	f := New(2)
	if err := f.AddClause(5, -3); err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 5 {
		t.Fatalf("NumVars = %d, want 5", f.NumVars)
	}
	if err := f.AddClause(0); err == nil {
		t.Fatal("zero literal must be rejected")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplify(t *testing.T) {
	f := New(3)
	f.MustAddClause(1, -1)
	f.MustAddClause(2, 2, 3)
	f.MustAddClause(-3)
	removed := f.Simplify()
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2", len(f.Clauses))
	}
	if len(f.Clauses[0]) != 2 {
		t.Fatalf("duplicate literal not removed: %v", f.Clauses[0])
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		f := New(1 + rng.Intn(20))
		nc := rng.Intn(30)
		for i := 0; i < nc; i++ {
			k := 1 + rng.Intn(5)
			lits := make([]Lit, k)
			for j := range lits {
				l := Lit(1 + rng.Intn(f.NumVars))
				if rng.Intn(2) == 0 {
					l = -l
				}
				lits[j] = l
			}
			f.MustAddClause(lits...)
		}
		text := DIMACSString(f)
		g, err := ParseDIMACSString(text)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		if !reflect.DeepEqual(f.Clauses, g.Clauses) {
			t.Fatalf("trial %d: clauses differ", trial)
		}
	}
}

func TestParseDIMACSForms(t *testing.T) {
	// Multi-line clauses, comments, missing trailing zero.
	f, err := ParseDIMACSString("c hello\np cnf 3 2\n1 2\n3 0\n-1 -2 -3")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 || f.NumVars != 3 {
		t.Fatalf("got %d clauses %d vars", len(f.Clauses), f.NumVars)
	}
	if !reflect.DeepEqual(f.Clauses[0], Clause{1, 2, 3}) {
		t.Fatalf("clause 0 = %v", f.Clauses[0])
	}
	// Header declaring more vars than used.
	f2, err := ParseDIMACSString("p cnf 10 1\n1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumVars != 10 {
		t.Fatalf("declared vars not honored: %d", f2.NumVars)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"p cnf x 3\n",
		"p cnf 3\n",
		"p cnf 3 1\n1 x 0\n",
		"p cnf 3 1\n1 0\n2 0\n", // more clauses than declared
	} {
		if _, err := ParseDIMACSString(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	f, err := ParseDIMACSString("")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 0 || len(f.Clauses) != 0 {
		t.Fatalf("empty parse: %+v", f)
	}
}

func TestAssignmentEval(t *testing.T) {
	f := New(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 3)
	a := NewAssignment(3)
	a[1], a[2], a[3] = true, false, true
	if !a.Satisfies(f) {
		t.Fatal("assignment should satisfy")
	}
	a[3] = false
	if a.Satisfies(f) {
		t.Fatal("assignment should not satisfy")
	}
	if a.Value(-1) {
		t.Fatal("¬x1 should be false when x1 true")
	}
}

func TestComputeStats(t *testing.T) {
	f := New(4)
	f.MustAddClause(1, 2, 3)
	f.MustAddClause(-1, -2)
	f.MustAddClause(4)
	st := ComputeStats(f)
	if st.NumVars != 4 || st.NumClauses != 3 || st.NumLiterals != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MinClauseLen != 1 || st.MaxClauseLen != 3 {
		t.Fatalf("lens = %d..%d", st.MinClauseLen, st.MaxClauseLen)
	}
	if st.GraphNodes != 7 {
		t.Fatalf("graph nodes = %d", st.GraphNodes)
	}
	if st.VarOccurrences[1] != 2 || st.VarOccurrences[4] != 1 {
		t.Fatalf("occurrences = %v", st.VarOccurrences)
	}
	if st.ClauseLenHist[1] != 1 || st.ClauseLenHist[2] != 1 || st.ClauseLenHist[3] != 1 {
		t.Fatalf("hist = %v", st.ClauseLenHist)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(2)
	f.MustAddClause(1, 2)
	g := f.Clone()
	g.Clauses[0][0] = -1
	if f.Clauses[0][0] != 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestWriteDIMACSComments(t *testing.T) {
	f := New(1)
	f.MustAddClause(1)
	var sb strings.Builder
	if err := WriteDIMACS(&sb, f, "generated by test"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "c generated by test\n") {
		t.Fatalf("comment missing: %q", sb.String())
	}
}
