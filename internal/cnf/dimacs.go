package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"neuroselect/internal/faultpoint"
)

// ParseDIMACS reads a CNF formula in DIMACS format. It tolerates comment
// lines anywhere, a missing or inconsistent header (the declared counts are
// checked loosely: a formula may use fewer variables or clauses than
// declared, never more clauses), and clauses spanning multiple lines.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	if err := faultpoint.Hit(faultpoint.DimacsParse); err != nil {
		return nil, fmt.Errorf("cnf: %w", err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	f := New(0)
	declaredVars, declaredClauses := -1, -1
	var cur Clause
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", lineNo, line)
			}
			var err error
			declaredVars, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad variable count: %v", lineNo, err)
			}
			declaredClauses, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad clause count: %v", lineNo, err)
			}
			if declaredVars < 0 || declaredClauses < 0 {
				return nil, fmt.Errorf("cnf: line %d: negative counts in problem line", lineNo)
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad literal %q: %v", lineNo, tok, err)
			}
			if n == 0 {
				f.Clauses = append(f.Clauses, cur)
				if mv := cur.MaxVar(); mv > f.NumVars {
					f.NumVars = mv
				}
				cur = nil
				continue
			}
			cur = append(cur, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read: %w", err)
	}
	if len(cur) > 0 {
		// Final clause without terminating 0; accept it.
		f.Clauses = append(f.Clauses, cur)
		if mv := cur.MaxVar(); mv > f.NumVars {
			f.NumVars = mv
		}
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	if declaredClauses >= 0 && len(f.Clauses) > declaredClauses {
		return nil, fmt.Errorf("cnf: %d clauses parsed but header declares %d", len(f.Clauses), declaredClauses)
	}
	return f, nil
}

// ParseDIMACSString parses a DIMACS formula held in a string.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// WriteDIMACS writes the formula in DIMACS format, preceded by the supplied
// comment lines (each written as a "c " line).
func WriteDIMACS(w io.Writer, f *Formula, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, cl := range f.Clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", int32(l)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DIMACSString renders the formula as a DIMACS string.
func DIMACSString(f *Formula) string {
	var sb strings.Builder
	_ = WriteDIMACS(&sb, f)
	return sb.String()
}
