package cnf

import "fmt"

// Stats summarizes structural properties of a formula; used for dataset
// reporting (Table 1) and instance filtering.
type Stats struct {
	NumVars      int
	NumClauses   int
	NumLiterals  int
	MinClauseLen int
	MaxClauseLen int
	MeanClause   float64
	// ClauseLenHist[k] counts clauses of length k for k < len(hist)-1; the
	// final bucket aggregates longer clauses.
	ClauseLenHist []int
	// VarOccurrences[v] counts literal occurrences of variable v (index 0
	// unused).
	VarOccurrences []int
	// GraphNodes is |V1|+|V2| of the bipartite variable-clause graph, the
	// quantity the paper bounds at 400,000 when filtering instances.
	GraphNodes int
}

// ComputeStats derives statistics for f.
func ComputeStats(f *Formula) Stats {
	const histBuckets = 12
	st := Stats{
		NumVars:        f.NumVars,
		NumClauses:     len(f.Clauses),
		ClauseLenHist:  make([]int, histBuckets),
		VarOccurrences: make([]int, f.NumVars+1),
		GraphNodes:     f.NumVars + len(f.Clauses),
	}
	if len(f.Clauses) == 0 {
		return st
	}
	st.MinClauseLen = len(f.Clauses[0])
	for _, c := range f.Clauses {
		n := len(c)
		st.NumLiterals += n
		if n < st.MinClauseLen {
			st.MinClauseLen = n
		}
		if n > st.MaxClauseLen {
			st.MaxClauseLen = n
		}
		if n >= histBuckets-1 {
			st.ClauseLenHist[histBuckets-1]++
		} else {
			st.ClauseLenHist[n]++
		}
		for _, l := range c {
			st.VarOccurrences[l.Var()]++
		}
	}
	st.MeanClause = float64(st.NumLiterals) / float64(st.NumClauses)
	return st
}

// String renders a short human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf("vars=%d clauses=%d lits=%d meanLen=%.2f nodes=%d",
		s.NumVars, s.NumClauses, s.NumLiterals, s.MeanClause, s.GraphNodes)
}
