// Package cnf provides conjunctive-normal-form formulas: literals, clauses,
// DIMACS parsing and writing, assignment evaluation, and formula statistics.
//
// Literals follow the DIMACS convention: a literal is a nonzero integer
// whose absolute value names a variable (1-based) and whose sign indicates
// polarity. The zero literal is reserved as a terminator in the DIMACS
// format and is never a valid literal value.
package cnf

import (
	"errors"
	"fmt"
	"sort"
)

// Lit is a DIMACS-style literal: +v for the positive literal of variable v,
// -v for its negation. Zero is invalid.
type Lit int32

// Var returns the (1-based) variable index of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// Positive reports whether the literal is the positive polarity of its
// variable.
func (l Lit) Positive() bool { return l > 0 }

// String renders the literal in DIMACS form, e.g. "-3".
func (l Lit) String() string { return fmt.Sprintf("%d", int32(l)) }

// Clause is a disjunction of literals.
type Clause []Lit

// Clone returns a deep copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Normalize sorts the clause by variable (positive before negative within a
// variable) and removes duplicate literals. It reports whether the clause is
// a tautology (contains both polarities of some variable). A tautological
// clause is still returned sorted but should normally be dropped by the
// caller.
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	sort.Slice(c, func(i, j int) bool {
		vi, vj := c[i].Var(), c[j].Var()
		if vi != vj {
			return vi < vj
		}
		return c[i] > c[j] // positive literal first within a variable
	})
	out := c[:0]
	taut := false
	var prev Lit
	for i, l := range c {
		if i > 0 {
			if l == prev {
				continue
			}
			if l == -prev {
				taut = true
			}
		}
		out = append(out, l)
		prev = l
	}
	return out, taut
}

// MaxVar returns the largest variable index referenced by the clause, or 0
// for an empty clause.
func (c Clause) MaxVar() int {
	m := 0
	for _, l := range c {
		if v := l.Var(); v > m {
			m = v
		}
	}
	return m
}

// Formula is a CNF formula: a conjunction of clauses over NumVars variables.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New returns an empty formula over n variables.
func New(n int) *Formula {
	if n < 0 {
		n = 0
	}
	return &Formula{NumVars: n}
}

// ErrBadLit reports an invalid literal passed to AddClause.
var ErrBadLit = errors.New("cnf: invalid literal 0")

// AddClause appends a clause, growing NumVars if the clause references a
// larger variable. It returns an error if any literal is zero.
func (f *Formula) AddClause(lits ...Lit) error {
	c := make(Clause, len(lits))
	for i, l := range lits {
		if l == 0 {
			return ErrBadLit
		}
		c[i] = l
	}
	if mv := c.MaxVar(); mv > f.NumVars {
		f.NumVars = mv
	}
	f.Clauses = append(f.Clauses, c)
	return nil
}

// MustAddClause is AddClause that panics on invalid input; convenient for
// generators whose literals are correct by construction.
func (f *Formula) MustAddClause(lits ...Lit) {
	if err := f.AddClause(lits...); err != nil {
		panic(err)
	}
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// NumLiterals returns the total number of literal occurrences.
func (f *Formula) NumLiterals() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	return g
}

// Validate checks structural invariants: no zero literals and no variable
// index above NumVars.
func (f *Formula) Validate() error {
	for i, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("cnf: clause %d contains literal 0", i)
			}
			if l.Var() > f.NumVars {
				return fmt.Errorf("cnf: clause %d references variable %d > NumVars %d", i, l.Var(), f.NumVars)
			}
		}
	}
	return nil
}

// Simplify removes tautological clauses and duplicate literals in place and
// returns the number of clauses removed.
func (f *Formula) Simplify() int {
	kept := f.Clauses[:0]
	removed := 0
	for _, c := range f.Clauses {
		nc, taut := c.Normalize()
		if taut {
			removed++
			continue
		}
		kept = append(kept, nc)
	}
	f.Clauses = kept
	return removed
}

// Assignment maps variables to truth values. Index 0 is unused; index v
// holds the value of variable v.
type Assignment []bool

// NewAssignment returns an all-false assignment for n variables.
func NewAssignment(n int) Assignment { return make(Assignment, n+1) }

// Value returns the truth value of the literal under the assignment.
func (a Assignment) Value(l Lit) bool {
	v := a[l.Var()]
	if l < 0 {
		return !v
	}
	return v
}

// SatisfiesClause reports whether the assignment satisfies the clause.
func (a Assignment) SatisfiesClause(c Clause) bool {
	for _, l := range c {
		if a.Value(l) {
			return true
		}
	}
	return false
}

// Satisfies reports whether the assignment satisfies every clause of f.
func (a Assignment) Satisfies(f *Formula) bool {
	for _, c := range f.Clauses {
		if !a.SatisfiesClause(c) {
			return false
		}
	}
	return true
}
