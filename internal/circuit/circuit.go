// Package circuit builds combinational logic as CNF via the Tseitin
// transformation, with structural hashing and constant folding. It is the
// substrate for the EDA-flavored instance generators (equivalence-checking
// miters, bounded model checking) and a reusable front end for encoding
// verification problems against the solver.
//
// Wires are cnf literals, so inversion is free (negate the literal). The
// builder exposes gate primitives (And, Or, Xor, Not, Mux), word-level
// helpers (adders, equality, constants), and assertion entry points.
package circuit

import (
	"fmt"

	"neuroselect/internal/cnf"
)

// Wire is a signal in the circuit: a CNF literal.
type Wire = cnf.Lit

// Builder accumulates Tseitin clauses for a circuit.
type Builder struct {
	f     *cnf.Formula
	zero  Wire // lazily created constant-false wire
	cache map[[3]int64]Wire
}

// New returns an empty builder.
func New() *Builder {
	return &Builder{f: cnf.New(0), cache: map[[3]int64]Wire{}}
}

// Formula returns the accumulated CNF. The builder may continue to be used;
// the formula is shared, not copied.
func (b *Builder) Formula() *cnf.Formula { return b.f }

// NumVars returns the number of allocated variables.
func (b *Builder) NumVars() int { return b.f.NumVars }

// Input allocates a fresh primary-input wire.
func (b *Builder) Input() Wire {
	b.f.NumVars++
	return Wire(b.f.NumVars)
}

// Inputs allocates n fresh input wires.
func (b *Builder) Inputs(n int) []Wire {
	ws := make([]Wire, n)
	for i := range ws {
		ws[i] = b.Input()
	}
	return ws
}

// False returns the constant-false wire.
func (b *Builder) False() Wire {
	if b.zero == 0 {
		b.zero = b.Input()
		b.f.MustAddClause(-b.zero)
	}
	return b.zero
}

// True returns the constant-true wire.
func (b *Builder) True() Wire { return -b.False() }

// isConst reports whether w is a known constant and its value.
func (b *Builder) isConst(w Wire) (bool, bool) {
	if b.zero == 0 {
		return false, false
	}
	switch w {
	case b.zero:
		return true, false
	case -b.zero:
		return true, true
	}
	return false, false
}

// Not returns the inversion of w (free under the literal encoding).
func (b *Builder) Not(w Wire) Wire { return -w }

// And returns a wire equal to x ∧ y, with constant folding and structural
// hashing.
func (b *Builder) And(x, y Wire) Wire {
	if k, v := b.isConst(x); k {
		if !v {
			return b.False()
		}
		return y
	}
	if k, v := b.isConst(y); k {
		if !v {
			return b.False()
		}
		return x
	}
	if x == y {
		return x
	}
	if x == -y {
		return b.False()
	}
	if x > y {
		x, y = y, x
	}
	key := [3]int64{'A', int64(x), int64(y)}
	if o, ok := b.cache[key]; ok {
		return o
	}
	o := b.Input()
	b.f.MustAddClause(-o, x)
	b.f.MustAddClause(-o, y)
	b.f.MustAddClause(o, -x, -y)
	b.cache[key] = o
	return o
}

// Or returns x ∨ y.
func (b *Builder) Or(x, y Wire) Wire { return -b.And(-x, -y) }

// Xor returns x ⊕ y.
func (b *Builder) Xor(x, y Wire) Wire {
	if k, v := b.isConst(x); k {
		if v {
			return -y
		}
		return y
	}
	if k, v := b.isConst(y); k {
		if v {
			return -x
		}
		return x
	}
	if x == y {
		return b.False()
	}
	if x == -y {
		return b.True()
	}
	neg := false
	if x < 0 {
		x, neg = -x, !neg
	}
	if y < 0 {
		y, neg = -y, !neg
	}
	if x > y {
		x, y = y, x
	}
	key := [3]int64{'X', int64(x), int64(y)}
	o, ok := b.cache[key]
	if !ok {
		o = b.Input()
		b.f.MustAddClause(-o, x, y)
		b.f.MustAddClause(-o, -x, -y)
		b.f.MustAddClause(o, -x, y)
		b.f.MustAddClause(o, x, -y)
		b.cache[key] = o
	}
	if neg {
		return -o
	}
	return o
}

// Xnor returns ¬(x ⊕ y).
func (b *Builder) Xnor(x, y Wire) Wire { return -b.Xor(x, y) }

// Mux returns (sel ? t : e).
func (b *Builder) Mux(sel, t, e Wire) Wire {
	return b.Or(b.And(sel, t), b.And(-sel, e))
}

// AndN folds And over the wires (true for an empty list).
func (b *Builder) AndN(ws ...Wire) Wire {
	out := b.True()
	for _, w := range ws {
		out = b.And(out, w)
	}
	return out
}

// OrN folds Or over the wires (false for an empty list).
func (b *Builder) OrN(ws ...Wire) Wire {
	out := b.False()
	for _, w := range ws {
		out = b.Or(out, w)
	}
	return out
}

// Assert constrains w to be true in every model.
func (b *Builder) Assert(w Wire) { b.f.MustAddClause(w) }

// Word is a little-endian vector of wires (bit 0 first).
type Word []Wire

// Const returns a word of the given width holding value.
func (b *Builder) Const(value uint64, width int) Word {
	w := make(Word, width)
	for i := 0; i < width; i++ {
		if value&(1<<uint(i)) != 0 {
			w[i] = b.True()
		} else {
			w[i] = b.False()
		}
	}
	return w
}

// InputWord allocates a word of fresh inputs.
func (b *Builder) InputWord(width int) Word {
	return Word(b.Inputs(width))
}

// FullAdder returns (sum, carry) of x + y + cin.
func (b *Builder) FullAdder(x, y, cin Wire) (sum, cout Wire) {
	s1 := b.Xor(x, y)
	sum = b.Xor(s1, cin)
	c1 := b.And(x, y)
	c2 := b.And(s1, cin)
	cout = b.Or(c1, c2)
	return sum, cout
}

// Add returns x + y over equal-width words, discarding the final carry.
func (b *Builder) Add(x, y Word) Word {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: add width mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Word, len(x))
	carry := b.False()
	for i := range x {
		out[i], carry = b.FullAdder(x[i], y[i], carry)
	}
	return out
}

// Equal returns a wire that is true iff the words are bitwise equal.
func (b *Builder) Equal(x, y Word) Wire {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: equal width mismatch %d vs %d", len(x), len(y)))
	}
	out := b.True()
	for i := range x {
		out = b.And(out, b.Xnor(x[i], y[i]))
	}
	return out
}

// AssertEqualConst constrains the word to the constant value.
func (b *Builder) AssertEqualConst(x Word, value uint64) {
	for i, w := range x {
		if value&(1<<uint(i)) != 0 {
			b.Assert(w)
		} else {
			b.Assert(-w)
		}
	}
}

// ClearCache drops the structural-hashing table, forcing subsequent gates
// to instantiate fresh logic — used when duplicating a circuit so the copy
// shares nothing with the original (as an equivalence-checking miter
// requires).
func (b *Builder) ClearCache() {
	b.cache = map[[3]int64]Wire{}
}
