package circuit

import (
	"testing"
	"testing/quick"

	"neuroselect/internal/cnf"
)

// enumerate checks the builder's output wire against a reference boolean
// function over all input assignments by brute force on the CNF.
func enumerate(t *testing.T, b *Builder, inputs []Wire, out Wire, ref func(bits []bool) bool) {
	t.Helper()
	f := b.Formula()
	n := f.NumVars
	if n > 22 {
		t.Fatalf("circuit too large to enumerate: %d vars", n)
	}
	for mask := 0; mask < 1<<uint(len(inputs)); mask++ {
		bits := make([]bool, len(inputs))
		for i := range inputs {
			bits[i] = mask&(1<<uint(i)) != 0
		}
		want := ref(bits)
		// The circuit CNF has a model with these inputs and out == want,
		// and none with out == !want.
		if !cofactorSat(f, inputs, bits, out, want) {
			t.Fatalf("no model with inputs %v and out=%v", bits, want)
		}
		if cofactorSat(f, inputs, bits, out, !want) {
			t.Fatalf("spurious model with inputs %v and out=%v", bits, !want)
		}
	}
}

// cofactorSat brute-forces satisfiability of f under fixed input values
// plus a required output value.
func cofactorSat(f *cnf.Formula, inputs []Wire, bits []bool, out Wire, outVal bool) bool {
	n := f.NumVars
	a := cnf.NewAssignment(n)
	var rec func(v int) bool
	fixed := map[int]bool{}
	for i, w := range inputs {
		val := bits[i]
		if w < 0 {
			val = !val
		}
		fixed[w.Var()] = val
	}
	ov := outVal
	if out < 0 {
		ov = !ov
	}
	if cur, ok := fixed[out.Var()]; ok && cur != ov {
		return false
	}
	fixed[out.Var()] = ov
	rec = func(v int) bool {
		if v > n {
			return a.Satisfies(f)
		}
		if val, ok := fixed[v]; ok {
			a[v] = val
			return rec(v + 1)
		}
		a[v] = false
		if rec(v + 1) {
			return true
		}
		a[v] = true
		return rec(v + 1)
	}
	return rec(1)
}

func TestGatesTruthTables(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder, in []Wire) Wire
		ref   func(bits []bool) bool
	}{
		{"and", func(b *Builder, in []Wire) Wire { return b.And(in[0], in[1]) },
			func(x []bool) bool { return x[0] && x[1] }},
		{"or", func(b *Builder, in []Wire) Wire { return b.Or(in[0], in[1]) },
			func(x []bool) bool { return x[0] || x[1] }},
		{"xor", func(b *Builder, in []Wire) Wire { return b.Xor(in[0], in[1]) },
			func(x []bool) bool { return x[0] != x[1] }},
		{"xnor", func(b *Builder, in []Wire) Wire { return b.Xnor(in[0], in[1]) },
			func(x []bool) bool { return x[0] == x[1] }},
		{"not-and", func(b *Builder, in []Wire) Wire { return b.And(b.Not(in[0]), in[1]) },
			func(x []bool) bool { return !x[0] && x[1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New()
			in := b.Inputs(2)
			out := tc.build(b, in)
			enumerate(t, b, in, out, tc.ref)
		})
	}
}

func TestMux(t *testing.T) {
	b := New()
	in := b.Inputs(3)
	out := b.Mux(in[0], in[1], in[2])
	enumerate(t, b, in, out, func(x []bool) bool {
		if x[0] {
			return x[1]
		}
		return x[2]
	})
}

func TestConstantFolding(t *testing.T) {
	b := New()
	x := b.Input()
	if b.And(x, b.False()) != b.False() {
		t.Fatal("x ∧ 0 must fold to 0")
	}
	if b.And(x, b.True()) != x {
		t.Fatal("x ∧ 1 must fold to x")
	}
	if b.Xor(x, b.False()) != x {
		t.Fatal("x ⊕ 0 must fold to x")
	}
	if b.Xor(x, b.True()) != -x {
		t.Fatal("x ⊕ 1 must fold to ¬x")
	}
	if b.And(x, x) != x || b.And(x, -x) != b.False() {
		t.Fatal("idempotence / contradiction folding")
	}
	if b.Xor(x, x) != b.False() || b.Xor(x, -x) != b.True() {
		t.Fatal("xor self folding")
	}
}

func TestStructuralHashing(t *testing.T) {
	b := New()
	x, y := b.Input(), b.Input()
	before := b.NumVars()
	a1 := b.And(x, y)
	mid := b.NumVars()
	a2 := b.And(y, x) // commuted: must hit the cache
	if a1 != a2 {
		t.Fatal("commuted AND not hashed")
	}
	if b.NumVars() != mid || mid != before+1 {
		t.Fatal("hashing must not allocate new variables")
	}
	x1 := b.Xor(-x, y)
	x2 := b.Xor(x, -y) // both reduce to ¬(x⊕y) modulo output negation
	if x1 != x2 {
		t.Fatal("xor polarity normalization failed")
	}
	b.ClearCache()
	a3 := b.And(x, y)
	if a3 == a1 {
		t.Fatal("ClearCache must force fresh logic")
	}
}

func TestAdderWords(t *testing.T) {
	// Exhaustive 3-bit adder check against integer arithmetic.
	b := New()
	x := b.InputWord(3)
	y := b.InputWord(3)
	sum := b.Add(x, y)
	f := b.Formula()
	for xa := 0; xa < 8; xa++ {
		for ya := 0; ya < 8; ya++ {
			want := (xa + ya) % 8
			inputs := append(append([]Wire{}, x...), y...)
			bits := make([]bool, 6)
			for i := 0; i < 3; i++ {
				bits[i] = xa&(1<<uint(i)) != 0
				bits[3+i] = ya&(1<<uint(i)) != 0
			}
			for bit := 0; bit < 3; bit++ {
				wantBit := want&(1<<uint(bit)) != 0
				if !cofactorSat(f, inputs, bits, sum[bit], wantBit) {
					t.Fatalf("%d+%d: sum bit %d != %v", xa, ya, bit, wantBit)
				}
				if cofactorSat(f, inputs, bits, sum[bit], !wantBit) {
					t.Fatalf("%d+%d: sum bit %d ambiguous", xa, ya, bit)
				}
			}
		}
	}
}

func TestEqualAndConst(t *testing.T) {
	b := New()
	x := b.InputWord(3)
	c := b.Const(5, 3)
	eq := b.Equal(x, c)
	enumerate(t, b, []Wire(x), eq, func(bits []bool) bool {
		v := 0
		for i, bit := range bits {
			if bit {
				v |= 1 << uint(i)
			}
		}
		return v == 5
	})
}

func TestAssertEqualConst(t *testing.T) {
	b := New()
	x := b.InputWord(4)
	b.AssertEqualConst(x, 9)
	f := b.Formula()
	// Only the assignment x=9 can satisfy.
	n := f.NumVars
	count := 0
	a := cnf.NewAssignment(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			count++
			val := 0
			for i, w := range x {
				if a.Value(w) {
					val |= 1 << uint(i)
				}
			}
			if val != 9 {
				t.Fatalf("model encodes %d, want 9", val)
			}
		}
	}
	if count == 0 {
		t.Fatal("assertion unsatisfiable")
	}
}

func TestAndNOrN(t *testing.T) {
	b := New()
	in := b.Inputs(3)
	all := b.AndN(in...)
	any := b.OrN(in...)
	enumerate(t, b, in, all, func(x []bool) bool { return x[0] && x[1] && x[2] })
	enumerate(t, b, in, any, func(x []bool) bool { return x[0] || x[1] || x[2] })
	if b.AndN() != b.True() || b.OrN() != b.False() {
		t.Fatal("empty folds")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	b := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add(b.InputWord(2), b.InputWord(3))
}

func TestXorConsistencyProperty(t *testing.T) {
	// (x⊕y)⊕y == x as circuit identities under folding+hashing: the
	// builder won't simplify through the gate, but the CNF must agree.
	f := func(seed int64) bool {
		b := New()
		in := b.Inputs(2)
		out := b.Xor(b.Xor(in[0], in[1]), in[1])
		form := b.Formula()
		for mask := 0; mask < 4; mask++ {
			bits := []bool{mask&1 != 0, mask&2 != 0}
			if !cofactorSat(form, in, bits, out, bits[0]) {
				return false
			}
			if cofactorSat(form, in, bits, out, !bits[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
