package core

import (
	"testing"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/gen"
	"neuroselect/internal/satgraph"
)

// BenchmarkInference measures the one-time model call the portfolio pays
// per instance (the quantity plotted in Figure 7(b)).
func BenchmarkInference(b *testing.B) {
	m := NewModel(Config{Hidden: 16, HGTLayers: 2, MPLayers: 2, Attention: true, Seed: 1})
	g := satgraph.BuildVCG(gen.RandomKSAT(200, 852, 3, 1).F)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictGraph(g)
	}
}

// BenchmarkTrainStep measures one forward+backward+Adam step.
func BenchmarkTrainStep(b *testing.B) {
	m := NewModel(Config{Hidden: 16, HGTLayers: 2, MPLayers: 2, Attention: true, Seed: 1})
	g := satgraph.BuildVCG(gen.RandomKSAT(200, 852, 3, 1).F)
	samples := []Sample{{Name: "bench", G: g, Label: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(m, samples, TrainConfig{Epochs: 1, LR: 1e-3, Seed: int64(i)})
	}
}

// BenchmarkGraphBuild measures CNF→VCG conversion.
func BenchmarkGraphBuild(b *testing.B) {
	f := gen.RandomKSAT(500, 2130, 3, 2).F
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		satgraph.BuildVCG(f)
	}
}

// BenchmarkBackward isolates the reverse pass.
func BenchmarkBackward(b *testing.B) {
	m := NewModel(Config{Hidden: 16, HGTLayers: 1, MPLayers: 2, Attention: true, Seed: 1})
	g := satgraph.BuildVCG(gen.RandomKSAT(200, 852, 3, 1).F)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := autodiff.NewTape()
		m.Params.Bind(t)
		loss := t.BCEWithLogits(m.Logit(t, g), 1)
		t.Backward(loss)
	}
}
