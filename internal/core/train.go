package core

import (
	"math"
	"math/rand"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/nn"
	"neuroselect/internal/satgraph"
)

func exp(x float64) float64 { return math.Exp(x) }

// Sample is one labeled training instance: the graph of a CNF formula and
// the §5.1 label (1 when the frequency-guided policy reduced propagations
// by at least 2%, else 0).
type Sample struct {
	Name  string
	G     *satgraph.VCG
	Label int
}

// TrainConfig controls the training loop. The paper uses Adam with learning
// rate 1e-4, batch size 1, and 400 epochs; the reproduction defaults to a
// higher rate and fewer epochs because the dataset and model are smaller.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
	// PosWeight scales the loss of label-1 samples, the standard remedy
	// for class imbalance (default 1). Set to (negatives/positives) to
	// equalize the classes' gradient mass.
	PosWeight float64
	// OnEpoch, when non-nil, receives the epoch index and mean training
	// loss after each epoch.
	OnEpoch func(epoch int, loss float64)
}

func (c *TrainConfig) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.LR == 0 {
		c.LR = 1e-2
	}
	if c.PosWeight == 0 {
		c.PosWeight = 1
	}
}

// BalancedPosWeight returns negatives/positives for the sample set, the
// PosWeight that equalizes class gradient mass (1 when a class is empty).
func BalancedPosWeight(samples []Sample) float64 {
	pos := 0
	for _, s := range samples {
		pos += s.Label
	}
	if pos == 0 || pos == len(samples) {
		return 1
	}
	return float64(len(samples)-pos) / float64(pos)
}

// Train fits the model on the samples with Adam and BCE loss (Eq. 11),
// batch size 1 as in the paper. It returns the mean loss of the final
// epoch.
func Train(m *Model, samples []Sample, cfg TrainConfig) float64 {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	last := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			s := samples[idx]
			t := autodiff.NewTape()
			m.Params.Bind(t)
			logit := m.Logit(t, s.G)
			loss := t.BCEWithLogits(logit, float64(s.Label))
			if s.Label == 1 && cfg.PosWeight != 1 {
				loss = t.Scale(loss, cfg.PosWeight)
			}
			t.Backward(loss)
			opt.Step(m.Params)
			total += loss.M.Data[0]
		}
		last = total / float64(len(samples))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, last)
		}
	}
	return last
}

// BalancedAccuracy is the mean of the per-class accuracies (TPR+TNR)/2 at
// the 0.5 threshold — the metric used to select among training restarts,
// since it scores a degenerate all-negative model at 0.5 rather than the
// base rate.
func BalancedAccuracy(m *Model, samples []Sample) float64 {
	var tp, fn, tn, fp int
	for _, s := range samples {
		pred := m.PredictGraph(s.G) >= 0.5
		switch {
		case s.Label == 1 && pred:
			tp++
		case s.Label == 1:
			fn++
		case pred:
			fp++
		default:
			tn++
		}
	}
	tpr, tnr := 0.5, 0.5
	if tp+fn > 0 {
		tpr = float64(tp) / float64(tp+fn)
	}
	if tn+fp > 0 {
		tnr = float64(tn) / float64(tn+fp)
	}
	return (tpr + tnr) / 2
}

// TrainBest trains `restarts` models from different parameter seeds and
// returns the one with the highest balanced accuracy on the training set —
// a cheap, standard guard against optimization runs that collapse to the
// majority class. The returned float is that balanced accuracy.
func TrainBest(cfg Config, samples []Sample, tcfg TrainConfig, restarts int) (*Model, float64) {
	if restarts < 1 {
		restarts = 1
	}
	var best *Model
	bestScore := -1.0
	for r := 0; r < restarts; r++ {
		mcfg := cfg
		mcfg.Seed = cfg.Seed + int64(r)*101
		rcfg := tcfg
		rcfg.Seed = tcfg.Seed + int64(r)*31
		m := NewModel(mcfg)
		Train(m, samples, rcfg)
		if score := BalancedAccuracy(m, samples); score > bestScore {
			best, bestScore = m, score
		}
	}
	return best, bestScore
}

// Accuracy evaluates classification accuracy at the 0.5 threshold.
func Accuracy(m *Model, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		p := m.PredictGraph(s.G)
		if (p >= 0.5) == (s.Label == 1) {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
