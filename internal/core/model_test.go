package core

import (
	"bytes"
	"math"
	"testing"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/satgraph"
)

func tinyGraph() *satgraph.VCG {
	f := cnf.New(3)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-2, 3)
	return satgraph.BuildVCG(f)
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	m := NewModel(Config{Hidden: 8, HGTLayers: 2, MPLayers: 2, Attention: true, Seed: 1})
	g := tinyGraph()
	p1 := m.PredictGraph(g)
	p2 := m.PredictGraph(g)
	if p1 != p2 {
		t.Fatalf("inference not deterministic: %v vs %v", p1, p2)
	}
	if p1 <= 0 || p1 >= 1 {
		t.Fatalf("probability out of range: %v", p1)
	}
}

func TestPredictFormulaMatchesGraph(t *testing.T) {
	m := NewModel(Config{Hidden: 8, Seed: 2})
	f := cnf.New(4)
	f.MustAddClause(1, -2, 3)
	f.MustAddClause(-1, 4)
	if m.Predict(f) != m.PredictGraph(satgraph.BuildVCG(f)) {
		t.Fatal("Predict and PredictGraph disagree")
	}
}

func TestAttentionChangesOutput(t *testing.T) {
	with := NewModel(Config{Hidden: 8, HGTLayers: 1, MPLayers: 1, Attention: true, Seed: 3})
	without := NewModel(Config{Hidden: 8, HGTLayers: 1, MPLayers: 1, Attention: false, Seed: 3})
	if with.Params.Count() <= without.Params.Count() {
		t.Fatal("attention must add parameters")
	}
	g := satgraph.BuildVCG(gen.RandomKSAT(20, 60, 3, 1).F)
	if with.PredictGraph(g) == without.PredictGraph(g) {
		t.Fatal("attention block had no effect on the output")
	}
}

func TestGradientsFlowToAllParameters(t *testing.T) {
	m := NewModel(Config{Hidden: 6, HGTLayers: 2, MPLayers: 2, Attention: true, Seed: 4})
	g := satgraph.BuildVCG(gen.RandomKSAT(15, 50, 3, 2).F)
	tape := autodiff.NewTape()
	m.Params.Bind(tape)
	loss := tape.BCEWithLogits(m.Logit(tape, g), 1)
	tape.Backward(loss)
	if n := m.Params.GradNorm(); n == 0 || math.IsNaN(n) {
		t.Fatalf("gradient norm = %v", n)
	}
}

func TestTrainingReducesLossOnSeparableTask(t *testing.T) {
	var samples []Sample
	for s := int64(0); s < 8; s++ {
		r := gen.RandomKSAT(30, 126, 3, s)
		samples = append(samples, Sample{Name: r.Name, G: satgraph.BuildVCG(r.F), Label: 0})
		c := gen.GraphColoring(8, 18, 3, s)
		samples = append(samples, Sample{Name: c.Name, G: satgraph.BuildVCG(c.F), Label: 1})
	}
	m := NewModel(Config{Hidden: 8, HGTLayers: 1, MPLayers: 2, Attention: true, Seed: 5})
	var first float64
	gotFirst := false
	last := Train(m, samples, TrainConfig{Epochs: 12, LR: 1e-2, Seed: 1, OnEpoch: func(e int, l float64) {
		if !gotFirst {
			first, gotFirst = l, true
		}
	}})
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
	if acc := Accuracy(m, samples); acc < 0.9 {
		t.Fatalf("separable task accuracy = %v", acc)
	}
}

func TestBalancedPosWeight(t *testing.T) {
	samples := []Sample{{Label: 1}, {Label: 0}, {Label: 0}, {Label: 0}}
	if w := BalancedPosWeight(samples); w != 3 {
		t.Fatalf("weight = %v, want 3", w)
	}
	if w := BalancedPosWeight([]Sample{{Label: 0}}); w != 1 {
		t.Fatal("degenerate class must fall back to 1")
	}
	if w := BalancedPosWeight(nil); w != 1 {
		t.Fatal("empty must fall back to 1")
	}
}

func TestSaveLoadPreservesPredictions(t *testing.T) {
	cfg := Config{Hidden: 8, HGTLayers: 1, MPLayers: 1, Attention: true, Seed: 6}
	m := NewModel(cfg)
	g := tinyGraph()
	before := m.PredictGraph(g)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(cfg)
	if m2.PredictGraph(g) == before {
		t.Skip("fresh model coincidentally equal; cannot distinguish load")
	}
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.PredictGraph(g) != before {
		t.Fatal("load did not restore the model")
	}
}

func TestPaperAndDefaultConfigs(t *testing.T) {
	p := PaperConfig()
	if p.Hidden != 32 || p.HGTLayers != 2 || p.MPLayers != 3 || !p.Attention {
		t.Fatalf("paper config drifted: %+v", p)
	}
	d := DefaultConfig()
	if d.Hidden == 0 || !d.Attention {
		t.Fatalf("default config: %+v", d)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := NewModel(Config{Hidden: 4, Seed: 7})
	if Accuracy(m, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestEmptyVariableGraph(t *testing.T) {
	// A formula with clauses only over no variables cannot occur, but an
	// empty formula can: the model must not panic on a 0-variable graph.
	f := cnf.New(0)
	g := satgraph.BuildVCG(f)
	m := NewModel(Config{Hidden: 4, HGTLayers: 1, MPLayers: 1, Attention: true, Seed: 8})
	p := m.PredictGraph(g)
	if math.IsNaN(p) {
		t.Fatalf("prediction on empty graph = %v", p)
	}
}

func TestPaperConfigForwardBackward(t *testing.T) {
	// The full §5.2 configuration (hidden 32, 2 HGT layers, 3 MP layers)
	// must run a complete forward+backward pass.
	m := NewModel(PaperConfig())
	g := satgraph.BuildVCG(gen.RandomKSAT(40, 170, 3, 1).F)
	tape := autodiff.NewTape()
	m.Params.Bind(tape)
	loss := tape.BCEWithLogits(m.Logit(tape, g), 1)
	tape.Backward(loss)
	if n := m.Params.GradNorm(); n == 0 || math.IsNaN(n) {
		t.Fatalf("paper config gradient norm %v", n)
	}
	if m.Params.Count() < 10000 {
		t.Fatalf("paper config should have >10k parameters, got %d", m.Params.Count())
	}
}
