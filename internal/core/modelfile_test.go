package core

import (
	"bytes"
	"strings"
	"testing"

	"neuroselect/internal/gen"
	"neuroselect/internal/satgraph"
)

func TestModelFileRoundTrip(t *testing.T) {
	cfg := Config{Hidden: 8, HGTLayers: 2, MPLayers: 1, Attention: true, Seed: 9}
	m := NewModel(cfg)
	g := satgraph.BuildVCG(gen.RandomKSAT(15, 60, 3, 1).F)
	want := m.PredictGraph(g)

	var buf bytes.Buffer
	if err := m.SaveFile(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != cfg {
		t.Fatalf("config drift: %+v vs %+v", loaded.Cfg, cfg)
	}
	if got := loaded.PredictGraph(g); got != want {
		t.Fatalf("prediction drift: %v vs %v", got, want)
	}
}

func TestModelFileNoAttentionRoundTrip(t *testing.T) {
	cfg := Config{Hidden: 8, HGTLayers: 1, MPLayers: 1, Attention: false, Seed: 2}
	m := NewModel(cfg)
	var buf bytes.Buffer
	if err := m.SaveFile(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.Attention {
		t.Fatal("attention flag lost")
	}
}

func TestLoadModelFileErrors(t *testing.T) {
	if _, err := LoadModelFile(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadModelFile(strings.NewReader(`{"format":"wrong","config":{},"payload":[]}`)); err == nil {
		t.Fatal("wrong format accepted")
	}
}
