package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// modelFile is the self-describing on-disk format: the architecture config
// followed by the raw parameter payload, so loading needs no out-of-band
// knowledge of how the model was trained.
type modelFile struct {
	Format  string          `json:"format"`
	Config  Config          `json:"config"`
	Payload json.RawMessage `json:"payload"`
}

const modelFormat = "neuroselect-model-v1"

// SaveFile serializes the model with its configuration.
func (m *Model) SaveFile(w io.Writer) error {
	var payload bytes.Buffer
	if err := m.Params.Save(&payload); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(modelFile{
		Format:  modelFormat,
		Config:  m.Cfg,
		Payload: json.RawMessage(payload.Bytes()),
	})
}

// LoadModelFile reconstructs a model (architecture and weights) saved with
// SaveFile.
func LoadModelFile(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if mf.Format != modelFormat {
		return nil, fmt.Errorf("core: unsupported model format %q", mf.Format)
	}
	m := NewModel(mf.Config)
	if err := m.Params.Load(bytes.NewReader(mf.Payload)); err != nil {
		return nil, err
	}
	return m, nil
}
