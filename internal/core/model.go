// Package core implements the NeuroSelect model of the paper: a Hybrid
// Graph Transformer (HGT) over the bipartite variable–clause graph that
// combines local message passing (Eq. 6–7) with global linear attention on
// variable nodes (Eq. 8–9), a mean readout over variable embeddings
// (Eq. 10), and an MLP head trained with binary cross-entropy (Eq. 11) to
// select between the default and the propagation-frequency–guided clause
// deletion policies.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/cnf"
	"neuroselect/internal/nn"
	"neuroselect/internal/satgraph"
)

// Config sets the model hyperparameters. The paper's configuration (§5.2)
// is two HGT layers, each with three message-passing layers, hidden
// dimension 32, and global linear attention enabled.
type Config struct {
	Hidden    int   // hidden dimension d (paper: 32)
	HGTLayers int   // number of HGT layers L (paper: 2)
	MPLayers  int   // message-passing layers per HGT layer (paper: 3)
	Attention bool  // enable the global linear-attention block
	Seed      int64 // parameter initialization seed
}

// PaperConfig returns the hyperparameters reported in §5.2.
func PaperConfig() Config {
	return Config{Hidden: 32, HGTLayers: 2, MPLayers: 3, Attention: true, Seed: 1}
}

// DefaultConfig returns a smaller configuration suitable for fast CPU
// training in the reproduction's experiments.
func DefaultConfig() Config {
	return Config{Hidden: 16, HGTLayers: 2, MPLayers: 2, Attention: true, Seed: 1}
}

func (c *Config) fillDefaults() {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.HGTLayers == 0 {
		c.HGTLayers = 2
	}
	if c.MPLayers == 0 {
		c.MPLayers = 2
	}
}

// mpLayer is one Eq. 6–7 message-passing layer: three single-linear MLPs
// for the message, the self-loop, and the update.
type mpLayer struct {
	msg, self, update *nn.Linear
}

// attnLayer holds the Eq. 8 query/key/value projections.
type attnLayer struct {
	q, k, v *nn.Linear
}

// hgtLayer is one hybrid layer: a stack of MPNN sublayers followed by
// linear attention restricted to variable nodes (Eq. 3–5).
type hgtLayer struct {
	mp   []*mpLayer
	attn *attnLayer
}

// Model is the NeuroSelect classifier. Predict/PredictGraph are safe for
// concurrent use; training and Load are not.
type Model struct {
	Cfg    Config
	Params *nn.Params

	layers []*hgtLayer
	head   *nn.MLP

	// inferMu serializes inference: the forward pass binds Params to a
	// fresh tape through shared Params state, so concurrent callers (the
	// parallel sweep engine's cells) must take turns. Inference is a
	// one-time cost per instance, small next to the solve it gates.
	inferMu sync.Mutex
}

// NewModel constructs a model with freshly initialized parameters.
func NewModel(cfg Config) *Model {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := nn.NewParams()
	m := &Model{Cfg: cfg, Params: p}
	d := cfg.Hidden
	for l := 0; l < cfg.HGTLayers; l++ {
		hl := &hgtLayer{}
		for k := 0; k < cfg.MPLayers; k++ {
			prefix := fmt.Sprintf("hgt%d.mp%d", l, k)
			hl.mp = append(hl.mp, &mpLayer{
				msg:    nn.NewLinear(p, prefix+".msg", d, d, rng),
				self:   nn.NewLinear(p, prefix+".self", d, d, rng),
				update: nn.NewLinear(p, prefix+".update", d, d, rng),
			})
		}
		if cfg.Attention {
			prefix := fmt.Sprintf("hgt%d.attn", l)
			hl.attn = &attnLayer{
				q: nn.NewLinear(p, prefix+".q", d, d, rng),
				k: nn.NewLinear(p, prefix+".k", d, d, rng),
				v: nn.NewLinear(p, prefix+".v", d, d, rng),
			}
		}
		m.layers = append(m.layers, hl)
	}
	m.head = nn.NewMLP(p, "head", []int{d, d, 1}, rng)
	return m
}

// Logit runs the forward pass for one graph on the given tape and returns
// the 1×1 classification logit. Params.Bind must already have been called
// on the tape.
func (m *Model) Logit(t *autodiff.Tape, g *satgraph.VCG) *autodiff.Value {
	x := t.Leaf(g.InitialFeatures(m.Cfg.Hidden))
	n := g.NumVars
	for _, hl := range m.layers {
		// Eq. 3: MPNN over the full bipartite graph.
		for _, mp := range hl.mp {
			msg := t.SpMM(g.Adj, mp.msg.Apply(m.Params, t, x)) // Eq. 6
			selfT := mp.self.Apply(m.Params, t, x)
			x = t.ReLU(mp.update.Apply(m.Params, t, t.Add(msg, selfT))) // Eq. 7
		}
		if hl.attn != nil {
			// Eq. 4: linear attention over variable nodes only.
			vars := t.SliceRows(x, 0, n)
			varsOut := m.linearAttention(t, hl.attn, vars)
			clauses := t.SliceRows(x, n, g.NumNodes())
			// Eq. 5: recombine variable and clause features.
			x = t.ConcatRows(varsOut, clauses)
		}
	}
	// Eq. 10: mean readout over variable embeddings.
	hg := t.RowMean(t.SliceRows(x, 0, n))
	return m.head.Apply(m.Params, t, hg)
}

// linearAttention applies Eq. 8–9:
//
//	Q̃ = Q/‖Q‖_F,  K̃ = K/‖K‖_F
//	D = diag(1 + (1/N)·Q̃(K̃ᵀ1))
//	Z_out = D⁻¹ [V + (1/N)·Q̃(K̃ᵀV)]
func (m *Model) linearAttention(t *autodiff.Tape, a *attnLayer, z *autodiff.Value) *autodiff.Value {
	n := float64(z.M.Rows)
	if n == 0 {
		return z
	}
	q := t.FrobNormalize(a.q.Apply(m.Params, t, z))
	k := t.FrobNormalize(a.k.Apply(m.Params, t, z))
	v := a.v.Apply(m.Params, t, z)
	kSum := t.Transpose(t.ColSums(k))                    // K̃ᵀ1, d×1
	d := t.AddScalar(t.Scale(t.MatMul(q, kSum), 1/n), 1) // N×1 diagonal of D
	kv := t.MatMul(t.Transpose(k), v)                    // K̃ᵀV, d×d
	numer := t.Add(v, t.Scale(t.MatMul(q, kv), 1/n))     // V + (1/N)Q̃(K̃ᵀV)
	return t.RowScale(numer, t.Reciprocal(d))            // D⁻¹ · numer
}

// Predict returns the probability that the frequency-guided deletion policy
// (label 1) outperforms the default policy on the formula.
func (m *Model) Predict(f *cnf.Formula) float64 {
	return m.PredictGraph(satgraph.BuildVCG(f))
}

// PredictGraph is Predict for a pre-built graph.
func (m *Model) PredictGraph(g *satgraph.VCG) float64 {
	m.inferMu.Lock()
	defer m.inferMu.Unlock()
	t := autodiff.NewTape()
	m.Params.Bind(t)
	logit := m.Logit(t, g)
	return sigmoid(logit.M.Data[0])
}

// Save serializes the model parameters.
func (m *Model) Save(w io.Writer) error { return m.Params.Save(w) }

// Load restores parameters saved from a model with the identical Config.
func (m *Model) Load(r io.Reader) error { return m.Params.Load(r) }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + exp(-x))
	}
	e := exp(x)
	return e / (1 + e)
}
