// Package portfolio implements the NeuroSelect-Kissat flow of §5.4: a
// one-time model inference selects the clause-deletion policy for an
// instance, then the CDCL solver runs under the chosen policy. Inference
// time is accounted separately so the Figure 7(b) breakdown can be
// reproduced.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
	"neuroselect/internal/satgraph"
	"neuroselect/internal/solver"
)

// NodeCapDefault mirrors the paper's 400,000-node filter: instances whose
// graph exceeds the cap skip inference and use the default policy.
const NodeCapDefault = 400000

// ErrInferenceTimeout is the Choice.Err cause when model inference exceeds
// Selector.InferenceTimeout.
var ErrInferenceTimeout = errors.New("portfolio: model inference deadline exceeded")

// Fallback reasons recorded in Choice.Fallback. An empty string means
// inference ran and its probability drove the selection.
const (
	// FallbackNodeCap: the instance exceeded the node cap, inference was
	// skipped by design.
	FallbackNodeCap = "node-cap"
	// FallbackPanic: inference panicked and was contained.
	FallbackPanic = "inference-panic"
	// FallbackTimeout: inference exceeded InferenceTimeout.
	FallbackTimeout = "inference-timeout"
	// FallbackError: inference failed with an error.
	FallbackError = "inference-error"
)

// Selector chooses a deletion policy per instance using a trained
// NeuroSelect model.
type Selector struct {
	Model *core.Model
	// Threshold is the probability above which the frequency policy is
	// selected (0.5 unless calibrated).
	Threshold float64
	// NodeCap disables inference for graphs with more nodes (the paper's
	// 400,000-node filter). Zero means NodeCapDefault.
	NodeCap int
	// InferenceTimeout bounds the one-time model call; when it is
	// exceeded the selector falls back to the default policy, matching
	// the paper's degrade-to-Kissat behaviour (0 = unbounded).
	InferenceTimeout time.Duration
	// Obs, when non-nil, records every selection decision as metrics:
	// neuroselect_portfolio_choices_total{policy,fallback} and the
	// inference-latency histogram neuroselect_portfolio_inference_seconds.
	Obs *obs.Registry
	// Tracer, when non-nil, receives one EventPolicy per Choose call.
	Tracer obs.Tracer
}

// NewSelector wraps a trained model with the standard threshold and node
// cap.
func NewSelector(m *core.Model) *Selector {
	return &Selector{Model: m, Threshold: 0.5, NodeCap: NodeCapDefault}
}

// Choice records one policy-selection decision.
type Choice struct {
	Policy deletion.Policy
	// Prob is the model's probability for the frequency policy; negative
	// when inference was skipped or failed.
	Prob float64
	// Inference is the wall-clock cost of the one-time model call.
	Inference time.Duration
	// Fallback names why the default policy was chosen without a model
	// probability: FallbackNodeCap, FallbackPanic, FallbackTimeout, or
	// FallbackError. Empty when inference drove the selection.
	Fallback string
	// Err carries the contained inference failure behind a non-empty
	// Fallback (nil for the node-cap skip).
	Err error
}

// Choose runs the one-time inference and returns the selected policy.
// Inference failures never propagate: a panicking, erroring, or
// over-deadline model call degrades to the default (Kissat) policy with
// the fallback reason recorded in the Choice.
func (s *Selector) Choose(f *cnf.Formula) Choice {
	cap := s.NodeCap
	if cap == 0 {
		cap = NodeCapDefault
	}
	if f.NumVars+len(f.Clauses) > cap {
		return s.record(Choice{Policy: deletion.DefaultPolicy{}, Prob: -1, Fallback: FallbackNodeCap})
	}
	start := time.Now()
	prob, err := s.infer(f)
	ch := Choice{Prob: prob, Inference: time.Since(start)}
	if err != nil {
		ch.Policy = deletion.DefaultPolicy{}
		ch.Prob = -1
		ch.Err = err
		switch {
		case errors.Is(err, ErrInferenceTimeout):
			ch.Fallback = FallbackTimeout
		case errors.Is(err, errInferencePanic):
			ch.Fallback = FallbackPanic
		default:
			ch.Fallback = FallbackError
		}
		return s.record(ch)
	}
	if prob >= s.Threshold {
		ch.Policy = deletion.FrequencyPolicy{}
	} else {
		ch.Policy = deletion.DefaultPolicy{}
	}
	return s.record(ch)
}

// record publishes one selection decision to the selector's registry and
// tracer (both optional) and returns the choice unchanged.
func (s *Selector) record(ch Choice) Choice {
	if s.Obs != nil {
		fb := ch.Fallback
		if fb == "" {
			fb = "none"
		}
		s.Obs.Counter("neuroselect_portfolio_choices_total",
			"Policy-selection decisions by chosen policy and fallback reason.",
			obs.Labels{"policy": ch.Policy.Name(), "fallback": fb}).Inc()
		s.Obs.Histogram("neuroselect_portfolio_inference_seconds",
			"Wall-clock latency of the one-time model inference.",
			nil, nil).Observe(ch.Inference.Seconds())
	}
	if s.Tracer != nil {
		s.Tracer.Trace(&obs.Event{
			Type:        obs.EventPolicy,
			Policy:      ch.Policy.Name(),
			Prob:        ch.Prob,
			Fallback:    ch.Fallback,
			InferenceNS: ch.Inference.Nanoseconds(),
		})
	}
	return ch
}

// errInferencePanic marks inference failures that originated as panics.
var errInferencePanic = errors.New("portfolio: model inference panicked")

// infer runs the model call with panic containment and, when
// InferenceTimeout is set, a wall-clock bound. On timeout the abandoned
// inference goroutine finishes (and is discarded) in the background — the
// model call is pure CPU with no cancellation points, so the bound is on
// the selector's latency, not the model's.
func (s *Selector) infer(f *cnf.Formula) (float64, error) {
	run := func() (prob float64, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: %v", errInferencePanic, r)
			}
		}()
		if err := faultpoint.Hit(faultpoint.ModelInference); err != nil {
			return 0, err
		}
		g := satgraph.BuildVCG(f)
		return s.Model.PredictGraph(g), nil
	}
	if s.InferenceTimeout <= 0 {
		return run()
	}
	type outcome struct {
		prob float64
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		p, err := run()
		ch <- outcome{p, err}
	}()
	timer := time.NewTimer(s.InferenceTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.prob, o.err
	case <-timer.C:
		return 0, ErrInferenceTimeout
	}
}

// Report is the outcome of one adaptive solve.
type Report struct {
	Choice    Choice
	Result    solver.Result
	SolveTime time.Duration
}

// Solve chooses a policy and solves under it with the experiment-standard
// options and the given conflict budget.
func (s *Selector) Solve(f *cnf.Formula, maxConflicts int64) (Report, error) {
	return s.SolveContext(context.Background(), f, maxConflicts)
}

// SolveContext is Solve under a context: cancellation and deadlines abort
// the underlying search with Unknown (see solver.SolveContext). A
// contained solver panic is returned as both an error and an
// error-carrying Unknown report, so callers can either fail or record the
// instance and continue.
func (s *Selector) SolveContext(ctx context.Context, f *cnf.Formula, maxConflicts int64) (Report, error) {
	ch := s.Choose(f)
	start := time.Now()
	res, err := solver.SolveContext(ctx, f, dataset.SolveOptions(ch.Policy, maxConflicts))
	rep := Report{Choice: ch, Result: res, SolveTime: time.Since(start)}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// CalibrateThreshold grid-searches the decision threshold that maximizes
// total propagation savings on labeled data — the portfolio analogue of
// picking an operating point on the precision/recall curve. When no
// threshold yields positive savings it returns a threshold above 1
// ("never select"), so an uninformative model degrades gracefully to
// exactly Kissat's default behaviour.
func CalibrateThreshold(m *core.Model, items []dataset.Labeled) float64 {
	return CalibrateThresholdFunc(m.Predict, items)
}

// CalibrateThresholdFunc is CalibrateThreshold for an arbitrary probability
// predictor.
func CalibrateThresholdFunc(predict func(*cnf.Formula) float64, items []dataset.Labeled) float64 {
	type scored struct {
		prob float64
		gain int64 // propagations saved by choosing the frequency policy
	}
	var xs []scored
	for _, it := range items {
		xs = append(xs, scored{prob: predict(it.Inst.F), gain: it.PropsDefault - it.PropsFrequency})
	}
	best, bestGain := 1.1, int64(0) // threshold 1.1 ≡ never select
	for _, th := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		total := int64(0)
		for _, x := range xs {
			if x.prob >= th {
				total += x.gain
			}
		}
		if total > bestGain {
			best, bestGain = th, total
		}
	}
	return best
}
