// Package portfolio implements the NeuroSelect-Kissat flow of §5.4: a
// one-time model inference selects the clause-deletion policy for an
// instance, then the CDCL solver runs under the chosen policy. Inference
// time is accounted separately so the Figure 7(b) breakdown can be
// reproduced.
package portfolio

import (
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/satgraph"
	"neuroselect/internal/solver"
)

// NodeCapDefault mirrors the paper's 400,000-node filter: instances whose
// graph exceeds the cap skip inference and use the default policy.
const NodeCapDefault = 400000

// Selector chooses a deletion policy per instance using a trained
// NeuroSelect model.
type Selector struct {
	Model *core.Model
	// Threshold is the probability above which the frequency policy is
	// selected (0.5 unless calibrated).
	Threshold float64
	// NodeCap disables inference for graphs with more nodes (the paper's
	// 400,000-node filter). Zero means NodeCapDefault.
	NodeCap int
}

// NewSelector wraps a trained model with the standard threshold and node
// cap.
func NewSelector(m *core.Model) *Selector {
	return &Selector{Model: m, Threshold: 0.5, NodeCap: NodeCapDefault}
}

// Choice records one policy-selection decision.
type Choice struct {
	Policy deletion.Policy
	// Prob is the model's probability for the frequency policy; negative
	// when inference was skipped by the node cap.
	Prob float64
	// Inference is the wall-clock cost of the one-time model call.
	Inference time.Duration
}

// Choose runs the one-time inference and returns the selected policy.
func (s *Selector) Choose(f *cnf.Formula) Choice {
	cap := s.NodeCap
	if cap == 0 {
		cap = NodeCapDefault
	}
	if f.NumVars+len(f.Clauses) > cap {
		return Choice{Policy: deletion.DefaultPolicy{}, Prob: -1}
	}
	start := time.Now()
	g := satgraph.BuildVCG(f)
	prob := s.Model.PredictGraph(g)
	ch := Choice{Prob: prob, Inference: time.Since(start)}
	if prob >= s.Threshold {
		ch.Policy = deletion.FrequencyPolicy{}
	} else {
		ch.Policy = deletion.DefaultPolicy{}
	}
	return ch
}

// Report is the outcome of one adaptive solve.
type Report struct {
	Choice    Choice
	Result    solver.Result
	SolveTime time.Duration
}

// Solve chooses a policy and solves under it with the experiment-standard
// options and the given conflict budget.
func (s *Selector) Solve(f *cnf.Formula, maxConflicts int64) (Report, error) {
	ch := s.Choose(f)
	start := time.Now()
	res, err := solver.Solve(f, dataset.SolveOptions(ch.Policy, maxConflicts))
	if err != nil {
		return Report{}, err
	}
	return Report{Choice: ch, Result: res, SolveTime: time.Since(start)}, nil
}

// CalibrateThreshold grid-searches the decision threshold that maximizes
// total propagation savings on labeled data — the portfolio analogue of
// picking an operating point on the precision/recall curve. When no
// threshold yields positive savings it returns a threshold above 1
// ("never select"), so an uninformative model degrades gracefully to
// exactly Kissat's default behaviour.
func CalibrateThreshold(m *core.Model, items []dataset.Labeled) float64 {
	return CalibrateThresholdFunc(m.Predict, items)
}

// CalibrateThresholdFunc is CalibrateThreshold for an arbitrary probability
// predictor.
func CalibrateThresholdFunc(predict func(*cnf.Formula) float64, items []dataset.Labeled) float64 {
	type scored struct {
		prob float64
		gain int64 // propagations saved by choosing the frequency policy
	}
	var xs []scored
	for _, it := range items {
		xs = append(xs, scored{prob: predict(it.Inst.F), gain: it.PropsDefault - it.PropsFrequency})
	}
	best, bestGain := 1.1, int64(0) // threshold 1.1 ≡ never select
	for _, th := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		total := int64(0)
		for _, x := range xs {
			if x.prob >= th {
				total += x.gain
			}
		}
		if total > bestGain {
			best, bestGain = th, total
		}
	}
	return best
}
