package portfolio

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// enumerate exhaustively decides a small formula — the ground-truth oracle
// for the portfolio differential suite. (Mirrors the solver package's
// test-local enumerator, which is not exported.)
func enumerate(f *cnf.Formula) bool {
	n := f.NumVars
	if n > 20 {
		panic("enumerate: formula too large for the oracle suite")
	}
	a := cnf.NewAssignment(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			return true
		}
	}
	return false
}

// oracleInstances returns one small (≤20 variables) instance per generator
// family — the same families the solver's oracle suite covers.
func oracleInstances() []gen.Instance {
	var out []gen.Instance
	for seed := int64(1); seed <= 3; seed++ {
		out = append(out,
			gen.RandomKSAT(12, 50, 3, seed),
			gen.CommunityKSAT(12, 50, 3, 2, 0.85, seed),
			gen.PowerLawKSAT(12, 52, 3, 0.9, seed),
			gen.ParityChain(8, 5, 3, true, seed),
			gen.ParityChain(8, 5, 3, false, seed),
			gen.Tseitin(6, 3, true, seed),
			gen.Tseitin(6, 3, false, seed),
			gen.GraphColoring(5, 10, 3, seed),
			gen.SubsetSum(2, 9, true, seed),
			gen.SubsetSum(2, 9, false, seed),
			gen.Miter(3, 4, false, seed),
			gen.Miter(3, 4, true, seed),
		)
	}
	out = append(out,
		gen.Pigeonhole(3),
		gen.NQueens(4),
		gen.BMCCounter(3, 2, 7),
	)
	return out
}

// TestPortfolioOracleDifferential cross-checks the N-worker portfolio —
// free-running, clause exchange on — against exhaustive enumeration on
// every generator family, for N in {2, 4, 8}: the portfolio verdict must
// match the oracle and the generator's by-construction expectation, and
// every SAT model must actually satisfy its formula. Run under -race by
// scripts/check.sh, this is also the exchange path's concurrency test.
func TestPortfolioOracleDifferential(t *testing.T) {
	for _, inst := range oracleInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			if inst.F.NumVars > 20 {
				t.Fatalf("oracle instance too large: %d vars", inst.F.NumVars)
			}
			oracleSat := enumerate(inst.F)
			switch inst.Expected {
			case gen.ExpectSat:
				if !oracleSat {
					t.Fatal("generator promises SAT but enumeration finds no model")
				}
			case gen.ExpectUnsat:
				if oracleSat {
					t.Fatal("generator promises UNSAT but enumeration finds a model")
				}
			}
			for _, n := range []int{2, 4, 8} {
				rep, err := SolveParallel(inst.F, Config{Workers: n})
				if err != nil {
					t.Fatalf("workers=%d: %v", n, err)
				}
				switch rep.Result.Status {
				case solver.Sat:
					if !oracleSat {
						t.Fatalf("workers=%d: portfolio says SAT, oracle says UNSAT", n)
					}
					if !rep.Result.Model.Satisfies(inst.F) {
						t.Fatalf("workers=%d: reported model does not satisfy the formula", n)
					}
				case solver.Unsat:
					if oracleSat {
						t.Fatalf("workers=%d: portfolio says UNSAT, oracle says SAT", n)
					}
				default:
					t.Fatalf("workers=%d: portfolio undecided on an unbounded solve", n)
				}
			}
		})
	}
}
