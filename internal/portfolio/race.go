package portfolio

import (
	"sync"
	"sync/atomic"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/solver"
)

// RaceReport is the outcome of a parallel two-policy race.
type RaceReport struct {
	Result solver.Result
	// Winner names the policy whose solver finished first.
	Winner string
	// WallTime is the race's wall-clock duration.
	WallTime time.Duration
}

// Race solves the formula under the default and the frequency-guided
// deletion policies in parallel and returns the first finisher, stopping
// the loser. This realizes the virtual-best-solver bound at the cost of 2×
// CPU — the hardware-hungry alternative to NeuroSelect's learned one-shot
// selection, included as a baseline extension.
func Race(f *cnf.Formula, maxConflicts int64) (RaceReport, error) {
	type outcome struct {
		res    solver.Result
		err    error
		policy string
	}
	var stop atomic.Bool
	results := make(chan outcome, 2)
	start := time.Now()
	var wg sync.WaitGroup
	for _, p := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		wg.Add(1)
		go func(p deletion.Policy) {
			defer wg.Done()
			opts := dataset.SolveOptions(p, maxConflicts)
			opts.Interrupt = stop.Load
			res, err := solver.Solve(f, opts)
			results <- outcome{res: res, err: err, policy: p.Name()}
		}(p)
	}
	var first outcome
	got := false
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			stop.Store(true)
			wg.Wait()
			return RaceReport{}, o.err
		}
		// Accept the first decisive answer; if the first finisher was
		// interrupted or out of budget, fall back to the second.
		if !got && (o.res.Status != solver.Unknown || i == 1) {
			first = o
			got = true
			stop.Store(true)
		}
	}
	wg.Wait()
	return RaceReport{
		Result:   first.res,
		Winner:   first.policy,
		WallTime: time.Since(start),
	}, nil
}
