package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/solver"
)

// RaceReport is the outcome of a parallel two-policy race.
type RaceReport struct {
	Result solver.Result
	// Winner names the policy whose solver finished first.
	Winner string
	// WallTime is the race's wall-clock duration.
	WallTime time.Duration
	// Failures lists workers whose solve failed (panicked or errored);
	// a race with at least one surviving worker still reports a result.
	Failures []string
}

// Race solves the formula under the default and the frequency-guided
// deletion policies in parallel and returns the first finisher, stopping
// the loser. This realizes the virtual-best-solver bound at the cost of 2×
// CPU — the hardware-hungry alternative to NeuroSelect's learned one-shot
// selection, included as a baseline extension.
func Race(f *cnf.Formula, maxConflicts int64) (RaceReport, error) {
	return RaceContext(context.Background(), f, maxConflicts)
}

// RaceContext is Race under a context. Cancellation stops both workers
// within a bounded number of propagations. Each worker runs with panic
// recovery: a crashing worker is recorded in RaceReport.Failures and the
// race continues on the survivor; only when every worker fails does
// RaceContext return an error. The race never leaks goroutines — it
// returns only after both workers have delivered their outcome.
func RaceContext(ctx context.Context, f *cnf.Formula, maxConflicts int64) (RaceReport, error) {
	type outcome struct {
		res    solver.Result
		err    error
		policy string
	}
	var stop atomic.Bool
	results := make(chan outcome, 2)
	start := time.Now()
	for _, p := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		go func(p deletion.Policy) {
			o := outcome{policy: p.Name()}
			defer func() {
				if r := recover(); r != nil {
					o.err = fmt.Errorf("portfolio: race worker %s: panic: %v", o.policy, r)
				}
				results <- o
			}()
			if err := faultpoint.Hit(faultpoint.RaceWorker); err != nil {
				o.err = fmt.Errorf("portfolio: race worker %s: %w", o.policy, err)
				return
			}
			opts := dataset.SolveOptions(p, maxConflicts)
			opts.Interrupt = stop.Load
			o.res, o.err = solver.SolveContext(ctx, f, opts)
		}(p)
	}
	// Drain both workers unconditionally: this is the no-leak guarantee,
	// and stride polling inside BCP bounds how long the loser can lag.
	outs := make([]outcome, 0, 2)
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err == nil && o.res.Status != solver.Unknown {
			stop.Store(true) // decisive answer: interrupt the other worker
		}
		outs = append(outs, o)
	}
	rep := RaceReport{WallTime: time.Since(start)}
	var chosen *outcome
	var failed []error
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", o.policy, o.err))
			failed = append(failed, o.err)
			continue
		}
		// Prefer the first decisive finisher; an Unknown first finisher is
		// displaced by a decisive second.
		if chosen == nil || (chosen.res.Status == solver.Unknown && o.res.Status != solver.Unknown) {
			chosen = o
		}
	}
	if chosen == nil {
		return rep, fmt.Errorf("portfolio: race: all workers failed: %w", errors.Join(failed...))
	}
	rep.Result = chosen.res
	rep.Winner = chosen.policy
	return rep, nil
}

// RaceDeterministic is the reproducible analogue of RaceContext: the same
// default-vs-frequency race, run as a 2-worker deterministic portfolio
// with clause exchange disabled (preserving the independent virtual-best
// semantics) and undiversified experiment-standard options. osWorkers sets
// only the OS parallelism; the outcome — winner, result, stats — is a pure
// function of the formula and budget, byte-identical for any worker count.
// WallTime is pseudo-time: the winner's propagation count at 1 propagation
// ≡ 1µs, matching the experiment harness's deterministic clock.
func RaceDeterministic(ctx context.Context, f *cnf.Formula, maxConflicts int64, osWorkers int) (RaceReport, error) {
	par, err := SolveParallelContext(ctx, f, Config{
		Deterministic: true,
		Workers:       osWorkers,
		Ensemble:      2,
		NoExchange:    true,
		NoDiversify:   true,
		MaxConflicts:  maxConflicts,
	})
	rep := RaceReport{Result: par.Result, WallTime: par.PseudoTime, Failures: par.Failures}
	if err != nil {
		return rep, err
	}
	if par.WinnerIndex >= 0 {
		rep.Winner = [2]string{"default", "frequency"}[par.WinnerIndex]
	}
	return rep, nil
}
