package portfolio

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"neuroselect/internal/faultpoint"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (or a small tolerance above it, for runtime bookkeeping
// goroutines), failing after a timeout. Worker goroutines send their
// outcome before exiting, so a short settle window is expected.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRaceNoGoroutineLeak(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	baseline := runtime.NumGoroutine()

	// Decisive-answer exit.
	if _, err := Race(gen.NQueens(6).F, 100000); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, baseline)

	// Both-budgets-exhausted exit.
	rep, err := Race(gen.Pigeonhole(9).F, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unknown {
		t.Fatalf("tiny budget should exhaust, got %v", rep.Result.Status)
	}
	waitForGoroutines(t, baseline)

	// Error exit: both workers fail at the fault point.
	faultpoint.Arm(faultpoint.RaceWorker, faultpoint.Fault{Err: errors.New("worker down")})
	if _, err := Race(gen.NQueens(6).F, 100000); err == nil {
		t.Fatal("all-workers-failed race must return an error")
	}
	faultpoint.Reset()
	waitForGoroutines(t, baseline)

	// Cancellation exit.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan RaceReport, 1)
	go func() {
		r, _ := RaceContext(ctx, gen.Pigeonhole(10).F, 0) // effectively unbounded
		done <- r
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.Result.Status != solver.Unknown {
			t.Fatalf("canceled race must be Unknown, got %v", r.Result.Status)
		}
		if !errors.Is(r.Result.Stop, solver.ErrCanceled) {
			t.Fatalf("stop cause = %v, want ErrCanceled", r.Result.Stop)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled race did not return: cancellation latency unbounded")
	}
	waitForGoroutines(t, baseline)
}

func TestRaceWorkerPanicContained(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.RaceWorker, faultpoint.Fault{PanicValue: "worker crashed", Times: 1})
	inst := gen.NQueens(6)
	rep, err := Race(inst.F, 100000)
	if err != nil {
		t.Fatalf("race with one surviving worker must not fail: %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("want 1 recorded worker failure, got %v", rep.Failures)
	}
	if rep.Result.Status != solver.Sat || !rep.Result.Model.Satisfies(inst.F) {
		t.Fatalf("survivor must decide the instance, got %v", rep.Result.Status)
	}
}

func TestRaceAllWorkersPanicIsError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.RaceWorker, faultpoint.Fault{PanicValue: "worker crashed"})
	rep, err := Race(gen.NQueens(6).F, 100000)
	if err == nil {
		t.Fatal("race with no surviving worker must return an error")
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("want both failures recorded, got %v", rep.Failures)
	}
}

func TestChooseFallsBackOnInferencePanic(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.ModelInference, faultpoint.Fault{PanicValue: "NaN in attention weights"})
	sel := NewSelector(freshModel())
	sel.Threshold = 0 // would always pick frequency if inference ran
	ch := sel.Choose(gen.RandomKSAT(20, 80, 3, 1).F)
	if ch.Policy.Name() != "default" {
		t.Fatalf("panicking inference must fall back to default, got %s", ch.Policy.Name())
	}
	if ch.Fallback != FallbackPanic {
		t.Fatalf("fallback reason = %q, want %q", ch.Fallback, FallbackPanic)
	}
	if ch.Err == nil || ch.Prob >= 0 {
		t.Fatalf("fallback choice must carry the error and a negative prob: err=%v prob=%v", ch.Err, ch.Prob)
	}
}

func TestSolveCompletesDespiteInferencePanic(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.ModelInference, faultpoint.Fault{PanicValue: "model file corrupted"})
	sel := NewSelector(freshModel())
	inst := gen.NQueens(6)
	rep, err := sel.Solve(inst.F, 100000)
	if err != nil {
		t.Fatalf("Solve must complete normally under inference fallback: %v", err)
	}
	if rep.Choice.Fallback != FallbackPanic {
		t.Fatalf("fallback = %q, want %q", rep.Choice.Fallback, FallbackPanic)
	}
	if rep.Result.Status != solver.Sat || !rep.Result.Model.Satisfies(inst.F) {
		t.Fatalf("fallback solve must still decide the instance, got %v", rep.Result.Status)
	}
}

func TestChooseFallsBackOnInferenceDeadline(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.ModelInference, faultpoint.Fault{Delay: 200 * time.Millisecond})
	sel := NewSelector(freshModel())
	sel.Threshold = 0
	sel.InferenceTimeout = 10 * time.Millisecond
	start := time.Now()
	ch := sel.Choose(gen.RandomKSAT(20, 80, 3, 2).F)
	if ch.Policy.Name() != "default" {
		t.Fatalf("over-deadline inference must fall back to default, got %s", ch.Policy.Name())
	}
	if ch.Fallback != FallbackTimeout {
		t.Fatalf("fallback reason = %q, want %q", ch.Fallback, FallbackTimeout)
	}
	if !errors.Is(ch.Err, ErrInferenceTimeout) {
		t.Fatalf("err = %v, want ErrInferenceTimeout", ch.Err)
	}
	if d := time.Since(start); d >= 200*time.Millisecond {
		t.Fatalf("selector latency %v was not bounded by the inference deadline", d)
	}
	// Let the abandoned inference goroutine drain before the next test.
	time.Sleep(250 * time.Millisecond)
}

func TestChooseFallsBackOnInferenceError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.ModelInference, faultpoint.Fault{Err: errors.New("weights unavailable")})
	sel := NewSelector(freshModel())
	ch := sel.Choose(gen.RandomKSAT(20, 80, 3, 3).F)
	if ch.Fallback != FallbackError || ch.Policy.Name() != "default" {
		t.Fatalf("erroring inference must fall back: fallback=%q policy=%s", ch.Fallback, ch.Policy.Name())
	}
}

func TestSelectorSolveContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sel := NewSelector(freshModel())
	rep, err := sel.SolveContext(ctx, gen.Pigeonhole(9).F, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unknown || !errors.Is(rep.Result.Stop, solver.ErrCanceled) {
		t.Fatalf("status=%v stop=%v, want Unknown/ErrCanceled", rep.Result.Status, rep.Result.Stop)
	}
}
