package portfolio

import (
	"fmt"
	"runtime"
	"testing"

	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// renderReport canonicalizes everything a deterministic portfolio solve
// promises to reproduce: answer, winner, rounds, full Stats, the
// propagation-frequency hash, the pseudo-time, and every worker's exchange
// ledger (including the exported-clause digest). Wall-clock time is the
// one field deliberately excluded.
func renderReport(rep ParallelReport) string {
	return fmt.Sprintf("status=%s winner=%q idx=%d rounds=%d pseudo=%s stats=%+v pf=%016x ex=%+v fail=%v",
		rep.Result.Status, rep.Winner, rep.WinnerIndex, rep.Rounds, rep.PseudoTime,
		rep.Result.Stats, rep.PropFreqHash, rep.Exchange, rep.Failures)
}

// goldenPortfolioInstances is the fixed-seed set the determinism suite
// pins: UNSAT, SAT, and random instances drawn from the solver's golden
// families.
func goldenPortfolioInstances() []gen.Instance {
	return []gen.Instance{
		gen.Pigeonhole(7),
		gen.RandomKSAT(100, 426, 3, 11),
		gen.NQueens(8),
		gen.Tseitin(16, 3, false, 4),
	}
}

// TestDeterministicByteIdenticalAcrossWorkerCounts is the determinism
// golden test: with Deterministic set, the portfolio's answer, Stats,
// propFreq hash, and shared-clause digests are byte-identical for worker
// counts 1, 2, 4, and NumCPU, and across repeated runs.
func TestDeterministicByteIdenticalAcrossWorkerCounts(t *testing.T) {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	for _, inst := range goldenPortfolioInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			var want string
			for _, w := range counts {
				rep, err := SolveParallel(inst.F, Config{Deterministic: true, Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if rep.Result.Status == solver.Unknown {
					t.Fatalf("workers=%d: golden instance undecided", w)
				}
				if rep.Result.Status == solver.Sat && !rep.Result.Model.Satisfies(inst.F) {
					t.Fatalf("workers=%d: model does not satisfy formula", w)
				}
				got := renderReport(rep)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("workers=%d diverged:\n got %s\nwant %s", w, got, want)
				}
			}
			// Repeated run at a fixed worker count: same bytes again.
			rep, err := SolveParallel(inst.F, Config{Deterministic: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got := renderReport(rep); got != want {
				t.Fatalf("repeat run diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestDeterministicExchangeIsNonVacuous guards the golden test against
// testing an exchange that never fires: on php-7 the ensemble must
// actually export, receive, and install foreign clauses.
func TestDeterministicExchangeIsNonVacuous(t *testing.T) {
	rep, err := SolveParallel(gen.Pigeonhole(7).F, Config{Deterministic: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var exported, received int64
	for _, ex := range rep.Exchange {
		exported += ex.Exported
		received += ex.Imported
	}
	if exported == 0 {
		t.Fatal("no worker exported a clause: the exchange filter is vacuous")
	}
	if received == 0 {
		t.Fatal("no worker received a clause: the exchange wiring is vacuous")
	}
	if rep.Result.Stats.Imported == 0 {
		t.Fatal("the winner installed no foreign clause")
	}
	if rep.Rounds == 0 {
		t.Fatal("the solve finished without a single exchange round")
	}
}

// TestFreeRunningPortfolioSolves exercises the throughput mode: N workers
// with exchange on decide SAT and UNSAT instances and the report carries a
// coherent winner.
func TestFreeRunningPortfolioSolves(t *testing.T) {
	for _, inst := range []gen.Instance{gen.NQueens(8), gen.Pigeonhole(7)} {
		rep, err := SolveParallel(inst.F, Config{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if rep.Result.Status == solver.Unknown {
			t.Fatalf("%s: undecided", inst.Name)
		}
		if inst.Expected == gen.ExpectUnsat && rep.Result.Status != solver.Unsat {
			t.Fatalf("%s: got %v, want UNSAT", inst.Name, rep.Result.Status)
		}
		if rep.Result.Status == solver.Sat && !rep.Result.Model.Satisfies(inst.F) {
			t.Fatalf("%s: model does not satisfy formula", inst.Name)
		}
		if rep.WinnerIndex < 0 || rep.WinnerIndex >= rep.Workers || rep.Winner == "" {
			t.Fatalf("%s: incoherent winner %q/%d", inst.Name, rep.Winner, rep.WinnerIndex)
		}
	}
}

// TestTinyQueueDropsNeverBlock pins the bounded-queue contract: with a
// 1-slot queue the portfolio still terminates (export never blocks) and
// the overflow is visible in the Dropped counters.
func TestTinyQueueDropsNeverBlock(t *testing.T) {
	rep, err := SolveParallel(gen.Pigeonhole(8).F, Config{Workers: 4, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unsat {
		t.Fatalf("got %v, want UNSAT", rep.Result.Status)
	}
	var dropped int64
	for _, ex := range rep.Exchange {
		dropped += ex.Dropped
	}
	if dropped == 0 {
		t.Fatal("a 1-slot queue on php-8 must overflow; Dropped stayed 0")
	}
}

// TestRaceDeterministicReproduces pins the deterministic race baseline:
// byte-identical winner, result, and pseudo-time for any OS worker count,
// with the same answer RaceContext would find.
func TestRaceDeterministicReproduces(t *testing.T) {
	inst := gen.Pigeonhole(7)
	var want string
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		rep, err := RaceDeterministic(t.Context(), inst.F, 0, w)
		if err != nil {
			t.Fatalf("osWorkers=%d: %v", w, err)
		}
		if rep.Result.Status != solver.Unsat {
			t.Fatalf("osWorkers=%d: got %v, want UNSAT", w, rep.Result.Status)
		}
		if rep.Winner != "default" && rep.Winner != "frequency" {
			t.Fatalf("osWorkers=%d: winner %q is not a policy name", w, rep.Winner)
		}
		got := fmt.Sprintf("winner=%s wall=%s stats=%+v", rep.Winner, rep.WallTime, rep.Result.Stats)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("osWorkers=%d diverged:\n got %s\nwant %s", w, got, want)
		}
	}
}

// TestSelectorDrivesWorkerZero checks that a selector-equipped portfolio
// consults the model exactly once and worker 0 carries its choice.
func TestSelectorDrivesWorkerZero(t *testing.T) {
	sel := NewSelector(freshModel())
	sel.Threshold = 0 // always pick frequency if inference runs
	rep, err := SolveParallel(gen.NQueens(6).F, Config{Workers: 2, Selector: sel, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Exchange[0].Config; got != "w0:frequency:r128" {
		t.Fatalf("worker 0 config = %q, want the selector-chosen frequency policy", got)
	}
}
