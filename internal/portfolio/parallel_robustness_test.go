package portfolio

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"neuroselect/internal/faultpoint"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// TestParallelNoGoroutineLeak drives the free-running portfolio through
// every exit path — decisive answer, exhausted budgets, all workers
// failed, cancellation — and checks the goroutine count returns to
// baseline after each. Combined with -race (scripts/check.sh runs this
// package under the detector) this is the drain guarantee: export queues
// never block an exiting worker and the first winner's interrupt reaches
// every loser.
func TestParallelNoGoroutineLeak(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	baseline := runtime.NumGoroutine()

	// Decisive-answer exit: the winner interrupts the losers.
	rep, err := SolveParallel(gen.NQueens(8).F, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Sat {
		t.Fatalf("got %v, want SAT", rep.Result.Status)
	}
	waitForGoroutines(t, baseline)

	// All-budgets-exhausted exit.
	rep, err = SolveParallel(gen.Pigeonhole(9).F, Config{Workers: 4, MaxConflicts: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unknown || rep.WinnerIndex != -1 {
		t.Fatalf("tiny budget should exhaust undecided, got %v winner=%d",
			rep.Result.Status, rep.WinnerIndex)
	}
	waitForGoroutines(t, baseline)

	// Error exit: every worker fails at the fault point.
	faultpoint.Arm(faultpoint.PortfolioWorker, faultpoint.Fault{Err: errors.New("worker down")})
	if _, err := SolveParallel(gen.NQueens(8).F, Config{Workers: 4}); err == nil {
		t.Fatal("all-workers-failed portfolio must return an error")
	}
	faultpoint.Reset()
	waitForGoroutines(t, baseline)

	// Cancellation exit: all workers stop within bounded propagations.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan ParallelReport, 1)
	go func() {
		r, _ := SolveParallelContext(ctx, gen.Pigeonhole(10).F, Config{Workers: 4})
		done <- r
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.Result.Status != solver.Unknown {
			t.Fatalf("canceled portfolio must be Unknown, got %v", r.Result.Status)
		}
		if !errors.Is(r.Result.Stop, solver.ErrCanceled) {
			t.Fatalf("stop cause = %v, want ErrCanceled", r.Result.Stop)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled portfolio did not return: cancellation latency unbounded")
	}
	waitForGoroutines(t, baseline)
}

// TestParallelDeadlineStopsWorkers checks the timeout path: a context
// deadline surfaces as ErrDeadline and no goroutine outlives the call.
func TestParallelDeadlineStopsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	rep, err := SolveParallelContext(ctx, gen.Pigeonhole(10).F, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unknown {
		t.Fatalf("timed-out portfolio must be Unknown, got %v", rep.Result.Status)
	}
	if !errors.Is(rep.Result.Stop, solver.ErrDeadline) {
		t.Fatalf("stop cause = %v, want ErrDeadline", rep.Result.Stop)
	}
	waitForGoroutines(t, baseline)
}

// TestParallelWorkerPanicContained pins the blast radius of a crashing
// free-running worker: one failure recorded, survivors still decide.
func TestParallelWorkerPanicContained(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.PortfolioWorker, faultpoint.Fault{PanicValue: "worker crashed", Times: 1})
	inst := gen.NQueens(8)
	rep, err := SolveParallel(inst.F, Config{Workers: 4})
	if err != nil {
		t.Fatalf("portfolio with surviving workers must not fail: %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("want 1 recorded worker failure, got %v", rep.Failures)
	}
	if rep.Result.Status != solver.Sat || !rep.Result.Model.Satisfies(inst.F) {
		t.Fatalf("survivors must decide the instance, got %v", rep.Result.Status)
	}
}

// TestParallelExportPanicContained crashes a worker from inside the
// clause-exchange export hook — the panic site is mid-search, after the
// first learned clause — and checks the portfolio carries on.
func TestParallelExportPanicContained(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.PortfolioExport, faultpoint.Fault{PanicValue: "export path wedged", Times: 1})
	rep, err := SolveParallel(gen.Pigeonhole(7).F, Config{Workers: 4})
	if err != nil {
		t.Fatalf("portfolio with surviving workers must not fail: %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("want 1 recorded worker failure, got %v", rep.Failures)
	}
	if rep.Result.Status != solver.Unsat {
		t.Fatalf("survivors must decide UNSAT, got %v", rep.Result.Status)
	}
}

// TestParallelImportErrorDegrades checks the degraded-exchange contract: a
// failing import drain drops batches but never the solve — the answer
// stays correct with zero clauses installed.
func TestParallelImportErrorDegrades(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.PortfolioImport, faultpoint.Fault{Err: errors.New("import path down")})
	rep, err := SolveParallel(gen.Pigeonhole(7).F, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unsat {
		t.Fatalf("degraded exchange must still decide UNSAT, got %v", rep.Result.Status)
	}
	if rep.Result.Stats.Imported != 0 {
		t.Fatalf("failing import drain must install nothing, got %d", rep.Result.Stats.Imported)
	}
}

// TestLockstepWorkerPanicContained pins deterministic-mode containment:
// sweep's cell recovery turns a worker panic into a recorded death and the
// surviving ensemble still decides.
func TestLockstepWorkerPanicContained(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.PortfolioWorker, faultpoint.Fault{PanicValue: "worker crashed", Times: 1})
	rep, err := SolveParallel(gen.Pigeonhole(7).F, Config{Deterministic: true, Workers: 2})
	if err != nil {
		t.Fatalf("lockstep portfolio with survivors must not fail: %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("want 1 recorded worker failure, got %v", rep.Failures)
	}
	if rep.Result.Status != solver.Unsat {
		t.Fatalf("survivors must decide UNSAT, got %v", rep.Result.Status)
	}
}

// TestLockstepAllWorkersFailIsError kills the whole ensemble and checks
// the error path records every death.
func TestLockstepAllWorkersFailIsError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.PortfolioWorker, faultpoint.Fault{PanicValue: "worker crashed"})
	rep, err := SolveParallel(gen.Pigeonhole(7).F, Config{Deterministic: true, Workers: 2})
	if err == nil {
		t.Fatal("all-workers-failed lockstep portfolio must return an error")
	}
	if len(rep.Failures) != DefaultEnsemble {
		t.Fatalf("want %d recorded failures, got %v", DefaultEnsemble, rep.Failures)
	}
}

// TestLockstepCancellation cancels a deterministic solve mid-round: the
// coordinator must return promptly with the cancellation cause (this exit
// path is documented as outside the byte-identical guarantee).
func TestLockstepCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan ParallelReport, 1)
	go func() {
		r, _ := SolveParallelContext(ctx, gen.Pigeonhole(10).F, Config{Deterministic: true, Workers: 2})
		done <- r
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.Result.Status != solver.Unknown {
			t.Fatalf("canceled lockstep solve must be Unknown, got %v", r.Result.Status)
		}
		if !errors.Is(r.Result.Stop, solver.ErrCanceled) {
			t.Fatalf("stop cause = %v, want ErrCanceled", r.Result.Stop)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled lockstep solve did not return")
	}
	waitForGoroutines(t, baseline)
}
