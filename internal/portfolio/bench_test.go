package portfolio

import (
	"testing"

	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// The BenchmarkPortfolio family measures whole portfolio solves on a
// fixed UNSAT instance (php-7): free-running throughput, lockstep
// deterministic rounds, and the free-running mode with exchange disabled
// (isolating what clause sharing costs and buys). bench.sh emits these
// into BENCH_solver.json under the "portfolio" family.

func benchPortfolio(b *testing.B, cfg Config) {
	b.Helper()
	f := gen.Pigeonhole(7).F
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := SolveParallel(f, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Result.Status != solver.Unsat {
			b.Fatalf("got %v, want UNSAT", rep.Result.Status)
		}
	}
}

func BenchmarkPortfolioFree4(b *testing.B) {
	benchPortfolio(b, Config{Workers: 4})
}

func BenchmarkPortfolioFree4NoExchange(b *testing.B) {
	benchPortfolio(b, Config{Workers: 4, NoExchange: true})
}

func BenchmarkPortfolioLockstep4(b *testing.B) {
	benchPortfolio(b, Config{Deterministic: true, Workers: 4})
}
