package portfolio

// N-worker shared-clause portfolio.
//
// The portfolio runs diversified solver configurations over the same
// formula — alternating deletion policies, rotated restart schedules,
// flipped initial phases, and per-worker activity seeds — and lets them
// exchange learned clauses through glue/size-filtered bounded queues.
// Import is a cheap bulk copy into the receiving solver's arena at restart
// boundaries (solver.Options.Import), when the trail is at level zero.
//
// Two execution modes share the configuration machinery:
//
//   - Free-running (Config.Deterministic = false): one goroutine per
//     worker, non-blocking channel queues, first decisive finisher
//     interrupts the rest. Maximum throughput; answers, stats, and shared
//     sets depend on scheduling.
//
//   - Deterministic (Config.Deterministic = true): a FIXED ensemble of
//     virtual workers advances in lockstep rounds of BarrierProps
//     propagations (pseudo-time, as in internal/sweep), with an all-to-all
//     exchange merged in (worker, sequence) order at each barrier. The
//     winner is the lowest-indexed worker decided in the earliest round.
//     Config.Workers only sets the OS parallelism executing the rounds, so
//     answers, stats, and shared-clause sets are byte-identical for any
//     worker count — the property the determinism golden tests pin.
//
// Blast radius of a failing worker: a panic anywhere in a worker's search
// — including the exchange hooks — is contained to that worker (recover in
// free-running mode, sweep's cell containment in deterministic mode); the
// portfolio carries on with the survivors and only errors when every
// worker has failed. Export and import never block: full queues drop
// (counted in ExchangeStats.Dropped), and a wedged worker can therefore
// stall only itself.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// Portfolio defaults. CLI flags and server knobs expose Workers and
// Deterministic; the rest are tuning constants chosen for the laptop-scale
// instances of this reproduction.
const (
	// DefaultEnsemble is the deterministic mode's fixed virtual-worker
	// count: large enough to cover both deletion policies under two
	// restart schedules, small enough that a single-CPU run stays cheap.
	DefaultEnsemble = 4
	// DefaultBarrierProps is the deterministic exchange-round length in
	// propagations (pseudo-time: 1 propagation ≡ 1µs, as in the
	// experiment harness).
	DefaultBarrierProps = 20000
	// DefaultGlueLimit and DefaultSizeLimit gate the export filter:
	// binaries always travel; longer clauses need glue ≤ GlueLimit and
	// size ≤ SizeLimit ("Rethinking Clause Management": share the few
	// clauses likely to be useful elsewhere, not the database).
	DefaultGlueLimit = 4
	DefaultSizeLimit = 12
	// DefaultQueueCap bounds each worker's export queue; overflow drops.
	DefaultQueueCap = 4096
)

// Config configures an N-worker portfolio solve. The zero value solves
// with NumCPU free-running workers and exchange enabled.
type Config struct {
	// Workers: free-running mode races this many diversified solvers
	// (<= 0 → runtime.NumCPU()). Deterministic mode runs the fixed
	// Ensemble and uses Workers only as OS parallelism, so it cannot
	// influence the output.
	Workers int
	// MaxConflicts bounds each worker's search (0 = unlimited).
	MaxConflicts int64
	// Deterministic switches to lockstep exchange rounds with pseudo-time
	// barriers; see the package comment.
	Deterministic bool
	// Ensemble is the deterministic mode's virtual-worker count
	// (<= 0 → DefaultEnsemble). Ignored in free-running mode.
	Ensemble int
	// BarrierProps is the deterministic exchange-round length in
	// propagations (<= 0 → DefaultBarrierProps).
	BarrierProps int64
	// GlueLimit / SizeLimit / QueueCap tune the export filter and queue
	// bound (<= 0 → the defaults above).
	GlueLimit int
	SizeLimit int
	QueueCap  int
	// NoExchange disables clause sharing: workers race independently.
	// RaceDeterministic uses this to preserve virtual-best semantics.
	NoExchange bool
	// NoDiversify keeps every worker on the experiment-standard options
	// (policies still alternate). Used by the deterministic race baseline.
	NoDiversify bool
	// Selector, when non-nil, chooses worker 0's deletion policy via
	// model inference (the remaining workers stay pinned). Inference is a
	// pure function of the model and formula, so deterministic mode stays
	// deterministic.
	Selector *Selector
	// Obs, when non-nil, receives per-worker exchange counters
	// (neuroselect_portfolio_exchange_clauses_total{worker,event}) and the
	// round counter neuroselect_portfolio_rounds_total.
	Obs *obs.Registry
	// Tracer, when non-nil, receives EventExchange events: per worker per
	// round in deterministic mode (emitted by the coordinator, in worker
	// order), per worker at drain in free-running mode. Worker solvers do
	// NOT inherit this tracer — interleaving per-solver events from
	// concurrent searches would be scheduling-dependent.
	Tracer obs.Tracer
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Ensemble <= 0 {
		c.Ensemble = DefaultEnsemble
	}
	if c.BarrierProps <= 0 {
		c.BarrierProps = DefaultBarrierProps
	}
	if c.GlueLimit <= 0 {
		c.GlueLimit = DefaultGlueLimit
	}
	if c.SizeLimit <= 0 {
		c.SizeLimit = DefaultSizeLimit
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
}

// ExchangeStats is one worker's clause-exchange ledger. Exported counts
// clauses that passed the filter and entered the exchange; Filtered counts
// clauses the glue/size filter rejected; Dropped counts per-receiver
// copies lost to a full queue (free-running) or exports beyond the queue
// cap (deterministic); Imported counts clauses received from peers (the
// installed subset is the worker's Stats.Imported). Hash is an FNV-1a
// digest of the exported clause stream — the cheap fingerprint the
// determinism tests compare across worker counts.
type ExchangeStats struct {
	Worker   int    `json:"worker"`
	Config   string `json:"config"`
	Exported int64  `json:"exported"`
	Imported int64  `json:"imported"`
	Filtered int64  `json:"filtered"`
	Dropped  int64  `json:"dropped"`
	Hash     uint64 `json:"hash"`
}

// ParallelReport is the outcome of a portfolio solve.
type ParallelReport struct {
	// Result is the winning worker's solve result (model verified for
	// SAT). When no worker decided, it carries the lowest-indexed
	// survivor's stats and stop cause.
	Result solver.Result
	// Winner names the winning worker's configuration ("" when undecided).
	Winner string
	// WinnerIndex is the winning worker's index (-1 when undecided).
	WinnerIndex int
	// Workers is the number of solver configurations raced.
	Workers int
	// Rounds is the number of exchange rounds executed (deterministic
	// mode; 0 in free-running mode).
	Rounds int
	// Deterministic records which mode produced this report.
	Deterministic bool
	// WallTime is the solve's wall-clock duration. In deterministic mode
	// prefer PseudoTime for anything that must reproduce.
	WallTime time.Duration
	// PseudoTime is the deterministic measure of the winner's search:
	// its propagation count at 1 propagation ≡ 1µs.
	PseudoTime time.Duration
	// PropFreqHash is the FNV-1a hash of the winning worker's cumulative
	// propagation-frequency vector (0 when undecided).
	PropFreqHash uint64
	// Exchange holds per-worker exchange ledgers, indexed by worker.
	Exchange []ExchangeStats
	// Failures lists workers whose solve failed (panicked or errored).
	Failures []string
}

// SolveParallel runs an N-worker shared-clause portfolio solve.
func SolveParallel(f *cnf.Formula, cfg Config) (ParallelReport, error) {
	return SolveParallelContext(context.Background(), f, cfg)
}

// SolveParallelContext is SolveParallel under a context: cancellation
// stops every worker within a bounded number of propagations and the
// report carries ErrCanceled. The call never leaks goroutines — it
// returns only after every worker has delivered its outcome.
func SolveParallelContext(ctx context.Context, f *cnf.Formula, cfg Config) (ParallelReport, error) {
	cfg.fillDefaults()
	if cfg.Deterministic {
		return solveLockstep(ctx, f, cfg)
	}
	return solveFree(ctx, f, cfg)
}

// workerConfig is one diversified solver configuration.
type workerConfig struct {
	name string
	opts solver.Options
}

// makeConfigs builds the ensemble: policies alternate default/frequency
// (worker 0 selector-chosen when a Selector is set), restart bases rotate
// through {128, 64, 256, 512}, initial phases flip every second pair, and
// workers past 0 get distinct activity seeds. NoDiversify keeps everyone
// on the experiment-standard options so only the policy differs.
func makeConfigs(f *cnf.Formula, cfg *Config, n int) []workerConfig {
	restartBases := []int64{128, 64, 256, 512}
	out := make([]workerConfig, n)
	for i := range out {
		var pol deletion.Policy
		if i%2 == 0 {
			pol = deletion.DefaultPolicy{}
		} else {
			pol = deletion.FrequencyPolicy{}
		}
		if i == 0 && cfg.Selector != nil {
			pol = cfg.Selector.Choose(f).Policy
		}
		o := dataset.SolveOptions(pol, cfg.MaxConflicts)
		name := fmt.Sprintf("w%d:%s", i, pol.Name())
		if !cfg.NoDiversify {
			o.RestartBase = restartBases[i%len(restartBases)]
			o.InitialPhase = (i/2)%2 == 1
			if i > 0 {
				o.ActivitySeed = 0x9E3779B97F4A7C15 * uint64(i)
			}
			name = fmt.Sprintf("%s:r%d", name, o.RestartBase)
		}
		out[i] = workerConfig{name: name, opts: o}
	}
	return out
}

// FNV-1a parameters for the exchange and propagation-frequency digests.
const (
	fnvOffset uint64 = 1469598103934665603
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a hash, byte by byte.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (x >> i) & 0xff
		h *= fnvPrime
	}
	return h
}

// PropFreqHash digests a propagation-frequency vector (as returned by
// solver.PropagationFrequencies) with FNV-1a. Two searches with the same
// hash propagated each variable identically often — the compact
// reproducibility fingerprint used by the determinism tests and satsolve's
// -stats-json output.
func PropFreqHash(freqs []uint64) uint64 {
	h := fnvOffset
	for _, v := range freqs {
		h = fnvMix(h, v)
	}
	return h
}

// shareable applies the export filter: binaries always travel, longer
// clauses must be both low-glue and short.
func (c *Config) shareable(lits []cnf.Lit, glue int) bool {
	if len(lits) <= 2 {
		return true
	}
	return glue <= c.GlueLimit && len(lits) <= c.SizeLimit
}

// hashClause folds one exported clause into a worker's exchange digest.
func hashClause(h uint64, lits []cnf.Lit, glue int) uint64 {
	h = fnvMix(h, uint64(len(lits)))
	h = fnvMix(h, uint64(int64(glue)))
	for _, l := range lits {
		h = fnvMix(h, uint64(int64(l)))
	}
	return h
}

// publish pushes the final exchange ledgers into the registry and tracer.
// round is the last completed exchange round (0 for free-running mode).
func publish(cfg *Config, round int, states []ExchangeStats) {
	if cfg.Obs != nil {
		for i := range states {
			w := strconv.Itoa(i)
			ev := func(event string) *obs.Counter {
				return cfg.Obs.Counter("neuroselect_portfolio_exchange_clauses_total",
					"Clauses through the portfolio exchange, by worker and event.",
					obs.Labels{"worker": w, "event": event})
			}
			ev("exported").Add(states[i].Exported)
			ev("imported").Add(states[i].Imported)
			ev("filtered").Add(states[i].Filtered)
			ev("dropped").Add(states[i].Dropped)
		}
		cfg.Obs.Counter("neuroselect_portfolio_rounds_total",
			"Completed portfolio exchange rounds.", nil).Add(int64(round))
	}
	if cfg.Tracer != nil {
		for i := range states {
			cfg.Tracer.Trace(exchangeEvent(round, &states[i]))
		}
	}
}

// exchangeEvent renders one worker's cumulative exchange ledger as a
// trace event.
func exchangeEvent(round int, st *ExchangeStats) *obs.Event {
	return &obs.Event{
		Type:     obs.EventExchange,
		Round:    round,
		Worker:   st.Worker,
		Exported: st.Exported,
		Imported: st.Imported,
		Filtered: st.Filtered,
		Dropped:  st.Dropped,
	}
}

// solveFree is the free-running mode: one goroutine per worker, buffered
// inbox channels, non-blocking export fan-out, first decisive finisher
// interrupts the rest. The Race pattern generalized to N workers with
// clause exchange.
func solveFree(ctx context.Context, f *cnf.Formula, cfg Config) (ParallelReport, error) {
	n := cfg.Workers
	configs := makeConfigs(f, &cfg, n)
	states := make([]ExchangeStats, n)
	for i := range states {
		states[i] = ExchangeStats{Worker: i, Config: configs[i].name, Hash: fnvOffset}
	}
	inboxes := make([]chan solver.SharedClause, n)
	for i := range inboxes {
		inboxes[i] = make(chan solver.SharedClause, cfg.QueueCap)
	}

	type outcome struct {
		idx int
		res solver.Result
		pf  uint64 // PropFreqHash of this worker's search
		err error
	}
	var stop atomic.Bool
	results := make(chan outcome, n)
	start := time.Now()
	for i := range configs {
		go func(i int) {
			o := outcome{idx: i}
			defer func() {
				if r := recover(); r != nil {
					o.err = fmt.Errorf("portfolio: worker %s: panic: %v", configs[i].name, r)
				}
				results <- o
			}()
			if err := faultpoint.Hit(faultpoint.PortfolioWorker); err != nil {
				o.err = fmt.Errorf("portfolio: worker %s: %w", configs[i].name, err)
				return
			}
			opts := configs[i].opts
			opts.Interrupt = stop.Load
			ex := &states[i]
			if !cfg.NoExchange {
				var scratch []solver.SharedClause
				opts.Export = func(lits []cnf.Lit, glue int) {
					if err := faultpoint.Hit(faultpoint.PortfolioExport); err != nil {
						ex.Dropped++ // degraded exchange: the clause is lost, the search continues
						return
					}
					if !cfg.shareable(lits, glue) {
						ex.Filtered++
						return
					}
					ex.Exported++
					ex.Hash = hashClause(ex.Hash, lits, glue)
					cp := make([]cnf.Lit, len(lits))
					copy(cp, lits)
					sc := solver.SharedClause{Lits: cp, Glue: glue}
					for j := range inboxes {
						if j == i {
							continue
						}
						select {
						case inboxes[j] <- sc:
						default:
							ex.Dropped++ // receiver's queue full: drop, never block
						}
					}
				}
				opts.Import = func() []solver.SharedClause {
					if err := faultpoint.Hit(faultpoint.PortfolioImport); err != nil {
						return nil // degraded exchange: skip this drain
					}
					batch := scratch[:0]
					for {
						select {
						case sc := <-inboxes[i]:
							batch = append(batch, sc)
							ex.Imported++
						default:
							scratch = batch
							return batch
						}
					}
				}
			}
			// The solver is driven directly (not via solver.SolveContext)
			// so the worker can hash its propagation frequencies; the
			// deferred recover above provides the same panic containment.
			s, err := solver.New(f, opts)
			if err != nil {
				o.err = fmt.Errorf("portfolio: worker %s: %w", configs[i].name, err)
				return
			}
			st := s.SolveContext(ctx)
			o.res = solver.Result{Status: st, Stats: s.Stats(), Stop: s.BudgetExhausted()}
			o.pf = PropFreqHash(s.PropagationFrequencies())
			if st == solver.Sat {
				o.res.Model = s.Model()
				if !o.res.Model.Satisfies(f) {
					o.err = fmt.Errorf("portfolio: worker %s: model does not satisfy formula", configs[i].name)
				}
			}
		}(i)
	}

	// Drain every worker unconditionally: the no-leak guarantee. The first
	// decisive finisher wins and interrupts the rest; an Unknown first
	// finisher is displaced by a later decisive one.
	rep := ParallelReport{Workers: n, WinnerIndex: -1, Exchange: states}
	var chosen *outcome
	var failed []error
	for range configs {
		o := <-results
		if o.err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", configs[o.idx].name, o.err))
			failed = append(failed, o.err)
			continue
		}
		if o.res.Status != solver.Unknown && (chosen == nil || chosen.res.Status == solver.Unknown) {
			stop.Store(true)
			c := o
			chosen = &c
		} else if chosen == nil {
			c := o
			chosen = &c
		}
	}
	rep.WallTime = time.Since(start)
	publish(&cfg, 0, states)
	if chosen == nil {
		return rep, fmt.Errorf("portfolio: all %d workers failed: %w", n, errors.Join(failed...))
	}
	rep.Result = chosen.res
	rep.PseudoTime = time.Duration(chosen.res.Stats.Propagations) * time.Microsecond
	if chosen.res.Status != solver.Unknown {
		rep.Winner = configs[chosen.idx].name
		rep.WinnerIndex = chosen.idx
		rep.PropFreqHash = chosen.pf
	}
	return rep, nil
}

// solveLockstep is the deterministic mode: the fixed ensemble advances in
// exchange rounds of BarrierProps propagations, executed across
// Config.Workers OS threads by sweep.Map (whose index-ordered aggregation
// guarantees the round outcome is scheduling-independent). All exchange
// and winner selection happens on the coordinating goroutine between
// rounds, merged in worker order.
func solveLockstep(ctx context.Context, f *cnf.Formula, cfg Config) (ParallelReport, error) {
	n := cfg.Ensemble
	configs := makeConfigs(f, &cfg, n)
	states := make([]ExchangeStats, n)
	solvers := make([]*solver.Solver, n)
	status := make([]solver.Status, n)
	dead := make([]error, n) // terminal failure, worker never touched again
	outbox := make([][]solver.SharedClause, n)
	inbox := make([][]solver.SharedClause, n)

	rep := ParallelReport{Workers: n, WinnerIndex: -1, Deterministic: true, Exchange: states}
	start := time.Now()
	for i := range configs {
		i := i
		states[i] = ExchangeStats{Worker: i, Config: configs[i].name, Hash: fnvOffset}
		opts := configs[i].opts
		if !cfg.NoExchange {
			opts.Export = func(lits []cnf.Lit, glue int) {
				if err := faultpoint.Hit(faultpoint.PortfolioExport); err != nil {
					states[i].Dropped++
					return
				}
				if !cfg.shareable(lits, glue) {
					states[i].Filtered++
					return
				}
				if len(outbox[i]) >= cfg.QueueCap {
					states[i].Dropped++
					return
				}
				states[i].Exported++
				states[i].Hash = hashClause(states[i].Hash, lits, glue)
				cp := make([]cnf.Lit, len(lits))
				copy(cp, lits)
				outbox[i] = append(outbox[i], solver.SharedClause{Lits: cp, Glue: glue})
			}
			opts.Import = func() []solver.SharedClause {
				if err := faultpoint.Hit(faultpoint.PortfolioImport); err != nil {
					inbox[i] = nil // degraded exchange: the batch is lost
					return nil
				}
				batch := inbox[i]
				inbox[i] = nil
				states[i].Imported += int64(len(batch))
				return batch
			}
		}
		s, err := solver.New(f, opts)
		if err != nil {
			return rep, err
		}
		solvers[i] = s
	}

	finish := func(win int, round int) (ParallelReport, error) {
		rep.Rounds = round
		rep.WallTime = time.Since(start)
		publish(&cfg, round, states)
		if win < 0 {
			// Undecided: report the lowest-indexed survivor's outcome, or
			// error when every worker is dead.
			for i := range solvers {
				if dead[i] == nil {
					s := solvers[i]
					rep.Result = solver.Result{Status: solver.Unknown, Stats: s.Stats(), Stop: s.BudgetExhausted()}
					rep.PseudoTime = time.Duration(rep.Result.Stats.Propagations) * time.Microsecond
					return rep, nil
				}
			}
			var failed []error
			for i := range dead {
				failed = append(failed, dead[i])
			}
			return rep, fmt.Errorf("portfolio: all %d workers failed: %w", n, errors.Join(failed...))
		}
		s := solvers[win]
		rep.Winner = configs[win].name
		rep.WinnerIndex = win
		rep.Result = solver.Result{Status: status[win], Stats: s.Stats(), Stop: s.BudgetExhausted()}
		rep.PseudoTime = time.Duration(rep.Result.Stats.Propagations) * time.Microsecond
		rep.PropFreqHash = PropFreqHash(s.PropagationFrequencies())
		if status[win] == solver.Sat {
			rep.Result.Model = s.Model()
			if !rep.Result.Model.Satisfies(f) {
				return rep, fmt.Errorf("portfolio: worker %s: model does not satisfy formula", configs[win].name)
			}
		}
		return rep, nil
	}

	for round := 1; ; round++ {
		barrier := int64(round) * cfg.BarrierProps
		_, errs := sweep.Map(ctx, sweep.Options{Workers: cfg.Workers}, n,
			func(cellCtx context.Context, i int) (struct{}, error) {
				if dead[i] != nil || status[i] != solver.Unknown {
					return struct{}{}, nil
				}
				s := solvers[i]
				if exhausted := s.BudgetExhausted(); exhausted != nil && !isBarrierStop(exhausted) {
					return struct{}{}, nil // conflict budget spent: parked, not dead
				}
				if err := faultpoint.Hit(faultpoint.PortfolioWorker); err != nil {
					return struct{}{}, err
				}
				s.ExtendBudget(cfg.MaxConflicts, barrier)
				status[i] = s.SolveContext(cellCtx)
				return struct{}{}, nil
			})
		if err := ctx.Err(); err != nil {
			// Canceled mid-round: report the lowest-indexed survivor with
			// the cancellation cause (output is not deterministic on this
			// path — the barrier a worker reached depends on timing).
			rep.Rounds = round - 1
			rep.WallTime = time.Since(start)
			publish(&cfg, round-1, states)
			stop := solver.ErrCanceled
			if errors.Is(err, context.DeadlineExceeded) {
				stop = solver.ErrDeadline
			}
			for i := range solvers {
				if dead[i] == nil {
					rep.Result = solver.Result{Status: solver.Unknown, Stats: solvers[i].Stats(), Stop: stop}
					rep.PseudoTime = time.Duration(rep.Result.Stats.Propagations) * time.Microsecond
					return rep, nil
				}
			}
			return rep, err
		}
		for i, err := range errs {
			if err != nil && dead[i] == nil {
				dead[i] = err
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", configs[i].name, err))
				outbox[i] = nil // a failed round's partial exports do not travel
			}
		}

		// Winner: lowest index decided in the earliest round.
		for i := range status {
			if dead[i] == nil && status[i] != solver.Unknown {
				return finish(i, round)
			}
		}

		// Liveness: a worker still makes progress if its next round can
		// move it (its stop cause is the propagation barrier, not an
		// exhausted conflict budget or a death).
		live := false
		for i := range solvers {
			if dead[i] == nil && isBarrierStop(solvers[i].BudgetExhausted()) {
				live = true
				break
			}
		}
		if !live {
			return finish(-1, round)
		}

		// All-to-all exchange, merged in (sender, sequence) order.
		if !cfg.NoExchange {
			for i := range solvers {
				if dead[i] != nil {
					continue
				}
				for j := range solvers {
					if j == i || dead[j] != nil {
						continue
					}
					inbox[i] = append(inbox[i], outbox[j]...)
				}
			}
			for j := range outbox {
				outbox[j] = nil
			}
			if cfg.Tracer != nil {
				for i := range states {
					cfg.Tracer.Trace(exchangeEvent(round, &states[i]))
				}
			}
		}
	}
}

// isBarrierStop reports whether a worker's stop cause was the round's
// propagation barrier — the only stop the next round can lift.
func isBarrierStop(stop error) bool {
	return errors.Is(stop, solver.ErrPropagationBudget)
}
