package portfolio

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func freshModel() *core.Model {
	return core.NewModel(core.Config{Hidden: 8, HGTLayers: 1, MPLayers: 1, Attention: true, Seed: 1})
}

func TestChooseRespectsThreshold(t *testing.T) {
	m := freshModel()
	f := gen.RandomKSAT(20, 80, 3, 1).F
	prob := m.Predict(f)

	never := NewSelector(m)
	never.Threshold = 1.01
	if ch := never.Choose(f); ch.Policy.Name() != "default" {
		t.Fatalf("threshold above 1 must select default, got %s", ch.Policy.Name())
	}
	always := NewSelector(m)
	always.Threshold = 0
	if ch := always.Choose(f); ch.Policy.Name() != "frequency" {
		t.Fatalf("threshold 0 must select frequency, got %s", ch.Policy.Name())
	}
	mid := NewSelector(m)
	mid.Threshold = prob // prob >= threshold → frequency
	if ch := mid.Choose(f); ch.Policy.Name() != "frequency" {
		t.Fatal("boundary probability must select frequency")
	}
}

func TestChooseReportsInferenceTime(t *testing.T) {
	sel := NewSelector(freshModel())
	ch := sel.Choose(gen.RandomKSAT(30, 120, 3, 2).F)
	if ch.Prob < 0 || ch.Prob > 1 {
		t.Fatalf("prob = %v", ch.Prob)
	}
	if ch.Inference <= 0 {
		t.Fatal("inference time must be recorded")
	}
}

func TestNodeCapSkipsInference(t *testing.T) {
	sel := NewSelector(freshModel())
	sel.Threshold = 0 // would always pick frequency if inference ran
	sel.NodeCap = 5
	f := gen.RandomKSAT(30, 120, 3, 3).F // 150 nodes > 5
	ch := sel.Choose(f)
	if ch.Policy.Name() != "default" {
		t.Fatal("capped instances must fall back to the default policy")
	}
	if ch.Prob >= 0 {
		t.Fatal("capped instances must mark inference as skipped")
	}
	if ch.Inference != 0 {
		t.Fatal("no inference time should accrue when skipped")
	}
}

func TestSolveProducesVerifiedResult(t *testing.T) {
	sel := NewSelector(freshModel())
	inst := gen.Pigeonhole(5)
	rep, err := sel.Solve(inst.F, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Status != solver.Unsat {
		t.Fatalf("php-5 must be UNSAT, got %v", rep.Result.Status)
	}
	if rep.SolveTime <= 0 {
		t.Fatal("solve time must be recorded")
	}

	sat := gen.NQueens(6)
	rep2, err := sel.Solve(sat.F, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Result.Status != solver.Sat || !rep2.Result.Model.Satisfies(sat.F) {
		t.Fatal("queens-6 model must verify")
	}
}

// probLookup is a deterministic predictor keyed by formula identity,
// letting the calibration tests control the probability landscape exactly.
func probLookup(probs map[*cnf.Formula]float64) func(*cnf.Formula) float64 {
	return func(f *cnf.Formula) float64 { return probs[f] }
}

func TestCalibrateThresholdPrefersGainfulCut(t *testing.T) {
	// Three items: a confident winner (p=0.85, gain +200), a mid-confidence
	// loser (p=0.55, gain −500), a low loser (p=0.1, gain −100). The best
	// cut is 0.6–0.8: taking only the winner.
	fa, fb, fc := gen.RandomKSAT(10, 40, 3, 1).F, gen.RandomKSAT(10, 40, 3, 2).F, gen.RandomKSAT(10, 40, 3, 3).F
	probs := map[*cnf.Formula]float64{fa: 0.85, fb: 0.55, fc: 0.1}
	items := []dataset.Labeled{
		{Inst: gen.Instance{F: fa}, PropsDefault: 1000, PropsFrequency: 800},
		{Inst: gen.Instance{F: fb}, PropsDefault: 1000, PropsFrequency: 1500},
		{Inst: gen.Instance{F: fc}, PropsDefault: 1000, PropsFrequency: 1100},
	}
	th := CalibrateThresholdFunc(probLookup(probs), items)
	if th <= 0.55 || th > 0.85 {
		t.Fatalf("threshold %v should isolate the gainful item", th)
	}
	total := int64(0)
	for _, it := range items {
		if probs[it.Inst.F] >= th {
			total += it.PropsDefault - it.PropsFrequency
		}
	}
	if total != 200 {
		t.Fatalf("captured gain = %d, want 200", total)
	}
}

func TestCalibrateThresholdAllLossesMeansNever(t *testing.T) {
	f := gen.RandomKSAT(10, 40, 3, 4).F
	items := []dataset.Labeled{
		{Inst: gen.Instance{F: f}, PropsDefault: 100, PropsFrequency: 200},
	}
	th := CalibrateThresholdFunc(probLookup(map[*cnf.Formula]float64{f: 0.99}), items)
	if th <= 1 {
		t.Fatalf("all-loss calibration must return never-select, got %v", th)
	}
}

func TestCalibrateThresholdModelWrapper(t *testing.T) {
	// The model-based wrapper must agree with the functional form.
	m := freshModel()
	var items []dataset.Labeled
	for s := int64(0); s < 4; s++ {
		items = append(items, dataset.Labeled{
			Inst:         gen.Instance{F: gen.RandomKSAT(12, 48, 3, s).F},
			PropsDefault: 100, PropsFrequency: 90,
		})
	}
	if CalibrateThreshold(m, items) != CalibrateThresholdFunc(m.Predict, items) {
		t.Fatal("wrapper and functional calibration disagree")
	}
}

func TestRaceAgreesWithSequential(t *testing.T) {
	instances := []gen.Instance{
		gen.Pigeonhole(5),
		gen.NQueens(6),
		gen.RandomKSAT(60, 255, 3, 4),
		gen.Tseitin(14, 3, false, 5),
	}
	for _, in := range instances {
		seq, err := solver.Solve(in.F, dataset.SolveOptions(nil, 100000))
		if err != nil {
			t.Fatal(err)
		}
		race, err := Race(in.F, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if race.Result.Status != seq.Status {
			t.Fatalf("%s: race %v vs sequential %v", in.Name, race.Result.Status, seq.Status)
		}
		if race.Winner != "default" && race.Winner != "frequency" {
			t.Fatalf("winner %q", race.Winner)
		}
		if race.Result.Status == solver.Sat && !race.Result.Model.Satisfies(in.F) {
			t.Fatalf("%s: race model invalid", in.Name)
		}
	}
}

func TestRaceBothBudgetsExhausted(t *testing.T) {
	inst := gen.Pigeonhole(9)
	race, err := Race(inst.F, 20)
	if err != nil {
		t.Fatal(err)
	}
	if race.Result.Status != solver.Unknown {
		t.Fatalf("tiny budget should exhaust: %v", race.Result.Status)
	}
}
