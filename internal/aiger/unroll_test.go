package aiger

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/solver"
)

// TestCounterAIGSingleStep checks the transition relation in isolation:
// one stamped frame, every (state, free) pair forced by assumptions, the
// next state must equal state + 1 + free.
func TestCounterAIGSingleStep(t *testing.T) {
	const width = 4
	g := CounterAIG(width)
	if len(g.Inputs) != width+1 || len(g.Outputs) != width {
		t.Fatalf("shape: %d inputs %d outputs", len(g.Inputs), len(g.Outputs))
	}
	for start := uint64(0); start < 1<<width; start++ {
		for freeVal := 0; freeVal <= 1; freeVal++ {
			u, err := NewUnroller(g, width)
			if err != nil {
				t.Fatal(err)
			}
			f := cnf.New(0)
			for _, c := range u.Init(start) {
				f.MustAddClause(c...)
			}
			clauses, free := u.Step()
			if len(free) != 1 {
				t.Fatalf("want 1 free input, got %d", len(free))
			}
			for _, c := range clauses {
				f.MustAddClause(c...)
			}
			f.NumVars = u.NumVars()
			assume := []cnf.Lit{free[0]}
			if freeVal == 0 {
				assume[0] = -free[0]
			}
			want := (start + 1 + uint64(freeVal)) % (1 << width)
			res, err := solver.SolveAssuming(f, append(assume, u.StateEquals(want)...), solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != solver.Sat {
				t.Fatalf("state %d + %d: next state %d not satisfiable", start, 1+freeVal, want)
			}
			// Any other next state must be impossible.
			res, err = solver.SolveAssuming(f, append(assume, u.StateEquals((want+1)%(1<<width))...), solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != solver.Unsat {
				t.Fatalf("state %d + %d: wrong next state satisfiable", start, 1+freeVal)
			}
		}
	}
}

// TestUnrollerReachability unrolls the add-1-or-2 counter and checks, at
// each depth k, that target values are reachable exactly when k ≤ target
// ≤ 2k — on both a cold solver over the accumulated formula and a warm
// incremental solver fed only the per-frame deltas.
func TestUnrollerReachability(t *testing.T) {
	const width, steps = 4, 5
	g := CounterAIG(width)
	u, err := NewUnroller(g, width)
	if err != nil {
		t.Fatal(err)
	}
	acc := cnf.New(0)
	inc, err := solver.New(cnf.New(0), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range u.Init(0) {
		acc.MustAddClause(c...)
		if err := inc.AddClause(c); err != nil {
			t.Fatal(err)
		}
	}
	for k := 1; k <= steps; k++ {
		clauses, _ := u.Step()
		for _, c := range clauses {
			acc.MustAddClause(c...)
			if err := inc.AddClause(c); err != nil {
				t.Fatal(err)
			}
		}
		acc.NumVars = u.NumVars()
		for target := uint64(0); target < 1<<width; target++ {
			want := solver.Unsat
			if uint64(k) <= target && target <= uint64(2*k) {
				want = solver.Sat
			}
			as := u.StateEquals(target)
			cold, err := solver.SolveAssuming(acc, as, solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if cold.Status != want {
				t.Fatalf("depth %d target %d: cold %v, want %v", k, target, cold.Status, want)
			}
			st, _ := inc.SolveUnderAssumptions(as)
			if st != want {
				t.Fatalf("depth %d target %d: incremental %v, want %v", k, target, st, want)
			}
		}
	}
}
