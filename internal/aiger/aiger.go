// Package aiger reads and writes combinational and-inverter graphs in the
// ASCII AIGER format ("aag", Biere 2007), the lingua franca of hardware
// model checking and equivalence checking. Circuits convert to CNF through
// the Tseitin builder, and two circuits combine into an equivalence-
// checking miter — the industrial workload motivating the paper.
//
// The supported subset is combinational AIGER: latches are rejected.
// AIGER literal conventions apply: variable v has literal 2v, its negation
// 2v+1; literal 0 is constant false and 1 constant true.
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"neuroselect/internal/circuit"
	"neuroselect/internal/cnf"
)

// AIG is a combinational and-inverter graph.
type AIG struct {
	// MaxVar is the largest variable index (the M field of the header).
	MaxVar int
	// Inputs holds the input literals (always even, positive).
	Inputs []int
	// Outputs holds the output literals (possibly negated or constant).
	Outputs []int
	// Ands holds the gates; each LHS is an even literal defined once.
	Ands []And
	// Comments preserves trailing comment lines.
	Comments []string
}

// And is one and-gate: LHS = RHS0 ∧ RHS1 in AIGER literal encoding.
type And struct {
	LHS, RHS0, RHS1 int
}

// Parse reads an ASCII AIGER file.
func Parse(r io.Reader) (*AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aiger: malformed header %q (only ASCII 'aag' is supported)", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", header[i+1])
		}
		nums[i] = v
	}
	m, ni, nl, no, na := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nl != 0 {
		return nil, fmt.Errorf("aiger: %d latches present; only combinational circuits are supported", nl)
	}
	g := &AIG{MaxVar: m}
	readLits := func(count int, what string, fields int) ([][]int, error) {
		rows := make([][]int, 0, count)
		for i := 0; i < count; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("aiger: truncated %s section", what)
			}
			parts := strings.Fields(sc.Text())
			if len(parts) != fields {
				return nil, fmt.Errorf("aiger: %s line %q needs %d fields", what, sc.Text(), fields)
			}
			row := make([]int, fields)
			for j, p := range parts {
				v, err := strconv.Atoi(p)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("aiger: bad literal %q in %s", p, what)
				}
				if v > 2*m+1 {
					return nil, fmt.Errorf("aiger: literal %d exceeds maxvar %d", v, m)
				}
				row[j] = v
			}
			rows = append(rows, row)
		}
		return rows, nil
	}
	ins, err := readLits(ni, "input", 1)
	if err != nil {
		return nil, err
	}
	for _, row := range ins {
		if row[0]%2 != 0 || row[0] == 0 {
			return nil, fmt.Errorf("aiger: input literal %d must be a positive even literal", row[0])
		}
		g.Inputs = append(g.Inputs, row[0])
	}
	outs, err := readLits(no, "output", 1)
	if err != nil {
		return nil, err
	}
	for _, row := range outs {
		g.Outputs = append(g.Outputs, row[0])
	}
	ands, err := readLits(na, "and", 3)
	if err != nil {
		return nil, err
	}
	defined := map[int]bool{}
	for _, in := range g.Inputs {
		defined[in] = true
	}
	for _, row := range ands {
		lhs := row[0]
		if lhs%2 != 0 || lhs == 0 {
			return nil, fmt.Errorf("aiger: and-gate LHS %d must be a positive even literal", lhs)
		}
		if defined[lhs] {
			return nil, fmt.Errorf("aiger: literal %d defined twice", lhs)
		}
		defined[lhs] = true
		g.Ands = append(g.Ands, And{LHS: lhs, RHS0: row[1], RHS1: row[2]})
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "c" {
			continue
		}
		g.Comments = append(g.Comments, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("aiger: read: %w", err)
	}
	return g, nil
}

// ParseString parses an AIGER description held in a string.
func ParseString(s string) (*AIG, error) { return Parse(strings.NewReader(s)) }

// Write emits the circuit in ASCII AIGER format.
func Write(w io.Writer, g *AIG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", g.MaxVar, len(g.Inputs), len(g.Outputs), len(g.Ands))
	for _, in := range g.Inputs {
		fmt.Fprintf(bw, "%d\n", in)
	}
	for _, out := range g.Outputs {
		fmt.Fprintf(bw, "%d\n", out)
	}
	for _, a := range g.Ands {
		fmt.Fprintf(bw, "%d %d %d\n", a.LHS, a.RHS0, a.RHS1)
	}
	if len(g.Comments) > 0 {
		fmt.Fprintln(bw, "c")
		for _, c := range g.Comments {
			fmt.Fprintln(bw, c)
		}
	}
	return bw.Flush()
}

// wireOf resolves an AIGER literal to a circuit wire given the variable
// mapping.
func wireOf(b *circuit.Builder, vars map[int]circuit.Wire, lit int) (circuit.Wire, error) {
	switch lit {
	case 0:
		return b.False(), nil
	case 1:
		return b.True(), nil
	}
	w, ok := vars[lit/2]
	if !ok {
		return 0, fmt.Errorf("aiger: literal %d references undefined variable %d", lit, lit/2)
	}
	if lit%2 == 1 {
		return b.Not(w), nil
	}
	return w, nil
}

// build instantiates the AIG in the Tseitin builder and returns the output
// wires. Gates must be topologically ordered (RHS defined before use), the
// convention of AIGER files.
func (g *AIG) build(b *circuit.Builder) ([]circuit.Wire, error) {
	vars := map[int]circuit.Wire{}
	for _, in := range g.Inputs {
		vars[in/2] = b.Input()
	}
	for _, a := range g.Ands {
		x, err := wireOf(b, vars, a.RHS0)
		if err != nil {
			return nil, err
		}
		y, err := wireOf(b, vars, a.RHS1)
		if err != nil {
			return nil, err
		}
		vars[a.LHS/2] = b.And(x, y)
	}
	outs := make([]circuit.Wire, len(g.Outputs))
	for i, o := range g.Outputs {
		w, err := wireOf(b, vars, o)
		if err != nil {
			return nil, err
		}
		outs[i] = w
	}
	return outs, nil
}

// ToCNF converts the circuit to CNF. Outputs are left unconstrained; the
// returned wires identify them for assumptions or assertions. The wires of
// the primary inputs are the first len(Inputs) variables in order.
func (g *AIG) ToCNF() (*cnf.Formula, []circuit.Wire, error) {
	b := circuit.New()
	outs, err := g.build(b)
	if err != nil {
		return nil, nil, err
	}
	return b.Formula(), outs, nil
}

// Miter builds the combinational equivalence-checking CNF of two circuits
// with matching input and output counts: shared inputs, outputs pairwise
// XORed, and the OR of the differences asserted. The miter is
// unsatisfiable exactly when the circuits are equivalent.
func Miter(a, bb *AIG) (*cnf.Formula, error) {
	if len(a.Inputs) != len(bb.Inputs) {
		return nil, fmt.Errorf("aiger: input count mismatch %d vs %d", len(a.Inputs), len(bb.Inputs))
	}
	if len(a.Outputs) != len(bb.Outputs) {
		return nil, fmt.Errorf("aiger: output count mismatch %d vs %d", len(a.Outputs), len(bb.Outputs))
	}
	b := circuit.New()
	shared := b.Inputs(len(a.Inputs))

	instantiate := func(g *AIG) ([]circuit.Wire, error) {
		vars := map[int]circuit.Wire{}
		for i, in := range g.Inputs {
			vars[in/2] = shared[i]
		}
		for _, gate := range g.Ands {
			x, err := wireOf(b, vars, gate.RHS0)
			if err != nil {
				return nil, err
			}
			y, err := wireOf(b, vars, gate.RHS1)
			if err != nil {
				return nil, err
			}
			vars[gate.LHS/2] = b.And(x, y)
		}
		outs := make([]circuit.Wire, len(g.Outputs))
		for i, o := range g.Outputs {
			w, err := wireOf(b, vars, o)
			if err != nil {
				return nil, err
			}
			outs[i] = w
		}
		return outs, nil
	}

	outsA, err := instantiate(a)
	if err != nil {
		return nil, err
	}
	b.ClearCache() // the copy must not share structure with the original
	outsB, err := instantiate(bb)
	if err != nil {
		return nil, err
	}
	diff := b.False()
	for i := range outsA {
		diff = b.Or(diff, b.Xor(outsA[i], outsB[i]))
	}
	b.Assert(diff)
	return b.Formula(), nil
}

// FromCircuitSpec renders a gen-style layered random circuit as an AIG for
// testing and demos: op codes 'A' (and), 'O' (or, as ¬(¬x∧¬y)), 'X' (xor,
// expanded into three and-gates).
func FromCircuitSpec(inputs int, build func(addAnd func(x, y int) int, inputLits []int) []int) *AIG {
	g := &AIG{}
	next := 1
	inputLits := make([]int, inputs)
	for i := range inputLits {
		inputLits[i] = 2 * next
		g.Inputs = append(g.Inputs, 2*next)
		next++
	}
	addAnd := func(x, y int) int {
		lhs := 2 * next
		next++
		g.Ands = append(g.Ands, And{LHS: lhs, RHS0: x, RHS1: y})
		return lhs
	}
	g.Outputs = build(addAnd, inputLits)
	g.MaxVar = next - 1
	return g
}
