package aiger

import (
	"fmt"

	"neuroselect/internal/circuit"
	"neuroselect/internal/cnf"
)

// Unroller stamps time-frame copies of a transition AIG into CNF for
// bounded model checking. The AIG plays the transition relation: its first
// stateBits inputs are the current-state bits, the remaining inputs are
// free (chosen by the adversary each step), and its stateBits outputs are
// the next-state bits. Each Step emits only the clauses of that frame, so
// the caller can feed them to an incremental solver as a delta instead of
// re-encoding the whole unrolling: deepening a BMC query then costs one
// frame of clauses, not k.
type Unroller struct {
	tmpl      *cnf.Formula
	outs      []circuit.Wire
	stateBits int
	nIn       int
	state     []cnf.Lit
	nextVar   int
	depth     int
}

// NewUnroller prepares the transition template. The template CNF is built
// once via ToCNF; Step renames its variables per frame.
func NewUnroller(g *AIG, stateBits int) (*Unroller, error) {
	if stateBits <= 0 || stateBits > len(g.Inputs) {
		return nil, fmt.Errorf("aiger: %d state bits out of range for %d inputs", stateBits, len(g.Inputs))
	}
	if len(g.Outputs) != stateBits {
		return nil, fmt.Errorf("aiger: transition AIG has %d outputs, want %d next-state bits", len(g.Outputs), stateBits)
	}
	tmpl, outs, err := g.ToCNF()
	if err != nil {
		return nil, err
	}
	return &Unroller{tmpl: tmpl, outs: outs, stateBits: stateBits, nIn: len(g.Inputs)}, nil
}

// Init allocates the frame-0 state variables and returns the unit clauses
// pinning them to the initial value (little-endian). It must be called once
// before the first Step.
func (u *Unroller) Init(init uint64) []cnf.Clause {
	u.state = make([]cnf.Lit, u.stateBits)
	cls := make([]cnf.Clause, u.stateBits)
	for b := range u.state {
		u.nextVar++
		v := cnf.Lit(u.nextVar)
		u.state[b] = v
		if init&(1<<uint(b)) != 0 {
			cls[b] = cnf.Clause{v}
		} else {
			cls[b] = cnf.Clause{-v}
		}
	}
	u.depth = 0
	return cls
}

// Step stamps one copy of the transition relation: state inputs bind to the
// current state literals, every other template variable gets a fresh global
// number. It returns the frame's clauses and the frame's free-input
// literals, and advances the current state to the mapped output wires.
func (u *Unroller) Step() (clauses []cnf.Clause, free []cnf.Lit) {
	m := make([]cnf.Lit, u.tmpl.NumVars+1)
	for b := 0; b < u.stateBits; b++ {
		m[b+1] = u.state[b]
	}
	free = make([]cnf.Lit, 0, u.nIn-u.stateBits)
	for i := u.stateBits; i < u.nIn; i++ {
		u.nextVar++
		m[i+1] = cnf.Lit(u.nextVar)
		free = append(free, m[i+1])
	}
	for v := u.nIn + 1; v <= u.tmpl.NumVars; v++ {
		u.nextVar++
		m[v] = cnf.Lit(u.nextVar)
	}
	rename := func(l cnf.Lit) cnf.Lit {
		ml := m[l.Var()]
		if l < 0 {
			return -ml
		}
		return ml
	}
	clauses = make([]cnf.Clause, len(u.tmpl.Clauses))
	for i, c := range u.tmpl.Clauses {
		mc := make(cnf.Clause, len(c))
		for j, l := range c {
			mc[j] = rename(l)
		}
		clauses[i] = mc
	}
	next := make([]cnf.Lit, u.stateBits)
	for b, w := range u.outs {
		next[b] = rename(cnf.Lit(w))
	}
	u.state = next
	u.depth++
	return clauses, free
}

// State returns the current-state literals (frame u.Depth()).
func (u *Unroller) State() []cnf.Lit { return u.state }

// StateEquals returns assumption literals asserting the current state holds
// the given value (little-endian).
func (u *Unroller) StateEquals(value uint64) []cnf.Lit {
	as := make([]cnf.Lit, u.stateBits)
	for b, l := range u.state {
		if value&(1<<uint(b)) != 0 {
			as[b] = l
		} else {
			as[b] = -l
		}
	}
	return as
}

// Depth returns the number of steps stamped so far.
func (u *Unroller) Depth() int { return u.depth }

// NumVars returns the highest global variable allocated so far.
func (u *Unroller) NumVars() int { return u.nextVar }

// CounterAIG builds the transition relation of a width-bit counter that
// adds 1 or 2 each step, the choice driven by one free input: inputs are
// the width state bits followed by the free bit, outputs the next state.
// It is the sequential twin of gen.BMCCounter's monolithic encoding and the
// standard workload for the incremental-unrolling benchmarks: after k steps
// the reachable values from 0 are exactly [k, 2k] (modulo wraparound), so
// state==2k+1 is a true invariant to refute-check at every depth.
func CounterAIG(width int) *AIG {
	return FromCircuitSpec(width+1, func(addAnd func(x, y int) int, in []int) []int {
		not := func(x int) int { return x ^ 1 }
		and := func(x, y int) int {
			// Constant folding keeps gates with 0/1 legs out of the AIG;
			// the builder would fold them anyway, this keeps the file tidy.
			switch {
			case x == 0 || y == 0:
				return 0
			case x == 1:
				return y
			case y == 1:
				return x
			}
			return addAnd(x, y)
		}
		or := func(x, y int) int { return not(and(not(x), not(y))) }
		xor := func(x, y int) int { return or(and(x, not(y)), and(not(x), y)) }
		state := in[:width]
		freeIn := in[width]
		// Addend is (free ? 2 : 1): bit 0 = ¬free, bit 1 = free, rest 0.
		addend := make([]int, width)
		for b := range addend {
			addend[b] = 0
		}
		addend[0] = not(freeIn)
		if width > 1 {
			addend[1] = freeIn
		}
		outs := make([]int, width)
		carry := 0
		for b := 0; b < width; b++ {
			s1 := xor(state[b], addend[b])
			outs[b] = xor(s1, carry)
			carry = or(and(state[b], addend[b]), and(s1, carry))
		}
		return outs
	})
}
