package baselines

import (
	"fmt"
	"math/rand"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/cnf"
	"neuroselect/internal/nn"
	"neuroselect/internal/satgraph"
	"neuroselect/internal/tensor"
)

// onesCol returns an n×1 all-ones matrix, used to broadcast scalar
// parameters across rows.
func onesCol(n int) *tensor.Matrix {
	m := tensor.New(n, 1)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}

// GIN is a Graph Isomorphism Network classifier over the variable–clause
// graph, following the configuration G4SATBench uses for satisfiability-
// style prediction tasks: sum aggregation over signed edges, a learnable
// epsilon self-weight, and a two-layer MLP per GIN layer, with a mean
// readout over variable nodes.
type GIN struct {
	Hidden int
	Layers int
	Params *nn.Params

	eps  []*nn.Param
	mlps []*nn.MLP
	head *nn.MLP
}

// NewGIN constructs the baseline with the given hidden size and layer
// count.
func NewGIN(hidden, layers int, seed int64) *GIN {
	rng := rand.New(rand.NewSource(seed))
	p := nn.NewParams()
	m := &GIN{Hidden: hidden, Layers: layers, Params: p}
	for l := 0; l < layers; l++ {
		m.eps = append(m.eps, p.New(fmt.Sprintf("gin%d.eps", l), 1, 1, "zero", rng))
		m.mlps = append(m.mlps, nn.NewMLP(p, fmt.Sprintf("gin%d.mlp", l), []int{hidden, hidden, hidden}, rng))
	}
	m.head = nn.NewMLP(p, "head", []int{hidden, hidden, 1}, rng)
	return m
}

// Logit runs the forward pass for one variable–clause graph.
func (m *GIN) Logit(t *autodiff.Tape, g *satgraph.VCG) *autodiff.Value {
	x := t.Leaf(g.InitialFeatures(m.Hidden))
	for l := 0; l < m.Layers; l++ {
		agg := t.SpMM(g.AdjRaw, x) // sum aggregation with signed weights
		epsV := m.Params.V(m.eps[l])
		// (1+eps)·h_v + Σ h_u, with eps broadcast as a scalar.
		selfScaled := t.Add(x, t.RowScale(x, t.MatMul(t.Leaf(onesCol(x.M.Rows)), epsV)))
		x = t.ReLU(m.mlps[l].Apply(m.Params, t, t.Add(selfScaled, agg)))
	}
	vars := t.SliceRows(x, 0, g.NumVars)
	return m.head.Apply(m.Params, t, t.RowMean(vars))
}

// Predict returns the probability of label 1 for the formula.
func (m *GIN) Predict(f *cnf.Formula) float64 {
	g := satgraph.BuildVCG(f)
	t := autodiff.NewTape()
	m.Params.Bind(t)
	return sigmoid(m.Logit(t, g).M.Data[0])
}

// Name implements the Table 2 classifier interface.
func (m *GIN) Name() string { return "G4SATBench (GIN)" }

// Fit trains the classifier on labeled formulas with Adam + BCE, batch
// size 1.
func (m *GIN) Fit(fs []*cnf.Formula, labels []int, epochs int, lr float64, seed int64) float64 {
	graphs := make([]*satgraph.VCG, len(fs))
	for i, f := range fs {
		graphs[i] = satgraph.BuildVCG(f)
	}
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(lr)
	order := make([]int, len(fs))
	for i := range order {
		order[i] = i
	}
	last := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, i := range order {
			t := autodiff.NewTape()
			m.Params.Bind(t)
			loss := t.BCEWithLogits(m.Logit(t, graphs[i]), float64(labels[i]))
			t.Backward(loss)
			opt.Step(m.Params)
			total += loss.M.Data[0]
		}
		last = total / float64(len(fs))
	}
	return last
}
