package baselines

import (
	"math"
	"math/rand"
	"sort"

	"neuroselect/internal/cnf"
)

// Logistic is a feature-engineered logistic-regression baseline: instead of
// learning a graph representation it classifies hand-crafted structural
// statistics of the CNF. It is not part of the paper's Table 2 but serves
// as the classical-ML reference point in the extension experiments — if a
// GNN cannot beat 14 summary statistics, its graph encoding adds nothing.
type Logistic struct {
	w    []float64
	b    float64
	mean []float64
	std  []float64
}

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = 14

// Features extracts the structural statistics of a formula: problem size,
// clause-length distribution, variable-occurrence distribution, polarity
// balance, and the clause/variable ratio band around the random-3SAT phase
// transition.
func Features(f *cnf.Formula) []float64 {
	st := cnf.ComputeStats(f)
	feats := make([]float64, NumFeatures)
	n := float64(st.NumVars)
	m := float64(st.NumClauses)
	if n == 0 || m == 0 {
		return feats
	}
	feats[0] = math.Log1p(n)
	feats[1] = math.Log1p(m)
	feats[2] = m / n
	feats[3] = st.MeanClause
	feats[4] = float64(st.MinClauseLen)
	feats[5] = float64(st.MaxClauseLen)
	// Clause-length histogram shares for lengths 1..3 and long clauses.
	feats[6] = float64(st.ClauseLenHist[1]) / m
	feats[7] = float64(st.ClauseLenHist[2]) / m
	feats[8] = float64(st.ClauseLenHist[3]) / m
	long := 0
	for k := 8; k < len(st.ClauseLenHist); k++ {
		long += st.ClauseLenHist[k]
	}
	feats[9] = float64(long) / m
	// Variable-occurrence distribution: mean, coefficient of variation,
	// max share, and Gini-style top-decile share.
	occ := append([]int(nil), st.VarOccurrences[1:]...)
	sort.Ints(occ)
	total := 0.0
	for _, o := range occ {
		total += float64(o)
	}
	meanOcc := total / n
	varOcc := 0.0
	for _, o := range occ {
		d := float64(o) - meanOcc
		varOcc += d * d
	}
	feats[10] = meanOcc
	if meanOcc > 0 {
		feats[11] = math.Sqrt(varOcc/n) / meanOcc
	}
	if total > 0 {
		feats[12] = float64(occ[len(occ)-1]) / total
		topDecile := 0.0
		for i := len(occ) - (len(occ)+9)/10; i < len(occ); i++ {
			topDecile += float64(occ[i])
		}
		feats[13] = topDecile / total
	}
	return feats
}

// NewLogistic returns an untrained model.
func NewLogistic() *Logistic {
	return &Logistic{w: make([]float64, NumFeatures)}
}

// Fit trains by gradient descent on BCE with feature standardization.
func (l *Logistic) Fit(fs []*cnf.Formula, labels []int, epochs int, lr float64, seed int64) float64 {
	X := make([][]float64, len(fs))
	for i, f := range fs {
		X[i] = Features(f)
	}
	l.standardize(X)
	for i := range X {
		X[i] = l.apply(X[i])
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(X))
	last := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, i := range order {
			p := l.prob(X[i])
			y := float64(labels[i])
			// BCE gradient: (p − y)·x
			g := p - y
			for j, x := range X[i] {
				l.w[j] -= lr * g * x
			}
			l.b -= lr * g
			total += bce(p, y)
		}
		last = total / float64(len(X))
	}
	return last
}

// standardize fits per-feature mean/std from the training matrix.
func (l *Logistic) standardize(X [][]float64) {
	l.mean = make([]float64, NumFeatures)
	l.std = make([]float64, NumFeatures)
	n := float64(len(X))
	if n == 0 {
		for j := range l.std {
			l.std[j] = 1
		}
		return
	}
	for _, row := range X {
		for j, v := range row {
			l.mean[j] += v
		}
	}
	for j := range l.mean {
		l.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - l.mean[j]
			l.std[j] += d * d
		}
	}
	for j := range l.std {
		l.std[j] = math.Sqrt(l.std[j] / n)
		if l.std[j] < 1e-9 {
			l.std[j] = 1
		}
	}
}

func (l *Logistic) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - l.mean[j]) / l.std[j]
	}
	return out
}

func (l *Logistic) prob(x []float64) float64 {
	z := l.b
	for j, v := range x {
		z += l.w[j] * v
	}
	return sigmoid(z)
}

// Predict returns the probability of label 1.
func (l *Logistic) Predict(f *cnf.Formula) float64 {
	if l.mean == nil {
		return 0.5
	}
	return l.prob(l.apply(Features(f)))
}

// Name implements the classifier naming convention.
func (l *Logistic) Name() string { return "Logistic (14 features)" }

func bce(p, y float64) float64 {
	const eps = 1e-12
	return -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
}
