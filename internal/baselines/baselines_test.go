package baselines

import (
	"math"
	"testing"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/satgraph"
)

func tinyFormula() *cnf.Formula {
	f := cnf.New(3)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-2, 3)
	f.MustAddClause(1, 3)
	return f
}

func TestNeuroSATForward(t *testing.T) {
	m := NewNeuroSAT(8, 3, 1)
	p := m.Predict(tinyFormula())
	if p <= 0 || p >= 1 {
		t.Fatalf("probability %v", p)
	}
	if m.Predict(tinyFormula()) != p {
		t.Fatal("inference not deterministic")
	}
	if m.Name() != "NeuroSAT" {
		t.Fatal("name")
	}
}

func TestNeuroSATGradientsFlow(t *testing.T) {
	m := NewNeuroSAT(6, 2, 2)
	g := satgraph.BuildLCG(gen.RandomKSAT(10, 30, 3, 1).F)
	tp := autodiff.NewTape()
	m.Params.Bind(tp)
	loss := tp.BCEWithLogits(m.Logit(tp, g), 1)
	tp.Backward(loss)
	if n := m.Params.GradNorm(); n == 0 || math.IsNaN(n) {
		t.Fatalf("grad norm %v", n)
	}
}

func TestNeuroSATFitsSeparableTask(t *testing.T) {
	var fs []*cnf.Formula
	var labels []int
	for s := int64(0); s < 6; s++ {
		fs = append(fs, gen.RandomKSAT(20, 85, 3, s).F)
		labels = append(labels, 0)
		fs = append(fs, gen.GraphColoring(6, 12, 3, s).F)
		labels = append(labels, 1)
	}
	m := NewNeuroSAT(8, 2, 3)
	last := m.Fit(fs, labels, 30, 1e-2, 1)
	if math.IsNaN(last) {
		t.Fatal("training diverged")
	}
	correct := 0
	for i, f := range fs {
		if (m.Predict(f) >= 0.5) == (labels[i] == 1) {
			correct++
		}
	}
	if correct < len(fs)*3/4 {
		t.Fatalf("NeuroSAT separable accuracy %d/%d", correct, len(fs))
	}
}

func TestNeuroSATFlipIsUsed(t *testing.T) {
	// Flipping the polarity of every literal of one variable changes the
	// LCG and must generally change the prediction (polarity awareness via
	// the flip path).
	m := NewNeuroSAT(8, 3, 4)
	f1 := cnf.New(2)
	f1.MustAddClause(1, 2)
	f1.MustAddClause(1, -2)
	f2 := cnf.New(2)
	f2.MustAddClause(-1, 2)
	f2.MustAddClause(1, -2)
	if m.Predict(f1) == m.Predict(f2) {
		t.Fatal("polarity change had no effect")
	}
}

func TestGINForward(t *testing.T) {
	m := NewGIN(8, 2, 1)
	p := m.Predict(tinyFormula())
	if p <= 0 || p >= 1 {
		t.Fatalf("probability %v", p)
	}
	if m.Name() == "" {
		t.Fatal("name")
	}
}

func TestGINGradientsFlow(t *testing.T) {
	m := NewGIN(6, 2, 2)
	g := satgraph.BuildVCG(gen.RandomKSAT(10, 30, 3, 1).F)
	tp := autodiff.NewTape()
	m.Params.Bind(tp)
	loss := tp.BCEWithLogits(m.Logit(tp, g), 0)
	tp.Backward(loss)
	if n := m.Params.GradNorm(); n == 0 || math.IsNaN(n) {
		t.Fatalf("grad norm %v", n)
	}
	// Epsilon parameters must receive gradient too.
	found := false
	for _, eps := range m.eps {
		if g := m.Params.V(eps).Grad(); g != nil && g.Data[0] != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no gradient reached any epsilon parameter")
	}
}

func TestGINFitsSeparableTask(t *testing.T) {
	var fs []*cnf.Formula
	var labels []int
	for s := int64(0); s < 6; s++ {
		fs = append(fs, gen.RandomKSAT(20, 85, 3, s).F)
		labels = append(labels, 0)
		fs = append(fs, gen.GraphColoring(6, 12, 3, s).F)
		labels = append(labels, 1)
	}
	m := NewGIN(8, 2, 5)
	m.Fit(fs, labels, 10, 5e-3, 1)
	correct := 0
	for i, f := range fs {
		if (m.Predict(f) >= 0.5) == (labels[i] == 1) {
			correct++
		}
	}
	if correct < len(fs)*3/4 {
		t.Fatalf("GIN separable accuracy %d/%d", correct, len(fs))
	}
}

func TestLogisticFeaturesShapeAndDeterminism(t *testing.T) {
	f := gen.RandomKSAT(50, 210, 3, 1).F
	a := Features(f)
	b := Features(f)
	if len(a) != NumFeatures {
		t.Fatalf("features = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features not deterministic")
		}
	}
	if a[2] < 4.1 || a[2] > 4.3 {
		t.Fatalf("clause/var ratio feature = %v", a[2])
	}
	empty := Features(gen.RandomKSAT(1, 0, 1, 1).F)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty formula must featurize to zeros")
		}
	}
}

func TestLogisticFitsSeparableTask(t *testing.T) {
	var fs []*cnf.Formula
	var labels []int
	for s := int64(0); s < 10; s++ {
		fs = append(fs, gen.RandomKSAT(30, 126, 3, s).F)
		labels = append(labels, 0)
		fs = append(fs, gen.GraphColoring(8, 18, 3, s).F)
		labels = append(labels, 1)
	}
	m := NewLogistic()
	m.Fit(fs, labels, 60, 0.1, 1)
	correct := 0
	for i, f := range fs {
		if (m.Predict(f) >= 0.5) == (labels[i] == 1) {
			correct++
		}
	}
	if correct < len(fs)*9/10 {
		t.Fatalf("logistic separable accuracy %d/%d", correct, len(fs))
	}
}

func TestLogisticUntrainedIsNeutral(t *testing.T) {
	m := NewLogistic()
	if p := m.Predict(gen.RandomKSAT(10, 40, 3, 1).F); p != 0.5 {
		t.Fatalf("untrained prediction %v", p)
	}
}

func TestNeuroSATGRUVariant(t *testing.T) {
	m := NewNeuroSATGRU(8, 3, 1)
	p := m.Predict(tinyFormula())
	if p <= 0 || p >= 1 {
		t.Fatalf("probability %v", p)
	}
	var fs []*cnf.Formula
	var labels []int
	for s := int64(0); s < 6; s++ {
		fs = append(fs, gen.RandomKSAT(20, 85, 3, s).F)
		labels = append(labels, 0)
		fs = append(fs, gen.GraphColoring(6, 12, 3, s).F)
		labels = append(labels, 1)
	}
	m.Fit(fs, labels, 30, 1e-2, 1)
	correct := 0
	for i, f := range fs {
		if (m.Predict(f) >= 0.5) == (labels[i] == 1) {
			correct++
		}
	}
	if correct < len(fs)*3/4 {
		t.Fatalf("GRU NeuroSAT separable accuracy %d/%d", correct, len(fs))
	}
}
