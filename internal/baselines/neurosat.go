// Package baselines implements the two classifier baselines the paper
// compares against in Table 2: a NeuroSAT-style network over the
// literal–clause graph with LSTM message passing, and a GIN
// (G4SATBench-style) over the variable–clause graph with sum aggregation.
package baselines

import (
	"math"
	"math/rand"

	"neuroselect/internal/autodiff"
	"neuroselect/internal/cnf"
	"neuroselect/internal/nn"
	"neuroselect/internal/satgraph"
	"neuroselect/internal/tensor"
)

// NeuroSAT is a compact reimplementation of the NeuroSAT architecture
// (Selsam et al., ICLR 2019) repurposed as a binary classifier: literal and
// clause nodes carry LSTM states refined by alternating rounds of
// literal→clause and clause→literal message passing, with the complementary
// literal's state concatenated into each literal update ("flip"). A mean
// readout over literal states feeds an MLP head.
type NeuroSAT struct {
	Hidden int
	Rounds int
	// UseGRU switches the recurrent cells from LSTM (the original
	// NeuroSAT) to GRU, an ablation axis over the update unit.
	UseGRU bool
	Params *nn.Params

	litInit, clInit *nn.Param
	litMsg, clMsg   *nn.Linear
	litLSTM, clLSTM *nn.LSTMCell
	litGRU, clGRU   *nn.GRUCell
	head            *nn.MLP
}

// NewNeuroSAT constructs the baseline with the given hidden size and
// message-passing rounds, using LSTM update cells as in the original.
func NewNeuroSAT(hidden, rounds int, seed int64) *NeuroSAT {
	return newNeuroSAT(hidden, rounds, seed, false)
}

// NewNeuroSATGRU constructs the GRU-cell variant.
func NewNeuroSATGRU(hidden, rounds int, seed int64) *NeuroSAT {
	return newNeuroSAT(hidden, rounds, seed, true)
}

func newNeuroSAT(hidden, rounds int, seed int64, gru bool) *NeuroSAT {
	rng := rand.New(rand.NewSource(seed))
	p := nn.NewParams()
	m := &NeuroSAT{Hidden: hidden, Rounds: rounds, UseGRU: gru, Params: p}
	m.litInit = p.New("lit_init", 1, hidden, "xavier", rng)
	m.clInit = p.New("cl_init", 1, hidden, "xavier", rng)
	m.litMsg = nn.NewLinear(p, "lit_msg", hidden, hidden, rng)
	m.clMsg = nn.NewLinear(p, "cl_msg", hidden, hidden, rng)
	// Literal update sees [clause message | flipped literal state].
	if gru {
		m.litGRU = nn.NewGRUCell(p, "lit_gru", 2*hidden, hidden, rng)
		m.clGRU = nn.NewGRUCell(p, "cl_gru", hidden, hidden, rng)
	} else {
		m.litLSTM = nn.NewLSTMCell(p, "lit_lstm", 2*hidden, hidden, rng)
		m.clLSTM = nn.NewLSTMCell(p, "cl_lstm", hidden, hidden, rng)
	}
	m.head = nn.NewMLP(p, "head", []int{hidden, hidden, 1}, rng)
	return m
}

// Logit runs the forward pass for one literal–clause graph.
func (m *NeuroSAT) Logit(t *autodiff.Tape, g *satgraph.LCG) *autodiff.Value {
	nLits := 2 * g.NumVars
	zeroL := t.Leaf(tensor.New(nLits, m.Hidden))
	zeroC := t.Leaf(tensor.New(g.NumClauses, m.Hidden))
	litH := t.AddRowBroadcast(zeroL, m.Params.V(m.litInit))
	litC := zeroL
	clH := t.AddRowBroadcast(zeroC, m.Params.V(m.clInit))
	clC := zeroC

	flip := make([]int, nLits)
	for i := range flip {
		flip[i] = satgraph.FlipIndex(i)
	}
	for r := 0; r < m.Rounds; r++ {
		// Literals → clauses.
		cMsg := t.SpMM(g.LitToClause, m.litMsg.Apply(m.Params, t, litH))
		if m.UseGRU {
			clH = m.clGRU.Apply(m.Params, t, cMsg, clH)
		} else {
			clH, clC = m.clLSTM.Apply(m.Params, t, cMsg, clH, clC)
		}
		// Clauses → literals, with the complementary literal's state.
		lMsg := t.SpMM(g.ClauseToLit, m.clMsg.Apply(m.Params, t, clH))
		flipped := t.PermuteRows(litH, flip)
		litIn := t.ConcatCols(lMsg, flipped)
		if m.UseGRU {
			litH = m.litGRU.Apply(m.Params, t, litIn, litH)
		} else {
			litH, litC = m.litLSTM.Apply(m.Params, t, litIn, litH, litC)
		}
	}
	return m.head.Apply(m.Params, t, t.RowMean(litH))
}

// Predict returns the probability of label 1 for the formula.
func (m *NeuroSAT) Predict(f *cnf.Formula) float64 {
	g := satgraph.BuildLCG(f)
	t := autodiff.NewTape()
	m.Params.Bind(t)
	return sigmoid(m.Logit(t, g).M.Data[0])
}

// Name implements the Table 2 classifier interface.
func (m *NeuroSAT) Name() string { return "NeuroSAT" }

// Fit trains the classifier on labeled formulas with Adam + BCE, batch
// size 1.
func (m *NeuroSAT) Fit(fs []*cnf.Formula, labels []int, epochs int, lr float64, seed int64) float64 {
	graphs := make([]*satgraph.LCG, len(fs))
	for i, f := range fs {
		graphs[i] = satgraph.BuildLCG(f)
	}
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(lr)
	order := make([]int, len(fs))
	for i := range order {
		order[i] = i
	}
	last := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, i := range order {
			t := autodiff.NewTape()
			m.Params.Bind(t)
			loss := t.BCEWithLogits(m.Logit(t, graphs[i]), float64(labels[i]))
			t.Backward(loss)
			opt.Step(m.Params)
			total += loss.M.Data[0]
		}
		last = total / float64(len(fs))
	}
	return last
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
