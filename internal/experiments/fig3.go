package experiments

import (
	"fmt"
	"sort"
	"strings"

	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// Fig3Result reproduces Figure 3: the distribution of per-variable
// propagation frequencies while solving one instance. The paper plots one
// SAT Competition 2022 instance; we use a structured instance from the
// generator pool.
type Fig3Result struct {
	Instance string
	// Freqs[v] is the cumulative number of BCP assignments of variable v
	// (index 0 unused).
	Freqs []uint64
	// Deciles are the 0%,10%,…,100% quantiles of the distribution.
	Deciles []uint64
	// TopShare is the fraction of all propagations carried by the top 10%
	// most-propagated variables — the skew the paper's Figure 3
	// illustrates.
	TopShare float64
	// AboveAlphaFrac is the fraction of variables whose frequency exceeds
	// α·f_max with the paper's α = 4/5 (the Eq. 2 criterion support).
	AboveAlphaFrac float64
}

// Fig3 solves one representative instance with frequency tracking enabled
// and summarizes the distribution. A Tseitin instance is used because its
// propagation profile shows the pronounced skew the paper's Figure 3
// illustrates (a small fraction of variables carries a large share of all
// BCP assignments).
func (r *Runner) Fig3() (Fig3Result, error) {
	inst := gen.Tseitin(34, 3, false, 2022)
	s, err := solver.New(inst.F, dataset.SolveOptions(deletion.DefaultPolicy{}, r.Scale.ScatterBudget))
	if err != nil {
		return Fig3Result{}, err
	}
	s.Solve()
	freqs := s.PropagationFrequencies()
	return summarizeFreqs(inst.Name, freqs), nil
}

func summarizeFreqs(name string, freqs []uint64) Fig3Result {
	res := Fig3Result{Instance: name, Freqs: freqs}
	vals := append([]uint64(nil), freqs[1:]...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	n := len(vals)
	if n == 0 {
		return res
	}
	for d := 0; d <= 10; d++ {
		idx := d * (n - 1) / 10
		res.Deciles = append(res.Deciles, vals[idx])
	}
	var total, top uint64
	for _, v := range vals {
		total += v
	}
	topCount := (n + 9) / 10
	for _, v := range vals[n-topCount:] {
		top += v
	}
	if total > 0 {
		res.TopShare = float64(top) / float64(total)
	}
	fmax := vals[n-1]
	if fmax > 0 {
		above := 0
		for _, v := range vals {
			if float64(v) > deletion.DefaultAlpha*float64(fmax) {
				above++
			}
		}
		res.AboveAlphaFrac = float64(above) / float64(n)
	}
	return res
}

// Render prints the decile table and an ASCII histogram of the
// distribution.
func (f Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — propagation-frequency distribution on %s\n", f.Instance)
	fmt.Fprintf(&sb, "  variables: %d, top-10%% variables carry %.1f%% of propagations\n",
		len(f.Freqs)-1, 100*f.TopShare)
	fmt.Fprintf(&sb, "  fraction of variables above α·f_max (α=4/5): %.2f%%\n", 100*f.AboveAlphaFrac)
	fmt.Fprintf(&sb, "  decile  frequency\n")
	for d, v := range f.Deciles {
		bar := strings.Repeat("#", scaleBar(v, f.Deciles[len(f.Deciles)-1], 50))
		fmt.Fprintf(&sb, "  %4d%%  %8d %s\n", d*10, v, bar)
	}
	return sb.String()
}

func scaleBar(v, max uint64, width int) int {
	if max == 0 {
		return 0
	}
	return int(uint64(width) * v / max)
}
