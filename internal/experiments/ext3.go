package experiments

import (
	"context"
	"fmt"
	"strings"

	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// AlphaSweepResult probes the Eq. 2 threshold factor α, which the paper
// fixes at 4/5 "according to our empirical studies". For each α the
// frequency policy relabels the corpus; the table reports how often it
// beats the default policy (≥2% fewer propagations) and the mean relative
// change, reproducing the kind of sweep behind the paper's choice.
type AlphaSweepResult struct {
	Alphas []float64
	// WinRate[i] is the fraction of diverging instances the α-variant wins.
	WinRate []float64
	// MeanGain[i] is the mean relative propagation change vs default.
	MeanGain []float64
	// Diverged[i] counts instances whose runs differ at all.
	Diverged  []int
	Instances int
}

// AlphaSweep relabels the corpus under several α values, sharding the
// α×instance grid across the sweep engine.
func (r *Runner) AlphaSweep() (AlphaSweepResult, error) {
	c, err := r.Corpus()
	if err != nil {
		return AlphaSweepResult{}, err
	}
	items := append(c.All(), c.Test.Items...)
	res := AlphaSweepResult{Alphas: []float64{0.5, 0.7, 0.8, 0.9}}
	res.Instances = len(items)
	cells, errs := sweepCells(r, "ext-alpha", len(res.Alphas)*len(items),
		func(ctx context.Context, i int) (solver.Result, error) {
			opts := dataset.SolveOptions(deletion.FrequencyPolicy{}, r.Scale.ScatterBudget)
			opts.Alpha = res.Alphas[i/len(items)]
			return solver.SolveContext(ctx, items[i%len(items)].Inst.F, opts)
		})
	if err := sweep.FirstError(errs); err != nil {
		return AlphaSweepResult{}, err
	}
	for a := range res.Alphas {
		wins, diverged := 0, 0
		gain := 0.0
		n := 0
		for j, it := range items {
			fres := cells[a*len(items)+j]
			if fres.Status == solver.Unknown && !it.SolvedBoth {
				continue
			}
			n++
			def := float64(it.PropsDefault)
			freq := float64(fres.Stats.Propagations)
			if freq != def {
				diverged++
			}
			if def > 0 {
				gain += (def - freq) / def
			}
			if freq <= 0.98*def {
				wins++
			}
		}
		if n == 0 {
			n = 1
		}
		res.WinRate = append(res.WinRate, float64(wins)/float64(n))
		res.MeanGain = append(res.MeanGain, gain/float64(n))
		res.Diverged = append(res.Diverged, diverged)
	}
	return res, nil
}

// Render prints the α sweep.
func (a AlphaSweepResult) Render() string {
	rows := make([][]string, 0, len(a.Alphas))
	for i, alpha := range a.Alphas {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%d", a.Diverged[i]),
			fmt.Sprintf("%.1f%%", 100*a.WinRate[i]),
			fmt.Sprintf("%+.2f%%", 100*a.MeanGain[i]),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension — Eq. 2 α sweep over %d instances (paper fixes α=4/5)\n", a.Instances)
	sb.WriteString(table([]string{"alpha", "diverged", "win rate (≥2%)", "mean gain"}, rows))
	return sb.String()
}
