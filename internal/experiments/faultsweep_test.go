package experiments

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"neuroselect/internal/faultpoint"
)

// waitGoroutines fails the test if the goroutine count has not returned to
// its pre-sweep baseline — the drain guarantee under injected faults.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak after fault sweep: %d before, %d after", before, runtime.NumGoroutine())
}

// TestFaultSweepSerialIdentifiesInjectedCells pins down exactly which cells
// an armed experiments.instance fault hits: with one worker, cells are
// pulled in index order, so Skip/Times windows map to known instances.
// Cells 0..2n-1 alternate kissat (even) / neuroselect (odd) per instance;
// Skip:3 Times:2 fires on cells 3 and 4 — instance 1's neuroselect half
// and instance 2's kissat half.
func TestFaultSweepSerialIdentifiesInjectedCells(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.ExperimentInstance,
		faultpoint.Fault{Err: errors.New("injected"), Skip: 3, Times: 2})
	r := quickRunner()
	r.Workers = 1
	// Build corpus and selector before the sweep so the armed site only
	// sees Fig7 cells.
	c, err := r.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Selector(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Fig7()
	if err != nil {
		t.Fatalf("injected cell faults must not abort the sweep: %v", err)
	}
	want := []string{c.Test.Items[1].Inst.Name, c.Test.Items[2].Inst.Name}
	if len(res.Failures) != len(want) {
		t.Fatalf("want failure rows for %v, got %v", want, res.Failures)
	}
	for i, name := range want {
		if res.Failures[i].Name != name {
			t.Fatalf("failure row %d: want instance %q, got %+v", i, name, res.Failures[i])
		}
	}
	// All other instances completed.
	if got, want := len(res.InferenceMS), r.Scale.Corpus.TestSize-2; got != want {
		t.Fatalf("want %d surviving instances, got %d", want, got)
	}
}

// TestFaultSweepParallelContainsInjectedCells arms error and panic faults
// mid-sweep with four workers: exactly the injected number of cells fail
// (whichever workers draw them), every other cell completes, the counters
// agree with the outcome, and no goroutines leak.
func TestFaultSweepParallelContainsInjectedCells(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	r := quickRunner()
	r.Workers = 4
	c, err := r.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Selector(); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	const injected = 3
	faultpoint.Arm(faultpoint.ExperimentInstance,
		faultpoint.Fault{PanicValue: "injected corruption", Skip: 1, Times: injected})
	res, err := r.Fig7()
	if err != nil {
		t.Fatalf("injected cell faults must not abort the sweep: %v", err)
	}
	totalCells := len(c.Test.Items) * 2
	if got := r.Sweep.Failed(); got != injected {
		t.Fatalf("counters: failed=%d, want %d", got, injected)
	}
	if got := r.Sweep.Finished(); got != int64(totalCells-injected) {
		t.Fatalf("counters: finished=%d, want %d", got, totalCells-injected)
	}
	if got := r.Sweep.Started(); got != int64(totalCells) {
		t.Fatalf("counters: started=%d, want %d", got, totalCells)
	}
	if got := r.Sweep.QueueDepth(); got != 0 {
		t.Fatalf("counters: queue=%d after drain", got)
	}
	// Two injected cells can share an instance, so rows ∈ [ceil(3/2), 3].
	if len(res.Failures) < 2 || len(res.Failures) > injected {
		t.Fatalf("want 2..%d failure rows, got %v", injected, res.Failures)
	}
	for _, f := range res.Failures {
		if f.Name == "" || f.Err == "" {
			t.Fatalf("failure row must identify instance and cause: %+v", f)
		}
	}
	if got, want := len(res.InferenceMS), r.Scale.Corpus.TestSize-len(res.Failures); got != want {
		t.Fatalf("want %d surviving instances, got %d", want, got)
	}
	waitGoroutines(t, before)
}

// TestFaultSweepReduceEscalation arms the solver.reduce site: the injected
// reduce error escalates to a panic inside the solver, SolveContext
// contains it, and the sweep records exactly one failure row while the
// clause-database reduction path is provably exercised.
func TestFaultSweepReduceEscalation(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	r := quickRunner()
	r.Workers = 4
	if _, err := r.Corpus(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Selector(); err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.SolverReduce,
		faultpoint.Fault{Err: errors.New("reduce invariant"), Times: 1})
	res, err := r.Fig7()
	if err != nil {
		t.Fatalf("a contained reduce panic must not abort the sweep: %v", err)
	}
	if faultpoint.Hits(faultpoint.SolverReduce) == 0 {
		t.Fatal("no sweep cell reached the reduce step; the fault never armed anything")
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want exactly 1 failure row from the reduce fault, got %v", res.Failures)
	}
	if got := r.Sweep.Failed(); got != 1 {
		t.Fatalf("counters: failed=%d, want 1", got)
	}
}
