package experiments

import (
	"context"
	"fmt"
	"strings"

	"neuroselect/internal/dataset"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// ScalingResult is the fourth extension experiment: how the two deletion
// policies diverge as instance size grows. The paper's 5.8% effect is
// measured on industrial instances that run for minutes; this study shows
// the same mechanism strengthening with scale on phase-transition random
// 3-SAT — the quantitative justification for the "substrate-limited
// magnitude" caveat in EXPERIMENTS.md.
type ScalingResult struct {
	Sizes []int
	// MeanProps[i] is the mean default-policy propagation count at size i.
	MeanProps []float64
	// DivergedFrac[i] is the fraction of seeds where the two policies'
	// runs differ at all.
	DivergedFrac []float64
	// MeanAbsRelDelta[i] is the mean |default−frequency|/default over
	// diverged seeds — the magnitude of the policy effect.
	MeanAbsRelDelta []float64
	SeedsPerSize    int
}

// Scaling measures policy divergence across instance sizes, sharding the
// size×seed×policy grid across the sweep engine.
func (r *Runner) Scaling() (ScalingResult, error) {
	res := ScalingResult{
		Sizes:        []int{60, 100, 140, 180, 220},
		SeedsPerSize: 6,
	}
	seeds := res.SeedsPerSize
	cells, errs := sweepCells(r, "ext-scaling", len(res.Sizes)*seeds*len(fig4Policies),
		func(ctx context.Context, i int) (solver.Result, error) {
			n := res.Sizes[i/(seeds*len(fig4Policies))]
			seed := int64(i / len(fig4Policies) % seeds)
			p := fig4Policies[i%len(fig4Policies)]
			inst := gen.RandomKSAT(n, int(4.26*float64(n)), 3, 1000+seed)
			return solver.SolveContext(ctx, inst.F, dataset.SolveOptions(p, r.Scale.ScatterBudget))
		})
	if err := sweep.FirstError(errs); err != nil {
		return ScalingResult{}, err
	}
	for si := range res.Sizes {
		var props, deltaSum float64
		diverged := 0
		counted := 0
		for seed := 0; seed < seeds; seed++ {
			base := si*seeds*len(fig4Policies) + seed*len(fig4Policies)
			d, f := cells[base], cells[base+1]
			if d.Status == solver.Unknown || f.Status == solver.Unknown {
				continue
			}
			counted++
			dp, fp := float64(d.Stats.Propagations), float64(f.Stats.Propagations)
			props += dp
			if dp != fp {
				diverged++
				rel := (dp - fp) / dp
				if rel < 0 {
					rel = -rel
				}
				deltaSum += rel
			}
		}
		if counted == 0 {
			counted = 1
		}
		res.MeanProps = append(res.MeanProps, props/float64(counted))
		res.DivergedFrac = append(res.DivergedFrac, float64(diverged)/float64(counted))
		if diverged > 0 {
			res.MeanAbsRelDelta = append(res.MeanAbsRelDelta, deltaSum/float64(diverged))
		} else {
			res.MeanAbsRelDelta = append(res.MeanAbsRelDelta, 0)
		}
	}
	return res, nil
}

// Render prints the scaling table.
func (s ScalingResult) Render() string {
	rows := make([][]string, 0, len(s.Sizes))
	for i, n := range s.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", s.MeanProps[i]),
			fmt.Sprintf("%.0f%%", 100*s.DivergedFrac[i]),
			fmt.Sprintf("%.1f%%", 100*s.MeanAbsRelDelta[i]),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension — policy divergence vs. instance size (random 3-SAT @4.26, %d seeds/size)\n", s.SeedsPerSize)
	sb.WriteString(table([]string{"vars", "mean props (default)", "diverged", "mean |Δ| when diverged"}, rows))
	sb.WriteString("  divergence and effect magnitude grow with instance size — the mechanism\n")
	sb.WriteString("  behind the paper's industrial-scale 5.8% appearing attenuated at laptop scale\n")
	return sb.String()
}
