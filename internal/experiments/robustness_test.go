package experiments

import (
	"errors"
	"strings"
	"testing"

	"neuroselect/internal/faultpoint"
)

func TestFig7IsolatesFailingInstance(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	// Exactly one sweep cell (whichever worker draws the second hit) fails
	// at the fault point; the run must record its instance as a failure
	// row and produce the figure and table anyway.
	faultpoint.Arm(faultpoint.ExperimentInstance,
		faultpoint.Fault{Err: errors.New("malformed instance"), Skip: 1, Times: 1})
	r := quickRunner()
	res, err := r.Fig7()
	if err != nil {
		t.Fatalf("a single bad instance must not abort the run: %v", err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want exactly 1 failure row, got %v", res.Failures)
	}
	if res.Failures[0].Name == "" || res.Failures[0].Err == "" {
		t.Fatalf("failure row must identify the instance and cause: %+v", res.Failures[0])
	}
	if res.Table3.Kissat.Failed != 1 || res.Table3.NeuroSelect.Failed != 1 {
		t.Fatalf("summaries must count the failed instance: %+v", res.Table3)
	}
	rendered := res.Table3.Render()
	if !strings.Contains(rendered, "failure:") {
		t.Fatalf("Table 3 must render the failure row:\n%s", rendered)
	}
	if !strings.Contains(res.Render(), "failed instance") {
		t.Fatal("Fig 7 must render the failure row")
	}
	// All remaining instances were processed.
	want := r.Scale.Corpus.TestSize - 1
	if got := len(res.InferenceMS); got != want {
		t.Fatalf("want %d surviving instances, got %d", want, got)
	}
}

func TestFig7IsolatesPanickingInstance(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.ExperimentInstance,
		faultpoint.Fault{PanicValue: "corrupt clause database", Times: 1})
	r := quickRunner()
	res, err := r.Fig7()
	if err != nil {
		t.Fatalf("a panicking instance must not abort the run: %v", err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want 1 failure row, got %v", res.Failures)
	}
	if !strings.Contains(res.Failures[0].Err, "panic") {
		t.Fatalf("failure row must record the panic: %+v", res.Failures[0])
	}
}

func TestFig7WithSelectorInferencePanic(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	// Inference panics on every instance: the selector must degrade to
	// the default policy for the whole run and the table must still come
	// out, with every instance falling back (the paper's degrade-to-
	// Kissat behaviour).
	faultpoint.Arm(faultpoint.ModelInference, faultpoint.Fault{PanicValue: "inference broken"})
	r := quickRunner()
	res, err := r.Fig7()
	if err != nil {
		t.Fatalf("inference failure must not abort the run: %v", err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("fallback is not a failure: %v", res.Failures)
	}
	if res.FreqChosen != 0 {
		t.Fatalf("with inference down no instance can be routed to frequency, got %d", res.FreqChosen)
	}
	if res.Fallbacks != r.Scale.Corpus.TestSize {
		t.Fatalf("want %d fallbacks, got %d", r.Scale.Corpus.TestSize, res.Fallbacks)
	}
}
