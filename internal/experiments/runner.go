// Package experiments reproduces every table and figure of the paper's
// evaluation: Figure 3 (propagation-frequency distribution), Figure 4
// (default vs. frequency policy scatter), Table 1 (dataset statistics),
// Table 2 (classifier comparison), Figure 7 (portfolio scatter and
// inference-time/improvement box plots), and Table 3 (runtime statistics).
//
// A Runner owns the shared artifacts (labeled corpus, trained NeuroSelect
// model) and exposes one method per experiment. Scale presets size the runs
// from unit-test-fast to paper-shaped.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/metrics"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/satgraph"
)

// InstanceFailure is one isolated per-instance failure in a solving loop:
// the run records it as a failure row and continues instead of aborting
// the whole figure or table.
type InstanceFailure struct {
	// Name is the instance name.
	Name string
	// Stage names the step that failed (e.g. "kissat", "neuroselect").
	Stage string
	// Err is the contained failure, as text so results stay serializable.
	Err string
}

func (f InstanceFailure) String() string {
	return fmt.Sprintf("%s [%s]: %s", f.Name, f.Stage, f.Err)
}

// isolate runs one per-instance step with panic containment and the
// experiments.instance fault point armed at its entry; any failure comes
// back as an error for the caller to record as a failure row.
func isolate(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if err := faultpoint.Hit(faultpoint.ExperimentInstance); err != nil {
		return err
	}
	return fn()
}

// Scale sizes an experiment run.
type Scale struct {
	Corpus dataset.Config
	Model  core.Config
	Train  core.TrainConfig
	// Restarts is the number of training restarts; the model with the best
	// balanced accuracy on the training set is kept.
	Restarts int
	// BaselineEpochs bounds the Table 2 baseline training runs.
	BaselineEpochs int
	// ScatterBudget is the conflict budget for the Figure 4 / Figure 7
	// solving runs (the analogue of the paper's 5,000 s timeout).
	ScatterBudget int64
}

// QuickScale is small enough for unit tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Corpus: dataset.Config{TrainStrata: 2, PerStratum: 6, TestSize: 8, Seed: 11,
			MaxConflicts: 20000},
		Model:          core.Config{Hidden: 8, HGTLayers: 1, MPLayers: 2, Attention: true, Seed: 3},
		Train:          core.TrainConfig{Epochs: 6, LR: 5e-3, Seed: 1},
		Restarts:       1,
		BaselineEpochs: 4,
		ScatterBudget:  20000,
	}
}

// DefaultScale is the cmd/experiments default: minutes on a laptop, enough
// instances for the paper's qualitative shapes.
func DefaultScale() Scale {
	return Scale{
		Corpus: dataset.Config{TrainStrata: 6, PerStratum: 18, TestSize: 36, Seed: 11,
			MaxConflicts: 60000},
		Model:          core.Config{Hidden: 16, HGTLayers: 2, MPLayers: 2, Attention: true, Seed: 3},
		Train:          core.TrainConfig{Epochs: 60, LR: 1e-3, Seed: 1},
		Restarts:       3,
		BaselineEpochs: 20,
		ScatterBudget:  60000,
	}
}

// Runner executes the experiments, memoizing the corpus and trained model.
type Runner struct {
	Scale Scale
	// Log, when non-nil, receives progress lines. Writes are serialized so
	// parallel sweep cells may log concurrently.
	Log io.Writer
	// Workers bounds the sweep engine's worker pool (0 → runtime.NumCPU()).
	// Tables and JSON are byte-identical for every worker count: cells are
	// collected by instance index, never by completion order.
	Workers int
	// CellTimeout, when positive, gives every sweep cell (one solve of one
	// instance under one policy) its own wall-clock deadline through the
	// solver.SolveContext path.
	CellTimeout time.Duration
	// BaseContext, when non-nil, is the parent context of every sweep;
	// canceling it (e.g. on SIGINT) drains all workers and aborts the run.
	BaseContext context.Context
	// Deterministic replaces wall-clock measurements in reports with a
	// propagation-derived pseudo-time (1 propagation ≡ 1µs) and zeroes
	// inference timings, making rendered tables and JSON byte-identical
	// across runs and worker counts. Used by the determinism regression
	// tests and for reproducible archival artifacts.
	Deterministic bool
	// Sweep holds the per-worker counters of the most recent sweep.
	Sweep metrics.SweepCounters
	// Obs, when non-nil, receives sweep telemetry (the per-cell latency
	// histogram and running cell counters); pair it with
	// obs.RegisterSweepCounters(Obs, &r.Sweep) for live queue/worker
	// gauges, as cmd/experiments -metrics-addr does.
	Obs *obs.Registry

	logMu     sync.Mutex
	corpus    *dataset.Corpus
	model     *core.Model
	threshold float64
}

// NewRunner returns a Runner at the given scale.
func NewRunner(s Scale) *Runner { return &Runner{Scale: s, threshold: -1} }

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		r.logMu.Lock()
		defer r.logMu.Unlock()
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// baseContext returns the parent context of every sweep.
func (r *Runner) baseContext() context.Context {
	if r.BaseContext != nil {
		return r.BaseContext
	}
	return context.Background()
}

// Corpus builds (once) the labeled corpus, sharding the labeling solves
// across the runner's worker pool.
func (r *Runner) Corpus() (*dataset.Corpus, error) {
	if r.corpus == nil {
		r.logf("building labeled corpus (%d strata × %d + %d test)...",
			r.Scale.Corpus.TrainStrata, r.Scale.Corpus.PerStratum, r.Scale.Corpus.TestSize)
		cfg := r.Scale.Corpus
		if cfg.Workers == 0 {
			cfg.Workers = r.Workers
		}
		c, err := dataset.BuildContext(r.baseContext(), cfg)
		if err != nil {
			return nil, err
		}
		r.corpus = c
	}
	return r.corpus, nil
}

// Samples converts labeled items to model training samples.
func Samples(items []dataset.Labeled) []core.Sample {
	out := make([]core.Sample, len(items))
	for i, it := range items {
		out[i] = core.Sample{Name: it.Inst.Name, G: satgraph.BuildVCG(it.Inst.F), Label: it.Label}
	}
	return out
}

// TrainedModel trains (once) the NeuroSelect model on the corpus's training
// strata.
func (r *Runner) TrainedModel() (*core.Model, error) {
	if r.model != nil {
		return r.model, nil
	}
	c, err := r.Corpus()
	if err != nil {
		return nil, err
	}
	train := Samples(c.All())
	cfg := r.Scale.Train
	cfg.PosWeight = core.BalancedPosWeight(train)
	restarts := r.Scale.Restarts
	if restarts < 1 {
		restarts = 1
	}
	r.logf("training NeuroSelect (%d samples, %d epochs, %d restarts)...",
		len(train), cfg.Epochs, restarts)
	m, score := core.TrainBest(r.Scale.Model, train, cfg, restarts)
	r.logf("best training balanced accuracy %.3f", score)
	r.model = m
	return m, nil
}

// Selector returns a calibrated portfolio selector for the trained model.
func (r *Runner) Selector() (*portfolio.Selector, error) {
	m, err := r.TrainedModel()
	if err != nil {
		return nil, err
	}
	if r.threshold < 0 {
		c, _ := r.Corpus()
		r.threshold = portfolio.CalibrateThreshold(m, c.All())
		r.logf("calibrated decision threshold: %.2f", r.threshold)
	}
	s := portfolio.NewSelector(m)
	s.Threshold = r.threshold
	return s, nil
}
