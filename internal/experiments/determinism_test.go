package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
)

// determinismScale is the smallest corpus that still exercises every
// aggregation path (train/test strata, both policies, the selector).
func determinismRunner(workers int) *Runner {
	s := QuickScale()
	s.Corpus.TrainStrata = 1
	s.Corpus.PerStratum = 3
	s.Corpus.TestSize = 4
	s.Corpus.MaxConflicts = 8000
	s.ScatterBudget = 8000
	s.Train.Epochs = 1
	s.BaselineEpochs = 1
	r := NewRunner(s)
	r.Workers = workers
	r.Deterministic = true
	return r
}

// determinismExperiments is every experiment under the byte-identical
// guarantee — since the 2-way race gained a lockstep deterministic mode
// (portfolio.RaceDeterministic), that is all of them, ext-selectors
// included.
var determinismExperiments = []string{
	"fig3", "fig5", "table1", "fig4", "table2", "fig7", "table3",
	"ext-policies", "ext-selectors", "ext-alpha", "ext-scaling",
}

// renderAll runs every guaranteed experiment and returns the concatenated
// rendered text plus the JSON encoding of a report subset.
func renderAll(t *testing.T, workers int) (string, string) {
	t.Helper()
	r := determinismRunner(workers)
	var text bytes.Buffer
	for _, name := range determinismExperiments {
		fmt.Fprintf(&text, "== %s ==\n", name)
		if err := r.RunAll(&text, name); err != nil {
			t.Fatalf("workers=%d %s: %v", workers, name, err)
		}
	}
	rep, err := r.BuildReport("fig4", "fig7", "ext-policies")
	if err != nil {
		t.Fatalf("workers=%d BuildReport: %v", workers, err)
	}
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return text.String(), string(js)
}

// TestDeterministicAcrossWorkerCounts is the regression test for the sweep
// engine's core guarantee: the rendered tables and the JSON report are
// byte-identical whether the instance×policy matrix runs on one worker,
// four, or every CPU.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment pipeline three times")
	}
	refText, refJSON := renderAll(t, 1)
	if len(refText) == 0 || len(refJSON) == 0 {
		t.Fatal("empty reference output")
	}
	counts := []int{4, runtime.NumCPU()}
	for _, workers := range counts {
		text, js := renderAll(t, workers)
		if text != refText {
			t.Errorf("workers=%d: rendered text diverges from workers=1\n%s", workers, firstDiff(refText, text))
		}
		if js != refJSON {
			t.Errorf("workers=%d: JSON report diverges from workers=1\n%s", workers, firstDiff(refJSON, js))
		}
	}
}

// firstDiff locates the first byte where two outputs diverge, with context.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+80, i+80
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("first difference at byte %d:\n  ref: %q\n  got: %q", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("lengths differ: ref=%d got=%d", len(a), len(b))
}
