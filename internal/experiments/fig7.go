package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/metrics"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
)

// Fig7Result reproduces Figure 7: (a) the Kissat vs. NeuroSelect-Kissat
// scatter and (b) box plots of model inference time and per-instance
// improvement. Table 3 is derived from the same run.
type Fig7Result struct {
	Scatter ScatterResult
	// InferenceMS collects the per-instance one-time inference cost.
	InferenceMS []float64
	// ImprovementProps collects X−Y propagation savings for instances
	// where NeuroSelect-Kissat improved (the paper plots improvements
	// only).
	ImprovementProps []float64
	// FreqChosen counts instances routed to the frequency policy.
	FreqChosen int
	// Fallbacks counts instances where the selector bypassed inference
	// (node cap, contained panic, inference deadline).
	Fallbacks int
	// Failures lists instances whose solves failed; they are excluded
	// from the scatter and summaries but recorded as failure rows.
	Failures []InstanceFailure
	Table3   Table3Result
	// Oracle is the virtual-best-solver summary: per instance the better
	// of the two policies, the selector's headroom.
	Oracle metrics.Summary
}

// fig7Cell is one sweep cell of the Figure 7 matrix: either the plain
// default-policy solve (kissat half) or the adaptive portfolio solve
// (neuroselect half) of one test instance.
type fig7Cell struct {
	KR    solver.Result
	KTime time.Duration
	Rep   portfolio.Report
}

// Fig7 trains the selector (memoized), then solves every test instance
// under plain default ("Kissat") and under the adaptive portfolio
// ("NeuroSelect-Kissat"). The instance×system matrix is sharded across the
// sweep engine with per-cell failure isolation; aggregation walks cells in
// instance order so figures, tables, and failure rows are identical for
// every worker count.
func (r *Runner) Fig7() (Fig7Result, error) {
	sel, err := r.Selector()
	if err != nil {
		return Fig7Result{}, err
	}
	c, err := r.Corpus()
	if err != nil {
		return Fig7Result{}, err
	}
	budget := r.Scale.ScatterBudget
	out := Fig7Result{Scatter: ScatterResult{Title: "Figure 7(a) — Kissat vs. NeuroSelect-Kissat"}}
	var kProps, nProps, kMS, nMS, vbs []float64
	var kSolved, nSolved []bool
	items := c.Test.Items
	// A bad cell (solver panic, injected fault, per-cell deadline) is
	// recorded as a failure row for its instance; the figure/table run
	// continues.
	cells, errs := sweepCells(r, "fig7", len(items)*2,
		func(ctx context.Context, i int) (fig7Cell, error) {
			it := items[i/2]
			var cell fig7Cell
			err := isolate(func() error {
				if i%2 == 0 {
					start := time.Now()
					kr, err := solver.SolveContext(ctx, it.Inst.F, dataset.SolveOptions(deletion.DefaultPolicy{}, budget))
					if err != nil {
						return fmt.Errorf("kissat: %w", err)
					}
					cell.KR = kr
					cell.KTime = r.cellDuration(time.Since(start), kr.Stats.Propagations)
					return nil
				}
				rep, err := sel.SolveContext(ctx, it.Inst.F, budget)
				if err != nil {
					return fmt.Errorf("neuroselect: %w", err)
				}
				if r.Deterministic {
					rep.SolveTime = r.cellDuration(rep.SolveTime, rep.Result.Stats.Propagations)
					rep.Choice.Inference = 0
				}
				cell.Rep = rep
				return nil
			})
			return cell, err
		})
	for idx, it := range items {
		kerr, nerr := errs[idx*2], errs[idx*2+1]
		if err := firstNonNil(kerr, nerr); err != nil {
			r.logf("fig7: instance %s failed, continuing: %v", it.Inst.Name, err)
			out.Failures = append(out.Failures, InstanceFailure{
				Name: it.Inst.Name, Stage: "solve", Err: err.Error()})
			continue
		}
		kr, kTime, rep := cells[idx*2].KR, cells[idx*2].KTime, cells[idx*2+1].Rep
		if rep.Choice.Policy.Name() == "frequency" {
			out.FreqChosen++
		}
		if rep.Choice.Fallback != "" {
			out.Fallbacks++
		}
		out.InferenceMS = append(out.InferenceMS, float64(rep.Choice.Inference.Microseconds())/1000)

		kSolvedI := kr.Status != solver.Unknown
		nSolvedI := rep.Result.Status != solver.Unknown
		if !kSolvedI && !nSolvedI {
			continue
		}
		p := ScatterPoint{
			Name: it.Inst.Name,
			X:    float64(kr.Stats.Propagations), Y: float64(rep.Result.Stats.Propagations),
			XTime: kTime, YTime: rep.SolveTime + rep.Choice.Inference,
			XSolved: kSolvedI, YSolved: nSolvedI,
		}
		out.Scatter.Points = append(out.Scatter.Points, p)
		if p.Y < p.X {
			out.ImprovementProps = append(out.ImprovementProps, p.X-p.Y)
		}
		kProps = append(kProps, p.X)
		nProps = append(nProps, p.Y)
		kMS = append(kMS, float64(p.XTime.Microseconds())/1000)
		nMS = append(nMS, float64(p.YTime.Microseconds())/1000)
		kSolved = append(kSolved, kSolvedI)
		nSolved = append(nSolved, nSolvedI)
		// Virtual best solver: the labeling pass measured both policies at
		// the same budget, so the per-instance minimum is the selector's
		// headroom.
		best := float64(it.PropsDefault)
		if f := float64(it.PropsFrequency); f < best {
			best = f
		}
		vbs = append(vbs, best)
	}
	out.Scatter.finish()
	out.Oracle = metrics.Summarize(vbs, kSolved)
	out.Table3 = Table3Result{
		Budget:          budget,
		Kissat:          metrics.Summarize(kProps, kSolved),
		NeuroSelect:     metrics.Summarize(nProps, nSolved),
		KissatTime:      metrics.Summarize(kMS, kSolved),
		NeuroSelectTime: metrics.Summarize(nMS, nSolved),
		Failures:        out.Failures,
	}
	out.Table3.Kissat.Failed = len(out.Failures)
	out.Table3.NeuroSelect.Failed = len(out.Failures)
	out.Table3.MedianImprovement = metrics.RelativeImprovement(
		out.Table3.Kissat.Median, out.Table3.NeuroSelect.Median)
	return out, nil
}

// Points returns the scatter points of the Figure 7(a) comparison.
func (f Fig7Result) Points() []ScatterPoint { return f.Scatter.Points }

// Table3 runs the Figure 7 comparison and returns its statistics table.
func (r *Runner) Table3() (Table3Result, error) {
	f, err := r.Fig7()
	if err != nil {
		return Table3Result{}, err
	}
	return f.Table3, nil
}

// Render prints the scatter and the Figure 7(b) box plots.
func (f Fig7Result) Render() string {
	var sb strings.Builder
	sb.WriteString(f.Scatter.Render())
	fmt.Fprintf(&sb, "  instances routed to the frequency policy: %d of %d\n",
		f.FreqChosen, len(f.Scatter.Points))
	if f.Fallbacks > 0 {
		fmt.Fprintf(&sb, "  selector fallbacks to the default policy: %d\n", f.Fallbacks)
	}
	for _, fail := range f.Failures {
		fmt.Fprintf(&sb, "  failed instance (excluded): %s\n", fail)
	}
	sb.WriteString("Figure 7(b) — box plots\n")
	qs := []float64{0, 0.25, 0.5, 0.75, 1}
	sb.WriteString(boxplot("inference time", metrics.Quantiles(f.InferenceMS, qs...), "ms"))
	sb.WriteString(boxplot("improvement", metrics.Quantiles(f.ImprovementProps, qs...), "propagations saved"))
	fmt.Fprintf(&sb, "  virtual best solver (oracle headroom): median %.0f, average %.0f propagations\n",
		f.Oracle.Median, f.Oracle.Average)
	return sb.String()
}
