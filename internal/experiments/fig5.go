package experiments

import (
	"fmt"
	"strings"

	"neuroselect/internal/deletion"
)

// Fig5Result demonstrates the Figure 5 64-bit clause-score layouts on a set
// of example clauses, showing how the frequency criterion reorders ties.
type Fig5Result struct {
	Examples []Fig5Example
}

// Fig5Example is one clause's features and its scores under both layouts.
type Fig5Example struct {
	Info         deletion.ClauseInfo
	DefaultScore uint64
	NewScore     uint64
}

// Fig5 scores a spread of representative clauses under both policies.
func (r *Runner) Fig5() (Fig5Result, error) {
	infos := []deletion.ClauseInfo{
		{Glue: 3, Size: 8, Frequency: 0},
		{Glue: 3, Size: 8, Frequency: 5},
		{Glue: 3, Size: 12, Frequency: 9},
		{Glue: 5, Size: 8, Frequency: 2},
		{Glue: 5, Size: 20, Frequency: 0},
		{Glue: 9, Size: 30, Frequency: 12},
	}
	var out Fig5Result
	def, freq := deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}
	for _, ci := range infos {
		out.Examples = append(out.Examples, Fig5Example{
			Info:         ci,
			DefaultScore: def.Score(ci),
			NewScore:     freq.Score(ci),
		})
	}
	return out, nil
}

// Render prints the Figure 5 analogue: both bit layouts per clause.
func (f Fig5Result) Render() string {
	rows := make([][]string, 0, len(f.Examples))
	for _, e := range f.Examples {
		rows = append(rows, []string{
			fmt.Sprintf("glue=%d size=%d freq=%d", e.Info.Glue, e.Info.Size, e.Info.Frequency),
			fmt.Sprintf("%016x", e.DefaultScore),
			fmt.Sprintf("%016x", e.NewScore),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 5 — 64-bit clause scores (higher = kept longer)\n")
	sb.WriteString("  default layout: [~glue 63..32 | ~size 31..0]\n")
	sb.WriteString("  new layout:     [~glue 63..45 | ~size 44..24 | frequency 23..0]\n")
	sb.WriteString(table([]string{"clause", "default score", "new score"}, rows))
	return sb.String()
}
