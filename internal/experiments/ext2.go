package experiments

import (
	"context"
	"fmt"
	"strings"

	"neuroselect/internal/baselines"
	"neuroselect/internal/cnf"
	"neuroselect/internal/metrics"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// SelectorsResult is the second extension experiment: it pits the learned
// NeuroSelect selector against (a) a classical logistic regression over 14
// hand-crafted CNF statistics, and (b) the parallel two-policy race (2× CPU
// for the virtual-best result). Classification quality and end-to-end
// propagation cost are reported together.
type SelectorsResult struct {
	Logistic    metrics.Confusion
	NeuroSelect metrics.Confusion
	// Cost summaries over the test stratum.
	Default    metrics.Summary
	Neuro      metrics.Summary
	LogisticPF metrics.Summary
	RaceWall   metrics.Summary // wall-clock ms of the 2×-CPU race
	RaceProps  metrics.Summary
}

// Selectors runs the extension comparison.
func (r *Runner) Selectors() (SelectorsResult, error) {
	c, err := r.Corpus()
	if err != nil {
		return SelectorsResult{}, err
	}
	sel, err := r.Selector()
	if err != nil {
		return SelectorsResult{}, err
	}
	trainItems := c.All()
	var fs []*cnf.Formula
	var labels []int
	for _, it := range trainItems {
		fs = append(fs, it.Inst.F)
		labels = append(labels, it.Label)
	}
	logit := baselines.NewLogistic()
	logit.Fit(fs, labels, 80, 0.05, 1)
	logitTh := portfolio.CalibrateThresholdFunc(logit.Predict, trainItems)

	var out SelectorsResult
	var defCost, neuroCost, logitCost, raceProps, raceMS []float64
	var solved []bool
	budget := r.Scale.ScatterBudget
	items := c.Test.Items
	// Predictions run serially up front (both predictors share model state);
	// the expensive part — one 2-worker race per instance — is sharded
	// across the sweep engine. Free-running race outcomes depend on
	// scheduling; in Deterministic mode the race runs as a lockstep
	// 2-worker portfolio instead, so the whole experiment is under the
	// byte-identical guarantee and RaceWall reports propagation
	// pseudo-time.
	for _, it := range items {
		out.Logistic.Add(logit.Predict(it.Inst.F) >= 0.5, it.Label == 1)
		out.NeuroSelect.Add(sel.Model.Predict(it.Inst.F) >= 0.5, it.Label == 1)

		// Costs: the labeling pass already measured both policies at this
		// budget, so selector costs are table lookups.
		def := float64(it.PropsDefault)
		freq := float64(it.PropsFrequency)
		defCost = append(defCost, def)
		pick := func(prob float64, th float64) float64 {
			if prob >= th {
				return freq
			}
			return def
		}
		neuroCost = append(neuroCost, pick(sel.Model.Predict(it.Inst.F), sel.Threshold))
		logitCost = append(logitCost, pick(logit.Predict(it.Inst.F), logitTh))
	}
	races, errs := sweepCells(r, "ext-selectors", len(items),
		func(ctx context.Context, i int) (portfolio.RaceReport, error) {
			if r.Deterministic {
				// One OS worker per cell: the instances are already sharded
				// across the sweep pool, and the race outcome is identical
				// for any inner worker count anyway.
				return portfolio.RaceDeterministic(ctx, items[i].Inst.F, budget, 1)
			}
			return portfolio.RaceContext(ctx, items[i].Inst.F, budget)
		})
	if err := sweep.FirstError(errs); err != nil {
		return SelectorsResult{}, err
	}
	for i, it := range items {
		race := races[i]
		raceProps = append(raceProps, float64(race.Result.Stats.Propagations))
		raceMS = append(raceMS, float64(race.WallTime.Microseconds())/1000)
		solved = append(solved, it.SolvedBoth && race.Result.Status != solver.Unknown)
	}
	out.Default = metrics.Summarize(defCost, solved)
	out.Neuro = metrics.Summarize(neuroCost, solved)
	out.LogisticPF = metrics.Summarize(logitCost, solved)
	out.RaceProps = metrics.Summarize(raceProps, solved)
	out.RaceWall = metrics.Summarize(raceMS, solved)
	return out, nil
}

// Render prints the extension comparison.
func (s SelectorsResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension — selector families on the held-out stratum\n")
	sb.WriteString("classification quality:\n")
	sb.WriteString(table(
		[]string{"selector", "precision", "recall", "F1", "accuracy"},
		[][]string{
			confusionRow("Logistic (14 features)", s.Logistic),
			confusionRow("NeuroSelect (HGT)", s.NeuroSelect),
		}))
	sb.WriteString("end-to-end cost (median / average propagations):\n")
	row := func(name string, m metrics.Summary) []string {
		return []string{name, fmt.Sprintf("%.0f", m.Median), fmt.Sprintf("%.0f", m.Average)}
	}
	sb.WriteString(table(
		[]string{"system", "median", "average"},
		[][]string{
			row("always default (Kissat)", s.Default),
			row("logistic portfolio", s.LogisticPF),
			row("NeuroSelect portfolio", s.Neuro),
			row("2-way race (2x CPU)", s.RaceProps),
		}))
	fmt.Fprintf(&sb, "  race wall-clock: median %.2f ms\n", s.RaceWall.Median)
	return sb.String()
}

func confusionRow(name string, c metrics.Confusion) []string {
	return []string{
		name,
		fmt.Sprintf("%.2f%%", 100*c.Precision()),
		fmt.Sprintf("%.2f%%", 100*c.Recall()),
		fmt.Sprintf("%.2f%%", 100*c.F1()),
		fmt.Sprintf("%.2f%%", 100*c.Accuracy()),
	}
}
