package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// quickRunner returns a Runner small enough for test time; the corpus and
// model memoize across sub-tests through the shared Runner.
func quickRunner() *Runner {
	s := QuickScale()
	s.Corpus.TrainStrata = 2
	s.Corpus.PerStratum = 4
	s.Corpus.TestSize = 5
	s.Corpus.MaxConflicts = 10000
	s.ScatterBudget = 10000
	s.Train.Epochs = 2
	s.BaselineEpochs = 1
	return NewRunner(s)
}

func TestFig3(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deciles) != 11 {
		t.Fatalf("deciles = %d", len(res.Deciles))
	}
	for i := 1; i < len(res.Deciles); i++ {
		if res.Deciles[i] < res.Deciles[i-1] {
			t.Fatal("deciles must be nondecreasing")
		}
	}
	if res.TopShare <= 0 || res.TopShare > 1 {
		t.Fatalf("top share = %v", res.TopShare)
	}
	// The top 10% of variables must carry at least 10% of propagations.
	if res.TopShare < 0.1 {
		t.Fatalf("top-decile share %v below uniform floor", res.TopShare)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "100%") {
		t.Fatalf("render: %q", out)
	}
}

func TestFig5(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Examples) == 0 {
		t.Fatal("no examples")
	}
	// Equal (glue,size) pairs must tie under default and split by
	// frequency under the new layout.
	a, b := res.Examples[0], res.Examples[1]
	if a.DefaultScore != b.DefaultScore {
		t.Fatal("default layout must ignore frequency")
	}
	if a.NewScore >= b.NewScore {
		t.Fatal("new layout must rank the higher-frequency clause above")
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Fatal("render")
	}
}

func TestCorpusAndTable1(t *testing.T) {
	r := quickRunner()
	res, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // 2 train strata + test
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "test-2022") {
		t.Fatalf("render: %q", out)
	}
}

func TestFig4ScatterProperties(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no scatter points")
	}
	if res.Below+res.Above+res.On != len(res.Points) {
		t.Fatal("diagonal counts must partition the points")
	}
	for _, p := range res.Points {
		if !p.XSolved && !p.YSolved {
			t.Fatalf("%s: unsolved-by-both must be excluded", p.Name)
		}
		if p.X < 0 || p.Y < 0 {
			t.Fatalf("%s: negative cost", p.Name)
		}
	}
	if !strings.Contains(res.Render(), "diagonal") {
		t.Fatal("render")
	}
}

func TestTable2RowsAndOrder(t *testing.T) {
	r := quickRunner()
	res, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantOrder := []string{"NeuroSAT", "G4SATBench (GIN)", "NeuroSelect w/o attention", "NeuroSelect"}
	for i, w := range wantOrder {
		if res.Rows[i].Name != w {
			t.Fatalf("row %d = %q, want %q", i, res.Rows[i].Name, w)
		}
		cm := res.Rows[i].Confusion
		if cm.Total() != 5 { // test size
			t.Fatalf("row %d evaluated %d instances", i, cm.Total())
		}
	}
	if !strings.Contains(res.Render(), "accuracy") {
		t.Fatal("render")
	}
}

func TestFig7AndTable3(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// Portfolio never solves fewer instances than captured points require.
	t3 := res.Table3
	if t3.Kissat.Solved+t3.Kissat.Timeout != len(res.Points()) {
		t.Fatalf("summary counts %d+%d vs %d points",
			t3.Kissat.Solved, t3.Kissat.Timeout, len(res.Points()))
	}
	if len(res.InferenceMS) == 0 {
		t.Fatal("inference times must be collected")
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "inference time") {
		t.Fatalf("render: %q", out)
	}
	if !strings.Contains(t3.Render(), "Table 3") {
		t.Fatal("table3 render")
	}
}

func TestRunAllAndOnlySelection(t *testing.T) {
	r := quickRunner()
	var buf bytes.Buffer
	if err := r.RunAll(&buf, "fig5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("only=fig5 output")
	}
	if strings.Contains(buf.String(), "Table 1") {
		t.Fatal("only=fig5 must not run table1")
	}
	if err := r.RunAll(&buf, "bogus"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestScalesAreSane(t *testing.T) {
	q, d := QuickScale(), DefaultScale()
	if q.Corpus.PerStratum >= d.Corpus.PerStratum {
		t.Fatal("quick must be smaller than default")
	}
	if q.Train.Epochs >= d.Train.Epochs {
		t.Fatal("quick must train less")
	}
	if q.Model.Hidden == 0 || d.Model.Hidden == 0 {
		t.Fatal("model sizes unset")
	}
}

func TestPolicyPoolExtension(t *testing.T) {
	r := quickRunner()
	res, err := r.PolicyPool()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 4 || len(res.Summaries) != 4 {
		t.Fatalf("pool size %d", len(res.Policies))
	}
	if res.Instances == 0 {
		t.Fatal("no instances compared")
	}
	// The oracle can never be worse than any single policy's median.
	for i, s := range res.Summaries {
		if s.Solved > 0 && res.OracleMedian > s.Median {
			t.Fatalf("oracle median %v above policy %s median %v",
				res.OracleMedian, res.Policies[i], s.Median)
		}
	}
	if !strings.Contains(res.Render(), "oracle") {
		t.Fatal("render")
	}
}

func TestSelectorsExtension(t *testing.T) {
	r := quickRunner()
	res, err := r.Selectors()
	if err != nil {
		t.Fatal(err)
	}
	if res.Logistic.Total() == 0 || res.NeuroSelect.Total() == 0 {
		t.Fatal("classifiers not evaluated")
	}
	// The race outcome depends on scheduling, so only its structure is
	// asserted: results were collected and timed.
	if res.RaceProps.Solved == 0 {
		t.Fatal("race solved nothing at quick scale")
	}
	if res.RaceWall.Median <= 0 {
		t.Fatal("race wall-clock must be recorded")
	}
	out := res.Render()
	if !strings.Contains(out, "race") || !strings.Contains(out, "Logistic") {
		t.Fatalf("render: %q", out)
	}
}

func TestAlphaSweepExtension(t *testing.T) {
	r := quickRunner()
	res, err := r.AlphaSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alphas) != 4 || len(res.WinRate) != 4 || len(res.MeanGain) != 4 {
		t.Fatalf("sweep shape: %+v", res)
	}
	for i := range res.Alphas {
		if res.WinRate[i] < 0 || res.WinRate[i] > 1 {
			t.Fatalf("win rate out of range: %v", res.WinRate[i])
		}
	}
	if !strings.Contains(res.Render(), "alpha") {
		t.Fatal("render")
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := quickRunner()
	c1, err := r.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := r.Corpus()
	if c1 != c2 {
		t.Fatal("corpus must be memoized")
	}
	m1, err := r.TrainedModel()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := r.TrainedModel()
	if m1 != m2 {
		t.Fatal("model must be memoized")
	}
	s1, err := r.Selector()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := r.Selector()
	if s1.Threshold != s2.Threshold {
		t.Fatal("threshold must be memoized")
	}
}

func TestRunAllJSON(t *testing.T) {
	r := quickRunner()
	var buf bytes.Buffer
	if err := r.RunAllJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Fig3 == nil || rep.Table2 == nil || rep.Fig7 == nil || rep.AlphaSweep == nil {
		t.Fatal("missing sections in JSON report")
	}
	if len(rep.Table2.Rows) != 4 {
		t.Fatalf("table2 rows: %d", len(rep.Table2.Rows))
	}
}
