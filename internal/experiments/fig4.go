package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// ScatterPoint is one instance in a Figure 4 / Figure 7(a) scatter:
// per-policy cost with the paper's convention that timeouts sit on the
// budget boundary.
type ScatterPoint struct {
	Name string
	// X is the default-policy cost, Y the comparison system's cost
	// (propagations, the deterministic analogue of seconds).
	X, Y float64
	// XTime, YTime are the wall-clock durations.
	XTime, YTime time.Duration
	// XSolved, YSolved report completion within budget.
	XSolved, YSolved bool
}

// ScatterResult summarizes a two-system comparison.
type ScatterResult struct {
	Title  string
	Points []ScatterPoint
	// Below counts instances strictly below the diagonal (the comparison
	// system wins), Above strictly above, On the ties.
	Below, Above, On int
	// MeanRelGain is the mean of (X−Y)/X over instances solved by both.
	MeanRelGain float64
}

// fig4Policies is the two-column policy axis of the Figure 4 sweep matrix.
var fig4Policies = []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}}

// timedResult is one sweep cell's outcome: a solve plus its (possibly
// deterministic-mode) duration.
type timedResult struct {
	Res solver.Result
	Dur time.Duration
}

// Fig4 reproduces Figure 4: each test-pool instance is solved under the
// default and the frequency-guided deletion policies; instances unsolved
// by both policies are excluded, as in the paper. The instance×policy
// matrix is sharded across the sweep engine; aggregation walks cells in
// instance order, so the scatter is identical for every worker count.
func (r *Runner) Fig4() (ScatterResult, error) {
	c, err := r.Corpus()
	if err != nil {
		return ScatterResult{}, err
	}
	res := ScatterResult{Title: "Figure 4 — Kissat default vs. frequency-guided deletion"}
	items := append(c.All(), c.Test.Items...)
	budget := r.Scale.ScatterBudget
	cells, errs := sweepCells(r, "fig4", len(items)*len(fig4Policies),
		func(ctx context.Context, i int) (timedResult, error) {
			it, p := items[i/len(fig4Policies)], fig4Policies[i%len(fig4Policies)]
			start := time.Now()
			sres, err := solver.SolveContext(ctx, it.Inst.F, dataset.SolveOptions(p, budget))
			if err != nil {
				return timedResult{}, err
			}
			return timedResult{sres, r.cellDuration(time.Since(start), sres.Stats.Propagations)}, nil
		})
	if err := sweep.FirstError(errs); err != nil {
		return ScatterResult{}, err
	}
	for i, it := range items {
		d, f := cells[i*len(fig4Policies)], cells[i*len(fig4Policies)+1]
		if d.Res.Status == solver.Unknown && f.Res.Status == solver.Unknown {
			continue // the paper drops instances unsolved by both
		}
		res.Points = append(res.Points, ScatterPoint{
			Name: it.Inst.Name,
			X:    float64(d.Res.Stats.Propagations), Y: float64(f.Res.Stats.Propagations),
			XTime: d.Dur, YTime: f.Dur,
			XSolved: d.Res.Status != solver.Unknown, YSolved: f.Res.Status != solver.Unknown,
		})
	}
	res.finish()
	return res, nil
}

func (s *ScatterResult) finish() {
	var gainSum float64
	var gainN int
	for _, p := range s.Points {
		switch {
		case p.Y < p.X:
			s.Below++
		case p.Y > p.X:
			s.Above++
		default:
			s.On++
		}
		if p.XSolved && p.YSolved && p.X > 0 {
			gainSum += (p.X - p.Y) / p.X
			gainN++
		}
	}
	if gainN > 0 {
		s.MeanRelGain = gainSum / float64(gainN)
	}
}

// Render prints the scatter as a summary plus a log-log ASCII plot.
func (s ScatterResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", s.Title)
	fmt.Fprintf(&sb, "  instances: %d  below diagonal (new wins): %d  above: %d  ties: %d\n",
		len(s.Points), s.Below, s.Above, s.On)
	fmt.Fprintf(&sb, "  mean relative gain of Y over X: %+.2f%%\n", 100*s.MeanRelGain)
	sb.WriteString(renderScatterASCII(s.Points, 56, 20))
	return sb.String()
}

// renderScatterASCII draws a log-scaled scatter with the diagonal marked,
// the textual analogue of the paper's runtime scatter figures.
func renderScatterASCII(points []ScatterPoint, w, h int) string {
	if len(points) == 0 {
		return "  (no points)\n"
	}
	lo, hi := points[0].X, points[0].X
	for _, p := range points {
		for _, v := range []float64{p.X, p.Y} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	scale := func(v float64) int {
		if v < 1 {
			v = 1
		}
		t := (log(v) - log(lo)) / (log(hi) - log(lo))
		i := int(t * float64(w-1))
		if i < 0 {
			i = 0
		}
		if i >= w {
			i = w - 1
		}
		return i
	}
	// Diagonal.
	for x := 0; x < w; x++ {
		y := x * (h - 1) / (w - 1)
		grid[h-1-y][x] = '.'
	}
	for _, p := range points {
		x := scale(p.X)
		y := scale(p.Y) * (h - 1) / (w - 1)
		grid[h-1-y][x] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "  Y=frequency policy (log)  ['*' instance, '.' diagonal]\n")
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "  +%s X=default policy (log), range [%.0f, %.0f] propagations\n",
		strings.Repeat("-", w), lo, hi)
	return sb.String()
}

func log(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return mathLog(v)
}
