package experiments

import (
	"fmt"
	"strings"

	"neuroselect/internal/baselines"
	"neuroselect/internal/cnf"
	"neuroselect/internal/core"
	"neuroselect/internal/dataset"
	"neuroselect/internal/metrics"
)

// Table1Result carries the dataset-statistics rows of the paper's Table 1.
type Table1Result struct {
	Rows []dataset.StratumStats
}

// Table1 builds the corpus and reports its per-stratum statistics.
func (r *Runner) Table1() (Table1Result, error) {
	c, err := r.Corpus()
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{Rows: c.Table1()}, nil
}

// Render prints the Table 1 analogue.
func (t Table1Result) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, s := range t.Rows {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.NumCNFs),
			fmt.Sprintf("%.0f", s.MeanVars),
			fmt.Sprintf("%.0f", s.MeanClauses),
			fmt.Sprintf("%.2f", s.PosRate),
		})
	}
	return "Table 1 — dataset statistics (generator strata replace competition years)\n" +
		table([]string{"stratum", "#CNFs", "mean vars", "mean clauses", "label-1 rate"}, rows)
}

// Table2Row is one classifier's evaluation in the Table 2 comparison.
type Table2Row struct {
	Name      string
	Confusion metrics.Confusion
}

// Table2Result holds all classifier rows, paper order.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 trains the two baselines, NeuroSelect without attention, and full
// NeuroSelect on the same corpus and evaluates all four on the held-out
// test stratum.
func (r *Runner) Table2() (Table2Result, error) {
	c, err := r.Corpus()
	if err != nil {
		return Table2Result{}, err
	}
	trainItems := c.All()
	testItems := c.Test.Items

	formulas := make([]*cnf.Formula, len(trainItems))
	labels := make([]int, len(trainItems))
	posW := 1.0
	pos := 0
	for i, it := range trainItems {
		formulas[i] = it.Inst.F
		labels[i] = it.Label
		pos += it.Label
	}
	if pos > 0 && pos < len(trainItems) {
		posW = float64(len(trainItems)-pos) / float64(pos)
	}
	_ = posW // the baselines use unweighted BCE, matching their original recipes

	var out Table2Result
	eval := func(name string, predict func(*cnf.Formula) float64) {
		var cm metrics.Confusion
		for _, it := range testItems {
			cm.Add(predict(it.Inst.F) >= 0.5, it.Label == 1)
		}
		out.Rows = append(out.Rows, Table2Row{Name: name, Confusion: cm})
	}

	h := r.Scale.Model.Hidden
	r.logf("table2: training NeuroSAT baseline...")
	ns := baselines.NewNeuroSAT(h, 4, 5)
	ns.Fit(formulas, labels, r.Scale.BaselineEpochs, 1e-3, 1)
	eval(ns.Name(), ns.Predict)

	r.logf("table2: training GIN baseline...")
	gin := baselines.NewGIN(h, 3, 5)
	gin.Fit(formulas, labels, r.Scale.BaselineEpochs, 1e-3, 1)
	eval(gin.Name(), gin.Predict)

	r.logf("table2: training NeuroSelect w/o attention...")
	cfgNoAttn := r.Scale.Model
	cfgNoAttn.Attention = false
	trainCfg := r.Scale.Train
	samples := Samples(trainItems)
	trainCfg.PosWeight = core.BalancedPosWeight(samples)
	restarts := r.Scale.Restarts
	if restarts < 1 {
		restarts = 1
	}
	noAttn, _ := core.TrainBest(cfgNoAttn, samples, trainCfg, restarts)
	eval("NeuroSelect w/o attention", noAttn.Predict)

	m, err := r.TrainedModel()
	if err != nil {
		return Table2Result{}, err
	}
	eval("NeuroSelect", m.Predict)
	return out, nil
}

// Render prints the Table 2 analogue.
func (t Table2Result) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		cm := r.Confusion
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.2f%%", 100*cm.Precision()),
			fmt.Sprintf("%.2f%%", 100*cm.Recall()),
			fmt.Sprintf("%.2f%%", 100*cm.F1()),
			fmt.Sprintf("%.2f%%", 100*cm.Accuracy()),
		})
	}
	return "Table 2 — SAT classification models on the held-out stratum\n" +
		table([]string{"model", "precision", "recall", "F1", "accuracy"}, rows)
}

// Table3Result is the runtime-statistics comparison of Table 3, in the
// reproduction's deterministic measure (propagations) and wall-clock time.
type Table3Result struct {
	Budget          int64
	Kissat          metrics.Summary
	NeuroSelect     metrics.Summary
	KissatTime      metrics.Summary // milliseconds
	NeuroSelectTime metrics.Summary // milliseconds, inference included
	// MedianImprovement is the paper's headline number: relative median
	// reduction of NeuroSelect-Kissat vs Kissat.
	MedianImprovement float64
	// Failures are the isolated per-instance failures of the run; they
	// appear as failure rows below the table instead of aborting it.
	Failures []InstanceFailure
}

// Render prints the Table 3 analogue.
func (t Table3Result) Render() string {
	row := func(name string, s metrics.Summary, st metrics.Summary) []string {
		return []string{
			name,
			fmt.Sprintf("%d", s.Solved),
			fmt.Sprintf("%.0f", s.Median),
			fmt.Sprintf("%.0f", s.Average),
			fmt.Sprintf("%.2f", st.Median),
			fmt.Sprintf("%.2f", st.Average),
		}
	}
	var sb strings.Builder
	sb.WriteString("Table 3 — runtime statistics on the held-out stratum\n")
	sb.WriteString(table(
		[]string{"solver", "solved", "median props", "avg props", "median ms", "avg ms"},
		[][]string{
			row("Kissat (default policy)", t.Kissat, t.KissatTime),
			row("NeuroSelect-Kissat", t.NeuroSelect, t.NeuroSelectTime),
		}))
	fmt.Fprintf(&sb, "  median improvement: %+.2f%% (paper reports +5.8%% runtime on industrial benchmarks)\n",
		100*t.MedianImprovement)
	for _, f := range t.Failures {
		fmt.Fprintf(&sb, "  failure: %s\n", f)
	}
	return sb.String()
}
