package experiments

import (
	"context"
	"fmt"
	"strings"

	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/metrics"
	"neuroselect/internal/solver"
	"neuroselect/internal/sweep"
)

// PolicyPoolResult is an extension experiment beyond the paper's
// evaluation: the full deletion-policy pool (default, frequency, activity,
// size) compared head-to-head over the corpus, quantifying how much policy
// diversity a richer selector could exploit — the paper's closing
// direction of "diversifying existing clause deletion policies".
type PolicyPoolResult struct {
	Policies  []string
	Summaries []metrics.Summary
	// Wins[i] counts instances where policy i was the strict minimum.
	Wins []int
	// OracleMedian is the per-instance best over the whole pool.
	OracleMedian float64
	Instances    int
}

// PolicyPool solves every corpus instance under all four policies, sharding
// the instance×policy matrix across the sweep engine.
func (r *Runner) PolicyPool() (PolicyPoolResult, error) {
	c, err := r.Corpus()
	if err != nil {
		return PolicyPoolResult{}, err
	}
	pool := []deletion.Policy{
		deletion.DefaultPolicy{}, deletion.FrequencyPolicy{},
		deletion.ActivityPolicy{}, deletion.SizePolicy{},
	}
	res := PolicyPoolResult{Wins: make([]int, len(pool))}
	for _, p := range pool {
		res.Policies = append(res.Policies, p.Name())
	}
	items := append(c.All(), c.Test.Items...)
	costs := make([][]float64, len(pool))
	solved := make([][]bool, len(pool))
	var oracle []float64
	var oracleSolved []bool
	cells, errs := sweepCells(r, "ext-policies", len(items)*len(pool),
		func(ctx context.Context, i int) (solver.Result, error) {
			it, p := items[i/len(pool)], pool[i%len(pool)]
			return solver.SolveContext(ctx, it.Inst.F, dataset.SolveOptions(p, r.Scale.ScatterBudget))
		})
	if err := sweep.FirstError(errs); err != nil {
		return PolicyPoolResult{}, err
	}
	for j := range items {
		best := -1.0
		bestIdx := -1
		anySolved := false
		row := make([]float64, len(pool))
		rowSolved := make([]bool, len(pool))
		for i := range pool {
			sres := cells[j*len(pool)+i]
			row[i] = float64(sres.Stats.Propagations)
			rowSolved[i] = sres.Status != solver.Unknown
			if rowSolved[i] {
				anySolved = true
				if best < 0 || row[i] < best {
					best, bestIdx = row[i], i
				}
			}
		}
		if !anySolved {
			continue
		}
		res.Instances++
		strict := true
		for i := range pool {
			costs[i] = append(costs[i], row[i])
			solved[i] = append(solved[i], rowSolved[i])
			if i != bestIdx && rowSolved[i] && row[i] == best {
				strict = false
			}
		}
		if strict && bestIdx >= 0 {
			res.Wins[bestIdx]++
		}
		oracle = append(oracle, best)
		oracleSolved = append(oracleSolved, true)
	}
	for i := range pool {
		res.Summaries = append(res.Summaries, metrics.Summarize(costs[i], solved[i]))
	}
	res.OracleMedian = metrics.Summarize(oracle, oracleSolved).Median
	return res, nil
}

// Render prints the policy-pool comparison.
func (p PolicyPoolResult) Render() string {
	rows := make([][]string, 0, len(p.Policies))
	for i, name := range p.Policies {
		s := p.Summaries[i]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", s.Solved),
			fmt.Sprintf("%.0f", s.Median),
			fmt.Sprintf("%.0f", s.Average),
			fmt.Sprintf("%d", p.Wins[i]),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension — deletion-policy pool over %d instances\n", p.Instances)
	sb.WriteString(table([]string{"policy", "solved", "median props", "avg props", "strict wins"}, rows))
	fmt.Fprintf(&sb, "  pool oracle median: %.0f propagations\n", p.OracleMedian)
	return sb.String()
}
