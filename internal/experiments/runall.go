package experiments

import (
	"fmt"
	"io"
)

// RunAll executes the requested experiments (all of them when only is
// empty) and writes their rendered reports to w. Valid names: fig3, fig4,
// fig5, table1, table2, fig7, table3.
func (r *Runner) RunAll(w io.Writer, only string) error {
	want := func(name string) bool { return only == "" || only == name }
	type step struct {
		name string
		run  func() (interface{ Render() string }, error)
	}
	steps := []step{
		{"fig3", func() (interface{ Render() string }, error) { v, err := r.Fig3(); return v, err }},
		{"fig5", func() (interface{ Render() string }, error) { v, err := r.Fig5(); return v, err }},
		{"table1", func() (interface{ Render() string }, error) { v, err := r.Table1(); return v, err }},
		{"fig4", func() (interface{ Render() string }, error) { v, err := r.Fig4(); return v, err }},
		{"table2", func() (interface{ Render() string }, error) { v, err := r.Table2(); return v, err }},
		{"fig7", func() (interface{ Render() string }, error) { v, err := r.Fig7(); return v, err }},
		{"ext-policies", func() (interface{ Render() string }, error) { v, err := r.PolicyPool(); return v, err }},
		{"ext-selectors", func() (interface{ Render() string }, error) { v, err := r.Selectors(); return v, err }},
		{"ext-alpha", func() (interface{ Render() string }, error) { v, err := r.AlphaSweep(); return v, err }},
		{"ext-scaling", func() (interface{ Render() string }, error) { v, err := r.Scaling(); return v, err }},
	}
	ran := false
	for _, s := range steps {
		match := want(s.name)
		// Table 3 is produced by the Figure 7 run.
		if s.name == "fig7" && only == "table3" {
			match = true
		}
		if !match {
			continue
		}
		// A canceled parent context (Ctrl-C, sweep deadline) stops between
		// steps too, not just inside a sweep.
		if err := r.baseContext().Err(); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		ran = true
		res, err := s.run()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		if only == "table3" {
			if f7, ok := res.(Fig7Result); ok {
				fmt.Fprintln(w, f7.Table3.Render())
				continue
			}
		}
		fmt.Fprintln(w, res.Render())
		if s.name == "fig7" && only == "" {
			if f7, ok := res.(Fig7Result); ok {
				fmt.Fprintln(w, f7.Table3.Render())
			}
		}
	}
	if !ran {
		return fmt.Errorf("experiments: unknown experiment %q (valid: fig3, fig4, fig5, table1, table2, fig7, table3, ext-policies, ext-selectors, ext-alpha, ext-scaling)", only)
	}
	return nil
}
