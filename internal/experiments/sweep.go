package experiments

import (
	"context"
	"time"

	"neuroselect/internal/sweep"
)

// sweepCells shards n cells of the named experiment across the runner's
// worker pool (see internal/sweep for the engine's guarantees) and logs a
// per-worker counter summary. Results and errors come back in cell order,
// so aggregation downstream is independent of scheduling.
func sweepCells[T any](r *Runner, name string, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []error) {
	opts := sweep.Options{
		Workers:     r.Workers,
		CellTimeout: r.CellTimeout,
		Counters:    &r.Sweep,
		Registry:    r.Obs,
	}
	out, errs := sweep.Map(r.baseContext(), opts, n, fn)
	r.logf("sweep %s: %s", name, r.Sweep.String())
	return out, errs
}

// firstNonNil returns the first non-nil error of its arguments.
func firstNonNil(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellDuration converts a measured cell duration for reporting: wall-clock
// normally, or a propagation-derived pseudo-duration (1 propagation ≡ 1µs)
// in Deterministic mode, so that timing columns are a pure function of the
// deterministic solver measure.
func (r *Runner) cellDuration(wall time.Duration, propagations int64) time.Duration {
	if r.Deterministic {
		return time.Duration(propagations) * time.Microsecond
	}
	return wall
}
