package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable form of a full experiment run, for
// archiving reproduction artifacts or diffing across solver versions.
type Report struct {
	Fig3       *Fig3Result       `json:"fig3,omitempty"`
	Fig5       *Fig5Result       `json:"fig5,omitempty"`
	Table1     *Table1Result     `json:"table1,omitempty"`
	Fig4       *ScatterResult    `json:"fig4,omitempty"`
	Table2     *Table2Result     `json:"table2,omitempty"`
	Fig7       *Fig7Result       `json:"fig7,omitempty"`
	PolicyPool *PolicyPoolResult `json:"ext_policies,omitempty"`
	Selectors  *SelectorsResult  `json:"ext_selectors,omitempty"`
	AlphaSweep *AlphaSweepResult `json:"ext_alpha,omitempty"`
	Scaling    *ScalingResult    `json:"ext_scaling,omitempty"`
}

// reportSteps maps experiment names to the Report field they fill; paper
// order. Used by BuildReport for both the full run and selections.
func (r *Runner) reportSteps(rep *Report) []struct {
	name string
	run  func() error
} {
	return []struct {
		name string
		run  func() error
	}{
		{"fig3", func() error { v, err := r.Fig3(); rep.Fig3 = &v; return err }},
		{"fig5", func() error { v, err := r.Fig5(); rep.Fig5 = &v; return err }},
		{"table1", func() error { v, err := r.Table1(); rep.Table1 = &v; return err }},
		{"fig4", func() error { v, err := r.Fig4(); rep.Fig4 = &v; return err }},
		{"table2", func() error { v, err := r.Table2(); rep.Table2 = &v; return err }},
		{"fig7", func() error { v, err := r.Fig7(); rep.Fig7 = &v; return err }},
		{"ext-policies", func() error { v, err := r.PolicyPool(); rep.PolicyPool = &v; return err }},
		{"ext-selectors", func() error { v, err := r.Selectors(); rep.Selectors = &v; return err }},
		{"ext-alpha", func() error { v, err := r.AlphaSweep(); rep.AlphaSweep = &v; return err }},
		{"ext-scaling", func() error { v, err := r.Scaling(); rep.Scaling = &v; return err }},
	}
}

// BuildReport executes the named experiments (all of them when only is
// empty) and returns the combined report. The heavyweight shared artifacts
// (corpus, trained model) are computed once across steps.
func (r *Runner) BuildReport(only ...string) (*Report, error) {
	want := func(name string) bool {
		if len(only) == 0 {
			return true
		}
		for _, o := range only {
			if o == name {
				return true
			}
		}
		return false
	}
	var rep Report
	ran := false
	for _, s := range r.reportSteps(&rep) {
		if !want(s.name) {
			continue
		}
		if err := r.baseContext().Err(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		ran = true
		if err := s.run(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
	}
	if !ran {
		return nil, fmt.Errorf("experiments: no experiment matched %v", only)
	}
	return &rep, nil
}

// RunAllJSON executes every experiment and writes one JSON document.
func (r *Runner) RunAllJSON(w io.Writer) error {
	rep, err := r.BuildReport()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
