package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable form of a full experiment run, for
// archiving reproduction artifacts or diffing across solver versions.
type Report struct {
	Fig3       *Fig3Result       `json:"fig3,omitempty"`
	Fig5       *Fig5Result       `json:"fig5,omitempty"`
	Table1     *Table1Result     `json:"table1,omitempty"`
	Fig4       *ScatterResult    `json:"fig4,omitempty"`
	Table2     *Table2Result     `json:"table2,omitempty"`
	Fig7       *Fig7Result       `json:"fig7,omitempty"`
	PolicyPool *PolicyPoolResult `json:"ext_policies,omitempty"`
	Selectors  *SelectorsResult  `json:"ext_selectors,omitempty"`
	AlphaSweep *AlphaSweepResult `json:"ext_alpha,omitempty"`
	Scaling    *ScalingResult    `json:"ext_scaling,omitempty"`
}

// RunAllJSON executes every experiment and writes one JSON document. The
// heavyweight shared artifacts (corpus, trained model) are computed once,
// as in RunAll.
func (r *Runner) RunAllJSON(w io.Writer) error {
	var rep Report
	step := func(name string, run func() error) error {
		if err := run(); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		return nil
	}
	if err := step("fig3", func() error { v, err := r.Fig3(); rep.Fig3 = &v; return err }); err != nil {
		return err
	}
	if err := step("fig5", func() error { v, err := r.Fig5(); rep.Fig5 = &v; return err }); err != nil {
		return err
	}
	if err := step("table1", func() error { v, err := r.Table1(); rep.Table1 = &v; return err }); err != nil {
		return err
	}
	if err := step("fig4", func() error { v, err := r.Fig4(); rep.Fig4 = &v; return err }); err != nil {
		return err
	}
	if err := step("table2", func() error { v, err := r.Table2(); rep.Table2 = &v; return err }); err != nil {
		return err
	}
	if err := step("fig7", func() error { v, err := r.Fig7(); rep.Fig7 = &v; return err }); err != nil {
		return err
	}
	if err := step("ext-policies", func() error { v, err := r.PolicyPool(); rep.PolicyPool = &v; return err }); err != nil {
		return err
	}
	if err := step("ext-selectors", func() error { v, err := r.Selectors(); rep.Selectors = &v; return err }); err != nil {
		return err
	}
	if err := step("ext-alpha", func() error { v, err := r.AlphaSweep(); rep.AlphaSweep = &v; return err }); err != nil {
		return err
	}
	if err := step("ext-scaling", func() error { v, err := r.Scaling(); rep.Scaling = &v; return err }); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
