package experiments

import (
	"fmt"
	"math"
	"strings"
)

func mathLog(v float64) float64 { return math.Log(v) }

// table renders rows of cells as an aligned ASCII table with a header.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		sb.WriteString("  ")
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// boxplot renders quantiles (min, q1, median, q3, max) as an ASCII box — the
// textual analogue of the paper's Figure 7(b) box-and-whisker plots.
func boxplot(label string, q []float64, unit string) string {
	if len(q) != 5 {
		return fmt.Sprintf("  %s: (no data)\n", label)
	}
	lo, hi := q[0], q[4]
	span := hi - lo
	if span <= 0 {
		return fmt.Sprintf("  %-22s min=q1=med=q3=max=%.3g %s\n", label, lo, unit)
	}
	const w = 50
	pos := func(v float64) int {
		p := int(float64(w) * (v - lo) / span)
		if p < 0 {
			p = 0
		}
		if p >= w {
			p = w - 1
		}
		return p
	}
	row := []byte(strings.Repeat(" ", w))
	for i := pos(q[0]); i <= pos(q[4]); i++ {
		row[i] = '-'
	}
	for i := pos(q[1]); i <= pos(q[3]); i++ {
		row[i] = '='
	}
	row[pos(q[2])] = '|'
	return fmt.Sprintf("  %-22s [%s]\n  %-22s min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g %s\n",
		label, string(row), "", q[0], q[1], q[2], q[3], q[4], unit)
}
