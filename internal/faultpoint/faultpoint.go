// Package faultpoint provides named, deterministic fault-injection sites
// for exercising the solve stack's failure-containment paths in tests.
//
// A site is a stable string name compiled into production code at the spot
// where a fault could plausibly originate (a parse, a model inference, a
// reduce step, a race worker). In production every site is unarmed and a
// hit costs a single atomic load. Tests arm a site with a Fault — an error
// to return, a value to panic with, or a delay to sleep — optionally
// skipping the first Skip hits and firing at most Times times, which makes
// the injected failure deterministic with respect to the hit sequence.
//
// The registry is global because the sites are compiled into packages that
// must not depend on test plumbing. Every exported function — Arm, Disarm,
// Reset, Active, Hits, Fired, and Hit — is safe for concurrent use, and the
// package is race-detector clean: tests may arm or disarm a site while
// server goroutines are hitting it. An Arm or Disarm is linearizable with
// respect to concurrent Hits: each Hit observes either the entire old fault
// (with its hit counters) or the entire new one, never a mix, and the
// Skip/Times window of one armed fault is counted under a single lock so
// the firing sequence is deterministic in the number of hits even when the
// hits come from many goroutines. Tests should still register
// t.Cleanup(faultpoint.Reset) so a failing test cannot leak armed sites
// into the next one.
package faultpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one fault-injection location in the solve stack.
type Site string

// The compiled-in sites. The constant value is the stable name; the
// constant identifier documents the owning package.
const (
	// DimacsParse fires at the top of cnf.ParseDIMACS.
	DimacsParse Site = "cnf.dimacs.parse"
	// ModelInference fires inside portfolio.Selector.Choose, immediately
	// before the model call.
	ModelInference Site = "portfolio.model.inference"
	// SolverReduce fires at the top of the solver's reduce step. Injected
	// errors are escalated to panics (a failing reduction is an internal
	// invariant violation) and contained by solver.SolveContext.
	SolverReduce Site = "solver.reduce"
	// SolverPropagate fires at every interrupt poll inside BCP (once per
	// Options.InterruptEvery propagations). A Delay fault simulates a slow
	// propagation chain for deadline tests.
	SolverPropagate Site = "solver.propagate"
	// RaceWorker fires at the start of each portfolio.Race worker
	// goroutine.
	RaceWorker Site = "portfolio.race.worker"
	// PortfolioWorker fires at the start of each parallel-portfolio worker
	// (free-running mode: once per worker goroutine; deterministic mode:
	// once per live worker per exchange round). An injected error or panic
	// fails that worker; the portfolio continues on the survivors.
	PortfolioWorker Site = "portfolio.parallel.worker"
	// PortfolioExport fires in the clause-exchange export hook, once per
	// learned clause offered for sharing. An injected error drops the
	// clause (degraded exchange); a panic kills the exporting worker and
	// is contained by the portfolio.
	PortfolioExport Site = "portfolio.exchange.export"
	// PortfolioImport fires in the clause-exchange import drain, once per
	// batch. An injected error drops the pending batch (degraded
	// exchange); a panic kills the importing worker and is contained by
	// the portfolio.
	PortfolioImport Site = "portfolio.exchange.import"
	// ExperimentInstance fires once per test instance in the experiments
	// runner's solving loops.
	ExperimentInstance Site = "experiments.instance"

	// The server sites below are threaded through internal/server and
	// drive its chaos harness (internal/server's chaos tests arm random,
	// seed-deterministic subsets of them).

	// ServerJournalAppend fires before every job-journal append; an
	// injected error degrades journaling (the record is dropped) without
	// failing the request.
	ServerJournalAppend Site = "server.journal.append"
	// ServerJournalReplay fires once per journal record during startup
	// replay; an injected error skips that record.
	ServerJournalReplay Site = "server.journal.replay"
	// ServerCacheGet fires before every result-cache lookup; an injected
	// error is treated as a miss.
	ServerCacheGet Site = "server.cache.get"
	// ServerCachePut fires before every result-cache fill; an injected
	// error skips the fill.
	ServerCachePut Site = "server.cache.put"
	// ServerEnqueue fires inside the admission path; an injected error
	// sheds the request as if the queue were full.
	ServerEnqueue Site = "server.enqueue"
	// ServerWorkerSolve fires in the worker immediately before the solve;
	// injected errors and panics are transient failures eligible for the
	// server's retry policy.
	ServerWorkerSolve Site = "server.worker.solve"
	// ServerInference fires before the selector inference call; an
	// injected error counts as an inference failure toward the circuit
	// breaker.
	ServerInference Site = "server.inference"
	// ServerDrain fires at the start of graceful drain; a Delay fault
	// simulates a slow drain (errors are ignored — drain must proceed).
	ServerDrain Site = "server.drain"
)

// Fault describes what an armed site does when hit. Delay applies first,
// then PanicValue, then Err; a zero Fault is a pure counting probe.
type Fault struct {
	// Err is returned (wrapped with the site name) from Hit.
	Err error
	// PanicValue, when non-nil, makes Hit panic.
	PanicValue any
	// Delay makes Hit sleep before returning or panicking.
	Delay time.Duration
	// Skip passes the first Skip hits through unharmed.
	Skip int
	// Times bounds how often the fault fires (0 = every eligible hit).
	Times int
}

type armedFault struct {
	fault Fault
	hits  int
	fired int
}

var (
	armedCount atomic.Int32
	mu         sync.Mutex
	sites      = map[Site]*armedFault{}
)

// Arm installs a fault at the site, replacing any previous one and
// resetting its hit counters.
func Arm(site Site, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; !ok {
		armedCount.Add(1)
	}
	sites[site] = &armedFault{fault: f}
}

// Disarm removes the fault at the site, if any.
func Disarm(site Site) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		armedCount.Add(-1)
	}
}

// Reset disarms every site. Tests should register it with t.Cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for s := range sites {
		delete(sites, s)
	}
	armedCount.Store(0)
}

// Active reports whether any site is armed; it is a single atomic load and
// is the fast path Hit takes in production.
func Active() bool { return armedCount.Load() > 0 }

// Hits returns how many times the site has been hit since it was armed
// (0 when unarmed).
func Hits(site Site) int {
	mu.Lock()
	defer mu.Unlock()
	if af, ok := sites[site]; ok {
		return af.hits
	}
	return 0
}

// Fired returns how many times the site's fault actually fired (0 when
// unarmed; hits swallowed by Skip/Times do not count).
func Fired(site Site) int {
	mu.Lock()
	defer mu.Unlock()
	if af, ok := sites[site]; ok {
		return af.fired
	}
	return 0
}

// Hit is called by production code at the site. When the site is unarmed
// it returns nil after one atomic load. When armed it counts the hit and,
// if the Skip/Times window admits it, sleeps Delay, panics with
// PanicValue, or returns Err wrapped with the site name, in that order.
func Hit(site Site) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	af, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	af.hits++
	if af.hits <= af.fault.Skip || (af.fault.Times > 0 && af.fired >= af.fault.Times) {
		mu.Unlock()
		return nil
	}
	af.fired++
	f := af.fault
	mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.PanicValue != nil {
		panic(fmt.Sprintf("faultpoint %s: %v", site, f.PanicValue))
	}
	if f.Err != nil {
		return fmt.Errorf("faultpoint %s: %w", site, f.Err)
	}
	return nil
}
