package faultpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

const site Site = "test.site"

func TestUnarmedHitIsNoOp(t *testing.T) {
	t.Cleanup(Reset)
	if Active() {
		t.Fatal("no site armed, Active must be false")
	}
	if err := Hit(site); err != nil {
		t.Fatalf("unarmed hit returned %v", err)
	}
	if Hits(site) != 0 {
		t.Fatal("unarmed site must not count hits")
	}
}

func TestErrorFault(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm(site, Fault{Err: boom})
	if !Active() {
		t.Fatal("armed site must report Active")
	}
	err := Hit(site)
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	Disarm(site)
	if Active() {
		t.Fatal("Disarm must clear Active")
	}
	if err := Hit(site); err != nil {
		t.Fatalf("disarmed hit returned %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm(site, Fault{PanicValue: "kaboom"})
	defer func() {
		if recover() == nil {
			t.Fatal("panic fault must panic")
		}
	}()
	_ = Hit(site)
}

func TestSkipAndTimesAreDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm(site, Fault{Err: boom, Skip: 2, Times: 2})
	var fired []int
	for i := 0; i < 6; i++ {
		if Hit(site) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("want fires at hits 2,3; got %v", fired)
	}
	if Hits(site) != 6 {
		t.Fatalf("want 6 hits counted, got %d", Hits(site))
	}
}

func TestDelayFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm(site, Fault{Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Hit(site); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay fault returned after %v", d)
	}
}

func TestConcurrentHits(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Arm(site, Fault{Err: boom, Times: 5})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if Hit(site) != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Fatalf("Times=5 must fire exactly 5 times, got %d", fired)
	}
	if Hits(site) != 80 {
		t.Fatalf("want 80 hits, got %d", Hits(site))
	}
}

func TestRearmResetsCounters(t *testing.T) {
	t.Cleanup(Reset)
	Arm(site, Fault{Err: errors.New("a"), Times: 1})
	_ = Hit(site)
	Arm(site, Fault{Err: errors.New("b"), Times: 1})
	if Hits(site) != 0 {
		t.Fatal("re-arming must reset hit counters")
	}
	if Hit(site) == nil {
		t.Fatal("re-armed fault must fire again")
	}
}

// TestConcurrentArmDisarmHit is the package's documented-guarantee stress
// test: goroutines hammer Hit on a set of sites while others arm, disarm,
// re-arm, and interrogate them. Run under -race it proves the registry is
// race-free when tests reconfigure sites that live server goroutines are
// hitting; the invariant checked here is weaker (no crash, counters sane)
// because interleavings are nondeterministic by design.
func TestConcurrentArmDisarmHit(t *testing.T) {
	t.Cleanup(Reset)
	sites := []Site{"test.conc.a", "test.conc.b", "test.conc.c"}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Hitters: simulate server goroutines crossing the sites constantly.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = Hit(sites[(g+i)%len(sites)])
			}
		}(g)
	}
	// Armers: simulate tests reconfiguring faults mid-flight.
	errBoom := errors.New("boom")
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := sites[(g+i)%len(sites)]
				Arm(s, Fault{Err: errBoom, Skip: i % 3, Times: 1 + i%4})
				_ = Hits(s)
				_ = Fired(s)
				_ = Active()
				if i%5 == 0 {
					Disarm(s)
				}
			}
		}(g)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	Reset()
	if Active() {
		t.Fatal("Reset must leave no site armed")
	}
	for _, s := range sites {
		if Hits(s) != 0 || Fired(s) != 0 {
			t.Fatalf("site %s retained counters after Reset", s)
		}
	}
}
