package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
	"neuroselect/internal/obs"
)

const (
	satCNF   = "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n"
	unsatCNF = "p cnf 1 2\n1 0\n-1 0\n"
)

// phpDIMACS renders an unsatisfiable pigeonhole instance; holes >= 8 keeps
// a worker busy long enough to observe queueing and draining.
func phpDIMACS(t *testing.T, holes int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cnf.WriteDIMACS(&buf, gen.Pigeonhole(holes).F); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newTestServer starts a Server on an httptest listener and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSolve(t *testing.T, resp *http.Response) (solveResponse, []byte) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr solveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return sr, raw
}

func TestSolveSATVerifiesModel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := post(t, ts.URL+"/v1/solve", satCNF)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	sr, _ := decodeSolve(t, resp)
	if sr.Status != "SAT" {
		t.Fatalf("status = %q, want SAT", sr.Status)
	}
	if sr.Policy.Name != "default" || sr.Policy.Fallback != "no-model" {
		t.Errorf("policy = %+v, want default/no-model", sr.Policy)
	}
	f := parse(t, satCNF)
	if len(sr.Model) != f.NumVars {
		t.Fatalf("model has %d lits, want %d", len(sr.Model), f.NumVars)
	}
	a := cnf.NewAssignment(f.NumVars)
	for _, l := range sr.Model {
		if l > 0 {
			a[l] = true
		}
	}
	if !a.Satisfies(f) {
		t.Errorf("returned model %v does not satisfy the formula", sr.Model)
	}
	if sr.Timings.TotalNS <= 0 || sr.Timings.SolveNS <= 0 {
		t.Errorf("timings not populated: %+v", sr.Timings)
	}
}

func TestSolveUNSAT(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, body := range []string{unsatCNF, phpDIMACS(t, 5)} {
		sr, _ := decodeSolve(t, post(t, ts.URL+"/v1/solve", body))
		if sr.Status != "UNSAT" {
			t.Errorf("status = %q, want UNSAT", sr.Status)
		}
		if len(sr.Model) != 0 {
			t.Errorf("UNSAT carried a model: %v", sr.Model)
		}
	}
}

func TestSolveTimeoutReturnsUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := post(t, ts.URL+"/v1/solve?timeout=100ms", phpDIMACS(t, 10))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (UNKNOWN is a result, not an error)", resp.StatusCode)
	}
	sr, _ := decodeSolve(t, resp)
	if sr.Status != "UNKNOWN" {
		t.Fatalf("status = %q, want UNKNOWN", sr.Status)
	}
	if sr.Stop != "timeout" {
		t.Errorf("stop = %q, want timeout", sr.Stop)
	}
}

func TestTimeoutClampedByServerMax(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxTimeout: 100 * time.Millisecond})
	start := time.Now()
	sr, _ := decodeSolve(t, post(t, ts.URL+"/v1/solve?timeout=1h", phpDIMACS(t, 10)))
	if sr.Status != "UNKNOWN" || sr.Stop != "timeout" {
		t.Fatalf("got %q/%q, want UNKNOWN/timeout", sr.Status, sr.Stop)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("clamp ignored: solve ran %v", elapsed)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed dimacs", "/v1/solve", "p cnf nope\n1 0\n", 400},
		{"empty body", "/v1/solve", "", 400},
		{"bad timeout", "/v1/solve?timeout=banana", satCNF, 400},
		{"bad policy", "/v1/solve?policy=banana", satCNF, 400},
		{"bad trace", "/v1/solve?trace=banana", satCNF, 400},
	}
	for _, tc := range cases {
		resp := post(t, ts.URL+tc.path, tc.body)
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if e.Error == "" {
			t.Errorf("%s: error body missing", tc.name)
		}
	}
	// Wrong method and unknown route come from the mux.
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	resp := post(t, ts.URL+"/v1/solve", satCNF+strings.Repeat("c padding\n", 100))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

func TestGzipUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(satCNF)); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/solve", &buf)
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sr, _ := decodeSolve(t, resp)
	if sr.Status != "SAT" {
		t.Errorf("gzip solve status = %q, want SAT", sr.Status)
	}

	// Unknown encodings are refused, not misparsed.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/solve", strings.NewReader(satCNF))
	req.Header.Set("Content-Encoding", "zstd")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("zstd upload = %d, want 415", resp.StatusCode)
	}
}

func TestCacheHitReturnsIdenticalBody(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 1, Registry: reg})

	resp1 := post(t, ts.URL+"/v1/solve", satCNF)
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	_, raw1 := decodeSolve(t, resp1)

	// Same clause set, different surface syntax: must still hit.
	reordered := "c same instance\np cnf 3 3\n-2 -3 0\n2 1 0\n-1 3 0\n"
	resp2 := post(t, ts.URL+"/v1/solve", reordered)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	_, raw2 := decodeSolve(t, resp2)
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("cache hit body differs from original:\n%s\nvs\n%s", raw1, raw2)
	}

	hits := reg.Counter("neuroselect_server_cache_events_total", "", obs.Labels{"event": "hit"})
	misses := reg.Counter("neuroselect_server_cache_events_total", "", obs.Labels{"event": "miss"})
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Errorf("cache counters hit=%d miss=%d, want 1/1", hits.Value(), misses.Value())
	}

	// A different instance must miss.
	resp3 := post(t, ts.URL+"/v1/solve", unsatCNF)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("distinct formula X-Cache = %q, want miss", got)
	}
	resp3.Body.Close()
}

func TestUnknownResultsAreNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := phpDIMACS(t, 10)
	sr, _ := decodeSolve(t, post(t, ts.URL+"/v1/solve?timeout=50ms", body))
	if sr.Status != "UNKNOWN" {
		t.Fatalf("warmup status = %q, want UNKNOWN", sr.Status)
	}
	resp := post(t, ts.URL+"/v1/solve?timeout=50ms", body)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("UNKNOWN was cached: X-Cache = %q", got)
	}
	resp.Body.Close()
}

func TestTraceCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp := post(t, ts.URL+"/v1/solve?trace=1", phpDIMACS(t, 5))
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Errorf("traced X-Cache = %q, want bypass", got)
	}
	sr, _ := decodeSolve(t, resp)
	if sr.Status != "UNSAT" {
		t.Fatalf("status = %q, want UNSAT", sr.Status)
	}
	types := map[string]bool{}
	for _, ev := range sr.Trace {
		types[ev.Type] = true
	}
	for _, want := range []string{obs.EventPolicy, obs.EventSolveStart, obs.EventSolveEnd} {
		if !types[want] {
			t.Errorf("trace missing %q events (got %v)", want, types)
		}
	}
}

func TestQueueFullSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MaxTimeout: 60 * time.Second})
	hard := phpDIMACS(t, 10)

	// Occupy the single worker, then fill the queue's one slot. Async
	// submissions return immediately, so no client goroutines needed. The
	// instances must be genuinely distinct — identical formulas would
	// share the first job's flight (singleflight) instead of queueing.
	id1 := submitJob(t, ts.URL, hard)
	waitJobState(t, ts.URL, id1, JobRunning)
	submitJob(t, ts.URL, phpDIMACS(t, 9))

	resp := post(t, ts.URL+"/v1/jobs", phpDIMACS(t, 8))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	shed := s.Registry().Counter("neuroselect_server_shed_total", "", nil)
	if shed.Value() == 0 {
		t.Error("shed counter did not move")
	}
	// The sync endpoint sheds identically (again a distinct instance).
	resp2 := post(t, ts.URL+"/v1/solve", phpDIMACS(t, 7))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Errorf("sync shed status = %d, want 429", resp2.StatusCode)
	}
}

// submitJob posts an async job and returns its id.
func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	resp := post(t, base+"/v1/jobs", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// pollJob fetches one job view.
func pollJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitJobState polls until the job reaches the state (or is past it, for
// running→done races) or the deadline hits.
func waitJobState(t *testing.T, base, id, state string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := pollJob(t, base, id)
		if v.Status == state || v.Status == JobDone {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, state)
	return jobView{}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := submitJob(t, ts.URL, satCNF)
	v := waitJobState(t, ts.URL, id, JobDone)
	if v.Status != JobDone {
		t.Fatalf("job status = %q, want done", v.Status)
	}
	var sr solveResponse
	if err := json.Unmarshal(v.Result, &sr); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	if sr.Status != "SAT" {
		t.Errorf("async result = %q, want SAT", sr.Status)
	}

	// A second submit of the same instance completes from the cache on
	// the submit response itself.
	resp := post(t, ts.URL+"/v1/jobs", satCNF)
	defer resp.Body.Close()
	var v2 jobView
	if err := json.NewDecoder(resp.Body).Decode(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Status != JobDone || !v2.Cached {
		t.Errorf("cached submit = %+v, want done/cached", v2)
	}

	// Unknown ids 404.
	resp404, err := http.Get(ts.URL + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != 404 {
		t.Errorf("unknown job = %d, want 404", resp404.StatusCode)
	}
}

func TestGracefulDrainCompletesInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxTimeout: 60 * time.Second})
	id := submitJob(t, ts.URL, phpDIMACS(t, 8))
	waitJobState(t, ts.URL, id, JobRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining flips synchronously inside Drain; wait for it to be visible.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the in-flight job keeps running.
	resp := post(t, ts.URL+"/v1/solve", satCNF)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("solve during drain = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hresp.StatusCode)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job finished with a real result — nothing dropped.
	v := pollJob(t, ts.URL, id)
	if v.Status != JobDone || v.Error != "" {
		t.Fatalf("after drain job = %+v, want done without error", v)
	}
	var sr solveResponse
	if err := json.Unmarshal(v.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status != "UNSAT" {
		t.Errorf("drained job result = %q, want UNSAT (php-8)", sr.Status)
	}
}

func TestPolicyPinning(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, pol := range []string{"default", "frequency", "activity", "size"} {
		sr, _ := decodeSolve(t, post(t, ts.URL+"/v1/solve?policy="+pol, phpDIMACS(t, 5)+"c "+pol+"\n"))
		if sr.Policy.Name != pol || sr.Policy.Fallback != "requested" {
			t.Errorf("policy %s: got %+v", pol, sr.Policy)
		}
		if sr.Status != "UNSAT" {
			t.Errorf("policy %s: status %q, want UNSAT", pol, sr.Status)
		}
	}
}

// TestConcurrentClients hammers one server from many goroutines mixing
// cacheable repeats, distinct instances, and timeouts; run under -race it
// checks the admission path, cache, job store, and metrics for data races.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	bodies := []struct {
		cnf  string
		want string
	}{
		{satCNF, "SAT"},
		{unsatCNF, "UNSAT"},
		{phpDIMACS(t, 4), "UNSAT"},
		{phpDIMACS(t, 5), "UNSAT"},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				b := bodies[(g+i)%len(bodies)]
				resp, err := http.Post(ts.URL+"/v1/solve", "text/plain", strings.NewReader(b.cnf))
				if err != nil {
					errs <- err.Error()
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					continue // legitimate shed under load
				}
				var sr solveResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					errs <- fmt.Sprintf("goroutine %d: decode %q: %v", g, raw, err)
					return
				}
				if sr.Status != b.want {
					errs <- fmt.Sprintf("goroutine %d: status %q, want %q", g, sr.Status, b.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
