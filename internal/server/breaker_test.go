package server

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"neuroselect/internal/core"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
)

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return clock }

	var flips []breakerState
	b.onFlip = func(to breakerState) { flips = append(flips, to) }

	// Two failures stay below threshold; a success resets the streak.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	if st := b.State(); st != breakerClosed {
		t.Fatalf("state after reset = %v, want closed", st)
	}
	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Record(false)
	}
	if st := b.State(); st != breakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an inference inside the cooldown")
	}
	// Cooldown elapses → half-open with a single probe.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if st := b.State(); st != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", st)
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// Probe fails → re-open for another cooldown.
	b.Record(false)
	if st := b.State(); st != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	// Next probe succeeds → closed.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("re-cooled breaker refused the probe")
	}
	b.Record(true)
	if st := b.State(); st != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	want := []breakerState{breakerOpen, breakerHalfOpen, breakerOpen, breakerHalfOpen, breakerClosed}
	if len(flips) != len(want) {
		t.Fatalf("transition hook fired %d times (%v), want %v", len(flips), flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (all: %v)", i, flips[i], want[i], flips)
		}
	}
}

func testSelector() *portfolio.Selector {
	return portfolio.NewSelector(
		core.NewModel(core.Config{Hidden: 8, HGTLayers: 1, MPLayers: 1, Attention: true, Seed: 1}))
}

// TestBreakerTripsOnInferenceFaults drives the server-level integration:
// consecutive injected inference failures open the breaker, subsequent
// requests skip the model and report the breaker-open fallback, /healthz
// exposes the state, and the metrics account for every path.
func TestBreakerTripsOnInferenceFaults(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{
		Workers:          1,
		CacheSize:        -1, // no cache, no dedup keys: every request infers
		Selector:         testSelector(),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // never half-opens within the test
	})
	faultpoint.Arm(faultpoint.ServerInference, faultpoint.Fault{Err: errors.New("model wedged")})

	// Two failing inferences trip the breaker; both requests still answer
	// (degraded to the default policy).
	for i := 0; i < 2; i++ {
		resp := post(t, ts.URL+"/v1/solve", satCNF)
		sr, _ := decodeSolve(t, resp)
		if resp.StatusCode != 200 || sr.Status != "SAT" {
			t.Fatalf("request %d: status=%d solve=%q, want a degraded 200 SAT", i, resp.StatusCode, sr.Status)
		}
		if sr.Policy.Fallback != portfolio.FallbackError {
			t.Fatalf("request %d fallback = %q, want %q", i, sr.Policy.Fallback, portfolio.FallbackError)
		}
	}
	if st := s.brk.State(); st != breakerOpen {
		t.Fatalf("breaker state = %v, want open after %d failures", st, 2)
	}

	// The next request never reaches the (still armed) faultpoint: the
	// open breaker skips inference outright.
	before := faultpoint.Hits(faultpoint.ServerInference)
	resp := post(t, ts.URL+"/v1/solve", satCNF)
	sr, _ := decodeSolve(t, resp)
	if sr.Policy.Fallback != FallbackBreakerOpen || sr.Policy.Name != "default" {
		t.Fatalf("open-breaker policy = %+v, want default via %q", sr.Policy, FallbackBreakerOpen)
	}
	if got := faultpoint.Hits(faultpoint.ServerInference); got != before {
		t.Fatalf("open breaker still performed inference (hits %d -> %d)", before, got)
	}

	// /healthz reports the degraded-but-up state.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != 200 || !strings.Contains(string(body), "breaker=open") {
		t.Fatalf("healthz = %d %q, want 200 with breaker=open", hresp.StatusCode, body)
	}

	reg := s.Registry()
	if got := reg.Counter("neuroselect_server_inference_total", "", obs.Labels{"outcome": "failure"}).Value(); got != 2 {
		t.Errorf("inference failure counter = %d, want 2", got)
	}
	if got := reg.Counter("neuroselect_server_inference_total", "", obs.Labels{"outcome": FallbackBreakerOpen}).Value(); got != 1 {
		t.Errorf("breaker-open counter = %d, want 1", got)
	}
	if got := reg.Counter("neuroselect_server_breaker_transitions_total", "", obs.Labels{"to": "open"}).Value(); got != 1 {
		t.Errorf("transition counter = %d, want 1", got)
	}
}

// TestBreakerLatencyTrip: a healthy-but-slow model counts as failing when
// BreakerMaxLatency is set.
func TestBreakerLatencyTrip(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	sel := testSelector()
	s, ts := newTestServer(t, Config{
		Workers:           1,
		CacheSize:         -1,
		Selector:          sel,
		BreakerThreshold:  1,
		BreakerCooldown:   time.Hour,
		BreakerMaxLatency: time.Nanosecond, // any real inference is "too slow"
	})
	resp := post(t, ts.URL+"/v1/solve", satCNF)
	resp.Body.Close()
	if st := s.brk.State(); st != breakerOpen {
		t.Fatalf("breaker state = %v, want open after one latency spike", st)
	}
}
