package server

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
)

// Job lifecycle states as reported by GET /v1/jobs/{id}.
const (
	// JobQueued: admitted, waiting for a worker.
	JobQueued = "queued"
	// JobRunning: a worker is solving it.
	JobRunning = "running"
	// JobDone: finished; the result (or error) is attached.
	JobDone = "done"
)

// job is one admitted solve: the parsed formula, its request parameters,
// and the completion slot the handler (sync) or the poll endpoint (async)
// reads. A job flows queue → worker → done exactly once.
type job struct {
	id  string // async only; "" for sync solves
	f   *cnf.Formula
	key string // cache key; "" when caching is bypassed

	timeout       time.Duration
	policy        deletion.Policy // non-nil pins the policy (bypasses the selector)
	portfolio     int             // >0 solves with an N-worker portfolio instead of one solver
	deterministic bool            // portfolio only: lockstep exchange rounds
	trace         bool
	cached        bool // completed from the result cache without solving
	shared        bool // completed by an identical in-flight solve (singleflight)
	attempt       int  // retry attempt number; 0 = first admission

	ctx      context.Context // request ctx (sync) or server base ctx (async)
	enqueued time.Time

	// reqID is the X-Request-ID of the request that created the job,
	// immutable after admission: stamped into journal records, streamed
	// trace events, and the job view.
	reqID string
	// bcast fans the job's live trace-event stream out to SSE subscribers
	// (async jobs only; see events.go). Closed exactly once when the job
	// reaches its terminal state, which is what ends every open stream.
	bcast *obs.Broadcaster
	// progress receives the solver's conflict-window rollups for the live
	// `progress` object in poll bodies (async jobs only).
	progress *solver.ProgressSink

	// followers are identical keyed jobs riding this one (guarded by the
	// server's flight-table mutex, not j.mu — see flight.go).
	followers []*job

	mu        sync.Mutex
	state     string
	done      chan struct{}
	body      []byte // marshaled solveResponse on success
	errCode   int    // non-zero on failure
	errMsg    string
	leaderReq string // dedup followers: the flight leader's request id
}

func newJob(f *cnf.Formula) *job {
	return &job{f: f, state: JobQueued, done: make(chan struct{}), enqueued: time.Now()}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

// succeed attaches the marshaled response body. finish() publishes it.
func (j *job) succeed(body []byte) {
	j.mu.Lock()
	j.body = body
	j.mu.Unlock()
}

// fail attaches an error outcome. finish() publishes it.
func (j *job) fail(code int, msg string) {
	j.mu.Lock()
	j.errCode, j.errMsg = code, msg
	j.mu.Unlock()
}

// finish marks the job done and wakes every waiter. A job that reaches
// the worker without an explicit outcome (impossible today) fails closed.
// The broadcaster closes after the terminal state publishes, so an event
// stream that ends always finds the final result behind it.
func (j *job) finish() {
	j.mu.Lock()
	if j.body == nil && j.errCode == 0 {
		j.errCode, j.errMsg = 500, "job finished without a result"
	}
	j.state = JobDone
	j.mu.Unlock()
	close(j.done)
	if j.bcast != nil {
		j.bcast.Close()
	}
}

// setLeaderReq records the flight leader's request id on a dedup follower.
func (j *job) setLeaderReq(id string) {
	j.mu.Lock()
	j.leaderReq = id
	j.mu.Unlock()
}

// leaderReqID returns the recorded leader request id ("" for leaders).
func (j *job) leaderReqID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.leaderReq
}

// reset clears a failed attempt's outcome so the job can be re-admitted
// by the retry path: state returns to queued and the enqueue clock
// restarts (queue-wait timings describe the attempt that answered).
func (j *job) reset() {
	j.mu.Lock()
	j.state = JobQueued
	j.body = nil
	j.errCode, j.errMsg = 0, ""
	j.mu.Unlock()
	j.enqueued = time.Now()
}

// completeFromCache marks a freshly created job done with a cached body,
// never visiting the queue.
func (j *job) completeFromCache(body []byte) {
	j.body = body
	j.state = JobDone
	close(j.done)
	if j.bcast != nil {
		j.bcast.Close()
	}
}

// snapshot returns the job's current state and outcome for rendering.
func (j *job) snapshot() (state string, body []byte, errCode int, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.body, j.errCode, j.errMsg
}

// view renders the job as its poll body. The same bytes serve
// GET /v1/jobs/{id} and the SSE stream's final `done` event, so the two
// are byte-identical for a finished job. The live progress object appears
// only while the job is queued/running and a window rollup exists.
func (j *job) view() jobView {
	state, body, errCode, errMsg := j.snapshot()
	v := jobView{
		ID:          j.id,
		Status:      state,
		Cached:      j.cached,
		Shared:      j.shared,
		ReqID:       j.reqID,
		LeaderReqID: j.leaderReqID(),
	}
	if state == JobDone {
		if errCode != 0 {
			v.Error = fmt.Sprintf("%d: %s", errCode, errMsg)
		} else {
			v.Result = body
		}
		return v
	}
	if j.progress != nil {
		if p, ok := j.progress.Load(); ok {
			v.Progress = &p
		}
	}
	return v
}

// solveResponse is the JSON body of a completed solve. Field names are
// the API contract (API.md); additions must be append-only.
type solveResponse struct {
	Status  string       `json:"status"`          // "SAT" | "UNSAT" | "UNKNOWN"
	Model   []int        `json:"model,omitempty"` // DIMACS literals, SAT only
	Stop    string       `json:"stop,omitempty"`  // UNKNOWN only: why the search stopped
	Policy  policyInfo   `json:"policy"`
	Stats   solver.Stats `json:"stats"`
	Timings timings      `json:"timings"`
	Cached  bool         `json:"cached"`
	Trace   []obs.Event  `json:"trace,omitempty"` // ?trace=1 only
	// Portfolio is present only for ?portfolio= solves (append-only
	// schema extension).
	Portfolio *portfolioInfo `json:"portfolio,omitempty"`
}

// portfolioInfo is the wire rendering of a portfolio solve's report:
// worker count, mode, winner, exchange ledgers, and the reproducibility
// fingerprints (prop_freq_hash, pseudo_time_us). Wall-clock time is
// deliberately absent — deterministic responses must not carry any.
type portfolioInfo struct {
	Workers       int                       `json:"workers"`
	Deterministic bool                      `json:"deterministic"`
	Winner        string                    `json:"winner,omitempty"`
	WinnerIndex   int                       `json:"winner_index"`
	Rounds        int                       `json:"rounds"`
	PropFreqHash  string                    `json:"prop_freq_hash,omitempty"`
	PseudoTimeUS  int64                     `json:"pseudo_time_us"`
	Exchange      []portfolio.ExchangeStats `json:"exchange"`
	Failures      []string                  `json:"failures,omitempty"`
}

// policyInfo mirrors portfolio.Choice for the wire.
type policyInfo struct {
	Name        string  `json:"name"`
	Prob        float64 `json:"prob"`               // model probability; -1 when inference was skipped
	Fallback    string  `json:"fallback,omitempty"` // why inference was skipped ("requested", "no-model", portfolio.Fallback*)
	InferenceNS int64   `json:"inference_ns,omitempty"`
}

// timings breaks a request's latency into its stages, all nanoseconds.
type timings struct {
	QueueNS int64 `json:"queue_ns"` // admission-queue wait
	SolveNS int64 `json:"solve_ns"` // search wall clock
	TotalNS int64 `json:"total_ns"` // enqueue → response marshaled
}

// jobView is the JSON body of GET /v1/jobs/{id} and POST /v1/jobs, and
// the data of the SSE stream's final `done` event. Append-only schema.
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"` // queued | running | done
	Cached bool            `json:"cached,omitempty"`
	Shared bool            `json:"shared,omitempty"` // result produced by a deduplicated identical solve
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"` // a solveResponse once done
	// ReqID is the X-Request-ID of the submitting request; LeaderReqID is
	// set on dedup followers and names the flight leader's request.
	ReqID       string `json:"req_id,omitempty"`
	LeaderReqID string `json:"leader_req_id,omitempty"`
	// Progress is the latest conflict-window rollup of a running solve
	// (absent once done, before the first window, and for shared
	// followers, whose solve runs on the leader).
	Progress *solver.Progress `json:"progress,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// marshalBody encodes a solveResponse once; the same bytes serve the
// response, the cache entry, and later cache hits, so a hit is
// byte-identical to the miss that filled it.
func marshalBody(resp *solveResponse) ([]byte, error) {
	return json.Marshal(resp)
}

// jobStore tracks async jobs by id and bounds memory by forgetting the
// oldest finished jobs beyond its history cap. Queued or running jobs are
// never evicted — a client can always poll work it was promised.
type jobStore struct {
	mu      sync.Mutex
	nextID  uint64
	prefix  string // Config.BackendName + "-" in backend mode; ids become cluster-unique
	byID    map[string]*job
	history int
	doneLst *list.List // job ids in completion-registration order
}

func newJobStore(history int, prefix string) *jobStore {
	return &jobStore{byID: make(map[string]*job), prefix: prefix, history: history, doneLst: list.New()}
}

// Add registers a job and assigns its id.
func (st *jobStore) Add(j *job) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	j.id = fmt.Sprintf("%sj%08d", st.prefix, st.nextID)
	st.byID[j.id] = j
	return j.id
}

// AddReplayed registers a journal-replayed job under its original id so
// a client polling across the restart still finds it, and advances the id
// counter past it so fresh submissions cannot collide.
func (st *jobStore) AddReplayed(j *job, id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.id = id
	st.byID[id] = j
	var n uint64
	if _, err := fmt.Sscanf(strings.TrimPrefix(id, st.prefix), "j%d", &n); err == nil && n > st.nextID {
		st.nextID = n
	}
}

// Get looks a job up by id.
func (st *jobStore) Get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	return j, ok
}

// Remove forgets a job that was registered but never admitted (queue
// shed on the async path).
func (st *jobStore) Remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.byID, id)
}

// NoteDone records a completed job for history eviction and drops the
// oldest finished jobs beyond the cap.
func (st *jobStore) NoteDone(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.doneLst.PushBack(j.id)
	for st.doneLst.Len() > st.history {
		front := st.doneLst.Front()
		st.doneLst.Remove(front)
		delete(st.byID, front.Value.(string))
	}
}
