package server

// Live job telemetry over Server-Sent Events: GET /v1/jobs/{id}/events
// streams the solve's obs trace events (the JSONL schema from API.md §2)
// as they happen. Each SSE frame carries the broadcaster's sequence
// number as `id:`, the event type as `event:`, and the JSON event as
// `data:`, so a disconnected client resumes with a standard
// `Last-Event-ID` header — events still in the job's replay ring are
// re-sent, older ones are acknowledged as a gap comment. The stream works
// at any point in the job's life: pre-start it waits (heartbeat comments
// keep intermediaries from timing the idle connection out), mid-solve it
// tails live events, and post-completion it replays the ring. Every
// stream terminates with a final `done` event whose data is the job's
// poll body, byte-identical to GET /v1/jobs/{id} — a client that only
// watches the stream never needs to poll. Jobs evicted from the done
// history 404 exactly like polls.
//
// The solver is never backpressured: a subscriber that reads slower than
// the solve emits has events dropped from its queue and counted
// (event_stream_events_total{outcome="dropped"}); the ring still holds
// the newest events for a later resume.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"neuroselect/internal/obs"
)

// handleJobEvents is GET /v1/jobs/{id}/events.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok || j.bcast == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	var afterSeq int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			afterSeq = n
		}
	}
	sub, gap := j.bcast.Subscribe(afterSeq, s.cfg.EventQueue)
	defer sub.Cancel()
	s.m.streamSubs.Add(1)
	defer s.m.streamSubs.Add(-1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxy hint: do not buffer the stream
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	if gap {
		// Events between Last-Event-ID and the ring's oldest entry are gone;
		// say so instead of silently skipping (comments are protocol no-ops
		// for clients that do not care).
		_, _ = io.WriteString(w, ": gap: events before the replay ring were evicted\n\n")
	}
	_ = rc.Flush()

	hb := time.NewTimer(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case se, ok := <-sub.C():
			if !ok {
				// Broadcaster closed: the job is terminal. Send the final
				// summary and end the stream cleanly.
				s.writeDoneEvent(w, j)
				_ = rc.Flush()
				return
			}
			if writeSSEEvent(w, se) != nil {
				return // client gone mid-write
			}
			s.m.streamEv("sent").Inc()
			_ = rc.Flush()
		case <-hb.C:
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			_ = rc.Flush()
		case <-ctx.Done():
			return
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(s.cfg.SSEHeartbeat)
	}
}

// writeSSEEvent frames one trace event: the broadcaster sequence number
// as the SSE id (the Last-Event-ID resume cursor), the event type as the
// SSE event name, and the JSONL-schema object as data.
func writeSSEEvent(w io.Writer, se obs.StampedEvent) error {
	data, err := json.Marshal(&se.Event)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", se.Seq, se.Event.Type, data)
	return err
}

// writeDoneEvent ends a stream with the job's terminal summary. The data
// is the poll body (jobView), marshaled identically to GET /v1/jobs/{id},
// so stream consumers and pollers see the same bytes. Its id is one past
// the last trace event — a client that reconnects with it replays nothing
// and immediately receives `done` again.
func (s *Server) writeDoneEvent(w io.Writer, j *job) {
	data, err := json.Marshal(j.view())
	if err != nil {
		return
	}
	if _, err := fmt.Fprintf(w, "id: %d\nevent: done\ndata: %s\n\n", j.bcast.LastSeq()+1, data); err != nil {
		return
	}
	s.m.streamEv("sent").Inc()
}

// ctxKeyReqID carries the request's correlation id through its context.
type ctxKey int

const ctxKeyReqID ctxKey = iota

// WithRequestID is the outermost middleware: it adopts the client's
// X-Request-ID (when well-formed) or generates one, echoes it on the
// response, and threads it through the request context — from where it
// reaches journal records, streamed trace events, job views, and the
// access log. Exported because the cluster coordinator (internal/cluster)
// runs the same middleware, so one id correlates a request across the
// routing tier and the replica that solved it.
func WithRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeReqID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyReqID, id)))
	})
}

// RequestIDFrom extracts the correlation id WithRequestID stored.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyReqID).(string)
	return id
}

// sanitizeReqID accepts a client-supplied id only if it is short and
// printable ASCII — anything else (header injection, control bytes,
// unbounded length) is discarded and replaced by a generated id.
func sanitizeReqID(s string) string {
	if s == "" || len(s) > 128 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x21 || c > 0x7e {
			return ""
		}
	}
	return s
}

// newRequestID returns 16 hex chars of OS randomness.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not a reason to fail a solve; fall back to
		// a timestamp-derived id (uniqueness, not unguessability, is the
		// requirement here).
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
