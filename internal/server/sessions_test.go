package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// chainCNF is an implication chain 1→2→3→4 with nothing else: under
// assumptions on variable 1 the model is forced bit for bit, so warm and
// cold solves must agree exactly, not just on status.
const chainCNF = "p cnf 4 3\n-1 2 0\n-2 3 0\n-3 4 0\n"

func createSession(t *testing.T, url, body, query string) sessionCreateResponse {
	t.Helper()
	resp := post(t, url+"/v1/sessions"+query, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("create session: status %d: %s", resp.StatusCode, raw)
	}
	var cr sessionCreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

func sessionSolve(t *testing.T, url, id string, req sessionSolveRequest) (sessionSolveResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sessions/"+id+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr sessionSolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode
}

func deleteSession(t *testing.T, url, id string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestSessionMatchesColdSolve drives the incremental session through
// solves that a stateless /v1/solve answers too, and requires identical
// status and (on the forced chain) identical models.
func TestSessionMatchesColdSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cr := createSession(t, ts.URL, chainCNF, "")
	if cr.Pool != "miss" {
		t.Errorf("first create pool = %q, want miss", cr.Pool)
	}
	for _, as := range [][]int{{1}, {-4}, {1, 4}} {
		warm, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Assumptions: as})
		if code != http.StatusOK {
			t.Fatalf("session solve: status %d", code)
		}
		// Cold reference: the chain plus the assumptions as unit clauses.
		var sb strings.Builder
		fmt.Fprintf(&sb, "p cnf 4 %d\n-1 2 0\n-2 3 0\n-3 4 0\n", 3+len(as))
		for _, a := range as {
			fmt.Fprintf(&sb, "%d 0\n", a)
		}
		cold, _ := decodeSolve(t, post(t, ts.URL+"/v1/solve", sb.String()))
		if warm.Status != cold.Status {
			t.Fatalf("assume %v: warm %s vs cold %s", as, warm.Status, cold.Status)
		}
		if warm.Status == "SAT" && as[0] == 1 {
			// Assuming 1 forces 2,3,4: the model is unique, so warm and
			// cold must agree literal for literal.
			for i, l := range warm.Model {
				if cold.Model[i] != l {
					t.Fatalf("assume %v: model diverges at %d: warm %v cold %v", as, i, warm.Model, cold.Model)
				}
			}
		}
	}
}

// TestSessionIncrementalClausesAndCores adds clauses between solves and
// checks UNSAT cores arrive and models respect the additions.
func TestSessionIncrementalClausesAndCores(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	// Permanently force ¬4: assuming 1 now propagates to a contradiction.
	sr, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{
		Add:         [][]int{{-4}},
		Assumptions: []int{1},
	})
	if code != http.StatusOK || sr.Status != "UNSAT" {
		t.Fatalf("status %d %s, want 200 UNSAT", code, sr.Status)
	}
	if len(sr.Core) != 1 || sr.Core[0] != 1 {
		t.Fatalf("core = %v, want [1]", sr.Core)
	}
	// Without the assumption the formula stays SAT with 4 false.
	sr, _ = sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{})
	if sr.Status != "SAT" {
		t.Fatalf("status %s, want SAT", sr.Status)
	}
	for _, l := range sr.Model {
		if l == 4 {
			t.Fatalf("model %v violates added clause -4", sr.Model)
		}
	}
	if sr.Stats.AddedClauses != 1 {
		t.Errorf("added_clauses = %d, want 1", sr.Stats.AddedClauses)
	}
}

// TestSessionPushPopOverHTTP opens a frame, adds a contradiction under it,
// and retracts it with pop — all through the JSON step schema.
func TestSessionPushPopOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	sr, _ := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{
		Push: 1,
		Add:  [][]int{{1}, {-4}},
	})
	if sr.Status != "UNSAT" || sr.FrameDepth != 1 {
		t.Fatalf("frame solve: %s depth %d, want UNSAT depth 1", sr.Status, sr.FrameDepth)
	}
	if len(sr.Core) != 0 {
		t.Errorf("frame-only UNSAT core = %v, want empty", sr.Core)
	}
	sr, _ = sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Pop: 1, Assumptions: []int{1}})
	if sr.Status != "SAT" || sr.FrameDepth != 0 {
		t.Fatalf("after pop: %s depth %d, want SAT depth 0", sr.Status, sr.FrameDepth)
	}
	// Popping with no frame open is a client error.
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Pop: 1}); code != http.StatusBadRequest {
		t.Errorf("pop on empty frame stack: status %d, want 400", code)
	}
}

// TestSessionPoolReuse checks the warm-pool cycle: delete parks the
// solver, an identical create takes it back (pool hit), and a session that
// extended its base formula is never parked.
func TestSessionPoolReuse(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Assumptions: []int{1}}); code != 200 {
		t.Fatal("warmup solve failed")
	}
	if code := deleteSession(t, ts.URL, cr.ID); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if got := s.pool.Len(); got != 1 {
		t.Fatalf("pool size after park = %d, want 1", got)
	}
	// Same base formula in a different clause order: the canonical hash
	// must still match and resume the parked solver.
	reordered := "p cnf 4 3\n-3 4 0\n2 -1 0\n-2 3 0\n"
	cr2 := createSession(t, ts.URL, reordered, "")
	if cr2.Pool != "hit" {
		t.Fatalf("re-create pool = %q, want hit", cr2.Pool)
	}
	if got := s.pool.Len(); got != 0 {
		t.Fatalf("pool size after take = %d, want 0", got)
	}
	// Extend the base: this session must be dropped on delete, not parked.
	if _, code := sessionSolve(t, ts.URL, cr2.ID, sessionSolveRequest{Add: [][]int{{-4}}}); code != 200 {
		t.Fatal("extend solve failed")
	}
	deleteSession(t, ts.URL, cr2.ID)
	if got := s.pool.Len(); got != 0 {
		t.Fatalf("extended session was parked: pool size %d, want 0", got)
	}
	// A fresh create after the drop is a miss again.
	if cr3 := createSession(t, ts.URL, chainCNF, ""); cr3.Pool != "miss" {
		t.Errorf("create after drop: pool = %q, want miss", cr3.Pool)
	}
}

// TestSessionIdleTTLExpiry pins the satellite requirement: a session idle
// past -session-ttl is evicted and later requests see 404.
func TestSessionIdleTTLExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SessionTTL: 80 * time.Millisecond})
	cr := createSession(t, ts.URL, chainCNF, "")
	deadline := time.Now().Add(5 * time.Second)
	for s.sessions.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session did not expire within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{}); code != http.StatusNotFound {
		t.Fatalf("solve on expired session: status %d, want 404", code)
	}
	// Expiry parks the still-clean warm solver; the parked entry then
	// ages out of the pool by the same TTL.
	if got := s.pool.Len(); got != 1 {
		t.Errorf("pool after expiry = %d, want 1", got)
	}
	for s.pool.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked pool entry did not expire within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionLRUEviction fills the table past SessionMax and checks the
// oldest idle session made way.
func TestSessionLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SessionMax: 2})
	a := createSession(t, ts.URL, chainCNF, "")
	b := createSession(t, ts.URL, satCNF, "")
	// Touch a so b becomes the LRU victim.
	if _, code := sessionSolve(t, ts.URL, a.ID, sessionSolveRequest{}); code != 200 {
		t.Fatal("touch solve failed")
	}
	c := createSession(t, ts.URL, unsatCNF, "")
	if _, code := sessionSolve(t, ts.URL, b.ID, sessionSolveRequest{}); code != http.StatusNotFound {
		t.Fatalf("evicted session b: status %d, want 404", code)
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, code := sessionSolve(t, ts.URL, id, sessionSolveRequest{}); code != 200 {
			t.Fatalf("surviving session %s: status %d, want 200", id, code)
		}
	}
}

// TestSessionMemoryCap forces an absurdly small footprint budget and
// checks the session is closed after answering.
func TestSessionMemoryCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SessionMaxMem: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	sr, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{})
	if code != http.StatusOK || sr.Status != "SAT" {
		t.Fatalf("capped solve still answers: status %d %s", code, sr.Status)
	}
	if !sr.Evicted {
		t.Fatal("response did not flag the memory-cap eviction")
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{}); code != http.StatusNotFound {
		t.Fatalf("solve after memcap eviction: status %d, want 404", code)
	}
}

// TestSessionBusyConflict holds the session lock and expects 409.
func TestSessionBusyConflict(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	sess, ok := s.sessions.Get(cr.ID, time.Now())
	if !ok {
		t.Fatal("session missing")
	}
	sess.mu.Lock()
	_, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{})
	sess.mu.Unlock()
	if code != http.StatusConflict {
		t.Fatalf("solve on busy session: status %d, want 409", code)
	}
}

// TestSessionInfoAndValidation covers GET /v1/sessions/{id} and the step
// schema's error paths.
func TestSessionInfoAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Add: [][]int{{1, 0}}}); code != 400 {
		t.Errorf("zero literal in clause: status %d, want 400", code)
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Assumptions: []int{0}}); code != 400 {
		t.Errorf("zero literal in assumptions: status %d, want 400", code)
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Timeout: "banana"}); code != 400 {
		t.Errorf("bad timeout: status %d, want 400", code)
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Pop: -1}); code != 400 {
		t.Errorf("negative pop: status %d, want 400", code)
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Push: 2, Add: [][]int{{2}}}); code != 200 {
		t.Fatal("setup solve failed")
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + cr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view sessionView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.ID != cr.ID || view.FrameDepth != 2 || view.Solves != 1 || view.UserVars != 4 {
		t.Errorf("view = %+v, want id %s, depth 2, 1 solve, 4 vars", view, cr.ID)
	}
	if view.FootprintBytes <= 0 || view.AddedClauses != 1 {
		t.Errorf("view footprint/added = %d/%d", view.FootprintBytes, view.AddedClauses)
	}
	resp2, err := http.Get(ts.URL + "/v1/sessions/s99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session info: status %d, want 404", resp2.StatusCode)
	}
}

// TestSessionDrainRefusal starts a drain and checks every session
// operation is refused with 503 while in-flight work still completes.
func TestSessionDrainRefusal(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/v1/sessions", chainCNF)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create during drain: status %d, want 503", resp.StatusCode)
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{}); code != http.StatusServiceUnavailable {
		t.Errorf("solve during drain: status %d, want 503", code)
	}
}

// TestSessionTimeoutReturnsUnknown bounds a hard instance and expects
// UNKNOWN with a stop reason instead of a hang, and the session to stay
// usable afterwards.
func TestSessionTimeoutReturnsUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, phpDIMACS(t, 8), "")
	sr, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Timeout: "50ms"})
	if code != http.StatusOK || sr.Status != "UNKNOWN" {
		t.Fatalf("status %d %s, want 200 UNKNOWN", code, sr.Status)
	}
	if sr.Stop != "timeout" {
		t.Errorf("stop = %q, want timeout", sr.Stop)
	}
	// The deadline latch must not poison the next call.
	sr, code = sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Assumptions: []int{1}, Timeout: "30s"})
	if code != http.StatusOK || sr.Status == "UNKNOWN" {
		t.Fatalf("follow-up solve: status %d %s, want a decided answer", code, sr.Status)
	}
}

// TestSessionMetrics spot-checks the sessions_active gauge wiring and the
// event counters through a create/hit/park cycle.
func TestSessionMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	if got := s.sessions.Len(); got != 1 {
		t.Fatalf("sessions_active = %d, want 1", got)
	}
	deleteSession(t, ts.URL, cr.ID)
	createSession(t, ts.URL, chainCNF, "")
	var dump bytes.Buffer
	if err := s.Registry().WritePrometheus(&dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`neuroselect_server_session_events_total{event="create"} 2`,
		`neuroselect_server_session_events_total{event="park"} 1`,
		`neuroselect_server_session_events_total{event="hit"} 1`,
		`neuroselect_server_session_events_total{event="miss"} 1`,
		"neuroselect_server_sessions_active 1",
		"neuroselect_server_session_pool_size 0",
	} {
		if !strings.Contains(dump.String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestSessionSolveAtomicValidation pins the all-or-nothing step contract:
// a request rejected with 400 must leave the session exactly as it found
// it, even when earlier operations in the request were individually valid.
func TestSessionSolveAtomicValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	// First clause valid, second malformed: neither may commit.
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{
		Add: [][]int{{-4}, {2, 0}},
	}); code != http.StatusBadRequest {
		t.Fatalf("malformed second clause: status %d, want 400", code)
	}
	// Over-pop is checked before the push applies: no frame may open.
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{
		Push: 2, Pop: 3,
	}); code != http.StatusBadRequest {
		t.Fatalf("over-pop: status %d, want 400", code)
	}
	// Over-pop also aborts the whole step before its adds.
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{
		Pop: 1, Add: [][]int{{-4}},
	}); code != http.StatusBadRequest {
		t.Fatalf("over-pop with adds: status %d, want 400", code)
	}
	// Had any rejected operation leaked, -4 would be committed (UNSAT
	// under assumption 1) or a frame would be open.
	sr, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{Assumptions: []int{1}})
	if code != http.StatusOK || sr.Status != "SAT" {
		t.Fatalf("rejected requests leaked clauses: status %d %s, want 200 SAT", code, sr.Status)
	}
	if sr.FrameDepth != 0 {
		t.Fatalf("rejected requests leaked frames: depth %d, want 0", sr.FrameDepth)
	}
}

// TestSessionSolveAfterEvictionRace replays the lookup/evict interleaving
// handlers must survive: the session is looked up, then — before the
// handler takes the session lock — the reaper evicts it and parks its
// solver, and a new session resumes that same solver from the pool. The
// stale handler must observe the removal (Alive) and answer 404 instead
// of driving a solver now owned by the new session.
func TestSessionSolveAfterEvictionRace(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cr := createSession(t, ts.URL, chainCNF, "")
	sess, ok := s.sessions.Get(cr.ID, time.Now())
	if !ok {
		t.Fatal("session missing")
	}
	// Evict exactly as the reaper does: remove, then park under the lock.
	victim, ok := s.sessions.Remove(cr.ID)
	if !ok || victim != sess {
		t.Fatal("remove did not return the looked-up session")
	}
	victim.mu.Lock()
	s.closeSession(victim, true)
	victim.mu.Unlock()
	cr2 := createSession(t, ts.URL, chainCNF, "")
	if cr2.Pool != "hit" {
		t.Fatalf("re-create pool = %q, want hit (parked solver resumed)", cr2.Pool)
	}
	if s.sessions.Alive(sess) {
		t.Fatal("evicted session still reports alive")
	}
	if _, code := sessionSolve(t, ts.URL, cr.ID, sessionSolveRequest{}); code != http.StatusNotFound {
		t.Fatalf("solve on evicted id: status %d, want 404", code)
	}
	sr, code := sessionSolve(t, ts.URL, cr2.ID, sessionSolveRequest{Assumptions: []int{1}})
	if code != http.StatusOK || sr.Status != "SAT" {
		t.Fatalf("new session on resumed solver: status %d %s, want 200 SAT", code, sr.Status)
	}
}

// TestSessionChurnRace hammers create/solve/delete on one base formula
// with a tiny table and TTL, so LRU eviction, idle expiry, pool
// park/resume, and solve steps interleave constantly. Under -race this
// catches a handler touching a solver after its session was evicted and
// the solver rebound to a new session.
func TestSessionChurnRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SessionMax: 2, SessionTTL: 30 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// Plain requests, no test helpers: goroutines may not
				// t.Fatal, and every status (503 table-full, 404 evicted,
				// 409 busy) is legitimate under churn.
				resp, err := http.Post(ts.URL+"/v1/sessions", "text/plain", strings.NewReader(chainCNF))
				if err != nil {
					return
				}
				var cr sessionCreateResponse
				ok := resp.StatusCode == http.StatusCreated &&
					json.NewDecoder(resp.Body).Decode(&cr) == nil
				resp.Body.Close()
				if !ok {
					continue
				}
				body, _ := json.Marshal(sessionSolveRequest{Assumptions: []int{1 - 2*(i%2)}})
				if resp, err := http.Post(ts.URL+"/v1/sessions/"+cr.ID+"/solve",
					"application/json", bytes.NewReader(body)); err == nil {
					resp.Body.Close()
				}
				if i%3 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+cr.ID, nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				}
			}
		}()
	}
	wg.Wait()
}
