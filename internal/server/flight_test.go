package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
)

// TestConcurrentIdenticalSolvesSingleflight is the dedup contract: ten
// concurrent identical sync solves perform exactly one solver run. The
// worker-solve faultpoint's hit counter and the solves metric prove the
// single run; the X-Dedup header and the dedup counter prove the other
// nine shared it.
func TestConcurrentIdenticalSolvesSingleflight(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{Workers: 4})
	// Hold the one real solve open long enough for every request to pile
	// into the flight (a pure Delay fault injects no failure).
	faultpoint.Arm(faultpoint.ServerWorkerSolve, faultpoint.Fault{Delay: 300 * time.Millisecond})

	const clients = 10
	type reply struct {
		code  int
		dedup string
		body  []byte
	}
	replies := make([]reply, clients)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := http.Post(ts.URL+"/v1/solve", "text/plain", strings.NewReader(satCNF))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			replies[i] = reply{code: resp.StatusCode, dedup: resp.Header.Get("X-Dedup"), body: body}
		}(i)
	}
	start.Done()
	done.Wait()

	shared := 0
	for i, r := range replies {
		if r.code != 200 {
			t.Fatalf("client %d: status %d body %s", i, r.code, r.body)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("client %d body diverged:\n%s\nvs\n%s", i, r.body, replies[0].body)
		}
		if r.dedup == "shared" {
			shared++
		}
	}
	if shared != clients-1 {
		t.Errorf("%d clients shared the flight, want %d", shared, clients-1)
	}
	if hits := faultpoint.Hits(faultpoint.ServerWorkerSolve); hits != 1 {
		t.Errorf("worker performed %d solves, want exactly 1", hits)
	}
	if got := s.Registry().Counter("neuroselect_server_dedup_total", "", obs.Labels{"path": "solve"}).Value(); got != int64(clients-1) {
		t.Errorf("dedup counter = %d, want %d", got, clients-1)
	}
	if got := s.Registry().Counter("neuroselect_server_solves_total", "", obs.Labels{"policy": "default", "status": "SAT"}).Value(); got != 1 {
		t.Errorf("solves counter = %d, want 1", got)
	}
}

// TestDuplicateSubmitSharesInFlightJob: an async submit identical to a
// job already being solved attaches to it instead of enqueueing a second
// solve, and its poll result is marked shared.
func TestDuplicateSubmitSharesInFlightJob(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{Workers: 1})
	faultpoint.Arm(faultpoint.ServerWorkerSolve, faultpoint.Fault{Delay: 200 * time.Millisecond})

	id1 := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, id1, JobRunning)

	resp := post(t, ts.URL+"/v1/jobs", satCNF)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dedup"); got != "shared" {
		t.Fatalf("duplicate submit X-Dedup = %q, want shared", got)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if !v.Shared || v.ID == id1 {
		t.Fatalf("duplicate submit view = %+v, want a distinct shared job id", v)
	}

	v2 := waitJobState(t, ts.URL, v.ID, JobDone)
	if v2.Error != "" || len(v2.Result) == 0 || !v2.Shared {
		t.Fatalf("shared job completed as %+v, want a shared clean result", v2)
	}
	v1 := waitJobState(t, ts.URL, id1, JobDone)
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("leader and follower results diverged:\n%s\nvs\n%s", v1.Result, v2.Result)
	}
	if hits := faultpoint.Hits(faultpoint.ServerWorkerSolve); hits != 1 {
		t.Errorf("worker performed %d solves, want exactly 1", hits)
	}
	if got := s.Registry().Counter("neuroselect_server_dedup_total", "", obs.Labels{"path": "jobs"}).Value(); got != 1 {
		t.Errorf("dedup counter = %d, want 1", got)
	}
}
