package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neuroselect/internal/obs"
)

// writeJournalFile seeds a journal directory with raw JSONL lines, the
// way a crashed process would have left them.
func writeJournalFile(t *testing.T, dir string, lines ...string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data := strings.Join(lines, "\n")
	if len(lines) > 0 {
		data += "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, journalFileName), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// readJournalLines returns the journal's current records.
func readJournalLines(t *testing.T, dir string) []journalRecord {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	var recs []journalRecord
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func mustJSON(t *testing.T, rec journalRecord) string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := openJournal(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal reported %d pending jobs", len(pending))
	}
	j.append(&journalRecord{Type: "submit", ID: "j00000001", Key: "auto:abc", CNF: satCNF, TimeoutNS: int64(time.Second)})
	j.append(&journalRecord{Type: "start", ID: "j00000001", Attempt: 0})
	j.append(&journalRecord{Type: "done", ID: "j00000001", Status: "ok"})
	j.Close()

	j2, pending, err := openJournal(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 0 {
		t.Fatalf("completed job resurfaced as pending: %+v", pending)
	}
}

func TestJournalReplayFindsPendingJobs(t *testing.T) {
	dir := t.TempDir()
	writeJournalFile(t, dir,
		mustJSON(t, journalRecord{Type: "submit", ID: "j00000002", Key: "auto:k2", CNF: satCNF, TimeoutNS: int64(2 * time.Second)}),
		mustJSON(t, journalRecord{Type: "submit", ID: "j00000001", Key: "auto:k1", CNF: unsatCNF, TimeoutNS: int64(time.Second)}),
		mustJSON(t, journalRecord{Type: "start", ID: "j00000001"}),
		mustJSON(t, journalRecord{Type: "done", ID: "j00000002", Status: "ok"}),
	)
	j, pending, err := openJournal(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(pending) != 1 {
		t.Fatalf("pending = %d jobs, want 1", len(pending))
	}
	got := pending[0]
	if got.ID != "j00000001" || got.CNF != unsatCNF || got.TimeoutNS != int64(time.Second) {
		t.Fatalf("wrong pending record: %+v", got)
	}
	// Replay compacts: the file now holds exactly the pending submit.
	recs := readJournalLines(t, dir)
	if len(recs) != 1 || recs[0].Type != "submit" || recs[0].ID != "j00000001" {
		t.Fatalf("post-replay journal = %+v, want the single pending submit", recs)
	}
}

func TestJournalSkipsTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	torn := mustJSON(t, journalRecord{Type: "submit", ID: "j00000002", CNF: satCNF})
	writeJournalFile(t, dir,
		mustJSON(t, journalRecord{Type: "submit", ID: "j00000001", CNF: satCNF}),
		torn[:len(torn)/2], // crash mid-append
	)
	var errOps []string
	j, pending, err := openJournal(dir, 0, func(op string) { errOps = append(errOps, op) })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(pending) != 1 || pending[0].ID != "j00000001" {
		t.Fatalf("pending = %+v, want just the intact submit", pending)
	}
	if len(errOps) != 1 || errOps[0] != "replay" {
		t.Fatalf("error ops = %v, want one replay error for the torn line", errOps)
	}
}

func TestJournalCompactionBoundsGrowth(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		id := "j" + strings.Repeat("0", 7) + string(rune('0'+i%10))
		j.append(&journalRecord{Type: "submit", ID: id, CNF: satCNF})
		j.append(&journalRecord{Type: "start", ID: id})
		j.append(&journalRecord{Type: "done", ID: id, Status: "ok"})
	}
	j.mu.Lock()
	obsolete := j.obsolete
	j.mu.Unlock()
	if obsolete >= 4+3 {
		t.Fatalf("obsolete backlog = %d, compaction is not keeping up", obsolete)
	}
	j.Close()
	if recs := readJournalLines(t, dir); len(recs) != 0 {
		t.Fatalf("drained journal holds %d records, want 0", len(recs))
	}
}

// TestServerReplaysPendingJournal is the crash-recovery contract: a journal
// holding a submit without a done (what kill -9 after the 202 leaves
// behind) is re-admitted at startup under its original id and reaches a
// terminal state exactly once.
func TestServerReplaysPendingJournal(t *testing.T) {
	dir := t.TempDir()
	writeJournalFile(t, dir,
		mustJSON(t, journalRecord{Type: "submit", ID: "j00000007", Key: "auto:" + CanonicalHash(parse(t, satCNF)),
			CNF: satCNF, TimeoutNS: int64(10 * time.Second)}),
		mustJSON(t, journalRecord{Type: "start", ID: "j00000007"}),
	)
	s, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})

	j, ok := s.jobs.Get("j00000007")
	if !ok {
		t.Fatal("replayed job not found in the job store under its original id")
	}
	select {
	case <-j.done:
	case <-time.After(10 * time.Second):
		t.Fatal("replayed job never completed")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j00000007")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Status != JobDone || v.Error != "" || len(v.Result) == 0 {
		t.Fatalf("replayed job view = %+v, want a clean done result", v)
	}
	var sr solveResponse
	if err := json.Unmarshal(v.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status != "SAT" {
		t.Fatalf("replayed solve status = %q, want SAT", sr.Status)
	}
	if got := s.Registry().Counter("neuroselect_server_journal_replayed_total", "", nil).Value(); got != 1 {
		t.Fatalf("replayed counter = %d, want 1", got)
	}

	// A fresh submission must not collide with the replayed id space.
	id := submitJob(t, ts.URL, unsatCNF)
	if id <= "j00000007" {
		t.Fatalf("fresh job id %q did not advance past the replayed id", id)
	}

	// A clean drain leaves the journal with no pending work.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if recs := readJournalLines(t, dir); len(recs) != 0 {
		t.Fatalf("journal after drain = %+v, want empty", recs)
	}
}

// TestServerJournalsAsyncLifecycle: a normally-completed async job leaves
// nothing pending for a future replay.
func TestServerJournalsAsyncLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	id := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, id, JobDone)

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if recs := readJournalLines(t, dir); len(recs) != 0 {
		t.Fatalf("journal after lifecycle = %+v, want empty", recs)
	}

	// A second process over the same directory replays nothing.
	s2, err := New(Config{Workers: 1, JournalDir: dir, MaxTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Registry().Counter("neuroselect_server_journal_replayed_total", "", nil).Value(); got != 0 {
		t.Fatalf("second process replayed %d jobs, want 0", got)
	}
}

// TestReplayDeduplicatesIdenticalPending: two pending journaled jobs with
// the same key share one flight at replay — the restart does not double
// the solving work a crash interrupted.
func TestReplayDeduplicatesIdenticalPending(t *testing.T) {
	dir := t.TempDir()
	key := "auto:" + CanonicalHash(parse(t, satCNF))
	writeJournalFile(t, dir,
		mustJSON(t, journalRecord{Type: "submit", ID: "j00000001", Key: key, CNF: satCNF, TimeoutNS: int64(10 * time.Second)}),
		mustJSON(t, journalRecord{Type: "submit", ID: "j00000002", Key: key, CNF: satCNF, TimeoutNS: int64(10 * time.Second)}),
	)
	s, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})
	for _, id := range []string{"j00000001", "j00000002"} {
		waitJobState(t, ts.URL, id, JobDone)
	}
	if got := s.Registry().Counter("neuroselect_server_dedup_total", "", obs.Labels{"path": "replay"}).Value(); got != 1 {
		t.Fatalf("replay dedup counter = %d, want 1", got)
	}
}
