package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestSolvePortfolioParam drives POST /v1/solve?portfolio=: the response
// must decide the instance and carry the append-only portfolio block with
// coherent worker ledgers.
func TestSolvePortfolioParam(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := post(t, ts.URL+"/v1/solve?portfolio=2", phpDIMACS(t, 6))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status != "UNSAT" {
		t.Fatalf("php-6 must be UNSAT, got %s", sr.Status)
	}
	if sr.Portfolio == nil {
		t.Fatal("portfolio solve response is missing the portfolio block")
	}
	if sr.Portfolio.Workers != 2 || len(sr.Portfolio.Exchange) != 2 {
		t.Fatalf("want 2 workers with 2 exchange ledgers, got %d/%d",
			sr.Portfolio.Workers, len(sr.Portfolio.Exchange))
	}
	if sr.Portfolio.Winner == "" || sr.Portfolio.WinnerIndex < 0 {
		t.Fatalf("decided portfolio solve must name a winner, got %q/%d",
			sr.Portfolio.Winner, sr.Portfolio.WinnerIndex)
	}
	if sr.Policy.Fallback != "portfolio" {
		t.Fatalf("policy fallback = %q, want portfolio", sr.Policy.Fallback)
	}
}

// TestSolvePortfolioDeterministic checks ?deterministic=1: two identical
// uploads (cache disabled) report the same answer, stats, rounds, and
// propagation-frequency hash.
func TestSolvePortfolioDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	get := func() solveResponse {
		resp := post(t, ts.URL+"/v1/solve?portfolio=2&deterministic=1", phpDIMACS(t, 6))
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, b := get(), get()
	if a.Status != "UNSAT" || b.Status != a.Status {
		t.Fatalf("statuses %s/%s, want UNSAT twice", a.Status, b.Status)
	}
	if a.Stats != b.Stats {
		t.Fatalf("deterministic stats diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Portfolio.PropFreqHash != b.Portfolio.PropFreqHash ||
		a.Portfolio.Rounds != b.Portfolio.Rounds ||
		a.Portfolio.PseudoTimeUS != b.Portfolio.PseudoTimeUS {
		t.Fatalf("deterministic portfolio block diverged:\n%+v\n%+v", a.Portfolio, b.Portfolio)
	}
	if !a.Portfolio.Deterministic {
		t.Fatal("response must record deterministic mode")
	}
}

// TestPortfolioParamValidation pins the 400 paths and the cache-key
// variant separation.
func TestPortfolioParamValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, q := range []string{
		"portfolio=0",
		"portfolio=banana",
		"portfolio=99",
		"portfolio=2&policy=frequency",
		"deterministic=1",
		"portfolio=2&deterministic=maybe",
	} {
		resp := post(t, ts.URL+"/v1/solve?"+q, satCNF)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// A single-solver result must not be served to a portfolio request:
	// the variants hash to different cache keys.
	solve := func(q string) (string, *http.Response) {
		resp := post(t, ts.URL+"/v1/solve"+q, unsatCNF)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp
	}
	_, first := solve("")
	if h := first.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first solve X-Cache = %q, want miss", h)
	}
	_, second := solve("?portfolio=2")
	if h := second.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("portfolio solve after single solve X-Cache = %q, want miss (distinct variant)", h)
	}
	_, third := solve("?portfolio=2")
	if h := third.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("repeat portfolio solve X-Cache = %q, want hit", h)
	}
}
