package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer serializes writes so the slog handler (invoked from handler
// goroutines) and the test's reads never race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// One JSON access line per request, carrying the fields an incident is
// grepped by — and the cache verdict when the handler set one.
func TestAccessLogFields(t *testing.T) {
	var out syncBuffer
	_, ts := newTestServer(t, Config{
		Workers:   2,
		AccessLog: slog.New(slog.NewJSONHandler(&out, nil)),
	})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "log-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Same instance twice: the second solve answers from the result cache.
	post(t, ts.URL+"/v1/solve", satCNF).Body.Close()
	post(t, ts.URL+"/v1/solve", satCNF).Body.Close()

	lines := out.Lines()
	if len(lines) != 3 {
		t.Fatalf("got %d access lines, want 3:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	type accessLine struct {
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Bytes     int64   `json:"bytes"`
		Duration  float64 `json:"duration"`
		RequestID string  `json:"request_id"`
		Cache     string  `json:"cache"`
		Sampled   bool    `json:"sampled"`
	}
	parse := func(s string) accessLine {
		t.Helper()
		var l accessLine
		if err := json.Unmarshal([]byte(s), &l); err != nil {
			t.Fatalf("access line %q: %v", s, err)
		}
		return l
	}

	hl := parse(lines[0])
	if hl.Msg != "request" || hl.Method != "GET" || hl.Path != "/healthz" || hl.Status != 200 {
		t.Errorf("healthz line = %+v", hl)
	}
	if hl.RequestID != "log-req-1" {
		t.Errorf("healthz line request_id = %q, want log-req-1", hl.RequestID)
	}
	if hl.Bytes <= 0 || hl.Duration <= 0 {
		t.Errorf("healthz line missing bytes/duration: %+v", hl)
	}
	if hl.Sampled {
		t.Error("unflooded request flagged sampled")
	}

	s1, s2 := parse(lines[1]), parse(lines[2])
	if s1.Cache != "miss" || s2.Cache != "hit" {
		t.Errorf("solve cache verdicts = %q, %q; want miss, hit", s1.Cache, s2.Cache)
	}
	if s1.RequestID == "" || s1.RequestID == s2.RequestID {
		t.Errorf("solve lines lack distinct generated ids: %q vs %q", s1.RequestID, s2.RequestID)
	}
}

// The sampler admits the first limit requests of each second unflagged,
// then every every-th one flagged, and resets on the next second.
func TestAccessLoggerSampling(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newAccessLogger(slog.New(slog.NewTextHandler(&syncBuffer{}, nil)), 2, 3)
	l.now = func() time.Time { return now }

	type verdict struct{ ok, sampled bool }
	take := func(n int) []verdict {
		out := make([]verdict, n)
		for i := range out {
			out[i].ok, out[i].sampled = l.admit()
		}
		return out
	}

	got := take(8)
	// Over the limit, every verdict is in the sampled regime (the flag
	// only matters for admitted lines); the stride admits every 3rd.
	want := []verdict{
		{true, false}, {true, false}, // under the limit
		{true, true},                 // n=3: first over-limit line, flagged
		{false, true}, {false, true},
		{true, true}, // n=6: stride of 3 admits again
		{false, true}, {false, true},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("admit #%d = %+v, want %+v", i+1, got[i], want[i])
		}
	}

	// A new wall-clock second opens a fresh window.
	now = now.Add(time.Second)
	if ok, sampled := l.admit(); !ok || sampled {
		t.Errorf("first admit of new second = (%v, %v), want (true, false)", ok, sampled)
	}

	// every=1 keeps logging every over-limit line, all flagged.
	l1 := newAccessLogger(slog.New(slog.NewTextHandler(&syncBuffer{}, nil)), 1, 1)
	l1.now = func() time.Time { return now }
	l1.admit()
	for i := 0; i < 5; i++ {
		if ok, sampled := l1.admit(); !ok || !sampled {
			t.Fatalf("every=1 over-limit admit #%d = (%v, %v), want (true, true)", i+1, ok, sampled)
		}
	}

	// Logging off: a nil logger constructs a nil accessLogger and the
	// middleware passes the mux through untouched.
	if newAccessLogger(nil, 0, 0) != nil {
		t.Error("nil slog.Logger should yield a nil accessLogger")
	}
}
