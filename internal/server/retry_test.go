package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	"neuroselect/internal/faultpoint"
)

// TestTransientFailureRetriesToSuccess: an async job whose first two
// attempts fail on an injected worker fault is re-admitted with backoff
// and completes cleanly on the third attempt.
func TestTransientFailureRetriesToSuccess(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{Workers: 1, MaxRetries: 3, RetryBase: 2 * time.Millisecond})
	faultpoint.Arm(faultpoint.ServerWorkerSolve,
		faultpoint.Fault{Err: errors.New("flaky disk"), Times: 2})

	id := submitJob(t, ts.URL, satCNF)
	v := waitJobState(t, ts.URL, id, JobDone)
	if v.Error != "" || len(v.Result) == 0 {
		t.Fatalf("retried job finished as %+v, want a clean result", v)
	}
	if hits := faultpoint.Hits(faultpoint.ServerWorkerSolve); hits != 3 {
		t.Errorf("worker attempts = %d, want 3 (two failures + one success)", hits)
	}
	if got := s.Registry().Counter("neuroselect_server_retries_total", "", nil).Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
}

// TestRetriesExhaustIntoTerminalFailure: once the attempt cap is spent,
// the transient failure becomes the job's terminal state — exactly once.
func TestRetriesExhaustIntoTerminalFailure(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{Workers: 1, MaxRetries: 1, RetryBase: 2 * time.Millisecond})
	faultpoint.Arm(faultpoint.ServerWorkerSolve, faultpoint.Fault{Err: errors.New("still broken")})

	id := submitJob(t, ts.URL, satCNF)
	v := waitJobState(t, ts.URL, id, JobDone)
	if !strings.Contains(v.Error, "500") || !strings.Contains(v.Error, "still broken") {
		t.Fatalf("exhausted job error = %q, want the 500 with the injected cause", v.Error)
	}
	if hits := faultpoint.Hits(faultpoint.ServerWorkerSolve); hits != 2 {
		t.Errorf("worker attempts = %d, want 2 (initial + one retry)", hits)
	}
	if got := s.Registry().Counter("neuroselect_server_retries_total", "", nil).Value(); got != 1 {
		t.Errorf("retries counter = %d, want 1", got)
	}
}

// TestPanicContainedAndRetried: a panic thrown inside the worker is a
// transient failure — contained, retried, and eventually successful.
func TestPanicContainedAndRetried(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{Workers: 1, MaxRetries: 2, RetryBase: 2 * time.Millisecond})
	faultpoint.Arm(faultpoint.ServerWorkerSolve,
		faultpoint.Fault{PanicValue: "poisoned instance", Times: 1})

	id := submitJob(t, ts.URL, satCNF)
	v := waitJobState(t, ts.URL, id, JobDone)
	if v.Error != "" || len(v.Result) == 0 {
		t.Fatalf("panicked job finished as %+v, want a clean retried result", v)
	}
	if got := s.Registry().Counter("neuroselect_server_retries_total", "", nil).Value(); got != 1 {
		t.Errorf("retries counter = %d, want 1", got)
	}
}

// TestSyncSolveNeverRetries: the retry policy is async-only — a sync
// client is waiting on the response, so a transient failure surfaces
// immediately as its 500.
func TestSyncSolveNeverRetries(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	s, ts := newTestServer(t, Config{Workers: 1, MaxRetries: 3, RetryBase: 2 * time.Millisecond})
	faultpoint.Arm(faultpoint.ServerWorkerSolve, faultpoint.Fault{Err: errors.New("flaky disk")})

	resp := post(t, ts.URL+"/v1/solve", satCNF)
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("sync transient failure = %d, want 500", resp.StatusCode)
	}
	if hits := faultpoint.Hits(faultpoint.ServerWorkerSolve); hits != 1 {
		t.Errorf("worker attempts = %d, want 1 (no retries for sync)", hits)
	}
	if got := s.Registry().Counter("neuroselect_server_retries_total", "", nil).Value(); got != 0 {
		t.Errorf("retries counter = %d, want 0", got)
	}
}

// TestRetryDelayGrowsAndStaysJittered: the backoff schedule is
// exponential with full jitter and a 30s cap.
func TestRetryDelayGrowsAndStaysJittered(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 12; attempt++ {
		full := base
		for i := 1; i < attempt && full < 30*time.Second; i++ {
			full *= 2
		}
		if full > 30*time.Second {
			full = 30 * time.Second
		}
		for trial := 0; trial < 20; trial++ {
			d := retryDelay(base, attempt)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}
