package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"

	"neuroselect/internal/cnf"
)

// CanonicalHash returns a cache key that identifies the formula up to
// clause order, literal order within a clause, and DIMACS surface syntax
// (comments, whitespace, header slack). Two uploads that denote the same
// clause set — however they were serialized — map to the same key, so a
// repeated instance is served from the result cache without solving.
//
// Canonical form: the variable count, then every clause with its literals
// sorted ascending, the clause list itself sorted lexicographically.
// Reordering cannot change satisfiability, and a cached model satisfies
// every permutation of the clause set, so serving the first response
// verbatim is sound. The digest is SHA-256; keys are its hex form.
func CanonicalHash(f *cnf.Formula) string {
	clauses := make([][]cnf.Lit, len(f.Clauses))
	for i, c := range f.Clauses {
		cc := make([]cnf.Lit, len(c))
		copy(cc, c)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		clauses[i] = cc
	}
	sort.Slice(clauses, func(a, b int) bool {
		x, y := clauses[a], clauses[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	h := sha256.New()
	var buf [8]byte
	writeInt := func(n int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(n))
		h.Write(buf[:])
	}
	writeInt(int64(f.NumVars))
	for _, c := range clauses {
		writeInt(int64(len(c)))
		for _, l := range c {
			writeInt(int64(l))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache is a fixed-capacity LRU over marshaled solve responses. Only
// decided results (SAT/UNSAT) are stored — an UNKNOWN under one timeout
// must not short-circuit a retry under a longer one. A hit returns the
// stored body verbatim, so repeated uploads of one instance get
// byte-identical answers.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	byKey map[string]*list.Element
}

// cacheEntry is one stored response body.
type cacheEntry struct {
	key    string
	body   []byte
	policy string // policy that produced the body, for the hit counter label
}

// newResultCache returns an LRU holding up to capacity entries; capacity
// <= 0 disables caching (Get always misses, Put drops).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached body for key and promotes it to most recent.
func (c *resultCache) Get(key string) (*cacheEntry, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// Put stores body under key, evicting the least-recently-used entry when
// over capacity. It returns the number of evictions (0 or 1).
func (c *resultCache) Put(key string, body []byte, policy string) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return 0
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, policy: policy})
	evicted := 0
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
