package server

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton. The
// numeric values are the wire contract of the
// neuroselect_server_breaker_state gauge (0 closed, 1 half-open, 2 open).
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker protects the admission path from a wedged selector model. While
// closed, every inference is allowed and consecutive failures (errors,
// panics, timeouts, or latency above the configured ceiling) are counted;
// at threshold the breaker opens and inference is skipped outright — the
// server degrades to DefaultPolicy instantly instead of paying a failing
// model call per request. After cooldown the breaker half-opens and admits
// exactly one probe inference: success closes it, failure re-opens it for
// another cooldown. This is the paper's degrade-to-default fallback
// promoted from per-request to service-level: one bad model stops costing
// anything after `threshold` requests.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time      // test seam; time.Now in production
	onFlip    func(to breakerState) // transition hook (metrics); may be nil

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether an inference attempt may proceed. An open breaker
// past its cooldown transitions to half-open and admits the caller as the
// single probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.flipLocked(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: only one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an allowed inference attempt.
func (b *breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.now()
			b.flipLocked(breakerOpen)
		}
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.fails = 0
			b.flipLocked(breakerClosed)
		} else {
			b.openedAt = b.now()
			b.flipLocked(breakerOpen)
		}
	default:
		// A straggler recording after the breaker re-opened; ignore.
	}
}

// State returns the current automaton state.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// flipLocked transitions the state and fires the hook. Callers hold b.mu.
func (b *breaker) flipLocked(to breakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onFlip != nil {
		b.onFlip(to)
	}
}
