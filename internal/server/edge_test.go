package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestJobHistoryEvictionReturns404: completed jobs beyond the history cap
// are forgotten, and polling a forgotten id is a clean 404 — not a stale
// result, not a crash.
func TestJobHistoryEvictionReturns404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobHistory: 1})

	id1 := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, id1, JobDone)
	id2 := submitJob(t, ts.URL, unsatCNF)
	waitJobState(t, ts.URL, id2, JobDone)

	// id2's completion evicted id1 (history cap 1).
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job poll = %d, want 404", resp.StatusCode)
	}
	// The younger job survives.
	if v := pollJob(t, ts.URL, id2); v.Status != JobDone {
		t.Fatalf("surviving job = %+v, want done", v)
	}
}

// TestDrainRacesJustAdmittedJobs: submissions race a concurrent Drain.
// Every submission that was acknowledged (202) must reach a terminal
// state before Drain returns — a job is either refused outright or
// finished, never stranded.
func TestDrainRacesJustAdmittedJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 32})

	const clients = 24
	accepted := make([]string, 0, clients)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Tiny distinct instances: each is its own flight and solves
			// instantly, maximizing admit/drain interleavings.
			body := fmt.Sprintf("p cnf %d 1\n%d 0\n", i+1, i+1)
			resp := post(t, ts.URL+"/v1/jobs", body)
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				var v jobView
				if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				accepted = append(accepted, v.ID)
				mu.Unlock()
			case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				// Refused by the closing door; the client was told.
			default:
				t.Errorf("client %d: unexpected status %d", i, resp.StatusCode)
			}
		}(i)
	}
	drained := make(chan error, 1)
	go func() {
		<-start
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(drainCtx)
	}()
	close(start)
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, id := range accepted {
		j, ok := s.jobs.Get(id)
		if !ok {
			t.Errorf("accepted job %s vanished from the store", id)
			continue
		}
		select {
		case <-j.done:
		default:
			t.Errorf("accepted job %s not terminal after Drain returned", id)
		}
	}
}
