// Package server turns the solver into a network service: an HTTP JSON API
// that accepts DIMACS CNF uploads, routes them through the portfolio
// selector onto a bounded solver worker pool, and answers with the solve
// outcome, the chosen policy, and timings.
//
// The request path is built from the pieces the repo already has:
// solves run under solver.SolveContext (deadline-aware, panic-contained),
// policy selection is portfolio.Selector.Choose (model-driven with
// degrade-to-default fallbacks), the worker pool follows the
// internal/sweep feeder pattern (bounded jobs channel, per-job panic
// containment, drain-on-shutdown with no goroutine leaks), and every
// stage reports into an obs.Registry.
//
// Service properties:
//
//   - Admission control: a fixed-depth queue in front of the pool; an
//     enqueue that would block is shed immediately with 429 and a
//     Retry-After hint derived from the live backlog (jittered so
//     synchronized clients do not return in lockstep), so latency stays
//     bounded under overload.
//   - Result cache: an LRU keyed by CanonicalHash short-circuits repeated
//     instances — the one-time solving (and inference) cost is amortized
//     across identical uploads, the NeuroBack-style amortization argument
//     applied to whole results.
//   - Singleflight dedup: concurrent identical solves (same canonical
//     hash and policy variant) share one worker; followers receive the
//     leader's result with X-Dedup: shared (see flight.go).
//   - Durability: with Config.JournalDir set, every async job is recorded
//     in a write-ahead job journal before its 202 is written; a crashed
//     or SIGKILLed server replays pending jobs on restart and re-admits
//     them through the normal queue (see journal.go).
//   - Retries: transient failures (contained solver panics,
//     faultpoint-injected errors) re-admit async jobs with jittered
//     exponential backoff up to Config.MaxRetries attempts.
//   - Circuit breaker: consecutive selector-inference failures (or
//     latency above Config.BreakerMaxLatency) trip the breaker; while
//     open, requests skip inference and run DefaultPolicy outright, and a
//     half-open probe re-tests the model after Config.BreakerCooldown
//     (see breaker.go).
//   - Deadlines: every request runs under a per-request timeout
//     (?timeout=, clamped by Config.MaxTimeout) and returns UNKNOWN with
//     a stop reason rather than holding a worker.
//   - Async jobs: POST /v1/jobs enqueues and returns a job id to poll, so
//     clients are not held open for long solves; SIGTERM-style shutdown
//     drains queued and in-flight jobs before the listener closes.
//
// Failure domains are isolated: journal I/O degrades durability but never
// availability, cache faults degrade to misses, a broken model degrades
// to the default policy, and a poisoned instance is contained to its own
// worker iteration. The faultpoint sites threaded through these paths
// (faultpoint.Server*) drive the chaos harness in chaos_test.go.
//
// The HTTP contract (endpoints, schemas, error codes, metric names) is
// documented in API.md at the repo root.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
)

// Config sizes a Server. The zero value is usable: NumCPU workers, a
// 64-deep queue, a 30s timeout ceiling, a 256-entry cache, no journal, no
// retries.
type Config struct {
	// Workers bounds the solver pool (<=0 → runtime.NumCPU()).
	Workers int
	// QueueDepth caps the admission queue; a full queue sheds new
	// requests with 429 (<=0 → 64).
	QueueDepth int
	// MaxTimeout clamps the per-request ?timeout= and is the default when
	// the client sends none (<=0 → 30s). Every solve runs under some
	// deadline: a worker is never held indefinitely.
	MaxTimeout time.Duration
	// MaxConflicts optionally bounds each solve's conflict count on top
	// of the deadline (0 = unlimited).
	MaxConflicts int64
	// CacheSize is the result-cache capacity in entries (0 → 256;
	// negative disables caching).
	CacheSize int
	// MaxBodyBytes caps the decompressed request body (<=0 → 64 MiB).
	MaxBodyBytes int64
	// JobHistory caps retained completed async jobs; the oldest finished
	// job is forgotten first (<=0 → 1024).
	JobHistory int
	// JournalDir, when non-empty, enables the write-ahead job journal:
	// async jobs are fsync'd there before they are acknowledged, and New
	// replays jobs left pending by a crash. Empty disables journaling.
	JournalDir string
	// JournalCompactEvery bounds journal growth: once this many obsolete
	// records accumulate the file is compacted in place (<=0 → 256).
	JournalCompactEvery int
	// MaxRetries is how many times a transiently-failed async job
	// (contained panic, injected fault) is re-admitted before its failure
	// becomes terminal (0 = no retries).
	MaxRetries int
	// RetryBase is the backoff unit: attempt n waits a jittered
	// RetryBase×2^(n-1) before re-admission (<=0 → 100ms).
	RetryBase time.Duration
	// BreakerThreshold is how many consecutive inference failures open
	// the circuit breaker (<=0 → 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe inference (<=0 → 10s).
	BreakerCooldown time.Duration
	// BreakerMaxLatency, when >0, counts an inference slower than this as
	// a failure even if it returned a policy (a latency-spike trip).
	BreakerMaxLatency time.Duration
	// SessionMax bounds concurrently-live warm sessions (and the parked-
	// solver pool behind them); creating one past the bound evicts the
	// least-recently-used idle session (<=0 → 64).
	SessionMax int
	// SessionTTL expires sessions (and parked pool solvers) idle this long
	// (<=0 → 5m).
	SessionTTL time.Duration
	// SessionMaxMem caps one session solver's estimated footprint in
	// bytes; a solve that grows past it closes the session (<=0 → 256 MiB).
	SessionMaxMem int64
	// EventRing bounds each async job's replayable trace-event history:
	// the ring buffer behind GET /v1/jobs/{id}/events that late
	// subscribers and Last-Event-ID resumes read (<=0 → 256).
	EventRing int
	// EventQueue bounds one SSE subscriber's pending-event queue. A
	// subscriber that falls further behind has events dropped and counted
	// — a slow client never backpressures the solver (<=0 → 256).
	EventQueue int
	// SSEHeartbeat is the idle interval between `:` keep-alive comments on
	// an event stream (<=0 → 15s).
	SSEHeartbeat time.Duration
	// AccessLog, when non-nil, receives one structured line per HTTP
	// request: method, path, status, bytes, duration, request id, and the
	// cache/dedup outcome. Under flood the log is sampled (LogSample*).
	AccessLog *slog.Logger
	// LogSampleAfter caps unsampled access-log lines per second; past it,
	// only every LogSampleEvery-th request in that second is logged,
	// flagged with sampled=true (<=0 → 200).
	LogSampleAfter int
	// LogSampleEvery is the sampling stride once LogSampleAfter is
	// exceeded within one second (<=0 → 100).
	LogSampleEvery int
	// BackendName, when non-empty, runs the server in cluster backend
	// mode: every response carries an X-Backend header naming this
	// replica, and job/session ids are prefixed "<name>-" so they are
	// unique across the cluster (the coordinator routes by id prefix-
	// agnostic maps, but operators and logs need unambiguous ids).
	BackendName string
	// Selector, when non-nil, picks the deletion policy per instance via
	// the NeuroSelect model (requests may still pin one with ?policy=).
	// Nil servers solve everything under the default policy.
	Selector *portfolio.Selector
	// Registry receives the service metrics (neuroselect_server_*); nil
	// uses a private registry so instrumentation is unconditional.
	Registry *obs.Registry
}

// Server is a running solving service: worker pool, admission queue,
// result cache, async job store, job journal, singleflight table, and
// inference breaker. Create with New, mount Handler on an http.Server,
// and stop with Drain (graceful) or Close (abort).
type Server struct {
	cfg   Config
	queue chan *job
	cache *resultCache
	jobs  *jobStore
	jnl   *journal // nil when journaling is disabled
	brk   *breaker

	sessions *sessionTable // warm incremental sessions (see sessions.go)
	pool     *solverPool   // parked warm solvers keyed by base-formula hash

	flMu sync.Mutex // guards fl and every job's followers slice
	fl   flightTable

	baseCtx context.Context // parent of every async solve; canceled by Close
	cancel  context.CancelFunc
	wg      sync.WaitGroup // worker goroutines
	pending sync.WaitGroup // jobs accepted but not yet finished

	admitMu  sync.RWMutex // excludes enqueue sends from the queue close
	draining atomic.Bool
	closed   atomic.Bool

	solveEWMA atomic.Uint64 // float64 bits: smoothed solve seconds, feeds Retry-After

	alog *accessLogger // nil when access logging is off

	m serverMetrics
}

// serverMetrics is the service's obs instrumentation. All series live
// under the neuroselect_server_* namespace documented in API.md.
type serverMetrics struct {
	reg        *obs.Registry
	reqSec     func(endpoint string) *obs.Histogram
	requests   func(endpoint, code string) *obs.Counter
	queueWait  *obs.Histogram
	shed       *obs.Counter
	cacheEv    func(event string) *obs.Counter
	solves     func(policy, status string) *obs.Counter
	inflight   *obs.Gauge
	dedup      func(path string) *obs.Counter
	retries    *obs.Counter
	replayed   *obs.Counter
	journalErr func(op string) *obs.Counter
	inference  func(outcome string) *obs.Counter
	breakerTo  func(state string) *obs.Counter
	sessionEv  func(event string) *obs.Counter
	sessionSec func(mode string) *obs.Histogram
	streamSubs *obs.Gauge
	streamEv   func(outcome string) *obs.Counter
}

func newServerMetrics(reg *obs.Registry, s *Server) serverMetrics {
	m := serverMetrics{reg: reg}
	m.reqSec = func(endpoint string) *obs.Histogram {
		return reg.Histogram("neuroselect_server_request_seconds",
			"HTTP request latency by endpoint.", nil, obs.Labels{"endpoint": endpoint})
	}
	m.requests = func(endpoint, code string) *obs.Counter {
		return reg.Counter("neuroselect_server_requests_total",
			"HTTP requests by endpoint and status code.", obs.Labels{"endpoint": endpoint, "code": code})
	}
	m.queueWait = reg.Histogram("neuroselect_server_queue_wait_seconds",
		"Time an accepted job spent in the admission queue before a worker picked it up.", nil, nil)
	m.shed = reg.Counter("neuroselect_server_shed_total",
		"Requests rejected with 429 because the admission queue was full.", nil)
	m.cacheEv = func(event string) *obs.Counter {
		return reg.Counter("neuroselect_server_cache_events_total",
			"Result-cache activity by event (hit, miss, evict).", obs.Labels{"event": event})
	}
	m.solves = func(policy, status string) *obs.Counter {
		return reg.Counter("neuroselect_server_solves_total",
			"Completed solves by deletion policy and outcome.", obs.Labels{"policy": policy, "status": status})
	}
	m.inflight = reg.Gauge("neuroselect_server_inflight_solves",
		"Jobs currently being solved by a worker.", nil)
	m.dedup = func(path string) *obs.Counter {
		return reg.Counter("neuroselect_server_dedup_total",
			"Requests that shared an identical in-flight solve instead of running their own (by path: solve, jobs, replay).",
			obs.Labels{"path": path})
	}
	m.retries = reg.Counter("neuroselect_server_retries_total",
		"Transiently-failed async jobs re-admitted with backoff.", nil)
	m.replayed = reg.Counter("neuroselect_server_journal_replayed_total",
		"Pending async jobs re-admitted from the job journal at startup.", nil)
	m.journalErr = func(op string) *obs.Counter {
		return reg.Counter("neuroselect_server_journal_errors_total",
			"Job-journal I/O failures by operation (append, replay, compact).", obs.Labels{"op": op})
	}
	m.inference = func(outcome string) *obs.Counter {
		return reg.Counter("neuroselect_server_inference_total",
			"Selector-inference attempts by outcome (ok, failure, breaker-open).", obs.Labels{"outcome": outcome})
	}
	m.breakerTo = func(state string) *obs.Counter {
		return reg.Counter("neuroselect_server_breaker_transitions_total",
			"Inference circuit-breaker transitions by new state.", obs.Labels{"to": state})
	}
	reg.GaugeFunc("neuroselect_server_queue_depth",
		"Jobs waiting in the admission queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("neuroselect_server_queue_capacity",
		"Admission-queue capacity (the 429 shedding threshold).", nil,
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("neuroselect_server_breaker_state",
		"Inference circuit-breaker state (0 closed, 1 half-open, 2 open).", nil,
		func() float64 { return float64(s.brk.State()) })
	m.sessionEv = func(event string) *obs.Counter {
		return reg.Counter("neuroselect_server_session_events_total",
			"Warm-session activity by event (create, close, hit, miss, park, drop, evict, expire, memcap).",
			obs.Labels{"event": event})
	}
	m.sessionSec = func(mode string) *obs.Histogram {
		return reg.Histogram("neuroselect_server_session_solve_seconds",
			"Session operation latency by mode: create (build or pool fetch) vs incremental (one warm solve).",
			nil, obs.Labels{"mode": mode})
	}
	reg.GaugeFunc("neuroselect_server_sessions_active",
		"Live warm sessions.", nil,
		func() float64 { return float64(s.sessions.Len()) })
	reg.GaugeFunc("neuroselect_server_session_pool_size",
		"Parked warm solvers awaiting reuse.", nil,
		func() float64 { return float64(s.pool.Len()) })
	m.streamSubs = reg.Gauge("neuroselect_server_event_stream_subscribers",
		"Open SSE event-stream subscriptions (GET /v1/jobs/{id}/events).", nil)
	m.streamEv = func(outcome string) *obs.Counter {
		return reg.Counter("neuroselect_server_event_stream_events_total",
			"SSE stream events by outcome: sent (written to a client) or dropped (a slow subscriber's queue overflowed).",
			obs.Labels{"outcome": outcome})
	}
	return m
}

// New builds the service, starts its worker pool, and — when journaling
// is enabled — replays and re-admits every async job a previous process
// left pending. Replay is synchronous: once New returns, every journaled
// job is either queued, being solved, or shared with an identical flight.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.SessionMax <= 0 {
		cfg.SessionMax = 64
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 5 * time.Minute
	}
	if cfg.SessionMaxMem <= 0 {
		cfg.SessionMaxMem = 256 << 20
	}
	if cfg.EventRing <= 0 {
		cfg.EventRing = 256
	}
	if cfg.EventQueue <= 0 {
		cfg.EventQueue = 256
	}
	if cfg.SSEHeartbeat <= 0 {
		cfg.SSEHeartbeat = 15 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	idPrefix := ""
	if cfg.BackendName != "" {
		idPrefix = cfg.BackendName + "-"
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheSize),
		jobs:     newJobStore(cfg.JobHistory, idPrefix),
		brk:      newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		fl:       flightTable{m: make(map[string]*job)},
		sessions: newSessionTable(cfg.SessionMax, idPrefix),
		pool:     newSolverPool(cfg.SessionMax),
		baseCtx:  ctx,
		cancel:   cancel,
	}
	s.m = newServerMetrics(cfg.Registry, s)
	s.brk.onFlip = func(to breakerState) { s.m.breakerTo(to.String()).Inc() }
	s.alog = newAccessLogger(cfg.AccessLog, cfg.LogSampleAfter, cfg.LogSampleEvery)

	var pending []*journalRecord
	if cfg.JournalDir != "" {
		jnl, p, err := openJournal(cfg.JournalDir, cfg.JournalCompactEvery,
			func(op string) { s.m.journalErr(op).Inc() })
		if err != nil {
			cancel()
			return nil, err
		}
		s.jnl = jnl
		pending = p
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.sessionReaper()
	for _, rec := range pending {
		s.replayJob(rec)
	}
	return s, nil
}

// Registry returns the registry carrying the service metrics (the one
// from Config, or the private one a nil Config.Registry was replaced by).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// initJobStream attaches the live-telemetry plumbing to an async job:
// the broadcaster behind GET /v1/jobs/{id}/events and the progress sink
// behind the poll body's progress object. Call before the job becomes
// findable in the job store.
func (s *Server) initJobStream(j *job) {
	j.progress = &solver.ProgressSink{}
	j.bcast = obs.NewBroadcaster(obs.BroadcastOpts{
		Ring:     s.cfg.EventRing,
		ReqID:    j.reqID,
		Registry: s.cfg.Registry,
		OnDrop:   func(n int64) { s.m.streamEv("dropped").Add(n) },
	})
}

// replayJob re-creates one journaled job and re-admits it through the
// normal paths: singleflight first (a pending duplicate shares the
// flight), then the admission queue with a blocking retry loop — replayed
// jobs were already promised to a client, so they are never shed.
func (s *Server) replayJob(rec *journalRecord) {
	j := newJob(nil)
	j.id = rec.ID
	j.key = rec.Key
	j.trace = rec.Trace
	j.reqID = rec.ReqID
	j.timeout = time.Duration(rec.TimeoutNS)
	if j.timeout <= 0 || j.timeout > s.cfg.MaxTimeout {
		j.timeout = s.cfg.MaxTimeout
	}
	j.ctx = s.baseCtx
	s.initJobStream(j)
	s.jobs.AddReplayed(j, rec.ID)

	fail := func(msg string) {
		j.fail(500, msg)
		j.finish()
		s.jobs.NoteDone(j)
		s.journalDone(j, "error")
	}
	f, err := cnf.ParseDIMACS(strings.NewReader(rec.CNF))
	if err != nil {
		fail("journal replay: parse DIMACS: " + err.Error())
		return
	}
	j.f = f
	if rec.Policy != "" {
		pol, err := deletion.ByName(rec.Policy)
		if err != nil {
			fail("journal replay: " + err.Error())
			return
		}
		j.policy = pol
	}
	s.m.replayed.Inc()
	if j.key != "" {
		if leader := s.joinFlight(j); leader != nil {
			s.m.dedup("replay").Inc()
			return // completed by the leader's fan-out
		}
	}
	for !s.enqueue(j) {
		if s.closed.Load() || s.draining.Load() {
			s.abortFlight(j, 503, "server stopped during journal replay")
			fail("server stopped during journal replay")
			return
		}
		time.Sleep(2 * time.Millisecond) // queue full: workers are draining it
	}
}

// enqueue admits a job or sheds it. It never blocks: admission control is
// the point — a queue that would block means the service is saturated and
// the client should retry later. The read lock excludes the send from the
// queue close in stopWorkers; a request racing a shutdown is shed, never
// panicked on.
func (s *Server) enqueue(j *job) bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed.Load() {
		return false
	}
	if err := faultpoint.Hit(faultpoint.ServerEnqueue); err != nil {
		s.m.shed.Inc()
		return false
	}
	s.pending.Add(1)
	select {
	case s.queue <- j:
		return true
	default:
		s.pending.Done()
		s.m.shed.Inc()
		return false
	}
}

// readmit places a retrying job back on the queue. The job's pending slot
// is already held, so no accounting happens here; false means the server
// closed or the queue is momentarily full.
func (s *Server) readmit(j *job) (ok, closed bool) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed.Load() {
		return false, true
	}
	select {
	case s.queue <- j:
		return true, false
	default:
		return false, false
	}
}

// worker drains the admission queue until the queue closes (Drain) or the
// base context aborts (Close). Each job runs with panic containment —
// sweep's per-cell isolation applied to requests — so one poisoned
// instance cannot take the pool down.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.runJob(j) {
			continue // a retry is scheduled; it keeps the pending slot
		}
		s.completeJob(j)
	}
}

// runJob executes one attempt of an admitted job and decides whether a
// transient failure earns another: true means a backoff timer now owns
// the job and the worker must not complete it.
func (s *Server) runJob(j *job) (retryScheduled bool) {
	transient := s.executeJob(j)
	if transient && s.canRetry(j) {
		s.scheduleRetry(j)
		return true
	}
	return false
}

// canRetry gates the retry policy: only async (journaled-or-tracked) jobs
// retry, only below the attempt cap, and never once shutdown began.
func (s *Server) canRetry(j *job) bool {
	return j.id != "" && j.attempt < s.cfg.MaxRetries &&
		!s.draining.Load() && s.baseCtx.Err() == nil
}

// scheduleRetry clears the failed attempt's outcome and re-admits the job
// after a jittered exponential backoff. If the queue is momentarily full
// at fire time the timer re-arms at the base delay; if the server closed,
// the job fails terminally (still owning its pending slot, so Drain
// accounts for it either way).
func (s *Server) scheduleRetry(j *job) {
	j.attempt++
	s.m.retries.Inc()
	j.reset()
	var fire func()
	fire = func() {
		ok, closed := s.readmit(j)
		if ok {
			return
		}
		if closed {
			j.fail(503, "server stopped before the retry could run")
			s.completeJob(j)
			return
		}
		time.AfterFunc(s.cfg.RetryBase, fire)
	}
	time.AfterFunc(retryDelay(s.cfg.RetryBase, j.attempt), fire)
}

// retryDelay is full-jitter exponential backoff: attempt n draws
// uniformly from [base·2^(n-1)/2, base·2^(n-1)], capped at 30s, so
// synchronized failures do not retry in lockstep.
func retryDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// completeJob publishes a job's terminal outcome exactly once: the flight
// is deregistered, the result fans out to every follower, the job store
// and journal record the completion, and the pending slot is released.
func (s *Server) completeJob(j *job) {
	followers := s.leaveFlight(j)
	j.finish()
	_, body, code, msg := j.snapshot()
	status := "ok"
	if code != 0 {
		status = "error"
	}
	if j.id != "" {
		s.jobs.NoteDone(j)
		s.journalDone(j, status)
	}
	for _, fw := range followers {
		fw.setLeaderReq(j.reqID)
		if code != 0 {
			fw.fail(code, msg)
		} else {
			fw.succeed(body)
		}
		fw.finish()
		if fw.id != "" {
			s.jobs.NoteDone(fw)
			s.journalDone(fw, status)
		}
	}
	s.pending.Done()
}

// executeJob runs one solve attempt end to end: policy selection, the
// deadline-bounded solve, response marshaling, cache fill, metrics. The
// return value classifies a failure as transient (retry-eligible):
// injected worker faults, worker panics, and panic-contained Unknown
// results are transient; everything else is deterministic.
func (s *Server) executeJob(j *job) (transient bool) {
	defer func() {
		if r := recover(); r != nil {
			// Should be unreachable — solver.SolveContext contains its own
			// panics — but a worker must survive anything a job throws.
			j.fail(500, fmt.Sprintf("internal error: %v", r))
			transient = true
		}
	}()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)

	wait := time.Since(j.enqueued)
	s.m.queueWait.Observe(wait.Seconds())
	j.setRunning()
	s.journalStart(j)

	ctx := j.ctx
	if err := ctx.Err(); err != nil {
		// The client vanished (sync) or the server aborted (async) while
		// the job sat in the queue.
		j.fail(499, "canceled before the solve started")
		return false
	}
	ctx, cancelTimeout := context.WithTimeout(ctx, j.timeout)
	defer cancelTimeout()

	if err := faultpoint.Hit(faultpoint.ServerWorkerSolve); err != nil {
		j.fail(500, "solve failed: "+err.Error())
		return true
	}

	// The solve's tracer chain: the ?trace=1 response buffer and the job's
	// live SSE broadcaster, either or both possibly absent. Both sinks are
	// non-blocking, so neither perturbs the search trajectory.
	var mem *memTracer
	var sinks []obs.Tracer
	if j.trace {
		mem = &memTracer{}
		sinks = append(sinks, mem)
	}
	if j.bcast != nil {
		sinks = append(sinks, j.bcast)
	}
	tracer := obs.Multi(sinks...)

	if j.portfolio > 0 {
		return s.executePortfolio(j, ctx, wait, mem, tracer)
	}

	pol, polInfo := s.selectPolicy(j, mem)
	opts := dataset.SolveOptions(pol, s.cfg.MaxConflicts)
	opts.Tracer = tracer
	opts.Progress = j.progress

	solveStart := time.Now()
	res, err := solver.SolveContext(ctx, j.f, opts)
	solveNS := time.Since(solveStart).Nanoseconds()
	s.observeSolveSeconds(float64(solveNS) / 1e9)
	if err != nil && res.Status != solver.Unknown {
		// Non-panic internal failure (e.g. model verification); panics and
		// deadline exhaustion arrive as error-carrying Unknown results.
		j.fail(500, "solve failed: "+err.Error())
		return false
	}
	if res.Status == solver.Unknown && errors.Is(res.Stop, solver.ErrSolvePanic) && s.canRetry(j) {
		// A contained solver panic is transient; surface it as a failure so
		// the retry path re-runs the attempt. Once retries are exhausted the
		// UNKNOWN/stop=panic result below is the terminal answer.
		j.fail(500, "solver panicked (will retry)")
		return true
	}

	resp := &solveResponse{
		Status: res.Status.String(),
		Policy: polInfo,
		Stats:  res.Stats,
		Timings: timings{
			QueueNS: wait.Nanoseconds(),
			SolveNS: solveNS,
			TotalNS: time.Since(j.enqueued).Nanoseconds(),
		},
	}
	if res.Status == solver.Sat {
		resp.Model = modelLits(j.f, res.Model)
	}
	if res.Stop != nil {
		resp.Stop = stopReason(res.Stop)
	}
	if mem != nil {
		resp.Trace = mem.events
	}
	s.m.solves(polInfo.Name, resp.Status).Inc()

	body, merr := marshalBody(resp)
	if merr != nil {
		j.fail(500, "encode response: "+merr.Error())
		return false
	}
	// Cache only decided, untraced results: UNKNOWN depends on the
	// request's own deadline, and trace payloads are per-request.
	if j.key != "" && !j.trace && (res.Status == solver.Sat || res.Status == solver.Unsat) {
		s.cachePut(j.key, body, polInfo.Name)
	}
	j.succeed(body)
	return false
}

// executePortfolio runs one ?portfolio= solve attempt: an N-worker
// shared-clause portfolio (free-running, or lockstep rounds under
// ?deterministic=1) in place of the single-solver path. Policy selection
// happens per worker inside the portfolio — worker 0 consults the
// configured selector, the rest stay pinned — so the inference circuit
// breaker is not on this path. The response carries the standard
// solveResponse fields plus the append-only portfolio block.
func (s *Server) executePortfolio(j *job, ctx context.Context, wait time.Duration, mem *memTracer, tracer obs.Tracer) (transient bool) {
	cfg := portfolio.Config{
		Workers:       j.portfolio,
		Deterministic: j.deterministic,
		MaxConflicts:  s.cfg.MaxConflicts,
		Selector:      s.cfg.Selector,
		Obs:           s.m.reg,
		Tracer:        tracer,
	}
	solveStart := time.Now()
	rep, err := portfolio.SolveParallelContext(ctx, j.f, cfg)
	solveNS := time.Since(solveStart).Nanoseconds()
	s.observeSolveSeconds(float64(solveNS) / 1e9)
	if err != nil {
		// The portfolio contains individual worker panics, so an error here
		// means every worker failed — treated like a contained solver panic:
		// transient, retry-eligible.
		j.fail(500, "portfolio solve failed: "+err.Error())
		return true
	}

	polName := "portfolio"
	if rep.Winner != "" {
		polName = rep.Winner
	}
	resp := &solveResponse{
		Status: rep.Result.Status.String(),
		Policy: policyInfo{Name: polName, Prob: -1, Fallback: "portfolio"},
		Stats:  rep.Result.Stats,
		Timings: timings{
			QueueNS: wait.Nanoseconds(),
			SolveNS: solveNS,
			TotalNS: time.Since(j.enqueued).Nanoseconds(),
		},
		Portfolio: &portfolioInfo{
			Workers:       rep.Workers,
			Deterministic: rep.Deterministic,
			Winner:        rep.Winner,
			WinnerIndex:   rep.WinnerIndex,
			Rounds:        rep.Rounds,
			PseudoTimeUS:  int64(rep.PseudoTime / time.Microsecond),
			Exchange:      rep.Exchange,
			Failures:      rep.Failures,
		},
	}
	if rep.WinnerIndex >= 0 {
		resp.Portfolio.PropFreqHash = fmt.Sprintf("%016x", rep.PropFreqHash)
	}
	if rep.Result.Status == solver.Sat {
		resp.Model = modelLits(j.f, rep.Result.Model)
	}
	if rep.Result.Stop != nil {
		resp.Stop = stopReason(rep.Result.Stop)
	}
	if mem != nil {
		resp.Trace = mem.events
	}
	s.m.solves("portfolio", resp.Status).Inc()

	body, merr := marshalBody(resp)
	if merr != nil {
		j.fail(500, "encode response: "+merr.Error())
		return false
	}
	if j.key != "" && !j.trace && (rep.Result.Status == solver.Sat || rep.Result.Status == solver.Unsat) {
		s.cachePut(j.key, body, "portfolio")
	}
	j.succeed(body)
	return false
}

// FallbackBreakerOpen is the policy fallback reason reported while the
// inference circuit breaker is open and model calls are skipped outright.
const FallbackBreakerOpen = "breaker-open"

// selectPolicy resolves the deletion policy for one job: a client-pinned
// ?policy= wins, then the model-driven selector (behind the circuit
// breaker), then the default policy. When the job captures a trace, the
// selection is recorded as an EventPolicy exactly as portfolio's own
// tracer would emit it.
func (s *Server) selectPolicy(j *job, mem *memTracer) (deletion.Policy, policyInfo) {
	var pol deletion.Policy
	var info policyInfo
	switch {
	case j.policy != nil:
		pol = j.policy
		info = policyInfo{Name: pol.Name(), Prob: -1, Fallback: "requested"}
	case s.cfg.Selector != nil:
		pol, info = s.inferPolicy(j)
	default:
		pol = deletion.DefaultPolicy{}
		info = policyInfo{Name: pol.Name(), Prob: -1, Fallback: "no-model"}
	}
	if mem != nil {
		mem.Trace(&obs.Event{
			Type:        obs.EventPolicy,
			Policy:      info.Name,
			Prob:        info.Prob,
			Fallback:    info.Fallback,
			InferenceNS: info.InferenceNS,
		})
	}
	return pol, info
}

// inferPolicy runs the selector behind the circuit breaker. Inference
// failures (the portfolio fallback vocabulary, injected faults, or
// latency above BreakerMaxLatency) feed the breaker; an open breaker
// skips the model call entirely and degrades to the default policy.
func (s *Server) inferPolicy(j *job) (deletion.Policy, policyInfo) {
	if !s.brk.Allow() {
		s.m.inference(FallbackBreakerOpen).Inc()
		pol := deletion.DefaultPolicy{}
		return pol, policyInfo{Name: pol.Name(), Prob: -1, Fallback: FallbackBreakerOpen}
	}
	if err := faultpoint.Hit(faultpoint.ServerInference); err != nil {
		s.brk.Record(false)
		s.m.inference("failure").Inc()
		pol := deletion.DefaultPolicy{}
		return pol, policyInfo{Name: pol.Name(), Prob: -1, Fallback: portfolio.FallbackError}
	}
	ch := s.cfg.Selector.Choose(j.f)
	failed := ch.Fallback == portfolio.FallbackPanic ||
		ch.Fallback == portfolio.FallbackTimeout ||
		ch.Fallback == portfolio.FallbackError
	if !failed && s.cfg.BreakerMaxLatency > 0 && ch.Inference > s.cfg.BreakerMaxLatency {
		failed = true // latency spike: the model answered too slowly to trust
	}
	s.brk.Record(!failed)
	if failed {
		s.m.inference("failure").Inc()
	} else {
		s.m.inference("ok").Inc()
	}
	return ch.Policy, policyInfo{
		Name:        ch.Policy.Name(),
		Prob:        ch.Prob,
		Fallback:    ch.Fallback,
		InferenceNS: ch.Inference.Nanoseconds(),
	}
}

// cacheGet consults the result cache; an injected cache fault degrades to
// a miss, never an error.
func (s *Server) cacheGet(key string) (*cacheEntry, bool) {
	if err := faultpoint.Hit(faultpoint.ServerCacheGet); err != nil {
		return nil, false
	}
	return s.cache.Get(key)
}

// cachePut fills the result cache; an injected cache fault skips the fill.
func (s *Server) cachePut(key string, body []byte, policy string) {
	if err := faultpoint.Hit(faultpoint.ServerCachePut); err != nil {
		return
	}
	if ev := s.cache.Put(key, body, policy); ev > 0 {
		s.m.cacheEv("evict").Add(int64(ev))
	}
}

// journalSubmit records a freshly admitted async job. Must run before the
// client's 202 so a crash after acknowledgment never loses the job.
func (s *Server) journalSubmit(j *job) {
	if s.jnl == nil || j.id == "" {
		return
	}
	rec := &journalRecord{
		Type:      "submit",
		ID:        j.id,
		Key:       j.key,
		TimeoutNS: int64(j.timeout),
		Trace:     j.trace,
		ReqID:     j.reqID,
	}
	if j.policy != nil {
		rec.Policy = j.policy.Name()
	}
	var buf strings.Builder
	if err := cnf.WriteDIMACS(&buf, j.f); err != nil {
		s.m.journalErr("append").Inc()
		return
	}
	rec.CNF = buf.String()
	s.jnl.append(rec)
}

// journalStart records one solve attempt of an async job.
func (s *Server) journalStart(j *job) {
	if s.jnl == nil || j.id == "" {
		return
	}
	s.jnl.append(&journalRecord{Type: "start", ID: j.id, Attempt: j.attempt})
}

// journalDone records an async job's terminal state.
func (s *Server) journalDone(j *job, status string) {
	if s.jnl == nil || j.id == "" {
		return
	}
	s.jnl.append(&journalRecord{Type: "done", ID: j.id, Status: status})
}

// observeSolveSeconds feeds the smoothed solve-time estimate behind the
// Retry-After hint (EWMA, α=0.2).
func (s *Server) observeSolveSeconds(sec float64) {
	for {
		old := s.solveEWMA.Load()
		prev := math.Float64frombits(old)
		next := sec
		if prev > 0 {
			next = 0.8*prev + 0.2*sec
		}
		if s.solveEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds derives the Retry-After hint for a shed request from
// the live backlog: the queued jobs ahead of the client times the
// smoothed per-solve cost, divided across the pool, jittered ±20% so a
// synchronized flock of shed clients does not return as a thundering
// herd. Clamped to [1, 120] whole seconds.
func (s *Server) retryAfterSeconds() int {
	mean := math.Float64frombits(s.solveEWMA.Load())
	if mean <= 0 {
		mean = 1 // no completed solve yet: assume a second
	}
	backlog := float64(len(s.queue) + 1)
	est := backlog * mean / float64(s.cfg.Workers)
	est *= 0.8 + 0.4*rand.Float64()
	sec := int(math.Ceil(est))
	if sec < 1 {
		sec = 1
	}
	if sec > 120 {
		sec = 120
	}
	return sec
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: new submissions are refused
// with 503 immediately, queued and in-flight jobs (including scheduled
// retries) run to completion, and Drain returns when the pool is idle or
// ctx expires (in-flight solves still run under their own deadlines
// either way). On success the journal is compacted down to nothing and
// closed. Call before shutting the HTTP listener so sync waiters get
// their responses.
func (s *Server) Drain(ctx context.Context) error {
	// A Delay fault here simulates a slow drain for the chaos harness;
	// errors are deliberately ignored — drain must always proceed.
	_ = faultpoint.Hit(faultpoint.ServerDrain)
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopWorkers()
		s.closeJournal()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close aborts the service: the base context cancels (async solves return
// UNKNOWN/canceled promptly) and the workers exit once the queue empties.
// Safe after Drain.
func (s *Server) Close() {
	s.cancel()
	s.stopWorkers()
	s.closeJournal()
}

// stopWorkers closes the queue exactly once and joins the pool (workers
// plus the session reaper, which exits on the base-context cancel — by the
// time stopWorkers runs, both Drain and Close have no pending work left
// that the cancel could abort).
func (s *Server) stopWorkers() {
	s.draining.Store(true)
	s.cancel()
	s.admitMu.Lock()
	if s.closed.CompareAndSwap(false, true) {
		close(s.queue)
	}
	s.admitMu.Unlock()
	s.wg.Wait()
}

// closeJournal compacts and closes the journal once the pool is idle.
func (s *Server) closeJournal() {
	if s.jnl != nil {
		s.jnl.Close()
	}
}

// memTracer buffers the events of one solve for the ?trace=1 response
// payload. A job is driven by one worker goroutine, but the mutex keeps
// the type safe if an emitter ever moves off it.
type memTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (t *memTracer) Trace(ev *obs.Event) {
	t.mu.Lock()
	t.events = append(t.events, *ev)
	t.mu.Unlock()
}

// modelLits renders a satisfying assignment as DIMACS-style literals,
// mirroring satsolve's v-line.
func modelLits(f *cnf.Formula, m cnf.Assignment) []int {
	lits := make([]int, 0, f.NumVars)
	for v := 1; v <= f.NumVars; v++ {
		if m[v] {
			lits = append(lits, v)
		} else {
			lits = append(lits, -v)
		}
	}
	return lits
}

// stopReason maps an Unknown result's stop cause to the stable string
// vocabulary of the API (see API.md): timeout, canceled,
// conflict-budget, propagation-budget, panic.
func stopReason(stop error) string {
	switch {
	case stop == nil:
		return ""
	case errors.Is(stop, solver.ErrDeadline):
		return "timeout"
	case errors.Is(stop, solver.ErrCanceled):
		return "canceled"
	case errors.Is(stop, solver.ErrConflictBudget):
		return "conflict-budget"
	case errors.Is(stop, solver.ErrPropagationBudget):
		return "propagation-budget"
	case errors.Is(stop, solver.ErrSolvePanic):
		return "panic"
	default:
		return stop.Error()
	}
}
