// Package server turns the solver into a network service: an HTTP JSON API
// that accepts DIMACS CNF uploads, routes them through the portfolio
// selector onto a bounded solver worker pool, and answers with the solve
// outcome, the chosen policy, and timings.
//
// The request path is built from the pieces the repo already has:
// solves run under solver.SolveContext (deadline-aware, panic-contained),
// policy selection is portfolio.Selector.Choose (model-driven with
// degrade-to-default fallbacks), the worker pool follows the
// internal/sweep feeder pattern (bounded jobs channel, per-job panic
// containment, drain-on-shutdown with no goroutine leaks), and every
// stage reports into an obs.Registry.
//
// Service properties:
//
//   - Admission control: a fixed-depth queue in front of the pool; an
//     enqueue that would block is shed immediately with 429 and a
//     Retry-After hint, so latency stays bounded under overload.
//   - Result cache: an LRU keyed by CanonicalHash short-circuits repeated
//     instances — the one-time solving (and inference) cost is amortized
//     across identical uploads, the NeuroBack-style amortization argument
//     applied to whole results.
//   - Deadlines: every request runs under a per-request timeout
//     (?timeout=, clamped by Config.MaxTimeout) and returns UNKNOWN with
//     a stop reason rather than holding a worker.
//   - Async jobs: POST /v1/jobs enqueues and returns a job id to poll, so
//     clients are not held open for long solves; SIGTERM-style shutdown
//     drains queued and in-flight jobs before the listener closes.
//
// The HTTP contract (endpoints, schemas, error codes, metric names) is
// documented in API.md at the repo root.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
	"neuroselect/internal/solver"
)

// Config sizes a Server. The zero value is usable: NumCPU workers, a
// 64-deep queue, a 30s timeout ceiling, a 256-entry cache.
type Config struct {
	// Workers bounds the solver pool (<=0 → runtime.NumCPU()).
	Workers int
	// QueueDepth caps the admission queue; a full queue sheds new
	// requests with 429 (<=0 → 64).
	QueueDepth int
	// MaxTimeout clamps the per-request ?timeout= and is the default when
	// the client sends none (<=0 → 30s). Every solve runs under some
	// deadline: a worker is never held indefinitely.
	MaxTimeout time.Duration
	// MaxConflicts optionally bounds each solve's conflict count on top
	// of the deadline (0 = unlimited).
	MaxConflicts int64
	// CacheSize is the result-cache capacity in entries (0 → 256;
	// negative disables caching).
	CacheSize int
	// MaxBodyBytes caps the decompressed request body (<=0 → 64 MiB).
	MaxBodyBytes int64
	// JobHistory caps retained completed async jobs; the oldest finished
	// job is forgotten first (<=0 → 1024).
	JobHistory int
	// Selector, when non-nil, picks the deletion policy per instance via
	// the NeuroSelect model (requests may still pin one with ?policy=).
	// Nil servers solve everything under the default policy.
	Selector *portfolio.Selector
	// Registry receives the service metrics (neuroselect_server_*); nil
	// uses a private registry so instrumentation is unconditional.
	Registry *obs.Registry
}

// Server is a running solving service: worker pool, admission queue,
// result cache, async job store. Create with New, mount Handler on an
// http.Server, and stop with Drain (graceful) or Close (abort).
type Server struct {
	cfg   Config
	queue chan *job
	cache *resultCache
	jobs  *jobStore

	baseCtx context.Context // parent of every async solve; canceled by Close
	cancel  context.CancelFunc
	wg      sync.WaitGroup // worker goroutines
	pending sync.WaitGroup // jobs accepted but not yet finished

	admitMu  sync.RWMutex // excludes enqueue sends from the queue close
	draining atomic.Bool
	closed   atomic.Bool

	m serverMetrics
}

// serverMetrics is the service's obs instrumentation. All series live
// under the neuroselect_server_* namespace documented in API.md.
type serverMetrics struct {
	reg       *obs.Registry
	reqSec    func(endpoint string) *obs.Histogram
	requests  func(endpoint, code string) *obs.Counter
	queueWait *obs.Histogram
	shed      *obs.Counter
	cacheEv   func(event string) *obs.Counter
	solves    func(policy, status string) *obs.Counter
	inflight  *obs.Gauge
}

func newServerMetrics(reg *obs.Registry, s *Server) serverMetrics {
	m := serverMetrics{reg: reg}
	m.reqSec = func(endpoint string) *obs.Histogram {
		return reg.Histogram("neuroselect_server_request_seconds",
			"HTTP request latency by endpoint.", nil, obs.Labels{"endpoint": endpoint})
	}
	m.requests = func(endpoint, code string) *obs.Counter {
		return reg.Counter("neuroselect_server_requests_total",
			"HTTP requests by endpoint and status code.", obs.Labels{"endpoint": endpoint, "code": code})
	}
	m.queueWait = reg.Histogram("neuroselect_server_queue_wait_seconds",
		"Time an accepted job spent in the admission queue before a worker picked it up.", nil, nil)
	m.shed = reg.Counter("neuroselect_server_shed_total",
		"Requests rejected with 429 because the admission queue was full.", nil)
	m.cacheEv = func(event string) *obs.Counter {
		return reg.Counter("neuroselect_server_cache_events_total",
			"Result-cache activity by event (hit, miss, evict).", obs.Labels{"event": event})
	}
	m.solves = func(policy, status string) *obs.Counter {
		return reg.Counter("neuroselect_server_solves_total",
			"Completed solves by deletion policy and outcome.", obs.Labels{"policy": policy, "status": status})
	}
	m.inflight = reg.Gauge("neuroselect_server_inflight_solves",
		"Jobs currently being solved by a worker.", nil)
	reg.GaugeFunc("neuroselect_server_queue_depth",
		"Jobs waiting in the admission queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("neuroselect_server_queue_capacity",
		"Admission-queue capacity (the 429 shedding threshold).", nil,
		func() float64 { return float64(cap(s.queue)) })
	return m
}

// New builds the service and starts its worker pool. Callers own the HTTP
// listener; see Handler.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheSize),
		jobs:    newJobStore(cfg.JobHistory),
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.m = newServerMetrics(cfg.Registry, s)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the registry carrying the service metrics (the one
// from Config, or the private one a nil Config.Registry was replaced by).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// enqueue admits a job or sheds it. It never blocks: admission control is
// the point — a queue that would block means the service is saturated and
// the client should retry later. The read lock excludes the send from the
// queue close in stopWorkers; a request racing a shutdown is shed, never
// panicked on.
func (s *Server) enqueue(j *job) bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed.Load() {
		return false
	}
	s.pending.Add(1)
	select {
	case s.queue <- j:
		return true
	default:
		s.pending.Done()
		s.m.shed.Inc()
		return false
	}
}

// worker drains the admission queue until the queue closes (Drain) or the
// base context aborts (Close). Each job runs with panic containment —
// sweep's per-cell isolation applied to requests — so one poisoned
// instance cannot take the pool down.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
		if j.id != "" {
			s.jobs.NoteDone(j)
		}
		s.pending.Done()
	}
}

// runJob executes one admitted job end to end: policy selection, the
// deadline-bounded solve, response marshaling, cache fill, metrics.
func (s *Server) runJob(j *job) {
	defer func() {
		if r := recover(); r != nil {
			// Should be unreachable — solver.SolveContext contains its own
			// panics — but a worker must survive anything a job throws.
			j.fail(500, fmt.Sprintf("internal error: %v", r))
		}
		j.finish()
	}()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)

	wait := time.Since(j.enqueued)
	s.m.queueWait.Observe(wait.Seconds())
	j.setRunning()

	ctx := j.ctx
	if err := ctx.Err(); err != nil {
		// The client vanished while the job sat in the queue.
		j.fail(499, "client canceled before solve started")
		return
	}
	ctx, cancelTimeout := context.WithTimeout(ctx, j.timeout)
	defer cancelTimeout()

	var tracer obs.Tracer
	var mem *memTracer
	if j.trace {
		mem = &memTracer{}
		tracer = mem
	}

	pol, polInfo := s.selectPolicy(j, mem)
	opts := dataset.SolveOptions(pol, s.cfg.MaxConflicts)
	opts.Tracer = tracer

	solveStart := time.Now()
	res, err := solver.SolveContext(ctx, j.f, opts)
	solveNS := time.Since(solveStart).Nanoseconds()
	if err != nil && res.Status != solver.Unknown {
		// Non-panic internal failure (e.g. model verification); panics and
		// deadline exhaustion arrive as error-carrying Unknown results.
		j.fail(500, "solve failed: "+err.Error())
		return
	}

	resp := &solveResponse{
		Status: res.Status.String(),
		Policy: polInfo,
		Stats:  res.Stats,
		Timings: timings{
			QueueNS: wait.Nanoseconds(),
			SolveNS: solveNS,
			TotalNS: time.Since(j.enqueued).Nanoseconds(),
		},
	}
	if res.Status == solver.Sat {
		resp.Model = modelLits(j.f, res.Model)
	}
	if res.Stop != nil {
		resp.Stop = stopReason(res.Stop)
	}
	if mem != nil {
		resp.Trace = mem.events
	}
	s.m.solves(polInfo.Name, resp.Status).Inc()

	body, merr := marshalBody(resp)
	if merr != nil {
		j.fail(500, "encode response: "+merr.Error())
		return
	}
	// Cache only decided, untraced results: UNKNOWN depends on the
	// request's own deadline, and trace payloads are per-request.
	if j.key != "" && !j.trace && (res.Status == solver.Sat || res.Status == solver.Unsat) {
		if ev := s.cache.Put(j.key, body, polInfo.Name); ev > 0 {
			s.m.cacheEv("evict").Add(int64(ev))
		}
	}
	j.succeed(body)
}

// selectPolicy resolves the deletion policy for one job: a client-pinned
// ?policy= wins, then the model-driven selector, then the default policy.
// When the job captures a trace, the selection is recorded as an
// EventPolicy exactly as portfolio's own tracer would emit it.
func (s *Server) selectPolicy(j *job, mem *memTracer) (deletion.Policy, policyInfo) {
	var pol deletion.Policy
	var info policyInfo
	switch {
	case j.policy != nil:
		pol = j.policy
		info = policyInfo{Name: pol.Name(), Prob: -1, Fallback: "requested"}
	case s.cfg.Selector != nil:
		ch := s.cfg.Selector.Choose(j.f)
		pol = ch.Policy
		info = policyInfo{
			Name:        pol.Name(),
			Prob:        ch.Prob,
			Fallback:    ch.Fallback,
			InferenceNS: ch.Inference.Nanoseconds(),
		}
	default:
		pol = deletion.DefaultPolicy{}
		info = policyInfo{Name: pol.Name(), Prob: -1, Fallback: "no-model"}
	}
	if mem != nil {
		mem.Trace(&obs.Event{
			Type:        obs.EventPolicy,
			Policy:      info.Name,
			Prob:        info.Prob,
			Fallback:    info.Fallback,
			InferenceNS: info.InferenceNS,
		})
	}
	return pol, info
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: new submissions are refused
// with 503 immediately, queued and in-flight jobs run to completion, and
// Drain returns when the pool is idle or ctx expires (in-flight solves
// still run under their own deadlines either way). Call before shutting
// the HTTP listener so sync waiters get their responses.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopWorkers()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close aborts the service: the base context cancels (async solves return
// UNKNOWN/canceled promptly) and the workers exit once the queue empties.
// Safe after Drain.
func (s *Server) Close() {
	s.cancel()
	s.stopWorkers()
}

// stopWorkers closes the queue exactly once and joins the pool.
func (s *Server) stopWorkers() {
	s.draining.Store(true)
	s.admitMu.Lock()
	if s.closed.CompareAndSwap(false, true) {
		close(s.queue)
	}
	s.admitMu.Unlock()
	s.wg.Wait()
}

// memTracer buffers the events of one solve for the ?trace=1 response
// payload. A job is driven by one worker goroutine, but the mutex keeps
// the type safe if an emitter ever moves off it.
type memTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (t *memTracer) Trace(ev *obs.Event) {
	t.mu.Lock()
	t.events = append(t.events, *ev)
	t.mu.Unlock()
}

// modelLits renders a satisfying assignment as DIMACS-style literals,
// mirroring satsolve's v-line.
func modelLits(f *cnf.Formula, m cnf.Assignment) []int {
	lits := make([]int, 0, f.NumVars)
	for v := 1; v <= f.NumVars; v++ {
		if m[v] {
			lits = append(lits, v)
		} else {
			lits = append(lits, -v)
		}
	}
	return lits
}

// stopReason maps an Unknown result's stop cause to the stable string
// vocabulary of the API (see API.md): timeout, canceled,
// conflict-budget, propagation-budget, panic.
func stopReason(stop error) string {
	switch {
	case stop == nil:
		return ""
	case errors.Is(stop, solver.ErrDeadline):
		return "timeout"
	case errors.Is(stop, solver.ErrCanceled):
		return "canceled"
	case errors.Is(stop, solver.ErrConflictBudget):
		return "conflict-budget"
	case errors.Is(stop, solver.ErrPropagationBudget):
		return "propagation-budget"
	case errors.Is(stop, solver.ErrSolvePanic):
		return "panic"
	default:
		return stop.Error()
	}
}
