package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"neuroselect/internal/faultpoint"
)

// The job journal is the server's write-ahead log for async solves: one
// append-only JSONL file (journal.jsonl in the -journal directory) whose
// records trace each job's lifecycle. A "submit" record carries everything
// needed to re-create the job — id, cache/dedup key, pinned policy,
// timeout, and the DIMACS body — and is fsync'd before the client receives
// its 202, so a crash (or kill -9) at any later point leaves the job
// recoverable. "start" records mark solve attempts and "done" records mark
// terminal states; a submit without a matching done is a pending job that
// startup replay re-admits through the normal admission queue.
//
// The file only grows while the process runs, so a compaction pass
// rewrites it down to just the pending submits: at startup (after replay),
// at graceful shutdown, and inline whenever compactEvery obsolete records
// have accumulated. Compaction writes a temp file, fsyncs it, and renames
// it over the journal, so a crash mid-compaction leaves either the old or
// the new file, never a torn one. A torn final record from a crash
// mid-append is skipped by replay (it fails to decode), losing at most the
// single record being written at the moment of the crash.
//
// Failure model: journal I/O errors (including faultpoint-injected ones at
// ServerJournalAppend) degrade durability, never availability — the record
// is dropped, the error counter moves, and the request proceeds. A dropped
// "done" means replay may re-admit a completed job, so journaled serving
// is exactly-once under crashes and at-least-once under storage faults.

// journalRecord is one line of the job journal. The schema is append-only:
// fields may be added, never renamed or removed.
type journalRecord struct {
	Type      string `json:"type"`                 // "submit" | "start" | "done"
	ID        string `json:"id"`                   // job id, stable across restarts
	Key       string `json:"key,omitempty"`        // cache/singleflight key (submit)
	Policy    string `json:"policy,omitempty"`     // pinned policy name; "" = auto (submit)
	TimeoutNS int64  `json:"timeout_ns,omitempty"` // per-job solve deadline (submit)
	Trace     bool   `json:"trace,omitempty"`      // ?trace=1 job (submit)
	CNF       string `json:"cnf,omitempty"`        // DIMACS body (submit)
	Attempt   int    `json:"attempt,omitempty"`    // retry attempt number (start)
	Status    string `json:"status,omitempty"`     // "ok" | "error" | "shed" (done)
	ReqID     string `json:"req_id,omitempty"`     // X-Request-ID of the submit (submit)
}

const journalFileName = "journal.jsonl"

// journal serializes appends and compactions of one journal file.
type journal struct {
	mu           sync.Mutex
	path         string
	f            *os.File
	live         map[string]*journalRecord // submit records without a done
	obsolete     int                       // records a compaction would drop
	compactEvery int
	onError      func(op string) // error counter hook (op: append, replay, compact)
}

// openJournal loads (or creates) the journal under dir, returning the
// pending jobs found by replay, sorted by id. The returned journal has
// already been compacted down to those pending submits.
func openJournal(dir string, compactEvery int, onError func(op string)) (*journal, []*journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal dir: %w", err)
	}
	if compactEvery <= 0 {
		compactEvery = 256
	}
	if onError == nil {
		onError = func(string) {}
	}
	j := &journal{
		path:         filepath.Join(dir, journalFileName),
		live:         make(map[string]*journalRecord),
		compactEvery: compactEvery,
		onError:      onError,
	}
	pending, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	return j, pending, nil
}

// replay scans the journal file and reconstructs the pending-job set.
// Records that fail to decode (a torn final write from a crash) or that
// the ServerJournalReplay faultpoint rejects are skipped and counted.
func (j *journal) replay() ([]*journalRecord, error) {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal open: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20) // submits carry whole formulas
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := faultpoint.Hit(faultpoint.ServerJournalReplay); err != nil {
			j.onError("replay")
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			j.onError("replay")
			continue
		}
		switch rec.Type {
		case "submit":
			r := rec
			j.live[rec.ID] = &r
		case "done":
			delete(j.live, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal scan: %w", err)
	}
	pending := make([]*journalRecord, 0, len(j.live))
	for _, rec := range j.live {
		pending = append(pending, rec)
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].ID < pending[b].ID })
	return pending, nil
}

// append writes one record and fsyncs it. Errors (real or injected) drop
// the record and move the error counter; the caller's request proceeds.
func (j *journal) append(rec *journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := faultpoint.Hit(faultpoint.ServerJournalAppend); err != nil {
		j.onError("append")
		return
	}
	if j.f == nil { // closed (post-drain stragglers)
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.onError("append")
		return
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.onError("append")
		return
	}
	if err := j.f.Sync(); err != nil {
		j.onError("append")
		return
	}
	switch rec.Type {
	case "submit":
		j.live[rec.ID] = rec
	case "done":
		if _, ok := j.live[rec.ID]; ok {
			delete(j.live, rec.ID)
			j.obsolete += 2 // the submit and this done
		} else {
			j.obsolete++
		}
	default: // start and future record types are compaction fodder
		j.obsolete++
	}
	if j.obsolete >= j.compactEvery {
		if err := j.compactLocked(); err != nil {
			j.onError("compact")
		}
	}
}

// compactLocked rewrites the journal down to the live submit records via
// an fsync'd temp file and an atomic rename, then reopens the append
// handle. Callers hold j.mu.
func (j *journal) compactLocked() error {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	ids := make([]string, 0, len(j.live))
	for id := range j.live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		line, err := json.Marshal(j.live[id])
		if err != nil {
			f.Close()
			return fmt.Errorf("journal compact: %w", err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return fmt.Errorf("journal compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	j.obsolete = 0
	j.f, err = os.OpenFile(j.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal reopen: %w", err)
	}
	return nil
}

// Close compacts one final time (so a cleanly-drained journal holds only
// still-pending jobs, usually none) and releases the file. Idempotent.
func (j *journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if err := j.compactLocked(); err != nil {
		j.onError("compact")
	}
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
