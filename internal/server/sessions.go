package server

// Warm solver sessions: the serving-layer face of the solver's incremental
// (IPASIR-style) interface. A session pins one solver.Solver to an id;
// repeated solves against it pay incremental cost — clause additions,
// assumption changes — instead of the cold construct-and-search cost the
// stateless /v1/solve path pays on every request, and the learned clauses,
// variable activities, and saved phases from earlier calls carry over.
//
// Sessions compose with a warm solver pool keyed by the canonical hash of
// the base formula (and the policy variant): deleting a session whose
// permanent clause set still equals its base formula parks the warm solver
// instead of discarding it, and a later session created for the same base
// resumes it — learned clauses included — skipping construction entirely.
// Sessions that grew permanent clauses (AddClause outside any frame) have
// diverged from their base and are dropped on close; clauses added under
// Push frames are retracted by Pop at park time, so frame use never
// poisons the pool.
//
// Sessions are deliberately NOT journaled: a solver's warm state (arena,
// activities, phases) is not serializable at a useful cost, so a restart
// loses sessions. Clients treat 404 on a session id as "recreate and
// replay"; the base-formula pool then usually makes the recreate a hit.
// This is the same durability trade the result cache makes, not the job
// journal's.
//
// Lifecycle: sessions are bounded by Config.SessionMax (LRU eviction of
// the least-recently-used idle session on overflow), expire after
// Config.SessionTTL idle, and are closed early if the solver's estimated
// footprint exceeds Config.SessionMaxMem after a solve. One solve runs at
// a time per session (409 busy on overlap). Drain refuses new session
// operations and waits for in-flight session solves like any other work.

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/dataset"
	"neuroselect/internal/deletion"
	"neuroselect/internal/solver"
)

// session is one pinned warm solver.
type session struct {
	id     string
	key    string // policy variant + canonical base hash; "" when caching disabled
	policy string
	slv    *solver.Solver

	mu sync.Mutex // held for the duration of one solve; TryLock → 409

	// extended flips when a permanent clause (outside every frame) is
	// added: the solver no longer answers for the base formula alone and
	// must not be parked. Guarded by mu.
	extended bool
	solves   int64 // guarded by mu

	// lastUsed and lruEl are guarded by the owning table's lock.
	lastUsed time.Time
	created  time.Time
	lruEl    *list.Element
}

// sessionTable is the id → session map with LRU ordering for bounded
// occupancy and idle-TTL expiry.
type sessionTable struct {
	mu     sync.Mutex
	cap    int
	prefix string // Config.BackendName + "-" in backend mode; ids become cluster-unique
	byID   map[string]*session
	ll     *list.List // front = most recently used
	nextID uint64
}

func newSessionTable(capacity int, prefix string) *sessionTable {
	return &sessionTable{cap: capacity, prefix: prefix, byID: make(map[string]*session), ll: list.New()}
}

// Add registers a session, assigning its id. When the table is at
// capacity it evicts the least-recently-used idle session first; if every
// session is mid-solve, Add refuses. The evicted session (if any) is
// returned so the caller can park its solver.
func (t *sessionTable) Add(sess *session, now time.Time) (evicted *session, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ll.Len() >= t.cap {
		evicted = t.evictLRULocked()
		if evicted == nil {
			return nil, errors.New("session table full and every session is busy")
		}
	}
	t.nextID++
	sess.id = fmt.Sprintf("%ss%08d", t.prefix, t.nextID)
	sess.created = now
	sess.lastUsed = now
	sess.lruEl = t.ll.PushFront(sess)
	t.byID[sess.id] = sess
	return evicted, nil
}

// evictLRULocked removes the least-recently-used session not currently
// solving. The evicted session's lock is held on return (the caller parks
// or drops the solver, then unlocks).
func (t *sessionTable) evictLRULocked() *session {
	for el := t.ll.Back(); el != nil; el = el.Prev() {
		sess := el.Value.(*session)
		if sess.mu.TryLock() {
			t.removeLocked(sess)
			return sess
		}
	}
	return nil
}

// Get looks a session up and marks it used.
func (t *sessionTable) Get(id string, now time.Time) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	sess.lastUsed = now
	t.ll.MoveToFront(sess.lruEl)
	return sess, true
}

// Alive reports whether sess is still registered. Handlers that looked a
// session up and then acquired sess.mu must re-validate with Alive before
// touching the solver: between Get and the lock, the reaper or LRU
// eviction may have removed the session and parked its solver, and a
// concurrent create may have already bound that solver to a new session.
// Membership is tracked by lruEl, which removeLocked clears under t.mu.
func (t *sessionTable) Alive(sess *session) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sess.lruEl != nil
}

// Remove unregisters a session by id.
func (t *sessionTable) Remove(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess, ok := t.byID[id]
	if ok {
		t.removeLocked(sess)
	}
	return sess, ok
}

func (t *sessionTable) removeLocked(sess *session) {
	delete(t.byID, sess.id)
	t.ll.Remove(sess.lruEl)
	sess.lruEl = nil
}

// Expired collects (and removes) every session idle longer than ttl whose
// lock could be taken; each is returned locked for the caller to close.
func (t *sessionTable) Expired(ttl time.Duration, now time.Time) []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*session
	for el := t.ll.Back(); el != nil; {
		prev := el.Prev()
		sess := el.Value.(*session)
		if now.Sub(sess.lastUsed) < ttl {
			break // LRU order: everything further front is younger
		}
		if sess.mu.TryLock() {
			t.removeLocked(sess)
			out = append(out, sess)
		}
		el = prev
	}
	return out
}

// Len returns the number of live sessions.
func (t *sessionTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

// pooledSolver is one parked warm solver awaiting a session for the same
// base formula.
type pooledSolver struct {
	key    string
	policy string
	slv    *solver.Solver
	parked time.Time
}

// solverPool is the warm pool: an LRU of parked solvers keyed by policy
// variant + canonical base-formula hash. Capacity-bound; Take removes the
// most recently parked match.
type solverPool struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently parked
	byKey map[string][]*list.Element
}

func newSolverPool(capacity int) *solverPool {
	return &solverPool{cap: capacity, ll: list.New(), byKey: make(map[string][]*list.Element)}
}

// Take removes and returns the most recently parked solver for key.
func (p *solverPool) Take(key string) (*pooledSolver, bool) {
	if key == "" {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	els := p.byKey[key]
	if len(els) == 0 {
		return nil, false
	}
	el := els[len(els)-1]
	p.byKey[key] = els[:len(els)-1]
	p.ll.Remove(el)
	return el.Value.(*pooledSolver), true
}

// Park stores a warm solver, evicting the oldest entry when over
// capacity. It reports how many entries were dropped to make room.
func (p *solverPool) Park(ps *pooledSolver) (dropped int) {
	if ps.key == "" || p.cap <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el := p.ll.PushFront(ps)
	p.byKey[ps.key] = append(p.byKey[ps.key], el)
	for p.ll.Len() > p.cap {
		last := p.ll.Back()
		p.removeLocked(last)
		dropped++
	}
	return dropped
}

// DropOlderThan evicts parked solvers idle past ttl.
func (p *solverPool) DropOlderThan(ttl time.Duration, now time.Time) (dropped int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.ll.Back(); el != nil; {
		prev := el.Prev()
		if now.Sub(el.Value.(*pooledSolver).parked) < ttl {
			break
		}
		p.removeLocked(el)
		dropped++
		el = prev
	}
	return dropped
}

func (p *solverPool) removeLocked(el *list.Element) {
	ps := el.Value.(*pooledSolver)
	els := p.byKey[ps.key]
	for i, e := range els {
		if e == el {
			p.byKey[ps.key] = append(els[:i], els[i+1:]...)
			break
		}
	}
	if len(p.byKey[ps.key]) == 0 {
		delete(p.byKey, ps.key)
	}
	p.ll.Remove(el)
}

// Len returns the number of parked solvers.
func (p *solverPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}

// sessionReaper ticks until the server closes, expiring idle sessions and
// stale pool entries. The tick is a fraction of the TTL so short test TTLs
// expire promptly without a hot loop.
func (s *Server) sessionReaper() {
	defer s.wg.Done()
	tick := s.cfg.SessionTTL / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-tk.C:
			for _, sess := range s.sessions.Expired(s.cfg.SessionTTL, now) {
				s.m.sessionEv("expire").Inc()
				s.closeSession(sess, true)
				sess.mu.Unlock()
			}
			if n := s.pool.DropOlderThan(s.cfg.SessionTTL, time.Now()); n > 0 {
				s.m.sessionEv("drop").Add(int64(n))
			}
		}
	}
}

// closeSession disposes of a removed session's solver: parked into the
// warm pool when it still answers for its base formula, dropped otherwise.
// Open frames are popped first so frame-local clauses never enter the
// pool. Caller holds sess.mu.
func (s *Server) closeSession(sess *session, mayPark bool) {
	if !mayPark || sess.extended || sess.key == "" {
		return
	}
	for sess.slv.FrameDepth() > 0 {
		sess.slv.Pop()
	}
	sess.slv.SetDeadline(time.Time{})
	s.m.sessionEv("park").Inc()
	if n := s.pool.Park(&pooledSolver{key: sess.key, policy: sess.policy, slv: sess.slv, parked: time.Now()}); n > 0 {
		s.m.sessionEv("drop").Add(int64(n))
	}
}

// sessionCreateResponse is the POST /v1/sessions body.
type sessionCreateResponse struct {
	ID      string `json:"id"`
	Pool    string `json:"pool"` // hit (warm solver resumed) or miss (built cold)
	Policy  string `json:"policy"`
	Vars    int    `json:"vars"`
	Clauses int    `json:"clauses"`
}

// sessionSolveRequest is the JSON body of POST /v1/sessions/{id}/solve.
// Operations apply in a fixed order — pop frames, push frames, add
// clauses, then solve under the assumptions — so one request can express
// the common retract-extend-query cycle atomically: the whole request is
// validated (literals, clause sizes, frame depth) before the first
// operation touches the solver, so a 400 never leaves a partially
// applied step behind.
type sessionSolveRequest struct {
	Pop         int     `json:"pop,omitempty"`
	Push        int     `json:"push,omitempty"`
	Add         [][]int `json:"add,omitempty"`
	Assumptions []int   `json:"assumptions,omitempty"`
	Timeout     string  `json:"timeout,omitempty"`
}

// sessionSolveResponse is the solve result. Stats are cumulative for the
// session's solver, so deltas between calls measure the incremental cost.
type sessionSolveResponse struct {
	Status         string       `json:"status"`
	Model          []int        `json:"model,omitempty"`
	Core           []int        `json:"core,omitempty"`
	Stop           string       `json:"stop,omitempty"`
	FrameDepth     int          `json:"frame_depth"`
	Stats          solver.Stats `json:"stats"`
	FootprintBytes int64        `json:"footprint_bytes"`
	Evicted        bool         `json:"evicted,omitempty"` // memory cap closed the session
	Timings        timings      `json:"timings"`
}

// sessionView is the GET /v1/sessions/{id} body.
type sessionView struct {
	ID             string `json:"id"`
	Policy         string `json:"policy"`
	Solves         int64  `json:"solves"`
	FrameDepth     int    `json:"frame_depth"`
	UserVars       int    `json:"vars"`
	AddedClauses   int64  `json:"added_clauses"`
	FootprintBytes int64  `json:"footprint_bytes"`
	IdleMS         int64  `json:"idle_ms"`
}

// handleSessionCreate is POST /v1/sessions: parse the base formula, take a
// warm solver from the pool (hit) or build one (miss), register the
// session. ?policy= pins the deletion policy (sessions do not run model
// inference — the policy is fixed for the session's lifetime).
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	s.pending.Add(1)
	defer s.pending.Done()
	body, herr := s.readBody(w, r)
	if herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}
	f, err := cnf.ParseDIMACS(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse DIMACS: "+err.Error())
		return
	}
	pol := deletion.Policy(deletion.DefaultPolicy{})
	switch v := r.URL.Query().Get("policy"); v {
	case "", "auto", "default":
	default:
		if pol, err = deletion.ByName(v); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	key := ""
	if s.cfg.CacheSize > 0 {
		key = "session-" + pol.Name() + ":" + CanonicalHash(f)
	}

	start := time.Now()
	poolState := "miss"
	var slv *solver.Solver
	if ps, ok := s.pool.Take(key); ok {
		poolState = "hit"
		s.m.sessionEv("hit").Inc()
		slv = ps.slv
	} else {
		s.m.sessionEv("miss").Inc()
		slv, err = solver.New(f, dataset.SolveOptions(pol, s.cfg.MaxConflicts))
		if err != nil {
			writeError(w, http.StatusBadRequest, "build solver: "+err.Error())
			return
		}
	}
	s.m.sessionSec("create").Observe(time.Since(start).Seconds())

	sess := &session{key: key, policy: pol.Name(), slv: slv}
	evicted, err := s.sessions.Add(sess, time.Now())
	if err != nil {
		// Hand the solver back to the pool rather than wasting the warmth.
		// The session was never published, so the lock is uncontended; it is
		// taken anyway to honor closeSession's locking contract.
		sess.mu.Lock()
		s.closeSession(sess, true)
		sess.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if evicted != nil {
		s.m.sessionEv("evict").Inc()
		s.closeSession(evicted, true)
		evicted.mu.Unlock()
	}
	s.m.sessionEv("create").Inc()
	writeJSON(w, http.StatusCreated, sessionCreateResponse{
		ID: sess.id, Pool: poolState, Policy: pol.Name(),
		Vars: f.NumVars, Clauses: len(f.Clauses),
	})
}

// handleSessionSolve is POST /v1/sessions/{id}/solve: one incremental
// step — pop, push, add, solve under assumptions — on the pinned solver.
func (s *Server) handleSessionSolve(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	s.pending.Add(1)
	defer s.pending.Done()
	start := time.Now()
	sess, ok := s.sessions.Get(r.PathValue("id"), start)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session id")
		return
	}
	var req sessionSolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parse request: "+err.Error())
		return
	}
	if req.Pop < 0 || req.Push < 0 {
		writeError(w, http.StatusBadRequest, "pop and push must be non-negative")
		return
	}
	timeout := s.cfg.MaxTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad timeout %q: want a positive Go duration like 5s or 500ms", req.Timeout))
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	// Validate everything that does not need solver state before taking the
	// session lock, and the frame-depth bound right after taking it, so a
	// rejected request mutates nothing: the step is all-or-nothing, never a
	// committed prefix of its operations.
	add := make([]cnf.Clause, len(req.Add))
	for i, raw := range req.Add {
		if len(raw) > solver.MaxAddClauseLen {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("clause of %d literals exceeds the limit of %d", len(raw), solver.MaxAddClauseLen))
			return
		}
		c := make(cnf.Clause, len(raw))
		for j, l := range raw {
			if l == 0 {
				writeError(w, http.StatusBadRequest, "zero literal in clause")
				return
			}
			c[j] = cnf.Lit(l)
		}
		add[i] = c
	}
	assumptions := make([]cnf.Lit, len(req.Assumptions))
	for i, l := range req.Assumptions {
		if l == 0 {
			writeError(w, http.StatusBadRequest, "zero literal in assumptions")
			return
		}
		assumptions[i] = cnf.Lit(l)
	}

	if !sess.mu.TryLock() {
		writeError(w, http.StatusConflict, "session is busy with another solve")
		return
	}
	defer sess.mu.Unlock()
	if !s.sessions.Alive(sess) {
		// Removed (reaper, LRU eviction, or delete) between Get and the
		// lock; the solver may already be parked or serving a new session.
		writeError(w, http.StatusNotFound, "unknown session id")
		return
	}
	if req.Pop > sess.slv.FrameDepth() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("pop %d with %d open frames", req.Pop, sess.slv.FrameDepth()))
		return
	}

	for i := 0; i < req.Pop; i++ {
		sess.slv.Pop()
	}
	for i := 0; i < req.Push; i++ {
		sess.slv.Push()
	}
	for _, c := range add {
		if err := sess.slv.AddClause(c); err != nil {
			// Unreachable after the up-front checks; fail loudly if the
			// solver grows a new rejection path.
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	if len(add) > 0 && sess.slv.FrameDepth() == 0 {
		sess.extended = true
	}

	solveStart := time.Now()
	sess.slv.SetDeadline(solveStart.Add(timeout))
	st, core := sess.slv.SolveUnderAssumptions(assumptions)
	solveNS := time.Since(solveStart).Nanoseconds()
	stop := sess.slv.BudgetExhausted()
	sess.slv.SetDeadline(time.Time{}) // also clears the budget latch
	sess.solves++
	s.m.sessionSec("incremental").Observe(float64(solveNS) / 1e9)
	s.m.solves(sess.policy, st.String()).Inc()

	resp := &sessionSolveResponse{
		Status:         st.String(),
		FrameDepth:     sess.slv.FrameDepth(),
		Stats:          sess.slv.Stats(),
		FootprintBytes: sess.slv.Footprint(),
		Timings:        timings{SolveNS: solveNS, TotalNS: time.Since(start).Nanoseconds()},
	}
	switch st {
	case solver.Sat:
		resp.Model = assignmentLits(sess.slv.Model(), sess.slv.UserVars())
	case solver.Unsat:
		resp.Core = make([]int, len(core))
		for i, l := range core {
			resp.Core[i] = int(l)
		}
	case solver.Unknown:
		resp.Stop = stopReason(stop)
	}
	if resp.FootprintBytes > s.cfg.SessionMaxMem {
		// Over the memory budget: this solve still answers, but the
		// session closes and the solver is dropped (never parked — the
		// pool would inherit the oversized arena).
		resp.Evicted = true
		s.m.sessionEv("memcap").Inc()
		s.sessions.Remove(sess.id)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionInfo is GET /v1/sessions/{id}.
func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.sessions.mu.Lock()
	sess, ok := s.sessions.byID[r.PathValue("id")]
	var idle time.Duration
	if ok {
		idle = now.Sub(sess.lastUsed) // info does not refresh the TTL
	}
	s.sessions.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session id")
		return
	}
	if !sess.mu.TryLock() {
		writeError(w, http.StatusConflict, "session is busy with another solve")
		return
	}
	defer sess.mu.Unlock()
	if !s.sessions.Alive(sess) {
		// Removed between the lookup and the lock (see handleSessionSolve).
		writeError(w, http.StatusNotFound, "unknown session id")
		return
	}
	writeJSON(w, http.StatusOK, sessionView{
		ID:             sess.id,
		Policy:         sess.policy,
		Solves:         sess.solves,
		FrameDepth:     sess.slv.FrameDepth(),
		UserVars:       sess.slv.UserVars(),
		AddedClauses:   sess.slv.Stats().AddedClauses,
		FootprintBytes: sess.slv.Footprint(),
		IdleMS:         idle.Milliseconds(),
	})
}

// handleSessionDelete is DELETE /v1/sessions/{id}: close the session,
// parking the warm solver for reuse when it still answers for its base
// formula.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Remove(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session id")
		return
	}
	sess.mu.Lock()
	s.m.sessionEv("close").Inc()
	s.closeSession(sess, true)
	sess.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// assignmentLits renders a model over the first n variables as
// DIMACS-style signed literals.
func assignmentLits(m cnf.Assignment, n int) []int {
	lits := make([]int, 0, n)
	for v := 1; v <= n; v++ {
		if m[v] {
			lits = append(lits, v)
		} else {
			lits = append(lits, -v)
		}
	}
	return lits
}
