package server

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
	"neuroselect/internal/portfolio"
)

// The chaos harness: seed-deterministic fault schedules over the server's
// faultpoint sites, each driving a full serve/drain cycle and then
// checking the durability invariants:
//
//   - no job lost: every acknowledged (202) async job reaches a terminal
//     state before Drain returns;
//   - no job double-completed: a second completion would double-close the
//     job's done channel and panic the run;
//   - no goroutine leaked: the process returns to its pre-server
//     goroutine count;
//   - metrics consistent: the request counters agree exactly with the
//     responses the harness observed;
//   - the journal is empty after a clean drain — unless the schedule
//     injected journal-append faults, which legitimately drop records
//     (durability degrades to at-least-once, never loss).
//
// Schedules are deterministic in their seed: a failure names the seed,
// and re-running that one subtest reproduces the same arming.
const chaosSchedules = 200

// chaosSites lists every server faultpoint with the fault kinds a
// schedule may arm there. Panics are only injected at the worker-solve
// site, where containment is part of the contract; handler-side panics
// would tear HTTP responses mid-write and prove nothing about the server.
var chaosSites = []struct {
	site   faultpoint.Site
	panics bool
	delays bool
}{
	{faultpoint.ServerJournalAppend, false, false},
	{faultpoint.ServerJournalReplay, false, false},
	{faultpoint.ServerCacheGet, false, false},
	{faultpoint.ServerCachePut, false, false},
	{faultpoint.ServerEnqueue, false, false},
	{faultpoint.ServerWorkerSolve, true, true},
	{faultpoint.ServerInference, false, false},
	{faultpoint.ServerDrain, false, true},
}

func TestChaosScheduleInvariants(t *testing.T) {
	n := chaosSchedules
	if testing.Short() {
		n = 25
	}
	sel := testSelector() // shared across schedules; Choose holds no state
	for i := 0; i < n; i++ {
		seed := int64(i)*7919 + 13
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runChaosSchedule(t, seed, sel)
		})
	}
}

// armSchedule arms a seed-deterministic subset of the chaos sites and
// reports whether journal appends can fail under it.
func armSchedule(rng *rand.Rand) (appendFaulty bool) {
	for _, cs := range chaosSites {
		if rng.Intn(2) == 0 {
			continue
		}
		f := faultpoint.Fault{
			Err:   errors.New("chaos"),
			Skip:  rng.Intn(3),
			Times: rng.Intn(4), // 0 = every eligible hit
		}
		if cs.panics && rng.Intn(3) == 0 {
			f.Err, f.PanicValue = nil, "chaos panic"
		}
		if cs.delays && rng.Intn(3) == 0 {
			f.Err, f.PanicValue, f.Delay = nil, nil, time.Duration(1+rng.Intn(3))*time.Millisecond
		}
		if cs.site == faultpoint.ServerDrain {
			// Only delays here: drain ignores injected errors by contract.
			if f.Delay == 0 {
				continue
			}
			f.Err, f.PanicValue = nil, nil
		}
		faultpoint.Arm(cs.site, f)
		if cs.site == faultpoint.ServerJournalAppend {
			appendFaulty = true
		}
	}
	return appendFaulty
}

func runChaosSchedule(t *testing.T, seed int64, sel *portfolio.Selector) {
	t.Cleanup(faultpoint.Reset)
	rng := rand.New(rand.NewSource(seed))
	baseline := runtime.NumGoroutine()

	appendFaulty := armSchedule(rng)
	dir := t.TempDir()
	cfg := Config{
		Workers:          2,
		QueueDepth:       4,
		MaxTimeout:       20 * time.Second,
		JobHistory:       64,
		JournalDir:       dir,
		MaxRetries:       2,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
	}
	if rng.Intn(2) == 0 {
		cfg.Selector = sel
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("seed %d: New: %v", seed, err)
	}
	h := s.Handler()

	// The request mix: two identical async submits (a dedup pair), one
	// identical sync solve riding the same flight, plus distinct sync and
	// async jobs. All tiny instances — the interleavings, not the search,
	// are under test.
	type call struct {
		path string // "solve" or "jobs"
		body string
	}
	calls := []call{
		{"jobs", satCNF},
		{"jobs", satCNF},
		{"solve", satCNF},
		{"jobs", unsatCNF},
		{"solve", "p cnf 2 2\n1 2 0\n-1 0\n"},
		{"jobs", "p cnf 3 1\n3 0\n"},
	}
	var (
		mu       sync.Mutex
		accepted []string
		seen     = map[string]map[int]int{"solve": {}, "jobs": {}}
	)
	var wg sync.WaitGroup
	for _, c := range calls {
		wg.Add(1)
		go func(c call) {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/v1/"+c.path, strings.NewReader(c.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			mu.Lock()
			defer mu.Unlock()
			seen[c.path][rec.Code]++
			if c.path == "jobs" && (rec.Code == http.StatusAccepted || rec.Code == http.StatusOK) {
				var v jobView
				if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
					t.Errorf("seed %d: decode submit reply %q: %v", seed, rec.Body.Bytes(), err)
					return
				}
				accepted = append(accepted, v.ID)
			}
		}(c)
	}
	wg.Wait()

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("seed %d: drain: %v", seed, err)
	}

	// Invariant: no acknowledged job was lost, and each is terminal.
	for _, id := range accepted {
		j, ok := s.jobs.Get(id)
		if !ok {
			t.Errorf("seed %d: accepted job %s lost", seed, id)
			continue
		}
		select {
		case <-j.done:
		default:
			t.Errorf("seed %d: accepted job %s not terminal after drain", seed, id)
		}
		if state, _, _, _ := j.snapshot(); state != JobDone {
			t.Errorf("seed %d: job %s state %q after drain", seed, id, state)
		}
	}

	// Invariant: the request counters agree with the observed responses.
	for endpoint, codes := range seen {
		for code, want := range codes {
			got := s.Registry().Counter("neuroselect_server_requests_total", "",
				obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)}).Value()
			if got != int64(want) {
				t.Errorf("seed %d: requests_total{%s,%d} = %d, want %d", seed, endpoint, code, got, want)
			}
		}
	}

	// Invariant: a cleanly drained journal holds no pending work — unless
	// append faults could have dropped records.
	if !appendFaulty {
		if recs := readJournalLines(t, dir); len(recs) != 0 {
			t.Errorf("seed %d: journal holds %d records after clean drain: %+v", seed, len(recs), recs)
		}
	}

	// Invariant: no goroutines leaked (retry timers, workers, waiters).
	faultpoint.Reset()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("seed %d: goroutines leaked: baseline %d, now %d\n%s",
				seed, baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}
