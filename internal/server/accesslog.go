package server

// Structured access logging: one slog line per HTTP request with the
// fields an operator greps a production incident by — method, path,
// status, response bytes, duration, and the request's correlation id,
// plus the cache/dedup outcome when the handler set one. The handler
// format (text or JSON) is the caller's choice via Config.AccessLog
// (cmd/neuroselect-serve's -log-format flag).
//
// Under flood the log samples itself: the first LogSampleAfter requests
// of each wall-clock second log normally, and beyond that only every
// LogSampleEvery-th line is written, flagged sampled=true — a request
// storm cannot turn the logger into the bottleneck or the disk filler.

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// accessLogger wraps an slog.Logger with per-second flood sampling.
type accessLogger struct {
	log   *slog.Logger
	limit int64
	every int64
	now   func() time.Time // injectable for tests

	sec atomic.Int64 // unix second of the current window
	n   atomic.Int64 // requests seen this window
}

// newAccessLogger returns nil when log is nil (logging off).
func newAccessLogger(log *slog.Logger, limit, every int) *accessLogger {
	if log == nil {
		return nil
	}
	if limit <= 0 {
		limit = 200
	}
	if every <= 0 {
		every = 100
	}
	return &accessLogger{log: log, limit: int64(limit), every: int64(every), now: time.Now}
}

// admit decides whether this request's line is written and whether it
// must carry the sampled flag. Approximate under concurrency — a window
// roll can momentarily over- or under-count by a few requests — which is
// fine for a sampling heuristic that only has to bound log volume.
func (l *accessLogger) admit() (ok, sampled bool) {
	sec := l.now().Unix()
	if old := l.sec.Load(); old != sec {
		if l.sec.CompareAndSwap(old, sec) {
			l.n.Store(0)
		}
	}
	n := l.n.Add(1)
	if n <= l.limit {
		return true, false
	}
	if l.every == 1 {
		return true, true
	}
	return (n-l.limit)%l.every == 1, true
}

// logRecorder counts response bytes and captures the status code for the
// access line. Unwrap exposes the underlying writer so SSE handlers can
// still reach Flusher through http.ResponseController.
type logRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *logRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *logRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *logRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// logAccess wraps the mux with the access log; a nil logger is a
// zero-cost pass-through.
func (s *Server) logAccess(next http.Handler) http.Handler {
	if s.alog == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &logRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		ok, sampled := s.alog.admit()
		if !ok {
			return
		}
		// The response header map is shared with the handler, so the
		// request id (set by WithRequestID) and the cache/dedup verdicts
		// are readable here after the fact.
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.code),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
			slog.String("request_id", w.Header().Get("X-Request-ID")),
		}
		if v := w.Header().Get("X-Cache"); v != "" {
			attrs = append(attrs, slog.String("cache", v))
		}
		if v := w.Header().Get("X-Dedup"); v != "" {
			attrs = append(attrs, slog.String("dedup", v))
		}
		if v := w.Header().Get("X-Leader-Request-ID"); v != "" {
			attrs = append(attrs, slog.String("leader_request_id", v))
		}
		if sampled {
			attrs = append(attrs, slog.Bool("sampled", true))
		}
		s.alog.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}
