package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
)

// Handler returns the service mux:
//
//	POST   /v1/solve               synchronous solve (blocks until the result)
//	POST   /v1/jobs                asynchronous solve (returns a job id)
//	GET    /v1/jobs/{id}           poll an async job
//	GET    /v1/jobs/{id}/events    live trace-event stream (SSE; see events.go)
//	POST   /v1/sessions            create a warm incremental session
//	POST   /v1/sessions/{id}/solve incremental step on a session
//	GET    /v1/sessions/{id}       session info
//	DELETE /v1/sessions/{id}       close a session (parks the warm solver)
//	GET    /healthz                liveness (503 while draining)
//
// Every request flows through the correlation-id middleware (X-Request-ID
// generated or echoed) and, when Config.AccessLog is set, the structured
// access log. Mount it on an http.Server; metrics exposition lives on the
// registry's own listener (obs.Serve), keeping the data plane and the
// telemetry plane on separate ports.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("poll", s.handlePoll))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", s.handleJobEvents))
	mux.HandleFunc("POST /v1/sessions", s.instrument("session-create", s.handleSessionCreate))
	mux.HandleFunc("POST /v1/sessions/{id}/solve", s.instrument("session-solve", s.handleSessionSolve))
	mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("session-info", s.handleSessionInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("session-delete", s.handleSessionDelete))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	var h http.Handler = s.logAccess(mux)
	if s.cfg.BackendName != "" {
		// Backend mode: every response names the replica that produced it,
		// so clients behind a coordinator can observe routing stickiness
		// and operators can attribute a response to a process.
		name := s.cfg.BackendName
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Backend", name)
			inner.ServeHTTP(w, r)
		})
	}
	return WithRequestID(h)
}

// statusRecorder captures the response code for the request counters.
// Unwrap lets http.ResponseController reach the real writer's Flusher,
// which the SSE endpoint depends on.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with the per-endpoint latency histogram and
// request counter.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.m.reqSec(endpoint).Observe(time.Since(start).Seconds())
		s.m.requests(endpoint, strconv.Itoa(rec.code)).Inc()
	}
}

// httpError is a handler-layer failure carrying its status code.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// writeJSON emits a marshaled 200 response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// parseJob builds a job from one upload: body decode (raw or gzip, size-
// capped), DIMACS parse, and query parameters (?timeout=, ?policy=,
// ?trace=). It does not admit the job — admission is the caller's move so
// the cache can short-circuit first.
func (s *Server) parseJob(w http.ResponseWriter, r *http.Request) (*job, *httpError) {
	body, herr := s.readBody(w, r)
	if herr != nil {
		return nil, herr
	}
	f, err := cnf.ParseDIMACS(bytes.NewReader(body))
	if err != nil {
		return nil, badRequest("parse DIMACS: %v", err)
	}
	if len(f.Clauses) == 0 && f.NumVars == 0 {
		return nil, badRequest("empty formula: body contained no DIMACS clauses")
	}
	j := newJob(f)

	q := r.URL.Query()
	j.timeout = s.cfg.MaxTimeout
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, badRequest("bad timeout %q: want a positive Go duration like 5s or 500ms", v)
		}
		if d < j.timeout {
			j.timeout = d
		}
	}
	switch v := q.Get("policy"); v {
	case "", "auto":
		// The selector (or the default policy) decides.
	default:
		pol, err := deletion.ByName(v)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		j.policy = pol
	}
	switch v := q.Get("trace"); v {
	case "", "0", "false":
	case "1", "true":
		j.trace = true
	default:
		return nil, badRequest("bad trace %q: want 1 or 0", v)
	}
	if v := q.Get("portfolio"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxPortfolioWorkers {
			return nil, badRequest("bad portfolio %q: want a worker count in 1..%d", v, maxPortfolioWorkers)
		}
		if j.policy != nil {
			return nil, badRequest("?policy= cannot be combined with ?portfolio= (workers carry their own policies)")
		}
		j.portfolio = n
	}
	switch v := q.Get("deterministic"); v {
	case "", "0", "false":
	case "1", "true":
		if j.portfolio == 0 {
			return nil, badRequest("?deterministic= requires ?portfolio=")
		}
		j.deterministic = true
	default:
		return nil, badRequest("bad deterministic %q: want 1 or 0", v)
	}
	// Trace payloads are per-request, so traced solves bypass the cache
	// entirely: no lookup, no fill. The key carries the policy variant:
	// a request that pins ?policy= must not be served a result computed
	// under a different policy (the stats and policy fields would lie).
	if s.cfg.CacheSize > 0 && !j.trace {
		variant := "auto"
		if j.policy != nil {
			variant = j.policy.Name()
		}
		// Portfolio solves cache under their own variant: the response
		// schema (portfolio block) and, in free-running mode, the answer's
		// provenance differ per worker count and mode.
		if j.portfolio > 0 {
			variant = "portfolio" + strconv.Itoa(j.portfolio)
			if j.deterministic {
				variant += "-det"
			}
		}
		j.key = variant + ":" + CanonicalHash(f)
	}
	return j, nil
}

// maxPortfolioWorkers caps ?portfolio=: a request cannot demand more
// worker goroutines than a small multiple of the machine's cores.
const maxPortfolioWorkers = 16

// readBody returns the decompressed upload, enforcing Config.MaxBodyBytes
// on both the wire bytes and the decompressed size (a gzip bomb cannot
// expand past the cap).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *httpError) {
	max := s.cfg.MaxBodyBytes
	var src io.Reader = http.MaxBytesReader(w, r.Body, max)
	switch enc := strings.ToLower(r.Header.Get("Content-Encoding")); enc {
	case "", "identity":
	case "gzip":
		gz, err := gzip.NewReader(src)
		if err != nil {
			return nil, badRequest("bad gzip body: %v", err)
		}
		defer gz.Close()
		src = io.LimitReader(gz, max+1)
	default:
		return nil, &httpError{code: http.StatusUnsupportedMediaType,
			msg: fmt.Sprintf("unsupported Content-Encoding %q: want gzip or identity", enc)}
	}
	body, err := io.ReadAll(src)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", max)}
		}
		return nil, badRequest("read body: %v", err)
	}
	if int64(len(body)) > max {
		return nil, &httpError{code: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("decompressed body exceeds %d bytes", max)}
	}
	return body, nil
}

// refuseIfDraining sheds new work during graceful shutdown. Retry-After
// comes from the same live backlog estimate the 429 shed path uses — a
// draining server with a deep queue should not invite clients back in one
// second.
func (s *Server) refuseIfDraining(w http.ResponseWriter) bool {
	if !s.Draining() {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusServiceUnavailable, "server is draining")
	return true
}

// handleSolve is POST /v1/solve: parse, consult the cache, join or lead
// the singleflight for the instance, admit onto the worker pool, block
// for the result. The X-Cache header says whether the body came from the
// cache ("hit") or a fresh solve ("miss"); traced requests report
// "bypass". A request that shared an identical in-flight solve also
// carries X-Dedup: shared.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	j, herr := s.parseJob(w, r)
	if herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}
	j.reqID = RequestIDFrom(r.Context())
	if j.key != "" {
		if e, ok := s.cacheGet(j.key); ok {
			s.m.cacheEv("hit").Inc()
			s.m.solves(e.policy, "cached").Inc()
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(e.body)
			return
		}
		s.m.cacheEv("miss").Inc()
	}
	if j.key != "" {
		// Keyed solves run under the server's lifetime, not the request's:
		// the result may be shared with concurrent identical requests, and
		// one departing client must not cancel work other waiters ride on.
		j.ctx = s.baseCtx
		if s.joinFlight(j) != nil {
			s.m.dedup("solve").Inc()
		} else if !s.enqueue(j) {
			s.abortFlight(j, http.StatusTooManyRequests, "queue full: retry later")
			s.shedResponse(w)
			return
		}
	} else {
		j.ctx = r.Context()
		if !s.enqueue(j) {
			s.shedResponse(w)
			return
		}
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone. An unkeyed job's worker sees the canceled context
		// and discards it; a keyed job runs on (other waiters may share
		// it). Either way nothing useful can be written here.
		return
	}
	_, body, errCode, errMsg := j.snapshot()
	if errCode != 0 {
		writeError(w, errCode, errMsg)
		return
	}
	if j.shared {
		w.Header().Set("X-Dedup", "shared")
		if lr := j.leaderReqID(); lr != "" {
			w.Header().Set("X-Leader-Request-ID", lr)
		}
	}
	if j.trace {
		w.Header().Set("X-Cache", "bypass")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// shedResponse writes the 429 for a full admission queue. Retry-After is
// derived from the live backlog and the smoothed solve time, jittered so
// shed clients do not all come back at once.
func (s *Server) shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("queue full (depth %d): retry later", cap(s.queue)))
}

// handleSubmit is POST /v1/jobs: parse, consult the cache, journal,
// join or lead the singleflight, admit, return a job id immediately. A
// cache hit completes the job before the response is written, so the
// first poll already carries the result; a submit identical to an
// in-flight solve attaches to it (X-Dedup: shared) and completes when
// the leader does.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	j, herr := s.parseJob(w, r)
	if herr != nil {
		writeError(w, herr.code, herr.msg)
		return
	}
	j.reqID = RequestIDFrom(r.Context())
	// Every async job gets its event stream before it becomes findable:
	// a subscriber may connect the moment the id is out.
	s.initJobStream(j)
	if j.key != "" {
		if e, ok := s.cacheGet(j.key); ok {
			s.m.cacheEv("hit").Inc()
			s.m.solves(e.policy, "cached").Inc()
			j.cached = true
			s.jobs.Add(j)
			j.completeFromCache(e.body)
			s.jobs.NoteDone(j)
			writeJSON(w, http.StatusOK, j.view())
			return
		}
		s.m.cacheEv("miss").Inc()
	}
	// Async solves outlive the submit request: they run under the server's
	// base context (canceled only by Close), bounded by the job timeout.
	j.ctx = s.baseCtx
	id := s.jobs.Add(j)
	// Journal before the 202: once the client holds an id, a crash must
	// not lose the job.
	s.journalSubmit(j)
	if j.key != "" {
		if s.joinFlight(j) != nil {
			s.m.dedup("jobs").Inc()
			w.Header().Set("X-Dedup", "shared")
			writeJSON(w, http.StatusAccepted, jobView{ID: id, Status: JobQueued, Shared: true, ReqID: j.reqID})
			return
		}
	}
	if !s.enqueue(j) {
		s.abortFlight(j, http.StatusTooManyRequests, "queue full: retry later")
		s.journalDone(j, "shed")
		// Terminate the stream before the id is forgotten so a subscriber
		// that raced in sees a clean end, not a silent hang.
		j.fail(http.StatusTooManyRequests, "queue full: retry later")
		j.finish()
		s.jobs.Remove(id)
		s.shedResponse(w)
		return
	}
	writeJSON(w, http.StatusAccepted, jobView{ID: id, Status: JobQueued, ReqID: j.reqID})
}

// handlePoll is GET /v1/jobs/{id}. The body is j.view(): state, outcome,
// correlation ids, and — while the solve runs — the live progress object
// fed by the solver's conflict-window rollups.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleHealth is GET /healthz: 200 "ok" while serving, 503 "draining"
// during graceful shutdown so load balancers stop routing here. The
// second line reports the inference circuit-breaker state
// (breaker=closed|half-open|open) — an open breaker means the service is
// up but degraded to the default policy.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		fmt.Fprintf(w, "breaker=%s\n", s.brk.State())
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "breaker=%s\n", s.brk.State())
}
