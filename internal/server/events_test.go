package server

// Edge-case coverage for the SSE event stream (events.go): subscribing
// before the job starts, mid-solve, and after completion; Last-Event-ID
// resume and ring-eviction gaps; slow-reader drop accounting; drain
// behavior; and the request-correlation plumbing the stream rides on.
// Everything here must pass under -race — the stream is the one endpoint
// where a handler goroutine and the solver share a live channel.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"neuroselect/internal/obs"
)

// sseFrame is one parsed `id:`/`event:`/`data:` SSE frame.
type sseFrame struct {
	ID    string
	Event string
	Data  string
}

// readSSE consumes a stream to EOF, splitting frames from comment lines.
func readSSE(t *testing.T, r io.Reader) (frames []sseFrame, comments []string) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseFrame{}) {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, ":"):
			comments = append(comments, line)
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	return frames, comments
}

// getEvents opens the job's event stream, asserting the SSE content type.
func getEvents(t *testing.T, base, id, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	return resp
}

// A subscriber connecting after completion replays the whole ring and
// ends with a done event whose data is the poll body, byte-identical.
func TestEventsPostCompletionReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, id, JobDone)

	presp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	pollRaw, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	resp := getEvents(t, ts.URL, id, "")
	defer resp.Body.Close()
	frames, comments := readSSE(t, resp.Body)
	if len(comments) != 0 {
		t.Errorf("unexpected comments on full replay: %q", comments)
	}
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want at least solve_start, solve_end, done", len(frames))
	}
	if frames[0].Event != obs.EventSolveStart {
		t.Errorf("first event = %q, want %s", frames[0].Event, obs.EventSolveStart)
	}
	if got := frames[len(frames)-2].Event; got != obs.EventSolveEnd {
		t.Errorf("last trace event = %q, want %s", got, obs.EventSolveEnd)
	}
	last := frames[len(frames)-1]
	if last.Event != "done" {
		t.Fatalf("final event = %q, want done", last.Event)
	}
	// Stream ids are the resume cursor: strictly increasing from 1.
	for i, fr := range frames {
		n, err := strconv.ParseInt(fr.ID, 10, 64)
		if err != nil || n != int64(i+1) {
			t.Fatalf("frame %d id = %q, want %d", i, fr.ID, i+1)
		}
	}
	// The done data is the poll body (writeJSON appends only a newline).
	if last.Data+"\n" != string(pollRaw) {
		t.Errorf("done event data diverges from poll body:\n done: %s\n poll: %s", last.Data, pollRaw)
	}
	// Every streamed trace event carries the submitting request's id.
	var ev obs.Event
	if err := json.Unmarshal([]byte(frames[0].Data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.ReqID == "" {
		t.Error("streamed event missing req_id correlation")
	}
}

// A subscriber on a still-queued job holds an idle stream: heartbeat
// comments keep it alive until the worker frees up, then live events and
// the final done arrive on the same connection.
func TestEventsPreStartHeartbeatThenDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SSEHeartbeat: 30 * time.Millisecond})

	// Occupy the single worker long enough for heartbeats to tick.
	blocker := post(t, ts.URL+"/v1/jobs?timeout=500ms", phpDIMACS(t, 10))
	var bv jobView
	if err := json.NewDecoder(blocker.Body).Decode(&bv); err != nil {
		t.Fatal(err)
	}
	blocker.Body.Close()

	id := submitJob(t, ts.URL, satCNF)
	resp := getEvents(t, ts.URL, id, "")
	defer resp.Body.Close()
	frames, comments := readSSE(t, resp.Body)

	var beats int
	for _, c := range comments {
		if strings.HasPrefix(c, ": hb") {
			beats++
		}
	}
	if beats == 0 {
		t.Error("no heartbeat comments while the job sat in the queue")
	}
	if len(frames) == 0 || frames[len(frames)-1].Event != "done" {
		t.Fatalf("stream did not end with done: %+v", frames)
	}
}

// A mid-solve subscriber tails live window events; the poll body carries
// the progress rollup while the solve runs; the subscriber gauge tracks
// the open stream.
func TestEventsMidSolveProgressAndGauge(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp0 := post(t, ts.URL+"/v1/jobs?timeout=10s", phpDIMACS(t, 9))
	var v0 jobView
	if err := json.NewDecoder(resp0.Body).Decode(&v0); err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	id := v0.ID

	resp := getEvents(t, ts.URL, id, "")
	defer resp.Body.Close()

	waitGauge := func(want float64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s.m.streamSubs.Value() == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("event_stream_subscribers = %v, want %v", s.m.streamSubs.Value(), want)
	}
	waitGauge(1)

	// Tail the live stream until the first conflict-window rollup.
	sc := bufio.NewScanner(resp.Body)
	sawWindow := false
	for sc.Scan() {
		if sc.Text() == "event: "+obs.EventWindow {
			sawWindow = true
			break
		}
	}
	if !sawWindow {
		t.Fatalf("stream ended without a window event (scan err: %v)", sc.Err())
	}

	// The job is mid-solve: its poll body must carry live progress.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := pollJob(t, ts.URL, id)
		if v.Status == JobDone {
			t.Fatal("job finished before a progress rollup was observed in a poll")
		}
		if v.Progress != nil {
			if v.Progress.Conflicts <= 0 || v.Progress.TimeNS <= 0 {
				t.Fatalf("implausible progress: %+v", v.Progress)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress object in any poll of a running job")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp.Body.Close() // disconnect: the gauge must fall back to zero
	waitGauge(0)
}

// Last-Event-ID resumes exactly past the acknowledged event, and a resume
// from the done event's id replays nothing but the done summary.
func TestEventsLastEventIDResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, id, JobDone)

	resp := getEvents(t, ts.URL, id, "")
	full, _ := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(full) < 3 {
		t.Fatalf("need at least 3 frames to exercise resume, got %d", len(full))
	}

	// Resume after the first event: the replay starts at id 2.
	resp = getEvents(t, ts.URL, id, full[0].ID)
	resumed, comments := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(comments) != 0 {
		t.Errorf("in-ring resume produced comments: %q", comments)
	}
	if len(resumed) != len(full)-1 {
		t.Fatalf("resume after id %s returned %d frames, want %d", full[0].ID, len(resumed), len(full)-1)
	}
	if resumed[0].ID != full[1].ID || resumed[0].Event != full[1].Event {
		t.Errorf("resume started at %+v, want %+v", resumed[0], full[1])
	}

	// Resume from the done id: only the done summary again.
	doneID := full[len(full)-1].ID
	resp = getEvents(t, ts.URL, id, doneID)
	tail, comments := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(comments) != 0 {
		t.Errorf("done-id resume produced comments: %q", comments)
	}
	if len(tail) != 1 || tail[0].Event != "done" || tail[0].ID != doneID {
		t.Errorf("resume from done id = %+v, want a single done frame with id %s", tail, doneID)
	}
}

// When the replay ring has evicted events a subscriber asked for, the gap
// is acknowledged with a comment instead of silently skipped.
func TestEventsRingEvictionGap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, EventRing: 1})
	id := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, id, JobDone)

	resp := getEvents(t, ts.URL, id, "")
	frames, comments := readSSE(t, resp.Body)
	resp.Body.Close()

	gapped := false
	for _, c := range comments {
		if strings.HasPrefix(c, ": gap:") {
			gapped = true
		}
	}
	if !gapped {
		t.Errorf("ring of 1 evicted events but no gap comment was sent: %q", comments)
	}
	// Only the newest trace event survives the ring, then done.
	if len(frames) != 2 || frames[0].Event != obs.EventSolveEnd || frames[1].Event != "done" {
		t.Errorf("frames after eviction = %+v, want [solve_end done]", frames)
	}
}

// Unknown jobs and jobs evicted from the done history 404 on the stream
// exactly like they do on the poll.
func TestEventsNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobHistory: 1})

	resp, err := http.Get(ts.URL + "/v1/jobs/nonexistent/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events = %d, want 404", resp.StatusCode)
	}

	idA := submitJob(t, ts.URL, satCNF)
	waitJobState(t, ts.URL, idA, JobDone)
	idB := submitJob(t, ts.URL, unsatCNF)
	waitJobState(t, ts.URL, idB, JobDone) // history of 1: B evicts A

	resp, err = http.Get(ts.URL + "/v1/jobs/" + idA + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job events = %d, want 404", resp.StatusCode)
	}
}

// A subscriber that never reads has events dropped from its queue and
// counted — on the subscription, and on the service's dropped-outcome
// counter via the broadcaster's OnDrop hook. The solve itself is the
// neutrality test's concern (solver/trace_test.go); here we pin the
// accounting.
func TestEventsSlowReaderDropAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp0 := post(t, ts.URL+"/v1/jobs?timeout=2s", phpDIMACS(t, 9))
	var v0 jobView
	if err := json.NewDecoder(resp0.Body).Decode(&v0); err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()

	j, ok := s.jobs.Get(v0.ID)
	if !ok {
		t.Fatal("submitted job vanished")
	}
	sub, _ := j.bcast.Subscribe(0, 1) // queue of one, never read
	defer sub.Cancel()

	waitJobState(t, ts.URL, v0.ID, JobDone)
	if sub.Dropped() == 0 {
		t.Error("stalled subscriber recorded no drops across a 2s php-9 solve")
	}
	if got := s.m.streamEv("dropped").Value(); got < sub.Dropped() {
		t.Errorf("event_stream_events_total{outcome=dropped} = %d, want >= %d", got, sub.Dropped())
	}
}

// Draining does not cut live streams: the in-flight job finishes, its
// stream terminates with the done summary, and new subscriptions on
// existing jobs are still served while submissions are refused.
func TestEventsDrainDuringStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp0 := post(t, ts.URL+"/v1/jobs?timeout=500ms", phpDIMACS(t, 10))
	var v0 jobView
	if err := json.NewDecoder(resp0.Body).Decode(&v0); err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	waitJobState(t, ts.URL, v0.ID, JobRunning)

	resp := getEvents(t, ts.URL, v0.ID, "")
	defer resp.Body.Close()

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// A second subscriber connecting during the drain is admitted.
	resp2 := getEvents(t, ts.URL, v0.ID, "")
	frames2, _ := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(frames2) == 0 || frames2[len(frames2)-1].Event != "done" {
		t.Errorf("drain-time subscriber stream = %+v, want termination with done", frames2)
	}

	frames, _ := readSSE(t, resp.Body)
	if len(frames) == 0 || frames[len(frames)-1].Event != "done" {
		t.Errorf("stream over a drain = %+v, want termination with done", frames)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// The Retry-After on a drain-refused request is the live backlog estimate,
// not a constant: a parseable integer in the documented [1, 120] range.
func TestDrainRetryAfterEstimate(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp0 := post(t, ts.URL+"/v1/jobs?timeout=300ms", phpDIMACS(t, 10))
	resp0.Body.Close()

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts.URL+"/v1/solve", satCNF)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	sec, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer: %v", ra, err)
	}
	if sec < 1 || sec > 120 {
		t.Errorf("Retry-After = %d, want within [1, 120]", sec)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// X-Request-ID: well-formed client ids are echoed and stamped into the
// job view; missing or malformed ones are replaced by a generated id.
func TestRequestIDCorrelation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	do := func(reqID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := do("client-abc-123").Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Errorf("well-formed id echoed as %q", got)
	}
	if got := do("").Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", got)
	}
	if got := do("has space").Header.Get("X-Request-ID"); got == "has space" || len(got) != 16 {
		t.Errorf("malformed id accepted or not regenerated: %q", got)
	}
	if got := do(strings.Repeat("x", 129)).Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("oversized id accepted or not regenerated: %q", got)
	}

	// The submitting request's id lands in the job view at submit and poll.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(satCNF))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "submit-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.ReqID != "submit-req-7" {
		t.Errorf("submit view req_id = %q, want submit-req-7", v.ReqID)
	}
	if pv := waitJobState(t, ts.URL, v.ID, JobDone); pv.ReqID != "submit-req-7" {
		t.Errorf("poll view req_id = %q, want submit-req-7", pv.ReqID)
	}
}

// The correlation id is durable: the journal's submit record carries it,
// so a crash-replayed job stays attributable to the original request.
func TestJournalCarriesRequestID(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, JournalDir: dir})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(satCNF))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "journal-corr-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJobState(t, ts.URL, v.ID, JobDone)

	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.ID == v.ID && rec.ReqID == "journal-corr-1" {
			found = true
		}
	}
	if !found {
		t.Errorf("no journal record for job %s carrying req_id journal-corr-1:\n%s", v.ID, raw)
	}
}
