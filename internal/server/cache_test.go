package server

import (
	"strings"
	"testing"

	"neuroselect/internal/cnf"
)

func parse(t *testing.T, s string) *cnf.Formula {
	t.Helper()
	f, err := cnf.ParseDIMACS(strings.NewReader(s))
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestCanonicalHashInvariantToOrderAndSyntax(t *testing.T) {
	base := parse(t, "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n")
	variants := map[string]string{
		"clause order":      "p cnf 3 3\n-2 -3 0\n1 2 0\n-1 3 0\n",
		"literal order":     "p cnf 3 3\n2 1 0\n3 -1 0\n-3 -2 0\n",
		"comments + layout": "c hello\np cnf 3 3\n1 2 0 -1 3 0\nc mid\n-2 -3 0\n",
		"both reorderings":  "p cnf 3 3\n-3 -2 0\n3 -1 0\n2 1 0\n",
	}
	want := CanonicalHash(base)
	for name, text := range variants {
		if got := CanonicalHash(parse(t, text)); got != want {
			t.Errorf("%s: hash %s != base %s — canonicalization leaked surface syntax", name, got, want)
		}
	}
}

func TestCanonicalHashDistinguishesFormulas(t *testing.T) {
	a := CanonicalHash(parse(t, "p cnf 2 2\n1 2 0\n-1 0\n"))
	b := CanonicalHash(parse(t, "p cnf 2 2\n1 2 0\n-2 0\n"))
	c := CanonicalHash(parse(t, "p cnf 3 2\n1 2 0\n-1 0\n")) // extra unused var
	if a == b {
		t.Error("different clause sets hashed equal")
	}
	if a == c {
		t.Error("different variable counts hashed equal")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	if ev := c.Put("a", []byte("A"), "default"); ev != 0 {
		t.Fatalf("unexpected eviction on first put: %d", ev)
	}
	c.Put("b", []byte("B"), "default")
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	if ev := c.Put("c", []byte("C"), "default"); ev != 1 {
		t.Fatalf("want 1 eviction, got %d", ev)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least-recently-used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("a", []byte("A"), "default")
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
}
