package server

// Singleflight dedup: N concurrent identical solves (same canonical
// formula hash and policy variant — the same key the result cache uses)
// consume one worker. The first keyed job to arrive is registered as the
// flight leader and admitted normally; every identical job that arrives
// while the leader is in flight attaches to it as a follower and never
// touches the queue. When the leader completes, its outcome fans out to
// all followers byte-for-byte (shared responses carry `X-Dedup: shared`),
// and the flight is deregistered before the fan-out so a later identical
// submit starts fresh (and usually hits the result cache the leader just
// filled). Sync and async jobs share one flight table, so a sync solve can
// ride an async job's solve and vice versa; traced jobs have no key and
// never share. Keyed sync solves run under the server's lifetime rather
// than the request's, so one departing client cannot cancel a solve other
// waiters share.

// flightTable indexes in-flight keyed jobs by their dedup key. The mutex
// also guards every job's followers slice — attach and fan-out serialize
// on it, so a follower is either seen by the leader's completion or
// attached to a fresh flight, never lost.
type flightTable struct {
	m map[string]*job
}

// joinFlight attaches j to an existing flight for its key, returning the
// leader, or registers j as the new leader and returns nil. Callers must
// only admit j to the queue when nil is returned.
func (s *Server) joinFlight(j *job) *job {
	s.flMu.Lock()
	defer s.flMu.Unlock()
	if l, ok := s.fl.m[j.key]; ok {
		j.shared = true
		l.followers = append(l.followers, j)
		return l
	}
	s.fl.m[j.key] = j
	return nil
}

// leaveFlight deregisters a leader and detaches its followers (snapshot
// taken under the table lock — later arrivals start a new flight).
func (s *Server) leaveFlight(j *job) []*job {
	if j.key == "" {
		return nil
	}
	s.flMu.Lock()
	defer s.flMu.Unlock()
	if s.fl.m[j.key] == j {
		delete(s.fl.m, j.key)
	}
	followers := j.followers
	j.followers = nil
	return followers
}

// abortFlight fails a registered leader's followers (the leader itself is
// answered by its handler): the admission path shed the leader, so every
// follower that raced in shares the shed outcome.
func (s *Server) abortFlight(j *job, code int, msg string) {
	for _, fw := range s.leaveFlight(j) {
		fw.fail(code, msg)
		fw.finish()
		if fw.id != "" {
			s.jobs.NoteDone(fw)
			s.journalDone(fw, "shed")
		}
	}
}
