// Package metrics provides the classification and runtime statistics the
// paper reports — precision/recall/F1/accuracy (Table 2) and solved/median/
// average summaries (Table 3) — plus the per-worker counters that
// instrument the parallel experiment sweep engine.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Confusion is a binary confusion matrix for label 1 = positive.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add records one (predicted, actual) pair.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of recorded pairs.
func (c Confusion) Total() int { return c.TP + c.FP + c.FN + c.TN }

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when
// undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// String renders the four Table 2 metrics.
func (c Confusion) String() string {
	return fmt.Sprintf("precision=%.2f%% recall=%.2f%% F1=%.2f%% accuracy=%.2f%%",
		100*c.Precision(), 100*c.Recall(), 100*c.F1(), 100*c.Accuracy())
}

// Summary holds the Table 3 runtime statistics of one solver configuration
// over a benchmark set. Values carries the per-instance measure (the
// reproduction's deterministic analogue of seconds) for solved instances
// only.
type Summary struct {
	Solved  int
	Timeout int
	// Failed counts instances whose solve failed outright (contained
	// panic, malformed input) rather than timing out; like timeouts they
	// are excluded from the median and average.
	Failed  int
	Median  float64
	Average float64
}

// Total returns the number of instances the summary accounts for,
// including timeouts and failures.
func (s Summary) Total() int { return s.Solved + s.Timeout + s.Failed }

// Summarize computes solved/median/average over per-instance measures;
// entries with solved=false count as timeouts and are excluded from the
// median and average, matching the paper's Table 3 convention.
func Summarize(values []float64, solved []bool) Summary {
	if len(values) != len(solved) {
		panic("metrics: values/solved length mismatch")
	}
	var s Summary
	var ok []float64
	for i, v := range values {
		if solved[i] {
			ok = append(ok, v)
			s.Solved++
		} else {
			s.Timeout++
		}
	}
	if len(ok) == 0 {
		return s
	}
	sort.Float64s(ok)
	s.Median = median(ok)
	total := 0.0
	for _, v := range ok {
		total += v
	}
	s.Average = total / float64(len(ok))
	return s
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Quantiles returns the q-quantiles (e.g. 0.25, 0.5, 0.75) of the values,
// used for the Figure 7(b) box plots.
func Quantiles(values []float64, qs ...float64) []float64 {
	if len(values) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}

// RelativeImprovement returns (base−new)/base, or 0 when base is 0.
func RelativeImprovement(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - new) / base
}

// WorkerCounters instruments one worker goroutine of a parallel sweep. All
// fields are atomics so the worker updates them lock-free while monitors
// read them concurrently.
type WorkerCounters struct {
	// Started counts cells the worker pulled off the queue.
	Started atomic.Int64
	// Finished counts cells that completed without error.
	Finished atomic.Int64
	// Failed counts cells that returned an error (including contained
	// panics and per-cell deadline expiries).
	Failed atomic.Int64
	// BusyNS accumulates wall-clock nanoseconds spent executing cells —
	// the per-worker CPU-time proxy (cells are CPU-bound solves).
	BusyNS atomic.Int64
}

// SweepCounters instruments one parallel sweep: per-worker cell counters, a
// queue-depth gauge, and the sweep's total wall time. All methods —
// including Reset — are safe for concurrent use: the worker slice is
// swapped atomically, so a telemetry scrape (see obs.RegisterSweepCounters)
// can read the counters while the next sweep is starting.
type SweepCounters struct {
	workers atomic.Pointer[[]*WorkerCounters]
	// queueDepth is the number of cells not yet pulled by any worker.
	queueDepth atomic.Int64
	wallNS     atomic.Int64
	cells      atomic.Int64
}

// Reset prepares the counters for a sweep of cells cells across workers
// workers, discarding all previous values.
func (c *SweepCounters) Reset(workers, cells int) {
	ws := make([]*WorkerCounters, workers)
	for i := range ws {
		ws[i] = &WorkerCounters{}
	}
	c.workers.Store(&ws)
	c.queueDepth.Store(int64(cells))
	c.cells.Store(int64(cells))
	c.wallNS.Store(0)
}

// load returns the current worker slice (nil before the first Reset).
func (c *SweepCounters) load() []*WorkerCounters {
	if p := c.workers.Load(); p != nil {
		return *p
	}
	return nil
}

// NumWorkers returns the worker count of the last Reset.
func (c *SweepCounters) NumWorkers() int { return len(c.load()) }

// Cells returns the cell count of the last Reset.
func (c *SweepCounters) Cells() int64 { return c.cells.Load() }

// Worker returns worker i's counters (i < NumWorkers).
func (c *SweepCounters) Worker(i int) *WorkerCounters { return c.load()[i] }

// CellPulled records that a worker dequeued a cell, decrementing the
// queue-depth gauge.
func (c *SweepCounters) CellPulled() { c.queueDepth.Add(-1) }

// QueueDepth returns the number of cells not yet pulled by any worker.
func (c *SweepCounters) QueueDepth() int64 { return c.queueDepth.Load() }

// SetWall records the sweep's total wall-clock time.
func (c *SweepCounters) SetWall(d time.Duration) { c.wallNS.Store(int64(d)) }

// Wall returns the sweep's total wall-clock time.
func (c *SweepCounters) Wall() time.Duration { return time.Duration(c.wallNS.Load()) }

// Started returns the total cells started across workers.
func (c *SweepCounters) Started() int64 {
	return c.sum(func(w *WorkerCounters) int64 { return w.Started.Load() })
}

// Finished returns the total cells finished without error.
func (c *SweepCounters) Finished() int64 {
	return c.sum(func(w *WorkerCounters) int64 { return w.Finished.Load() })
}

// Failed returns the total cells that returned an error.
func (c *SweepCounters) Failed() int64 {
	return c.sum(func(w *WorkerCounters) int64 { return w.Failed.Load() })
}

// Busy returns the summed per-worker execution time — the sweep's CPU-time
// proxy, to compare against Wall for parallel efficiency.
func (c *SweepCounters) Busy() time.Duration {
	return time.Duration(c.sum(func(w *WorkerCounters) int64 { return w.BusyNS.Load() }))
}

func (c *SweepCounters) sum(get func(*WorkerCounters) int64) int64 {
	var total int64
	for _, w := range c.load() {
		total += get(w)
	}
	return total
}

// String renders a one-line sweep summary.
func (c *SweepCounters) String() string {
	return fmt.Sprintf("cells=%d started=%d finished=%d failed=%d queue=%d workers=%d wall=%v busy=%v",
		c.Cells(), c.Started(), c.Finished(), c.Failed(), c.QueueDepth(),
		c.NumWorkers(), c.Wall().Round(time.Millisecond), c.Busy().Round(time.Millisecond))
}
