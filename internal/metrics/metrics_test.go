package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	c.Add(true, true)   // TP
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 || c.Total() != 5 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", c.F1())
	}
	if math.Abs(c.Accuracy()-3.0/5) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion must be all-zero")
	}
	c.Add(false, false)
	if c.Accuracy() != 1 || c.F1() != 0 {
		t.Fatal("all-negative case")
	}
}

func TestF1Property(t *testing.T) {
	// F1 is always between min and max of precision/recall and within
	// [0, 1].
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		p, r := c.Precision(), c.Recall()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	vals := []float64{10, 30, 20, 999}
	solved := []bool{true, true, true, false}
	s := Summarize(vals, solved)
	if s.Solved != 3 || s.Timeout != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 20 || s.Average != 20 {
		t.Fatalf("median=%v average=%v", s.Median, s.Average)
	}
	// Even count → midpoint.
	s2 := Summarize([]float64{1, 2, 3, 4}, []bool{true, true, true, true})
	if s2.Median != 2.5 {
		t.Fatalf("even median = %v", s2.Median)
	}
	// Nothing solved.
	s3 := Summarize([]float64{5}, []bool{false})
	if s3.Solved != 0 || s3.Median != 0 || s3.Average != 0 {
		t.Fatalf("unsolved summary = %+v", s3)
	}
}

func TestSummaryFailedAccounting(t *testing.T) {
	s := Summarize([]float64{10, 20}, []bool{true, false})
	if s.Total() != 2 {
		t.Fatalf("total = %d, want 2", s.Total())
	}
	// Failures are recorded by the caller on top of the solve outcomes
	// (e.g. the experiments runner's isolated failure rows) and count
	// toward the total without perturbing the medians.
	s.Failed = 3
	if s.Total() != 5 {
		t.Fatalf("total with failures = %d, want 5", s.Total())
	}
	if s.Median != 10 || s.Average != 10 {
		t.Fatalf("failures must not perturb medians: %+v", s)
	}
}

func TestSummarizeMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize([]float64{1}, []bool{true, false})
}

func TestQuantiles(t *testing.T) {
	q := Quantiles([]float64{4, 1, 3, 2}, 0, 0.5, 1)
	if q[0] != 1 || q[2] != 4 {
		t.Fatalf("min/max = %v", q)
	}
	if q[1] != 2.5 {
		t.Fatalf("median = %v", q[1])
	}
	empty := Quantiles(nil, 0, 1)
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatal("empty quantiles")
	}
	single := Quantiles([]float64{7}, 0, 0.3, 1)
	for _, v := range single {
		if v != 7 {
			t.Fatalf("single-element quantiles = %v", single)
		}
	}
}

func TestQuantilesMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw
		for i := range vals {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				vals[i] = 0
			}
		}
		q := Quantiles(vals, 0, 0.25, 0.5, 0.75, 1)
		for i := 1; i < len(q); i++ {
			if q[i] < q[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeImprovement(t *testing.T) {
	if RelativeImprovement(100, 94.2) < 0.057 || RelativeImprovement(100, 94.2) > 0.059 {
		t.Fatal("5.8% improvement")
	}
	if RelativeImprovement(0, 5) != 0 {
		t.Fatal("zero base")
	}
	if RelativeImprovement(100, 110) >= 0 {
		t.Fatal("regression must be negative")
	}
}

func TestSweepCounters(t *testing.T) {
	var c SweepCounters
	c.Reset(2, 5)
	if c.NumWorkers() != 2 || c.Cells() != 5 {
		t.Fatalf("Reset: workers=%d cells=%d", c.NumWorkers(), c.Cells())
	}
	if c.QueueDepth() != 5 {
		t.Fatalf("QueueDepth after Reset = %d, want 5", c.QueueDepth())
	}
	for i := 0; i < 5; i++ {
		c.CellPulled()
		w := c.Worker(i % 2)
		w.Started.Add(1)
		w.BusyNS.Add(1e6)
		if i == 4 {
			w.Failed.Add(1)
		} else {
			w.Finished.Add(1)
		}
	}
	c.SetWall(3 * time.Millisecond)
	if c.Started() != 5 || c.Finished() != 4 || c.Failed() != 1 {
		t.Fatalf("started=%d finished=%d failed=%d", c.Started(), c.Finished(), c.Failed())
	}
	if c.QueueDepth() != 0 {
		t.Fatalf("QueueDepth after drain = %d", c.QueueDepth())
	}
	if c.Busy() != 5*time.Millisecond {
		t.Fatalf("Busy = %v, want 5ms", c.Busy())
	}
	if c.Wall() != 3*time.Millisecond {
		t.Fatalf("Wall = %v, want 3ms", c.Wall())
	}
	want := "cells=5 started=5 finished=4 failed=1 queue=0 workers=2 wall=3ms busy=5ms"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Reset discards everything.
	c.Reset(1, 2)
	if c.Started() != 0 || c.Wall() != 0 || c.QueueDepth() != 2 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestSweepCountersConcurrent(t *testing.T) {
	var c SweepCounters
	const n = 400
	c.Reset(4, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := c.Worker(w)
			for i := 0; i < n/4; i++ {
				c.CellPulled()
				wc.Started.Add(1)
				wc.Finished.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if c.Started() != n || c.Finished() != n || c.QueueDepth() != 0 {
		t.Fatalf("concurrent totals: %s", c.String())
	}
}
