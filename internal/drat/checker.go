package drat

import (
	"fmt"
	"strings"

	"neuroselect/internal/cnf"
)

// Checker validates DRUP-style proofs: every added clause must follow from
// the active clause set by reverse unit propagation (RUP), the discipline
// under which CDCL learned clauses (including minimized ones) are always
// derivable. The proof is accepted when the empty clause is derived, or
// when unit propagation on the final active set conflicts.
type Checker struct {
	numVars int
	clauses []checkerClause
	// occ[l] lists clause ids containing literal l (internal index).
	occ [][]int
	// byKey locates active clauses by normalized key for deletions.
	byKey map[string][]int
}

type checkerClause struct {
	lits   []cnf.Lit
	active bool
}

// litIndex maps a DIMACS literal to an occurrence-list slot.
func litIndex(l cnf.Lit) int {
	i := 2 * (l.Var() - 1)
	if l < 0 {
		i++
	}
	return i
}

// key returns a canonical string for a clause (sorted, deduplicated).
func key(lits []cnf.Lit) string {
	c := append(cnf.Clause(nil), lits...)
	c, _ = c.Normalize()
	var sb strings.Builder
	for _, l := range c {
		fmt.Fprintf(&sb, "%d ", l)
	}
	return sb.String()
}

// NewChecker initializes the checker with the original formula.
func NewChecker(f *cnf.Formula) *Checker {
	c := &Checker{
		numVars: f.NumVars,
		occ:     make([][]int, 2*f.NumVars),
		byKey:   map[string][]int{},
	}
	for _, cl := range f.Clauses {
		c.addClause(cl)
	}
	return c
}

func (c *Checker) growTo(v int) {
	if v <= c.numVars {
		return
	}
	c.numVars = v
	for len(c.occ) < 2*v {
		c.occ = append(c.occ, nil)
	}
}

func (c *Checker) addClause(lits []cnf.Lit) int {
	id := len(c.clauses)
	stored := append([]cnf.Lit(nil), lits...)
	c.clauses = append(c.clauses, checkerClause{lits: stored, active: true})
	for _, l := range stored {
		c.growTo(l.Var())
		c.occ[litIndex(l)] = append(c.occ[litIndex(l)], id)
	}
	k := key(stored)
	c.byKey[k] = append(c.byKey[k], id)
	return id
}

// deleteClause deactivates one active clause matching the literals; a
// deletion with no live match is tolerated (as drat-trim does) but
// reported via the returned flag.
func (c *Checker) deleteClause(lits []cnf.Lit) bool {
	k := key(lits)
	ids := c.byKey[k]
	for i, id := range ids {
		if c.clauses[id].active {
			c.clauses[id].active = false
			c.byKey[k] = append(ids[:i], ids[i+1:]...)
			return true
		}
	}
	return false
}

// rup reports whether assuming the negation of lits and unit-propagating
// over the active clause set yields a conflict.
func (c *Checker) rup(lits []cnf.Lit) bool {
	assign := make([]int8, c.numVars+1) // 0 unset, +1 true, −1 false
	var queue []cnf.Lit
	enqueue := func(l cnf.Lit) bool { // returns false on conflict
		v := l.Var()
		want := int8(1)
		if l < 0 {
			want = -1
		}
		switch assign[v] {
		case 0:
			assign[v] = want
			queue = append(queue, l)
			return true
		case want:
			return true
		default:
			return false
		}
	}
	// Assume the negated clause.
	for _, l := range lits {
		if !enqueue(-l) {
			return true // ¬C is itself contradictory ⇒ C is a tautology-like RUP
		}
	}
	value := func(l cnf.Lit) int8 {
		a := assign[l.Var()]
		if l < 0 {
			return -a
		}
		return a
	}
	// Initial pass: clauses that are already unit (or falsified) under the
	// assumed assignment — in particular pre-existing unit clauses, which
	// the falsification-driven loop below would never visit.
	for id := range c.clauses {
		cl := &c.clauses[id]
		if !cl.active {
			continue
		}
		var unit cnf.Lit
		unset := 0
		satisfied := false
		for _, l := range cl.lits {
			switch value(l) {
			case 1:
				satisfied = true
			case 0:
				unset++
				unit = l
			}
			if satisfied || unset > 1 {
				break
			}
		}
		if satisfied || unset > 1 {
			continue
		}
		if unset == 0 {
			return true
		}
		if !enqueue(unit) {
			return true
		}
	}
	// Saturate unit propagation. Clauses are revisited when one of their
	// literals is falsified.
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		// p just became true, so clauses containing ¬p lost a literal.
		for _, id := range c.occ[litIndex(-p)] {
			cl := &c.clauses[id]
			if !cl.active {
				continue
			}
			var unit cnf.Lit
			unset := 0
			satisfied := false
			for _, l := range cl.lits {
				switch value(l) {
				case 1:
					satisfied = true
				case 0:
					unset++
					unit = l
				}
				if satisfied || unset > 1 {
					break
				}
			}
			if satisfied || unset > 1 {
				continue
			}
			if unset == 0 {
				return true // conflict: clause fully falsified
			}
			if !enqueue(unit) {
				return true
			}
		}
	}
	return false
}

// Check replays the proof against the formula. It returns nil when the
// proof establishes unsatisfiability, and a descriptive error otherwise.
func Check(f *cnf.Formula, steps []Step) error {
	c := NewChecker(f)
	for i, st := range steps {
		if st.Delete {
			c.deleteClause(st.Lits)
			continue
		}
		if !c.rup(st.Lits) {
			return fmt.Errorf("drat: step %d: clause %v is not RUP", i, st.Lits)
		}
		if len(st.Lits) == 0 {
			return nil // empty clause derived
		}
		c.addClause(st.Lits)
	}
	// No explicit empty clause: accept iff UP on the final set conflicts.
	if c.rup(nil) {
		return nil
	}
	return fmt.Errorf("drat: proof ends without deriving a conflict")
}

// CheckProof parses and checks a textual proof in one call.
func CheckProof(f *cnf.Formula, proof string) error {
	steps, err := Parse(strings.NewReader(proof))
	if err != nil {
		return err
	}
	return Check(f, steps)
}

// Stats summarizes a parsed proof for reporting.
type Stats struct {
	Additions int
	Deletions int
	MaxLen    int
}

// Summarize computes proof statistics.
func Summarize(steps []Step) Stats {
	var s Stats
	for _, st := range steps {
		if st.Delete {
			s.Deletions++
		} else {
			s.Additions++
		}
		if len(st.Lits) > s.MaxLen {
			s.MaxLen = len(st.Lits)
		}
	}
	return s
}
