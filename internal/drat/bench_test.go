package drat

import (
	"strings"
	"testing"

	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

// BenchmarkEmitAndCheck measures producing and verifying a complete DRAT
// proof for php-5.
func BenchmarkEmitAndCheck(b *testing.B) {
	inst := gen.Pigeonhole(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		w := NewWriter(&sb)
		s, err := solver.New(inst.F, solver.Options{Proof: w})
		if err != nil {
			b.Fatal(err)
		}
		if s.Solve() != solver.Unsat {
			b.Fatal("php-5 must be UNSAT")
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		steps, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			b.Fatal(err)
		}
		if err := Check(inst.F, steps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRUPCheck isolates a single reverse-unit-propagation query on a
// medium clause set.
func BenchmarkRUPCheck(b *testing.B) {
	inst := gen.RandomKSAT(100, 426, 3, 1)
	c := NewChecker(inst.F)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.rup(nil)
	}
}
