// Package drat emits and checks DRAT unsatisfiability proofs (Wetzler et
// al., "DRAT-trim"). The solver logs every learned clause as an addition
// and every reduced clause as a deletion; the checker replays the proof
// against the original formula, verifying each added clause by reverse
// unit propagation (RUP) and accepting the proof when the empty clause is
// derived.
//
// The checker is deliberately independent of the solver — it maintains its
// own clause set and unit-propagation engine — so it serves as an external
// certificate validator for the solver's UNSAT answers in tests.
package drat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"neuroselect/internal/cnf"
)

// Writer streams proof lines in the textual DRAT format: an added clause is
// its literals terminated by 0; a deletion is prefixed with "d".
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w as a DRAT proof sink.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// AddClause logs a learned clause.
func (p *Writer) AddClause(lits []cnf.Lit) {
	if p.err != nil {
		return
	}
	p.writeClause("", lits)
}

// DeleteClause logs a clause deletion.
func (p *Writer) DeleteClause(lits []cnf.Lit) {
	if p.err != nil {
		return
	}
	p.writeClause("d ", lits)
}

func (p *Writer) writeClause(prefix string, lits []cnf.Lit) {
	var sb strings.Builder
	sb.WriteString(prefix)
	for _, l := range lits {
		sb.WriteString(strconv.Itoa(int(l)))
		sb.WriteByte(' ')
	}
	sb.WriteString("0\n")
	_, p.err = p.w.WriteString(sb.String())
}

// Flush completes the proof stream and reports any write error.
func (p *Writer) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// Step is one parsed proof line.
type Step struct {
	Delete bool
	Lits   []cnf.Lit
}

// Parse reads a textual DRAT proof.
func Parse(r io.Reader) ([]Step, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var steps []Step
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		st := Step{}
		if strings.HasPrefix(line, "d ") || line == "d" {
			st.Delete = true
			line = strings.TrimSpace(line[1:])
		}
		closed := false
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("drat: line %d: bad literal %q", lineNo, tok)
			}
			if n == 0 {
				closed = true
				break
			}
			st.Lits = append(st.Lits, cnf.Lit(n))
		}
		if !closed {
			return nil, fmt.Errorf("drat: line %d: missing terminating 0", lineNo)
		}
		steps = append(steps, st)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("drat: read: %w", err)
	}
	return steps, nil
}
