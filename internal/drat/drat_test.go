package drat

import (
	"strings"
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
	"neuroselect/internal/solver"
)

func TestWriterFormat(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.AddClause([]cnf.Lit{1, -2})
	w.DeleteClause([]cnf.Lit{3})
	w.AddClause(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "1 -2 0\nd 3 0\n0\n"
	if sb.String() != want {
		t.Fatalf("proof = %q, want %q", sb.String(), want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	steps, err := Parse(strings.NewReader("c comment\n1 -2 0\nd 3 0\n\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Delete || len(steps[0].Lits) != 2 {
		t.Fatalf("step 0: %+v", steps[0])
	}
	if !steps[1].Delete || steps[1].Lits[0] != 3 {
		t.Fatalf("step 1: %+v", steps[1])
	}
	if steps[2].Delete || len(steps[2].Lits) != 0 {
		t.Fatalf("step 2: %+v", steps[2])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"1 2\n", "1 x 0\n"} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestRUPManual(t *testing.T) {
	// F = (x1∨x2) ∧ (¬x1∨x2) — x2 is RUP; x1 is not.
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 2)
	c := NewChecker(f)
	if !c.rup([]cnf.Lit{2}) {
		t.Fatal("x2 should be RUP")
	}
	if c.rup([]cnf.Lit{1}) {
		t.Fatal("x1 should not be RUP")
	}
}

func TestCheckManualProof(t *testing.T) {
	// F = (x1∨x2) ∧ (x1∨¬x2) ∧ (¬x1∨x2) ∧ (¬x1∨¬x2): classic UNSAT.
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	f.MustAddClause(1, -2)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-1, -2)
	// Proof: derive x1 (RUP), then empty clause.
	if err := CheckProof(f, "1 0\n0\n"); err != nil {
		t.Fatal(err)
	}
	// A bogus proof step must be rejected.
	sat := cnf.New(2)
	sat.MustAddClause(1, 2)
	if err := CheckProof(sat, "1 0\n"); err == nil {
		t.Fatal("non-RUP step accepted")
	}
}

func TestCheckWithoutExplicitEmptyClause(t *testing.T) {
	// Contradictory units conflict by propagation alone: the empty proof
	// must be accepted.
	f := cnf.New(1)
	f.MustAddClause(1)
	f.MustAddClause(-1)
	if err := Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// But a satisfiable formula with an empty proof must be rejected.
	g := cnf.New(1)
	g.MustAddClause(1)
	if err := Check(g, nil); err == nil {
		t.Fatal("satisfiable formula certified")
	}
}

func TestDeletionRemovesSupport(t *testing.T) {
	// After deleting (¬x1∨x2), x2 is no longer RUP.
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 2)
	proof := "d -1 2 0\n2 0\n"
	if err := CheckProof(f, proof); err == nil {
		t.Fatal("deletion must remove propagation support")
	}
}

// TestSolverProofsVerify is the flagship integration test: the solver's
// DRAT stream for UNSAT instances must pass the independent checker, under
// both deletion policies.
func TestSolverProofsVerify(t *testing.T) {
	instances := []gen.Instance{
		gen.Pigeonhole(4),
		gen.Pigeonhole(5),
		gen.Tseitin(10, 3, false, 1),
		gen.ParityChain(14, 9, 4, false, 2),
		gen.RandomKSAT(40, 180, 3, 3), // oversaturated: very likely UNSAT
		gen.BMCCounter(5, 8, 20),
		gen.Miter(5, 25, false, 4),
	}
	for _, pol := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		for _, in := range instances {
			var sb strings.Builder
			w := NewWriter(&sb)
			opts := solver.Options{Policy: pol, ReduceFirst: 30, ReduceInc: 20, Proof: w}
			s, err := solver.New(in.F, opts)
			if err != nil {
				t.Fatal(err)
			}
			st := s.Solve()
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if st != solver.Unsat {
				continue // random instance may be SAT; skip
			}
			steps, err := Parse(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("%s/%s: parse: %v", in.Name, pol.Name(), err)
			}
			if err := Check(in.F, steps); err != nil {
				t.Fatalf("%s/%s: proof rejected: %v", in.Name, pol.Name(), err)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	steps := []Step{
		{Lits: []cnf.Lit{1, 2, 3}},
		{Delete: true, Lits: []cnf.Lit{1}},
		{Lits: nil},
	}
	s := Summarize(steps)
	if s.Additions != 2 || s.Deletions != 1 || s.MaxLen != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeleteClauseMatching(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	c := NewChecker(f)
	// Literal order must not matter.
	if !c.deleteClause([]cnf.Lit{2, 1}) {
		t.Fatal("permuted deletion should match")
	}
	if c.deleteClause([]cnf.Lit{1, 2}) {
		t.Fatal("second deletion has no live match")
	}
}

// TestInterruptedProofIsRejected: a budget-truncated run's proof must NOT
// certify unsatisfiability — the checker's final unit-propagation pass has
// no conflict to find.
func TestInterruptedProofIsRejected(t *testing.T) {
	inst := gen.Pigeonhole(8)
	var sb strings.Builder
	w := NewWriter(&sb)
	s, err := solver.New(inst.F, solver.Options{MaxConflicts: 50, Proof: w})
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != solver.Unknown {
		t.Skip("budget unexpectedly sufficient")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	steps, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(inst.F, steps); err == nil {
		t.Fatal("truncated proof must be rejected")
	}
}
