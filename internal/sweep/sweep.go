// Package sweep is the parallel execution substrate of the experiment
// harness: a bounded worker pool that shards an indexed cell matrix across
// goroutines and aggregates results through a single collector goroutine,
// so aggregate output is a pure function of the input order — byte-identical
// regardless of worker count or completion order.
//
// Guarantees:
//
//   - Determinism: Map returns results and errors indexed by cell, filled
//     by one collector goroutine; completion order never leaks.
//   - Isolation: a panicking cell is contained to its own error slot.
//   - Deadlines: each cell runs under its own context, derived from the
//     parent with Options.CellTimeout when set.
//   - Drain: parent-context cancellation stops feeding new cells, marks
//     unstarted cells with the context error, and Map returns only after
//     every in-flight cell has finished — no goroutine leaks.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"neuroselect/internal/metrics"
	"neuroselect/internal/obs"
)

// Options configures one Map run.
type Options struct {
	// Workers bounds the pool (<=0 → runtime.NumCPU(); capped at the cell
	// count).
	Workers int
	// CellTimeout, when positive, gives each cell its own deadline via a
	// derived context.
	CellTimeout time.Duration
	// Counters, when non-nil, is Reset and filled with per-worker
	// instrumentation for the run.
	Counters *metrics.SweepCounters
	// Registry, when non-nil, receives the per-cell latency histogram
	// neuroselect_sweep_cell_seconds and the running cell counters
	// neuroselect_sweep_cells_total{status}, accumulated across Map runs.
	// Live queue/worker gauges come from obs.RegisterSweepCounters over
	// the same Counters object.
	Registry *obs.Registry
}

// Map runs fn for cells 0..n-1 across a bounded worker pool and returns the
// per-cell results and errors in index order. A cell that panics fails with
// a contained error; cells never started because the parent context was
// canceled fail with the context error. Map returns only after all workers
// and the collector have drained.
func Map[T any](ctx context.Context, opts Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	c := opts.Counters
	if c != nil {
		c.Reset(workers, n)
	}
	var cellHist *obs.Histogram
	var cellsOK, cellsErr *obs.Counter
	if opts.Registry != nil {
		cellHist = opts.Registry.Histogram("neuroselect_sweep_cell_seconds",
			"Latency of one sweep cell (one solve of one instance under one policy).", nil, nil)
		cellsOK = opts.Registry.Counter("neuroselect_sweep_cells_total",
			"Sweep cells completed, by outcome.", obs.Labels{"status": "ok"})
		cellsErr = opts.Registry.Counter("neuroselect_sweep_cells_total",
			"Sweep cells completed, by outcome.", obs.Labels{"status": "error"})
	}
	start := time.Now()

	type cellResult struct {
		i   int
		v   T
		err error
	}
	jobs := make(chan int)
	results := make(chan cellResult)

	// Feeder: dispatches cell indices in order; on parent cancellation it
	// stops feeding and reports the remaining cells as canceled so the
	// collector still receives exactly n results. It joins the same
	// waitgroup as the workers because it, too, sends on results.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				var zero T
				for ; i < n; i++ {
					results <- cellResult{i: i, v: zero, err: ctx.Err()}
				}
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wc *metrics.WorkerCounters
			if c != nil {
				wc = c.Worker(w)
			}
			for i := range jobs {
				if c != nil {
					c.CellPulled()
				}
				if wc != nil {
					wc.Started.Add(1)
				}
				cellStart := time.Now()
				v, err := runCell(ctx, opts.CellTimeout, i, fn)
				elapsed := time.Since(cellStart)
				if wc != nil {
					wc.BusyNS.Add(int64(elapsed))
					if err != nil {
						wc.Failed.Add(1)
					} else {
						wc.Finished.Add(1)
					}
				}
				if cellHist != nil {
					cellHist.Observe(elapsed.Seconds())
					if err != nil {
						cellsErr.Inc()
					} else {
						cellsOK.Inc()
					}
				}
				results <- cellResult{i: i, v: v, err: err}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single collector goroutine: the only writer of out/errs, indexing by
	// cell so completion order cannot influence the aggregate.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			out[r.i] = r.v
			errs[r.i] = r.err
		}
	}()
	<-done
	if c != nil {
		c.SetWall(time.Since(start))
	}
	return out, errs
}

// runCell executes one cell under its own context with panic containment.
func runCell[T any](ctx context.Context, timeout time.Duration, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: cell %d panicked: %v", i, r)
		}
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return fn(ctx, i)
}

// FirstError returns the lowest-index non-nil error, so error propagation
// is as deterministic as the results themselves.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
