package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"neuroselect/internal/metrics"
)

// checkGoroutines fails the test if the goroutine count has not returned to
// its pre-run baseline, allowing a grace period for worker teardown.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestMapOrderIndependence(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 4, runtime.NumCPU(), n + 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			out, errs := Map(context.Background(), Options{Workers: workers}, n,
				func(ctx context.Context, i int) (int, error) {
					// Reverse-biased sleep so completion order differs from
					// dispatch order.
					time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
					return i * i, nil
				})
			for i := range out {
				if errs[i] != nil {
					t.Fatalf("cell %d: unexpected error %v", i, errs[i])
				}
				if out[i] != want[i] {
					t.Fatalf("cell %d: got %d, want %d", i, out[i], want[i])
				}
			}
		})
	}
}

func TestMapPanicIsolation(t *testing.T) {
	out, errs := Map(context.Background(), Options{Workers: 4}, 10,
		func(ctx context.Context, i int) (string, error) {
			if i == 3 {
				panic("boom")
			}
			return fmt.Sprintf("ok-%d", i), nil
		})
	for i := range out {
		if i == 3 {
			if errs[i] == nil || !strings.Contains(errs[i].Error(), "cell 3 panicked: boom") {
				t.Fatalf("cell 3: want contained panic error, got %v", errs[3])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("cell %d: unexpected error %v", i, errs[i])
		}
		if want := fmt.Sprintf("ok-%d", i); out[i] != want {
			t.Fatalf("cell %d: got %q, want %q", i, out[i], want)
		}
	}
}

func TestMapCancellationDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const n = 32
	var started atomic.Int64
	release := make(chan struct{})
	go func() {
		// Cancel once a few cells are in flight; release them afterwards.
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	out, errs := Map(ctx, Options{Workers: 2}, n,
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			<-release
			return i, nil
		})
	if len(out) != n || len(errs) != n {
		t.Fatalf("want %d results, got %d/%d", n, len(out), len(errs))
	}
	var canceled, completed int
	for i := range errs {
		switch {
		case errs[i] == nil:
			completed++
			if out[i] != i {
				t.Fatalf("cell %d: got %d", i, out[i])
			}
		case errors.Is(errs[i], context.Canceled):
			canceled++
		default:
			t.Fatalf("cell %d: unexpected error %v", i, errs[i])
		}
	}
	if canceled == 0 {
		t.Fatal("expected some cells marked canceled")
	}
	if completed == 0 {
		t.Fatal("expected the in-flight cells to complete")
	}
	checkGoroutines(t, before)
}

func TestMapCellTimeout(t *testing.T) {
	out, errs := Map(context.Background(), Options{Workers: 2, CellTimeout: 20 * time.Millisecond}, 4,
		func(ctx context.Context, i int) (int, error) {
			if i == 1 {
				<-ctx.Done() // a well-behaved cell observes its deadline
				return 0, ctx.Err()
			}
			return i, nil
		})
	if !errors.Is(errs[1], context.DeadlineExceeded) {
		t.Fatalf("cell 1: want deadline exceeded, got %v", errs[1])
	}
	for _, i := range []int{0, 2, 3} {
		if errs[i] != nil || out[i] != i {
			t.Fatalf("cell %d: got (%d, %v)", i, out[i], errs[i])
		}
	}
}

func TestMapCounters(t *testing.T) {
	var c metrics.SweepCounters
	const n = 20
	_, errs := Map(context.Background(), Options{Workers: 3, Counters: &c}, n,
		func(ctx context.Context, i int) (int, error) {
			if i%5 == 0 {
				return 0, errors.New("injected")
			}
			return i, nil
		})
	if c.NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d, want 3", c.NumWorkers())
	}
	if c.Cells() != n {
		t.Fatalf("Cells = %d, want %d", c.Cells(), n)
	}
	if got := c.Started(); got != n {
		t.Fatalf("Started = %d, want %d", got, n)
	}
	wantFailed := int64(0)
	for i := range errs {
		if errs[i] != nil {
			wantFailed++
		}
	}
	if got := c.Failed(); got != wantFailed {
		t.Fatalf("Failed = %d, want %d", got, wantFailed)
	}
	if got := c.Finished(); got != n-wantFailed {
		t.Fatalf("Finished = %d, want %d", got, n-wantFailed)
	}
	if c.QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", c.QueueDepth())
	}
	if c.Wall() <= 0 {
		t.Fatal("Wall not recorded")
	}
	if !strings.Contains(c.String(), "workers=3") {
		t.Fatalf("String() = %q, want workers=3", c.String())
	}
}

func TestMapZeroCells(t *testing.T) {
	out, errs := Map(context.Background(), Options{}, 0,
		func(ctx context.Context, i int) (int, error) { return i, nil })
	if len(out) != 0 || len(errs) != 0 {
		t.Fatalf("want empty results, got %d/%d", len(out), len(errs))
	}
}

func TestFirstError(t *testing.T) {
	e2, e4 := errors.New("two"), errors.New("four")
	if got := FirstError([]error{nil, nil, e2, nil, e4}); got != e2 {
		t.Fatalf("FirstError = %v, want %v", got, e2)
	}
	if got := FirstError([]error{nil, nil}); got != nil {
		t.Fatalf("FirstError = %v, want nil", got)
	}
}
