package solver

import (
	"testing"

	"neuroselect/internal/gen"
	"neuroselect/internal/obs"
)

// recordingTracer captures every event by value.
type recordingTracer struct{ events []obs.Event }

func (r *recordingTracer) Trace(ev *obs.Event) { r.events = append(r.events, *ev) }

// TestTracerSearchNeutral solves the golden suite with and without a tracer
// installed and demands identical status, stats, and per-variable
// propagation counts: tracing must observe the search, never steer it.
func TestTracerSearchNeutral(t *testing.T) {
	for _, in := range goldenInstances() {
		plain, err := New(in.F, goldenOptions(nil))
		if err != nil {
			t.Fatal(err)
		}
		tracedOpts := goldenOptions(nil)
		tracedOpts.Tracer = &recordingTracer{}
		tracedOpts.TraceWindow = 64
		traced, err := New(in.F, tracedOpts)
		if err != nil {
			t.Fatal(err)
		}
		stPlain, stTraced := plain.Solve(), traced.Solve()
		if stPlain != stTraced {
			t.Fatalf("%s: status %v (plain) vs %v (traced)", in.Name, stPlain, stTraced)
		}
		if plain.Stats() != traced.Stats() {
			t.Fatalf("%s: stats diverge under tracing\nplain:  %+v\ntraced: %+v",
				in.Name, plain.Stats(), traced.Stats())
		}
		pf, tf := plain.PropagationFrequencies(), traced.PropagationFrequencies()
		for v := range pf {
			if pf[v] != tf[v] {
				t.Fatalf("%s: propFreq[%d] = %d (plain) vs %d (traced)", in.Name, v, pf[v], tf[v])
			}
		}
	}
}

// TestBroadcastStalledSubscriberNeutral is the streaming half of the
// neutrality contract: a broadcaster with a deliberately stalled
// subscriber (tiny queue, never read — the worst SSE client) fans out the
// trace stream while the golden suite solves. The search trajectory must
// be bit-identical to an untraced solve, the stall must surface as
// counted drops, and the ring must still hold the tail of the stream.
func TestBroadcastStalledSubscriberNeutral(t *testing.T) {
	var totalDropped int64
	for _, in := range goldenInstances() {
		plain, err := New(in.F, goldenOptions(nil))
		if err != nil {
			t.Fatal(err)
		}
		b := obs.NewBroadcaster(obs.BroadcastOpts{Ring: 32})
		stalled, _ := b.Subscribe(0, 1) // 1-slot queue, never read
		streamedOpts := goldenOptions(nil)
		streamedOpts.Tracer = b
		streamedOpts.TraceWindow = 64
		streamedOpts.Progress = &ProgressSink{}
		streamed, err := New(in.F, streamedOpts)
		if err != nil {
			t.Fatal(err)
		}
		stPlain, stStreamed := plain.Solve(), streamed.Solve()
		b.Close()
		if stPlain != stStreamed {
			t.Fatalf("%s: status %v (plain) vs %v (streamed)", in.Name, stPlain, stStreamed)
		}
		if plain.Stats() != streamed.Stats() {
			t.Fatalf("%s: stats diverge under streaming\nplain:    %+v\nstreamed: %+v",
				in.Name, plain.Stats(), streamed.Stats())
		}
		pf, sf := plain.PropagationFrequencies(), streamed.PropagationFrequencies()
		for v := range pf {
			if pf[v] != sf[v] {
				t.Fatalf("%s: propFreq[%d] = %d (plain) vs %d (streamed)", in.Name, v, pf[v], sf[v])
			}
		}
		// A stalled queue of one slot keeps exactly one event; every later
		// event must be dropped and accounted, never waited on.
		if emitted := b.LastSeq(); emitted > 1 {
			want := emitted - 1
			if got := stalled.Dropped(); got != want {
				t.Fatalf("%s: stalled subscriber dropped %d of %d events, want %d",
					in.Name, got, emitted, want)
			}
		}
		totalDropped += stalled.Dropped()
	}
	if totalDropped == 0 {
		t.Fatal("no events were dropped across the suite; the stall never engaged and the test is vacuous")
	}
}

// TestProgressSink checks the poll-side half of live telemetry: a solve
// with only a ProgressSink installed (no tracer) publishes window rollups
// that track the final stats, and a sink-only solve stays bit-identical
// to an untraced one.
func TestProgressSink(t *testing.T) {
	var sink ProgressSink
	if _, ok := sink.Load(); ok {
		t.Fatal("fresh sink reported a snapshot")
	}
	inst := gen.Pigeonhole(7)
	plain, err := New(inst.F, goldenOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	opts := goldenOptions(nil)
	opts.Progress = &sink
	opts.TraceWindow = 128
	s, err := New(inst.F, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php-7 must be UNSAT, got %v", st)
	}
	if plain.Solve() != Unsat {
		t.Fatal("plain php-7 must be UNSAT")
	}
	if plain.Stats() != s.Stats() {
		t.Fatalf("stats diverge with a progress sink\nplain: %+v\nsink:  %+v",
			plain.Stats(), s.Stats())
	}
	p, ok := sink.Load()
	if !ok {
		t.Fatal("no progress snapshot published for a ~7k-conflict solve")
	}
	st := s.Stats()
	if p.Conflicts > st.Conflicts || p.Conflicts < opts.TraceWindow {
		t.Errorf("snapshot conflicts %d outside [%d, %d]", p.Conflicts, opts.TraceWindow, st.Conflicts)
	}
	if p.Propagations > st.Propagations || p.Propagations <= 0 {
		t.Errorf("snapshot propagations %d outside (0, %d]", p.Propagations, st.Propagations)
	}
	if p.WindowConflicts < opts.TraceWindow {
		t.Errorf("window closed after %d conflicts, stride is %d", p.WindowConflicts, opts.TraceWindow)
	}
	if p.MeanGlue <= 0 {
		t.Errorf("mean glue %v, want > 0", p.MeanGlue)
	}
	if p.PropsPerSec <= 0 {
		t.Errorf("props/sec %v, want > 0", p.PropsPerSec)
	}
	if p.TimeNS <= 0 {
		t.Errorf("t_ns %d, want > 0", p.TimeNS)
	}
}

// TestTraceEventStream checks the event stream against the final stats on a
// reduction-heavy instance: bracketing solve_start/solve_end, one restart
// event per recorded restart, one reduce event per reduction, cumulative
// counters that never decrease, and window rollups at the configured stride.
func TestTraceEventStream(t *testing.T) {
	inst := gen.Pigeonhole(7)
	rec := &recordingTracer{}
	opts := goldenOptions(nil)
	opts.Tracer = rec
	opts.TraceWindow = 128
	s, err := New(inst.F, opts)
	if err != nil {
		t.Fatal(err)
	}
	status := s.Solve()
	st := s.Stats()
	if status != Unsat {
		t.Fatalf("php-7 must be UNSAT, got %v", status)
	}
	if len(rec.events) < 3 {
		t.Fatalf("only %d events for a ~7k-conflict solve", len(rec.events))
	}

	first, last := rec.events[0], rec.events[len(rec.events)-1]
	if first.Type != obs.EventSolveStart {
		t.Errorf("first event %q, want solve_start", first.Type)
	}
	if first.Vars != inst.F.NumVars || first.Clauses != len(inst.F.Clauses) {
		t.Errorf("solve_start shape (%d vars, %d clauses), instance has (%d, %d)",
			first.Vars, first.Clauses, inst.F.NumVars, len(inst.F.Clauses))
	}
	if first.Policy == "" {
		t.Error("solve_start missing policy name")
	}
	if last.Type != obs.EventSolveEnd {
		t.Errorf("last event %q, want solve_end", last.Type)
	}
	if last.Status != status.String() {
		t.Errorf("solve_end status %q, want %q", last.Status, status)
	}

	counts := map[string]int64{}
	prev := obs.Event{}
	for i, ev := range rec.events {
		counts[ev.Type]++
		if ev.Type == obs.EventSolveStart {
			continue
		}
		// Cumulative counters are monotone along the stream.
		if ev.Conflicts < prev.Conflicts || ev.Propagations < prev.Propagations ||
			ev.Restarts < prev.Restarts || ev.Reductions < prev.Reductions ||
			ev.Learned < prev.Learned || ev.Deleted < prev.Deleted ||
			ev.GCCompactions < prev.GCCompactions || ev.TimeNS < prev.TimeNS {
			t.Fatalf("event %d (%s) regresses a cumulative counter: %+v after %+v",
				i, ev.Type, ev, prev)
		}
		prev = ev
		if ev.Type == obs.EventWindow && ev.WindowConflicts < opts.TraceWindow {
			t.Errorf("window closed after %d conflicts, stride is %d",
				ev.WindowConflicts, opts.TraceWindow)
		}
	}
	if counts[obs.EventRestart] != st.Restarts {
		t.Errorf("%d restart events, stats.Restarts = %d", counts[obs.EventRestart], st.Restarts)
	}
	if counts[obs.EventReduce] != st.Reductions {
		t.Errorf("%d reduce events, stats.Reductions = %d", counts[obs.EventReduce], st.Reductions)
	}
	if counts[obs.EventWindow] == 0 {
		t.Error("no window rollups emitted")
	}
	if max := st.Conflicts/opts.TraceWindow + 1; counts[obs.EventWindow] > max {
		t.Errorf("%d window events for %d conflicts at stride %d (max %d)",
			counts[obs.EventWindow], st.Conflicts, opts.TraceWindow, max)
	}

	// The final event carries the final cumulative counters.
	if last.Conflicts != st.Conflicts || last.Decisions != st.Decisions ||
		last.Propagations != st.Propagations || last.Restarts != st.Restarts ||
		last.Reductions != st.Reductions || last.Learned != st.Learned ||
		last.Deleted != st.Deleted || last.GCCompactions != st.GCCompactions ||
		last.GCLitsReclaimed != st.GCLitsReclaimed || last.GCBytesMoved != st.GCBytesMoved {
		t.Errorf("solve_end counters %+v do not match final stats %+v", last, st)
	}
}

// TestArenaGCStats checks the arena-GC satellite counters: php-7 under the
// golden reduce schedule runs ~22 reductions, and every reduction that
// deletes at least one clause ends in a compaction pass reclaiming the
// deleted clauses' literal words.
func TestArenaGCStats(t *testing.T) {
	s, err := New(gen.Pigeonhole(7).F, goldenOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Fatal("php-7 must be UNSAT")
	}
	st := s.Stats()
	if st.Reductions == 0 {
		t.Fatal("schedule produced no reductions; test is vacuous")
	}
	if st.GCCompactions == 0 || st.GCCompactions > st.Reductions {
		t.Errorf("GCCompactions = %d, want in [1, Reductions=%d] (at most one pass per reduction)",
			st.GCCompactions, st.Reductions)
	}
	if st.GCLitsReclaimed == 0 {
		t.Error("GCLitsReclaimed = 0 despite deletions")
	}
	if st.Deleted > 0 && st.GCLitsReclaimed < st.Deleted {
		t.Errorf("GCLitsReclaimed = %d < %d deleted clauses (each has ≥1 literal)",
			st.GCLitsReclaimed, st.Deleted)
	}
	if st.GCBytesMoved == 0 {
		t.Error("GCBytesMoved = 0: compaction slid no surviving clause")
	}

	// An instance solved before the first reduction leaves all GC counters
	// zero — the counters record compactions, not solves.
	easy, err := New(gen.NQueens(8).F, goldenOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	easy.Solve()
	if est := easy.Stats(); est.Reductions == 0 &&
		(est.GCCompactions != 0 || est.GCLitsReclaimed != 0 || est.GCBytesMoved != 0) {
		t.Errorf("GC counters nonzero without a reduction: %+v", est)
	}
}
