package solver

import (
	"context"
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
)

// incrementalOpts keeps the oracle runs bounded and exercises the
// reduction path even on small instances, matching the one-shot oracle
// suite's configuration.
func incrementalOpts() Options {
	return Options{MaxConflicts: 1 << 20, ReduceFirst: 10, ReduceInc: 5}
}

// coldStatus solves the accumulated formula from scratch — the reference
// every incremental answer must match.
func coldStatus(t *testing.T, f *cnf.Formula) Status {
	t.Helper()
	res := mustSolve(t, f, incrementalOpts())
	if res.Status == Unknown {
		t.Fatalf("cold reference solve exhausted its budget: %+v", res.Stats)
	}
	return res.Status
}

// checkIncrementalStep solves s under assumptions and demands agreement
// with a cold solve of the accumulated user-visible formula (plus the
// assumptions as unit clauses): same status, and on SAT a model that
// satisfies the accumulated formula and every assumption. On UNSAT with a
// core, the core must be refuting and a subset of the assumptions.
func checkIncrementalStep(t *testing.T, s *Solver, acc *cnf.Formula, assumptions []cnf.Lit, label string) {
	t.Helper()
	st, core := s.SolveUnderAssumptions(assumptions)
	ref := acc
	if len(assumptions) > 0 {
		ref = acc.Clone()
		for _, a := range assumptions {
			ref.MustAddClause(a)
		}
	}
	want := coldStatus(t, ref)
	if st != want {
		t.Fatalf("%s: incremental %v, cold solve of accumulated formula %v", label, st, want)
	}
	if st == Sat {
		m := s.Model()
		if !m.Satisfies(acc) {
			t.Fatalf("%s: incremental model does not satisfy the accumulated formula", label)
		}
		for _, a := range assumptions {
			if a.Var() <= len(m)-1 && !m.Value(a) {
				t.Fatalf("%s: model violates assumption %v", label, a)
			}
		}
		return
	}
	// Core checks: subset of the assumptions, and refuting on its own.
	valid := map[cnf.Lit]bool{}
	for _, a := range assumptions {
		valid[a] = true
	}
	for _, l := range core {
		if !valid[l] {
			t.Fatalf("%s: core literal %v not among assumptions %v", label, l, assumptions)
		}
	}
	if len(core) > 0 {
		coreRef := acc.Clone()
		for _, l := range core {
			coreRef.MustAddClause(l)
		}
		if coldStatus(t, coreRef) != Unsat {
			t.Fatalf("%s: reported core %v is not refuting", label, core)
		}
	} else if coldStatus(t, acc) != Unsat {
		t.Fatalf("%s: empty core but the accumulated formula alone is satisfiable", label)
	}
}

// TestIncrementalDifferentialOracle drives every generator family through
// an AddClause/Push/Pop/assume sequence and cross-checks each incremental
// answer against a cold solve of the accumulated formula (the ISSUE's
// differential oracle). The schedule per instance:
//
//  1. construct the solver on the first third of the clauses, solve;
//  2. AddClause the second third, solve, then solve again under an
//     assumption on variable 1 (both polarities);
//  3. Push a frame, add the final third under it, solve — answers must
//     reflect the full formula;
//  4. Pop the frame, solve — the final third must be retracted;
//  5. AddClause the final third permanently, solve — answers and the
//     generator expectation must hold for the full formula.
func TestIncrementalDifferentialOracle(t *testing.T) {
	for _, inst := range oracleInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			n := inst.F.NumVars
			cls := inst.F.Clauses
			third := len(cls) / 3
			base := cnf.New(n)
			for _, c := range cls[:third] {
				base.MustAddClause(c...)
			}
			s, err := New(base, incrementalOpts())
			if err != nil {
				t.Fatal(err)
			}
			acc := base.Clone()
			checkIncrementalStep(t, s, acc, nil, "base-third")

			for _, c := range cls[third : 2*third] {
				if err := s.AddClause(c); err != nil {
					t.Fatal(err)
				}
				acc.MustAddClause(c...)
			}
			checkIncrementalStep(t, s, acc, nil, "two-thirds")
			checkIncrementalStep(t, s, acc, []cnf.Lit{1}, "two-thirds+assume(1)")
			checkIncrementalStep(t, s, acc, []cnf.Lit{-1}, "two-thirds+assume(-1)")

			s.Push()
			framed := acc.Clone()
			for _, c := range cls[2*third:] {
				if err := s.AddClause(c); err != nil {
					t.Fatal(err)
				}
				framed.MustAddClause(c...)
			}
			checkIncrementalStep(t, s, framed, nil, "framed-full")
			checkIncrementalStep(t, s, framed, []cnf.Lit{2}, "framed-full+assume(2)")

			if !s.Pop() {
				t.Fatal("Pop with an open frame returned false")
			}
			checkIncrementalStep(t, s, acc, nil, "popped-back")

			for _, c := range cls[2*third:] {
				if err := s.AddClause(c); err != nil {
					t.Fatal(err)
				}
				acc.MustAddClause(c...)
			}
			checkIncrementalStep(t, s, acc, nil, "full")
			st, _ := s.SolveUnderAssumptions(nil)
			switch inst.Expected {
			case gen.ExpectSat:
				if st != Sat {
					t.Fatalf("full formula: %v, generator promises SAT", st)
				}
			case gen.ExpectUnsat:
				if st != Unsat {
					t.Fatalf("full formula: %v, generator promises UNSAT", st)
				}
			}
		})
	}
}

// TestIncrementalNewVariables grows the variable set through AddClause,
// both on the identity mapping (no Push yet) and after frames forced the
// explicit user↔internal maps, where user and activation variables
// interleave internally.
func TestIncrementalNewVariables(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	s, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Identity growth: variable 3 is new.
	if err := s.AddClause(cnf.Clause{-1, 3}); err != nil {
		t.Fatal(err)
	}
	if s.UserVars() != 3 {
		t.Fatalf("UserVars = %d, want 3", s.UserVars())
	}
	st, _ := s.SolveUnderAssumptions([]cnf.Lit{1})
	if st != Sat {
		t.Fatalf("assume 1: %v", st)
	}
	if !s.Model().Value(3) {
		t.Fatalf("model %v must set x3 (implied by x1)", s.Model())
	}

	// Mapped growth: Push allocates an activation variable internally,
	// then user variable 4 must still get a dense user number.
	s.Push()
	if err := s.AddClause(cnf.Clause{-3, 4}); err != nil {
		t.Fatal(err)
	}
	if s.UserVars() != 4 {
		t.Fatalf("UserVars = %d, want 4", s.UserVars())
	}
	st, _ = s.SolveUnderAssumptions([]cnf.Lit{1})
	if st != Sat {
		t.Fatalf("assume 1 under frame: %v", st)
	}
	m := s.Model()
	if !m.Value(4) {
		t.Fatalf("model %v must set x4 (implied chain under the frame)", m)
	}
	if len(m) != 5 { // index 0 unused + 4 user variables, no activation vars
		t.Fatalf("model has %d entries, want 5 (activation variables must stay hidden)", len(m))
	}

	// The frame clause dies with Pop: ¬3 no longer implies anything about 4.
	s.Pop()
	st, _ = s.SolveUnderAssumptions([]cnf.Lit{1, -4})
	if st != Sat {
		t.Fatalf("after Pop, {1, -4} must be satisfiable: %v", st)
	}
}

// TestIncrementalPushPopSemantics pins frame behavior: clauses under a
// frame constrain solves until the matching Pop, nested frames retract in
// LIFO order, and a frame-only contradiction yields UNSAT with an empty
// user core, turning back to SAT after Pop.
func TestIncrementalPushPopSemantics(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	s, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pop() {
		t.Fatal("Pop without a frame must report false")
	}

	s.Push()
	if err := s.AddClause(cnf.Clause{-1}); err != nil {
		t.Fatal(err)
	}
	s.Push()
	if err := s.AddClause(cnf.Clause{-2}); err != nil {
		t.Fatal(err)
	}
	if s.FrameDepth() != 2 {
		t.Fatalf("FrameDepth = %d, want 2", s.FrameDepth())
	}
	// (1∨2) ∧ ¬1 ∧ ¬2 is a frame-only contradiction: UNSAT, empty core.
	st, core := s.SolveUnderAssumptions(nil)
	if st != Unsat {
		t.Fatalf("both frames active: %v, want UNSAT", st)
	}
	if len(core) != 0 {
		t.Fatalf("frame-only UNSAT must have an empty user core, got %v", core)
	}

	s.Pop() // retract ¬2
	st, _ = s.SolveUnderAssumptions(nil)
	if st != Sat {
		t.Fatalf("after inner Pop: %v, want SAT", st)
	}
	if s.Model().Value(1) {
		t.Fatalf("model %v must clear x1 (outer frame's ¬1 still active)", s.Model())
	}

	s.Pop() // retract ¬1
	st, _ = s.SolveUnderAssumptions([]cnf.Lit{1})
	if st != Sat {
		t.Fatalf("after both Pops, assume 1: %v, want SAT", st)
	}
}

// refutesWithUnits reports whether f plus the given assumption literals
// (as unit clauses) is unsatisfiable, by exhaustive enumeration.
func refutesWithUnits(t *testing.T, f *cnf.Formula, subset []cnf.Lit) bool {
	t.Helper()
	g := f.Clone()
	for _, l := range subset {
		g.MustAddClause(l)
	}
	sat, _ := enumerate(g)
	return !sat
}

// verifyCoreMinimalSubset checks a returned core against brute force: the
// core must itself refute the formula, and it must contain at least one of
// the brute-force-minimal refuting subsets of the assumptions (so it is
// never missing a necessary assumption).
func verifyCoreMinimalSubset(t *testing.T, f *cnf.Formula, assumptions, core []cnf.Lit) {
	t.Helper()
	if !refutesWithUnits(t, f, core) {
		t.Fatalf("core %v does not refute the formula", core)
	}
	inCore := map[cnf.Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	// Enumerate subsets of the assumptions; find minimal refuting ones.
	n := len(assumptions)
	if n > 10 {
		t.Fatalf("assumption set too large for subset enumeration: %d", n)
	}
	refuting := map[uint]bool{}
	for mask := uint(0); mask < 1<<uint(n); mask++ {
		var subset []cnf.Lit
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, assumptions[i])
			}
		}
		refuting[mask] = refutesWithUnits(t, f, subset)
	}
	for mask := uint(0); mask < 1<<uint(n); mask++ {
		if !refuting[mask] {
			continue
		}
		minimal := true
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 && refuting[mask&^(1<<uint(i))] {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		// mask is a minimal refuting subset: is it contained in the core?
		contained := true
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 && !inCore[assumptions[i]] {
				contained = false
				break
			}
		}
		if contained {
			return
		}
	}
	t.Fatalf("core %v contains no brute-force-minimal refuting subset of %v", core, assumptions)
}

// TestAssumptionEdgeCases pins the IPASIR corner cases: duplicate
// assumptions, a directly contradictory pair, assumptions over unknown
// variables, and UNSAT with an empty core — with every returned core
// minimal-subset-verified against brute force.
func TestAssumptionEdgeCases(t *testing.T) {
	t.Run("duplicates", func(t *testing.T) {
		// x1 → x2, x2 → x3; assuming {1, 1, -3, -3} fails exactly like
		// {1, -3} and the core must stay within the duplicated literals.
		f := cnf.New(3)
		f.MustAddClause(-1, 2)
		f.MustAddClause(-2, 3)
		s, err := New(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assumptions := []cnf.Lit{1, 1, -3, -3}
		st, core := s.SolveUnderAssumptions(assumptions)
		if st != Unsat {
			t.Fatalf("status %v, want UNSAT", st)
		}
		verifyCoreMinimalSubset(t, f, assumptions, core)
		// Duplicates must also be harmless on the SAT side.
		st, _ = s.SolveUnderAssumptions([]cnf.Lit{1, 1, 1})
		if st != Sat {
			t.Fatalf("duplicated satisfiable assumption: %v", st)
		}
	})

	t.Run("contradictory-pair", func(t *testing.T) {
		f := cnf.New(3)
		f.MustAddClause(1, 2)
		s, err := New(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assumptions := []cnf.Lit{3, -3}
		st, core := s.SolveUnderAssumptions(assumptions)
		if st != Unsat {
			t.Fatalf("status %v, want UNSAT", st)
		}
		verifyCoreMinimalSubset(t, f, assumptions, core)
		if len(core) != 2 {
			t.Fatalf("core %v, want exactly the pair {3, -3}", core)
		}
	})

	t.Run("unknown-variables", func(t *testing.T) {
		// Assumptions over variables the solver has never seen are
		// trivially free: they never block SAT and never enter a core.
		f := cnf.New(2)
		f.MustAddClause(-1, 2)
		s, err := New(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.SolveUnderAssumptions([]cnf.Lit{1, 7, -9})
		if st != Sat {
			t.Fatalf("unknown-variable assumptions must stay satisfiable: %v", st)
		}
		st, core := s.SolveUnderAssumptions([]cnf.Lit{7, 1, -2, -9})
		if st != Unsat {
			t.Fatalf("status %v, want UNSAT", st)
		}
		for _, l := range core {
			if l.Var() > 2 {
				t.Fatalf("core %v mentions an unknown variable", core)
			}
		}
		verifyCoreMinimalSubset(t, f, []cnf.Lit{7, 1, -2, -9}, core)
	})

	t.Run("empty-core-unsat", func(t *testing.T) {
		// A contradiction derived at the root — here through the
		// incremental AddClause path — fails every assumption set with an
		// empty core: no assumption is to blame.
		f := cnf.New(3)
		f.MustAddClause(1, 2)
		s, err := New(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []cnf.Clause{{3}, {-3, 1}, {-1}, {-2}} {
			if err := s.AddClause(c); err != nil {
				t.Fatal(err)
			}
		}
		st, core := s.SolveUnderAssumptions([]cnf.Lit{1, -2})
		if st != Unsat {
			t.Fatalf("root-contradicted formula under assumptions: %v", st)
		}
		if len(core) != 0 {
			t.Fatalf("core %v, want empty (the formula alone is UNSAT)", core)
		}
	})

	t.Run("unsat-formula-sound-core", func(t *testing.T) {
		// On a formula that is UNSAT independent of the assumptions but
		// needs search to prove it, the failed-assumption core may be
		// non-empty (the refutation found happened to lean on the
		// assumptions) — but it must still be refuting and a subset of
		// the assumptions.
		inst := gen.Pigeonhole(3)
		s, err := New(inst.F, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assumptions := []cnf.Lit{1, -5}
		st, core := s.SolveUnderAssumptions(assumptions)
		if st != Unsat {
			t.Fatalf("php-3 under assumptions: %v", st)
		}
		verifyCoreMinimalSubset(t, inst.F, assumptions, core)
	})
}

// TestAssumptionRestartKeepsPrefix measures satellite 1: restarts inside
// assumption solving used to cancel to level zero and re-propagate the
// entire assumption prefix every restart; cancelling to the prefix
// boundary must answer identically while saving those redundant
// propagations. The instance glues a 2000-variable implication chain (a
// propagation-heavy prefix, long enough that its per-restart cost
// dominates trajectory noise from heap tie-breaking) onto an
// unsatisfiable php-6 core that forces many restarts.
func TestAssumptionRestartKeepsPrefix(t *testing.T) {
	php := gen.Pigeonhole(6)
	base := php.F.NumVars
	f := php.F.Clone()
	const chain = 2000
	for i := 0; i < chain-1; i++ {
		f.MustAddClause(-cnf.Lit(base+1+i), cnf.Lit(base+2+i))
	}
	assumptions := []cnf.Lit{cnf.Lit(base + 1)}

	run := func(disable bool) (Status, Stats) {
		opts := Options{RestartBase: 32}
		opts.disableAssumptionPrefixKeep = disable
		s, err := New(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, core := s.SolveUnderAssumptions(assumptions)
		if len(core) != 0 {
			t.Fatalf("php core is assumption-free; got %v", core)
		}
		return st, s.Stats()
	}

	stKeep, keep := run(false)
	stRedo, redo := run(true)
	if stKeep != Unsat || stRedo != Unsat {
		t.Fatalf("php-6 with a chained prefix must be UNSAT (keep=%v redo=%v)", stKeep, stRedo)
	}
	if keep.Restarts == 0 {
		t.Fatalf("instance produced no restarts (stats %+v); the measurement is vacuous", keep)
	}
	if keep.Propagations >= redo.Propagations {
		t.Fatalf("prefix keeping saved nothing: %d propagations with keep, %d with re-propagation",
			keep.Propagations, redo.Propagations)
	}
	t.Logf("restarts=%d: %d propagations with prefix keeping vs %d re-propagating (%d saved, %.1f%%)",
		keep.Restarts, keep.Propagations, redo.Propagations,
		redo.Propagations-keep.Propagations,
		100*float64(redo.Propagations-keep.Propagations)/float64(redo.Propagations))
}

// TestIncrementalInvariants drives an AddClause/Push/Pop/solve schedule
// and then replays the watch and arena invariant checks, proving the
// incremental paths preserve the representation invariants the one-shot
// solver maintains.
func TestIncrementalInvariants(t *testing.T) {
	inst := gen.RandomKSAT(12, 50, 3, 11)
	cls := inst.F.Clauses
	half := len(cls) / 2
	base := cnf.New(inst.F.NumVars)
	for _, c := range cls[:half] {
		base.MustAddClause(c...)
	}
	s, err := New(base, Options{ReduceFirst: 10, ReduceInc: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.SolveUnderAssumptions(nil)
	s.Push()
	for _, c := range cls[half:] {
		if err := s.AddClause(c); err != nil {
			t.Fatal(err)
		}
	}
	s.SolveUnderAssumptions([]cnf.Lit{1})
	s.Pop()
	for _, c := range cls[half:] {
		if err := s.AddClause(c); err != nil {
			t.Fatal(err)
		}
	}
	s.SolveUnderAssumptions(nil)
	checkWatchInvariant(t, s)
	checkArenaInvariant(t, s)
}

// TestSolveHonorsOpenFrames pins the one-shot Solve/SolveContext entry
// points to the same semantics as SolveUnderAssumptions when Push frames
// are open: clauses added under a frame constrain the answer. (The plain
// search loop used to ignore the frames' activation literals, so Solve
// could return Sat with a model violating frame clauses.)
func TestSolveHonorsOpenFrames(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(-1, 2) // 1 → 2
	s, err := New(f, incrementalOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.Push()
	for _, c := range []cnf.Clause{{1}, {-2}} {
		if err := s.AddClause(c); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve with contradictory frame clauses = %v, want Unsat", st)
	}
	// Frame-only UNSAT must not poison the solver: popping restores SAT.
	if !s.Pop() {
		t.Fatal("Pop with an open frame returned false")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve after Pop = %v, want Sat", st)
	}
	// A satisfiable frame still constrains the model.
	s.Push()
	if err := s.AddClause(cnf.Clause{1}); err != nil {
		t.Fatal(err)
	}
	if st := s.SolveContext(context.Background()); st != Sat {
		t.Fatalf("SolveContext with satisfiable frame = %v, want Sat", st)
	}
	if m := s.Model(); !m.Value(1) || !m.Value(2) {
		t.Fatalf("model %v violates the frame clause {1} or the chain 1→2", m)
	}
}
