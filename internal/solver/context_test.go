package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/faultpoint"
)

// chainFormula builds an implication chain x1 → x2 → ... → xn. Deciding
// x1 true triggers a single BCP run of n−1 propagations with no
// conflicts, which is exactly the shape that starved the old
// once-per-conflict interrupt poll.
func chainFormula(n int) *cnf.Formula {
	f := cnf.New(n)
	for i := 1; i < n; i++ {
		if err := f.AddClause(cnf.Lit(-i), cnf.Lit(i+1)); err != nil {
			panic(err)
		}
	}
	return f
}

// chainOptions makes the solver decide x1 positively so the whole chain
// propagates in one call.
func chainOptions() Options {
	return Options{InitialPhase: true, InterruptEvery: 256}
}

func TestInterruptLatencyBoundedInsideBCP(t *testing.T) {
	const n = 20000
	opts := chainOptions()
	// Raise the stop signal at the second poll, i.e. mid-chain: the old
	// once-per-conflict poll would never fire (the chain is conflict-free)
	// and the solver would run all n−1 propagations to fixpoint.
	polls := 0
	opts.Interrupt = func() bool { polls++; return polls >= 2 }
	res, err := Solve(chainFormula(n), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown {
		t.Fatalf("interrupted solve must be Unknown, got %v", res.Status)
	}
	if !errors.Is(res.Stop, ErrInterrupted) {
		t.Fatalf("stop cause = %v, want ErrInterrupted", res.Stop)
	}
	if res.Stats.Propagations == 0 {
		t.Fatal("the stop signal was raised mid-chain; some propagations must have run")
	}
	// The poll fires within one stride of the signal being raised.
	if res.Stats.Propagations > 2*opts.InterruptEvery+16 {
		t.Fatalf("interrupt latency: %d propagations past the stop signal (stride %d)",
			res.Stats.Propagations, opts.InterruptEvery)
	}
}

func TestDeadlineStopsSlowPropagationChain(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	// Each stride poll sleeps 2 ms: a deterministic stand-in for a slow
	// propagation chain. With a 20 ms deadline the search must stop after
	// a bounded number of polls, i.e. a bounded number of propagations.
	faultpoint.Arm(faultpoint.SolverPropagate, faultpoint.Fault{Delay: 2 * time.Millisecond})
	const n = 50000
	opts := chainOptions()
	opts.InterruptEvery = 64
	opts.Deadline = time.Now().Add(20 * time.Millisecond)
	res, err := Solve(chainFormula(n), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown {
		t.Fatalf("deadline solve must be Unknown, got %v", res.Status)
	}
	if !errors.Is(res.Stop, ErrDeadline) {
		t.Fatalf("stop cause = %v, want ErrDeadline", res.Stop)
	}
	if errors.Is(res.Stop, ErrConflictBudget) || errors.Is(res.Stop, ErrPropagationBudget) {
		t.Fatalf("stop cause %v must not be a conflict/propagation budget", res.Stop)
	}
	// ~10 polls fit in the deadline; far fewer than the full chain.
	if res.Stats.Propagations >= n-1 {
		t.Fatalf("deadline did not bound the propagation chain: %d propagations", res.Stats.Propagations)
	}
}

func TestContextDeadlineReportsDeadline(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.SolverPropagate, faultpoint.Fault{Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	opts := chainOptions()
	opts.InterruptEvery = 64
	res, err := SolveContext(ctx, chainFormula(50000), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown || !errors.Is(res.Stop, ErrDeadline) {
		t.Fatalf("status=%v stop=%v, want Unknown/ErrDeadline", res.Status, res.Stop)
	}
}

func TestContextCancellationReportsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first poll must see it
	res, err := SolveContext(ctx, chainFormula(20000), chainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown || !errors.Is(res.Stop, ErrCanceled) {
		t.Fatalf("status=%v stop=%v, want Unknown/ErrCanceled", res.Status, res.Stop)
	}
	if !errors.Is(res.Stop, ErrBudget) {
		t.Fatal("stop causes must wrap ErrBudget")
	}
}

func TestUndisturbedSolveCompletes(t *testing.T) {
	// The chain with no stop sources must still solve to SAT.
	res, err := Solve(chainFormula(5000), chainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat {
		t.Fatalf("want Sat, got %v", res.Status)
	}
}

func TestBudgetSentinelsIdentifyCause(t *testing.T) {
	f := hardFormulaForBudget(t)
	res, err := Solve(f, Options{MaxConflicts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown || !errors.Is(res.Stop, ErrConflictBudget) {
		t.Fatalf("status=%v stop=%v, want Unknown/ErrConflictBudget", res.Status, res.Stop)
	}
	res, err = Solve(f, Options{MaxPropagations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown || !errors.Is(res.Stop, ErrPropagationBudget) {
		t.Fatalf("status=%v stop=%v, want Unknown/ErrPropagationBudget", res.Status, res.Stop)
	}
}

// hardFormulaForBudget returns a pigeonhole-style formula hard enough to
// exhaust tiny budgets (5 pigeons, 4 holes, built inline to avoid an
// import cycle with internal/gen).
func hardFormulaForBudget(t *testing.T) *cnf.Formula {
	t.Helper()
	const pigeons, holes = 5, 4
	v := func(p, h int) cnf.Lit { return cnf.Lit(p*holes + h + 1) }
	f := cnf.New(pigeons * holes)
	for p := 0; p < pigeons; p++ {
		cl := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		if err := f.AddClause(cl...); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				if err := f.AddClause(-v(p1, h), -v(p2, h)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return f
}

func TestReducePanicContainedAsUnknown(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.SolverReduce, faultpoint.Fault{PanicValue: "reduce invariant violated"})
	f := hardFormulaForBudget(t)
	// ReduceFirst 10 guarantees the fault point is reached quickly.
	res, err := Solve(f, Options{ReduceFirst: 10, ReduceInc: 10})
	if err == nil {
		t.Fatal("contained panic must surface as an error")
	}
	if !errors.Is(err, ErrSolvePanic) {
		t.Fatalf("err = %v, want ErrSolvePanic", err)
	}
	if res.Status != Unknown {
		t.Fatalf("contained panic must yield Unknown, got %v", res.Status)
	}
	if !errors.Is(res.Stop, ErrSolvePanic) {
		t.Fatalf("res.Stop = %v, want ErrSolvePanic", res.Stop)
	}
	if faultpoint.Hits(faultpoint.SolverReduce) == 0 {
		t.Fatal("fault point was never reached")
	}
}

func TestInjectedPropagateErrorContained(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.SolverPropagate, faultpoint.Fault{Err: errors.New("bcp fault"), Skip: 2})
	res, err := Solve(chainFormula(10000), chainOptions())
	if !errors.Is(err, ErrSolvePanic) {
		t.Fatalf("err = %v, want ErrSolvePanic", err)
	}
	if res.Status != Unknown {
		t.Fatalf("want Unknown, got %v", res.Status)
	}
}
