package solver

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// BenchmarkSolveRandom3SAT measures end-to-end solving of a
// phase-transition random instance under each deletion policy.
func BenchmarkSolveRandom3SAT(b *testing.B) {
	inst := gen.RandomKSAT(120, 511, 3, 7)
	for _, pol := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		b.Run(pol.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Solve(inst.F, Options{Policy: pol, ReduceFirst: 100, ReduceInc: 50})
				if err != nil || res.Status == Unknown {
					b.Fatal("solve failed")
				}
			}
		})
	}
}

// BenchmarkSolvePigeonhole measures a proof-heavy UNSAT instance.
func BenchmarkSolvePigeonhole(b *testing.B) {
	inst := gen.Pigeonhole(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Solve(inst.F, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatal("php-6 must be UNSAT")
		}
	}
}

// BenchmarkSolveMiter measures a structured equivalence-checking instance.
func BenchmarkSolveMiter(b *testing.B) {
	inst := gen.Miter(10, 150, false, 3)
	for i := 0; i < b.N; i++ {
		res, err := Solve(inst.F, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatal("equivalent miter must be UNSAT")
		}
	}
}

// BenchmarkPropagationThroughput measures raw BCP on an implication chain:
// one unit triggers n−1 propagations with no search.
func BenchmarkPropagationThroughput(b *testing.B) {
	const n = 5000
	f := cnf.New(n)
	f.MustAddClause(1)
	for i := 1; i < n; i++ {
		f.MustAddClause(cnf.Lit(-i), cnf.Lit(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(f, Options{})
		if err != nil || res.Status != Sat {
			b.Fatal("chain must be SAT")
		}
	}
}

// BenchmarkReduceCost isolates the clause-database reduction by running a
// solve whose schedule forces frequent reductions, under both Figure 5
// scoring layouts.
func BenchmarkReduceCost(b *testing.B) {
	inst := gen.RandomKSAT(100, 426, 3, 9)
	for _, pol := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		b.Run(pol.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := New(inst.F, Options{Policy: pol, ReduceFirst: 20, ReduceInc: 10})
				if err != nil {
					b.Fatal(err)
				}
				s.Solve()
				if s.Stats().Reductions == 0 {
					b.Fatal("schedule should force reductions")
				}
			}
		})
	}
}
