package solver

import (
	"testing"

	"neuroselect/internal/aiger"
	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// reportSolverMetrics converts accumulated search counters into throughput
// metrics so scripts/bench.sh can track props/sec and conflicts/sec per
// generator family alongside the standard ns/op and allocs/op columns.
func reportSolverMetrics(b *testing.B, props, conflicts int64) {
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	// Zero counters are omitted rather than reported: Stats.Propagations
	// only counts reason-bearing enqueues, so a workload that collapses at
	// level 0 (e.g. the addClause chain below) has none by definition.
	if props > 0 {
		b.ReportMetric(float64(props)/secs, "props/sec")
	}
	if conflicts > 0 {
		b.ReportMetric(float64(conflicts)/secs, "conflicts/sec")
	}
}

// BenchmarkSolveRandom3SAT measures end-to-end solving of a
// phase-transition random instance under each deletion policy.
func BenchmarkSolveRandom3SAT(b *testing.B) {
	inst := gen.RandomKSAT(120, 511, 3, 7)
	for _, pol := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		b.Run(pol.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var props, conflicts int64
			for i := 0; i < b.N; i++ {
				res, err := Solve(inst.F, Options{Policy: pol, ReduceFirst: 100, ReduceInc: 50})
				if err != nil || res.Status == Unknown {
					b.Fatal("solve failed")
				}
				props += res.Stats.Propagations
				conflicts += res.Stats.Conflicts
			}
			reportSolverMetrics(b, props, conflicts)
		})
	}
}

// BenchmarkSolvePigeonhole measures a proof-heavy UNSAT instance.
func BenchmarkSolvePigeonhole(b *testing.B) {
	inst := gen.Pigeonhole(6)
	b.ReportAllocs()
	var props, conflicts int64
	for i := 0; i < b.N; i++ {
		res, err := Solve(inst.F, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatal("php-6 must be UNSAT")
		}
		props += res.Stats.Propagations
		conflicts += res.Stats.Conflicts
	}
	reportSolverMetrics(b, props, conflicts)
}

// BenchmarkSolveMiter measures a structured equivalence-checking instance.
func BenchmarkSolveMiter(b *testing.B) {
	inst := gen.Miter(10, 150, false, 3)
	b.ReportAllocs()
	var props, conflicts int64
	for i := 0; i < b.N; i++ {
		res, err := Solve(inst.F, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatal("equivalent miter must be UNSAT")
		}
		props += res.Stats.Propagations
		conflicts += res.Stats.Conflicts
	}
	reportSolverMetrics(b, props, conflicts)
}

// BenchmarkSolveTseitin measures an expander-graph parity instance, whose
// long XOR chains learn many binary clauses and so lean hardest on the
// inlined binary-watch path.
func BenchmarkSolveTseitin(b *testing.B) {
	inst := gen.Tseitin(24, 3, false, 4)
	b.ReportAllocs()
	var props, conflicts int64
	for i := 0; i < b.N; i++ {
		res, err := Solve(inst.F, Options{})
		if err != nil || res.Status != Unsat {
			b.Fatal("odd-charge tseitin must be UNSAT")
		}
		props += res.Stats.Propagations
		conflicts += res.Stats.Conflicts
	}
	reportSolverMetrics(b, props, conflicts)
}

// BenchmarkPropagationThroughput measures the root-level implication
// chain: the unit clause collapses the whole chain during addClause's
// level-0 simplification, so this benchmark times clause ingestion and
// construction-time unit propagation (no watch lists, no search).
func BenchmarkPropagationThroughput(b *testing.B) {
	const n = 5000
	f := cnf.New(n)
	f.MustAddClause(1)
	for i := 1; i < n; i++ {
		f.MustAddClause(cnf.Lit(-i), cnf.Lit(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var props, conflicts int64
	for i := 0; i < b.N; i++ {
		res, err := Solve(f, Options{})
		if err != nil || res.Status != Sat {
			b.Fatal("chain must be SAT")
		}
		props += res.Stats.Propagations
		conflicts += res.Stats.Conflicts
	}
	reportSolverMetrics(b, props, conflicts)
}

// BenchmarkBinaryBCP measures watch-driven propagation through the inlined
// binary-clause path. The two-way chain (¬x_i∨x_{i+1}) ∧ (x_i∨x_{i+1}) has
// no unit clause, so nothing collapses at construction; the first decision
// triggers ~n propagations, every one resolved inside the watcher without
// touching clause memory.
func BenchmarkBinaryBCP(b *testing.B) {
	const n = 5000
	f := cnf.New(n)
	for i := 1; i < n; i++ {
		f.MustAddClause(cnf.Lit(-i), cnf.Lit(i+1))
		f.MustAddClause(cnf.Lit(i), cnf.Lit(i+1))
	}
	s, err := New(f, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The incremental interface backtracks to level 0 between calls, so
		// each iteration redoes the full decision-triggered chain of
		// propagations on the already-constructed solver: pure BCP.
		if st, _ := s.SolveUnderAssumptions(nil); st != Sat {
			b.Fatal("two-way chain must be SAT")
		}
	}
	props := s.Stats().Propagations
	if props < int64(b.N)*(n-2) {
		b.Fatalf("chain did not propagate through BCP: %+v", s.Stats())
	}
	reportSolverMetrics(b, props, s.Stats().Conflicts)
}

// BenchmarkReduceCost isolates the clause-database reduction by running a
// solve whose schedule forces frequent reductions, under both Figure 5
// scoring layouts.
func BenchmarkReduceCost(b *testing.B) {
	inst := gen.RandomKSAT(100, 426, 3, 9)
	for _, pol := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		b.Run(pol.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var props, conflicts int64
			for i := 0; i < b.N; i++ {
				s, err := New(inst.F, Options{Policy: pol, ReduceFirst: 20, ReduceInc: 10})
				if err != nil {
					b.Fatal(err)
				}
				s.Solve()
				if s.Stats().Reductions == 0 {
					b.Fatal("schedule should force reductions")
				}
				props += s.Stats().Propagations
				conflicts += s.Stats().Conflicts
			}
			reportSolverMetrics(b, props, conflicts)
		})
	}
}

// unrollDepthQueries is the query schedule shared by the incremental and
// cold unrolling benchmarks: at each depth k of the add-1-or-2 counter,
// refute the just-out-of-reach value 2k+1 (UNSAT — the interesting proof)
// and witness the max-reachable value 2k (SAT).
func unrollDepthQueries(k int) (unsatTarget, satTarget uint64) {
	return uint64(2*k + 1), uint64(2 * k)
}

// BenchmarkIncrementalUnroll measures a BMC deepening sequence on one warm
// solver: each depth adds only the new frame's clauses via AddClause and
// solves under assumptions, so learned clauses, activities, and phases
// carry across depths. Compare against BenchmarkIncrementalUnrollCold,
// which pays a fresh construction and scratch search at every depth.
func BenchmarkIncrementalUnroll(b *testing.B) {
	const width, steps = 7, 20
	g := aiger.CounterAIG(width)
	b.ReportAllocs()
	var props, conflicts int64
	for i := 0; i < b.N; i++ {
		u, err := aiger.NewUnroller(g, width)
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(cnf.New(0), Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range u.Init(0) {
			if err := s.AddClause(c); err != nil {
				b.Fatal(err)
			}
		}
		for k := 1; k <= steps; k++ {
			clauses, _ := u.Step()
			for _, c := range clauses {
				if err := s.AddClause(c); err != nil {
					b.Fatal(err)
				}
			}
			unsatT, satT := unrollDepthQueries(k)
			if st, _ := s.SolveUnderAssumptions(u.StateEquals(unsatT)); st != Unsat {
				b.Fatalf("depth %d: %d must be unreachable", k, unsatT)
			}
			if st, _ := s.SolveUnderAssumptions(u.StateEquals(satT)); st != Sat {
				b.Fatalf("depth %d: %d must be reachable", k, satT)
			}
		}
		props += s.Stats().Propagations
		conflicts += s.Stats().Conflicts
	}
	reportSolverMetrics(b, props, conflicts)
}

// BenchmarkIncrementalUnrollCold is the baseline the warm path is judged
// against: the same unrolling and query schedule, but every depth rebuilds
// a solver from the accumulated formula and searches from scratch.
func BenchmarkIncrementalUnrollCold(b *testing.B) {
	const width, steps = 7, 20
	g := aiger.CounterAIG(width)
	b.ReportAllocs()
	var props, conflicts int64
	for i := 0; i < b.N; i++ {
		u, err := aiger.NewUnroller(g, width)
		if err != nil {
			b.Fatal(err)
		}
		acc := cnf.New(0)
		for _, c := range u.Init(0) {
			acc.MustAddClause(c...)
		}
		for k := 1; k <= steps; k++ {
			clauses, _ := u.Step()
			for _, c := range clauses {
				acc.MustAddClause(c...)
			}
			acc.NumVars = u.NumVars()
			unsatT, satT := unrollDepthQueries(k)
			res, err := SolveAssuming(acc, u.StateEquals(unsatT), Options{})
			if err != nil || res.Status != Unsat {
				b.Fatalf("depth %d: %d must be unreachable (%v)", k, unsatT, err)
			}
			res, err = SolveAssuming(acc, u.StateEquals(satT), Options{})
			if err != nil || res.Status != Sat {
				b.Fatalf("depth %d: %d must be reachable (%v)", k, satT, err)
			}
			props += res.Stats.Propagations
			conflicts += res.Stats.Conflicts
		}
	}
	reportSolverMetrics(b, props, conflicts)
}
