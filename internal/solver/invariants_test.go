package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// checkWatchInvariant verifies that every live clause of length ≥ 2 is
// present in exactly the two watch lists of its first two literals'
// negations (lazily removed deleted watchers are ignored).
func checkWatchInvariant(t *testing.T, s *Solver) {
	t.Helper()
	count := map[*clause]int{}
	where := map[*clause][]lit{}
	for li, ws := range s.watches {
		for _, w := range ws {
			if w.c.deleted {
				continue
			}
			count[w.c]++
			where[w.c] = append(where[w.c], lit(li))
		}
	}
	check := func(c *clause) {
		if c.deleted {
			return
		}
		if count[c] != 2 {
			t.Fatalf("clause %v appears in %d watch lists, want 2", c.lits, count[c])
		}
		want := map[lit]bool{c.lits[0].not(): true, c.lits[1].not(): true}
		for _, li := range where[c] {
			if !want[li] {
				t.Fatalf("clause %v watched under wrong literal %v", c.lits, li)
			}
		}
	}
	for _, c := range s.clauses {
		check(c)
	}
	for _, c := range s.learned {
		check(c)
	}
}

func TestWatchInvariantAfterSolve(t *testing.T) {
	for _, in := range []gen.Instance{
		gen.RandomKSAT(60, 255, 3, 21),
		gen.Pigeonhole(6),
		gen.Tseitin(16, 3, false, 4),
	} {
		s, err := New(in.F, Options{ReduceFirst: 50, ReduceInc: 25})
		if err != nil {
			t.Fatal(err)
		}
		s.Solve()
		checkWatchInvariant(t, s)
	}
}

func TestReduceKeepsTier1AndReasons(t *testing.T) {
	inst := gen.RandomKSAT(80, 340, 3, 5)
	s, err := New(inst.F, Options{ReduceFirst: 30, ReduceInc: 15, Tier1Glue: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	if s.stats.Reductions == 0 {
		t.Skip("no reductions on this instance")
	}
	for _, c := range s.learned {
		if c.deleted && int(c.glue) <= s.opts.Tier1Glue && len(c.lits) > 2 {
			t.Fatalf("tier-1 clause (glue %d) was deleted", c.glue)
		}
		if c.deleted && len(c.lits) <= 2 {
			t.Fatal("binary learned clause was deleted")
		}
	}
}

func TestPropFreqResetAfterReduce(t *testing.T) {
	inst := gen.RandomKSAT(80, 340, 3, 6)
	s, err := New(inst.F, Options{ReduceFirst: 30, ReduceInc: 15})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	if s.stats.Reductions == 0 {
		t.Skip("no reductions")
	}
	// The windowed counters were reset at the last reduction, so their sum
	// must be strictly less than the cumulative total.
	var windowed, total uint64
	for i := range s.propFreq {
		windowed += s.propFreq[i]
		total += s.propFreqTotal[i]
	}
	if windowed >= total {
		t.Fatalf("windowed %d should be below cumulative %d after reductions", windowed, total)
	}
}

// TestQuickRandomFormulas is a testing/quick property: the solver agrees
// with brute force on arbitrary small formulas, including degenerate
// clauses, with every deletion policy.
func TestQuickRandomFormulas(t *testing.T) {
	policies := []deletion.Policy{
		deletion.DefaultPolicy{}, deletion.FrequencyPolicy{},
		deletion.ActivityPolicy{}, deletion.SizePolicy{},
	}
	trial := 0
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		trial++
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%10
		m := int(mRaw) % 40
		f := cnf.New(n)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(4)
			lits := make([]cnf.Lit, k) // duplicates/tautologies allowed
			for j := range lits {
				l := cnf.Lit(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					l = -l
				}
				lits[j] = l
			}
			f.MustAddClause(lits...)
		}
		want := bruteForce(f)
		res, err := Solve(f, Options{Policy: policies[trial%len(policies)], ReduceFirst: 15, ReduceInc: 10})
		if err != nil || res.Status == Unknown {
			return false
		}
		if (res.Status == Sat) != want {
			return false
		}
		return res.Status != Sat || res.Model.Satisfies(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestLearnedClauseGluesAreBounded(t *testing.T) {
	inst := gen.RandomKSAT(60, 255, 3, 7)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	for _, c := range s.learned {
		if c.deleted {
			continue
		}
		if int(c.glue) > len(c.lits) {
			t.Fatalf("glue %d exceeds clause size %d", c.glue, len(c.lits))
		}
		if c.glue < 1 {
			t.Fatalf("glue %d below 1 for clause %v", c.glue, c.lits)
		}
	}
}

func TestPhaseSavingPersists(t *testing.T) {
	// After SAT, re-solving the same solver state is not supported, but
	// phases should reflect the found model's polarities for assigned
	// vars.
	inst := gen.RandomKSAT(40, 150, 3, 8)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Skip("instance not SAT")
	}
	// All variables assigned at SAT; model extracted.
	m := s.Model()
	if !m.Satisfies(inst.F) {
		t.Fatal("model check")
	}
}

func TestUnknownLeavesNoModel(t *testing.T) {
	inst := gen.Pigeonhole(8)
	res, err := Solve(inst.F, Options{MaxConflicts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown {
		t.Fatal("expected UNKNOWN")
	}
	if res.Model != nil {
		t.Fatal("no model should be produced on UNKNOWN")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("status strings")
	}
}

func TestOptionsDefaultsFilled(t *testing.T) {
	var o Options
	o.fillDefaults()
	if o.Policy == nil || o.VarDecay == 0 || o.RestartBase == 0 ||
		o.ReduceFirst == 0 || o.ReduceFraction == 0 || o.Tier1Glue == 0 || o.Alpha == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestLearnedCountReflectsDeletions(t *testing.T) {
	inst := gen.Pigeonhole(6)
	s, err := New(inst.F, Options{ReduceFirst: 30, ReduceInc: 15})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	live := int64(s.LearnedClauseCount())
	st := s.Stats()
	// learned = units + live-or-deleted long clauses; deleted counted
	// separately.
	if live > st.Learned-st.UnitsLearned {
		t.Fatalf("live %d exceeds non-unit learned %d", live, st.Learned-st.UnitsLearned)
	}
	if st.Deleted > 0 && live+st.Deleted+st.UnitsLearned != st.Learned {
		t.Fatalf("bookkeeping: live %d + deleted %d + units %d != learned %d",
			live, st.Deleted, st.UnitsLearned, st.Learned)
	}
}
