package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// checkWatchInvariant verifies that every live clause of length ≥ 2 is
// present in exactly the two watch lists of its first two literals'
// negations, that binary clauses are watched through the inlined encoding
// (watchBinary tag, blocker = other literal), and that no watcher or
// reason references a deleted clause (the arena GC removes them eagerly).
func checkWatchInvariant(t *testing.T, s *Solver) {
	t.Helper()
	count := map[cref]int{}
	where := map[cref][]lit{}
	for li, ws := range s.watches {
		for _, w := range ws {
			c := cref(w.ref &^ watchBinary)
			if s.clauseDeleted(c) {
				t.Fatalf("watch list %d holds deleted clause %v", li, s.clauseLits(c))
			}
			if bin := w.ref&watchBinary != 0; bin != (s.clauseSize(c) == 2 && !s.opts.disableBinaryWatch) {
				t.Fatalf("clause %v: binary-watch tag %v does not match size %d",
					s.clauseLits(c), bin, s.clauseSize(c))
			}
			if w.ref&watchBinary != 0 {
				cls := s.clauseLits(c)
				other := cls[0]
				if other.not() == lit(li) {
					other = cls[1]
				}
				if w.blocker != other {
					t.Fatalf("binary clause %v watched under %v with blocker %v, want %v",
						cls, lit(li), w.blocker, other)
				}
			}
			count[c]++
			where[c] = append(where[c], lit(li))
		}
	}
	check := func(c cref) {
		cls := s.clauseLits(c)
		if count[c] != 2 {
			t.Fatalf("clause %v appears in %d watch lists, want 2", cls, count[c])
		}
		want := map[lit]bool{cls[0].not(): true, cls[1].not(): true}
		for _, li := range where[c] {
			if !want[li] {
				t.Fatalf("clause %v watched under wrong literal %v", cls, li)
			}
		}
	}
	for _, c := range s.clauses {
		check(c)
	}
	for _, c := range s.learned {
		check(c)
	}
}

// checkArenaInvariant walks the raw arena and verifies the structural
// invariants the GC must preserve: the arena parses into back-to-back
// clause blocks, no block is marked deleted or protected outside a
// reduction, every watcher/reason/learned-index cref is a live block
// start, the learned index is in arena order with sequential activity
// slots, and the activity slice is exactly as long as the live learned
// count.
func checkArenaInvariant(t *testing.T, s *Solver) {
	t.Helper()
	starts := map[cref]bool{}
	learnedStarts := 0
	for c := cref(0); c < cref(len(s.arena)); {
		h := s.header(c)
		size := int(h >> hdrSizeShift)
		if size < 2 {
			t.Fatalf("arena block at %d has size %d, want ≥ 2", c, size)
		}
		if h&hdrDeleted != 0 {
			t.Fatalf("arena block at %d still marked deleted after GC", c)
		}
		if h&hdrProtect != 0 {
			t.Fatalf("arena block at %d left protect-marked outside reduce", c)
		}
		if h&hdrLearned != 0 {
			learnedStarts++
		} else if c >= s.problemEnd {
			t.Fatalf("problem clause at %d above problemEnd %d", c, s.problemEnd)
		}
		starts[c] = true
		c = s.litBase(c) + cref(size)
	}
	if len(s.clauseAct) != len(s.learned) || learnedStarts != len(s.learned) {
		t.Fatalf("learned bookkeeping: %d indexed, %d arena blocks, %d activities",
			len(s.learned), learnedStarts, len(s.clauseAct))
	}
	prev := cref(0)
	for i, c := range s.learned {
		if !starts[c] || !s.clauseLearned(c) {
			t.Fatalf("learned[%d] = %d is not a live learned block", i, c)
		}
		if i > 0 && c <= prev {
			t.Fatalf("learned index out of arena order at %d", i)
		}
		prev = c
		if int(s.actSlot(c)) != i {
			t.Fatalf("learned[%d] has activity slot %d", i, s.actSlot(c))
		}
	}
	for _, c := range s.clauses {
		if !starts[c] || s.clauseLearned(c) || c >= s.problemEnd {
			t.Fatalf("problem cref %d invalid", c)
		}
	}
	for li, ws := range s.watches {
		for _, w := range ws {
			if c := cref(w.ref &^ watchBinary); !starts[c] {
				t.Fatalf("watch list %d references %d, not a live clause start", li, c)
			}
		}
	}
	for v, r := range s.reason {
		if r != crefUndef && s.assign[v] != lUndef && !starts[r] {
			t.Fatalf("reason of assigned var %d references %d, not a live clause start", v, r)
		}
	}
}

func TestWatchInvariantAfterSolve(t *testing.T) {
	for _, in := range []gen.Instance{
		gen.RandomKSAT(60, 255, 3, 21),
		gen.Pigeonhole(6),
		gen.Tseitin(16, 3, false, 4),
	} {
		s, err := New(in.F, Options{ReduceFirst: 50, ReduceInc: 25})
		if err != nil {
			t.Fatal(err)
		}
		s.Solve()
		checkWatchInvariant(t, s)
		checkArenaInvariant(t, s)
	}
}

// TestArenaGCInvariants forces very aggressive reduction so the arena is
// compacted many times, then checks that every watch entry, reason
// reference, and learned-index entry is a live cref and the arena parses
// cleanly — the compaction left no dangling or tombstoned references.
func TestArenaGCInvariants(t *testing.T) {
	for _, in := range []gen.Instance{
		gen.RandomKSAT(80, 340, 3, 5),
		gen.Pigeonhole(7),
		gen.Tseitin(14, 3, false, 2),
	} {
		s, err := New(in.F, Options{ReduceFirst: 1, ReduceInc: 1})
		if err != nil {
			t.Fatal(err)
		}
		s.Solve()
		if s.stats.Reductions == 0 {
			t.Fatalf("%s: aggressive schedule produced no reductions", in.Name)
		}
		checkWatchInvariant(t, s)
		checkArenaInvariant(t, s)
	}
}

func TestReduceKeepsTier1AndReasons(t *testing.T) {
	inst := gen.RandomKSAT(80, 340, 3, 5)
	s, err := New(inst.F, Options{ReduceFirst: 30, ReduceInc: 15, Tier1Glue: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	if s.stats.Reductions == 0 {
		t.Skip("no reductions on this instance")
	}
	// The GC reclaims deleted clauses immediately, so surviving learned
	// clauses are exactly the keepers; tier-1 and binary clauses must all
	// have survived every reduction.
	if s.stats.Deleted == 0 {
		t.Skip("no deletions on this instance")
	}
	for _, c := range s.learned {
		if s.clauseDeleted(c) {
			t.Fatalf("learned index holds deleted clause %v", s.clauseLits(c))
		}
	}
	var bins int64
	for _, c := range s.learned {
		if s.clauseSize(c) == 2 {
			bins++
		}
	}
	if bins != s.stats.BinariesLearned {
		t.Fatalf("binary learned clauses: %d live, %d ever learned — a binary was deleted",
			bins, s.stats.BinariesLearned)
	}
}

func TestPropFreqResetAfterReduce(t *testing.T) {
	inst := gen.RandomKSAT(80, 340, 3, 6)
	s, err := New(inst.F, Options{ReduceFirst: 30, ReduceInc: 15})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	if s.stats.Reductions == 0 {
		t.Skip("no reductions")
	}
	// The windowed counters were reset at the last reduction, so their sum
	// must be strictly less than the cumulative total.
	var windowed, total uint64
	for i := range s.propFreq {
		windowed += s.propFreq[i]
		total += s.propFreqTotal[i]
	}
	if windowed >= total {
		t.Fatalf("windowed %d should be below cumulative %d after reductions", windowed, total)
	}
}

// TestQuickRandomFormulas is a testing/quick property: the solver agrees
// with brute force on arbitrary small formulas, including degenerate
// clauses, with every deletion policy.
func TestQuickRandomFormulas(t *testing.T) {
	policies := []deletion.Policy{
		deletion.DefaultPolicy{}, deletion.FrequencyPolicy{},
		deletion.ActivityPolicy{}, deletion.SizePolicy{},
	}
	trial := 0
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		trial++
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%10
		m := int(mRaw) % 40
		f := cnf.New(n)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(4)
			lits := make([]cnf.Lit, k) // duplicates/tautologies allowed
			for j := range lits {
				l := cnf.Lit(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					l = -l
				}
				lits[j] = l
			}
			f.MustAddClause(lits...)
		}
		want := bruteForce(f)
		res, err := Solve(f, Options{Policy: policies[trial%len(policies)], ReduceFirst: 15, ReduceInc: 10})
		if err != nil || res.Status == Unknown {
			return false
		}
		if (res.Status == Sat) != want {
			return false
		}
		return res.Status != Sat || res.Model.Satisfies(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestLearnedClauseGluesAreBounded(t *testing.T) {
	inst := gen.RandomKSAT(60, 255, 3, 7)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	for _, c := range s.learned {
		g := s.clauseGlue(c)
		if g > s.clauseSize(c) {
			t.Fatalf("glue %d exceeds clause size %d", g, s.clauseSize(c))
		}
		if g < 1 {
			t.Fatalf("glue %d below 1 for clause %v", g, s.clauseLits(c))
		}
	}
}

func TestPhaseSavingPersists(t *testing.T) {
	// After SAT, re-solving the same solver state is not supported, but
	// phases should reflect the found model's polarities for assigned
	// vars.
	inst := gen.RandomKSAT(40, 150, 3, 8)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Skip("instance not SAT")
	}
	// All variables assigned at SAT; model extracted.
	m := s.Model()
	if !m.Satisfies(inst.F) {
		t.Fatal("model check")
	}
}

func TestUnknownLeavesNoModel(t *testing.T) {
	inst := gen.Pigeonhole(8)
	res, err := Solve(inst.F, Options{MaxConflicts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown {
		t.Fatal("expected UNKNOWN")
	}
	if res.Model != nil {
		t.Fatal("no model should be produced on UNKNOWN")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("status strings")
	}
}

func TestOptionsDefaultsFilled(t *testing.T) {
	var o Options
	o.fillDefaults()
	if o.Policy == nil || o.VarDecay == 0 || o.RestartBase == 0 ||
		o.ReduceFirst == 0 || o.ReduceFraction == 0 || o.Tier1Glue == 0 || o.Alpha == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestLearnedCountReflectsDeletions(t *testing.T) {
	inst := gen.Pigeonhole(6)
	s, err := New(inst.F, Options{ReduceFirst: 30, ReduceInc: 15})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve()
	live := int64(s.LearnedClauseCount())
	st := s.Stats()
	// learned = units + live long clauses + deleted long clauses; the GC
	// removed the deleted ones from the index.
	if live > st.Learned-st.UnitsLearned {
		t.Fatalf("live %d exceeds non-unit learned %d", live, st.Learned-st.UnitsLearned)
	}
	if st.Deleted > 0 && live+st.Deleted+st.UnitsLearned != st.Learned {
		t.Fatalf("bookkeeping: live %d + deleted %d + units %d != learned %d",
			live, st.Deleted, st.UnitsLearned, st.Learned)
	}
}
