// Package solver implements a conflict-driven clause-learning (CDCL) SAT
// solver in the style of Kissat/MiniSat: two-watched-literal propagation,
// EVSIDS decision heuristic with phase saving, first-UIP conflict analysis
// with recursive clause minimization, Luby restarts, and a tiered learned-
// clause database reduced periodically under a pluggable deletion policy.
//
// The solver tracks, per variable, how often Boolean constraint propagation
// assigned it since the last clause deletion; this feeds the paper's Eq. 2
// propagation-frequency deletion criterion, and a cumulative counter feeds
// the Figure 3 distribution.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/obs"
)

// Status is the outcome of a solve call.
type Status int8

const (
	// Unknown means a resource budget (conflicts or propagations) expired.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula was proven unsatisfiable.
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Options configures solver behaviour. The zero value is usable; New fills
// unset fields with defaults tuned for the laptop-scale instances of this
// reproduction.
type Options struct {
	// Policy ranks learned clauses during reduction. Default: the Kissat
	// default policy (glue, then size).
	Policy deletion.Policy
	// Alpha is the Eq. 2 threshold factor (paper: 4/5).
	Alpha float64
	// MaxConflicts aborts the search with Unknown after this many conflicts
	// (0 = unlimited). It is the reproduction's analogue of the paper's
	// 5,000-second timeout.
	MaxConflicts int64
	// MaxPropagations aborts with Unknown after this many propagations
	// (0 = unlimited).
	MaxPropagations int64
	// VarDecay is the EVSIDS activity decay factor (default 0.95).
	VarDecay float64
	// ClauseDecay is the clause-activity decay factor (default 0.999).
	ClauseDecay float64
	// RestartBase scales the Luby restart sequence (default 128 conflicts).
	RestartBase int64
	// ReduceFirst is the conflict count before the first reduction
	// (default 600).
	ReduceFirst int64
	// ReduceInc is the additive growth of the reduction interval
	// (default 300).
	ReduceInc int64
	// ReduceFraction is the fraction of reducible clauses deleted per
	// reduction (default 0.5).
	ReduceFraction float64
	// Tier1Glue is the glue value at or below which a learned clause is
	// non-reducible and always kept (default 2, as in Kissat's tier-1).
	Tier1Glue int
	// InitialPhase is the saved-phase default for unassigned variables
	// (false, matching solvers that prefer negative polarity).
	InitialPhase bool
	// Proof, when non-nil, receives a DRAT proof stream: every learned
	// clause as an addition and every reduced clause as a deletion. For
	// UNSAT runs the stream (followed by unit propagation on the remaining
	// set) certifies the result; see the drat package's checker.
	Proof ProofLogger
	// Interrupt, when non-nil, is polled once per conflict and every
	// InterruptEvery propagations; returning true aborts the search with
	// Unknown. Used by parallel portfolio racing.
	Interrupt func() bool
	// Deadline, when non-zero, aborts the search with Unknown once the
	// wall clock passes it; the stop cause is ErrDeadline. It is the
	// reproduction's analogue of the paper's 5,000-second cutoff.
	Deadline time.Time
	// InterruptEvery is the propagation stride between stop polls
	// (context, deadline, Interrupt) inside long BCP chains; it bounds
	// cancellation latency even when the search produces no conflicts
	// (default 2048).
	InterruptEvery int64
	// Tracer, when non-nil, receives structured search events at the
	// solver's cold-path boundaries: solve start/end, every restart, every
	// reduction (with arena-GC detail), and a rollup every TraceWindow
	// conflicts (props/sec, mean glue, trail depth). A nil Tracer is
	// zero-cost: no event is constructed, no counter beyond Stats is
	// maintained, and the search trajectory is bit-identical either way.
	Tracer obs.Tracer
	// TraceWindow is the conflict count per rollup window (default 256;
	// meaningful only with Tracer or Progress set).
	TraceWindow int64
	// Progress, when non-nil, receives the latest conflict-window rollup
	// as an atomically swapped snapshot at every TraceWindow boundary, so
	// other goroutines (the serving layer's job polls) can read live
	// props/sec, restarts, and mean glue while the solve runs. Works with
	// or without a Tracer; a nil Progress costs nothing.
	Progress *ProgressSink
	// Export, when non-nil, receives every learned clause (DIMACS literals
	// plus its glue) synchronously from the learn path. The slice is a
	// reusable solver-owned scratch buffer, valid only for the duration of
	// the call — the hook must copy what it keeps. Used by the parallel
	// portfolio's clause exchange; a nil Export costs nothing.
	Export func(lits []cnf.Lit, glue int)
	// Import, when non-nil, is drained at every restart boundary (including
	// before the first search cycle): the returned batch is installed into
	// the learned-clause database at decision level zero (see SharedClause).
	// An imported empty clause decides UNSAT; imported units are enqueued
	// and propagated immediately.
	Import func() []SharedClause
	// ActivitySeed, when non-zero, deterministically perturbs the initial
	// variable activities with tiny pseudo-random values (xorshift from the
	// seed), so portfolio workers start their searches in different corners
	// of the tree. Zero (the default) leaves all activities at zero — the
	// historical trajectory.
	ActivitySeed uint64

	// disableBinaryWatch turns off the inlined binary-clause watch
	// specialization, forcing binaries through the generic arena path.
	// Test-only: the search must be bit-identical either way.
	disableBinaryWatch bool
	// disableAssumptionPrefixKeep restores the historical restart behavior
	// of assumption solving: backtrack to level zero and re-enqueue (and
	// re-propagate) the whole assumption prefix after every restart, instead
	// of cancelling only to the prefix boundary. Test-only: used to measure
	// the redundant propagations the prefix-keeping restart saves.
	disableAssumptionPrefixKeep bool
}

// ProofLogger receives clause additions and deletions in DIMACS literals;
// drat.Writer implements it.
type ProofLogger interface {
	AddClause(lits []cnf.Lit)
	DeleteClause(lits []cnf.Lit)
}

func (o *Options) fillDefaults() {
	if o.Policy == nil {
		o.Policy = deletion.DefaultPolicy{}
	}
	if o.Alpha == 0 {
		o.Alpha = deletion.DefaultAlpha
	}
	if o.VarDecay == 0 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay == 0 {
		o.ClauseDecay = 0.999
	}
	if o.RestartBase == 0 {
		o.RestartBase = 128
	}
	if o.ReduceFirst == 0 {
		o.ReduceFirst = 600
	}
	if o.ReduceInc == 0 {
		o.ReduceInc = 300
	}
	if o.ReduceFraction == 0 {
		o.ReduceFraction = 0.5
	}
	if o.Tier1Glue == 0 {
		o.Tier1Glue = 2
	}
	if o.InterruptEvery == 0 {
		o.InterruptEvery = 2048
	}
	if o.TraceWindow == 0 {
		o.TraceWindow = 256
	}
}

// Stats aggregates search counters. The JSON tags are the schema of
// satsolve's -stats-json output and are append-only.
type Stats struct {
	Decisions       int64 `json:"decisions"`
	Propagations    int64 `json:"propagations"`
	Conflicts       int64 `json:"conflicts"`
	Restarts        int64 `json:"restarts"`
	Reductions      int64 `json:"reductions"`
	Learned         int64 `json:"learned"` // learned clauses added
	Deleted         int64 `json:"deleted"` // learned clauses deleted by reduction
	UnitsLearned    int64 `json:"units_learned"`
	BinariesLearned int64 `json:"binaries_learned"`
	Imported        int64 `json:"imported"`       // foreign clauses installed via Options.Import
	AddedClauses    int64 `json:"added_clauses"`  // clauses installed via the incremental AddClause API
	MinimizedLits   int64 `json:"minimized_lits"` // literals removed by clause minimization
	MaxTrail        int   `json:"max_trail"`
	// Arena-GC counters: reduce-time mark-and-compact passes over the
	// learned region of the clause arena.
	GCCompactions   int64 `json:"gc_compactions"`    // compaction passes run
	GCLitsReclaimed int64 `json:"gc_lits_reclaimed"` // literal words of deleted clauses reclaimed
	GCBytesMoved    int64 `json:"gc_bytes_moved"`    // bytes of surviving clauses slid down
}

// watcher is one watch-list entry. ref is the watched clause's cref; for
// binary clauses the watchBinary bit is set and blocker is the clause's
// other literal, so BCP on binaries never reads the arena. For longer
// clauses blocker is a literal of the clause whose truth satisfies it
// (the classic MiniSat blocking literal).
type watcher struct {
	ref     uint32
	blocker lit
}

// Solver is a CDCL SAT solver. The variable count is fixed by the formula
// at construction but may grow through the incremental interface
// (incremental.go): AddClause introduces new user variables, and Push
// allocates internal activation variables that are invisible to callers.
type Solver struct {
	opts Options

	numVars int // internal variables (user variables + activation variables)
	uvars   int // user-visible variables; == numVars until Push diverges them

	// User↔internal variable maps. Both are nil while the mapping is the
	// identity (no Push has ever run); see materializeVarMaps. i2u[v] is -1
	// for activation variables, which have no user-visible number.
	u2i []int32
	i2u []int32

	// frames is the stack of activation variables opened by Push; the top
	// frame guards every clause added since the matching Push, and every
	// SolveUnderAssumptions call assumes all of them true.
	frames []int

	// arena is the flat clause store (see arena.go for the layout);
	// problemEnd is the boundary below which clauses never move or die.
	arena      []lit
	problemEnd cref
	clauseAct  []float64 // learned-clause activities, indexed by actSlot

	clauses []cref // problem clauses, in arena order
	learned []cref // learned clauses, in arena order

	watches [][]watcher // indexed by lit

	assign []lbool // by var
	level  []int32 // by var
	reason []cref  // by var; crefUndef for decisions and unassigned vars

	trail    []lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	clsInc   float64
	heap     *varHeap
	phase    []bool

	// propFreq counts BCP assignments per variable since the last clause
	// deletion (Eq. 2's f_v); propFreqTotal is cumulative (Figure 3).
	propFreq      []uint64
	propFreqTotal []uint64

	seen      []bool
	analyzeTS []int32 // timestamps for glue computation
	analyzeCt int32

	// Scratch buffers reused across conflicts/reductions so steady-state
	// analysis and reduction are allocation-free.
	addBuf      []lit
	learntBuf   []lit
	exportBuf   []cnf.Lit
	minimizeExt []int
	redStack    []redFrame
	redMarked   []int
	redCand     []cref
	redScores   []uint64
	redSort     reduceSorter

	// Assumption-solving scratch (assume.go): the internal assumption
	// prefix, the per-literal assumption marks, the final-conflict DFS
	// stack, the list of seen[] entries to clear, and the returned core.
	// All reused across calls so steady-state assumption solving is
	// allocation-free; a returned core is valid until the next solve or
	// AddClause call on this solver.
	assumeBuf  []lit
	assumpMark []bool // indexed by lit
	finalStack []lit
	seenClear  []int
	coreBuf    []cnf.Lit

	stats  Stats
	ok     bool // false once top-level conflict is found
	budget error

	// ctx is the cancellation context of the current SolveContext call;
	// nextPoll is the propagation count at which BCP polls checkStop next.
	ctx      context.Context
	nextPoll int64

	reduceLimit int64

	// Conflict-window trace state, touched only when opts.Tracer or
	// opts.Progress is non-nil (the zero-cost-when-nil contract).
	traceStart time.Time // solve start; event timestamps are relative to it
	winStart   time.Time // wall clock at the last window boundary
	winGlue    int64     // summed glue of clauses learned this window
	winConfs   int64     // cumulative conflicts at the last boundary
	winProps   int64     // cumulative propagations at the last boundary
	nextWindow int64     // conflict count that closes the current window

	model cnf.Assignment
}

// ErrBudget is wrapped by solve results that ran out of a resource budget.
var ErrBudget = errors.New("solver: resource budget exhausted")

// Stop causes. Every Unknown result stops for exactly one of these
// reasons; all wrap ErrBudget so existing errors.Is(err, ErrBudget)
// checks keep working, and each is individually matchable to tell a
// conflict/propagation budget from a wall-clock deadline or cancellation.
var (
	// ErrConflictBudget: Options.MaxConflicts expired.
	ErrConflictBudget = fmt.Errorf("%w: conflicts", ErrBudget)
	// ErrPropagationBudget: Options.MaxPropagations expired.
	ErrPropagationBudget = fmt.Errorf("%w: propagations", ErrBudget)
	// ErrInterrupted: Options.Interrupt returned true.
	ErrInterrupted = fmt.Errorf("%w: interrupted", ErrBudget)
	// ErrDeadline: Options.Deadline or the context deadline passed.
	ErrDeadline = fmt.Errorf("%w: deadline", ErrBudget)
	// ErrCanceled: the SolveContext context was canceled.
	ErrCanceled = fmt.Errorf("%w: canceled", ErrBudget)
)

// ErrSolvePanic wraps a panic recovered during a solve; the result is
// reported as an error-carrying Unknown instead of crashing the caller.
var ErrSolvePanic = errors.New("solver: panic recovered during solve")

// New builds a solver for the formula. Empty clauses make the solver start
// in the unsatisfiable state; unit clauses are enqueued at level zero.
func New(f *cnf.Formula, opts Options) (*Solver, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	opts.fillDefaults()
	n := f.NumVars
	s := &Solver{
		opts:          opts,
		numVars:       n,
		uvars:         n,
		watches:       make([][]watcher, 2*n),
		assign:        make([]lbool, n),
		level:         make([]int32, n),
		reason:        make([]cref, n),
		activity:      make([]float64, n),
		varInc:        1.0,
		clsInc:        1.0,
		phase:         make([]bool, n),
		propFreq:      make([]uint64, n),
		propFreqTotal: make([]uint64, n),
		seen:          make([]bool, n),
		analyzeTS:     make([]int32, n),
		ok:            true,
		reduceLimit:   opts.ReduceFirst,
	}
	for i := range s.reason {
		s.reason[i] = crefUndef
	}
	for i := range s.phase {
		s.phase[i] = opts.InitialPhase
	}
	if opts.ActivitySeed != 0 {
		// Tiny xorshift64 perturbation: large enough to break the initial
		// all-zero tie, small enough that a handful of real bumps (varInc
		// starts at 1.0) dominates it immediately.
		x := opts.ActivitySeed
		for v := range s.activity {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			s.activity[v] = float64(x%(1<<20)) * 1e-12
		}
	}
	s.heap = newVarHeap(&s.activity, n)
	for v := 0; v < n; v++ {
		s.heap.push(v)
	}
	for _, c := range f.Clauses {
		if err := s.addClause(c); err != nil {
			return nil, err
		}
	}
	s.problemEnd = cref(len(s.arena))
	return s, nil
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.numVars }

// Stats returns a copy of the search counters.
func (s *Solver) Stats() Stats { return s.stats }

// PropagationFrequencies returns the cumulative per-variable BCP assignment
// counts (1-based indexing to match cnf variables; index 0 is unused). This
// is the data behind the paper's Figure 3.
func (s *Solver) PropagationFrequencies() []uint64 {
	out := make([]uint64, s.numVars+1)
	copy(out[1:], s.propFreqTotal)
	return out
}

// Model returns the satisfying assignment found by the last Solve call that
// returned Sat. Index 0 is unused.
func (s *Solver) Model() cnf.Assignment { return s.model }

// LearnedClauseCount returns the number of live learned clauses. The arena
// GC reclaims deleted clauses at reduce time, so every indexed clause is
// live.
func (s *Solver) LearnedClauseCount() int { return len(s.learned) }

// addClause installs a problem clause, handling empty, unit, and falsified
// degenerate cases at decision level zero. Normalization happens in
// internal-literal space inside a reusable scratch buffer: ascending
// internal order is (variable, positive-first), the same order
// cnf.Clause.Normalize produces, so no per-clause copy is allocated.
func (s *Solver) addClause(raw cnf.Clause) error {
	if !s.ok {
		return nil
	}
	buf := s.addBuf[:0]
	for _, l := range raw {
		buf = append(buf, fromCNF(l))
	}
	s.addBuf = buf
	sortLits(buf)
	// Dedupe and detect tautologies: duplicates and complementary pairs
	// are adjacent after sorting.
	norm := buf[:0]
	prev := litUndef
	for _, il := range buf {
		if il == prev {
			continue
		}
		if il == prev.not() {
			return nil // tautology
		}
		prev = il
		norm = append(norm, il)
	}
	lits := norm[:0]
	for _, il := range norm {
		switch valueOf(il, s.assign[il.v()]) {
		case lTrue:
			if s.level[il.v()] == 0 {
				return nil // clause already satisfied at top level
			}
			lits = append(lits, il)
		case lFalse:
			if s.level[il.v()] == 0 {
				continue // literal dead at top level
			}
			lits = append(lits, il)
		default:
			lits = append(lits, il)
		}
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return nil
	case 1:
		if !s.enqueue(lits[0], crefUndef) {
			s.ok = false
			return nil
		}
		if conflict := s.propagate(); conflict != crefUndef {
			s.ok = false
		}
		return nil
	}
	if len(lits) > maxClauseSize {
		return fmt.Errorf("solver: clause of %d literals exceeds the arena limit of %d", len(lits), maxClauseSize)
	}
	c := s.allocClause(lits, false, 0, 0)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

// attach installs the clause's two watchers. Binary clauses are inlined
// into the watcher (watchBinary tag, blocker = the other literal) so BCP
// resolves them without reading the arena.
func (s *Solver) attach(c cref) {
	cls := s.clauseLits(c)
	ref := uint32(c)
	if len(cls) == 2 && !s.opts.disableBinaryWatch {
		ref |= watchBinary
	}
	s.watches[cls[0].not()] = append(s.watches[cls[0].not()], watcher{ref, cls[1]})
	s.watches[cls[1].not()] = append(s.watches[cls[1].not()], watcher{ref, cls[0]})
}

// value returns the current truth value of a literal.
func (s *Solver) value(l lit) lbool { return valueOf(l, s.assign[l.v()]) }

// decisionLevel returns the current decision level.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// enqueue assigns literal l with the given reason clause (crefUndef for
// decisions and top-level units). It reports false if l is already false.
func (s *Solver) enqueue(l lit, from cref) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.v()
	if l.neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if len(s.trail) > s.stats.MaxTrail {
		s.stats.MaxTrail = len(s.trail)
	}
	if from != crefUndef {
		s.stats.Propagations++
		s.propFreq[v]++
		s.propFreqTotal[v]++
	}
	return true
}

// cancelUntil backtracks to the given decision level, unassigning variables
// and saving phases.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.v()
		s.phase[v] = !l.neg()
		s.assign[v] = lUndef
		s.reason[v] = crefUndef
		if !s.heap.contains(v) {
			s.heap.push(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// bumpVar increases a variable's activity, rescaling on overflow.
func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.heap.rebuild()
	}
	s.heap.update(v)
}

func (s *Solver) decayVar() { s.varInc /= s.opts.VarDecay }

func (s *Solver) bumpClause(c cref) {
	slot := s.actSlot(c)
	s.clauseAct[slot] += s.clsInc
	if s.clauseAct[slot] > 1e100 {
		for i := range s.clauseAct {
			s.clauseAct[i] *= 1e-100
		}
		s.clsInc *= 1e-100
	}
}

func (s *Solver) decayClause() { s.clsInc /= s.opts.ClauseDecay }

// Solve runs the CDCL search until the formula is decided or a budget
// expires. Open Push frames are honored: their clauses constrain the
// answer exactly as they do for SolveUnderAssumptions.
func (s *Solver) Solve() Status { return s.SolveContext(context.Background()) }

// SolveContext is Solve under a context: cancellation and the context
// deadline abort the search with Unknown, with the cause (ErrCanceled or
// ErrDeadline) reported by BudgetExhausted. Cancellation latency is
// bounded by Options.InterruptEvery propagations.
func (s *Solver) SolveContext(ctx context.Context) Status {
	s.ctx = ctx
	defer func() { s.ctx = nil }()
	t := s.opts.Tracer
	if t != nil || s.opts.Progress != nil {
		now := time.Now()
		s.traceStart, s.winStart = now, now
		s.winGlue = 0
		s.winConfs, s.winProps = s.stats.Conflicts, s.stats.Propagations
		s.nextWindow = s.stats.Conflicts + s.opts.TraceWindow
	}
	if t != nil {
		ev := &obs.Event{Type: obs.EventSolveStart, Vars: s.numVars, Clauses: len(s.clauses)}
		if s.opts.Policy != nil {
			ev.Policy = s.opts.Policy.Name()
		}
		t.Trace(ev)
	}
	var st Status
	if len(s.frames) > 0 {
		// Clauses under open frames are guarded by activation literals that
		// only the assumption path asserts; the plain loop would treat them
		// as satisfiable via their free guards and could answer Sat with a
		// model violating frame clauses.
		st, _ = s.SolveUnderAssumptions(nil)
	} else {
		st = s.solveLoop()
	}
	if t != nil {
		ev := s.traceEvent(obs.EventSolveEnd)
		ev.Status = st.String()
		t.Trace(ev)
	}
	return st
}

// solveLoop is the restart-driving search loop behind SolveContext.
func (s *Solver) solveLoop() Status {
	if !s.ok {
		return Unsat
	}
	if conflict := s.propagate(); conflict != crefUndef {
		s.ok = false
		return Unsat
	}
	if s.budget != nil {
		return Unknown
	}
	for {
		// Restart boundary: the trail is at level zero, so foreign clauses
		// can be bulk-installed before the next search cycle.
		if s.opts.Import != nil && !s.importShared() {
			return Unsat
		}
		// The Luby cursor is the cumulative restart counter, so a solve
		// resumed via ExtendBudget continues the schedule instead of
		// rewinding it. (Fresh solves are unchanged: both counters used to
		// start at zero and advance together.)
		limit := luby(2, s.stats.Restarts) * s.opts.RestartBase
		st := s.search(limit)
		if st != Unknown {
			return st
		}
		if s.budget != nil {
			return Unknown
		}
		s.stats.Restarts++
		if t := s.opts.Tracer; t != nil {
			t.Trace(s.traceEvent(obs.EventRestart))
		}
	}
}

// traceEvent builds an event carrying the cumulative counter snapshot that
// every non-start event shares. Only called with a tracer installed.
func (s *Solver) traceEvent(typ string) *obs.Event {
	return &obs.Event{
		Type:            typ,
		TimeNS:          time.Since(s.traceStart).Nanoseconds(),
		Conflicts:       s.stats.Conflicts,
		Decisions:       s.stats.Decisions,
		Propagations:    s.stats.Propagations,
		Restarts:        s.stats.Restarts,
		Reductions:      s.stats.Reductions,
		Learned:         s.stats.Learned,
		Deleted:         s.stats.Deleted,
		LiveLearned:     len(s.learned),
		ArenaWords:      len(s.arena),
		GCCompactions:   s.stats.GCCompactions,
		GCLitsReclaimed: s.stats.GCLitsReclaimed,
		GCBytesMoved:    s.stats.GCBytesMoved,
	}
}

// traceWindow closes the current conflict window: emits the rollup event
// (propagation rate, mean learned glue, trail depth), publishes the
// snapshot to the Progress sink, and opens the next window. Only called
// with a tracer or progress sink installed; t may be nil when only the
// sink is.
func (s *Solver) traceWindow(t obs.Tracer) {
	now := time.Now()
	confs := s.stats.Conflicts - s.winConfs
	props := s.stats.Propagations - s.winProps
	ev := s.traceEvent(obs.EventWindow)
	ev.WindowConflicts = confs
	if dt := now.Sub(s.winStart).Seconds(); dt > 0 {
		ev.PropsPerSec = float64(props) / dt
	}
	if confs > 0 {
		ev.MeanGlue = float64(s.winGlue) / float64(confs)
	}
	ev.TrailDepth = len(s.trail)
	ev.MaxTrail = s.stats.MaxTrail
	if t != nil {
		t.Trace(ev)
	}
	if ps := s.opts.Progress; ps != nil {
		ps.publish(Progress{
			Conflicts:       ev.Conflicts,
			Decisions:       ev.Decisions,
			Propagations:    ev.Propagations,
			Restarts:        ev.Restarts,
			Learned:         ev.Learned,
			WindowConflicts: ev.WindowConflicts,
			PropsPerSec:     ev.PropsPerSec,
			MeanGlue:        ev.MeanGlue,
			TrailDepth:      ev.TrailDepth,
			TimeNS:          ev.TimeNS,
		})
	}
	s.winStart = now
	s.winGlue = 0
	s.winConfs = s.stats.Conflicts
	s.winProps = s.stats.Propagations
	s.nextWindow = s.stats.Conflicts + s.opts.TraceWindow
}

// checkStop evaluates every asynchronous stop source — context
// cancellation, wall-clock deadline, and the Interrupt callback — and
// returns the matching stop cause, or nil to keep searching.
func (s *Solver) checkStop() error {
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			if errors.Is(s.ctx.Err(), context.DeadlineExceeded) {
				return ErrDeadline
			}
			return ErrCanceled
		default:
		}
	}
	if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
		return ErrDeadline
	}
	if s.opts.Interrupt != nil && s.opts.Interrupt() {
		return ErrInterrupted
	}
	return nil
}

// search runs until a result, a restart limit, or a budget boundary.
func (s *Solver) search(conflictLimit int64) Status {
	conflictsHere := int64(0)
	for {
		conflict := s.propagate()
		if s.budget != nil {
			// A stride poll inside BCP raised a stop cause.
			s.cancelUntil(0)
			return Unknown
		}
		if conflict != crefUndef {
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, backLvl, glue := s.analyze(conflict)
			s.cancelUntil(backLvl)
			s.install(learnt, glue)
			s.decayVar()
			s.decayClause()
			if t := s.opts.Tracer; t != nil || s.opts.Progress != nil {
				s.winGlue += int64(glue)
				if s.stats.Conflicts >= s.nextWindow {
					s.traceWindow(t)
				}
			}
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				s.budget = ErrConflictBudget
				s.cancelUntil(0)
				return Unknown
			}
			if err := s.checkStop(); err != nil {
				s.budget = err
				s.cancelUntil(0)
				return Unknown
			}
			if s.stats.Conflicts >= s.reduceLimit {
				s.reduce()
			}
			continue
		}
		if s.opts.MaxPropagations > 0 && s.stats.Propagations >= s.opts.MaxPropagations {
			s.budget = ErrPropagationBudget
			s.cancelUntil(0)
			return Unknown
		}
		if conflictsHere >= conflictLimit {
			s.cancelUntil(0)
			return Unknown // restart
		}
		// Decision.
		v := s.pickBranchVar()
		if v < 0 {
			s.extractModel()
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(mkLit(v, !s.phase[v]), crefUndef)
	}
}

// pickBranchVar pops the highest-activity unassigned variable, or -1 when
// all variables are assigned.
func (s *Solver) pickBranchVar() int {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// install copies a learned clause into the arena, attaches it, enqueues its
// asserting literal, and updates statistics. learnt[0] is the asserting
// literal; the slice is a reusable scratch buffer, so the copy into the
// arena is what keeps the clause alive.
func (s *Solver) install(learnt []lit, glue int) {
	s.stats.Learned++
	if s.opts.Proof != nil {
		s.opts.Proof.AddClause(toCNFSlice(learnt))
	}
	if s.opts.Export != nil {
		s.exportLearnt(learnt, glue)
	}
	switch len(learnt) {
	case 1:
		s.stats.UnitsLearned++
		s.enqueue(learnt[0], crefUndef)
		return
	case 2:
		s.stats.BinariesLearned++
	}
	c := s.allocClause(learnt, true, glue, s.clsInc)
	s.learned = append(s.learned, c)
	s.attach(c)
	s.enqueue(learnt[0], c)
}

// extractModel snapshots the current full assignment as a cnf.Assignment
// over the user-visible variables. Activation variables introduced by Push
// are internal bookkeeping and never appear in the model.
func (s *Solver) extractModel() {
	if s.i2u == nil {
		s.model = cnf.NewAssignment(s.numVars)
		for v := 0; v < s.numVars; v++ {
			s.model[v+1] = s.assign[v] == lTrue
		}
		return
	}
	s.model = cnf.NewAssignment(s.uvars)
	for iv, u := range s.i2u {
		if u >= 0 {
			s.model[u+1] = s.assign[iv] == lTrue
		}
	}
}

// BudgetExhausted reports whether the last Solve returned Unknown because a
// resource budget expired, and which one.
func (s *Solver) BudgetExhausted() error { return s.budget }

// luby computes the Luby restart sequence value luby(y, i) following the
// standard recursive characterization.
func luby(y float64, x int64) int64 {
	var size, seq int64 = 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x = x % size
	}
	return int64(math.Pow(y, float64(seq)))
}
