package solver

import (
	"sort"

	"neuroselect/internal/cnf"
)

// lit is the solver-internal literal encoding: variable v (0-based) with
// polarity bit in the LSB. Positive literal of v is v<<1, negative v<<1|1.
type lit uint32

const litUndef lit = ^lit(0)

func mkLit(v int, neg bool) lit {
	l := lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// v returns the 0-based variable of the literal.
func (l lit) v() int { return int(l >> 1) }

// neg reports whether the literal is negated.
func (l lit) neg() bool { return l&1 == 1 }

// not returns the complementary literal.
func (l lit) not() lit { return l ^ 1 }

// fromCNF converts a DIMACS-style literal (1-based, signed) to internal form.
func fromCNF(l cnf.Lit) lit { return mkLit(l.Var()-1, l < 0) }

// toCNF converts an internal literal back to DIMACS form.
func toCNF(l lit) cnf.Lit {
	c := cnf.Lit(l.v() + 1)
	if l.neg() {
		c = -c
	}
	return c
}

// toCNFSlice converts a slice of internal literals to DIMACS form.
func toCNFSlice(lits []lit) []cnf.Lit {
	out := make([]cnf.Lit, len(lits))
	for i, l := range lits {
		out[i] = toCNF(l)
	}
	return out
}

// sortLits sorts internal literals ascending — (variable, positive-first)
// order, matching cnf.Clause.Normalize. Small clauses (the vast majority)
// use an allocation-free insertion sort; long ones fall back to the
// library sort.
func sortLits(ls []lit) {
	if len(ls) <= 64 {
		for i := 1; i < len(ls); i++ {
			x := ls[i]
			j := i - 1
			for j >= 0 && ls[j] > x {
				ls[j+1] = ls[j]
				j--
			}
			ls[j+1] = x
		}
		return
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}

// lbool is a three-valued truth value.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// valueOf computes the lbool of literal l given the variable's assignment a.
func valueOf(l lit, a lbool) lbool {
	if a == lUndef {
		return lUndef
	}
	if l.neg() {
		return -a
	}
	return a
}
