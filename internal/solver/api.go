package solver

import (
	"fmt"

	"neuroselect/internal/cnf"
)

// Result bundles the outcome of a one-shot solve.
type Result struct {
	Status Status
	Model  cnf.Assignment // valid when Status == Sat
	Stats  Stats
}

// Solve builds a solver for the formula with the given options, runs it to
// completion (or budget), and returns the result.
func Solve(f *cnf.Formula, opts Options) (Result, error) {
	s, err := New(f, opts)
	if err != nil {
		return Result{}, err
	}
	st := s.Solve()
	res := Result{Status: st, Stats: s.Stats()}
	if st == Sat {
		res.Model = s.Model()
		if !res.Model.Satisfies(f) {
			return res, fmt.Errorf("solver: internal error: model does not satisfy formula")
		}
	}
	return res, nil
}

// SolveAssuming solves the formula under the given assumption literals by
// conjoining them as unit clauses. It is a one-shot convenience for
// incremental-style queries such as equivalence checking.
func SolveAssuming(f *cnf.Formula, assumptions []cnf.Lit, opts Options) (Result, error) {
	g := f.Clone()
	for _, a := range assumptions {
		if err := g.AddClause(a); err != nil {
			return Result{}, err
		}
	}
	return Solve(g, opts)
}
