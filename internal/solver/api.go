package solver

import (
	"context"
	"fmt"
	"time"

	"neuroselect/internal/cnf"
)

// Result bundles the outcome of a one-shot solve.
type Result struct {
	Status Status
	Model  cnf.Assignment // valid when Status == Sat
	Stats  Stats
	// Stop records why an Unknown search stopped: ErrConflictBudget,
	// ErrPropagationBudget, ErrDeadline, ErrCanceled, ErrInterrupted, or
	// a recovered panic wrapping ErrSolvePanic. Nil for decided results.
	Stop error
}

// Solve builds a solver for the formula with the given options, runs it to
// completion (or budget), and returns the result.
func Solve(f *cnf.Formula, opts Options) (Result, error) {
	return SolveContext(context.Background(), f, opts)
}

// SolveContext is Solve under a context. Cancellation and deadlines (the
// context's or Options.Deadline, whichever is earlier) abort the search
// with Unknown within a bounded number of propagations
// (Options.InterruptEvery), and Result.Stop identifies the cause. A panic
// during the search — e.g. an injected fault or an internal invariant
// failure — is recovered and converted into an error-carrying Unknown
// result instead of crashing the caller.
func SolveContext(ctx context.Context, f *cnf.Formula, opts Options) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			stop := fmt.Errorf("%w: %v", ErrSolvePanic, r)
			res = Result{Status: Unknown, Stop: stop}
			err = stop
		}
	}()
	if opts.Deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			opts.Deadline = d
		}
	}
	s, err := New(f, opts)
	if err != nil {
		return Result{}, err
	}
	st := s.SolveContext(ctx)
	res = Result{Status: st, Stats: s.Stats(), Stop: s.BudgetExhausted()}
	if st == Sat {
		res.Model = s.Model()
		if !res.Model.Satisfies(f) {
			return res, fmt.Errorf("solver: internal error: model does not satisfy formula")
		}
	}
	return res, nil
}

// SolveWithTimeout is SolveContext with a fresh deadline of now+timeout
// (no bound when timeout <= 0).
func SolveWithTimeout(f *cnf.Formula, opts Options, timeout time.Duration) (Result, error) {
	if timeout > 0 {
		opts.Deadline = time.Now().Add(timeout)
	}
	return SolveContext(context.Background(), f, opts)
}

// SolveAssuming solves the formula under the given assumption literals by
// conjoining them as unit clauses. It is a one-shot convenience for
// incremental-style queries such as equivalence checking.
func SolveAssuming(f *cnf.Formula, assumptions []cnf.Lit, opts Options) (Result, error) {
	g := f.Clone()
	for _, a := range assumptions {
		if err := g.AddClause(a); err != nil {
			return Result{}, err
		}
	}
	return Solve(g, opts)
}
