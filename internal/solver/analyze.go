package solver

// analyze derives a first-UIP learned clause from the conflict, minimizes
// it, and returns the clause (asserting literal first), the backjump level,
// and the clause's glue (LBD). It bumps variable and clause activities and
// refreshes the glue of learned reason clauses it traverses (Glucose-style
// glue improvement).
func (s *Solver) analyze(conflict *clause) (learnt []lit, backLvl int, glue int) {
	learnt = append(learnt, litUndef) // placeholder for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p lit = litUndef
	c := conflict
	curLvl := int32(s.decisionLevel())

	for {
		if c.learned {
			s.bumpClause(c)
			if g := s.computeGlue(c.lits); g < int(c.glue) {
				c.glue = int32(g)
			}
		}
		start := 0
		if p != litUndef {
			start = 1 // skip the asserting position; c.lits[0] == p
		}
		for j := start; j < len(c.lits); j++ {
			q := c.lits[j]
			v := q.v()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLvl {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail that participated.
		for !s.seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.v()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
		// Reasons must exist for propagated literals above the first UIP.
		if c == nil {
			panic("solver: missing reason during conflict analysis")
		}
		if c.lits[0] != p {
			// Normalize so the propagated literal is first.
			for k := 1; k < len(c.lits); k++ {
				if c.lits[k] == p {
					c.lits[0], c.lits[k] = c.lits[k], c.lits[0]
					break
				}
			}
		}
	}
	learnt[0] = p.not()

	// Mark the remaining learnt literals as seen for minimization.
	for _, l := range learnt[1:] {
		s.seen[l.v()] = true
	}
	learnt = s.minimize(learnt)

	// Clear seen flags.
	for _, l := range learnt {
		s.seen[l.v()] = false
	}

	// Find the backjump level: the highest level among learnt[1:].
	backLvl = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].v()] > s.level[learnt[maxI].v()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		backLvl = int(s.level[learnt[1].v()])
	}
	glue = s.computeGlue(learnt)
	return learnt, backLvl, glue
}

// computeGlue counts distinct nonzero decision levels among the literals
// (the LBD measure).
func (s *Solver) computeGlue(lits []lit) int {
	s.analyzeCt++
	g := 0
	for _, l := range lits {
		lvl := s.level[l.v()]
		if lvl == 0 {
			continue
		}
		if s.analyzeTS[lvl%int32(len(s.analyzeTS))] != s.analyzeCt {
			s.analyzeTS[lvl%int32(len(s.analyzeTS))] = s.analyzeCt
			g++
		}
	}
	return g
}

// minimize removes literals from the learnt clause that are implied by the
// remainder (recursive reason-side subsumption, as in MiniSat's deep
// minimization). The seen flags of all learnt literals must be set on entry
// and remain set for the surviving literals on exit.
func (s *Solver) minimize(learnt []lit) []lit {
	out := learnt[:1]
	var extra []int // vars speculatively marked by litRedundant, to clear
	for _, l := range learnt[1:] {
		if s.reason[l.v()] == nil {
			out = append(out, l)
			continue
		}
		red, marked := s.litRedundant(l)
		if red {
			extra = append(extra, marked...)
			s.seen[l.v()] = false
			s.stats.MinimizedLits++
		} else {
			out = append(out, l)
		}
	}
	for _, v := range extra {
		s.seen[v] = false
	}
	return out
}

// litRedundant reports whether literal l is implied by the seen literals,
// walking the implication graph through reasons with an explicit stack. On
// success it returns the variables it speculatively marked (the caller
// clears them after the whole minimization pass, so they memoize across
// calls); on failure it undoes its marks itself and returns nil.
func (s *Solver) litRedundant(l lit) (bool, []int) {
	type frame struct {
		c *clause
		i int
	}
	var stack []frame
	var marked []int // speculatively marked variables for rollback
	c := s.reason[l.v()]
	i := 0
	for {
		if i == len(c.lits) {
			if len(stack) == 0 {
				return true, marked
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c, i = top.c, top.i
			continue
		}
		q := c.lits[i]
		i++
		v := q.v()
		if s.seen[v] || s.level[v] == 0 {
			continue
		}
		r := s.reason[v]
		if r == nil {
			// Reached a decision not in the clause: not redundant; undo.
			for _, mv := range marked {
				s.seen[mv] = false
			}
			return false, nil
		}
		s.seen[v] = true
		marked = append(marked, v)
		stack = append(stack, frame{c, i})
		c, i = r, 0
	}
}
