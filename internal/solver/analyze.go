package solver

// analyze derives a first-UIP learned clause from the conflict, minimizes
// it, and returns the clause (asserting literal first), the backjump level,
// and the clause's glue (LBD). It bumps variable and clause activities and
// refreshes the glue of learned reason clauses it traverses (Glucose-style
// glue improvement).
//
// The returned slice aliases a scratch buffer owned by the solver; it is
// valid until the next analyze call. install copies it into the arena, so
// steady-state conflict analysis performs no allocations.
func (s *Solver) analyze(conflict cref) (learnt []lit, backLvl int, glue int) {
	learnt = append(s.learntBuf[:0], litUndef) // placeholder for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p lit = litUndef
	c := conflict
	curLvl := int32(s.decisionLevel())

	for {
		cls := s.clauseLits(c)
		if s.clauseLearned(c) {
			s.bumpClause(c)
			if g := s.computeGlue(cls); g < s.clauseGlue(c) {
				s.setClauseGlue(c, g)
			}
		}
		start := 0
		if p != litUndef {
			start = 1 // skip the asserting position; cls[0] == p
		}
		for j := start; j < len(cls); j++ {
			q := cls[j]
			v := q.v()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLvl {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail that participated.
		for !s.seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.v()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
		// Reasons must exist for propagated literals above the first UIP.
		if c == crefUndef {
			panic("solver: missing reason during conflict analysis")
		}
		cls = s.clauseLits(c)
		if cls[0] != p {
			// Normalize so the propagated literal is first. Binary reasons
			// propagated through the inlined watch path arrive unnormalized;
			// this write puts the arena in the same state the pre-arena
			// solver reached eagerly at propagation time.
			for k := 1; k < len(cls); k++ {
				if cls[k] == p {
					cls[0], cls[k] = cls[k], cls[0]
					break
				}
			}
		}
	}
	learnt[0] = p.not()

	// Mark the remaining learnt literals as seen for minimization.
	for _, l := range learnt[1:] {
		s.seen[l.v()] = true
	}
	learnt = s.minimize(learnt)

	// Clear seen flags.
	for _, l := range learnt {
		s.seen[l.v()] = false
	}

	// Find the backjump level: the highest level among learnt[1:].
	backLvl = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].v()] > s.level[learnt[maxI].v()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		backLvl = int(s.level[learnt[1].v()])
	}
	glue = s.computeGlue(learnt)
	s.learntBuf = learnt // keep the (possibly grown) buffer for reuse
	return learnt, backLvl, glue
}

// computeGlue counts distinct nonzero decision levels among the literals
// (the LBD measure).
func (s *Solver) computeGlue(lits []lit) int {
	s.analyzeCt++
	g := 0
	for _, l := range lits {
		lvl := s.level[l.v()]
		if lvl == 0 {
			continue
		}
		if s.analyzeTS[lvl%int32(len(s.analyzeTS))] != s.analyzeCt {
			s.analyzeTS[lvl%int32(len(s.analyzeTS))] = s.analyzeCt
			g++
		}
	}
	return g
}

// minimize removes literals from the learnt clause that are implied by the
// remainder (recursive reason-side subsumption, as in MiniSat's deep
// minimization). The seen flags of all learnt literals must be set on entry
// and remain set for the surviving literals on exit.
func (s *Solver) minimize(learnt []lit) []lit {
	out := learnt[:1]
	extra := s.minimizeExt[:0] // vars speculatively marked by litRedundant, to clear
	for _, l := range learnt[1:] {
		if s.reason[l.v()] == crefUndef {
			out = append(out, l)
			continue
		}
		red, marked := s.litRedundant(l)
		if red {
			extra = append(extra, marked...)
			s.seen[l.v()] = false
			s.stats.MinimizedLits++
		} else {
			out = append(out, l)
		}
	}
	for _, v := range extra {
		s.seen[v] = false
	}
	s.minimizeExt = extra
	return out
}

// redFrame is a litRedundant DFS frame: a reason clause and the index of
// the next literal to examine in it.
type redFrame struct {
	c cref
	i int
}

// litRedundant reports whether literal l is implied by the seen literals,
// walking the implication graph through reasons with an explicit stack. On
// success it returns the variables it speculatively marked (the caller
// clears them after the whole minimization pass, so they memoize across
// calls); on failure it undoes its marks itself and returns nil. The stack
// and mark buffers are solver-owned scratch, reused across calls.
func (s *Solver) litRedundant(l lit) (bool, []int) {
	stack := s.redStack[:0]
	marked := s.redMarked[:0] // speculatively marked variables for rollback
	c := s.reason[l.v()]
	cls := s.clauseLits(c)
	i := 0
	for {
		if i == len(cls) {
			if len(stack) == 0 {
				s.redStack, s.redMarked = stack, marked
				return true, marked
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c, i = top.c, top.i
			cls = s.clauseLits(c)
			continue
		}
		q := cls[i]
		i++
		v := q.v()
		if s.seen[v] || s.level[v] == 0 {
			continue
		}
		r := s.reason[v]
		if r == crefUndef {
			// Reached a decision not in the clause: not redundant; undo.
			for _, mv := range marked {
				s.seen[mv] = false
			}
			s.redStack, s.redMarked = stack, marked
			return false, nil
		}
		s.seen[v] = true
		marked = append(marked, v)
		stack = append(stack, redFrame{c, i})
		c, i = r, 0
		cls = s.clauseLits(c)
	}
}
