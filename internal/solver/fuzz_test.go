package solver

import (
	"testing"

	"neuroselect/internal/cnf"
)

// FuzzSolverAgainstBruteForce decodes the fuzz input as a small CNF and
// cross-checks the CDCL result against exhaustive search. Encoding: each
// byte is one literal over 6 variables (bit 7 unused; 0 terminates a
// clause; value%13==0 also terminates to diversify shapes).
func FuzzSolverAgainstBruteForce(f *testing.F) {
	f.Add([]byte{1, 2, 0, 131, 3, 0})
	f.Add([]byte{1, 0, 129, 0})
	f.Add([]byte{5, 6, 7, 0, 133, 134, 135, 0, 1, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const nVars = 6
		form := cnf.New(nVars)
		var cur []cnf.Lit
		for _, b := range raw {
			if b == 0 {
				if len(cur) > 0 {
					form.MustAddClause(cur...)
					cur = nil
				}
				continue
			}
			v := int(b&0x7f)%nVars + 1
			l := cnf.Lit(v)
			if b&0x80 != 0 {
				l = -l
			}
			cur = append(cur, l)
		}
		if len(cur) > 0 {
			form.MustAddClause(cur...)
		}
		if len(form.Clauses) == 0 {
			return
		}
		want := bruteForce(form)
		res, err := Solve(form, Options{ReduceFirst: 10, ReduceInc: 5})
		if err != nil {
			t.Fatalf("solve error: %v", err)
		}
		if res.Status == Unknown {
			t.Fatal("no budget set; Unknown impossible")
		}
		if (res.Status == Sat) != want {
			t.Fatalf("solver %v, brute force %v for %s", res.Status, want, cnf.DIMACSString(form))
		}
		if res.Status == Sat && !res.Model.Satisfies(form) {
			t.Fatal("model does not satisfy")
		}
	})
}
