package solver

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// The tables below pin the exact search trajectory of the solver on a
// fixed-seed instance suite. The values were recorded from the pre-arena
// pointer-based solver (commit 16826a9), so they prove the arena refactor
// — cref clause storage, inlined binary watches, mark-and-compact GC, and
// scratch-buffer reuse — is search-neutral: not one decision, propagation,
// conflict, or learned clause differs. Any future change that shifts these
// numbers is changing search behavior, not just representation, and must
// update the table deliberately.

// goldenOptions is the option set the trajectories were recorded under.
func goldenOptions(p deletion.Policy) Options {
	return Options{Policy: p, ReduceFirst: 50, ReduceInc: 25}
}

func goldenInstances() []gen.Instance {
	return []gen.Instance{
		gen.RandomKSAT(100, 426, 3, 11),
		gen.RandomKSAT(120, 511, 3, 7),
		gen.RandomKSAT(150, 600, 3, 5),
		gen.Pigeonhole(7),
		gen.Tseitin(16, 3, false, 4),
		gen.Tseitin(16, 3, true, 8),
		gen.GraphColoring(20, 50, 3, 9),
		gen.ParityChain(14, 9, 5, false, 3),
		gen.Miter(8, 60, false, 2),
		gen.Miter(8, 60, true, 6),
		gen.NQueens(8),
	}
}

var goldenTrajectories = []struct {
	name, policy, status                     string
	dec, prop, conf, rest, red, learned, del int64
	units, bins, minlits                     int64
	maxTrail                                 int
}{
	{"rand3sat-n100-m426-s11", "default", "UNSAT", 852, 21305, 693, 4, 6, 692, 397, 5, 19, 1415, 94},
	{"rand3sat-n100-m426-s11", "frequency", "UNSAT", 845, 21298, 690, 4, 6, 689, 398, 5, 20, 1403, 94},
	{"rand3sat-n120-m511-s7", "default", "UNSAT", 888, 23675, 743, 4, 6, 742, 414, 6, 19, 1357, 98},
	{"rand3sat-n120-m511-s7", "frequency", "UNSAT", 828, 22306, 683, 4, 6, 682, 395, 2, 17, 1440, 98},
	{"rand3sat-n150-m600-s5", "default", "SAT", 203, 5165, 139, 1, 2, 139, 64, 0, 0, 307, 150},
	{"rand3sat-n150-m600-s5", "frequency", "SAT", 203, 5165, 139, 1, 2, 139, 64, 0, 0, 307, 150},
	{"php-7", "default", "UNSAT", 8735, 121190, 7210, 29, 22, 7209, 6180, 4, 13, 21815, 56},
	{"php-7", "frequency", "UNSAT", 9273, 131322, 7752, 29, 23, 7751, 6766, 6, 9, 23813, 56},
	{"tseitin-unsat-v16-d3-s4", "default", "UNSAT", 91, 681, 81, 0, 1, 80, 13, 3, 9, 35, 24},
	{"tseitin-unsat-v16-d3-s4", "frequency", "UNSAT", 91, 681, 81, 0, 1, 80, 13, 3, 9, 35, 24},
	{"tseitin-sat-v16-d3-s8", "default", "SAT", 30, 119, 16, 0, 0, 16, 0, 0, 0, 0, 24},
	{"tseitin-sat-v16-d3-s8", "frequency", "SAT", 30, 119, 16, 0, 0, 16, 0, 0, 0, 0, 24},
	{"color-v20-e50-k3-s9", "default", "UNSAT", 10, 168, 8, 0, 0, 7, 0, 6, 0, 0, 39},
	{"color-v20-e50-k3-s9", "frequency", "UNSAT", 10, 168, 8, 0, 0, 7, 0, 6, 0, 0, 39},
	{"parity-unsat-n14-c9-w5-s3", "default", "UNSAT", 26, 90, 25, 0, 0, 24, 0, 4, 6, 6, 14},
	{"parity-unsat-n14-c9-w5-s3", "frequency", "UNSAT", 26, 90, 25, 0, 0, 24, 0, 4, 6, 6, 14},
	{"miter-equiv-i8-g60-s2", "default", "UNSAT", 28, 573, 20, 0, 0, 19, 0, 5, 7, 6, 114},
	{"miter-equiv-i8-g60-s2", "frequency", "UNSAT", 28, 573, 20, 0, 0, 19, 0, 5, 7, 6, 114},
	{"miter-faulty-i8-g60-s6", "default", "UNSAT", 11, 465, 9, 0, 0, 8, 0, 3, 3, 4, 98},
	{"miter-faulty-i8-g60-s6", "frequency", "UNSAT", 11, 465, 9, 0, 0, 8, 0, 3, 3, 4, 98},
	{"queens-8", "default", "SAT", 47, 390, 20, 0, 0, 20, 0, 0, 0, 8, 64},
	{"queens-8", "frequency", "SAT", 47, 390, 20, 0, 0, 20, 0, 0, 0, 8, 64},
}

// TestSearchTrajectoryGolden replays the fixed-seed suite under both
// deletion policies and demands the recorded pre-arena trajectory, stat
// for stat.
func TestSearchTrajectoryGolden(t *testing.T) {
	insts := map[string]gen.Instance{}
	for _, in := range goldenInstances() {
		insts[in.Name] = in
	}
	policies := map[string]deletion.Policy{
		"default":   deletion.DefaultPolicy{},
		"frequency": deletion.FrequencyPolicy{},
	}
	for _, g := range goldenTrajectories {
		g := g
		t.Run(g.name+"/"+g.policy, func(t *testing.T) {
			in, ok := insts[g.name]
			if !ok {
				t.Fatalf("golden instance %q missing from goldenInstances", g.name)
			}
			res, err := Solve(in.F, goldenOptions(policies[g.policy]))
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if res.Status.String() != g.status {
				t.Fatalf("status %v, golden %s", res.Status, g.status)
			}
			got := []int64{st.Decisions, st.Propagations, st.Conflicts, st.Restarts,
				st.Reductions, st.Learned, st.Deleted, st.UnitsLearned,
				st.BinariesLearned, st.MinimizedLits, int64(st.MaxTrail)}
			want := []int64{g.dec, g.prop, g.conf, g.rest, g.red, g.learned, g.del,
				g.units, g.bins, g.minlits, int64(g.maxTrail)}
			labels := []string{"decisions", "propagations", "conflicts", "restarts",
				"reductions", "learned", "deleted", "units", "binaries",
				"minimized", "maxtrail"}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s = %d, golden %d", labels[i], got[i], want[i])
				}
			}
		})
	}
}

// propFreqHash is FNV-1a over the cumulative propagation-frequency vector.
func propFreqHash(freqs []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, f := range freqs {
		for i := 0; i < 8; i++ {
			h ^= (f >> (8 * uint(i))) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// TestPropagationFrequencyGolden pins the full per-variable propagation-
// frequency distribution (the Figure 3 / Eq. 2 input) against hashes
// recorded from the pre-arena solver: the inlined binary-propagation path
// must count f_v and MaxTrail exactly like the generic path it replaced.
func TestPropagationFrequencyGolden(t *testing.T) {
	golden := []struct {
		inst     gen.Instance
		hash     uint64
		maxTrail int
	}{
		{gen.RandomKSAT(120, 511, 3, 7), 0xed3238ec7e4c5b3e, 98},
		{gen.Pigeonhole(7), 0xe858afccf4296957, 56},
		{gen.ParityChain(14, 9, 5, false, 3), 0xe11e4ac2f489b9d7, 14},
	}
	for _, g := range golden {
		s, err := New(g.inst.F, goldenOptions(nil))
		if err != nil {
			t.Fatal(err)
		}
		s.Solve()
		if h := propFreqHash(s.PropagationFrequencies()); h != g.hash {
			t.Errorf("%s: propFreq hash %#x, golden %#x", g.inst.Name, h, g.hash)
		}
		if mt := s.Stats().MaxTrail; mt != g.maxTrail {
			t.Errorf("%s: MaxTrail %d, golden %d", g.inst.Name, mt, g.maxTrail)
		}
	}
}

// TestBinaryWatchSpecializationNeutral runs the same fixed-seed instances
// with the inlined binary-clause watch path enabled and disabled and
// demands identical stats and identical per-variable propagation counts:
// the specialization is a pure representation change, invisible to Eq. 2's
// f_v ranking and every other counter.
func TestBinaryWatchSpecializationNeutral(t *testing.T) {
	for _, in := range goldenInstances() {
		for _, p := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
			fast, err := New(in.F, goldenOptions(p))
			if err != nil {
				t.Fatal(err)
			}
			slowOpts := goldenOptions(p)
			slowOpts.disableBinaryWatch = true
			slow, err := New(in.F, slowOpts)
			if err != nil {
				t.Fatal(err)
			}
			stFast, stSlow := fast.Solve(), slow.Solve()
			if stFast != stSlow {
				t.Fatalf("%s/%s: status %v (inlined) vs %v (generic)", in.Name, p.Name(), stFast, stSlow)
			}
			if fast.Stats() != slow.Stats() {
				t.Fatalf("%s/%s: stats diverge\ninlined: %+v\ngeneric: %+v",
					in.Name, p.Name(), fast.Stats(), slow.Stats())
			}
			ff, sf := fast.PropagationFrequencies(), slow.PropagationFrequencies()
			for v := range ff {
				if ff[v] != sf[v] {
					t.Fatalf("%s/%s: propFreq[%d] = %d (inlined) vs %d (generic)",
						in.Name, p.Name(), v, ff[v], sf[v])
				}
			}
		}
	}
}

// TestSteadyStateAllocationFree verifies that the search itself stays out
// of the allocator: conflict analysis, clause learning, database
// reduction, and assumption-core extraction all run on the arena and
// solver-owned scratch buffers.
func TestSteadyStateAllocationFree(t *testing.T) {
	// A full cold solve of php-7 drives ~7k conflicts and ~22 reductions;
	// everything AllocsPerRun sees is construction plus amortized
	// watch-list/arena doubling, which grows logarithmically, not per
	// conflict. The pre-arena solver allocated ~2 per conflict on this
	// instance (≈14.5k per run); the bound of 0.2 per conflict fails if
	// any per-conflict or per-reduction allocation sneaks back into the
	// hot path.
	t.Run("cold-solve", func(t *testing.T) {
		inst := gen.Pigeonhole(7)
		var conflicts int64
		allocs := testing.AllocsPerRun(3, func() {
			s, err := New(inst.F, goldenOptions(nil))
			if err != nil {
				t.Fatal(err)
			}
			if s.Solve() != Unsat {
				t.Fatal("php-7 must be UNSAT")
			}
			conflicts = s.Stats().Conflicts
		})
		if conflicts < 5000 {
			t.Fatalf("instance too easy to exercise steady state: %d conflicts", conflicts)
		}
		if limit := float64(conflicts) / 5; allocs > limit {
			t.Errorf("%v allocs for %d conflicts; want ≤ %v (search must not allocate per conflict)",
				allocs, conflicts, limit)
		}
	})

	// Assumption solving must be just as clean: both failed-assumption
	// analyses (analyzeFinal for a conflict inside the prefix,
	// coreOfFalsified for an assumption contradicted by prefix
	// propagation) used to allocate a map plus two slices per call; they
	// now run on solver-owned scratch, so repeated UNSAT-with-core solves
	// on a warm solver perform zero allocations. (The SAT path is excluded
	// deliberately: extracting a model snapshot allocates by design.)
	t.Run("assumption-cores", func(t *testing.T) {
		const n = 60
		chainConflict := cnf.New(n)
		chainFree := cnf.New(n)
		for i := 1; i < n; i++ {
			chainConflict.MustAddClause(-cnf.Lit(i), cnf.Lit(i+1))
			chainFree.MustAddClause(-cnf.Lit(i), cnf.Lit(i+1))
		}
		chainConflict.MustAddClause(-cnf.Lit(n-1), -cnf.Lit(n))
		sFinal, err := New(chainConflict, goldenOptions(nil))
		if err != nil {
			t.Fatal(err)
		}
		sFalsified, err := New(chainFree, goldenOptions(nil))
		if err != nil {
			t.Fatal(err)
		}
		aFinal := []cnf.Lit{1}         // chain propagates into the conflict clause → analyzeFinal
		aFalsified := []cnf.Lit{1, -n} // chain forces x_n true → coreOfFalsified on ¬x_n
		allocs := testing.AllocsPerRun(10, func() {
			if st, core := sFinal.SolveUnderAssumptions(aFinal); st != Unsat || len(core) != 1 {
				t.Fatalf("analyzeFinal query: %v, core %v", st, core)
			}
			if st, core := sFalsified.SolveUnderAssumptions(aFalsified); st != Unsat || len(core) != 2 {
				t.Fatalf("coreOfFalsified query: %v, core %v", st, core)
			}
		})
		if allocs > 0 {
			t.Errorf("%v allocs per warm assumption solve; want 0", allocs)
		}
	})
}
