package solver

// Clause sharing: the solver-side half of the parallel portfolio's clause
// exchange (internal/portfolio). The solver stays single-threaded — both
// hooks run on the solving goroutine. Export fires synchronously from the
// learn path for every learned clause; Import is drained only at restart
// boundaries, when the trail is at decision level zero, so an imported
// clause can be installed with a plain attach (no backtracking, no
// asserting literal). Any cross-goroutine queueing, filtering, and
// synchronization is the hook implementor's problem.

import "neuroselect/internal/cnf"

// SharedClause is one learned clause in transit between solvers: DIMACS
// literals plus the glue (LBD) it was learned with, which the importer
// preserves so the receiving deletion policy ranks the foreigner exactly
// as the exporter did.
type SharedClause struct {
	Lits []cnf.Lit
	Glue int
}

// ExtendBudget raises (or lifts, with 0) the conflict and propagation
// budgets and clears the budget-exhausted latch, so a solver that returned
// Unknown on a budget can be resumed with another SolveContext call. The
// search picks up where it stopped: the clause database, activities, saved
// phases, and the Luby restart cursor all carry over. Budgets are absolute
// (compared against cumulative Stats counters), not increments.
func (s *Solver) ExtendBudget(maxConflicts, maxPropagations int64) {
	s.opts.MaxConflicts = maxConflicts
	s.opts.MaxPropagations = maxPropagations
	s.budget = nil
}

// importShared drains the Import hook and installs the batch. It must run
// at decision level zero. It reports false when an imported clause proved
// the formula unsatisfiable (s.ok is already false then).
func (s *Solver) importShared() bool {
	for _, sc := range s.opts.Import() {
		if !s.importClause(sc) {
			return false
		}
	}
	return true
}

// importClause installs one foreign learned clause at decision level zero,
// mirroring addClause's normalization (sort, dedupe, tautology and
// satisfied-at-top skip, strip false-at-top literals) but allocating the
// survivor as a learned clause under its carried glue. Degenerate cases:
// an empty import proves UNSAT; a unit import is enqueued and propagated
// immediately. Returns false once the solver is in the unsatisfiable state.
func (s *Solver) importClause(sc SharedClause) bool {
	if !s.ok {
		return false
	}
	buf := s.addBuf[:0]
	for _, l := range sc.Lits {
		if v := l.Var(); v < 1 || v > s.numVars {
			return true // foreign variable: not our formula, drop it
		}
		buf = append(buf, fromCNF(l))
	}
	s.addBuf = buf
	sortLits(buf)
	norm := buf[:0]
	prev := litUndef
	for _, il := range buf {
		if il == prev {
			continue
		}
		if il == prev.not() {
			return true // tautology
		}
		prev = il
		norm = append(norm, il)
	}
	// At level zero every assigned variable has level zero, so a true
	// literal satisfies the clause permanently and a false one is dead.
	lits := norm[:0]
	for _, il := range norm {
		switch s.value(il) {
		case lTrue:
			return true
		case lFalse:
			continue
		default:
			lits = append(lits, il)
		}
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.stats.Imported++
		if !s.enqueue(lits[0], crefUndef) {
			s.ok = false
			return false
		}
		if conflict := s.propagate(); conflict != crefUndef {
			s.ok = false
			return false
		}
		return true
	}
	if len(lits) > maxClauseSize {
		return true
	}
	glue := sc.Glue
	if glue < 1 {
		glue = 1
	}
	if glue > len(lits) {
		glue = len(lits)
	}
	c := s.allocClause(lits, true, glue, s.clsInc)
	s.learned = append(s.learned, c)
	s.attach(c)
	s.stats.Imported++
	return true
}

// exportLearnt hands a just-learned clause to the Export hook through the
// solver-owned scratch buffer (steady-state allocation-free once grown).
// The slice is valid only for the duration of the call.
func (s *Solver) exportLearnt(learnt []lit, glue int) {
	buf := s.exportBuf[:0]
	for _, l := range learnt {
		buf = append(buf, toCNF(l))
	}
	s.exportBuf = buf
	s.opts.Export(buf, glue)
}
