package solver

import (
	"neuroselect/internal/cnf"
)

// SolveUnderAssumptions runs the CDCL search with the given literals fixed
// as pseudo-decisions (MiniSat's incremental interface). On Unsat it also
// returns the subset of assumptions the refutation actually used (the
// "failed assumptions" / unsat core over assumptions); the solver remains
// usable for further calls with different assumptions.
//
// Open Push frames participate transparently: their activation literals
// are assumed ahead of the caller's assumptions, and are filtered from
// the returned core, so an UNSAT answer that depends only on frame
// clauses reports an empty core. The returned core aliases solver-owned
// scratch and is valid until the next solve or AddClause call.
func (s *Solver) SolveUnderAssumptions(assumptions []cnf.Lit) (Status, []cnf.Lit) {
	if !s.ok {
		return Unsat, nil
	}
	s.cancelUntil(0)
	if conflict := s.propagate(); conflict != crefUndef {
		s.ok = false
		return Unsat, nil
	}
	internal := s.assumeBuf[:0]
	for _, t := range s.frames {
		internal = append(internal, mkLit(t, false))
	}
	for _, a := range assumptions {
		// Assumptions over unknown variables are trivially free.
		internal = append(internal, s.assumeLit(a))
	}
	s.assumeBuf = internal
	restarts := int64(0)
	for {
		limit := luby(2, restarts) * s.opts.RestartBase
		st, core := s.searchAssuming(internal, limit)
		if st != Unknown {
			s.cancelUntil(0)
			return st, core
		}
		if s.budget != nil {
			s.cancelUntil(0)
			return Unknown, nil
		}
		restarts++
		s.stats.Restarts++
	}
}

// searchAssuming is the assumption-aware search loop: before each free
// decision it first enqueues the next unassigned assumption at a fresh
// level; a conflict that backtracks into the assumption prefix triggers
// final-conflict analysis, producing the failed-assumption core.
func (s *Solver) searchAssuming(assumptions []lit, conflictLimit int64) (Status, []cnf.Lit) {
	conflictsHere := int64(0)
	for {
		conflict := s.propagate()
		if s.budget != nil {
			// A stride poll inside BCP raised a stop cause.
			return Unknown, nil
		}
		if conflict != crefUndef {
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat, nil
			}
			if s.decisionLevel() <= len(assumptions) {
				// The conflict depends only on assumptions: extract the
				// failed subset.
				return Unsat, s.analyzeFinal(conflict, assumptions)
			}
			learnt, backLvl, glue := s.analyze(conflict)
			// Never backtrack into the middle of the assumption prefix
			// with a clause asserting there; clamp to the prefix boundary
			// is handled naturally because analyze computes the correct
			// assertion level.
			s.cancelUntil(backLvl)
			s.install(learnt, glue)
			s.decayVar()
			s.decayClause()
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				s.budget = ErrConflictBudget
				return Unknown, nil
			}
			if err := s.checkStop(); err != nil {
				s.budget = err
				return Unknown, nil
			}
			if s.stats.Conflicts >= s.reduceLimit {
				s.reduce()
			}
			continue
		}
		if s.opts.MaxPropagations > 0 && s.stats.Propagations >= s.opts.MaxPropagations {
			s.budget = ErrPropagationBudget
			return Unknown, nil
		}
		if conflictsHere >= conflictLimit {
			// Restart. Keep the assumption prefix: its enqueues and the
			// propagation they trigger are identical every time, so
			// cancelling to the prefix boundary instead of level zero
			// saves re-propagating the prefix on every restart. (The
			// historical cancelUntil(0) behavior remains available under
			// the test-only disableAssumptionPrefixKeep option so the
			// saving stays measurable.)
			if s.opts.disableAssumptionPrefixKeep {
				s.cancelUntil(0)
			} else {
				s.cancelUntil(len(assumptions))
			}
			return Unknown, nil
		}
		// Enqueue pending assumptions before free decisions.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch {
			case a == litUndef || s.value(a) == lTrue:
				// Already satisfied (or a free variable): open an empty
				// level so level indexing stays aligned with the prefix.
				s.trailLim = append(s.trailLim, len(s.trail))
			case s.value(a) == lFalse:
				// Directly contradicted by propagation from earlier
				// assumptions: the core is the reason chain of ¬a.
				return Unsat, s.coreOfFalsified(a, assumptions)
			default:
				s.stats.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, crefUndef)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			s.extractModel()
			return Sat, nil
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(mkLit(v, !s.phase[v]), crefUndef)
	}
}

// reasonRest returns the non-implied literals of reason clause c, which
// propagated literal p. It first normalizes the clause so p sits at
// position 0 — binary reasons propagated through the inlined watch path
// arrive unnormalized, whereas the generic path normalizes at propagation
// time.
func (s *Solver) reasonRest(c cref, p lit) []lit {
	cls := s.clauseLits(c)
	if cls[0] != p {
		for k := 1; k < len(cls); k++ {
			if cls[k] == p {
				cls[0], cls[k] = cls[k], cls[0]
				break
			}
		}
	}
	return cls[1:]
}

// markAssumptions sets the per-literal assumption marks for the prefix
// (solver-owned scratch; unmarkAssumptions must run before returning).
func (s *Solver) markAssumptions(assumptions []lit) {
	if len(s.assumpMark) < 2*s.numVars {
		s.assumpMark = make([]bool, 2*s.numVars)
	}
	for _, a := range assumptions {
		if a != litUndef {
			s.assumpMark[a] = true
		}
	}
}

func (s *Solver) unmarkAssumptions(assumptions []lit) {
	for _, a := range assumptions {
		if a != litUndef {
			s.assumpMark[a] = false
		}
	}
}

// analyzeFinal walks the implication graph from a conflict that occurred
// within the assumption prefix and collects the assumptions it depends
// on. All bookkeeping lives in solver-owned scratch (assumpMark, seen +
// seenClear, finalStack, coreBuf), so steady-state core extraction is
// allocation-free; the returned slice aliases coreBuf.
func (s *Solver) analyzeFinal(conflict cref, assumptions []lit) []cnf.Lit {
	s.markAssumptions(assumptions)
	core := s.coreBuf[:0]
	stack := s.finalStack[:0]
	cleared := s.seenClear[:0]
	for _, l := range s.clauseLits(conflict) {
		if s.level[l.v()] > 0 {
			stack = append(stack, l)
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := l.v()
		if s.seen[v] || s.level[v] == 0 {
			continue
		}
		s.seen[v] = true
		cleared = append(cleared, v)
		if s.assumpMark[l.not()] {
			// Activation literals (frame guards) are assumptions too but
			// have no user form; userLitOf filters them from the core.
			if ul, ok := s.userLitOf(l.not()); ok {
				core = append(core, ul)
			}
			continue
		}
		r := s.reason[v]
		if r == crefUndef {
			// A decision that is not an assumption cannot appear below the
			// assumption prefix; if it does, include it conservatively by
			// skipping (the conflict was within the prefix, so reasons
			// bottom out at assumptions or level 0).
			continue
		}
		stack = append(stack, s.reasonRest(r, l.not())...)
	}
	for _, v := range cleared {
		s.seen[v] = false
	}
	s.unmarkAssumptions(assumptions)
	s.finalStack, s.seenClear, s.coreBuf = stack[:0], cleared[:0], core
	return core
}

// coreOfFalsified derives the failed-assumption set when assumption a is
// already false by propagation from earlier assumptions. The stack holds
// FALSE literals (as in analyzeFinal): for a false literal q, the true
// assignment is q.not(), whose provenance is either an assumption or a
// reason clause. Bookkeeping shares analyzeFinal's scratch buffers.
func (s *Solver) coreOfFalsified(a lit, assumptions []lit) []cnf.Lit {
	s.markAssumptions(assumptions)
	core := s.coreBuf[:0]
	if ul, ok := s.userLitOf(a); ok {
		core = append(core, ul)
	}
	cleared := s.seenClear[:0]
	s.seen[a.v()] = true
	cleared = append(cleared, a.v())
	stack := s.finalStack[:0]
	if s.assumpMark[a.not()] {
		// Directly contradictory assumption pair {a, ¬a}.
		if ul, ok := s.userLitOf(a.not()); ok {
			core = append(core, ul)
		}
	} else if r := s.reason[a.v()]; r != crefUndef {
		stack = append(stack, s.reasonRest(r, a.not())...)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := q.v()
		if s.seen[v] || s.level[v] == 0 {
			continue
		}
		s.seen[v] = true
		cleared = append(cleared, v)
		if s.assumpMark[q.not()] {
			if ul, ok := s.userLitOf(q.not()); ok {
				core = append(core, ul)
			}
			continue
		}
		if r := s.reason[v]; r != crefUndef {
			stack = append(stack, s.reasonRest(r, q.not())...)
		}
	}
	for _, v := range cleared {
		s.seen[v] = false
	}
	s.unmarkAssumptions(assumptions)
	s.finalStack, s.seenClear, s.coreBuf = stack[:0], cleared[:0], core
	return core
}
