package solver

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
)

// TestExportHookSeesEveryLearnedClause pins the export contract: the hook
// fires once per learned clause (units included), receives DIMACS literals
// whose negation-free form is implied by the formula, and the trajectory is
// identical to an export-free run (the hook is observation only).
func TestExportHookSeesEveryLearnedClause(t *testing.T) {
	inst := gen.Pigeonhole(6)
	base, err := Solve(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var exported [][]cnf.Lit
	var glues []int
	opts := Options{Export: func(lits []cnf.Lit, glue int) {
		cp := make([]cnf.Lit, len(lits))
		copy(cp, lits) // the slice is scratch: the hook must copy
		exported = append(exported, cp)
		glues = append(glues, glue)
	}}
	res, err := Solve(inst.F, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != base.Stats {
		t.Fatalf("export hook changed the trajectory:\nwith   : %+v\nwithout: %+v", res.Stats, base.Stats)
	}
	if int64(len(exported)) != res.Stats.Learned {
		t.Fatalf("exported %d clauses, stats.Learned = %d", len(exported), res.Stats.Learned)
	}
	for i, c := range exported {
		if len(c) == 0 {
			t.Fatalf("exported clause %d is empty", i)
		}
		if glues[i] < 0 {
			t.Fatalf("exported clause %d has negative glue %d", i, glues[i])
		}
	}
}

// shareSolver builds a solver over numVars fresh variables and the given
// clauses, failing the test on construction errors.
func shareSolver(t *testing.T, numVars int, clauses ...cnf.Clause) *Solver {
	t.Helper()
	f := cnf.New(numVars)
	for _, c := range clauses {
		if err := f.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestImportClauseNormalization(t *testing.T) {
	t.Run("long clause installs as learned with carried glue", func(t *testing.T) {
		s := shareSolver(t, 4, cnf.Clause{1, 2, 3, 4})
		if !s.importClause(SharedClause{Lits: []cnf.Lit{-1, -2, -3}, Glue: 2}) {
			t.Fatal("import of a consistent clause must keep the solver live")
		}
		if s.stats.Imported != 1 || len(s.learned) != 1 {
			t.Fatalf("imported=%d learned=%d, want 1/1", s.stats.Imported, len(s.learned))
		}
		if g := s.clauseGlue(s.learned[0]); g != 2 {
			t.Fatalf("imported glue = %d, want 2", g)
		}
	})
	t.Run("tautology and duplicates", func(t *testing.T) {
		s := shareSolver(t, 3, cnf.Clause{1, 2})
		if !s.importClause(SharedClause{Lits: []cnf.Lit{1, -1, 2}, Glue: 1}) {
			t.Fatal("tautology import must be a no-op, not a failure")
		}
		if s.stats.Imported != 0 || len(s.learned) != 0 {
			t.Fatalf("tautology must not install: imported=%d learned=%d", s.stats.Imported, len(s.learned))
		}
		if !s.importClause(SharedClause{Lits: []cnf.Lit{2, 3, 2, 3}, Glue: 1}) {
			t.Fatal("duplicate-literal import failed")
		}
		if len(s.learned) != 1 || s.clauseSize(s.learned[0]) != 2 {
			t.Fatal("duplicates must collapse to one binary clause")
		}
	})
	t.Run("unit import propagates at level zero", func(t *testing.T) {
		s := shareSolver(t, 3, cnf.Clause{-1, 2}, cnf.Clause{-2, 3})
		if !s.importClause(SharedClause{Lits: []cnf.Lit{1}, Glue: 1}) {
			t.Fatal("unit import failed")
		}
		if s.value(fromCNF(3)) != lTrue {
			t.Fatal("unit import must propagate through the chain 1→2→3")
		}
		if s.stats.Imported != 1 {
			t.Fatalf("imported = %d, want 1", s.stats.Imported)
		}
	})
	t.Run("empty import decides UNSAT", func(t *testing.T) {
		s := shareSolver(t, 2, cnf.Clause{1, 2})
		if !s.importClause(SharedClause{Lits: []cnf.Lit{1}, Glue: 1}) {
			t.Fatal("first unit import failed")
		}
		if s.importClause(SharedClause{Lits: []cnf.Lit{-1}, Glue: 1}) {
			t.Fatal("conflicting unit import must report the UNSAT state")
		}
		if s.ok {
			t.Fatal("solver must be in the unsatisfiable state")
		}
		if s.Solve() != Unsat {
			t.Fatal("solve after a falsified import must return Unsat")
		}
	})
	t.Run("satisfied-at-top and dead literals", func(t *testing.T) {
		s := shareSolver(t, 3, cnf.Clause{1}) // level-0 unit: 1 is true
		if !s.importClause(SharedClause{Lits: []cnf.Lit{1, 2}, Glue: 1}) {
			t.Fatal("satisfied import failed")
		}
		if len(s.learned) != 0 {
			t.Fatal("clause satisfied at level zero must not install")
		}
		if !s.importClause(SharedClause{Lits: []cnf.Lit{-1, 2, 3}, Glue: 1}) {
			t.Fatal("import with a dead literal failed")
		}
		if len(s.learned) != 1 || s.clauseSize(s.learned[0]) != 2 {
			t.Fatal("false-at-top literal must be stripped, leaving a binary")
		}
	})
	t.Run("foreign variables are dropped", func(t *testing.T) {
		s := shareSolver(t, 2, cnf.Clause{1, 2})
		if !s.importClause(SharedClause{Lits: []cnf.Lit{1, 7}, Glue: 1}) {
			t.Fatal("foreign-variable import must be a no-op")
		}
		if len(s.learned) != 0 || s.stats.Imported != 0 {
			t.Fatal("clause mentioning an out-of-range variable must not install")
		}
	})
}

// TestImportHookRunsAtRestartBoundaries solves with an Import hook feeding
// clauses learned by a finished twin solver and checks they land in the
// database without changing the answer.
func TestImportHookRunsAtRestartBoundaries(t *testing.T) {
	inst := gen.Pigeonhole(7)
	var shared []SharedClause
	_, err := Solve(inst.F, Options{Export: func(lits []cnf.Lit, glue int) {
		if len(lits) <= 8 {
			cp := make([]cnf.Lit, len(lits))
			copy(cp, lits)
			shared = append(shared, SharedClause{Lits: cp, Glue: glue})
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) == 0 {
		t.Fatal("exporter produced no shareable clauses")
	}

	delivered := false
	opts := Options{Import: func() []SharedClause {
		if delivered {
			return nil
		}
		delivered = true
		return shared
	}}
	res, err := Solve(inst.F, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Fatalf("php-7 with imports = %v, want UNSAT", res.Status)
	}
	if res.Stats.Imported == 0 {
		t.Fatal("no clause was imported despite a non-empty batch")
	}
}

// TestExtendBudgetResumes pins the resumability contract: a solve stopped
// on a conflict budget continues to the same answer as an unbounded fresh
// solve, and the restart cursor advances instead of rewinding.
func TestExtendBudgetResumes(t *testing.T) {
	inst := gen.Pigeonhole(7)
	fresh, err := Solve(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(inst.F, Options{MaxConflicts: 50})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	var prevRestarts int64
	for {
		st := s.Solve()
		if st != Unknown {
			if st != fresh.Status {
				t.Fatalf("resumed answer %v != fresh answer %v", st, fresh.Status)
			}
			break
		}
		if s.BudgetExhausted() == nil {
			t.Fatal("Unknown without a budget cause")
		}
		if s.stats.Restarts < prevRestarts {
			t.Fatal("restart cursor went backwards across a resume")
		}
		prevRestarts = s.stats.Restarts
		rounds++
		if rounds > 10000 {
			t.Fatal("resume loop did not converge")
		}
		s.ExtendBudget(s.Stats().Conflicts+50, 0)
	}
	if rounds == 0 {
		t.Fatal("budget of 50 conflicts should not decide php-7 in one round")
	}
}

// TestActivitySeedDiversifies checks that a non-zero seed changes the
// search trajectory (different decisions) without changing the answer, and
// that seed zero is bit-identical to the historical behaviour.
func TestActivitySeedDiversifies(t *testing.T) {
	inst := gen.RandomKSAT(60, 255, 3, 7)
	base, err := Solve(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Solve(inst.F, Options{ActivitySeed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Stats != base.Stats {
		t.Fatal("ActivitySeed 0 must be the identity")
	}
	seeded, err := Solve(inst.F, Options{ActivitySeed: 0x9E3779B97F4A7C15})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Status != base.Status {
		t.Fatalf("seeded answer %v != base answer %v", seeded.Status, base.Status)
	}
	again, err := Solve(inst.F, Options{ActivitySeed: 0x9E3779B97F4A7C15})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats != seeded.Stats {
		t.Fatal("the same seed must reproduce the same trajectory")
	}
}
