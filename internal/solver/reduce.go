package solver

import (
	"sort"

	"neuroselect/internal/deletion"
	"neuroselect/internal/faultpoint"
	"neuroselect/internal/obs"
)

// reduce deletes the lowest-ranked fraction of reducible learned clauses
// under the configured deletion policy, compacts the clause arena to
// reclaim their memory, then resets the per-variable propagation-frequency
// window (Eq. 2 counts "since the last clause deletion").
//
// The candidate list, score table, and sorter are solver-owned scratch, so
// a steady-state reduction allocates nothing.
func (s *Solver) reduce() {
	if err := faultpoint.Hit(faultpoint.SolverReduce); err != nil {
		// A failing reduction is an internal invariant violation; escalate
		// to a panic so SolveContext's containment converts it into an
		// error-carrying Unknown result.
		panic(err)
	}
	s.stats.Reductions++
	s.reduceLimit = s.stats.Conflicts + s.opts.ReduceFirst + s.opts.ReduceInc*s.stats.Reductions

	// Protect reason clauses of the current trail.
	for _, l := range s.trail {
		if r := s.reason[l.v()]; r != crefUndef {
			s.setFlag(r, hdrProtect)
		}
	}

	// Gather reducible candidates: learned, above the tier-1 glue
	// threshold, not binary, not currently a reason. (The learned index
	// only ever holds live clauses — the GC removes deleted ones.)
	candidates := s.redCand[:0]
	for _, c := range s.learned {
		h := s.header(c)
		if h&hdrProtect != 0 ||
			int(h>>hdrGlueShift&hdrGlueMax) <= s.opts.Tier1Glue ||
			int(h>>hdrSizeShift) <= 2 {
			continue
		}
		candidates = append(candidates, c)
	}

	nDelete := 0
	if len(candidates) > 0 {
		fmax := uint64(0)
		if s.opts.Policy.NeedsFrequency() {
			for _, f := range s.propFreq {
				if f > fmax {
					fmax = f
				}
			}
		}
		scores := s.redScores[:0]
		for _, c := range candidates {
			scores = append(scores, s.scoreClause(c, fmax))
		}
		s.redSort.crefs, s.redSort.scores = candidates, scores
		sort.Stable(&s.redSort)
		s.redScores = scores
		nDelete = int(float64(len(candidates)) * s.opts.ReduceFraction)
		for _, c := range candidates[:nDelete] {
			s.setFlag(c, hdrDeleted)
			s.stats.Deleted++
			if s.opts.Proof != nil {
				s.opts.Proof.DeleteClause(toCNFSlice(s.clauseLits(c)))
			}
		}
	}
	s.redCand = candidates

	// Clear protection marks.
	for _, l := range s.trail {
		if r := s.reason[l.v()]; r != crefUndef {
			s.clearFlag(r, hdrProtect)
		}
	}

	// Compact the arena, rewriting watch lists, reasons, and the learned
	// index; after this no deleted clause is reachable anywhere.
	if nDelete > 0 {
		s.gcArena()
	}

	if t := s.opts.Tracer; t != nil {
		ev := s.traceEvent(obs.EventReduce)
		ev.Candidates = len(candidates)
		ev.ReduceDeleted = nDelete
		t.Trace(ev)
	}

	// Reset the frequency window.
	for i := range s.propFreq {
		s.propFreq[i] = 0
	}
}

// reduceSorter stable-sorts the candidate crefs by ascending score (ties
// keep learned-index order, matching the previous sort.SliceStable over a
// score map). It lives on the Solver so sorting allocates nothing.
type reduceSorter struct {
	crefs  []cref
	scores []uint64
}

func (r *reduceSorter) Len() int           { return len(r.crefs) }
func (r *reduceSorter) Less(i, j int) bool { return r.scores[i] < r.scores[j] }
func (r *reduceSorter) Swap(i, j int) {
	r.crefs[i], r.crefs[j] = r.crefs[j], r.crefs[i]
	r.scores[i], r.scores[j] = r.scores[j], r.scores[i]
}

// scoreClause evaluates the deletion policy on a clause, computing the
// Eq. 2 frequency feature when the policy requires it.
func (s *Solver) scoreClause(c cref, fmax uint64) uint64 {
	cls := s.clauseLits(c)
	ci := deletion.ClauseInfo{
		Glue:     s.clauseGlue(c),
		Size:     len(cls),
		Activity: s.clauseActivity(c),
	}
	if s.opts.Policy.NeedsFrequency() && fmax > 0 {
		threshold := s.opts.Alpha * float64(fmax)
		n := 0
		for _, l := range cls {
			if float64(s.propFreq[l.v()]) > threshold {
				n++
			}
		}
		ci.Frequency = n
	}
	return s.opts.Policy.Score(ci)
}
