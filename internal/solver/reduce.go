package solver

import (
	"sort"

	"neuroselect/internal/deletion"
	"neuroselect/internal/faultpoint"
)

// reduce deletes the lowest-ranked fraction of reducible learned clauses
// under the configured deletion policy, then resets the per-variable
// propagation-frequency window (Eq. 2 counts "since the last clause
// deletion").
func (s *Solver) reduce() {
	if err := faultpoint.Hit(faultpoint.SolverReduce); err != nil {
		// A failing reduction is an internal invariant violation; escalate
		// to a panic so SolveContext's containment converts it into an
		// error-carrying Unknown result.
		panic(err)
	}
	s.stats.Reductions++
	s.reduceLimit = s.stats.Conflicts + s.opts.ReduceFirst + s.opts.ReduceInc*s.stats.Reductions

	// Protect reason clauses of the current trail.
	for _, l := range s.trail {
		if r := s.reason[l.v()]; r != nil {
			r.protect = true
		}
	}

	// Gather reducible candidates: learned, live, above the tier-1 glue
	// threshold, not binary, not currently a reason.
	candidates := s.learned[:0:0]
	live := s.learned[:0]
	for _, c := range s.learned {
		if c.deleted {
			continue
		}
		live = append(live, c)
		if c.protect || int(c.glue) <= s.opts.Tier1Glue || len(c.lits) <= 2 {
			continue
		}
		candidates = append(candidates, c)
	}
	s.learned = live

	if len(candidates) > 0 {
		fmax := uint64(0)
		if s.opts.Policy.NeedsFrequency() {
			for _, f := range s.propFreq {
				if f > fmax {
					fmax = f
				}
			}
		}
		scores := make(map[*clause]uint64, len(candidates))
		for _, c := range candidates {
			scores[c] = s.scoreClause(c, fmax)
		}
		sort.SliceStable(candidates, func(i, j int) bool {
			return scores[candidates[i]] < scores[candidates[j]]
		})
		nDelete := int(float64(len(candidates)) * s.opts.ReduceFraction)
		for _, c := range candidates[:nDelete] {
			c.deleted = true // watchers are dropped lazily in propagate
			s.stats.Deleted++
			if s.opts.Proof != nil {
				s.opts.Proof.DeleteClause(toCNFSlice(c.lits))
			}
		}
	}

	// Clear protection marks and reset the frequency window.
	for _, l := range s.trail {
		if r := s.reason[l.v()]; r != nil {
			r.protect = false
		}
	}
	for i := range s.propFreq {
		s.propFreq[i] = 0
	}
}

// scoreClause evaluates the deletion policy on a clause, computing the
// Eq. 2 frequency feature when the policy requires it.
func (s *Solver) scoreClause(c *clause, fmax uint64) uint64 {
	ci := deletion.ClauseInfo{
		Glue:     int(c.glue),
		Size:     len(c.lits),
		Activity: c.act,
	}
	if s.opts.Policy.NeedsFrequency() && fmax > 0 {
		threshold := s.opts.Alpha * float64(fmax)
		n := 0
		for _, l := range c.lits {
			if float64(s.propFreq[l.v()]) > threshold {
				n++
			}
		}
		ci.Frequency = n
	}
	return s.opts.Policy.Score(ci)
}
