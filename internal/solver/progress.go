package solver

import "sync/atomic"

// Progress is the latest conflict-window rollup of a running solve: the
// cumulative counters plus the window-local rates the tracer's window
// events carry, readable from any goroutine while the search owns its
// Solver. The JSON tags are the schema of the serving layer's live
// `progress` object in job-poll bodies (API.md) and are append-only.
type Progress struct {
	Conflicts       int64   `json:"conflicts"`
	Decisions       int64   `json:"decisions"`
	Propagations    int64   `json:"propagations"`
	Restarts        int64   `json:"restarts"`
	Learned         int64   `json:"learned"`
	WindowConflicts int64   `json:"window_conflicts"`
	PropsPerSec     float64 `json:"props_per_sec"`
	MeanGlue        float64 `json:"mean_glue"`
	TrailDepth      int     `json:"trail_depth"`
	TimeNS          int64   `json:"t_ns"` // nanoseconds since the solve started
}

// ProgressSink is a race-free single-slot mailbox for Progress snapshots:
// the solve publishes a fresh snapshot at every conflict-window boundary
// and readers Load whichever snapshot is newest. The zero value is ready
// to use (Load reports ok=false until the first window closes).
type ProgressSink struct {
	p atomic.Pointer[Progress]
}

// Load returns the most recent snapshot; ok is false before the first
// window boundary.
func (ps *ProgressSink) Load() (Progress, bool) {
	if p := ps.p.Load(); p != nil {
		return *p, true
	}
	return Progress{}, false
}

// publish swaps in a new snapshot. Called from the solve's goroutine only.
func (ps *ProgressSink) publish(p Progress) { ps.p.Store(&p) }
