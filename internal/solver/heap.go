package solver

// varHeap is an indexed binary max-heap over variables keyed by activity.
// It supports decrease/increase-key via the position index, which the
// solver uses when bumping activities.
type varHeap struct {
	act  *[]float64 // shared activity slice (indexed by variable)
	heap []int      // heap of variables
	pos  []int      // pos[v] = index of v in heap, or -1
}

func newVarHeap(act *[]float64, n int) *varHeap {
	h := &varHeap{act: act, pos: make([]int, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *varHeap) less(a, b int) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) contains(v int) bool { return h.pos[v] >= 0 }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v int) {
	if h.contains(v) {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v])
}

// pop removes and returns the maximum-activity variable.
func (h *varHeap) pop() int {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

// update restores heap order for v after its activity increased.
func (h *varHeap) update(v int) {
	if h.contains(v) {
		h.up(h.pos[v])
	}
}

// rebuild re-heapifies after a bulk rescale of activities. Rescaling divides
// every key by the same constant, preserving order, so this is a no-op for
// correctness, but it is exposed for policies that rewrite activities.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
