package solver

import (
	"math/rand"
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// bruteForce exhaustively decides satisfiability of a small formula.
func bruteForce(f *cnf.Formula) bool {
	n := f.NumVars
	if n > 24 {
		panic("bruteForce: formula too large")
	}
	a := cnf.NewAssignment(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			return true
		}
	}
	return false
}

func mustSolve(t *testing.T, f *cnf.Formula, opts Options) Result {
	t.Helper()
	res, err := Solve(f, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestEmptyFormulaIsSat(t *testing.T) {
	f := cnf.New(0)
	if got := mustSolve(t, f, Options{}).Status; got != Sat {
		t.Fatalf("empty formula: got %v, want SAT", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	f := cnf.New(1)
	f.Clauses = append(f.Clauses, cnf.Clause{})
	if got := mustSolve(t, f, Options{}).Status; got != Unsat {
		t.Fatalf("empty clause: got %v, want UNSAT", got)
	}
}

func TestUnitClauses(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1)
	f.MustAddClause(-2)
	res := mustSolve(t, f, Options{})
	if res.Status != Sat {
		t.Fatalf("got %v, want SAT", res.Status)
	}
	if !res.Model[1] || res.Model[2] {
		t.Fatalf("model = %v, want x1=true x2=false", res.Model)
	}
}

func TestContradictoryUnits(t *testing.T) {
	f := cnf.New(1)
	f.MustAddClause(1)
	f.MustAddClause(-1)
	if got := mustSolve(t, f, Options{}).Status; got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1, -1)
	f.MustAddClause(2)
	res := mustSolve(t, f, Options{})
	if res.Status != Sat || !res.Model[2] {
		t.Fatalf("got %v model %v", res.Status, res.Model)
	}
}

func TestSimpleChainPropagation(t *testing.T) {
	// x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3) ∧ ... forces all true.
	const n = 50
	f := cnf.New(n)
	f.MustAddClause(1)
	for i := 1; i < n; i++ {
		f.MustAddClause(cnf.Lit(-i), cnf.Lit(i+1))
	}
	res := mustSolve(t, f, Options{})
	if res.Status != Sat {
		t.Fatalf("got %v, want SAT", res.Status)
	}
	for v := 1; v <= n; v++ {
		if !res.Model[v] {
			t.Fatalf("variable %d should be true", v)
		}
	}
	if res.Stats.Decisions != 0 {
		t.Fatalf("chain should solve by propagation alone, got %d decisions", res.Stats.Decisions)
	}
}

// TestRandomAgainstBruteForce cross-checks CDCL against exhaustive search on
// many small random formulas, under every deletion policy.
func TestRandomAgainstBruteForce(t *testing.T) {
	policies := []deletion.Policy{
		deletion.DefaultPolicy{},
		deletion.FrequencyPolicy{},
		deletion.ActivityPolicy{},
		deletion.SizePolicy{},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(6*n)
		inst := gen.RandomKSAT(n, m, 3, int64(trial)*31+5)
		want := bruteForce(inst.F)
		pol := policies[trial%len(policies)]
		res := mustSolve(t, inst.F, Options{Policy: pol, ReduceFirst: 20, ReduceInc: 10})
		got := res.Status == Sat
		if res.Status == Unknown {
			t.Fatalf("%s: unexpected UNKNOWN", inst.Name)
		}
		if got != want {
			t.Fatalf("%s under %s: solver=%v bruteforce=%v", inst.Name, pol.Name(), res.Status, want)
		}
		if res.Status == Sat && !res.Model.Satisfies(inst.F) {
			t.Fatalf("%s: model does not satisfy formula", inst.Name)
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		inst := gen.Pigeonhole(holes)
		res := mustSolve(t, inst.F, Options{})
		if res.Status != Unsat {
			t.Fatalf("php-%d: got %v, want UNSAT", holes, res.Status)
		}
	}
}

func TestTseitinPolarity(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		sat := gen.Tseitin(10, 3, true, seed)
		if res := mustSolve(t, sat.F, Options{}); res.Status != Sat {
			t.Fatalf("%s: got %v, want SAT", sat.Name, res.Status)
		}
		unsat := gen.Tseitin(10, 3, false, seed)
		if res := mustSolve(t, unsat.F, Options{}); res.Status != Unsat {
			t.Fatalf("%s: got %v, want UNSAT", unsat.Name, res.Status)
		}
	}
}

func TestParityChain(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		sat := gen.ParityChain(20, 12, 4, true, seed)
		if res := mustSolve(t, sat.F, Options{}); res.Status != Sat {
			t.Fatalf("%s: got %v, want SAT", sat.Name, res.Status)
		}
		unsat := gen.ParityChain(20, 12, 4, false, seed)
		if res := mustSolve(t, unsat.F, Options{}); res.Status != Unsat {
			t.Fatalf("%s: got %v, want UNSAT", unsat.Name, res.Status)
		}
	}
}

func TestBMCCounterPolarity(t *testing.T) {
	sat := gen.BMCCounter(6, 10, 15)
	if sat.Expected != gen.ExpectSat {
		t.Fatalf("expected SAT construction")
	}
	if res := mustSolve(t, sat.F, Options{}); res.Status != Sat {
		t.Fatalf("%s: got %v, want SAT", sat.Name, res.Status)
	}
	unsat := gen.BMCCounter(6, 10, 25)
	if unsat.Expected != gen.ExpectUnsat {
		t.Fatalf("expected UNSAT construction")
	}
	if res := mustSolve(t, unsat.F, Options{}); res.Status != Unsat {
		t.Fatalf("%s: got %v, want UNSAT", unsat.Name, res.Status)
	}
}

func TestMiterEquivalenceUnsat(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		inst := gen.Miter(6, 30, false, seed)
		if res := mustSolve(t, inst.F, Options{}); res.Status != Unsat {
			t.Fatalf("%s: got %v, want UNSAT", inst.Name, res.Status)
		}
	}
}

func TestNQueens(t *testing.T) {
	for _, n := range []int{1, 4, 5, 6, 8} {
		inst := gen.NQueens(n)
		res := mustSolve(t, inst.F, Options{})
		if res.Status != Sat {
			t.Fatalf("queens-%d: got %v, want SAT", n, res.Status)
		}
	}
	for _, n := range []int{2, 3} {
		inst := gen.NQueens(n)
		if res := mustSolve(t, inst.F, Options{}); res.Status != Unsat {
			t.Fatalf("queens-%d: got %v, want UNSAT", n, res.Status)
		}
	}
}

func TestConflictBudgetReturnsUnknown(t *testing.T) {
	inst := gen.Pigeonhole(8)
	res := mustSolve(t, inst.F, Options{MaxConflicts: 10})
	if res.Status != Unknown {
		t.Fatalf("got %v, want UNKNOWN under tiny budget", res.Status)
	}
	if res.Stats.Conflicts < 10 {
		t.Fatalf("expected at least 10 conflicts, got %d", res.Stats.Conflicts)
	}
}

func TestPropagationBudgetReturnsUnknown(t *testing.T) {
	inst := gen.Pigeonhole(8)
	s, err := New(inst.F, Options{MaxPropagations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("got %v, want UNKNOWN", got)
	}
	if s.BudgetExhausted() == nil {
		t.Fatal("BudgetExhausted should report the expired budget")
	}
}

func TestReductionHappensAndPoliciesAgree(t *testing.T) {
	// A hard-enough instance that reductions trigger; all policies must
	// agree on satisfiability.
	inst := gen.RandomKSAT(60, 255, 3, 99)
	var first Status
	for i, pol := range []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}} {
		res := mustSolve(t, inst.F, Options{Policy: pol, ReduceFirst: 50, ReduceInc: 25})
		if res.Status == Unknown {
			t.Fatalf("unexpected UNKNOWN")
		}
		if i == 0 {
			first = res.Status
		} else if res.Status != first {
			t.Fatalf("policies disagree: %v vs %v", first, res.Status)
		}
		if res.Stats.Conflicts > 200 && res.Stats.Reductions == 0 {
			t.Fatalf("policy %s: expected reductions under small schedule, got none (%d conflicts)",
				pol.Name(), res.Stats.Conflicts)
		}
	}
}

func TestPropagationFrequenciesTracked(t *testing.T) {
	inst := gen.Pigeonhole(6)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Fatal("php-6 should be UNSAT")
	}
	freqs := s.PropagationFrequencies()
	if len(freqs) != inst.F.NumVars+1 {
		t.Fatalf("frequency slice length %d, want %d", len(freqs), inst.F.NumVars+1)
	}
	total := uint64(0)
	for _, f := range freqs {
		total += f
	}
	if total == 0 {
		t.Fatal("expected nonzero cumulative propagation counts")
	}
	if total != uint64(s.Stats().Propagations) {
		t.Fatalf("cumulative frequencies %d != propagation count %d", total, s.Stats().Propagations)
	}
}

func TestSolveAssuming(t *testing.T) {
	// (x1 ∨ x2) with assumption ¬x1 forces x2.
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	res, err := SolveAssuming(f, []cnf.Lit{-1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat || res.Model[1] || !res.Model[2] {
		t.Fatalf("got %v model %v", res.Status, res.Model)
	}
	// Contradictory assumptions.
	res, err = SolveAssuming(f, []cnf.Lit{-1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Fatalf("got %v, want UNSAT", res.Status)
	}
}

func TestStatsMonotonicity(t *testing.T) {
	inst := gen.RandomKSAT(40, 170, 3, 3)
	res := mustSolve(t, inst.F, Options{})
	st := res.Stats
	if st.Decisions < 0 || st.Propagations <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Learned < st.UnitsLearned+st.BinariesLearned {
		t.Fatalf("learned breakdown exceeds total: %+v", st)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(2, int64(i)); got != w {
			t.Fatalf("luby(2,%d) = %d, want %d", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	inst := gen.RandomKSAT(50, 210, 3, 11)
	r1 := mustSolve(t, inst.F, Options{})
	r2 := mustSolve(t, inst.F, Options{})
	if r1.Status != r2.Status || r1.Stats != r2.Stats {
		t.Fatalf("solver is not deterministic: %+v vs %+v", r1.Stats, r2.Stats)
	}
}
