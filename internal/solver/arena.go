package solver

// Clause arena.
//
// All clauses live in one flat slice of 32-bit words (the element type is
// lit, a uint32 newtype, so literal slices come straight out of the arena
// without conversion). A clause is identified by a cref — the arena index
// of its header word — and laid out as:
//
//	problem clause:  [header, lit0, lit1, ..., litN-1]
//	learned clause:  [header, actSlot, lit0, lit1, ..., litN-1]
//
// The header word packs, from the least significant bit:
//
//	bit  0      learned flag (also selects the 1- vs 2-word header)
//	bit  1      deleted flag (set during reduce, reclaimed by gcArena)
//	bit  2      protect flag (reason-protected during the current reduction)
//	bits 3-12   glue (LBD), saturating at hdrGlueMax
//	bits 13-31  clause size in literals
//
// Learned clauses carry one extra header word, actSlot: the index of the
// clause's activity in the parallel clauseAct []float64 slice. Activities
// stay float64 (bit-compatible with the pre-arena representation) without
// widening the arena itself.
//
// Problem clauses are allocated before the search starts and are never
// deleted, so the arena prefix [0, problemEnd) is immutable: those crefs
// never move. Learned clauses append after problemEnd and are reclaimed by
// a mark-and-compact GC (gcArena) that runs at reduce time, replacing the
// old lazy deleted-tombstone scheme.

// cref is a clause reference: the arena index of the clause's header word.
type cref uint32

// crefUndef is the nil clause reference (no reason / no conflict).
const crefUndef cref = ^cref(0)

const (
	hdrLearned uint32 = 1 << 0
	hdrDeleted uint32 = 1 << 1
	hdrProtect uint32 = 1 << 2

	hdrGlueShift = 3
	hdrGlueBits  = 10
	// hdrGlueMax is the largest storable glue; larger LBDs saturate here.
	// Glue only ranks clauses for deletion, so saturation merely makes
	// clauses beyond 1023 distinct decision levels tie at the bottom.
	hdrGlueMax = 1<<hdrGlueBits - 1

	hdrSizeShift = hdrGlueShift + hdrGlueBits
	// maxClauseSize is the largest representable clause (19 size bits).
	maxClauseSize = 1<<(32-hdrSizeShift) - 1

	// maxArenaWords keeps crefs below the watchBinary tag bit.
	maxArenaWords = 1 << 31
)

// watchBinary tags a watcher's ref field when the watched clause is binary:
// the blocker then IS the other literal, and BCP resolves the clause without
// touching arena memory. The clause's real cref is ref &^ watchBinary.
const watchBinary uint32 = 1 << 31

func (s *Solver) header(c cref) uint32      { return uint32(s.arena[c]) }
func (s *Solver) clauseSize(c cref) int     { return int(uint32(s.arena[c]) >> hdrSizeShift) }
func (s *Solver) clauseLearned(c cref) bool { return uint32(s.arena[c])&hdrLearned != 0 }
func (s *Solver) clauseDeleted(c cref) bool { return uint32(s.arena[c])&hdrDeleted != 0 }
func (s *Solver) clauseGlue(c cref) int {
	return int(uint32(s.arena[c]) >> hdrGlueShift & hdrGlueMax)
}

func (s *Solver) setClauseGlue(c cref, g int) {
	if g > hdrGlueMax {
		g = hdrGlueMax
	}
	h := uint32(s.arena[c])
	h = h&^(uint32(hdrGlueMax)<<hdrGlueShift) | uint32(g)<<hdrGlueShift
	s.arena[c] = lit(h)
}

func (s *Solver) setFlag(c cref, f uint32)   { s.arena[c] = lit(uint32(s.arena[c]) | f) }
func (s *Solver) clearFlag(c cref, f uint32) { s.arena[c] = lit(uint32(s.arena[c]) &^ f) }

// litBase returns the arena index of the clause's first literal. The
// learned bit doubles as the header-length selector, so this is branch-free.
func (s *Solver) litBase(c cref) cref {
	return c + 1 + cref(uint32(s.arena[c])&hdrLearned)
}

// clauseLits returns the clause's literals as a live sub-slice of the arena;
// writes through it (watch reordering, reason normalization) are visible to
// every other reader of the clause.
func (s *Solver) clauseLits(c cref) []lit {
	b := s.litBase(c)
	return s.arena[b : b+cref(s.clauseSize(c))]
}

func (s *Solver) actSlot(c cref) uint32 { return uint32(s.arena[c+1]) }

func (s *Solver) clauseActivity(c cref) float64 { return s.clauseAct[s.actSlot(c)] }

// allocClause appends a clause to the arena and returns its cref. Learned
// clauses get an activity slot initialized to act.
func (s *Solver) allocClause(lits []lit, learned bool, glue int, act float64) cref {
	if len(lits) > maxClauseSize {
		panic("solver: clause exceeds the arena size limit")
	}
	if len(s.arena)+len(lits)+2 > maxArenaWords {
		panic("solver: clause arena full")
	}
	c := cref(len(s.arena))
	if glue > hdrGlueMax {
		glue = hdrGlueMax
	}
	h := uint32(len(lits))<<hdrSizeShift | uint32(glue)<<hdrGlueShift
	if learned {
		h |= hdrLearned
	}
	s.arena = append(s.arena, lit(h))
	if learned {
		s.arena = append(s.arena, lit(uint32(len(s.clauseAct))))
		s.clauseAct = append(s.clauseAct, act)
	}
	s.arena = append(s.arena, lits...)
	return c
}

// gcArena compacts the learned region of the arena, reclaiming clauses
// marked hdrDeleted, and rewrites every cref-bearing structure: watch lists
// (dropping watchers of deleted clauses), reason references, the learned
// index, and the activity slots. Problem clauses (below problemEnd) never
// move. Reason clauses are protect-marked by reduce before marking, so a
// deleted clause can never be a live reason.
//
// The pass is allocation-free: new crefs are planted as forwarding pointers
// in the (already salvaged) actSlot header word, references are rewritten
// through them, and only then is clause memory slid down in place.
func (s *Solver) gcArena() {
	// Plant forwarding pointers and compact the activity slice. s.learned
	// is in arena order and actSlots ascend with it, so activities compact
	// in place (write index never passes the read index).
	live := s.learned[:0]
	w := s.problemEnd
	for _, c := range s.learned {
		if s.clauseDeleted(c) {
			continue
		}
		s.clauseAct[len(live)] = s.clauseAct[s.actSlot(c)]
		s.arena[c+1] = lit(uint32(w)) // forwarding pointer
		live = append(live, w)
		w += cref(s.clauseSize(c)) + 2
	}

	// Rewrite watch lists through the forwarding pointers, dropping
	// watchers of deleted clauses. Relative order of survivors is
	// preserved, matching the old lazy-removal semantics.
	for li := range s.watches {
		ws := s.watches[li]
		kept := ws[:0]
		for _, wt := range ws {
			c := cref(wt.ref &^ watchBinary)
			if c >= s.problemEnd {
				if s.clauseDeleted(c) {
					continue
				}
				wt.ref = uint32(s.arena[c+1]) | wt.ref&watchBinary
			}
			kept = append(kept, wt)
		}
		s.watches[li] = kept
	}

	// Rewrite reason references (valid only for assigned variables;
	// cancelUntil resets the rest to crefUndef).
	for v := range s.reason {
		if c := s.reason[v]; c != crefUndef && c >= s.problemEnd {
			s.reason[v] = cref(uint32(s.arena[c+1]))
		}
	}

	// Slide live clauses down. dst never exceeds the read cursor, and the
	// builtin copy has memmove semantics, so overlapping blocks are safe.
	r := s.problemEnd
	end := cref(len(s.arena))
	slot := uint32(0)
	for r < end {
		h := uint32(s.arena[r])
		size := cref(h >> hdrSizeShift)
		blk := size + 2 // learned clauses only: header + actSlot + lits
		if h&hdrDeleted != 0 {
			s.stats.GCLitsReclaimed += int64(size)
			r += blk
			continue
		}
		dst := cref(uint32(s.arena[r+1]))
		if dst != r {
			s.stats.GCBytesMoved += int64(blk) * 4
		}
		s.arena[dst] = lit(h)
		s.arena[dst+1] = lit(slot)
		copy(s.arena[dst+2:dst+2+size], s.arena[r+2:r+2+size])
		slot++
		r += blk
	}
	s.stats.GCCompactions++
	s.arena = s.arena[:w]
	s.clauseAct = s.clauseAct[:slot]
	s.learned = live
}
