package solver

import (
	"math/rand"
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/gen"
)

func TestAssumptionsSatAndBacktrackReuse(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3): the same solver answers several queries.
	f := cnf.New(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 3)
	s, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.SolveUnderAssumptions([]cnf.Lit{1})
	if st != Sat {
		t.Fatalf("assume x1: %v", st)
	}
	if !s.Model()[1] || !s.Model()[3] {
		t.Fatalf("model %v must set x1 and x3", s.Model())
	}
	st, _ = s.SolveUnderAssumptions([]cnf.Lit{-1})
	if st != Sat {
		t.Fatalf("assume ¬x1: %v", st)
	}
	if s.Model()[1] || !s.Model()[2] {
		t.Fatalf("model %v must clear x1 and set x2", s.Model())
	}
	st, _ = s.SolveUnderAssumptions(nil)
	if st != Sat {
		t.Fatalf("no assumptions: %v", st)
	}
}

func TestAssumptionsUnsatCore(t *testing.T) {
	// x1 → x2, x2 → x3; assuming {x1, ¬x3, x4} fails, and the core must
	// contain x1 and ¬x3 but never the irrelevant x4.
	f := cnf.New(4)
	f.MustAddClause(-1, 2)
	f.MustAddClause(-2, 3)
	s, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, core := s.SolveUnderAssumptions([]cnf.Lit{1, -3, 4})
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	has := map[cnf.Lit]bool{}
	for _, l := range core {
		has[l] = true
	}
	if !has[1] || !has[-3] {
		t.Fatalf("core %v must contain 1 and -3", core)
	}
	if has[4] {
		t.Fatalf("core %v must not contain the irrelevant assumption 4", core)
	}
	// The formula itself stays satisfiable.
	st, _ = s.SolveUnderAssumptions(nil)
	if st != Sat {
		t.Fatalf("formula without assumptions: %v", st)
	}
}

func TestAssumptionsContradictoryPair(t *testing.T) {
	f := cnf.New(2)
	f.MustAddClause(1, 2)
	s, err := New(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, core := s.SolveUnderAssumptions([]cnf.Lit{2, -2})
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	if len(core) == 0 {
		t.Fatal("empty core for contradictory assumptions")
	}
	for _, l := range core {
		if l.Var() != 2 {
			t.Fatalf("core %v mentions foreign variable", core)
		}
	}
}

func TestAssumptionsOnUnsatFormula(t *testing.T) {
	inst := gen.Pigeonhole(4)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.SolveUnderAssumptions([]cnf.Lit{1})
	if st != Unsat {
		t.Fatalf("php-4 under any assumptions: %v", st)
	}
}

// TestAssumptionsAgreeWithClauseAddition cross-checks the incremental
// interface against the one-shot unit-clause encoding on random instances.
func TestAssumptionsAgreeWithClauseAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		inst := gen.RandomKSAT(4+rng.Intn(8), 8+rng.Intn(30), 3, int64(trial))
		nAssume := 1 + rng.Intn(3)
		var assumptions []cnf.Lit
		seen := map[int]bool{}
		for len(assumptions) < nAssume {
			v := 1 + rng.Intn(inst.F.NumVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumptions = append(assumptions, l)
		}
		s, err := New(inst.F, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotSt, core := s.SolveUnderAssumptions(assumptions)
		want, err := SolveAssuming(inst.F, assumptions, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if gotSt != want.Status {
			t.Fatalf("%s with %v: incremental %v vs clause-added %v",
				inst.Name, assumptions, gotSt, want.Status)
		}
		if gotSt == Sat {
			m := s.Model()
			if !m.Satisfies(inst.F) {
				t.Fatalf("%s: model invalid", inst.Name)
			}
			for _, a := range assumptions {
				if !m.Value(a) {
					t.Fatalf("%s: model violates assumption %v", inst.Name, a)
				}
			}
		} else if gotSt == Unsat && len(core) > 0 {
			// Core soundness: the formula plus ONLY the core assumptions
			// must already be UNSAT.
			coreRes, err := SolveAssuming(inst.F, core, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if coreRes.Status != Unsat {
				t.Fatalf("%s: reported core %v is not refuting", inst.Name, core)
			}
			// And every core literal must be one of the assumptions.
			valid := map[cnf.Lit]bool{}
			for _, a := range assumptions {
				valid[a] = true
			}
			for _, l := range core {
				if !valid[l] {
					t.Fatalf("%s: core literal %v not among assumptions %v", inst.Name, l, assumptions)
				}
			}
		}
	}
}

func TestAssumptionsSequentialQueries(t *testing.T) {
	// Incremental equivalence-checking pattern: one solver, many output
	// assumptions.
	inst := gen.Miter(6, 40, false, 9)
	s, err := New(inst.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The miter output is already asserted in the formula; query input
	// cofactors repeatedly.
	for v := 1; v <= 4; v++ {
		stPos, _ := s.SolveUnderAssumptions([]cnf.Lit{cnf.Lit(v)})
		stNeg, _ := s.SolveUnderAssumptions([]cnf.Lit{-cnf.Lit(v)})
		if stPos != Unsat || stNeg != Unsat {
			t.Fatalf("cofactors of an UNSAT formula must stay UNSAT (v=%d: %v/%v)", v, stPos, stNeg)
		}
	}
}
