package solver

// Incremental (IPASIR-style) interface: add clauses between solves, push
// and pop assumption frames, and solve under assumptions repeatedly — all
// on one Solver, so every call after the first reuses the learned-clause
// arena, EVSIDS activities, saved phases, and clause activities the
// earlier calls paid for.
//
// Clause addition. A clause added after construction is installed at
// decision level zero with the same normalization as a problem clause but
// allocated as a glue-1 *learned* clause: the arena's learned region
// assumes the 2-word learned header layout during GC compaction, and
// glue 1 sits at or below every Tier1Glue setting, so the clause is
// permanent (reduce never selects it) while keeping the arena layout
// invariants intact.
//
// Frames. Push opens a frame by allocating a fresh internal activation
// variable t; clauses added under the frame are stored as C ∨ ¬t and every
// solve assumes t, so the guard is false and C must hold. Pop retires the
// frame by asserting the permanent unit ¬t, which satisfies — and thereby
// permanently disables — every clause of the frame. Activation variables
// are invisible to callers: they never appear in models or cores, and the
// user→internal variable maps (materialized lazily on the first Push) keep
// user variable numbering dense and stable even as new user variables and
// activation variables interleave internally.

import (
	"fmt"
	"time"

	"neuroselect/internal/cnf"
)

// ensureVars grows every per-variable structure to hold n internal
// variables. New variables join unassigned, with the default phase, zero
// activity, and a seat on the decision heap.
func (s *Solver) ensureVars(n int) {
	if n <= s.numVars {
		return
	}
	old := s.numVars
	s.numVars = n
	grow := n - old
	for len(s.watches) < 2*n {
		s.watches = append(s.watches, nil)
	}
	s.assign = append(s.assign, make([]lbool, grow)...)
	s.level = append(s.level, make([]int32, grow)...)
	s.activity = append(s.activity, make([]float64, grow)...)
	s.propFreq = append(s.propFreq, make([]uint64, grow)...)
	s.propFreqTotal = append(s.propFreqTotal, make([]uint64, grow)...)
	s.seen = append(s.seen, make([]bool, grow)...)
	s.analyzeTS = append(s.analyzeTS, make([]int32, grow)...)
	for v := old; v < n; v++ {
		s.reason = append(s.reason, crefUndef)
		s.phase = append(s.phase, s.opts.InitialPhase)
		s.heap.pos = append(s.heap.pos, -1)
		s.heap.push(v)
	}
}

// materializeVarMaps switches from the implicit identity user↔internal
// variable mapping to explicit map slices. Called by the first Push, the
// moment user and internal numbering can diverge; before that the maps
// stay nil and every hot path skips them.
func (s *Solver) materializeVarMaps() {
	if s.u2i != nil {
		return
	}
	s.u2i = make([]int32, s.numVars)
	s.i2u = make([]int32, s.numVars)
	for v := 0; v < s.numVars; v++ {
		s.u2i[v] = int32(v)
		s.i2u[v] = int32(v)
	}
}

// internalLitOfUser maps a user literal to internal form, allocating a
// fresh internal variable if the user variable is new.
func (s *Solver) internalLitOfUser(l cnf.Lit) lit {
	u := l.Var() - 1
	var v int
	if s.u2i == nil {
		if u >= s.numVars {
			s.ensureVars(u + 1)
			s.uvars = s.numVars
		}
		v = u
	} else {
		for len(s.u2i) <= u {
			s.u2i = append(s.u2i, -1)
		}
		if s.u2i[u] < 0 {
			v = s.numVars
			s.ensureVars(v + 1)
			s.u2i[u] = int32(v)
			s.i2u = append(s.i2u, int32(u))
		} else {
			v = int(s.u2i[u])
		}
		if u >= s.uvars {
			s.uvars = u + 1
		}
	}
	return mkLit(v, l < 0)
}

// assumeLit maps a user assumption literal to internal form without
// allocating variables: an assumption over a variable the solver has never
// seen is trivially free and maps to litUndef.
func (s *Solver) assumeLit(l cnf.Lit) lit {
	u := l.Var() - 1
	if s.u2i == nil {
		if u >= s.numVars {
			return litUndef
		}
		return mkLit(u, l < 0)
	}
	if u >= len(s.u2i) || s.u2i[u] < 0 {
		return litUndef
	}
	return mkLit(int(s.u2i[u]), l < 0)
}

// userLitOf maps an internal literal back to user numbering. Activation
// literals have no user form; ok is false for them.
func (s *Solver) userLitOf(l lit) (cnf.Lit, bool) {
	u := l.v()
	if s.i2u != nil {
		if s.i2u[u] < 0 {
			return 0, false
		}
		u = int(s.i2u[u])
	}
	c := cnf.Lit(u + 1)
	if l.neg() {
		c = -c
	}
	return c, true
}

// MaxAddClauseLen is the largest clause AddClause is guaranteed to accept:
// the arena header caps the representable clause size, and one literal of
// headroom is reserved for the activation guard appended under an open
// frame. Callers that need all-or-nothing batch semantics (the server's
// session step) validate against this before mutating the solver.
const MaxAddClauseLen = maxClauseSize - 1

// AddClause installs one clause between solves (IPASIR add). New user
// variables are allocated on sight. Under an open frame the clause belongs
// to that frame and dies with its Pop; otherwise it is permanent. An empty
// (or root-falsified) clause moves the solver to the unsatisfiable state —
// not an error; subsequent solves return Unsat. The only error is a
// malformed clause (zero literal, arena size limit).
func (s *Solver) AddClause(c cnf.Clause) error {
	for _, l := range c {
		if l == 0 {
			return fmt.Errorf("solver: zero literal in incremental clause")
		}
	}
	if !s.ok {
		return nil
	}
	s.cancelUntil(0)
	buf := s.addBuf[:0]
	for _, l := range c {
		buf = append(buf, s.internalLitOfUser(l))
	}
	if len(s.frames) > 0 {
		// Guard: C becomes C ∨ ¬t for the innermost open frame t.
		buf = append(buf, mkLit(s.frames[len(s.frames)-1], true))
	}
	s.addBuf = buf
	sortLits(buf)
	norm := buf[:0]
	prev := litUndef
	for _, il := range buf {
		if il == prev {
			continue
		}
		if il == prev.not() {
			return nil // tautology
		}
		prev = il
		norm = append(norm, il)
	}
	// At level zero every assignment is permanent: a true literal satisfies
	// the clause forever, a false literal is dead.
	lits := norm[:0]
	for _, il := range norm {
		switch s.value(il) {
		case lTrue:
			return nil
		case lFalse:
			continue
		default:
			lits = append(lits, il)
		}
	}
	s.stats.AddedClauses++
	switch len(lits) {
	case 0:
		s.ok = false
		return nil
	case 1:
		if !s.enqueue(lits[0], crefUndef) {
			s.ok = false
			return nil
		}
		if conflict := s.propagate(); conflict != crefUndef {
			s.ok = false
		}
		return nil
	}
	if len(lits) > maxClauseSize {
		return fmt.Errorf("solver: clause of %d literals exceeds the arena limit of %d", len(lits), maxClauseSize)
	}
	// Glue 1 ≤ Tier1Glue: permanent under every reduction policy, and the
	// learned header layout keeps the arena GC's parse of the learned
	// region valid (problem-layout clauses must not appear above
	// problemEnd).
	cr := s.allocClause(lits, true, 1, s.clsInc)
	s.learned = append(s.learned, cr)
	s.attach(cr)
	return nil
}

// AddFormula adds every clause of f through AddClause.
func (s *Solver) AddFormula(f *cnf.Formula) error {
	for _, c := range f.Clauses {
		if err := s.AddClause(c); err != nil {
			return err
		}
	}
	return nil
}

// Push opens an assumption frame (IPASIR-incremental push): clauses added
// until the matching Pop are retractable as a unit.
func (s *Solver) Push() {
	s.materializeVarMaps()
	t := s.numVars
	s.ensureVars(t + 1)
	s.i2u = append(s.i2u, -1) // activation variable: no user number
	s.frames = append(s.frames, t)
}

// Pop retires the innermost frame, permanently disabling every clause
// added under it, and reports whether a frame was open.
func (s *Solver) Pop() bool {
	if len(s.frames) == 0 {
		return false
	}
	t := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	if !s.ok {
		return true
	}
	s.cancelUntil(0)
	// ¬t satisfies every clause of the frame forever. The enqueue cannot
	// conflict (t is never asserted at the root) but fail closed anyway.
	if !s.enqueue(mkLit(t, true), crefUndef) {
		s.ok = false
		return true
	}
	if conflict := s.propagate(); conflict != crefUndef {
		s.ok = false
	}
	return true
}

// FrameDepth returns the number of open assumption frames.
func (s *Solver) FrameDepth() int { return len(s.frames) }

// UserVars returns the number of user-visible variables (excluding
// internal activation variables).
func (s *Solver) UserVars() int { return s.uvars }

// SetDeadline installs a wall-clock deadline for subsequent solve calls on
// this solver (zero clears it) and resets the budget-exhausted latch so an
// earlier expiry does not poison the next call. It is the incremental
// analogue of Options.Deadline for one-shot solves.
func (s *Solver) SetDeadline(d time.Time) {
	s.opts.Deadline = d
	s.budget = nil
}

// Footprint estimates the solver's resident memory in bytes: the clause
// arena, clause activities, watch lists, and roughly 100 bytes per
// variable of assignment/heap/analysis state. Warm-session memory caps
// compare this estimate against their budget; it deliberately overcounts
// slightly rather than under.
func (s *Solver) Footprint() int64 {
	b := int64(cap(s.arena)) * 4
	b += int64(cap(s.clauseAct)) * 8
	b += int64(cap(s.clauses)+cap(s.learned)) * 4
	for i := range s.watches {
		b += int64(cap(s.watches[i])) * 8
	}
	b += int64(cap(s.watches)) * 24
	b += int64(cap(s.trail)+cap(s.assumeBuf)+cap(s.finalStack)) * 4
	b += int64(s.numVars) * 100
	return b
}
