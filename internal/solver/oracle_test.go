package solver

import (
	"testing"

	"neuroselect/internal/cnf"
	"neuroselect/internal/deletion"
	"neuroselect/internal/gen"
)

// enumerate exhaustively decides a small formula and returns a witness
// assignment when satisfiable — the ground-truth oracle for the
// differential suite.
func enumerate(f *cnf.Formula) (bool, cnf.Assignment) {
	n := f.NumVars
	if n > 20 {
		panic("enumerate: formula too large for the oracle suite")
	}
	a := cnf.NewAssignment(n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			witness := make(cnf.Assignment, len(a))
			copy(witness, a)
			return true, witness
		}
	}
	return false, nil
}

// oracleInstances returns one small (≤20 variables) instance per generator
// family — every family the paper's corpus draws from, sized so exhaustive
// enumeration stays cheap.
func oracleInstances() []gen.Instance {
	var out []gen.Instance
	for seed := int64(1); seed <= 3; seed++ {
		out = append(out,
			gen.RandomKSAT(12, 50, 3, seed),
			gen.CommunityKSAT(12, 50, 3, 2, 0.85, seed),
			gen.PowerLawKSAT(12, 52, 3, 0.9, seed),
			gen.ParityChain(8, 5, 3, true, seed),
			gen.ParityChain(8, 5, 3, false, seed),
			gen.Tseitin(6, 3, true, seed),
			gen.Tseitin(6, 3, false, seed),
			gen.GraphColoring(5, 10, 3, seed),
			gen.SubsetSum(2, 9, true, seed),
			gen.SubsetSum(2, 9, false, seed),
			gen.Miter(3, 4, false, seed),
			gen.Miter(3, 4, true, seed),
		)
	}
	out = append(out,
		gen.Pigeonhole(3),
		gen.NQueens(4),
		gen.BMCCounter(3, 2, 7),
	)
	return out
}

// TestOracleDifferential cross-checks the CDCL solver against exhaustive
// enumeration on every generator family, under both deletion policies:
// verdicts must agree with the oracle and with each generator's
// by-construction expectation, and every SAT model must actually satisfy
// its formula.
func TestOracleDifferential(t *testing.T) {
	policies := []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}}
	for _, inst := range oracleInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			if inst.F.NumVars > 20 {
				t.Fatalf("oracle instance too large: %d vars", inst.F.NumVars)
			}
			oracleSat, witness := enumerate(inst.F)
			switch inst.Expected {
			case gen.ExpectSat:
				if !oracleSat {
					t.Fatalf("generator promises SAT but enumeration finds no model")
				}
			case gen.ExpectUnsat:
				if oracleSat {
					t.Fatalf("generator promises UNSAT but enumeration found model %v", witness)
				}
			}
			for _, p := range policies {
				t.Run(p.Name(), func(t *testing.T) {
					res := mustSolve(t, inst.F, Options{
						Policy:       p,
						MaxConflicts: 1 << 20,
						// Low thresholds so the clause-database reduction
						// path runs even on these small instances.
						ReduceFirst: 10,
						ReduceInc:   5,
					})
					if res.Status == Unknown {
						t.Fatalf("oracle instance exhausted its conflict budget: %+v", res.Stats)
					}
					gotSat := res.Status == Sat
					if gotSat != oracleSat {
						t.Fatalf("solver says %v, oracle says sat=%v", res.Status, oracleSat)
					}
					if gotSat && !res.Model.Satisfies(inst.F) {
						t.Fatalf("solver returned a model that does not satisfy the formula: %v", res.Model)
					}
				})
			}
		})
	}
}

// TestOracleFamilyCoverage guards the suite itself: it must span all nine
// generator families so a regression in any encoder is caught.
func TestOracleFamilyCoverage(t *testing.T) {
	want := []string{
		"random", "community", "powerlaw", "parity", "tseitin",
		"coloring", "subsetsum", "miter", "pigeonhole", "queens", "bmc",
	}
	have := map[string]bool{}
	for _, inst := range oracleInstances() {
		have[inst.Family] = true
	}
	for _, fam := range want {
		if !have[fam] {
			t.Errorf("oracle suite missing family %q", fam)
		}
	}
	if len(have) < 9 {
		t.Fatalf("oracle suite covers %d families, want ≥9: %v", len(have), have)
	}
	for _, inst := range oracleInstances() {
		if inst.F.NumVars > 20 {
			t.Errorf("%s: %d vars exceeds the 20-var oracle bound", inst.Name, inst.F.NumVars)
		}
		if inst.Name == "" {
			t.Error("instance without a name")
		}
	}
}

// TestOracleAggressiveReduction re-runs the differential oracle with the
// clause database reduced after every single conflict (ReduceFirst=1,
// ReduceInc=1), the most hostile schedule for the arena's mark-and-compact
// GC: learned clauses are compacted away while their crefs are still live
// as reasons on the trail, so any stale watch, reason, or learned-index
// reference after compaction shows up as a wrong verdict here.
func TestOracleAggressiveReduction(t *testing.T) {
	policies := []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}}
	for _, inst := range oracleInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			oracleSat, _ := enumerate(inst.F)
			for _, p := range policies {
				t.Run(p.Name(), func(t *testing.T) {
					res := mustSolve(t, inst.F, Options{
						Policy:       p,
						MaxConflicts: 1 << 20,
						ReduceFirst:  1,
						ReduceInc:    1,
					})
					if res.Status == Unknown {
						t.Fatalf("oracle instance exhausted its conflict budget: %+v", res.Stats)
					}
					if gotSat := res.Status == Sat; gotSat != oracleSat {
						t.Fatalf("solver says %v, oracle says sat=%v", res.Status, oracleSat)
					}
					if res.Status == Sat && !res.Model.Satisfies(inst.F) {
						t.Fatalf("model does not satisfy the formula: %v", res.Model)
					}
				})
			}
		})
	}
}
