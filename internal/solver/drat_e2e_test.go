package solver

import (
	"bytes"
	"testing"

	"neuroselect/internal/deletion"
	"neuroselect/internal/drat"
	"neuroselect/internal/gen"
)

// TestDRATEndToEnd closes the proof loop inside go test: solve UNSAT
// instances with proof logging on, then replay the emitted DRAT stream
// through the checker. Both deletion policies run with aggressive reduce
// thresholds so clause-database reduction — and therefore proof deletion
// lines — are exercised under proof logging.
func TestDRATEndToEnd(t *testing.T) {
	instances := []gen.Instance{
		gen.Pigeonhole(4),
		gen.Pigeonhole(5),
		gen.ParityChain(10, 8, 3, false, 7),
		gen.Tseitin(8, 3, false, 11),
		gen.Miter(4, 6, false, 5),
		// t=5 (not the minimal unrolling) so refutation needs real conflict
		// analysis rather than unit propagation alone, giving a non-empty
		// proof.
		gen.BMCCounter(4, 5, 15),
	}
	policies := []deletion.Policy{deletion.DefaultPolicy{}, deletion.FrequencyPolicy{}}
	sawReduction := false
	sawDeletion := false
	for _, inst := range instances {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			if inst.Expected != gen.ExpectUnsat {
				t.Fatalf("suite instance %s is not UNSAT by construction", inst.Name)
			}
			for _, p := range policies {
				t.Run(p.Name(), func(t *testing.T) {
					var proof bytes.Buffer
					w := drat.NewWriter(&proof)
					res := mustSolve(t, inst.F, Options{
						Policy:       p,
						MaxConflicts: 1 << 20,
						ReduceFirst:  20,
						ReduceInc:    10,
						Proof:        w,
					})
					if err := w.Flush(); err != nil {
						t.Fatal(err)
					}
					if res.Status != Unsat {
						t.Fatalf("got %v, want UNSAT", res.Status)
					}
					if res.Stats.Reductions > 0 {
						sawReduction = true
					}
					steps, err := drat.Parse(bytes.NewReader(proof.Bytes()))
					if err != nil {
						t.Fatalf("emitted proof does not parse: %v", err)
					}
					if res.Stats.Conflicts > 0 && len(steps) == 0 {
						t.Fatal("UNSAT solve with conflicts emitted an empty proof")
					}
					for _, s := range steps {
						if s.Delete {
							sawDeletion = true
						}
					}
					if err := drat.CheckProof(inst.F, proof.String()); err != nil {
						t.Fatalf("proof rejected by checker: %v", err)
					}
				})
			}
		})
	}
	if !sawReduction {
		t.Error("no run performed a clause-database reduction; raise the suite's difficulty or lower ReduceFirst")
	}
	if !sawDeletion {
		t.Error("no proof contained a deletion line; reduction under proof logging was not exercised")
	}
}
