package solver

import "neuroselect/internal/faultpoint"

// propagate performs Boolean constraint propagation over the two-watched-
// literal scheme until fixpoint or conflict. It returns the conflicting
// clause, or nil. Deleted clauses are dropped lazily from watch lists as
// they are encountered.
//
// Every Options.InterruptEvery propagations it polls the stop sources
// (context, deadline, Interrupt), so a long BCP chain cannot run
// unbounded past a stop signal; a raised stop cause is left in s.budget
// and propagation unwinds as if it reached fixpoint.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		if s.stats.Propagations >= s.nextPoll {
			s.nextPoll = s.stats.Propagations + s.opts.InterruptEvery
			if err := faultpoint.Hit(faultpoint.SolverPropagate); err != nil {
				panic(err) // contained by SolveContext's recovery
			}
			if err := s.checkStop(); err != nil {
				s.budget = err
				return nil
			}
		}
		p := s.trail[s.qhead]
		s.qhead++
		// Clauses watching ¬p: p just became true, so their watched literal
		// ¬p became false and they must be serviced.
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if w.c.deleted {
				continue // lazy removal
			}
			// Fast path: the blocker literal already satisfies the clause.
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			falseLit := p.not()
			// Ensure the false watched literal sits at lits[1].
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved to another list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				conflict = c
				// Copy the remaining watchers back and stop.
				kept = append(kept, ws[i+1:]...)
				break
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			s.qhead = len(s.trail)
			return conflict
		}
	}
	return nil
}
