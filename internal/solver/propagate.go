package solver

import "neuroselect/internal/faultpoint"

// propagate performs Boolean constraint propagation over the two-watched-
// literal scheme until fixpoint or conflict. It returns the conflicting
// clause's cref, or crefUndef.
//
// Binary clauses are fully inlined into their watchers: the blocker is the
// clause's other literal, so the satisfied, propagating, and conflicting
// cases are all decided without touching arena memory. Longer clauses walk
// their arena literals looking for a replacement watch, exactly as before.
// Watch lists never contain deleted clauses — the arena GC rewrites them
// eagerly at reduce time — so no tombstone check is needed here.
//
// Every Options.InterruptEvery propagations it polls the stop sources
// (context, deadline, Interrupt), so a long BCP chain cannot run
// unbounded past a stop signal; a raised stop cause is left in s.budget
// and propagation unwinds as if it reached fixpoint.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		if s.stats.Propagations >= s.nextPoll {
			s.nextPoll = s.stats.Propagations + s.opts.InterruptEvery
			if err := faultpoint.Hit(faultpoint.SolverPropagate); err != nil {
				panic(err) // contained by SolveContext's recovery
			}
			if err := s.checkStop(); err != nil {
				s.budget = err
				return crefUndef
			}
		}
		p := s.trail[s.qhead]
		s.qhead++
		// Clauses watching ¬p: p just became true, so their watched literal
		// ¬p became false and they must be serviced.
		ws := s.watches[p]
		kept := ws[:0]
		conflict := crefUndef
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Fast path: the blocker literal already satisfies the clause.
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			if w.ref&watchBinary != 0 {
				// Inlined binary clause: the blocker is the other literal,
				// already known not-true, so the clause either propagates
				// it or is conflicting — no arena access either way.
				c := cref(w.ref &^ watchBinary)
				kept = append(kept, w)
				if s.value(w.blocker) == lFalse {
					conflict = c
					// Leave the clause's literals in the [other, ¬p] order
					// the generic path would have produced, so conflict
					// analysis iterates identically.
					base := s.litBase(c)
					s.arena[base] = w.blocker
					s.arena[base+1] = p.not()
					kept = append(kept, ws[i+1:]...)
					break
				}
				s.enqueue(w.blocker, c)
				continue
			}
			c := cref(w.ref)
			cls := s.clauseLits(c)
			falseLit := p.not()
			// Ensure the false watched literal sits at cls[1].
			if cls[0] == falseLit {
				cls[0], cls[1] = cls[1], cls[0]
			}
			first := cls[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.ref, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(cls); k++ {
				if s.value(cls[k]) != lFalse {
					cls[1], cls[k] = cls[k], cls[1]
					s.watches[cls[1].not()] = append(s.watches[cls[1].not()], watcher{w.ref, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved to another list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.ref, first})
			if s.value(first) == lFalse {
				conflict = c
				// Copy the remaining watchers back and stop.
				kept = append(kept, ws[i+1:]...)
				break
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != crefUndef {
			s.qhead = len(s.trail)
			return conflict
		}
	}
	return crefUndef
}
