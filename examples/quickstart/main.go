// Quickstart: build a formula through the public API, solve it, and
// inspect the model and statistics.
package main

import (
	"fmt"
	"log"
	"strings"

	"neuroselect"
)

func main() {
	// A formula built programmatically: (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3).
	f := neuroselect.NewFormula(3)
	f.MustAddClause(1, 2)
	f.MustAddClause(-1, 3)
	f.MustAddClause(-2, -3)

	res, err := neuroselect.Solve(f, neuroselect.SolveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("status:", res.Status)
	if res.Status == neuroselect.Sat {
		for v := 1; v <= f.NumVars; v++ {
			fmt.Printf("  x%d = %v\n", v, res.Model[v])
		}
	}

	// The same works for DIMACS input, here an unsatisfiable core.
	dimacs := `
c tiny UNSAT example
p cnf 2 4
1 2 0
1 -2 0
-1 2 0
-1 -2 0
`
	g, err := neuroselect.ParseDIMACS(strings.NewReader(dimacs))
	if err != nil {
		log.Fatal(err)
	}
	res2, err := neuroselect.Solve(g, neuroselect.SolveConfig{Policy: "frequency"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dimacs status: %v (conflicts=%d, propagations=%d)\n",
		res2.Status, res2.Stats.Conflicts, res2.Stats.Propagations)
}
