// certify shows the verification story around the solver: an UNSAT answer
// is emitted with a DRAT proof, which an independent checker then
// validates — the discipline SAT competitions require, and the reason a
// learned clause-deletion policy can be trusted not to compromise
// soundness (deleted clauses are logged too).
package main

import (
	"fmt"
	"log"
	"strings"

	"neuroselect"
	"neuroselect/internal/gen"
)

func main() {
	// The pigeonhole principle: the classic proof-heavy UNSAT family, with
	// resolution proofs of exponential size — clause learning and deletion
	// both work hard here.
	inst := gen.Pigeonhole(6)
	fmt.Printf("instance: %s (%d vars, %d clauses)\n",
		inst.Name, inst.F.NumVars, inst.F.NumClauses())

	var proof strings.Builder
	w := neuroselect.NewProofWriter(&proof)
	res, err := neuroselect.Solve(inst.F, neuroselect.SolveConfig{
		Policy: "frequency", // deletions under the learned-selectable policy are proof-logged too
		Proof:  w,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver answer: %v (conflicts=%d, learned=%d, deleted=%d)\n",
		res.Status, res.Stats.Conflicts, res.Stats.Learned, res.Stats.Deleted)

	if res.Status != neuroselect.Unsat {
		fmt.Println("instance unexpectedly satisfiable; nothing to certify")
		return
	}
	lines := strings.Count(proof.String(), "\n")
	fmt.Printf("DRAT proof: %d steps\n", lines)
	if err := neuroselect.CheckProof(inst.F, strings.NewReader(proof.String())); err != nil {
		log.Fatalf("proof REJECTED: %v", err)
	}
	fmt.Println("proof VERIFIED by the independent RUP checker")
}
