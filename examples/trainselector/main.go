// trainselector trains the NeuroSelect model end-to-end on a freshly
// labeled corpus, then uses it to route new instances to a deletion policy
// (the NeuroSelect-Kissat flow of §5.4).
package main

import (
	"fmt"
	"log"
	"os"

	"neuroselect"
	"neuroselect/internal/gen"
)

func main() {
	fmt.Println("training a quick-scale selector (labeled corpus + HGT model)...")
	model, err := neuroselect.TrainSelector(neuroselect.TrainerConfig{Scale: "quick", Log: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}

	fresh := []gen.Instance{
		gen.RandomKSAT(140, 596, 3, 901),
		gen.Pigeonhole(6),
		gen.Miter(10, 150, false, 902),
		gen.GraphColoring(28, 128, 4, 903),
	}
	fmt.Printf("\n%-28s %-12s %s\n", "instance", "policy", "p(frequency wins)")
	for _, in := range fresh {
		prob, policy := neuroselect.PredictPolicy(in.F, model)
		fmt.Printf("%-28s %-12s %.3f\n", in.Name, policy, prob)
		res, err := neuroselect.SolveAdaptive(in.F, model, neuroselect.SolveConfig{MaxConflicts: 50000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %v in %d propagations\n", res.Status, res.Stats.Propagations)
	}
}
