// policytour compares the default and frequency-guided clause-deletion
// policies across instance families — Figure 4 of the paper in miniature.
// Neither policy dominates: the per-instance winner motivates learned
// policy selection.
package main

import (
	"fmt"
	"log"

	"neuroselect"
	"neuroselect/internal/gen"
)

func main() {
	instances := []gen.Instance{
		gen.RandomKSAT(130, 553, 3, 1),
		gen.RandomKSAT(150, 639, 3, 2),
		gen.Pigeonhole(6),
		gen.Pigeonhole(7),
		gen.Tseitin(34, 3, false, 3),
		gen.CommunityKSAT(200, 840, 3, 5, 0.85, 4),
		gen.SubsetSum(24, 50, false, 5),
		gen.BMCCounter(6, 40, 55),
	}
	fmt.Printf("%-32s %10s %10s %8s\n", "instance", "default", "frequency", "winner")
	for _, in := range instances {
		var props [2]int64
		for i, pol := range []string{"default", "frequency"} {
			res, err := neuroselect.Solve(in.F, neuroselect.SolveConfig{Policy: pol, MaxConflicts: 100000})
			if err != nil {
				log.Fatal(err)
			}
			props[i] = res.Stats.Propagations
		}
		winner := "tie"
		switch {
		case props[1] < props[0]:
			winner = "frequency"
		case props[0] < props[1]:
			winner = "default"
		}
		fmt.Printf("%-32s %10d %10d %8s\n", in.Name, props[0], props[1], winner)
	}
	fmt.Println("\npropagation counts are the paper's deterministic runtime analogue (§5.1)")
}
